// Package graph generates deterministic synthetic power-law graphs in CSR
// form. It stands in for the DIMACS coPapersCiteseer citation graph used by
// the paper's bfs, color, mis and pagerank benchmarks: citation networks are
// heavy-tailed, so the generator uses preferential attachment (Barabási-
// Albert), which reproduces the skewed degree distribution and the
// irregular, data-dependent page-access behaviour the paper attributes to
// graph workloads.
package graph
