package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadDIMACSSimple(t *testing.T) {
	// Triangle plus a pendant: 4 nodes, 4 undirected edges.
	in := `% a comment
4 4
2 3
1 3 4
1 2
2
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 4 || g.NumEdges() != 8 {
		t.Fatalf("parsed %d nodes %d directed edges, want 4/8", g.NumNodes, g.NumEdges())
	}
	if g.Degree(1) != 3 {
		t.Errorf("node 1 degree = %d, want 3", g.Degree(1))
	}
	if got := g.Neighbors(3); len(got) != 1 || got[0] != 1 {
		t.Errorf("node 3 neighbours = %v, want [1]", got)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"only-comments":    "% hi\n% there\n",
		"bad-header":       "x\n",
		"weighted":         "2 1 11\n2\n1\n",
		"neighbour-range":  "2 1\n3\n1\n",
		"missing-lines":    "3 2\n2\n",
		"edge-count-wrong": "2 5\n2\n1\n",
		"non-numeric":      "2 1\nfoo\n1\n",
		"zero-nodes":       "0 0\n",
	}
	for name, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: WriteDIMACS/ReadDIMACS round-trips generated graphs exactly.
func TestDIMACSRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%200
		g := Generate(n, 3, seed)
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			return false
		}
		got, err := ReadDIMACS(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes != g.NumNodes || len(got.ColIdx) != len(g.ColIdx) {
			return false
		}
		for i := range g.RowPtr {
			if g.RowPtr[i] != got.RowPtr[i] {
				return false
			}
		}
		for i := range g.ColIdx {
			if g.ColIdx[i] != got.ColIdx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
