package graph

import (
	"testing"
	"testing/quick"
)

func TestGenerateValidCSR(t *testing.T) {
	g := Generate(1000, 4, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes != 1000 {
		t.Errorf("NumNodes = %d", g.NumNodes)
	}
	// Each added node contributes up to edgesPerNode undirected edges.
	if g.NumEdges() < 2*1000 || g.NumEdges() > 2*4*1000 {
		t.Errorf("NumEdges = %d, outside plausible range", g.NumEdges())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(500, 3, 42)
	b := Generate(500, 3, 42)
	if len(a.ColIdx) != len(b.ColIdx) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := Generate(500, 3, 43)
	same := len(a.ColIdx) == len(c.ColIdx)
	if same {
		for i := range a.ColIdx {
			if a.ColIdx[i] != c.ColIdx[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestSymmetry(t *testing.T) {
	g := Generate(300, 3, 7)
	// Build reverse adjacency and confirm every edge exists both ways.
	type edge struct{ u, v int32 }
	fwd := make(map[edge]int)
	for v := 0; v < g.NumNodes; v++ {
		for _, u := range g.Neighbors(v) {
			fwd[edge{int32(v), u}]++
		}
	}
	for e, n := range fwd {
		if fwd[edge{e.v, e.u}] != n {
			t.Fatalf("edge (%d,%d) multiplicity %d but reverse %d", e.u, e.v, n, fwd[edge{e.v, e.u}])
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := Generate(5000, 4, 1)
	avg := float64(g.NumEdges()) / float64(g.NumNodes)
	if got := g.MaxDegree(); float64(got) < 8*avg {
		t.Errorf("MaxDegree = %d, avg = %.1f; degree distribution not heavy-tailed", got, avg)
	}
}

func TestDegreeSumEqualsEdges(t *testing.T) {
	g := Generate(800, 5, 3)
	sum := 0
	for v := 0; v < g.NumNodes; v++ {
		sum += g.Degree(v)
	}
	if sum != g.NumEdges() {
		t.Errorf("degree sum %d != edge count %d", sum, g.NumEdges())
	}
}

func TestBFSLevels(t *testing.T) {
	g := Generate(1000, 4, 9)
	levels := g.BFSLevels(0)
	if levels[0] != 0 {
		t.Errorf("source level = %d", levels[0])
	}
	// Preferential attachment grows a connected graph: all reachable.
	for v, l := range levels {
		if l < 0 {
			t.Fatalf("node %d unreachable; generator must grow a connected graph", v)
		}
	}
	// Levels differ by at most 1 across any edge.
	for v := 0; v < g.NumNodes; v++ {
		for _, u := range g.Neighbors(v) {
			d := levels[v] - levels[u]
			if d < -1 || d > 1 {
				t.Fatalf("edge (%d,%d) spans levels %d and %d", v, u, levels[v], levels[u])
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := Generate(100, 2, 1)
	cases := map[string]func(*CSR){
		"rowptr-len":   func(g *CSR) { g.RowPtr = g.RowPtr[:len(g.RowPtr)-1] },
		"rowptr-start": func(g *CSR) { g.RowPtr[0] = 1 },
		"rowptr-mono":  func(g *CSR) { g.RowPtr[5] = g.RowPtr[4] - 1 },
		"rowptr-end":   func(g *CSR) { g.RowPtr[g.NumNodes]++ },
		"colidx-range": func(g *CSR) { g.ColIdx[0] = int32(g.NumNodes) },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			g := &CSR{NumNodes: good.NumNodes}
			g.RowPtr = append([]int32(nil), good.RowPtr...)
			g.ColIdx = append([]int32(nil), good.ColIdx...)
			corrupt(g)
			if err := g.Validate(); err == nil {
				t.Error("Validate accepted corrupted CSR")
			}
		})
	}
}

// Property: any generated graph has no self loops and validates.
func TestGenerateProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 2 + int(nRaw)%400
		m := 1 + int(mRaw)%6
		g := Generate(n, m, seed)
		if g.Validate() != nil {
			return false
		}
		for v := 0; v < g.NumNodes; v++ {
			for _, u := range g.Neighbors(v) {
				if int(u) == v {
					return false // self loop
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
