package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses a graph in the DIMACS-10 Implementation Challenge
// format — the format of the coPapersCiteseer citation graph the paper uses
// as input for bfs, color, mis and pagerank. The first non-comment line is
// "<nodes> <edges> [fmt]"; each following line i lists the (1-based)
// neighbours of node i. The result is a validated CSR with edges stored in
// both directions, exactly as Generate produces.
//
// Use this to run the workloads on the real input when the dataset is
// available; the synthetic generator stands in for it otherwise.
func ReadDIMACS(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var numNodes, numEdges int
	header := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: malformed DIMACS header %q", line)
		}
		var err error
		if numNodes, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("graph: DIMACS node count: %w", err)
		}
		if numEdges, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("graph: DIMACS edge count: %w", err)
		}
		if len(fields) >= 3 && fields[2] != "0" {
			return nil, fmt.Errorf("graph: weighted DIMACS format %q not supported", fields[2])
		}
		header = true
		break
	}
	if !header {
		return nil, fmt.Errorf("graph: missing DIMACS header")
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("graph: non-positive node count %d", numNodes)
	}

	g := &CSR{NumNodes: numNodes, RowPtr: make([]int32, numNodes+1)}
	g.ColIdx = make([]int32, 0, 2*numEdges)
	node := 0
	for node < numNodes && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		for _, f := range strings.Fields(line) {
			u, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d: bad neighbour %q", node+1, f)
			}
			if u < 1 || u > numNodes {
				return nil, fmt.Errorf("graph: node %d: neighbour %d out of range", node+1, u)
			}
			g.ColIdx = append(g.ColIdx, int32(u-1))
		}
		node++
		g.RowPtr[node] = int32(len(g.ColIdx))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if node != numNodes {
		return nil, fmt.Errorf("graph: DIMACS file has %d adjacency lines, want %d", node, numNodes)
	}
	if len(g.ColIdx) != 2*numEdges {
		return nil, fmt.Errorf("graph: DIMACS file lists %d directed edges, header says %d undirected",
			len(g.ColIdx), numEdges)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteDIMACS writes g in the DIMACS-10 format (the inverse of ReadDIMACS,
// useful for exporting synthetic graphs to other tools).
func WriteDIMACS(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumNodes, g.NumEdges()/2); err != nil {
		return err
	}
	for v := 0; v < g.NumNodes; v++ {
		nbrs := g.Neighbors(v)
		for i, u := range nbrs {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.Itoa(int(u) + 1))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
