package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a graph in compressed sparse row form. Edges are undirected and
// stored in both directions, as in the DIMACS format.
type CSR struct {
	NumNodes int
	RowPtr   []int32 // len NumNodes+1
	ColIdx   []int32 // len NumEdges (directed edge count)
}

// NumEdges returns the directed edge count (twice the undirected count).
func (g *CSR) NumEdges() int { return len(g.ColIdx) }

// Degree returns the out-degree of node v.
func (g *CSR) Degree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Neighbors returns the adjacency slice of node v (shared storage; callers
// must not mutate it).
func (g *CSR) Neighbors(v int) []int32 { return g.ColIdx[g.RowPtr[v]:g.RowPtr[v+1]] }

// Validate checks CSR structural invariants.
func (g *CSR) Validate() error {
	if len(g.RowPtr) != g.NumNodes+1 {
		return fmt.Errorf("graph: RowPtr length %d, want %d", len(g.RowPtr), g.NumNodes+1)
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d, want 0", g.RowPtr[0])
	}
	for i := 0; i < g.NumNodes; i++ {
		if g.RowPtr[i+1] < g.RowPtr[i] {
			return fmt.Errorf("graph: RowPtr not monotone at %d", i)
		}
	}
	if int(g.RowPtr[g.NumNodes]) != len(g.ColIdx) {
		return fmt.Errorf("graph: RowPtr end %d, want %d", g.RowPtr[g.NumNodes], len(g.ColIdx))
	}
	for _, c := range g.ColIdx {
		if c < 0 || int(c) >= g.NumNodes {
			return fmt.Errorf("graph: neighbour %d out of range", c)
		}
	}
	return nil
}

// Generate builds a preferential-attachment graph with numNodes nodes and
// about edgesPerNode undirected edges added per node. Deterministic in seed.
func Generate(numNodes, edgesPerNode int, seed int64) *CSR {
	return GenerateWithLocality(numNodes, edgesPerNode, 0, 0, seed)
}

// GenerateWithLocality is Generate with an id-locality mix: each new edge
// attaches, with probability locality, to a node within `window` ids below
// the new node (uniform), and otherwise preferentially by degree across the
// whole graph. Citation graphs show exactly this structure — papers mostly
// cite recent, related work plus a heavy-tailed set of famous papers — and
// the sliding window keeps each thread block's neighbour footprint in its
// own nearby pages, so TB footprints are mostly disjoint (the paper's
// Observation 1) while hub pages stay globally shared.
func GenerateWithLocality(numNodes, edgesPerNode int, locality float64, window int, seed int64) *CSR {
	if numNodes < 2 {
		panic("graph: need at least 2 nodes")
	}
	if edgesPerNode < 1 {
		edgesPerNode = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// endpoints holds one entry per half-edge; sampling it uniformly is
	// sampling nodes proportionally to degree (preferential attachment).
	adj := make([][]int32, numNodes)
	endpoints := make([]int32, 0, 2*numNodes*edgesPerNode)
	addEdge := func(u, v int32) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		endpoints = append(endpoints, u, v)
	}
	addEdge(0, 1)
	for v := 2; v < numNodes; v++ {
		m := edgesPerNode
		if m > v {
			m = v
		}
		seen := make(map[int32]bool, m)
		for len(seen) < m {
			var u int32
			if locality > 0 && rng.Float64() < locality {
				w := window
				if w <= 0 || w > v {
					w = v
				}
				u = int32(v - 1 - rng.Intn(w))
			} else if pool := hubPool(numNodes); v > pool {
				// Non-local citations go to the early-id hub pool — the
				// handful of famous papers everything cites — sampled
				// degree-proportionally within the pool so the heavy tail
				// stays heavy.
				u = endpoints[rng.Intn(len(endpoints))]
				for try := 0; int(u) >= pool; try++ {
					if try >= 64 {
						u = int32(rng.Intn(pool))
						break
					}
					u = endpoints[rng.Intn(len(endpoints))]
				}
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if int(u) == v || seen[u] {
				// Fall back to a uniform node to guarantee progress on
				// pathological rolls.
				u = int32(rng.Intn(v))
				if int(u) == v || seen[u] {
					continue
				}
			}
			seen[u] = true
			addEdge(int32(v), u)
		}
	}

	g := &CSR{NumNodes: numNodes, RowPtr: make([]int32, numNodes+1)}
	total := 0
	for v := range adj {
		total += len(adj[v])
	}
	g.ColIdx = make([]int32, 0, total)
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		g.ColIdx = append(g.ColIdx, adj[v]...)
		g.RowPtr[v+1] = int32(len(g.ColIdx))
	}
	return g
}

// hubPool is the id bound of the heavy-tailed "famous" nodes non-local
// edges concentrate on.
func hubPool(numNodes int) int {
	p := numNodes / 128
	if p < 64 {
		p = 64
	}
	return p
}

// MaxDegree returns the maximum out-degree, a quick skew indicator.
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// BFSLevels runs a breadth-first search from src and returns each node's
// level (-1 if unreachable). Used by workload generators to derive realistic
// frontier schedules and by tests to check connectivity.
func (g *CSR) BFSLevels(src int) []int32 {
	levels := make([]int32, g.NumNodes)
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	frontier := []int32{int32(src)}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []int32
		for _, v := range frontier {
			for _, u := range g.Neighbors(int(v)) {
				if levels[u] == -1 {
					levels[u] = depth
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return levels
}
