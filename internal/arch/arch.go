package arch

import (
	"errors"
	"fmt"
)

// Page sizes supported by the UVM substrate.
const (
	PageSize4K = 1 << 12 // 4KB base pages
	PageSize2M = 1 << 21 // 2MB huge pages
)

// WarpSize is the number of threads that execute in lock-step.
const WarpSize = 32

// TLBIndexPolicy selects how the L1 TLB maps a translation to a set.
type TLBIndexPolicy int

const (
	// IndexByAddress is the conventional design: low VPN bits select the set.
	IndexByAddress TLBIndexPolicy = iota
	// IndexByTB partitions the sets among the hardware TB ids resident on
	// the SM (paper Section IV-B, Figure 8).
	IndexByTB
	// IndexByTBShared is IndexByTB plus dynamic adjacent-set sharing driven
	// by the 16-bit sharing-flag register (paper Figure 9).
	IndexByTBShared
)

// String implements fmt.Stringer.
func (p TLBIndexPolicy) String() string {
	switch p {
	case IndexByAddress:
		return "address"
	case IndexByTB:
		return "tb-partitioned"
	case IndexByTBShared:
		return "tb-partitioned+sharing"
	default:
		return fmt.Sprintf("TLBIndexPolicy(%d)", int(p))
	}
}

// SharingMode selects which neighbours a TB may spill translations to when
// running under IndexByTBShared.
type SharingMode int

const (
	// ShareAdjacent spills only into the next TB's sets (paper default).
	ShareAdjacent SharingMode = iota
	// ShareAllToAll may spill into any TB's sets (ablation; paper §IV-B
	// discusses and rejects it for bookkeeping cost).
	ShareAllToAll
)

// String implements fmt.Stringer.
func (m SharingMode) String() string {
	if m == ShareAllToAll {
		return "all-to-all"
	}
	return "adjacent"
}

// TBSchedulerPolicy selects how thread blocks are dispatched to SMs.
type TBSchedulerPolicy int

const (
	// ScheduleRoundRobin is the baseline GPU TB scheduler.
	ScheduleRoundRobin TBSchedulerPolicy = iota
	// ScheduleTLBAware is the thrashing-aware scheduler of paper §IV-A:
	// prefer SMs with low instantaneous L1 TLB miss rates.
	ScheduleTLBAware
)

// String implements fmt.Stringer.
func (p TBSchedulerPolicy) String() string {
	if p == ScheduleTLBAware {
		return "tlb-aware"
	}
	return "round-robin"
}

// WarpSchedulerPolicy selects how an SM picks among ready warps.
type WarpSchedulerPolicy int

const (
	// WarpGTO is greedy-then-oldest: the last-issued warp keeps priority,
	// then the oldest ready warp (the Table III baseline).
	WarpGTO WarpSchedulerPolicy = iota
	// WarpLRR is loose round-robin over ready warps.
	WarpLRR
	// WarpTransAware is the translation reuse-aware warp scheduler the
	// paper's conclusion proposes as future work: among ready warps,
	// prefer one whose next memory access translates from the L1 TLB.
	WarpTransAware
)

// String implements fmt.Stringer.
func (p WarpSchedulerPolicy) String() string {
	switch p {
	case WarpLRR:
		return "lrr"
	case WarpTransAware:
		return "translation-aware"
	default:
		return "gto"
	}
}

// TLBReplacementPolicy selects the TLB victim-selection policy.
type TLBReplacementPolicy int

const (
	// ReplaceLRU is true least-recently-used (the default).
	ReplaceLRU TLBReplacementPolicy = iota
	// ReplaceFIFO evicts the oldest-inserted entry regardless of use.
	ReplaceFIFO
	// ReplaceRandom evicts a deterministic pseudo-random way.
	ReplaceRandom
)

// String implements fmt.Stringer.
func (p TLBReplacementPolicy) String() string {
	switch p {
	case ReplaceFIFO:
		return "fifo"
	case ReplaceRandom:
		return "random"
	default:
		return "lru"
	}
}

// TLBConfig describes one TLB level.
type TLBConfig struct {
	Entries       int // total entries
	Assoc         int // ways per set
	LookupLatency int // cycles for a single-set probe
}

// Sets returns the number of sets.
func (c TLBConfig) Sets() int { return c.Entries / c.Assoc }

// Validate checks geometric consistency.
func (c TLBConfig) Validate() error {
	switch {
	case c.Entries <= 0:
		return errors.New("arch: TLB entries must be positive")
	case c.Assoc <= 0:
		return errors.New("arch: TLB associativity must be positive")
	case c.Entries%c.Assoc != 0:
		return fmt.Errorf("arch: TLB entries %d not divisible by associativity %d", c.Entries, c.Assoc)
	case c.LookupLatency < 0:
		return errors.New("arch: TLB lookup latency must be non-negative")
	}
	sets := c.Entries / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("arch: TLB set count %d must be a power of two", sets)
	}
	return nil
}

// CacheConfig describes one data-cache level.
type CacheConfig struct {
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency int // cycles from issue to data for a hit at this level
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Validate checks geometric consistency.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return errors.New("arch: cache size, line size and associativity must be positive")
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("arch: cache size %dB not divisible by %dB ways", c.SizeBytes, c.LineBytes*c.Assoc)
	case c.HitLatency < 0:
		return errors.New("arch: cache hit latency must be non-negative")
	}
	return nil
}

// Config is the full machine description.
type Config struct {
	// GPU geometry.
	NumSMs        int
	ClockMHz      int
	MaxThreads    int // per SM
	MaxTBsPerSM   int // hardware TB slots (Kepler-era limit of 16)
	MaxWarpsPerSM int
	IssueWidth    int // warps issued per SM per cycle (dual GTO scheduler)

	// Per-SM resources consumed by TBs.
	SharedMemPerSM int // bytes
	RegistersPerSM int // 32-bit registers

	// Translation hierarchy.
	L1TLB            TLBConfig
	L2TLB            TLBConfig
	NumWalkers       int
	WalkLatency      int // cycles for a full page-table walk
	PageSize         int // PageSize4K or PageSize2M
	PageFaultLatency int // UVM first-touch demand-paging fault, cycles

	// Data caches and memory.
	L1Cache             CacheConfig
	L2Cache             CacheConfig
	MemPartitions       int
	InterconnectLatency int // SM <-> partition one-way traversal, cycles
	NoCServiceCycles    int // crossbar port occupancy per request
	DRAMLatency         int // row-miss (precharge+activate+column), cycles
	DRAMRowHitLatency   int // open-row column access, cycles
	DRAMBanksPerPart    int
	DRAMRowBytes        int

	// Policies under study.
	TLBIndexPolicy TLBIndexPolicy
	SharingMode    SharingMode
	TBScheduler    TBSchedulerPolicy
	// ShareCounterThreshold, when > 0, replaces the 1-bit sharing flag with
	// a saturating counter that must reach the threshold before sharing
	// activates (paper future-work ablation). 0 means the 1-bit flag.
	ShareCounterThreshold int
	// TLBCompression enables contiguity-coalescing entries in both TLB
	// levels (the PACT'20 comparator used in Figure 12).
	TLBCompression bool
	// CompressionLatency is added to every L1 TLB probe when compression is
	// on (compressor/comparator on the critical path).
	CompressionLatency int
	// ThrottleTBsPerSM, when > 0, caps concurrent TBs per SM below the
	// resource limit (paper §IV-A extension note).
	ThrottleTBsPerSM int
	// TBDispatchPeriod is how often (cycles) the TB scheduler runs after
	// launch. Freed slots accumulate between runs, which is when the
	// TLB-aware policy has real placement choices.
	TBDispatchPeriod int
	// TranslationMSHRs is the number of outstanding L1 TLB misses one SM
	// can sustain; further misses queue behind them.
	TranslationMSHRs int
	// WarpScheduler selects the per-SM warp scheduling policy.
	WarpScheduler WarpSchedulerPolicy
	// PWCEntries enables a shared page-walk cache holding that many
	// last-level page-table pointers (covering 2MB regions); a PWC hit
	// skips the upper levels of the walk. 0 disables it (Table III has
	// none).
	PWCEntries int
	// TLBReplacement selects the replacement policy of both TLB levels.
	TLBReplacement TLBReplacementPolicy
	// SampleInterval, when > 0, records a windowed statistics sample every
	// that many cycles (Result.Samples).
	SampleInterval int
	// L2TLBPorts is the number of independent L2 TLB banks (the L2 TLB is
	// distributed across the memory partitions); probes to one bank
	// serialize.
	L2TLBPorts int
	// TLBMech names the pluggable translation mechanism both TLB levels
	// run ("" or "base" for the baseline entry format; "subentry",
	// "deadblock", "largereach"). Parsed and validated by the simulator
	// against tlbmech's registry; incompatible with TLBCompression for
	// non-base mechanisms.
	TLBMech string
	// AllocMode names the UVM frame-allocation policy ("" or "firsttouch"
	// for fault-order bump allocation; "contig" for the
	// contiguity-preserving positional allocator that feeds the largereach
	// mechanism). Parsed by the simulator via vm.ParseAllocMode.
	AllocMode string
}

// Default returns the Table III baseline configuration.
func Default() Config {
	return Config{
		NumSMs:        16,
		ClockMHz:      1400,
		MaxThreads:    2048,
		MaxTBsPerSM:   16,
		MaxWarpsPerSM: 64,
		IssueWidth:    2,

		SharedMemPerSM: 48 << 10,
		RegistersPerSM: (64 << 10) / 4,

		L1TLB:            TLBConfig{Entries: 64, Assoc: 4, LookupLatency: 1},
		L2TLB:            TLBConfig{Entries: 512, Assoc: 16, LookupLatency: 10},
		NumWalkers:       8,
		WalkLatency:      500,
		PageSize:         PageSize4K,
		PageFaultLatency: 5000,

		L1Cache:             CacheConfig{SizeBytes: 16 << 10, LineBytes: 128, Assoc: 4, HitLatency: 28},
		L2Cache:             CacheConfig{SizeBytes: 1536 << 10, LineBytes: 128, Assoc: 8, HitLatency: 120},
		MemPartitions:       12,
		InterconnectLatency: 20,
		NoCServiceCycles:    1,
		DRAMLatency:         220,
		DRAMRowHitLatency:   120,
		DRAMBanksPerPart:    8,
		DRAMRowBytes:        2048,

		TLBIndexPolicy:     IndexByAddress,
		SharingMode:        ShareAdjacent,
		TBScheduler:        ScheduleRoundRobin,
		CompressionLatency: 2,
		TBDispatchPeriod:   64,
		TranslationMSHRs:   16,
		L2TLBPorts:         4,
	}
}

// Validate checks the whole configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return errors.New("arch: NumSMs must be positive")
	case c.MaxThreads < WarpSize:
		return fmt.Errorf("arch: MaxThreads %d below warp size", c.MaxThreads)
	case c.MaxTBsPerSM <= 0:
		return errors.New("arch: MaxTBsPerSM must be positive")
	case c.MaxWarpsPerSM <= 0:
		return errors.New("arch: MaxWarpsPerSM must be positive")
	case c.IssueWidth <= 0:
		return errors.New("arch: IssueWidth must be positive")
	case c.NumWalkers <= 0:
		return errors.New("arch: NumWalkers must be positive")
	case c.WalkLatency <= 0:
		return errors.New("arch: WalkLatency must be positive")
	case c.PageSize != PageSize4K && c.PageSize != PageSize2M:
		return fmt.Errorf("arch: unsupported page size %d", c.PageSize)
	case c.MemPartitions <= 0:
		return errors.New("arch: MemPartitions must be positive")
	case c.ThrottleTBsPerSM < 0:
		return errors.New("arch: ThrottleTBsPerSM must be non-negative")
	case c.ShareCounterThreshold < 0:
		return errors.New("arch: ShareCounterThreshold must be non-negative")
	case c.TBDispatchPeriod <= 0:
		return errors.New("arch: TBDispatchPeriod must be positive")
	case c.TranslationMSHRs <= 0:
		return errors.New("arch: TranslationMSHRs must be positive")
	case c.L2TLBPorts <= 0:
		return errors.New("arch: L2TLBPorts must be positive")
	case c.PWCEntries < 0:
		return errors.New("arch: PWCEntries must be non-negative")
	case c.SampleInterval < 0:
		return errors.New("arch: SampleInterval must be non-negative")
	}
	if err := c.L1TLB.Validate(); err != nil {
		return fmt.Errorf("L1 TLB: %w", err)
	}
	if err := c.L2TLB.Validate(); err != nil {
		return fmt.Errorf("L2 TLB: %w", err)
	}
	if err := c.L1Cache.Validate(); err != nil {
		return fmt.Errorf("L1 cache: %w", err)
	}
	if err := c.L2Cache.Validate(); err != nil {
		return fmt.Errorf("L2 cache: %w", err)
	}
	return nil
}

// EffectiveMaxTBsPerSM returns the concurrent-TB cap after throttling.
func (c Config) EffectiveMaxTBsPerSM() int {
	if c.ThrottleTBsPerSM > 0 && c.ThrottleTBsPerSM < c.MaxTBsPerSM {
		return c.ThrottleTBsPerSM
	}
	return c.MaxTBsPerSM
}

// PageShift returns log2(PageSize).
func (c Config) PageShift() uint {
	if c.PageSize == PageSize2M {
		return 21
	}
	return 12
}

// String summarizes the configuration in a Table III-like block.
func (c Config) String() string {
	return fmt.Sprintf(
		"GPU: %d SMs @ %dMHz, %d threads/SM, %d TB slots/SM, %d warps/SM, issue %d\n"+
			"L1 TLB: %d entries %d-way (%d sets), %d-cycle lookup, policy=%s sharing=%s\n"+
			"L2 TLB: %d entries %d-way, %d-cycle lookup, shared\n"+
			"PTW: %d walkers, %d-cycle walks, %dB pages, %d-cycle UVM fault\n"+
			"L1$: %dKB %d-way %dB lines; L2$: %dKB %d-way, %d partitions\n"+
			"TB scheduler: %s",
		c.NumSMs, c.ClockMHz, c.MaxThreads, c.MaxTBsPerSM, c.MaxWarpsPerSM, c.IssueWidth,
		c.L1TLB.Entries, c.L1TLB.Assoc, c.L1TLB.Sets(), c.L1TLB.LookupLatency, c.TLBIndexPolicy, c.SharingMode,
		c.L2TLB.Entries, c.L2TLB.Assoc, c.L2TLB.LookupLatency,
		c.NumWalkers, c.WalkLatency, c.PageSize, c.PageFaultLatency,
		c.L1Cache.SizeBytes>>10, c.L1Cache.Assoc, c.L1Cache.LineBytes,
		c.L2Cache.SizeBytes>>10, c.L2Cache.Assoc, c.MemPartitions,
		c.TBScheduler)
}
