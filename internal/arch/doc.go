// Package arch defines the architectural configuration of the simulated
// CPU-GPU system: SM resources, TLB geometry, page-table-walker parameters,
// cache sizes and latencies. The defaults reproduce Table III of the paper
// (16 SMs, 64-entry 4-way per-SM L1 TLBs, 512-entry 16-way shared L2 TLB,
// 8 shared page-table walkers with 500-cycle walks).
package arch
