package arch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTableIII(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.NumSMs != 16 {
		t.Errorf("NumSMs = %d, want 16", c.NumSMs)
	}
	if c.L1TLB.Entries != 64 || c.L1TLB.Assoc != 4 || c.L1TLB.LookupLatency != 1 {
		t.Errorf("L1 TLB = %+v, want 64-entry 4-way 1-cycle", c.L1TLB)
	}
	if got := c.L1TLB.Sets(); got != 16 {
		t.Errorf("L1 TLB sets = %d, want 16", got)
	}
	if c.L2TLB.Entries != 512 || c.L2TLB.Assoc != 16 || c.L2TLB.LookupLatency != 10 {
		t.Errorf("L2 TLB = %+v, want 512-entry 16-way 10-cycle", c.L2TLB)
	}
	if c.NumWalkers != 8 || c.WalkLatency != 500 {
		t.Errorf("PTW = %d walkers %d cycles, want 8/500", c.NumWalkers, c.WalkLatency)
	}
	if c.MaxThreads != 2048 || c.MaxWarpsPerSM != 64 || c.MaxTBsPerSM != 16 {
		t.Errorf("SM resources = %d threads %d warps %d TBs, want 2048/64/16",
			c.MaxThreads, c.MaxWarpsPerSM, c.MaxTBsPerSM)
	}
	if c.PageSize != PageSize4K {
		t.Errorf("PageSize = %d, want 4KB", c.PageSize)
	}
	if c.L1Cache.SizeBytes != 16<<10 || c.L1Cache.Assoc != 4 || c.L1Cache.LineBytes != 128 {
		t.Errorf("L1 cache = %+v, want 16KB 4-way 128B", c.L1Cache)
	}
	if c.L2Cache.SizeBytes != 1536<<10 || c.L2Cache.Assoc != 8 {
		t.Errorf("L2 cache = %+v, want 1536KB 8-way", c.L2Cache)
	}
}

func TestTLBConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  TLBConfig
		ok   bool
	}{
		{"table3-l1", TLBConfig{64, 4, 1}, true},
		{"table3-l2", TLBConfig{512, 16, 10}, true},
		{"fig2-large", TLBConfig{256, 4, 1}, true},
		{"zero-entries", TLBConfig{0, 4, 1}, false},
		{"zero-assoc", TLBConfig{64, 0, 1}, false},
		{"indivisible", TLBConfig{65, 4, 1}, false},
		{"non-pow2-sets", TLBConfig{48, 4, 1}, false},
		{"negative-latency", TLBConfig{64, 4, -1}, false},
		{"fully-assoc", TLBConfig{64, 64, 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate() = nil, want error")
			}
		})
	}
}

func TestCacheConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  CacheConfig
		ok   bool
	}{
		{"l1", CacheConfig{16 << 10, 128, 4, 28}, true},
		{"l2", CacheConfig{1536 << 10, 128, 8, 120}, true},
		{"zero", CacheConfig{}, false},
		{"indivisible", CacheConfig{16<<10 + 1, 128, 4, 28}, false},
		{"non-pow2-sets-ok", CacheConfig{12 << 10, 128, 4, 28}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok != (err == nil) {
				t.Errorf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestConfigValidateRejectsBadFields(t *testing.T) {
	mutations := map[string]func(*Config){
		"NumSMs":        func(c *Config) { c.NumSMs = 0 },
		"MaxThreads":    func(c *Config) { c.MaxThreads = 16 },
		"MaxTBsPerSM":   func(c *Config) { c.MaxTBsPerSM = 0 },
		"MaxWarpsPerSM": func(c *Config) { c.MaxWarpsPerSM = -1 },
		"IssueWidth":    func(c *Config) { c.IssueWidth = 0 },
		"NumWalkers":    func(c *Config) { c.NumWalkers = 0 },
		"WalkLatency":   func(c *Config) { c.WalkLatency = 0 },
		"PageSize":      func(c *Config) { c.PageSize = 8192 },
		"MemPartitions": func(c *Config) { c.MemPartitions = 0 },
		"Throttle":      func(c *Config) { c.ThrottleTBsPerSM = -3 },
		"ShareCounter":  func(c *Config) { c.ShareCounterThreshold = -1 },
		"L1TLB":         func(c *Config) { c.L1TLB.Assoc = 0 },
		"L2TLB":         func(c *Config) { c.L2TLB.Entries = 0 },
		"L1Cache":       func(c *Config) { c.L1Cache.LineBytes = 0 },
		"L2Cache":       func(c *Config) { c.L2Cache.Assoc = 0 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			c := Default()
			mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("Validate() accepted bad %s", name)
			}
		})
	}
}

func TestEffectiveMaxTBsPerSM(t *testing.T) {
	c := Default()
	if got := c.EffectiveMaxTBsPerSM(); got != 16 {
		t.Errorf("unthrottled = %d, want 16", got)
	}
	c.ThrottleTBsPerSM = 4
	if got := c.EffectiveMaxTBsPerSM(); got != 4 {
		t.Errorf("throttled = %d, want 4", got)
	}
	c.ThrottleTBsPerSM = 99
	if got := c.EffectiveMaxTBsPerSM(); got != 16 {
		t.Errorf("over-throttle = %d, want 16 (cap at hardware limit)", got)
	}
}

func TestPageShift(t *testing.T) {
	c := Default()
	if got := c.PageShift(); got != 12 {
		t.Errorf("4KB shift = %d, want 12", got)
	}
	c.PageSize = PageSize2M
	if got := c.PageShift(); got != 21 {
		t.Errorf("2MB shift = %d, want 21", got)
	}
	if 1<<c.PageShift() != PageSize2M {
		t.Error("2MB shift does not invert page size")
	}
}

func TestPolicyStrings(t *testing.T) {
	if IndexByAddress.String() != "address" ||
		IndexByTB.String() != "tb-partitioned" ||
		IndexByTBShared.String() != "tb-partitioned+sharing" {
		t.Error("TLBIndexPolicy strings wrong")
	}
	if !strings.HasPrefix(TLBIndexPolicy(42).String(), "TLBIndexPolicy(") {
		t.Error("unknown policy should format numerically")
	}
	if ScheduleRoundRobin.String() != "round-robin" || ScheduleTLBAware.String() != "tlb-aware" {
		t.Error("TBSchedulerPolicy strings wrong")
	}
	if ShareAdjacent.String() != "adjacent" || ShareAllToAll.String() != "all-to-all" {
		t.Error("SharingMode strings wrong")
	}
}

func TestConfigStringMentionsKeyParameters(t *testing.T) {
	s := Default().String()
	for _, want := range []string{"16 SMs", "64 entries", "512 entries", "8 walkers", "500-cycle"} {
		if !strings.Contains(s, want) {
			t.Errorf("Config.String() missing %q:\n%s", want, s)
		}
	}
}

// Property: for any valid geometry, Sets()*Assoc == Entries and sets are a
// power of two.
func TestTLBGeometryProperty(t *testing.T) {
	f := func(setsLog2 uint8, assocSel uint8) bool {
		sets := 1 << (setsLog2 % 8) // 1..128 sets
		assoc := []int{1, 2, 4, 8, 16}[assocSel%5]
		cfg := TLBConfig{Entries: sets * assoc, Assoc: assoc, LookupLatency: 1}
		if err := cfg.Validate(); err != nil {
			return false
		}
		return cfg.Sets() == sets && cfg.Sets()*cfg.Assoc == cfg.Entries
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
