package chars

import (
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// NumBins is the number of reuse-intensity bins (b1..b5, 20% increments).
const NumBins = 5

// Bins holds the fraction of TBs (intra) or TB pairs (inter) whose reuse
// intensity falls into each 20% bin.
type Bins [NumBins]float64

// binOf maps an intensity in [0,1] to its bin index.
func binOf(r float64) int {
	b := int(r * NumBins)
	if b >= NumBins {
		b = NumBins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// tbPages summarizes one TB's translation trace: per-page access counts and
// the total access count.
type tbPages struct {
	counts map[vm.VPN]int32
	total  int
}

func summarize(tb trace.TBTrace, pageShift uint) tbPages {
	tr := trace.TBPageTrace(tb, pageShift)
	s := tbPages{counts: make(map[vm.VPN]int32), total: len(tr)}
	for _, p := range tr {
		s.counts[p]++
	}
	return s
}

// IntraTB computes the Figure 4 characterization: for each TB, the fraction
// of its translations that go to pages it accesses at least twice
// (Equation 1 with c1 = c2), binned in 20% steps.
func IntraTB(k *trace.Kernel, pageShift uint) Bins {
	var bins Bins
	if len(k.TBs) == 0 {
		return bins
	}
	for _, tb := range k.TBs {
		s := summarize(tb, pageShift)
		if s.total == 0 {
			bins[0] += 1
			continue
		}
		reused := 0
		for _, c := range s.counts {
			if c >= 2 {
				reused += int(c)
			}
		}
		bins[binOf(float64(reused)/float64(s.total))]++
	}
	for i := range bins {
		bins[i] /= float64(len(k.TBs))
	}
	return bins
}

// InterTB computes the Figure 3 characterization: for every ordered TB pair
// (c1, c2), the fraction of c1's translations to pages that c2 also touches
// (Equation 1), binned in 20% steps. maxTBs bounds the pair count for very
// large grids (0 means all TBs); the paper's grids are small enough to be
// exhaustive, ours are sampled from the front of the grid, which round-robin
// dispatch spreads across all SMs.
func InterTB(k *trace.Kernel, pageShift uint, maxTBs int) Bins {
	var bins Bins
	n := len(k.TBs)
	if maxTBs > 0 && n > maxTBs {
		n = maxTBs
	}
	if n < 2 {
		return bins
	}
	sums := make([]tbPages, n)
	for i := 0; i < n; i++ {
		sums[i] = summarize(k.TBs[i], pageShift)
	}
	pairs := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pairs++
			if sums[i].total == 0 {
				bins[0]++
				continue
			}
			shared := 0
			// Iterate the smaller page set.
			a, b := sums[i], sums[j]
			if len(a.counts) <= len(b.counts) {
				for p, c := range a.counts {
					if _, ok := b.counts[p]; ok {
						shared += int(c)
					}
				}
			} else {
				for p := range b.counts {
					if c, ok := a.counts[p]; ok {
						shared += int(c)
					}
				}
			}
			bins[binOf(float64(shared)/float64(a.total))]++
		}
	}
	for i := range bins {
		bins[i] /= float64(pairs)
	}
	return bins
}

// MinDistanceLog2 is the first reported distance bucket (2^3), matching the
// paper's Figure 5/6 x-axis.
const MinDistanceLog2 = 3

// MaxDistanceLog2 is the last bucket; larger distances saturate into it.
const MaxDistanceLog2 = 20

// DistanceCDF is a cumulative distribution of reuse distances over power-of-
// two buckets: CDF[i] is the fraction of reuses with distance <= 2^(3+i).
type DistanceCDF struct {
	CDF    []float64 // len MaxDistanceLog2-MinDistanceLog2+1
	Reuses int64     // number of reuse events measured (cold accesses excluded)
}

// FractionWithin returns the fraction of reuses with distance <= 2^log2.
func (d DistanceCDF) FractionWithin(log2 int) float64 {
	if len(d.CDF) == 0 {
		return 0
	}
	i := log2 - MinDistanceLog2
	if i < 0 {
		return 0
	}
	if i >= len(d.CDF) {
		i = len(d.CDF) - 1
	}
	return d.CDF[i]
}

// histogram accumulates distances into log2 buckets.
type histogram struct {
	buckets [MaxDistanceLog2 - MinDistanceLog2 + 1]int64
	total   int64
}

func (h *histogram) add(d int64) {
	h.total++
	for i := range h.buckets {
		if d <= 1<<uint(MinDistanceLog2+i) {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.buckets)-1]++
}

func (h *histogram) cdf() DistanceCDF {
	out := DistanceCDF{CDF: make([]float64, len(h.buckets)), Reuses: h.total}
	if h.total == 0 {
		return out
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		out.CDF[i] = float64(cum) / float64(h.total)
	}
	return out
}

// fenwick is a binary indexed tree over stream positions.
type fenwick struct {
	tree []int32
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int32, n+1)} }

func (f *fenwick) add(i int, v int32) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += v
	}
}

// prefix returns the sum of positions [0, i].
func (f *fenwick) prefix(i int) int32 {
	var s int32
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// distanceScanner measures reuse distances over one access stream. Each
// stream position is marked in the Fenwick tree while it is the most recent
// access of its page, so the number of distinct pages between two positions
// is a range sum.
type distanceScanner struct {
	bit        *fenwick
	lastGlobal map[vm.VPN]int
	pos        int
}

func newDistanceScanner(streamLen int) *distanceScanner {
	return &distanceScanner{
		bit:        newFenwick(streamLen),
		lastGlobal: make(map[vm.VPN]int),
	}
}

// access records page p and returns the number of distinct pages strictly
// between this access and prevPos (use the per-stream bookkeeping of the
// caller to supply prevPos; negative means cold).
func (ds *distanceScanner) access(p vm.VPN, prevPos int) (distance int64, pos int) {
	pos = ds.pos
	ds.pos++
	if last, ok := ds.lastGlobal[p]; ok {
		ds.bit.add(last, -1)
	}
	ds.bit.add(pos, 1)
	ds.lastGlobal[p] = pos
	if prevPos < 0 {
		return -1, pos
	}
	// Marks strictly between prevPos and pos: positions (prevPos, pos).
	// The mark for p itself was just moved to pos, so the window counts
	// each distinct page once.
	d := int64(ds.bit.prefix(pos-1) - ds.bit.prefix(prevPos))
	return d, pos
}

// IsolatedReuseDistance computes the Figure 6 CDF: each TB's translation
// stream measured alone (inter-TB interference removed).
func IsolatedReuseDistance(k *trace.Kernel, pageShift uint) DistanceCDF {
	var h histogram
	for _, tb := range k.TBs {
		tr := trace.TBPageTrace(tb, pageShift)
		ds := newDistanceScanner(len(tr))
		last := make(map[vm.VPN]int)
		for _, p := range tr {
			prev := -1
			if lp, ok := last[p]; ok {
				prev = lp
			}
			d, pos := ds.access(p, prev)
			last[p] = pos
			if d >= 0 {
				h.add(d)
			}
		}
	}
	return h.cdf()
}

// InterleavedReuseDistance computes the Figure 5 CDF: TBs are distributed
// round-robin over numSMs SMs with slotsPerSM running concurrently, their
// translation streams interleaved one request at a time; the distance of an
// intra-TB reuse then includes every other resident TB's translations — the
// inter-TB interference of the paper's Observation 2.
func InterleavedReuseDistance(k *trace.Kernel, pageShift uint, numSMs, slotsPerSM int) DistanceCDF {
	if numSMs < 1 {
		numSMs = 1
	}
	if slotsPerSM < 1 {
		slotsPerSM = 1
	}
	// Assign TBs to SMs round-robin, as the baseline dispatcher does.
	perSM := make([][]int, numSMs)
	for i := range k.TBs {
		sm := i % numSMs
		perSM[sm] = append(perSM[sm], i)
	}

	var h histogram
	for _, tbIdx := range perSM {
		if len(tbIdx) == 0 {
			continue
		}
		traces := make([][]vm.VPN, len(tbIdx))
		total := 0
		for i, t := range tbIdx {
			traces[i] = trace.TBPageTrace(k.TBs[t], pageShift)
			total += len(traces[i])
		}
		ds := newDistanceScanner(total)
		type key struct {
			tb int
			p  vm.VPN
		}
		last := make(map[key]int)

		// Run slotsPerSM TBs concurrently, one translation each per round;
		// a finished TB's slot is refilled with the next TB in order.
		next := 0
		active := make([]int, 0, slotsPerSM)
		cursor := make([]int, len(tbIdx))
		for next < len(tbIdx) && len(active) < slotsPerSM {
			active = append(active, next)
			next++
		}
		for len(active) > 0 {
			for i := 0; i < len(active); {
				t := active[i]
				tr := traces[t]
				if cursor[t] >= len(tr) {
					// Slot freed: refill or compact.
					if next < len(tbIdx) {
						active[i] = next
						next++
					} else {
						active = append(active[:i], active[i+1:]...)
					}
					continue
				}
				p := tr[cursor[t]]
				cursor[t]++
				kk := key{t, p}
				prev := -1
				if lp, ok := last[kk]; ok {
					prev = lp
				}
				d, pos := ds.access(p, prev)
				last[kk] = pos
				if d >= 0 {
					h.add(d)
				}
				i++
			}
		}
	}
	return h.cdf()
}

// IntraWarp computes warp-granularity reuse intensity: for every warp, the
// fraction of its translations to pages the warp touches at least twice —
// the characterization the paper's conclusion proposes as future work for
// translation reuse-aware warp scheduling.
func IntraWarp(k *trace.Kernel, pageShift uint) Bins {
	var bins Bins
	warps := 0
	for _, tb := range k.TBs {
		for _, w := range tb.Warps {
			warps++
			counts := make(map[vm.VPN]int32)
			total := 0
			for _, in := range w.Insts {
				if !in.IsMem() {
					continue
				}
				for _, p := range CoalescedPages(in, pageShift) {
					counts[p]++
					total++
				}
			}
			if total == 0 {
				bins[0]++
				continue
			}
			reused := 0
			for _, c := range counts {
				if c >= 2 {
					reused += int(c)
				}
			}
			bins[binOf(float64(reused)/float64(total))]++
		}
	}
	if warps == 0 {
		return bins
	}
	for i := range bins {
		bins[i] /= float64(warps)
	}
	return bins
}

// CoalescedPages exposes the translation requests of one instruction (a
// thin wrapper over the coalescer for characterization callers).
func CoalescedPages(in trace.Inst, pageShift uint) []vm.VPN {
	return trace.CoalescePages(in.Addrs, pageShift)
}
