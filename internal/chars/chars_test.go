package chars

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gputlb/internal/trace"
	"gputlb/internal/vm"
	"gputlb/internal/workloads"
)

// kernelFromPages builds a kernel with one warp per TB whose memory
// instructions touch exactly the given page sequence.
func kernelFromPages(tbs ...[]vm.VPN) *trace.Kernel {
	k := &trace.Kernel{Name: "synthetic", ThreadsPerTB: 32}
	for i, pages := range tbs {
		var wt trace.WarpTrace
		for _, p := range pages {
			wt.Insts = append(wt.Insts, trace.Inst{Addrs: []vm.Addr{vm.Addr(p) << 12}})
		}
		k.TBs = append(k.TBs, trace.TBTrace{ID: i, Warps: []trace.WarpTrace{wt}})
	}
	return k
}

func TestBinOf(t *testing.T) {
	cases := []struct {
		r    float64
		want int
	}{{0, 0}, {0.19, 0}, {0.2, 1}, {0.399, 1}, {0.5, 2}, {0.79, 3}, {0.8, 4}, {1.0, 4}}
	for _, c := range cases {
		if got := binOf(c.r); got != c.want {
			t.Errorf("binOf(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestIntraTBAllReused(t *testing.T) {
	// Every page accessed twice: 100% of translations reused -> bin b5.
	k := kernelFromPages([]vm.VPN{1, 2, 3, 1, 2, 3})
	bins := IntraTB(k, 12)
	if bins[4] != 1.0 {
		t.Errorf("bins = %v, want all TBs in b5", bins)
	}
}

func TestIntraTBNoReuse(t *testing.T) {
	k := kernelFromPages([]vm.VPN{1, 2, 3, 4, 5, 6})
	bins := IntraTB(k, 12)
	if bins[0] != 1.0 {
		t.Errorf("bins = %v, want all TBs in b1", bins)
	}
}

func TestIntraTBHalfReused(t *testing.T) {
	// Pages 1,1,2,3: accesses to reused pages = 2 of 4 -> 50% -> b3.
	k := kernelFromPages([]vm.VPN{1, 1, 2, 3})
	bins := IntraTB(k, 12)
	if bins[2] != 1.0 {
		t.Errorf("bins = %v, want all TBs in b3 (50%%)", bins)
	}
}

func TestInterTBDisjointAndIdentical(t *testing.T) {
	disjoint := kernelFromPages([]vm.VPN{1, 2}, []vm.VPN{3, 4})
	bins := InterTB(disjoint, 12, 0)
	if bins[0] != 1.0 {
		t.Errorf("disjoint TBs: bins = %v, want all pairs in b1", bins)
	}
	identical := kernelFromPages([]vm.VPN{1, 2}, []vm.VPN{1, 2})
	bins = InterTB(identical, 12, 0)
	if bins[4] != 1.0 {
		t.Errorf("identical TBs: bins = %v, want all pairs in b5", bins)
	}
}

func TestInterTBAsymmetric(t *testing.T) {
	// TB0: pages {1,2,3,4}, TB1: {1}. R(0->1) = 1/4 (b2); R(1->0) = 1 (b5).
	k := kernelFromPages([]vm.VPN{1, 2, 3, 4}, []vm.VPN{1})
	bins := InterTB(k, 12, 0)
	if bins[1] != 0.5 || bins[4] != 0.5 {
		t.Errorf("bins = %v, want 0.5 in b2 and 0.5 in b5", bins)
	}
}

func TestBinsSumToOne(t *testing.T) {
	s, _ := workloads.ByName("gemm")
	k, _ := s.Build(workloads.Params{PageShift: 12, Seed: 1, Scale: 0.25})
	for name, bins := range map[string]Bins{
		"intra": IntraTB(k, 12),
		"inter": InterTB(k, 12, 32),
	} {
		sum := 0.0
		for _, b := range bins {
			sum += b
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s bins sum to %v, want 1", name, sum)
		}
	}
}

func TestIsolatedDistanceSimple(t *testing.T) {
	// Stream 1,2,3,1: reuse of page 1 with 2 distinct pages between.
	k := kernelFromPages([]vm.VPN{1, 2, 3, 1})
	cdf := IsolatedReuseDistance(k, 12)
	if cdf.Reuses != 1 {
		t.Fatalf("Reuses = %d, want 1", cdf.Reuses)
	}
	if got := cdf.FractionWithin(3); got != 1.0 {
		t.Errorf("distance 2 should fall in the first bucket (<=8); CDF(8) = %v", got)
	}
}

func TestIsolatedDistanceCountsUniquePages(t *testing.T) {
	// 1, 2,2,2,2, 1: only one distinct page between the two accesses of 1.
	k := kernelFromPages([]vm.VPN{1, 2, 2, 2, 2, 1})
	cdf := IsolatedReuseDistance(k, 12)
	// Reuses: page 2 reused 3x at distance 0, page 1 once at distance 1.
	if cdf.Reuses != 4 {
		t.Fatalf("Reuses = %d, want 4", cdf.Reuses)
	}
	if got := cdf.FractionWithin(3); got != 1.0 {
		t.Errorf("all distances <= 8, CDF(8) = %v", got)
	}
}

// naiveDistances computes intra-TB reuse distances of a single stream by
// brute force.
func naiveDistances(stream []vm.VPN) []int64 {
	var out []int64
	for i, p := range stream {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if stream[j] == p {
				prev = j
				break
			}
		}
		if prev < 0 {
			continue
		}
		uniq := map[vm.VPN]bool{}
		for j := prev + 1; j < i; j++ {
			uniq[stream[j]] = true
		}
		delete(uniq, p)
		out = append(out, int64(len(uniq)))
	}
	return out
}

// Property: the Fenwick-tree scanner matches the brute-force distance
// computation on random streams.
func TestDistanceScannerMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]vm.VPN, 200)
		for i := range stream {
			stream[i] = vm.VPN(rng.Intn(20))
		}
		want := naiveDistances(stream)
		ds := newDistanceScanner(len(stream))
		last := make(map[vm.VPN]int)
		var got []int64
		for _, p := range stream {
			prev := -1
			if lp, ok := last[p]; ok {
				prev = lp
			}
			d, pos := ds.access(p, prev)
			last[p] = pos
			if d >= 0 {
				got = append(got, d)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInterleavingEnlargesIntraTBDistances(t *testing.T) {
	// Two TBs with identical private loops: alone, each reuse has distance
	// 3; interleaved on one SM, each TB's pages sit between the other's
	// reuses.
	loop := func(base vm.VPN) []vm.VPN {
		var s []vm.VPN
		for r := 0; r < 10; r++ {
			for p := vm.VPN(0); p < 4; p++ {
				s = append(s, base+p)
			}
		}
		return s
	}
	k := kernelFromPages(loop(100), loop(200), loop(300), loop(400))
	iso := IsolatedReuseDistance(k, 12)
	inter := InterleavedReuseDistance(k, 12, 1, 4)
	if iso.Reuses != inter.Reuses {
		t.Fatalf("reuse counts differ: %d vs %d", iso.Reuses, inter.Reuses)
	}
	if iso.FractionWithin(3) != 1.0 {
		t.Errorf("isolated distances should all be <= 8, got CDF(8)=%v", iso.FractionWithin(3))
	}
	if inter.FractionWithin(3) >= 1.0 {
		t.Errorf("interleaved distances must exceed isolated ones; CDF(8)=%v", inter.FractionWithin(3))
	}
}

func TestInterleavedHandlesUnevenTBs(t *testing.T) {
	k := kernelFromPages(
		[]vm.VPN{1, 2, 1},
		[]vm.VPN{10},
		[]vm.VPN{20, 21, 22, 23, 20},
	)
	cdf := InterleavedReuseDistance(k, 12, 2, 2)
	if cdf.Reuses != 2 {
		t.Errorf("Reuses = %d, want 2 (pages 1 and 20)", cdf.Reuses)
	}
}

func TestPaperObservation1IntraOverInter(t *testing.T) {
	// Paper Observation 1: graph benchmarks show substantial intra-TB reuse
	// and little inter-TB reuse.
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.5}
	s, _ := workloads.ByName("bfs")
	k, _ := s.Build(p)
	intra := IntraTB(k, 12)
	inter := InterTB(k, 12, 0)       // exhaustive, as in the paper
	intraHigh := intra[3] + intra[4] // >= 60% reuse
	interLow := inter[0]             // < 20% reuse
	if intraHigh < 0.5 {
		t.Errorf("bfs intra-TB: only %.2f of TBs in b4+b5; want substantial intra reuse (bins %v)", intraHigh, intra)
	}
	if interLow < 0.6 {
		t.Errorf("bfs inter-TB: only %.2f of pairs in b1; want little inter reuse (bins %v)", interLow, inter)
	}
}

func TestPaperObservation2MatrixKernelsShareAcrossTBs(t *testing.T) {
	// Paper Observation 2: atax/bicg/gemm/mvt have sizable inter-TB reuse.
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.5}
	for _, name := range []string{"gemm", "atax"} {
		s, _ := workloads.ByName(name)
		k, _ := s.Build(p)
		inter := InterTB(k, 12, 96)
		beyond := 1 - inter[0]
		if beyond < 0.1 {
			t.Errorf("%s: only %.2f of pairs beyond b1; matrix kernels must show inter-TB reuse (bins %v)",
				name, beyond, inter)
		}
	}
}

func TestEmptyKernels(t *testing.T) {
	empty := &trace.Kernel{Name: "empty"}
	if IntraTB(empty, 12) != (Bins{}) {
		t.Error("IntraTB of empty kernel not zero")
	}
	if InterTB(empty, 12, 0) != (Bins{}) {
		t.Error("InterTB of empty kernel not zero")
	}
	one := kernelFromPages([]vm.VPN{1})
	if InterTB(one, 12, 0) != (Bins{}) {
		t.Error("InterTB of single-TB kernel not zero")
	}
	if cdf := IsolatedReuseDistance(one, 12); cdf.Reuses != 0 {
		t.Error("single cold access produced a reuse")
	}
}

func TestIntraWarp(t *testing.T) {
	// One warp with full page reuse, one with none.
	k := &trace.Kernel{Name: "w", ThreadsPerTB: 64}
	mem := func(pages ...vm.VPN) trace.Inst {
		addrs := make([]vm.Addr, len(pages))
		for i, p := range pages {
			addrs[i] = vm.Addr(p) << 12
		}
		return trace.Inst{Addrs: addrs}
	}
	k.TBs = []trace.TBTrace{{Warps: []trace.WarpTrace{
		{Insts: []trace.Inst{mem(1), mem(1), mem(1)}},       // all reused -> b5
		{Insts: []trace.Inst{mem(2), mem(3), {Compute: 5}}}, // none -> b1
	}}}
	bins := IntraWarp(k, 12)
	if bins[4] != 0.5 || bins[0] != 0.5 {
		t.Errorf("bins = %v, want half b5 half b1", bins)
	}
}

func TestIntraWarpEmpty(t *testing.T) {
	if IntraWarp(&trace.Kernel{}, 12) != (Bins{}) {
		t.Error("empty kernel produced non-zero bins")
	}
}
