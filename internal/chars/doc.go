// Package chars implements the paper's Section III characterization:
// translation-reuse intensity at thread-block granularity (Equation 1,
// Figures 3 and 4) and translation reuse-distance CDFs, both with TBs
// running concurrently on their SMs (Figure 5) and with one TB at a time
// (Figure 6). Reuse distance is the number of unique translations between
// two accesses to the same page, computed in O(n log n) with a Fenwick tree
// over the access stream.
package chars
