// Package tlbmech defines the pluggable translation-mechanism interface the
// TLB levels and the page-walk cache consume, and ships four mechanisms
// behind it.
//
// A Mechanism owns everything entry-format specific about a TLB: how a VPN
// maps to a tag and a set index, what a tag match means, how an insert is
// absorbed into an existing entry, how a fresh entry is filled, which
// entries are preferred eviction victims, and which mechanism-specific
// metrics appear in the stats registry. The TLB itself keeps the
// mechanism-independent machinery — set geometry, TB-slot partitioning,
// adjacent-set sharing, LRU/FIFO/random replacement, and the baseline
// counter set — so every mechanism composes with every index policy.
//
// The four mechanisms:
//
//   - base: the pre-mechanism TLB extracted behind the interface, including
//     the optional PACT'20-style compression. Byte-identical to the
//     historical TLB — the committed golden stats pin this.
//   - subentry: tenants share one tag; each tag carries per-ASID sub-entry
//     frame slots, so co-running tenants whose translations differ only in
//     ASID-local frames stop duplicating tags ("Improving Multi-Instance
//     GPU Efficiency via Sub-Entry Sharing TLB Design").
//   - deadblock: a dead-entry predictor — a table of saturating reuse
//     counters indexed by a VPN/ASID signature — marks entries predicted
//     dead at fill time and early-evicts them in the victim scan ("Dead on
//     Arrival"-style dead-block prediction applied to TLB entries).
//   - largereach: one entry covers a contiguous VPN→PPN run inside an
//     aligned window, fed by the contiguity-preserving frame allocator
//     (internal/vm's AllocContig; Mosaic-style allocate-then-exploit
//     contiguity).
//
// Mechanisms are NOT safe for concurrent use and are never shared: every
// TLB (including each address slice's sub-TLB) builds its own instance, and
// the sliced barrier folds sub-TLB mechanism counters back with Fold.
package tlbmech
