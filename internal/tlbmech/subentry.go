package tlbmech

import (
	"math/bits"

	"gputlb/internal/stats"
	"gputlb/internal/vm"
)

// subentryMech implements sub-entry sharing: co-running tenants whose
// translations differ only in ASID-local frames share one tag, with a
// per-ASID frame slot under it. A lookup hits only when the requesting
// tenant's own sub-slot is filled, so tenants can never observe each
// other's frames — capacity is shared, translations are not.
type subentryMech struct {
	// slots holds vm.MaxTenants frame slots per entry, +1 encoded so a
	// zero slot means empty; masks is the per-entry bitmap of filled
	// sub-slots. Both are indexed by the entry's global index.
	slots []vm.PPN
	masks []uint8

	tagFills   int64 // fresh tags installed
	subFills   int64 // sub-slots filled under an existing tag
	sharedTags int64 // sub-fills that joined another tenant's tag
	sharedHits int64 // hits on tags shared by more than one tenant
}

func newSubentry() *subentryMech { return &subentryMech{} }

func (m *subentryMech) Name() string    { return "subentry" }
func (m *subentryMech) DeadAware() bool { return false }

func (m *subentryMech) Attach(sets, assoc int) {
	n := sets * assoc
	m.slots = make([]vm.PPN, n*vm.MaxTenants)
	m.masks = make([]uint8, n)
}

func (m *subentryMech) Tag(vpn vm.VPN) vm.VPN    { return vpn }
func (m *subentryMech) Index(vpn vm.VPN) uint64  { return uint64(vpn) }
func (m *subentryMech) Dead(*Entry, int) bool    { return false }
func (m *subentryMech) OnEvict(*Entry, int)      {}

func (m *subentryMech) Lookup(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool) {
	mask := m.masks[idx]
	if mask&(1<<asid) == 0 {
		return 0, false
	}
	if bits.OnesCount8(mask) > 1 {
		m.sharedHits++
	}
	return m.slots[idx*vm.MaxTenants+int(asid)] - 1, true
}

func (m *subentryMech) Peek(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool) {
	if m.masks[idx]&(1<<asid) == 0 {
		return 0, false
	}
	return m.slots[idx*vm.MaxTenants+int(asid)] - 1, true
}

func (m *subentryMech) Absorb(e *Entry, idx int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN, clock uint64) AbsorbResult {
	bit := uint8(1) << asid
	m.slots[idx*vm.MaxTenants+int(asid)] = ppn + 1
	e.Stamp = clock
	if m.masks[idx]&bit != 0 {
		return AbsorbRefreshed
	}
	m.subFills++
	if m.masks[idx] != 0 {
		m.sharedTags++
	}
	m.masks[idx] |= bit
	return AbsorbCoalesced // the tag newly covers this tenant's page
}

func (m *subentryMech) Fill(e *Entry, idx int, asid vm.ASID, vpn, tag vm.VPN, ppn vm.PPN, clock uint64) {
	*e = Entry{Valid: true, ASID: asid, VPN: tag, PPN: ppn, Stamp: clock, Filled: clock}
	m.masks[idx] = 1 << asid
	m.slots[idx*vm.MaxTenants+int(asid)] = ppn + 1
	m.tagFills++
	m.subFills++
}

func (m *subentryMech) Update(e *Entry, idx int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN) bool {
	if m.masks[idx]&(1<<asid) == 0 {
		return false
	}
	m.slots[idx*vm.MaxTenants+int(asid)] = ppn + 1
	if e.ASID == asid {
		e.PPN = ppn
	}
	return true
}

func (m *subentryMech) Translations(e *Entry, idx int, yield func(vm.ASID, vm.VPN, vm.PPN)) {
	mask := m.masks[idx]
	for a := 0; a < vm.MaxTenants && mask != 0; a++ {
		bit := uint8(1) << a
		if mask&bit == 0 {
			continue
		}
		mask &^= bit
		yield(vm.ASID(a), e.VPN, m.slots[idx*vm.MaxTenants+a]-1)
	}
}

func (m *subentryMech) OnFlush() {
	for i := range m.masks {
		m.masks[i] = 0
	}
}

func (m *subentryMech) RegisterStats(r *stats.Registry) {
	mr := r.Child("mech")
	mr.CounterFunc("tag_fills", func() int64 { return m.tagFills })
	mr.CounterFunc("sub_fills", func() int64 { return m.subFills })
	mr.CounterFunc("shared_tags", func() int64 { return m.sharedTags })
	mr.CounterFunc("shared_hits", func() int64 { return m.sharedHits })
	mr.GaugeFunc("sharing_ratio", func() float64 {
		if m.subFills == 0 {
			return 0
		}
		return float64(m.sharedTags) / float64(m.subFills)
	})
}

func (m *subentryMech) Fold(src Mechanism) {
	s := src.(*subentryMech)
	m.tagFills += s.tagFills
	m.subFills += s.subFills
	m.sharedTags += s.sharedTags
	m.sharedHits += s.sharedHits
}
