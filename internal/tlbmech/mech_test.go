package tlbmech

import (
	"testing"

	"gputlb/internal/stats"
	"gputlb/internal/vm"
)

func TestParseSpec(t *testing.T) {
	for _, name := range append([]string{""}, Known()...) {
		if _, err := ParseSpec(name); err != nil {
			t.Errorf("ParseSpec(%q) = %v, want nil", name, err)
		}
	}
	if s, err := ParseSpec(""); err != nil || s.Kind != "base" {
		t.Errorf("ParseSpec(\"\") = %+v, %v; want base", s, err)
	}
	if _, err := ParseSpec("quantum"); err == nil {
		t.Error("ParseSpec accepted an unknown mechanism")
	}
}

func TestBuildRejectsCompressionForNonBase(t *testing.T) {
	g := Geometry{Sets: 4, Assoc: 4, Compression: true, CompressionSpan: 8}
	if _, err := Build(Spec{Kind: "base"}, g); err != nil {
		t.Errorf("base with compression: %v", err)
	}
	for _, kind := range []string{"subentry", "deadblock", "largereach"} {
		if _, err := Build(Spec{Kind: kind}, g); err == nil {
			t.Errorf("%s with compression built without error", kind)
		}
	}
}

func build(t *testing.T, kind string) Mechanism {
	t.Helper()
	m, err := Build(Spec{Kind: kind}, Geometry{Sets: 4, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSubentrySharing: two tenants with the same VPN share one tag; each
// tenant sees only its own frame, and a third tenant misses entirely.
func TestSubentrySharing(t *testing.T) {
	m := build(t, "subentry")
	var e Entry
	m.Fill(&e, 0, 0, 7, m.Tag(7), 100, 1)
	if r := m.Absorb(&e, 0, 1, 7, 200, 2); r != AbsorbCoalesced {
		t.Fatalf("second tenant's sub-fill = %v, want AbsorbCoalesced", r)
	}
	if p, ok := m.Lookup(&e, 0, 0, 7); !ok || p != 100 {
		t.Errorf("tenant 0 lookup = %d,%v; want 100,true", p, ok)
	}
	if p, ok := m.Lookup(&e, 0, 1, 7); !ok || p != 200 {
		t.Errorf("tenant 1 lookup = %d,%v; want 200,true", p, ok)
	}
	if _, ok := m.Lookup(&e, 0, 2, 7); ok {
		t.Error("tenant 2 hit a tag it never filled")
	}
	var got []vm.PPN
	m.Translations(&e, 0, func(_ vm.ASID, _ vm.VPN, p vm.PPN) { got = append(got, p) })
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Errorf("translations = %v, want [100 200]", got)
	}
}

// TestDeadblockPrediction: an entry evicted twice without reuse trains its
// signature to the threshold; the next fill is predicted dead, and a hit on
// it promotes (counts a mispredict).
func TestDeadblockPrediction(t *testing.T) {
	m := build(t, "deadblock").(*deadblockMech)
	var e Entry
	for i := 0; i < DefaultDeadThreshold; i++ {
		m.Fill(&e, 0, 0, 42, 42, 9, 1)
		if m.Dead(&e, 0) {
			t.Fatalf("fill %d predicted dead before training completed", i)
		}
		m.OnEvict(&e, 0)
	}
	m.Fill(&e, 0, 0, 42, 42, 9, 1)
	if !m.Dead(&e, 0) {
		t.Fatal("trained signature not predicted dead")
	}
	if m.predictions != 1 {
		t.Errorf("predictions = %d, want 1", m.predictions)
	}
	if _, ok := m.Lookup(&e, 0, 0, 42); !ok {
		t.Fatal("lookup missed its own entry")
	}
	if m.Dead(&e, 0) {
		t.Error("hit entry still predicted dead (promote failed)")
	}
	if m.mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", m.mispredicts)
	}
}

// TestLargereachRuns: adjacent contiguous inserts extend one entry; a
// non-contiguous insert in the same window is refused (AbsorbNo) so runs
// only ever cover translations actually observed with the run's delta.
func TestLargereachRuns(t *testing.T) {
	m := build(t, "largereach").(*largereachMech)
	var e Entry
	tag := m.Tag(130)
	if tag != 128 {
		t.Fatalf("Tag(130) = %d, want 128", tag)
	}
	m.Fill(&e, 0, 0, 130, tag, 1030, 1)
	if r := m.Absorb(&e, 0, 0, 131, 1031, 2); r != AbsorbCoalesced {
		t.Fatalf("adjacent contiguous insert = %v, want AbsorbCoalesced", r)
	}
	if r := m.Absorb(&e, 0, 0, 129, 1029, 3); r != AbsorbCoalesced {
		t.Fatalf("adjacent-below contiguous insert = %v, want AbsorbCoalesced", r)
	}
	if r := m.Absorb(&e, 0, 0, 140, 5555, 4); r != AbsorbNo {
		t.Fatalf("non-contiguous insert = %v, want AbsorbNo", r)
	}
	if r := m.Absorb(&e, 0, 0, 135, 1035, 5); r != AbsorbNo {
		t.Fatalf("matching-delta non-adjacent insert = %v, want AbsorbNo", r)
	}
	for vpn, want := range map[vm.VPN]vm.PPN{129: 1029, 130: 1030, 131: 1031} {
		if p, ok := m.Lookup(&e, 0, 0, vpn); !ok || p != want {
			t.Errorf("lookup %d = %d,%v; want %d,true", vpn, p, ok, want)
		}
	}
	if _, ok := m.Lookup(&e, 0, 0, 132); ok {
		t.Error("lookup hit a page outside the run")
	}
	n := 0
	m.Translations(&e, 0, func(_ vm.ASID, vpn vm.VPN, ppn vm.PPN) {
		n++
		if ppn != vm.PPN(vpn)+900 {
			t.Errorf("translation %d -> %d breaks the run delta", vpn, ppn)
		}
	})
	if n != 3 {
		t.Errorf("run covers %d pages, want 3", n)
	}
	m.OnEvict(&e, 0)
	if m.maxReach != 3 {
		t.Errorf("maxReach = %d, want 3", m.maxReach)
	}
}

// TestFoldMergesCounters: folding a source mechanism accumulates its
// registry-visible counters, the sliced barrier's roll-up path.
func TestFoldMergesCounters(t *testing.T) {
	a := build(t, "largereach").(*largereachMech)
	b := build(t, "largereach").(*largereachMech)
	var e Entry
	b.Fill(&e, 0, 0, 64, 64, 10, 1)
	b.OnEvict(&e, 0)
	a.Fold(b)
	if a.fills != 1 || a.maxReach != 1 {
		t.Errorf("fold: fills=%d maxReach=%d, want 1,1", a.fills, a.maxReach)
	}
	r := stats.NewRegistry("tlb")
	a.RegisterStats(r)
	if r.Snapshot() == nil {
		t.Fatal("nil snapshot")
	}
}

// TestBaseRegistersNothing: the base mechanism must not add registry nodes —
// base snapshots are pinned byte-for-byte against the pre-mechanism goldens.
func TestBaseRegistersNothing(t *testing.T) {
	m := build(t, "base")
	r := stats.NewRegistry("tlb")
	m.RegisterStats(r)
	snap := r.Snapshot()
	if len(snap.Children) != 0 || len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("base registered children=%d counters=%d gauges=%d histograms=%d, want none",
			len(snap.Children), len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
}
