package tlbmech

import (
	"fmt"

	"gputlb/internal/stats"
	"gputlb/internal/vm"
)

// DefaultSpan is the largereach mechanism's aligned window size in pages.
const DefaultSpan = 64

// largereachMech implements contiguity-aware large-reach entries: one entry
// covers a contiguous VPN→PPN run [lo, hi) of offsets inside an aligned
// window of Span pages. Inserts whose delta continues an adjacent run
// extend it in place, so with a contiguity-preserving allocator
// (vm.AllocContig) one entry reaches up to Span pages. An entry never
// claims a page whose translation was not actually inserted with the run's
// delta — reach can only reflect contiguity the allocator really provided.
type largereachMech struct {
	span     vm.VPN
	log2span uint

	// lo/hi are the run bounds (offsets within the window) per entry,
	// indexed by the entry's global index. e.PPN stores the PPN the window
	// base would have under the run's delta (possibly wrapped; only
	// PPN+offset is meaningful).
	lo, hi []uint16

	reach      *stats.Histogram // run length at eviction
	fills      int64
	extensions int64 // inserts that grew an existing run
	reachHits  int64 // hits on entries covering more than one page
	maxReach   int64
}

func newLargereach(span int) (*largereachMech, error) {
	if span == 0 {
		span = DefaultSpan
	}
	if span < 2 || span&(span-1) != 0 {
		return nil, fmt.Errorf("tlbmech: largereach span %d not a power of two >= 2", span)
	}
	m := &largereachMech{span: vm.VPN(span), reach: stats.NewHistogram(0)}
	for s := span; s > 1; s >>= 1 {
		m.log2span++
	}
	return m, nil
}

func (m *largereachMech) Name() string    { return "largereach" }
func (m *largereachMech) DeadAware() bool { return false }

func (m *largereachMech) Attach(sets, assoc int) {
	n := sets * assoc
	m.lo = make([]uint16, n)
	m.hi = make([]uint16, n)
}

func (m *largereachMech) Tag(vpn vm.VPN) vm.VPN   { return vpn &^ (m.span - 1) }
func (m *largereachMech) Index(vpn vm.VPN) uint64 { return uint64(vpn) >> m.log2span }
func (m *largereachMech) Dead(*Entry, int) bool   { return false }

func (m *largereachMech) Lookup(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool) {
	if e.ASID != asid {
		return 0, false
	}
	off := uint16(vpn - e.VPN)
	if off < m.lo[idx] || off >= m.hi[idx] {
		return 0, false
	}
	if m.hi[idx]-m.lo[idx] > 1 {
		m.reachHits++
	}
	return e.PPN + vm.PPN(off), true
}

func (m *largereachMech) Peek(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool) {
	if e.ASID != asid {
		return 0, false
	}
	off := uint16(vpn - e.VPN)
	if off < m.lo[idx] || off >= m.hi[idx] {
		return 0, false
	}
	return e.PPN + vm.PPN(off), true
}

func (m *largereachMech) Absorb(e *Entry, idx int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN, clock uint64) AbsorbResult {
	if e.ASID != asid {
		return AbsorbNo
	}
	off := uint16(vpn - e.VPN)
	if e.PPN+vm.PPN(off) != ppn {
		return AbsorbNo // delta mismatch: another run in this window
	}
	switch {
	case off >= m.lo[idx] && off < m.hi[idx]:
		e.Stamp = clock
		return AbsorbRefreshed
	case off == m.hi[idx]:
		m.hi[idx]++
	case m.lo[idx] > 0 && off == m.lo[idx]-1:
		m.lo[idx]--
	default:
		return AbsorbNo // matching delta but not adjacent: keep runs exact
	}
	m.extensions++
	e.Stamp = clock
	return AbsorbCoalesced
}

func (m *largereachMech) Fill(e *Entry, idx int, asid vm.ASID, vpn, tag vm.VPN, ppn vm.PPN, clock uint64) {
	off := uint16(vpn - tag)
	// Store the window-base PPN under the run's delta; unsigned wraparound
	// is fine because only PPN+offset within the run is ever read.
	*e = Entry{Valid: true, ASID: asid, VPN: tag, PPN: ppn - vm.PPN(off), Stamp: clock, Filled: clock}
	m.lo[idx] = off
	m.hi[idx] = off + 1
	m.fills++
}

func (m *largereachMech) Update(e *Entry, idx int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN) bool {
	if e.ASID != asid {
		return false
	}
	off := uint16(vpn - e.VPN)
	if off < m.lo[idx] || off >= m.hi[idx] {
		return false
	}
	e.PPN = ppn - vm.PPN(off)
	return true
}

func (m *largereachMech) OnEvict(e *Entry, idx int) {
	n := int64(m.hi[idx] - m.lo[idx])
	m.reach.Observe(n)
	if n > m.maxReach {
		m.maxReach = n
	}
}

func (m *largereachMech) Translations(e *Entry, idx int, yield func(vm.ASID, vm.VPN, vm.PPN)) {
	for off := m.lo[idx]; off < m.hi[idx]; off++ {
		yield(e.ASID, e.VPN+vm.VPN(off), e.PPN+vm.PPN(off))
	}
}

func (m *largereachMech) OnFlush() {} // Fill rewrites the run bounds

// Span returns the window size in pages (test/diagnostic helper).
func (m *largereachMech) Span() int { return int(m.span) }

func (m *largereachMech) RegisterStats(r *stats.Registry) {
	mr := r.Child("mech")
	mr.CounterFunc("fills", func() int64 { return m.fills })
	mr.CounterFunc("extensions", func() int64 { return m.extensions })
	mr.CounterFunc("reach_hits", func() int64 { return m.reachHits })
	mr.GaugeFunc("max_reach", func() float64 { return float64(m.maxReach) })
	mr.AttachHistogram("reach", m.reach)
}

func (m *largereachMech) Fold(src Mechanism) {
	s := src.(*largereachMech)
	m.fills += s.fills
	m.extensions += s.extensions
	m.reachHits += s.reachHits
	if s.maxReach > m.maxReach {
		m.maxReach = s.maxReach
	}
	if err := m.reach.Merge(s.reach); err != nil {
		panic("tlbmech: reach histogram shape mismatch: " + err.Error())
	}
}
