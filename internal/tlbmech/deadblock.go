package tlbmech

import (
	"fmt"

	"gputlb/internal/stats"
	"gputlb/internal/vm"
)

// DefaultPredictorEntries is the dead-entry predictor's table size.
const DefaultPredictorEntries = 4096

// DefaultDeadThreshold is the saturating-counter value at which a fill is
// predicted dead on arrival.
const DefaultDeadThreshold = 2

// deadblockMech is a dead-entry predictor: a table of 2-bit saturating
// counters indexed by a VPN/ASID signature records whether past entries
// with that signature were evicted without reuse. A fill whose counter has
// reached the threshold is predicted dead and becomes a preferred eviction
// victim, protecting live entries from streaming translations. Entries are
// otherwise plain per-ASID (ASID, VPN)→PPN records, like base without
// compression.
type deadblockMech struct {
	table     []uint8 // 2-bit saturating dead counters
	tableMask uint32
	threshold uint8

	sig  []uint32 // per-entry predictor index, cached at fill
	dead []bool   // per-entry predicted-dead flag
	used []bool   // per-entry reused-since-fill flag

	predictions int64 // fills predicted dead
	correct     int64 // predicted-dead entries evicted without reuse
	mispredicts int64 // predicted-dead entries that hit again (promoted)
	deadEvicts  int64 // victims taken from the dead scan's preferred pool
}

func newDeadblock(entries, threshold int) (*deadblockMech, error) {
	if entries == 0 {
		entries = DefaultPredictorEntries
	}
	if entries < 2 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("tlbmech: deadblock predictor entries %d not a power of two", entries)
	}
	if threshold == 0 {
		threshold = DefaultDeadThreshold
	}
	if threshold < 1 || threshold > 3 {
		return nil, fmt.Errorf("tlbmech: deadblock threshold %d outside the 2-bit counter range [1,3]", threshold)
	}
	return &deadblockMech{
		table:     make([]uint8, entries),
		tableMask: uint32(entries - 1),
		threshold: uint8(threshold),
	}, nil
}

func (m *deadblockMech) Name() string    { return "deadblock" }
func (m *deadblockMech) DeadAware() bool { return true }

func (m *deadblockMech) Attach(sets, assoc int) {
	n := sets * assoc
	m.sig = make([]uint32, n)
	m.dead = make([]bool, n)
	m.used = make([]bool, n)
}

func (m *deadblockMech) Tag(vpn vm.VPN) vm.VPN   { return vpn }
func (m *deadblockMech) Index(vpn vm.VPN) uint64 { return uint64(vpn) }

// signature mixes (asid, vpn) into a predictor-table index.
func (m *deadblockMech) signature(asid vm.ASID, vpn vm.VPN) uint32 {
	h := uint64(vpn)*0x9E3779B97F4A7C15 + uint64(asid)*0xBF58476D1CE4E5B9
	return uint32(h>>32) & m.tableMask
}

func (m *deadblockMech) Lookup(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool) {
	if e.ASID != asid {
		return 0, false
	}
	if m.dead[idx] {
		// Promote: the prediction was wrong, keep the entry live.
		m.dead[idx] = false
		m.mispredicts++
	}
	if !m.used[idx] {
		m.used[idx] = true
		// First reuse proves the signature live: train toward live so the
		// next fill with it is not predicted dead.
		if s := m.sig[idx]; m.table[s] > 0 {
			m.table[s]--
		}
	}
	return e.PPN, true
}

func (m *deadblockMech) Peek(e *Entry, _ int, asid vm.ASID, _ vm.VPN) (vm.PPN, bool) {
	if e.ASID != asid {
		return 0, false
	}
	return e.PPN, true
}

func (m *deadblockMech) Absorb(e *Entry, _ int, asid vm.ASID, _ vm.VPN, ppn vm.PPN, clock uint64) AbsorbResult {
	if e.ASID != asid {
		return AbsorbNo
	}
	e.PPN = ppn
	e.Stamp = clock
	return AbsorbRefreshed
}

func (m *deadblockMech) Fill(e *Entry, idx int, asid vm.ASID, vpn, tag vm.VPN, ppn vm.PPN, clock uint64) {
	*e = Entry{Valid: true, ASID: asid, VPN: tag, PPN: ppn, Stamp: clock, Filled: clock}
	s := m.signature(asid, vpn)
	m.sig[idx] = s
	m.used[idx] = false
	m.dead[idx] = m.table[s] >= m.threshold
	if m.dead[idx] {
		m.predictions++
	}
}

func (m *deadblockMech) Update(e *Entry, _ int, asid vm.ASID, _ vm.VPN, ppn vm.PPN) bool {
	if e.ASID != asid {
		return false
	}
	e.PPN = ppn
	return true
}

func (m *deadblockMech) Dead(_ *Entry, idx int) bool { return m.dead[idx] }

func (m *deadblockMech) OnEvict(e *Entry, idx int) {
	s := m.sig[idx]
	if m.used[idx] {
		if m.table[s] > 0 {
			m.table[s]--
		}
	} else if m.table[s] < 3 {
		m.table[s]++
	}
	if m.dead[idx] {
		m.deadEvicts++
		if !m.used[idx] {
			m.correct++
		}
	}
}

func (m *deadblockMech) Translations(e *Entry, _ int, yield func(vm.ASID, vm.VPN, vm.PPN)) {
	yield(e.ASID, e.VPN, e.PPN)
}

func (m *deadblockMech) OnFlush() {
	// Per-entry state is stale once entries are invalid; the predictor
	// table survives a flush — it is the mechanism's long-term memory.
	for i := range m.dead {
		m.dead[i] = false
		m.used[i] = false
	}
}

func (m *deadblockMech) RegisterStats(r *stats.Registry) {
	mr := r.Child("mech")
	mr.CounterFunc("predictions", func() int64 { return m.predictions })
	mr.CounterFunc("correct", func() int64 { return m.correct })
	mr.CounterFunc("mispredicts", func() int64 { return m.mispredicts })
	mr.CounterFunc("dead_evictions", func() int64 { return m.deadEvicts })
	mr.GaugeFunc("accuracy", func() float64 {
		if m.predictions == 0 {
			return 0
		}
		return float64(m.correct) / float64(m.predictions)
	})
}

func (m *deadblockMech) Fold(src Mechanism) {
	s := src.(*deadblockMech)
	m.predictions += s.predictions
	m.correct += s.correct
	m.mispredicts += s.mispredicts
	m.deadEvicts += s.deadEvicts
}
