package tlbmech

import (
	"gputlb/internal/stats"
	"gputlb/internal/vm"
)

// baseMech is the pre-mechanism TLB's entry design extracted behind the
// interface: one (ASID, VPN)→PPN entry, optionally compressed into aligned
// groups with a presence bitmap and a single VPN→PPN delta (the PACT'20
// comparator). Every counting quirk of the historical TLB is preserved —
// the committed golden stats pin this byte-for-byte — and it registers no
// mechanism-level metrics so base snapshots keep the historical shape.
type baseMech struct {
	compress bool
	span     vm.VPN // group size in pages; meaningful only when compress
	log2span uint
}

func newBase(compress bool, span int) *baseMech {
	m := &baseMech{compress: compress}
	if compress {
		m.span = vm.VPN(span)
		for s := span; s > 1; s >>= 1 {
			m.log2span++
		}
	}
	return m
}

func (m *baseMech) Name() string         { return "base" }
func (m *baseMech) Attach(_, _ int)      {}
func (m *baseMech) DeadAware() bool      { return false }
func (m *baseMech) Dead(*Entry, int) bool { return false }
func (m *baseMech) OnEvict(*Entry, int)  {}
func (m *baseMech) OnFlush()             {}

// bit returns the presence-bitmap bit for vpn within its group, using the
// exact arithmetic of the historical TLB.
func (m *baseMech) bit(vpn vm.VPN) uint64 {
	return 1 << (uint64(vpn) & uint64(m.span-1))
}

func (m *baseMech) Tag(vpn vm.VPN) vm.VPN {
	if m.compress {
		return vpn &^ (m.span - 1)
	}
	return vpn
}

func (m *baseMech) Index(vpn vm.VPN) uint64 { return uint64(vpn) >> m.log2span }

func (m *baseMech) Lookup(e *Entry, _ int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool) {
	if e.ASID != asid {
		return 0, false
	}
	if !m.compress {
		return e.PPN, true
	}
	if e.Mask&m.bit(vpn) == 0 {
		return 0, false
	}
	return e.PPN + vm.PPN(vpn-e.VPN), true
}

func (m *baseMech) Peek(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool) {
	return m.Lookup(e, idx, asid, vpn) // base Lookup has no side effects
}

func (m *baseMech) Absorb(e *Entry, _ int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN, clock uint64) AbsorbResult {
	if e.ASID != asid {
		return AbsorbNo
	}
	if !m.compress {
		e.PPN = ppn // same VPN: refresh (translation unchanged in practice)
		e.Stamp = clock
		return AbsorbRefreshed
	}
	// Coalesce only when the VPN→PPN delta matches the stored run.
	if e.PPN+vm.PPN(vpn-e.VPN) != ppn {
		return AbsorbNo
	}
	bit := m.bit(vpn)
	res := AbsorbRefreshed
	if e.Mask&bit == 0 {
		res = AbsorbCoalesced
	}
	e.Mask |= bit
	e.Stamp = clock
	return res
}

func (m *baseMech) Fill(e *Entry, _ int, asid vm.ASID, vpn, tag vm.VPN, ppn vm.PPN, clock uint64) {
	*e = Entry{Valid: true, ASID: asid, VPN: tag, Stamp: clock, Filled: clock}
	if m.compress {
		// Store the PPN the group base would have if the run were
		// contiguous; coalescing later verifies the delta holds.
		e.PPN = ppn - vm.PPN(vpn-tag)
		e.Mask = m.bit(vpn)
	} else {
		e.PPN = ppn
	}
}

func (m *baseMech) Update(e *Entry, _ int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN) bool {
	if e.ASID != asid {
		return false
	}
	if m.compress {
		if e.Mask&m.bit(vpn) == 0 {
			return false
		}
		// Store the group-base PPN the run would have so a lookup of vpn
		// returns exactly ppn.
		e.PPN = ppn - vm.PPN(vpn-e.VPN)
	} else {
		e.PPN = ppn
	}
	return true
}

func (m *baseMech) Translations(e *Entry, _ int, yield func(vm.ASID, vm.VPN, vm.PPN)) {
	// Compressed entries report their base page, like the historical
	// OnEvict callback did.
	yield(e.ASID, e.VPN, e.PPN)
}

func (m *baseMech) RegisterStats(*stats.Registry) {} // nothing: golden shape
func (m *baseMech) Fold(Mechanism)                {}
