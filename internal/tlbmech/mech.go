package tlbmech

import (
	"fmt"

	"gputlb/internal/stats"
	"gputlb/internal/vm"
)

// Entry is the universal TLB entry record every mechanism shares. The
// fixed part stays small on purpose — the probe loop walks whole sets and
// its cache footprint is the hot-path cost — so mechanism-specific payload
// (sub-entry frame slots, run bounds, dead flags) lives in side tables the
// mechanism indexes by the entry's global index (set*assoc+way).
type Entry struct {
	Valid bool
	// ASID is the owning tenant (for subentry: the first filler; sub-slot
	// state decides which tenants can actually hit).
	ASID vm.ASID
	// VPN is the tag: the full VPN, or the aligned group/window base for
	// compressed and large-reach entries.
	VPN vm.VPN
	// PPN is the payload: the PPN of VPN (for range entries, of the window
	// base under the run's delta — possibly wrapped; only PPN+offset is
	// meaningful).
	PPN vm.PPN
	// Mask is the base mechanism's compressed-group presence bitmap.
	Mask uint64
	// Stamp is the LRU timestamp, Filled the FIFO insertion timestamp.
	Stamp  uint64
	Filled uint64
}

// AbsorbResult says what Absorb did with an insert that reached an entry
// with a matching tag.
type AbsorbResult int

const (
	// AbsorbNo means the entry could not take the translation (ASID or
	// delta mismatch); the caller keeps scanning and eventually fills a new
	// entry.
	AbsorbNo AbsorbResult = iota
	// AbsorbRefreshed means the translation was already covered; the entry
	// was refreshed in place.
	AbsorbRefreshed
	// AbsorbCoalesced means the entry newly covers one more page (counted
	// in the TLB's Coalesced stat).
	AbsorbCoalesced
)

// Mechanism is one pluggable translation-entry design. All hooks that take
// an *Entry also take the entry's global index idx = set*assoc+way, which
// mechanisms use to address their per-entry side tables. Callers guarantee
// the entry's tag already matches (e.Valid && e.VPN == Tag(vpn)) before
// calling Lookup, Peek, Absorb, or Update. Mechanisms are single-goroutine,
// like the TLBs that own them.
type Mechanism interface {
	// Name returns the mechanism's registry name ("base", "subentry", ...).
	Name() string
	// Attach tells the mechanism its TLB's geometry so it can size
	// per-entry side tables; called once before any other hook.
	Attach(sets, assoc int)
	// Tag maps a VPN to the tag an entry holding it carries.
	Tag(vpn vm.VPN) vm.VPN
	// Index maps a VPN to the value whose low bits select the set under
	// address indexing.
	Index(vpn vm.VPN) uint64
	// Lookup probes a tag-matching entry for (asid, vpn), returning the PPN
	// on a hit. It may train predictors / promote the entry; the caller
	// refreshes the LRU stamp on a hit.
	Lookup(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool)
	// Peek is Lookup without any training or statistics side effects
	// (Contains/Update probes must not disturb predictor state).
	Peek(e *Entry, idx int, asid vm.ASID, vpn vm.VPN) (vm.PPN, bool)
	// Absorb tries to fold vpn→ppn into a tag-matching entry (refresh,
	// coalesce, extend). clock is the TLB's current probe clock for stamp
	// refreshes.
	Absorb(e *Entry, idx int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN, clock uint64) AbsorbResult
	// Fill overwrites e with a fresh entry for vpn→ppn. tag is Tag(vpn),
	// precomputed by the caller.
	Fill(e *Entry, idx int, asid vm.ASID, vpn, tag vm.VPN, ppn vm.PPN, clock uint64)
	// Update rewrites the payload for (asid, vpn) in a tag-matching entry
	// without touching recency or any counter, reporting whether the entry
	// actually covered the page (placeholder resolution at the sharded
	// engine's barrier).
	Update(e *Entry, idx int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN) bool
	// DeadAware reports whether the victim scan should ask Dead at all; it
	// is constant for a mechanism's lifetime, letting the base path skip
	// the scan entirely.
	DeadAware() bool
	// Dead reports whether a valid entry is predicted dead and should be
	// evicted before the replacement policy picks among live entries.
	Dead(e *Entry, idx int) bool
	// OnEvict notifies the mechanism a valid entry is being evicted
	// (predictor training, run-length accounting), before the entry is
	// reused.
	OnEvict(e *Entry, idx int)
	// Translations enumerates every (asid, vpn, ppn) translation a valid
	// entry currently holds — one per covered page (victim write-back and
	// diagnostics).
	Translations(e *Entry, idx int, yield func(asid vm.ASID, vpn vm.VPN, ppn vm.PPN))
	// OnFlush resets per-entry side state after the TLB invalidates all
	// entries.
	OnFlush()
	// RegisterStats registers mechanism-specific metrics under r (the
	// TLB's own registry node). base registers nothing, keeping base
	// snapshots byte-identical to the pre-mechanism TLB.
	RegisterStats(r *stats.Registry)
	// Fold adds src's mechanism-level counters into this mechanism — the
	// sliced barrier's sub-TLB roll-up. src must be the same kind.
	Fold(src Mechanism)
}

// Spec selects a mechanism by name with its tuning knobs. The zero value
// is the base mechanism.
type Spec struct {
	// Kind is the mechanism name: "" or "base", "subentry", "deadblock",
	// "largereach".
	Kind string
	// Span overrides the largereach window size in pages (power of two;
	// 0 = DefaultSpan). Ignored by other mechanisms.
	Span int
	// PredictorEntries overrides the deadblock predictor-table size (power
	// of two; 0 = DefaultPredictorEntries). Ignored by other mechanisms.
	PredictorEntries int
	// DeadThreshold overrides the saturating-counter value at which a fill
	// is predicted dead (0 = DefaultDeadThreshold). Ignored by other
	// mechanisms.
	DeadThreshold int
}

// Known returns the recognized mechanism names, in grid order.
func Known() []string { return []string{"base", "subentry", "deadblock", "largereach"} }

// ParseSpec maps a mechanism name ("" means base) to its Spec, rejecting
// unknown names — the validation entry point for configs and job specs.
func ParseSpec(name string) (Spec, error) {
	switch name {
	case "", "base":
		return Spec{Kind: "base"}, nil
	case "subentry", "deadblock", "largereach":
		return Spec{Kind: name}, nil
	}
	return Spec{}, fmt.Errorf("tlbmech: unknown mechanism %q (one of %v)", name, Known())
}

// Geometry carries the owning TLB's shape and base-mechanism options into
// Build.
type Geometry struct {
	// Sets and Assoc are the TLB's geometry; side tables are sized
	// Sets*Assoc.
	Sets, Assoc int
	// Compression enables the base mechanism's contiguity-coalescing
	// entries; CompressionSpan is the aligned group size in pages (already
	// defaulted and power-of-two-validated by the TLB).
	Compression     bool
	CompressionSpan int
}

// Build constructs the mechanism a Spec names, attached to the given
// geometry. Compression is a base-mechanism feature; combining it with any
// other mechanism is an error.
func Build(s Spec, g Geometry) (Mechanism, error) {
	if s.Kind != "" && s.Kind != "base" && g.Compression {
		return nil, fmt.Errorf("tlbmech: compression is a base-mechanism feature, not compatible with %q", s.Kind)
	}
	var m Mechanism
	switch s.Kind {
	case "", "base":
		m = newBase(g.Compression, g.CompressionSpan)
	case "subentry":
		m = newSubentry()
	case "deadblock":
		var err error
		m, err = newDeadblock(s.PredictorEntries, s.DeadThreshold)
		if err != nil {
			return nil, err
		}
	case "largereach":
		var err error
		m, err = newLargereach(s.Span)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("tlbmech: unknown mechanism %q (one of %v)", s.Kind, Known())
	}
	m.Attach(g.Sets, g.Assoc)
	return m, nil
}
