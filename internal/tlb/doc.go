// Package tlb implements the translation look-aside buffers under study:
//
//   - the conventional address-indexed set-associative TLB (baseline),
//   - the TB-id partitioned L1 TLB of paper Section IV-B (Figure 8), where
//     the hardware TB id — not VPN bits — selects the set and entries store
//     the full VPN,
//   - partitioning plus dynamic adjacent-set sharing (Figure 9), driven by a
//     16-bit sharing-flag register, and
//   - a contiguity-compressed TLB modelling the PACT'20 comparator used in
//     Figure 12, which coalesces runs of pages with a common VPN→PPN delta
//     into one entry.
//
// All variants use true LRU within the probed ways and account the lookup
// latency of probing multiple sets (the partitioning overhead the paper
// explicitly includes in its evaluation).
package tlb
