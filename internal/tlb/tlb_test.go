package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gputlb/internal/arch"
	"gputlb/internal/vm"
)

func l1cfg() arch.TLBConfig { return arch.TLBConfig{Entries: 64, Assoc: 4, LookupLatency: 1} }
func addrTLB() *TLB         { return New(l1cfg(), Options{Policy: arch.IndexByAddress}) }
func partTLB(slots int) *TLB {
	t := New(l1cfg(), Options{Policy: arch.IndexByTB})
	t.ConfigureSlots(slots)
	return t
}
func sharedTLB(slots int) *TLB {
	t := New(l1cfg(), Options{Policy: arch.IndexByTBShared, Sharing: arch.ShareAdjacent})
	t.ConfigureSlots(slots)
	return t
}

func TestAddressIndexedHitMiss(t *testing.T) {
	tl := addrTLB()
	if _, hit, probed := tl.Lookup(0, 100); hit || probed != 1 {
		t.Fatalf("cold lookup: hit=%v probed=%d, want miss with 1 set probed", hit, probed)
	}
	tl.Insert(0, 100, 555)
	ppn, hit, probed := tl.Lookup(0, 100)
	if !hit || ppn != 555 || probed != 1 {
		t.Fatalf("after insert: ppn=%d hit=%v probed=%d", ppn, hit, probed)
	}
	s := tl.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 accesses, 1 hit, 1 miss", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", s.HitRate())
	}
}

func TestAddressIndexedSetSelection(t *testing.T) {
	tl := addrTLB() // 16 sets, 4 ways
	// VPNs congruent mod 16 land in one set: the 5th insert evicts.
	for i := 0; i < 5; i++ {
		tl.Insert(0, vm.VPN(16*i), vm.PPN(i))
	}
	if tl.Occupancy() != 4 {
		t.Errorf("occupancy = %d, want 4 (single set holds 4 ways)", tl.Occupancy())
	}
	// VPNs in distinct sets do not conflict.
	tl.Flush()
	for i := 0; i < 16; i++ {
		tl.Insert(0, vm.VPN(i), vm.PPN(i))
	}
	if tl.Occupancy() != 16 {
		t.Errorf("occupancy = %d, want 16 across 16 sets", tl.Occupancy())
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := addrTLB()
	// Fill one set (VPNs ≡ 0 mod 16).
	for i := 0; i < 4; i++ {
		tl.Insert(0, vm.VPN(16*i), vm.PPN(i))
	}
	// Touch VPN 0 so VPN 16 becomes LRU.
	if _, hit, _ := tl.Lookup(0, 0); !hit {
		t.Fatal("expected hit on resident VPN 0")
	}
	tl.Insert(0, 16*4, 99) // evicts VPN 16
	if tl.Contains(0, 16) {
		t.Error("LRU victim VPN 16 still resident")
	}
	for _, want := range []vm.VPN{0, 32, 48, 64} {
		if !tl.Contains(0, want) {
			t.Errorf("VPN %d should be resident", want)
		}
	}
}

func TestInsertRefreshDoesNotDuplicate(t *testing.T) {
	tl := addrTLB()
	tl.Insert(0, 7, 1)
	tl.Insert(0, 7, 1)
	tl.Insert(0, 7, 1)
	if got := tl.Occupancy(); got != 1 {
		t.Errorf("occupancy = %d after repeated insert of same VPN, want 1", got)
	}
}

func TestPartitionedSetOwnership(t *testing.T) {
	tl := partTLB(16) // 16 sets, 16 slots: one set each
	for slot := 0; slot < 16; slot++ {
		lo, hi := tl.ownedSets(slot)
		if lo != slot || hi != slot+1 {
			t.Errorf("slot %d owns [%d,%d), want [%d,%d)", slot, lo, hi, slot, slot+1)
		}
	}
	tl.ConfigureSlots(4) // 4 slots: 4 sets each
	for slot := 0; slot < 4; slot++ {
		lo, hi := tl.ownedSets(slot)
		if hi-lo != 4 || lo != slot*4 {
			t.Errorf("slot %d owns [%d,%d), want [%d,%d)", slot, lo, hi, slot*4, slot*4+4)
		}
	}
	tl.ConfigureSlots(3) // 16/3: ranges 0-5,5-10,10-16 (sizes 5,5,6)
	total := 0
	prevHi := 0
	for slot := 0; slot < 3; slot++ {
		lo, hi := tl.ownedSets(slot)
		if lo != prevHi {
			t.Errorf("slot %d range [%d,%d) not contiguous with previous end %d", slot, lo, hi, prevHi)
		}
		total += hi - lo
		prevHi = hi
	}
	if total != 16 {
		t.Errorf("3 slots cover %d sets, want all 16", total)
	}
	tl.ConfigureSlots(32) // more slots than sets: fold
	lo, hi := tl.ownedSets(17)
	if lo != 1 || hi != 2 {
		t.Errorf("folded slot 17 owns [%d,%d), want [1,2)", lo, hi)
	}
}

func TestPartitionedIsolation(t *testing.T) {
	tl := partTLB(16)
	// Same VPN inserted by two TBs lives in two sets (paper's redundancy).
	tl.Insert(0, 42, 7)
	tl.Insert(1, 42, 7)
	if tl.Occupancy() != 2 {
		t.Errorf("occupancy = %d, want 2 (redundant entries across partitions)", tl.Occupancy())
	}
	// Slot 2 never inserted VPN 42: its lookup misses even though two other
	// partitions hold it.
	if _, hit, _ := tl.Lookup(2, 42); hit {
		t.Error("partitioned lookup hit another TB's set")
	}
	// TB 0 thrashing its one set cannot evict TB 1's entries.
	for i := 0; i < 100; i++ {
		tl.Insert(0, vm.VPN(1000+i), vm.PPN(i))
	}
	if _, hit, _ := tl.Lookup(1, 42); !hit {
		t.Error("TB 0 thrashing evicted TB 1's entry despite partitioning")
	}
}

func TestPartitionedProbesAllOwnedSets(t *testing.T) {
	tl := partTLB(4) // 4 sets per slot
	tl.Insert(0, 5, 50)
	_, hit, probed := tl.Lookup(0, 5)
	if !hit {
		t.Fatal("miss on resident entry")
	}
	if probed != 4 {
		t.Errorf("probed %d sets, want 4 (lookup cost scales with sets per TB)", probed)
	}
	tl.ConfigureSlots(16)
	tl.Insert(0, 6, 60)
	if _, _, probed := tl.Lookup(0, 6); probed != 1 {
		t.Errorf("probed %d sets with 16 slots, want 1", probed)
	}
}

func TestPartitionedFullVPNNoAliasing(t *testing.T) {
	tl := partTLB(16)
	// Two VPNs that alias under address indexing (same low bits) must be
	// distinguishable inside one TB's set because the full VPN is stored.
	tl.Insert(3, 0x10, 1)
	tl.Insert(3, 0x20, 2)
	p1, h1, _ := tl.Lookup(3, 0x10)
	p2, h2, _ := tl.Lookup(3, 0x20)
	if !h1 || !h2 || p1 != 1 || p2 != 2 {
		t.Errorf("full-VPN matching failed: (%d,%v) (%d,%v)", p1, h1, p2, h2)
	}
}

func TestSharingSpillsVictimToAdjacentSet(t *testing.T) {
	tl := sharedTLB(16) // one set of 4 ways per slot
	// Fill slot 0's set.
	for i := 0; i < 4; i++ {
		tl.Insert(0, vm.VPN(100+i), vm.PPN(i))
	}
	if tl.SharingActive(0) {
		t.Fatal("sharing active before any eviction")
	}
	// Fifth insert evicts LRU (VPN 100); neighbour slot 1's set is empty, so
	// the victim spills there and the flag is set.
	tl.Insert(0, 200, 9)
	if !tl.SharingActive(0) {
		t.Error("sharing flag not set after spill opportunity")
	}
	if s := tl.Stats(); s.Spills != 1 {
		t.Errorf("Spills = %d, want 1", s.Spills)
	}
	// The spilled translation must still hit for slot 0 (it probes the
	// neighbour's set once the flag is on).
	if _, hit, probed := tl.Lookup(0, 100); !hit || probed != 2 {
		t.Errorf("spilled entry: hit=%v probed=%d, want hit via 2-set probe", hit, probed)
	}
}

func TestSharingDoesNotActivateWhenNeighbourBusy(t *testing.T) {
	tl := sharedTLB(16)
	// Fill slot 0's set, then the neighbour's, so the neighbour's entries
	// are all more recent than slot 0's LRU victim: the neighbour is busier
	// and must not be stolen from.
	for i := 0; i < 4; i++ {
		tl.Insert(0, vm.VPN(100+i), vm.PPN(i))
	}
	for i := 0; i < 4; i++ {
		tl.Insert(1, vm.VPN(500+i), vm.PPN(i))
	}
	tl.Insert(0, 200, 9)
	if tl.SharingActive(0) {
		t.Error("sharing activated although the adjacent set was busier")
	}
	// Neighbour's contents untouched.
	for i := 0; i < 4; i++ {
		if !tl.Contains(1, vm.VPN(500+i)) {
			t.Errorf("neighbour entry %d displaced by failed spill", 500+i)
		}
	}
}

func TestSharingBalancesAgainstIdleNeighbour(t *testing.T) {
	// A busy TB next to an idle one whose entries have gone stale must
	// activate sharing and start using the idle TB's sets — the set
	// utilization balancing of paper §IV-B.
	tl := sharedTLB(16)
	for i := 0; i < 4; i++ {
		tl.Insert(1, vm.VPN(500+i), vm.PPN(i)) // neighbour filled first: stale
	}
	for i := 0; i < 4; i++ {
		tl.Insert(0, vm.VPN(100+i), vm.PPN(i))
	}
	tl.Insert(0, 200, 9) // oversubscription: neighbour's LRU is staler
	if !tl.SharingActive(0) {
		t.Fatal("sharing did not activate against a stale neighbour")
	}
	// All of slot 0's five translations must now be resident in the pool.
	for _, vpn := range []vm.VPN{100, 101, 102, 103, 200} {
		if !tl.Contains(0, vpn) {
			t.Errorf("VPN %d missing from the pooled sets", vpn)
		}
	}
}

func TestSharingFlagResetOnTBFinish(t *testing.T) {
	tl := sharedTLB(16)
	for i := 0; i < 5; i++ {
		tl.Insert(0, vm.VPN(100+i), vm.PPN(i))
	}
	if !tl.SharingActive(0) {
		t.Fatal("precondition: sharing active")
	}
	// Slot 1 finishing resets flags of TBs sharing into its sets.
	tl.OnTBFinish(1)
	if tl.SharingActive(0) {
		t.Error("flag not reset when the set-owning TB finished")
	}
	// And a TB finishing resets its own flag.
	for i := 0; i < 5; i++ {
		tl.Insert(2, vm.VPN(300+i), vm.PPN(i))
	}
	if !tl.SharingActive(2) {
		t.Fatal("precondition: slot 2 sharing")
	}
	tl.OnTBFinish(2)
	if tl.SharingActive(2) {
		t.Error("own flag not reset on finish")
	}
	if s := tl.Stats(); s.FlagResets < 2 {
		t.Errorf("FlagResets = %d, want >= 2", s.FlagResets)
	}
}

func TestSharingIncreasesEffectiveCapacity(t *testing.T) {
	// A single TB with a working set of 8 pages on a 4-way set: partitioned
	// TLB thrashes, sharing spills into the idle neighbour and roughly
	// doubles the capacity available.
	run := func(tl *TLB) int64 {
		for round := 0; round < 50; round++ {
			for p := 0; p < 8; p++ {
				vpn := vm.VPN(1000 + p)
				if _, hit, _ := tl.Lookup(0, vpn); !hit {
					tl.Insert(0, vpn, vm.PPN(p))
				}
			}
		}
		return tl.Stats().Hits
	}
	part := run(partTLB(16))
	shared := run(sharedTLB(16))
	if shared <= part {
		t.Errorf("sharing hits=%d not above partition-only hits=%d", shared, part)
	}
}

func TestAllToAllSharingSpillsBeyondAdjacent(t *testing.T) {
	adj := New(l1cfg(), Options{Policy: arch.IndexByTBShared, Sharing: arch.ShareAdjacent})
	adj.ConfigureSlots(16)
	all := New(l1cfg(), Options{Policy: arch.IndexByTBShared, Sharing: arch.ShareAllToAll})
	all.ConfigureSlots(16)
	for _, tl := range []*TLB{adj, all} {
		// Fill the adjacent neighbour (slot 1) so adjacent spills fail.
		for i := 0; i < 4; i++ {
			tl.Insert(1, vm.VPN(500+i), vm.PPN(i))
		}
		for i := 0; i < 6; i++ {
			tl.Insert(0, vm.VPN(100+i), vm.PPN(i))
		}
	}
	if adj.Stats().Spills != 0 {
		t.Errorf("adjacent mode spilled %d with full neighbour, want 0", adj.Stats().Spills)
	}
	if all.Stats().Spills == 0 {
		t.Error("all-to-all mode failed to spill past the full adjacent neighbour")
	}
}

func TestShareCounterThresholdDelaysSharing(t *testing.T) {
	tl := New(l1cfg(), Options{
		Policy:                arch.IndexByTBShared,
		Sharing:               arch.ShareAdjacent,
		ShareCounterThreshold: 3,
	})
	tl.ConfigureSlots(16)
	for i := 0; i < 4; i++ {
		tl.Insert(0, vm.VPN(100+i), vm.PPN(i))
	}
	tl.Insert(0, 200, 9) // opportunity 1
	tl.Insert(0, 201, 9) // opportunity 2
	if tl.SharingActive(0) {
		t.Fatal("sharing activated before threshold")
	}
	tl.Insert(0, 202, 9) // opportunity 3: activates
	if !tl.SharingActive(0) {
		t.Error("sharing not activated at threshold")
	}
}

func TestCompressionCoalescesContiguousRun(t *testing.T) {
	tl := New(l1cfg(), Options{Policy: arch.IndexByAddress, Compression: true})
	// 8 contiguous pages with contiguous frames: one entry.
	for i := 0; i < 8; i++ {
		tl.Insert(0, vm.VPN(64+i), vm.PPN(900+i))
	}
	if got := tl.Occupancy(); got != 1 {
		t.Errorf("occupancy = %d for a contiguous 8-page run, want 1", got)
	}
	if got := tl.Stats().Coalesced; got != 7 {
		t.Errorf("Coalesced = %d, want 7", got)
	}
	for i := 0; i < 8; i++ {
		ppn, hit, _ := tl.Lookup(0, vm.VPN(64+i))
		if !hit || ppn != vm.PPN(900+i) {
			t.Errorf("page %d: ppn=%d hit=%v, want %d", i, ppn, hit, 900+i)
		}
	}
}

func TestCompressionRejectsNonContiguousDelta(t *testing.T) {
	tl := New(l1cfg(), Options{Policy: arch.IndexByAddress, Compression: true})
	tl.Insert(0, 64, 900)
	tl.Insert(0, 65, 999) // same group, different delta: separate entry
	if got := tl.Occupancy(); got != 2 {
		t.Errorf("occupancy = %d, want 2 (delta mismatch must not coalesce)", got)
	}
	p1, h1, _ := tl.Lookup(0, 64)
	p2, h2, _ := tl.Lookup(0, 65)
	if !h1 || !h2 || p1 != 900 || p2 != 999 {
		t.Errorf("lookups = (%d,%v) (%d,%v), want (900,true) (999,true)", p1, h1, p2, h2)
	}
}

func TestCompressionDoesNotHitAbsentGroupMember(t *testing.T) {
	tl := New(l1cfg(), Options{Policy: arch.IndexByAddress, Compression: true})
	tl.Insert(0, 64, 900)
	if _, hit, _ := tl.Lookup(0, 65); hit {
		t.Error("lookup hit a page never inserted (mask ignored)")
	}
}

func TestCompressionComposesWithPartitioning(t *testing.T) {
	tl := New(l1cfg(), Options{Policy: arch.IndexByTBShared, Sharing: arch.ShareAdjacent, Compression: true})
	tl.ConfigureSlots(8)
	for i := 0; i < 8; i++ {
		tl.Insert(2, vm.VPN(128+i), vm.PPN(700+i))
	}
	if got := tl.Occupancy(); got != 1 {
		t.Errorf("occupancy = %d, want 1 compressed entry in TB 2's partition", got)
	}
	ppn, hit, _ := tl.Lookup(2, 131)
	if !hit || ppn != 703 {
		t.Errorf("lookup = %d,%v want 703,true", ppn, hit)
	}
	if _, hit, _ := tl.Lookup(5, 131); hit {
		t.Error("another TB hit the compressed entry across partitions")
	}
}

func TestConfigureSlotsKeepsContents(t *testing.T) {
	tl := partTLB(16)
	tl.Insert(0, 42, 7)
	tl.ConfigureSlots(16) // re-launch with same shape
	if _, hit, _ := tl.Lookup(0, 42); !hit {
		t.Error("ConfigureSlots flushed contents; entries must survive for inter-TB reuse")
	}
}

func TestOnTBFinishKeepsEntries(t *testing.T) {
	tl := sharedTLB(16)
	tl.Insert(4, 42, 7)
	tl.OnTBFinish(4)
	if _, hit, _ := tl.Lookup(4, 42); !hit {
		t.Error("OnTBFinish flushed entries; the design explicitly avoids flushing")
	}
	// Out-of-range slots are ignored.
	tl.OnTBFinish(-1)
	tl.OnTBFinish(99)
}

func TestProbeSetsAccounting(t *testing.T) {
	tl := partTLB(2) // 8 sets per slot
	tl.Lookup(0, 1)
	tl.Lookup(1, 2)
	if got := tl.Stats().ProbeSets; got != 16 {
		t.Errorf("ProbeSets = %d after two 8-set lookups, want 16", got)
	}
}

// Property: under any interleaving of lookups and inserts across slots, a
// partitioned TLB never reports a hit for a (slot, vpn) pair that was not
// previously inserted by a slot sharing those sets, and hit PPNs always match
// the last inserted PPN for that VPN.
func TestPartitionedNoFalseHitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := sharedTLB(8)
		truth := make(map[vm.VPN]vm.PPN) // PPNs are per-VPN stable, as in a real page table
		for i := 0; i < 2000; i++ {
			slot := rng.Intn(8)
			vpn := vm.VPN(rng.Intn(100))
			ppn, ok := truth[vpn]
			if !ok {
				ppn = vm.PPN(rng.Intn(1 << 20))
				truth[vpn] = ppn
			}
			if rng.Intn(2) == 0 {
				tl.Insert(slot, vpn, ppn)
			} else if got, hit, _ := tl.Lookup(slot, vpn); hit && got != ppn {
				return false // wrong translation: correctness violation
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy never exceeds capacity, for every policy.
func TestOccupancyBoundedProperty(t *testing.T) {
	policies := []Options{
		{Policy: arch.IndexByAddress},
		{Policy: arch.IndexByTB},
		{Policy: arch.IndexByTBShared, Sharing: arch.ShareAdjacent},
		{Policy: arch.IndexByTBShared, Sharing: arch.ShareAllToAll},
		{Policy: arch.IndexByAddress, Compression: true},
	}
	for _, opt := range policies {
		opt := opt
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			tl := New(l1cfg(), opt)
			tl.ConfigureSlots(1 + rng.Intn(20))
			for i := 0; i < 500; i++ {
				tl.Insert(rng.Intn(tl.NumSlots()), vm.VPN(rng.Intn(300)), vm.PPN(rng.Intn(300)))
			}
			return tl.Occupancy() <= tl.Config().Entries
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("policy %+v: %v", opt, err)
		}
	}
}

func TestFlush(t *testing.T) {
	tl := addrTLB()
	for i := 0; i < 20; i++ {
		tl.Insert(0, vm.VPN(i), vm.PPN(i))
	}
	tl.Flush()
	if tl.Occupancy() != 0 {
		t.Errorf("occupancy = %d after Flush, want 0", tl.Occupancy())
	}
}

func TestNewPanicsOnBadCompressionSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted non-power-of-two compression span")
		}
	}()
	New(l1cfg(), Options{Compression: true, CompressionSpan: 6})
}

func TestFIFOIgnoresRecency(t *testing.T) {
	tl := New(l1cfg(), Options{Policy: arch.IndexByAddress, Replacement: arch.ReplaceFIFO})
	// Fill one set (VPNs ≡ 0 mod 16), then touch the oldest entry: FIFO
	// must still evict it.
	for i := 0; i < 4; i++ {
		tl.Insert(0, vm.VPN(16*i), vm.PPN(i))
	}
	if _, hit, _ := tl.Lookup(0, 0); !hit {
		t.Fatal("resident entry missed")
	}
	tl.Insert(0, 16*4, 99)
	if tl.Contains(0, 0) {
		t.Error("FIFO kept the oldest-inserted entry after a recency touch")
	}
	// Under LRU the same sequence keeps VPN 0 (see TestLRUReplacement).
}

func TestRandomReplacementBounded(t *testing.T) {
	tl := New(l1cfg(), Options{Policy: arch.IndexByAddress, Replacement: arch.ReplaceRandom})
	for i := 0; i < 200; i++ {
		tl.Insert(0, vm.VPN(16*i), vm.PPN(i))
	}
	if got := tl.Occupancy(); got > tl.Config().Entries {
		t.Errorf("occupancy %d exceeds capacity", got)
	}
	// Determinism: same sequence, same contents.
	t2 := New(l1cfg(), Options{Policy: arch.IndexByAddress, Replacement: arch.ReplaceRandom})
	for i := 0; i < 200; i++ {
		t2.Insert(0, vm.VPN(16*i), vm.PPN(i))
	}
	for i := 0; i < 200; i++ {
		if tl.Contains(0, vm.VPN(16*i)) != t2.Contains(0, vm.VPN(16*i)) {
			t.Fatal("random replacement nondeterministic")
		}
	}
}

func TestSetPartitionOverridesOwnedSets(t *testing.T) {
	tl := partTLB(4) // 16 sets, equal split 4 each
	tl.SetPartition([]int{0, 10, 12, 14, 16})
	want := [][2]int{{0, 10}, {10, 12}, {12, 14}, {14, 16}}
	for slot, w := range want {
		lo, hi := tl.ownedSets(slot)
		if lo != w[0] || hi != w[1] {
			t.Errorf("slot %d owns [%d,%d), want [%d,%d)", slot, lo, hi, w[0], w[1])
		}
	}
	if got := tl.Partition(); got == nil || got[1] != 10 {
		t.Fatalf("Partition() = %v, want the installed bounds", got)
	}
	// nil restores the equal split.
	tl.SetPartition(nil)
	if lo, hi := tl.ownedSets(1); lo != 4 || hi != 8 {
		t.Errorf("after SetPartition(nil) slot 1 owns [%d,%d), want [4,8)", lo, hi)
	}
}

func TestSetPartitionLookupFollowsBounds(t *testing.T) {
	tl := partTLB(2) // 16 sets: equal split 8+8
	tl.Insert(0, 100, 1)
	// Shrink slot 0 to a single set; its old entries may become unreachable
	// (they live in sets it no longer probes), and slot 1 probes 15 sets.
	tl.SetPartition([]int{0, 1, 16})
	if _, _, probed := tl.Lookup(0, 200); probed != 1 {
		t.Errorf("slot 0 probed %d sets, want 1", probed)
	}
	if _, _, probed := tl.Lookup(1, 200); probed != 15 {
		t.Errorf("slot 1 probed %d sets, want 15", probed)
	}
	// Entries inserted under the new bounds hit under the new bounds.
	tl.Insert(1, 300, 3)
	if _, hit, _ := tl.Lookup(1, 300); !hit {
		t.Error("slot 1 lost an entry inserted under the explicit partition")
	}
}

func TestSetPartitionResetByConfigureSlots(t *testing.T) {
	tl := partTLB(2)
	tl.SetPartition([]int{0, 2, 16})
	tl.ConfigureSlots(2)
	if tl.Partition() != nil {
		t.Fatal("ConfigureSlots kept the explicit partition")
	}
}

func TestSetPartitionValidates(t *testing.T) {
	tl := partTLB(2)
	for _, bad := range [][]int{
		{0, 16},     // wrong length
		{1, 8, 16},  // does not start at 0
		{0, 8, 15},  // does not end at Sets
		{0, 20, 16}, // non-monotone interior bound
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetPartition(%v) did not panic", bad)
				}
			}()
			tl.SetPartition(bad)
		}()
	}
	// Zero-width slots are legal (an inactive tenant owns nothing).
	tl.SetPartition([]int{0, 0, 16})
	if lo, hi := tl.ownedSets(0); lo != hi {
		t.Errorf("zero-width slot owns [%d,%d)", lo, hi)
	}
}
