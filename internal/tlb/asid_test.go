package tlb

// ASID tenancy properties. The multi-tenant simulator runs every shared TLB
// with ASID-tagged entries; these tests pin down the two guarantees the
// tenancy layer rests on: (1) under a static per-ASID partition, a tenant's
// hit/miss behaviour is exactly what it would see running alone — the
// partition is full performance isolation; (2) an ASID never hits another
// ASID's entries, even for the identical VPN, in any indexing mode.

import (
	"math/rand"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/vm"
)

// asidStream is a reproducible VPN reference stream with reuse: random
// walks over a window of vpns pages starting at base.
func asidStream(seed int64, base vm.VPN, vpns, n int) []vm.VPN {
	rng := rand.New(rand.NewSource(seed))
	out := make([]vm.VPN, n)
	for i := range out {
		out[i] = base + vm.VPN(rng.Intn(vpns))
	}
	return out
}

// runTenant replays stream as tenant asid against tl (slot = asid, the
// multi-tenant convention), inserting on every miss like the simulator's
// fill path, and returns the per-access hit pattern.
func runTenant(tl *TLB, asid vm.ASID, stream []vm.VPN) []bool {
	hits := make([]bool, len(stream))
	for i, vpn := range stream {
		_, hit, _ := tl.LookupA(asid, int(asid), vpn)
		if !hit {
			tl.InsertA(asid, int(asid), vpn, vm.PPN(vpn)+1)
		}
		hits[i] = hit
	}
	return hits
}

func TestStaticPartitionMatchesIsolatedRuns(t *testing.T) {
	// Two tenants with disjoint VPN streams interleaved through one
	// statically partitioned TLB must each see exactly the hit/miss
	// sequence of an isolated run — per-tenant miss counts included.
	cfg := arch.TLBConfig{Entries: 512, Assoc: 8, LookupLatency: 1}
	streams := [][]vm.VPN{
		asidStream(1, 0x1000, 128, 4000),
		asidStream(2, 0x9000, 256, 4000), // disjoint window, different reuse
	}

	// Isolated references: each tenant alone, same 2-slot partitioning, so
	// it owns the identical set range it owns in the co-run.
	var want [][]bool
	for i, s := range streams {
		tl := New(cfg, Options{Policy: arch.IndexByTB})
		tl.ConfigureSlots(2)
		want = append(want, runTenant(tl, vm.ASID(i), s))
	}

	// Co-run: one TLB, accesses interleaved access-by-access.
	co := New(cfg, Options{Policy: arch.IndexByTB})
	co.ConfigureSlots(2)
	got := [][]bool{make([]bool, 0, len(streams[0])), make([]bool, 0, len(streams[1]))}
	for i := range streams[0] {
		for tn := range streams {
			vpn := streams[tn][i]
			_, hit, _ := co.LookupA(vm.ASID(tn), tn, vpn)
			if !hit {
				co.InsertA(vm.ASID(tn), tn, vpn, vm.PPN(vpn)+1)
			}
			got[tn] = append(got[tn], hit)
		}
	}

	for tn := range streams {
		misses := func(hs []bool) int {
			n := 0
			for _, h := range hs {
				if !h {
					n++
				}
			}
			return n
		}
		if gm, wm := misses(got[tn]), misses(want[tn]); gm != wm {
			t.Errorf("tenant %d: %d misses co-running, %d in isolation", tn, gm, wm)
		}
		for i := range got[tn] {
			if got[tn][i] != want[tn][i] {
				t.Fatalf("tenant %d access %d: co-run hit=%v, isolated hit=%v — static partition leaked interference",
					tn, i, got[tn][i], want[tn][i])
			}
		}
	}
}

func TestASIDNeverCrossHits(t *testing.T) {
	// The same VPN inserted by two tenants must resolve per-tenant in every
	// indexing mode: entries coexist, lookups return the owner's PPN, and a
	// third tenant misses.
	mk := map[string]func() *TLB{
		"address": addrTLB,
		"static":  func() *TLB { return partTLB(3) },
		"dynamic": func() *TLB { return sharedTLB(3) },
	}
	for name, build := range mk {
		tl := build()
		slot := func(asid vm.ASID) int {
			if name == "address" {
				return 0
			}
			return int(asid)
		}
		const vpn = vm.VPN(0x4242)
		tl.InsertA(0, slot(0), vpn, 100)
		if _, hit, _ := tl.LookupA(1, slot(1), vpn); hit {
			t.Errorf("%s: ASID 1 hit ASID 0's entry", name)
		}
		tl.InsertA(1, slot(1), vpn, 200)
		p0, hit0, _ := tl.LookupA(0, slot(0), vpn)
		p1, hit1, _ := tl.LookupA(1, slot(1), vpn)
		if !hit0 || p0 != 100 {
			t.Errorf("%s: ASID 0 lookup = (%d, %v), want (100, hit)", name, p0, hit0)
		}
		if !hit1 || p1 != 200 {
			t.Errorf("%s: ASID 1 lookup = (%d, %v), want (200, hit)", name, p1, hit1)
		}
		if tl.ContainsA(2, slot(2), vpn) {
			t.Errorf("%s: ASID 2 sees other tenants' entries", name)
		}
	}
}

func TestASIDCrossHitProperty(t *testing.T) {
	// Randomized sweep of the same guarantee on the address-indexed design:
	// whatever tenant A inserts, tenant B never hits.
	rng := rand.New(rand.NewSource(42))
	tl := addrTLB()
	for i := 0; i < 2000; i++ {
		vpn := vm.VPN(rng.Intn(1 << 16))
		a := vm.ASID(rng.Intn(4))
		tl.InsertA(a, 0, vpn, vm.PPN(a)<<32|vm.PPN(vpn))
		b := vm.ASID(rng.Intn(4))
		if ppn, hit, _ := tl.LookupA(b, 0, vpn); hit {
			if owner := vm.ASID(ppn >> 32); owner != b {
				t.Fatalf("ASID %d hit ASID %d's entry for vpn %#x", b, owner, vpn)
			}
		}
	}
}
