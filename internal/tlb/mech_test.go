package tlb

import (
	"fmt"
	"math/rand"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/tlbmech"
	"gputlb/internal/vm"
)

// mechTLB builds an address-indexed TLB running the named mechanism.
func mechTLB(kind string) *TLB {
	return New(l1cfg(), Options{Policy: arch.IndexByAddress, Mech: tlbmech.Spec{Kind: kind}})
}

// driveMixed runs a deterministic mixed op sequence (inserts, lookups,
// updates, flushes) over multiple ASIDs and slots.
func driveMixed(tl *TLB, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 4000; i++ {
		asid := vm.ASID(rng.Intn(3))
		slot := rng.Intn(2)
		vpn := vm.VPN(rng.Intn(512))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			tl.InsertA(asid, slot, vpn, vm.PPN(uint64(asid)*100000+uint64(vpn)+1))
		case 9:
			if i%1000 == 999 {
				tl.Flush()
			}
		default:
			tl.LookupA(asid, slot, vpn)
		}
	}
}

// TestMechBaseEquivalent: an explicit Mech "base" TLB behaves identically to
// the zero-value Options TLB — same counters over the same op stream, in
// every index policy and with compression.
func TestMechBaseEquivalent(t *testing.T) {
	variants := []struct {
		name string
		opt  Options
	}{
		{"address", Options{Policy: arch.IndexByAddress}},
		{"partitioned", Options{Policy: arch.IndexByTB}},
		{"shared", Options{Policy: arch.IndexByTBShared, Sharing: arch.ShareAdjacent}},
		{"compressed", Options{Policy: arch.IndexByAddress, Compression: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			implicit := New(l1cfg(), v.opt)
			explicitOpt := v.opt
			explicitOpt.Mech = tlbmech.Spec{Kind: "base"}
			explicit := New(l1cfg(), explicitOpt)
			implicit.ConfigureSlots(2)
			explicit.ConfigureSlots(2)
			driveMixed(implicit, 7)
			driveMixed(explicit, 7)
			if implicit.Stats() != explicit.Stats() {
				t.Errorf("stats diverged:\nimplicit %+v\nexplicit %+v", implicit.Stats(), explicit.Stats())
			}
		})
	}
}

// TestSubentryNoCrossASIDLeak: under sub-entry sharing, a tenant's hit must
// always return the PPN that tenant inserted — never another tenant's frame
// under the shared tag — in every index policy, including after evictions,
// spills, and flushes.
func TestSubentryNoCrossASIDLeak(t *testing.T) {
	// want is the ground truth: the frame each tenant last inserted per VPN.
	frame := func(asid vm.ASID, vpn vm.VPN) vm.PPN {
		return vm.PPN(uint64(asid)<<32 | uint64(vpn) | 1)
	}
	variants := []Options{
		{Policy: arch.IndexByAddress, Mech: tlbmech.Spec{Kind: "subentry"}},
		{Policy: arch.IndexByTB, Mech: tlbmech.Spec{Kind: "subentry"}},
		{Policy: arch.IndexByTBShared, Sharing: arch.ShareAdjacent, Mech: tlbmech.Spec{Kind: "subentry"}},
	}
	for vi, opt := range variants {
		t.Run(fmt.Sprint(opt.Policy), func(t *testing.T) {
			tl := New(l1cfg(), opt)
			tl.ConfigureSlots(4)
			rng := rand.New(rand.NewSource(int64(vi) + 1))
			for i := 0; i < 20000; i++ {
				asid := vm.ASID(rng.Intn(4))
				slot := int(asid)
				vpn := vm.VPN(rng.Intn(256))
				if rng.Intn(3) == 0 {
					tl.InsertA(asid, slot, vpn, frame(asid, vpn))
					continue
				}
				if ppn, hit, _ := tl.LookupA(asid, slot, vpn); hit && ppn != frame(asid, vpn) {
					t.Fatalf("op %d: tenant %d vpn %d hit frame %#x, want its own %#x",
						i, asid, vpn, uint64(ppn), uint64(frame(asid, vpn)))
				}
			}
			// Every translation still held must belong to the tenant that
			// inserted it.
			tl.Translations(func(asid vm.ASID, vpn vm.VPN, ppn vm.PPN) {
				if ppn != frame(asid, vpn) {
					t.Errorf("held translation (%d, %d) -> %#x, want %#x",
						asid, vpn, uint64(ppn), uint64(frame(asid, vpn)))
				}
			})
		})
	}
}

// largereachCheck demand-pages an address space in randomized order, mirrors
// every resolved translation into a largereach TLB (as the simulator's fill
// path does), and asserts the invariant: every (asid, vpn, ppn) the TLB
// holds matches the page table exactly — an entry's reach never exceeds the
// contiguity the allocator really provided.
func largereachCheck(t *testing.T, as *vm.AddressSpace, seed int64) {
	t.Helper()
	tl := New(l1cfg(), Options{Policy: arch.IndexByAddress, Mech: tlbmech.Spec{Kind: "largereach"}})
	pt := as.PageTable()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 20000; i++ {
		a := vm.Addr(rng.Intn(1<<22)) + vm.Addr(rng.Intn(4))<<21 // within the first regions
		ppn, _ := as.Touch(a)
		tl.InsertA(0, 0, as.VPNOf(a), ppn)
		if rng.Intn(4) == 0 {
			tl.LookupA(0, 0, as.VPNOf(vm.Addr(rng.Intn(1<<23))))
		}
	}
	held := 0
	tl.Translations(func(asid vm.ASID, vpn vm.VPN, ppn vm.PPN) {
		held++
		want, ok := pt.Translate(vpn)
		if !ok {
			t.Errorf("TLB holds unmapped vpn %d", vpn)
			return
		}
		if ppn != want {
			t.Errorf("TLB holds vpn %d -> %d, page table says %d", vpn, ppn, want)
		}
	})
	if held == 0 {
		t.Fatal("TLB held no translations after 20000 inserts")
	}
}

// TestLargereachMatchesPageTableContig: the contiguity invariant under the
// allocator largereach is designed for.
func TestLargereachMatchesPageTableContig(t *testing.T) {
	as := vm.NewAddressSpace(12, 1, 0)
	if err := as.SetAllocMode(vm.AllocContig); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Alloc("a", 1<<23); err != nil {
		t.Fatal(err)
	}
	largereachCheck(t, as, 11)
}

// TestLargereachMatchesPageTableScattered: with a fragmented first-touch
// allocator, runs stay short but the invariant must still hold — reach
// reflects only real contiguity, whatever the allocator does.
func TestLargereachMatchesPageTableScattered(t *testing.T) {
	as := vm.NewAddressSpace(12, 1, 5)
	if _, err := as.Alloc("a", 1<<23); err != nil {
		t.Fatal(err)
	}
	largereachCheck(t, as, 13)
}

// mechProbeTLB builds a warmed TLB for the probe benchmarks.
func mechProbeTLB(kind string) *TLB {
	tl := mechTLB(kind)
	for i := 0; i < 256; i++ {
		tl.InsertA(vm.ASID(i%2), 0, vm.VPN(i*3), vm.PPN(i*3+1))
	}
	return tl
}

// TestMechProbeZeroAlloc pins the allocation-free lookup hot path for every
// mechanism: side tables are sized at Attach, so steady-state probes must
// never allocate.
func TestMechProbeZeroAlloc(t *testing.T) {
	for _, kind := range tlbmech.Known() {
		t.Run(kind, func(t *testing.T) {
			tl := mechProbeTLB(kind)
			allocs := testing.AllocsPerRun(100, func() {
				for i := 0; i < 256; i++ {
					tl.LookupA(vm.ASID(i%2), 0, vm.VPN(i*3))
					tl.InsertA(vm.ASID(i%2), 0, vm.VPN(i*5), vm.PPN(i*5+1))
				}
			})
			if allocs != 0 {
				t.Errorf("%s probe allocated %.1f times per run, want 0", kind, allocs)
			}
		})
	}
}

// BenchmarkMechProbe measures the per-lookup cost of each mechanism on a
// warmed address-indexed TLB (mixed hits and misses).
func BenchmarkMechProbe(b *testing.B) {
	for _, kind := range tlbmech.Known() {
		b.Run(kind, func(b *testing.B) {
			tl := mechProbeTLB(kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tl.LookupA(vm.ASID(i&1), 0, vm.VPN(i%1024))
			}
		})
	}
}
