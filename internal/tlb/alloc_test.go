package tlb

// Allocation regression guards for the TLB lookup path. Lookup (and the
// setsToProbe scan behind it) runs once per coalesced page per issued memory
// instruction; probeBuf reuse makes it allocation-free, and these tests pin
// that so the per-instruction hot path cannot regress silently.

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/vm"
)

// fillSome inserts a spread of pages across slots so lookups exercise both
// hit and miss paths over populated sets.
func fillSome(t *TLB, slots int) {
	for s := 0; s < slots; s++ {
		for i := 0; i < 64; i++ {
			vpn := vm.VPN(s*1024 + i*3)
			t.Insert(s, vpn, vm.PPN(vpn+7))
		}
	}
}

func lookupAllocs(t *TLB, slots int) float64 {
	return testing.AllocsPerRun(100, func() {
		for s := 0; s < slots; s++ {
			for i := 0; i < 64; i++ {
				t.Lookup(s, vm.VPN(s*1024+i*2))
			}
		}
	})
}

func TestLookupZeroAllocIndexByAddress(t *testing.T) {
	cfg := arch.Default().L1TLB
	tlb := New(cfg, Options{Policy: arch.IndexByAddress})
	tlb.ConfigureSlots(4)
	fillSome(tlb, 4)
	if allocs := lookupAllocs(tlb, 4); allocs != 0 {
		t.Errorf("Lookup (IndexByAddress) allocated %.1f times per run, want 0", allocs)
	}
}

func TestLookupZeroAllocIndexByTBShared(t *testing.T) {
	cfg := arch.Default().L1TLB
	tlb := New(cfg, Options{Policy: arch.IndexByTBShared, Sharing: arch.ShareAdjacent})
	tlb.ConfigureSlots(4)
	fillSome(tlb, 4)
	if allocs := lookupAllocs(tlb, 4); allocs != 0 {
		t.Errorf("Lookup (IndexByTBShared) allocated %.1f times per run, want 0", allocs)
	}
}

func TestContainsZeroAlloc(t *testing.T) {
	cfg := arch.Default().L1TLB
	tlb := New(cfg, Options{Policy: arch.IndexByAddress})
	tlb.ConfigureSlots(4)
	fillSome(tlb, 4)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			tlb.Contains(1, vm.VPN(1024+i*3))
		}
	})
	if allocs != 0 {
		t.Errorf("Contains allocated %.1f times per run, want 0", allocs)
	}
}
