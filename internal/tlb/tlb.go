package tlb

import (
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/stats"
	"gputlb/internal/tlbmech"
	"gputlb/internal/vm"
)

// DefaultCompressionSpan is the aligned group size (in pages) a compressed
// entry can cover.
const DefaultCompressionSpan = 8

// Options selects the TLB variant.
type Options struct {
	Policy  arch.TLBIndexPolicy
	Sharing arch.SharingMode
	// ShareCounterThreshold > 0 replaces the 1-bit sharing flag with a
	// saturating counter: sharing into a neighbour activates only after the
	// threshold number of spill opportunities (paper future-work ablation).
	ShareCounterThreshold int
	// Compression enables contiguity-coalescing entries (a base-mechanism
	// feature; incompatible with a non-base Mech).
	Compression bool
	// CompressionSpan is the aligned group size in pages (power of two).
	// Zero means DefaultCompressionSpan.
	CompressionSpan int
	// Replacement selects the victim policy (LRU by default).
	Replacement arch.TLBReplacementPolicy
	// Mech selects the pluggable translation mechanism (tlbmech.Spec); the
	// zero value is the base mechanism, byte-identical to the
	// pre-mechanism TLB.
	Mech tlbmech.Spec
	// OnEvict, when set, is called with every valid translation this TLB
	// evicts (victim write-back: an L1 TLB hands its victims to the L2 so
	// L1-resident translations do not go stale there). Compressed entries
	// report their base page; sub-entry and large-reach entries report one
	// translation per covered (tenant, page). The victim's ASID rides along
	// so multi-tenant write-backs land in the right tenant's L2 partition.
	OnEvict func(asid vm.ASID, vpn vm.VPN, ppn vm.PPN)
}

// Stats counts TLB activity. ProbeSets accumulates the number of sets
// searched across all lookups: with a fixed per-set latency it is the total
// lookup-cycle cost, which is how the partitioning overhead enters the
// timing model.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	ProbeSets  int64
	Evictions  int64
	Spills     int64 // victims relocated into a neighbour's set
	Coalesced  int64 // inserts absorbed with new coverage (compressed pages, sub-slots, run extensions)
	FlagSets   int64 // sharing-flag activations
	FlagResets int64
}

// HitRate returns Hits/Accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// TLB is one translation buffer. The mechanism-independent machinery lives
// here — set geometry, TB-slot partitioning, adjacent-set sharing,
// replacement, the baseline counters — while the entry format and its
// match/absorb/fill semantics are delegated to the configured
// tlbmech.Mechanism. It is not safe for concurrent use; the simulator
// drives each TLB from a single goroutine.
type TLB struct {
	cfg  arch.TLBConfig
	opt  Options
	sets [][]tlbmech.Entry

	mech tlbmech.Mechanism
	// deadAware caches mech.DeadAware so the base victim scan pays no
	// interface calls.
	deadAware bool

	clock    uint64 // LRU stamp source
	numSlots int    // concurrent TB slots configured on the owning SM

	// shareWith[i] is the bitmask of TB slots whose sets slot i may also
	// use. Adjacent mode only ever sets bit (i+1)%numSlots; all-to-all may
	// set any. Cleared on ConfigureSlots and on TB finish.
	shareWith []uint32
	// shareCount[i] counts spill opportunities toward ShareCounterThreshold.
	shareCount []int

	// partition, when non-nil, overrides ownedSets' equal split with
	// explicit contiguous per-slot bounds (SetPartition): slot i owns sets
	// [partition[i], partition[i+1]). Reset by ConfigureSlots.
	partition []int

	// probeBuf backs the set list setsToProbe returns: lookups are the
	// simulator's hottest loop and must not allocate. The buffer is
	// invalidated by the next setsToProbe call, which every user tolerates
	// (the TLB is single-goroutine and never probes itself reentrantly).
	probeBuf []int

	stats Stats
}

// New builds a TLB. cfg must already be validated.
func New(cfg arch.TLBConfig, opt Options) *TLB {
	if opt.Compression && opt.CompressionSpan == 0 {
		opt.CompressionSpan = DefaultCompressionSpan
	}
	if opt.Compression && opt.CompressionSpan&(opt.CompressionSpan-1) != 0 {
		panic(fmt.Sprintf("tlb: compression span %d not a power of two", opt.CompressionSpan))
	}
	t := &TLB{cfg: cfg, opt: opt}
	m, err := tlbmech.Build(opt.Mech, tlbmech.Geometry{
		Sets:            cfg.Sets(),
		Assoc:           cfg.Assoc,
		Compression:     opt.Compression,
		CompressionSpan: opt.CompressionSpan,
	})
	if err != nil {
		panic("tlb: " + err.Error())
	}
	t.mech = m
	t.deadAware = m.DeadAware()
	t.sets = make([][]tlbmech.Entry, cfg.Sets())
	backing := make([]tlbmech.Entry, cfg.Sets()*cfg.Assoc)
	for i := range t.sets {
		t.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	t.ConfigureSlots(1)
	return t
}

// Config returns the geometry.
func (t *TLB) Config() arch.TLBConfig { return t.cfg }

// MechName returns the configured mechanism's name.
func (t *TLB) MechName() string { return t.mech.Name() }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// RegisterStats registers the TLB's counters and rates into r; values are
// read lazily at snapshot time. Non-base mechanisms add their own metrics
// under a "mech" child node; base registers nothing extra, keeping base
// snapshots byte-identical to the pre-mechanism TLB.
func (t *TLB) RegisterStats(r *stats.Registry) {
	r.CounterFunc("accesses", func() int64 { return t.stats.Accesses })
	r.CounterFunc("hits", func() int64 { return t.stats.Hits })
	r.CounterFunc("misses", func() int64 { return t.stats.Misses })
	r.CounterFunc("probe_sets", func() int64 { return t.stats.ProbeSets })
	r.CounterFunc("evictions", func() int64 { return t.stats.Evictions })
	r.CounterFunc("spills", func() int64 { return t.stats.Spills })
	r.CounterFunc("coalesced", func() int64 { return t.stats.Coalesced })
	r.CounterFunc("flag_sets", func() int64 { return t.stats.FlagSets })
	r.CounterFunc("flag_resets", func() int64 { return t.stats.FlagResets })
	r.GaugeFunc("hit_rate", func() float64 { return t.stats.HitRate() })
	r.GaugeFunc("occupancy", func() float64 { return float64(t.Occupancy()) })
	t.mech.RegisterStats(r)
}

// ResetStats zeroes the counters without touching contents.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// AddStats folds externally accumulated counters (an address slice's
// sub-TLB) into this TLB's stats so one registered stats node reports the
// combined activity.
func (t *TLB) AddStats(s Stats) {
	t.stats.Accesses += s.Accesses
	t.stats.Hits += s.Hits
	t.stats.Misses += s.Misses
	t.stats.ProbeSets += s.ProbeSets
	t.stats.Evictions += s.Evictions
	t.stats.Spills += s.Spills
	t.stats.Coalesced += s.Coalesced
	t.stats.FlagSets += s.FlagSets
	t.stats.FlagResets += s.FlagResets
}

// FoldMech folds src's mechanism-level counters into this TLB's mechanism
// — the sliced barrier's sub-TLB roll-up, the mechanism analogue of
// AddStats. Both TLBs must run the same mechanism kind.
func (t *TLB) FoldMech(src *TLB) { t.mech.Fold(src.mech) }

// ConfigureSlots sets the number of concurrent TB slots the owning SM runs
// (determined at kernel launch from the TB resource needs). It resets the
// sharing state but deliberately keeps TLB contents: TB ids are reused
// across TBs precisely so entries survive for potential inter-TB reuse.
func (t *TLB) ConfigureSlots(n int) {
	if n < 1 {
		n = 1
	}
	t.numSlots = n
	t.shareWith = make([]uint32, n)
	t.shareCount = make([]int, n)
	t.partition = nil
}

// NumSlots returns the configured concurrent TB slot count.
func (t *TLB) NumSlots() int { return t.numSlots }

// ownedSets returns the contiguous set range [lo,hi) owned by slot. With
// more slots than sets, slots fold onto single sets (slot mod sets). An
// explicit SetPartition overrides the equal split.
func (t *TLB) ownedSets(slot int) (lo, hi int) {
	if t.partition != nil {
		return t.partition[slot], t.partition[slot+1]
	}
	s := len(t.sets)
	n := t.numSlots
	if n > s {
		i := slot % s
		return i, i + 1
	}
	return slot * s / n, (slot + 1) * s / n
}

// SetPartition overrides the partitioned index policies' equal set split
// with explicit contiguous per-slot bounds: slot i owns sets
// [bounds[i], bounds[i+1]). bounds must have NumSlots+1 monotone entries
// spanning [0, Sets]; it is copied. Existing entries are kept — a set
// handed to another slot simply stops being probed by its old owner, and
// its stale entries age out of the new owner's pool. nil restores the
// equal split (as does ConfigureSlots).
func (t *TLB) SetPartition(bounds []int) {
	if bounds == nil {
		t.partition = nil
		return
	}
	if len(bounds) != t.numSlots+1 {
		panic(fmt.Sprintf("tlb: partition has %d bounds for %d slots", len(bounds), t.numSlots))
	}
	if bounds[0] != 0 || bounds[t.numSlots] != len(t.sets) {
		panic(fmt.Sprintf("tlb: partition spans [%d,%d], want [0,%d]",
			bounds[0], bounds[t.numSlots], len(t.sets)))
	}
	for i := 0; i < t.numSlots; i++ {
		if bounds[i+1] < bounds[i] {
			panic(fmt.Sprintf("tlb: partition not monotone at slot %d", i))
		}
	}
	if t.partition == nil {
		t.partition = make([]int, len(bounds))
	}
	copy(t.partition, bounds)
}

// Partition returns the explicit set partition, or nil when the equal
// split is in effect. The returned slice is the TLB's own copy; callers
// must not mutate it.
func (t *TLB) Partition() []int { return t.partition }

// entryIndex is the global per-entry index mechanisms key side tables by.
func (t *TLB) entryIndex(si, w int) int { return si*t.cfg.Assoc + w }

// setsToProbe lists the sets a lookup/insert for (slot, vpn) must search, in
// priority order (own sets first, then shared neighbours' sets). The
// returned slice aliases t.probeBuf and is only valid until the next call.
func (t *TLB) setsToProbe(slot int, vpn vm.VPN) []int {
	if t.opt.Policy == arch.IndexByAddress {
		t.probeBuf = append(t.probeBuf[:0], int(t.mech.Index(vpn))&(len(t.sets)-1))
		return t.probeBuf
	}
	lo, hi := t.ownedSets(slot)
	out := t.probeBuf[:0]
	for s := lo; s < hi; s++ {
		out = append(out, s)
	}
	if t.opt.Policy == arch.IndexByTBShared {
		mask := t.shareWith[slot]
		for other := 0; other < t.numSlots && mask != 0; other++ {
			if mask&(1<<uint(other)) == 0 {
				continue
			}
			mask &^= 1 << uint(other)
			olo, ohi := t.ownedSets(other)
			for s := olo; s < ohi; s++ {
				if s < lo || s >= hi { // folding can alias sets
					out = append(out, s)
				}
			}
		}
	}
	t.probeBuf = out
	return out
}

// Lookup translates vpn for the TB in the given slot under ASID 0 — the
// single-tenant path. It returns the PPN on a hit and the number of sets
// probed (each costing cfg.LookupLatency cycles). slot is ignored under
// IndexByAddress.
func (t *TLB) Lookup(slot int, vpn vm.VPN) (ppn vm.PPN, hit bool, setsProbed int) {
	return t.LookupA(0, slot, vpn)
}

// LookupA is Lookup for an explicit tenant: only entries the mechanism
// matches for asid can hit, so co-running tenants sharing a physical TLB
// contend for capacity without aliasing each other's translations.
func (t *TLB) LookupA(asid vm.ASID, slot int, vpn vm.VPN) (ppn vm.PPN, hit bool, setsProbed int) {
	t.clock++
	t.stats.Accesses++
	tag := t.mech.Tag(vpn)
	probe := t.setsToProbe(slot, vpn)
	t.stats.ProbeSets += int64(len(probe))
	for _, si := range probe {
		ways := t.sets[si]
		for w := range ways {
			e := &ways[w]
			if !e.Valid || e.VPN != tag {
				continue
			}
			p, ok := t.mech.Lookup(e, t.entryIndex(si, w), asid, vpn)
			if !ok {
				continue
			}
			e.Stamp = t.clock
			t.stats.Hits++
			return p, true, len(probe)
		}
	}
	t.stats.Misses++
	return 0, false, len(probe)
}

// Contains reports whether vpn is present for slot under ASID 0 without
// disturbing LRU, stats, or predictor state (test/diagnostic helper).
func (t *TLB) Contains(slot int, vpn vm.VPN) bool {
	return t.ContainsA(0, slot, vpn)
}

// ContainsA is Contains for an explicit tenant.
func (t *TLB) ContainsA(asid vm.ASID, slot int, vpn vm.VPN) bool {
	tag := t.mech.Tag(vpn)
	for _, si := range t.setsToProbe(slot, vpn) {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if !e.Valid || e.VPN != tag {
				continue
			}
			if _, ok := t.mech.Peek(e, t.entryIndex(si, w), asid, vpn); ok {
				return true
			}
		}
	}
	return false
}

// UpdateA rewrites the payload of an existing entry for (asid, slot, vpn)
// without touching the LRU stamp, the probe clock, or any counter,
// reporting whether the entry was found. The sharded engine uses it to
// resolve a placeholder entry installed at miss time into the real PPN at
// the epoch barrier: the entry's replacement age must reflect the miss (the
// insertion), not the fill, so the two engines age entries identically.
func (t *TLB) UpdateA(asid vm.ASID, slot int, vpn vm.VPN, ppn vm.PPN) bool {
	tag := t.mech.Tag(vpn)
	for _, si := range t.setsToProbe(slot, vpn) {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if !e.Valid || e.VPN != tag {
				continue
			}
			if t.mech.Update(e, t.entryIndex(si, w), asid, vpn, ppn) {
				return true
			}
		}
	}
	return false
}

// Insert installs vpn→ppn for the TB in slot after a miss has been resolved,
// under ASID 0 (the single-tenant path). The mechanism first tries to
// absorb the translation into an existing tag-matching entry (refresh,
// compressed-group coalesce, sub-slot fill, run extension). Under
// partitioning with sharing, an eviction victim may be relocated into the
// adjacent TB's sets when a way there is free, activating the sharing flag
// (paper Fig. 9).
func (t *TLB) Insert(slot int, vpn vm.VPN, ppn vm.PPN) {
	t.InsertA(0, slot, vpn, ppn)
}

// InsertA is Insert for an explicit tenant; the entry is tagged with asid
// and only lookups the mechanism matches for it can hit.
func (t *TLB) InsertA(asid vm.ASID, slot int, vpn vm.VPN, ppn vm.PPN) {
	t.clock++
	tag := t.mech.Tag(vpn)

	probe := t.setsToProbe(slot, vpn)
	if len(probe) == 0 {
		return // zero-width partition slot: nowhere to hold the entry
	}

	// Refresh or coalesce into an existing entry.
	for _, si := range probe {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if !e.Valid || e.VPN != tag {
				continue
			}
			switch t.mech.Absorb(e, t.entryIndex(si, w), asid, vpn, ppn, t.clock) {
			case tlbmech.AbsorbCoalesced:
				t.stats.Coalesced++
				return
			case tlbmech.AbsorbRefreshed:
				return
			}
		}
	}

	// Free way in any probed set? Own sets come first in probe order, so a
	// TB prefers its own partition; once the sharing flag is set the
	// neighbour's sets are part of the probed pool.
	for _, si := range probe {
		for w := range t.sets[si] {
			if !t.sets[si][w].Valid {
				t.mech.Fill(&t.sets[si][w], t.entryIndex(si, w), asid, vpn, tag, ppn, t.clock)
				return
			}
		}
	}

	// The probed sets are oversubscribed. Under partitioning+sharing an
	// overflowing TB checks the adjacent TB's sets (paper Figure 9): if the
	// neighbour has an empty way — or, more generally, its LRU entry is
	// staler than our own victim, i.e. the neighbour underutilizes its
	// sets — the sharing flag is set and the two TBs' sets become one
	// replacement pool. That is the "balance the number of translations
	// across multiple sets" behaviour of Section IV-B; the empty-slot
	// condition the paper states is the special case of a never-used way.
	if t.opt.Policy == arch.IndexByTBShared {
		if t.maybeActivateSharing(slot) {
			probe = t.setsToProbe(slot, vpn)
			for _, si := range probe {
				for w := range t.sets[si] {
					if !t.sets[si][w].Valid {
						t.mech.Fill(&t.sets[si][w], t.entryIndex(si, w), asid, vpn, tag, ppn, t.clock)
						t.stats.Spills++
						return
					}
				}
			}
		}
	}

	// Evict the victim among the probed sets: predicted-dead entries first
	// (dead-aware mechanisms only), then the configured replacement policy.
	vsi, vw := t.victim(probe)
	t.stats.Evictions++
	vidx := t.entryIndex(vsi, vw)
	if v := &t.sets[vsi][vw]; v.Valid {
		t.mech.OnEvict(v, vidx)
		if t.opt.OnEvict != nil {
			t.mech.Translations(v, vidx, t.opt.OnEvict)
		}
	}
	t.mech.Fill(&t.sets[vsi][vw], vidx, asid, vpn, tag, ppn, t.clock)
}

// maybeActivateSharing decides whether an oversubscribed slot should start
// sharing a neighbour's sets, returning true when a new flag was set.
// Neighbours already shared with are skipped (their sets are in the probe
// pool already); a neighbour qualifies when its LRU entry is older than the
// slot's own LRU victim (an empty way is trivially oldest).
func (t *TLB) maybeActivateSharing(slot int) bool {
	if t.numSlots < 2 {
		return false
	}
	neighbours := []int{(slot + 1) % t.numSlots}
	if t.opt.Sharing == arch.ShareAllToAll {
		neighbours = neighbours[:0]
		for o := 1; o < t.numSlots; o++ {
			neighbours = append(neighbours, (slot+o)%t.numSlots)
		}
	}
	myLo, myHi := t.ownedSets(slot)
	ownStamp := t.oldestStamp(myLo, myHi)
	for _, nb := range neighbours {
		if t.shareWith[slot]&(1<<uint(nb)) != 0 {
			continue
		}
		lo, hi := t.ownedSets(nb)
		if lo == myLo && hi == myHi {
			continue // set folding: neighbour aliases our own sets
		}
		if t.oldestStamp(lo, hi) >= ownStamp {
			continue // neighbour is at least as busy: do not steal
		}
		// Counter ablation: require threshold overflow events before
		// sharing activates.
		if th := t.opt.ShareCounterThreshold; th > 0 {
			t.shareCount[slot]++
			if t.shareCount[slot] < th {
				return false
			}
		}
		t.shareWith[slot] |= 1 << uint(nb)
		t.stats.FlagSets++
		return true
	}
	return false
}

// oldestStamp returns the minimum LRU stamp in sets [lo,hi); empty ways
// report stamp 0.
func (t *TLB) oldestStamp(lo, hi int) uint64 {
	best := ^uint64(0)
	for si := lo; si < hi; si++ {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if !e.Valid {
				return 0
			}
			if e.Stamp < best {
				best = e.Stamp
			}
		}
	}
	return best
}

// victim returns the way to evict among the given sets. A dead-aware
// mechanism's predicted-dead entries are preferred victims (oldest first,
// with the replacement policy's tie-break); otherwise — and always for
// base — the configured replacement policy decides.
func (t *TLB) victim(sets []int) (setIdx, wayIdx int) {
	if t.deadAware {
		best := ^uint64(0)
		found := false
		for _, si := range sets {
			for w := range t.sets[si] {
				e := &t.sets[si][w]
				if !e.Valid || !t.mech.Dead(e, t.entryIndex(si, w)) {
					continue
				}
				if e.Stamp <= best {
					best = e.Stamp
					setIdx, wayIdx = si, w
					found = true
				}
			}
		}
		if found {
			return setIdx, wayIdx
		}
	}
	return t.lruVictim(sets)
}

// lruVictim returns the victim way among the given sets under the
// configured replacement policy.
func (t *TLB) lruVictim(sets []int) (setIdx, wayIdx int) {
	if t.opt.Replacement == arch.ReplaceRandom {
		// Deterministic xorshift over the probe clock.
		x := t.clock
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		n := uint64(len(sets) * t.cfg.Assoc)
		pick := int(x % n)
		return sets[pick/t.cfg.Assoc], pick % t.cfg.Assoc
	}
	best := ^uint64(0)
	for _, si := range sets {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			key := e.Stamp
			if t.opt.Replacement == arch.ReplaceFIFO {
				key = e.Filled
			}
			if key <= best {
				best = key
				setIdx, wayIdx = si, w
			}
		}
	}
	return setIdx, wayIdx
}

// OnTBFinish is called when the TB occupying slot completes: its sharing
// flag is reset, as are the flags of TBs that were sharing into its sets.
// Contents are kept (no flush) for potential inter-TB reuse.
func (t *TLB) OnTBFinish(slot int) {
	if slot < 0 || slot >= t.numSlots {
		return
	}
	if t.shareWith[slot] != 0 {
		t.stats.FlagResets++
	}
	t.shareWith[slot] = 0
	t.shareCount[slot] = 0
	for o := 0; o < t.numSlots; o++ {
		if t.shareWith[o]&(1<<uint(slot)) != 0 {
			t.shareWith[o] &^= 1 << uint(slot)
			t.stats.FlagResets++
		}
	}
}

// SharingActive reports whether slot currently shares into any neighbour
// (test/diagnostic helper).
func (t *TLB) SharingActive(slot int) bool {
	return slot >= 0 && slot < t.numSlots && t.shareWith[slot] != 0
}

// Flush invalidates all entries (used between kernels in tests; the design
// itself never flushes on TB completion).
func (t *TLB) Flush() {
	for si := range t.sets {
		for w := range t.sets[si] {
			t.sets[si][w] = tlbmech.Entry{}
		}
	}
	t.mech.OnFlush()
}

// Occupancy returns the number of valid entries (coalesced, sub-entry, and
// large-reach entries count once regardless of coverage).
func (t *TLB) Occupancy() int {
	n := 0
	for si := range t.sets {
		for w := range t.sets[si] {
			if t.sets[si][w].Valid {
				n++
			}
		}
	}
	return n
}

// Translations enumerates every translation currently held, including the
// multiple (tenant, page) pairs a coalesced, sub-entry, or large-reach
// record covers (test/diagnostic helper).
func (t *TLB) Translations(yield func(asid vm.ASID, vpn vm.VPN, ppn vm.PPN)) {
	for si := range t.sets {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if e.Valid {
				t.mech.Translations(e, t.entryIndex(si, w), yield)
			}
		}
	}
}
