package tlb

import (
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/stats"
	"gputlb/internal/vm"
)

// DefaultCompressionSpan is the aligned group size (in pages) a compressed
// entry can cover.
const DefaultCompressionSpan = 8

// Options selects the TLB variant.
type Options struct {
	Policy  arch.TLBIndexPolicy
	Sharing arch.SharingMode
	// ShareCounterThreshold > 0 replaces the 1-bit sharing flag with a
	// saturating counter: sharing into a neighbour activates only after the
	// threshold number of spill opportunities (paper future-work ablation).
	ShareCounterThreshold int
	// Compression enables contiguity-coalescing entries.
	Compression bool
	// CompressionSpan is the aligned group size in pages (power of two).
	// Zero means DefaultCompressionSpan.
	CompressionSpan int
	// Replacement selects the victim policy (LRU by default).
	Replacement arch.TLBReplacementPolicy
	// OnEvict, when set, is called with every valid entry this TLB evicts
	// (victim write-back: an L1 TLB hands its victims to the L2 so
	// L1-resident translations do not go stale there). Compressed entries
	// report their base page. The victim's ASID rides along so multi-tenant
	// write-backs land in the right tenant's L2 partition.
	OnEvict func(asid vm.ASID, vpn vm.VPN, ppn vm.PPN)
}

// Stats counts TLB activity. ProbeSets accumulates the number of sets
// searched across all lookups: with a fixed per-set latency it is the total
// lookup-cycle cost, which is how the partitioning overhead enters the
// timing model.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	ProbeSets  int64
	Evictions  int64
	Spills     int64 // victims relocated into a neighbour's set
	Coalesced  int64 // inserts absorbed into an existing compressed entry
	FlagSets   int64 // sharing-flag activations
	FlagResets int64
}

// HitRate returns Hits/Accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type entry struct {
	valid  bool
	asid   vm.ASID // owning tenant; a lookup only matches its own ASID
	vpn    vm.VPN  // full VPN (partitioned designs) or group base (compressed)
	ppn    vm.PPN  // PPN of vpn (compressed: of the group base)
	mask   uint64  // compressed: bitmap of present pages in the group
	stamp  uint64  // LRU timestamp
	filled uint64  // insertion timestamp (FIFO)
}

// TLB is one translation buffer. It is not safe for concurrent use; the
// simulator drives each TLB from a single goroutine.
type TLB struct {
	cfg  arch.TLBConfig
	opt  Options
	sets [][]entry

	clock    uint64 // LRU stamp source
	numSlots int    // concurrent TB slots configured on the owning SM

	// shareWith[i] is the bitmask of TB slots whose sets slot i may also
	// use. Adjacent mode only ever sets bit (i+1)%numSlots; all-to-all may
	// set any. Cleared on ConfigureSlots and on TB finish.
	shareWith []uint32
	// shareCount[i] counts spill opportunities toward ShareCounterThreshold.
	shareCount []int

	// partition, when non-nil, overrides ownedSets' equal split with
	// explicit contiguous per-slot bounds (SetPartition): slot i owns sets
	// [partition[i], partition[i+1]). Reset by ConfigureSlots.
	partition []int

	// probeBuf backs the set list setsToProbe returns: lookups are the
	// simulator's hottest loop and must not allocate. The buffer is
	// invalidated by the next setsToProbe call, which every user tolerates
	// (the TLB is single-goroutine and never probes itself reentrantly).
	probeBuf []int

	stats Stats
}

// New builds a TLB. cfg must already be validated.
func New(cfg arch.TLBConfig, opt Options) *TLB {
	if opt.Compression && opt.CompressionSpan == 0 {
		opt.CompressionSpan = DefaultCompressionSpan
	}
	if opt.Compression && opt.CompressionSpan&(opt.CompressionSpan-1) != 0 {
		panic(fmt.Sprintf("tlb: compression span %d not a power of two", opt.CompressionSpan))
	}
	t := &TLB{cfg: cfg, opt: opt}
	t.sets = make([][]entry, cfg.Sets())
	backing := make([]entry, cfg.Sets()*cfg.Assoc)
	for i := range t.sets {
		t.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	t.ConfigureSlots(1)
	return t
}

// Config returns the geometry.
func (t *TLB) Config() arch.TLBConfig { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// RegisterStats registers the TLB's counters and rates into r; values are
// read lazily at snapshot time.
func (t *TLB) RegisterStats(r *stats.Registry) {
	r.CounterFunc("accesses", func() int64 { return t.stats.Accesses })
	r.CounterFunc("hits", func() int64 { return t.stats.Hits })
	r.CounterFunc("misses", func() int64 { return t.stats.Misses })
	r.CounterFunc("probe_sets", func() int64 { return t.stats.ProbeSets })
	r.CounterFunc("evictions", func() int64 { return t.stats.Evictions })
	r.CounterFunc("spills", func() int64 { return t.stats.Spills })
	r.CounterFunc("coalesced", func() int64 { return t.stats.Coalesced })
	r.CounterFunc("flag_sets", func() int64 { return t.stats.FlagSets })
	r.CounterFunc("flag_resets", func() int64 { return t.stats.FlagResets })
	r.GaugeFunc("hit_rate", func() float64 { return t.stats.HitRate() })
	r.GaugeFunc("occupancy", func() float64 { return float64(t.Occupancy()) })
}

// ResetStats zeroes the counters without touching contents.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// AddStats folds externally accumulated counters (an address slice's
// sub-TLB) into this TLB's stats so one registered stats node reports the
// combined activity.
func (t *TLB) AddStats(s Stats) {
	t.stats.Accesses += s.Accesses
	t.stats.Hits += s.Hits
	t.stats.Misses += s.Misses
	t.stats.ProbeSets += s.ProbeSets
	t.stats.Evictions += s.Evictions
	t.stats.Spills += s.Spills
	t.stats.Coalesced += s.Coalesced
	t.stats.FlagSets += s.FlagSets
	t.stats.FlagResets += s.FlagResets
}

// ConfigureSlots sets the number of concurrent TB slots the owning SM runs
// (determined at kernel launch from the TB resource needs). It resets the
// sharing state but deliberately keeps TLB contents: TB ids are reused
// across TBs precisely so entries survive for potential inter-TB reuse.
func (t *TLB) ConfigureSlots(n int) {
	if n < 1 {
		n = 1
	}
	t.numSlots = n
	t.shareWith = make([]uint32, n)
	t.shareCount = make([]int, n)
	t.partition = nil
}

// NumSlots returns the configured concurrent TB slot count.
func (t *TLB) NumSlots() int { return t.numSlots }

// ownedSets returns the contiguous set range [lo,hi) owned by slot. With
// more slots than sets, slots fold onto single sets (slot mod sets). An
// explicit SetPartition overrides the equal split.
func (t *TLB) ownedSets(slot int) (lo, hi int) {
	if t.partition != nil {
		return t.partition[slot], t.partition[slot+1]
	}
	s := len(t.sets)
	n := t.numSlots
	if n > s {
		i := slot % s
		return i, i + 1
	}
	return slot * s / n, (slot + 1) * s / n
}

// SetPartition overrides the partitioned index policies' equal set split
// with explicit contiguous per-slot bounds: slot i owns sets
// [bounds[i], bounds[i+1]). bounds must have NumSlots+1 monotone entries
// spanning [0, Sets]; it is copied. Existing entries are kept — a set
// handed to another slot simply stops being probed by its old owner, and
// its stale entries age out of the new owner's pool. nil restores the
// equal split (as does ConfigureSlots).
func (t *TLB) SetPartition(bounds []int) {
	if bounds == nil {
		t.partition = nil
		return
	}
	if len(bounds) != t.numSlots+1 {
		panic(fmt.Sprintf("tlb: partition has %d bounds for %d slots", len(bounds), t.numSlots))
	}
	if bounds[0] != 0 || bounds[t.numSlots] != len(t.sets) {
		panic(fmt.Sprintf("tlb: partition spans [%d,%d], want [0,%d]",
			bounds[0], bounds[t.numSlots], len(t.sets)))
	}
	for i := 0; i < t.numSlots; i++ {
		if bounds[i+1] < bounds[i] {
			panic(fmt.Sprintf("tlb: partition not monotone at slot %d", i))
		}
	}
	if t.partition == nil {
		t.partition = make([]int, len(bounds))
	}
	copy(t.partition, bounds)
}

// Partition returns the explicit set partition, or nil when the equal
// split is in effect. The returned slice is the TLB's own copy; callers
// must not mutate it.
func (t *TLB) Partition() []int { return t.partition }

// groupOf maps a VPN to its aligned compression group base and bit.
func (t *TLB) groupOf(vpn vm.VPN) (base vm.VPN, bit uint64) {
	span := vm.VPN(t.opt.CompressionSpan)
	return vpn &^ (span - 1), 1 << (uint64(vpn) & uint64(span-1))
}

// probeKey returns the tag to match and the mask bit to test for vpn.
func (t *TLB) probeKey(vpn vm.VPN) (tag vm.VPN, bit uint64) {
	if t.opt.Compression {
		return t.groupOf(vpn)
	}
	return vpn, 0
}

// setsToProbe lists the sets a lookup/insert for (slot, vpn) must search, in
// priority order (own sets first, then shared neighbours' sets). The
// returned slice aliases t.probeBuf and is only valid until the next call.
func (t *TLB) setsToProbe(slot int, vpn vm.VPN) []int {
	if t.opt.Policy == arch.IndexByAddress {
		tag, _ := t.probeKey(vpn)
		idx := tag
		if t.opt.Compression {
			idx = tag >> uintLog2(t.opt.CompressionSpan)
		}
		t.probeBuf = append(t.probeBuf[:0], int(idx)&(len(t.sets)-1))
		return t.probeBuf
	}
	lo, hi := t.ownedSets(slot)
	out := t.probeBuf[:0]
	for s := lo; s < hi; s++ {
		out = append(out, s)
	}
	if t.opt.Policy == arch.IndexByTBShared {
		mask := t.shareWith[slot]
		for other := 0; other < t.numSlots && mask != 0; other++ {
			if mask&(1<<uint(other)) == 0 {
				continue
			}
			mask &^= 1 << uint(other)
			olo, ohi := t.ownedSets(other)
			for s := olo; s < ohi; s++ {
				if s < lo || s >= hi { // folding can alias sets
					out = append(out, s)
				}
			}
		}
	}
	t.probeBuf = out
	return out
}

func uintLog2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Lookup translates vpn for the TB in the given slot under ASID 0 — the
// single-tenant path. It returns the PPN on a hit and the number of sets
// probed (each costing cfg.LookupLatency cycles). slot is ignored under
// IndexByAddress.
func (t *TLB) Lookup(slot int, vpn vm.VPN) (ppn vm.PPN, hit bool, setsProbed int) {
	return t.LookupA(0, slot, vpn)
}

// LookupA is Lookup for an explicit tenant: only entries tagged with asid
// can hit, so co-running tenants sharing a physical TLB contend for capacity
// without aliasing each other's translations.
func (t *TLB) LookupA(asid vm.ASID, slot int, vpn vm.VPN) (ppn vm.PPN, hit bool, setsProbed int) {
	t.clock++
	t.stats.Accesses++
	tag, bit := t.probeKey(vpn)
	probe := t.setsToProbe(slot, vpn)
	t.stats.ProbeSets += int64(len(probe))
	for _, si := range probe {
		ways := t.sets[si]
		for w := range ways {
			e := &ways[w]
			if !e.valid || e.vpn != tag || e.asid != asid {
				continue
			}
			if t.opt.Compression && e.mask&bit == 0 {
				continue
			}
			e.stamp = t.clock
			t.stats.Hits++
			p := e.ppn
			if t.opt.Compression {
				p += vm.PPN(vpn - tag)
			}
			return p, true, len(probe)
		}
	}
	t.stats.Misses++
	return 0, false, len(probe)
}

// Contains reports whether vpn is present for slot under ASID 0 without
// disturbing LRU or stats (test/diagnostic helper).
func (t *TLB) Contains(slot int, vpn vm.VPN) bool {
	return t.ContainsA(0, slot, vpn)
}

// ContainsA is Contains for an explicit tenant.
func (t *TLB) ContainsA(asid vm.ASID, slot int, vpn vm.VPN) bool {
	tag, bit := t.probeKey(vpn)
	for _, si := range t.setsToProbe(slot, vpn) {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if e.valid && e.vpn == tag && e.asid == asid && (!t.opt.Compression || e.mask&bit != 0) {
				return true
			}
		}
	}
	return false
}

// UpdateA rewrites the payload of an existing entry for (asid, slot, vpn)
// without touching the LRU stamp, the probe clock, or any counter,
// reporting whether the entry was found. The sharded engine uses it to
// resolve a placeholder entry installed at miss time into the real PPN at
// the epoch barrier: the entry's replacement age must reflect the miss (the
// insertion), not the fill, so the two engines age entries identically.
func (t *TLB) UpdateA(asid vm.ASID, slot int, vpn vm.VPN, ppn vm.PPN) bool {
	tag, bit := t.probeKey(vpn)
	for _, si := range t.setsToProbe(slot, vpn) {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if !e.valid || e.vpn != tag || e.asid != asid {
				continue
			}
			if t.opt.Compression {
				if e.mask&bit == 0 {
					continue
				}
				// Store the group-base PPN the run would have so a lookup
				// of vpn returns exactly ppn.
				e.ppn = ppn - vm.PPN(vpn-tag)
			} else {
				e.ppn = ppn
			}
			return true
		}
	}
	return false
}

// Insert installs vpn→ppn for the TB in slot after a miss has been resolved,
// under ASID 0 (the single-tenant path). Under compression it first tries to
// coalesce into an entry covering the same aligned group with a consistent
// VPN→PPN delta. Under partitioning with sharing, an eviction victim may be
// relocated into the adjacent TB's sets when a way there is free, activating
// the sharing flag (paper Fig. 9).
func (t *TLB) Insert(slot int, vpn vm.VPN, ppn vm.PPN) {
	t.InsertA(0, slot, vpn, ppn)
}

// InsertA is Insert for an explicit tenant; the entry is tagged with asid
// and only that tenant's lookups can hit it.
func (t *TLB) InsertA(asid vm.ASID, slot int, vpn vm.VPN, ppn vm.PPN) {
	t.clock++
	tag, bit := t.probeKey(vpn)

	probe := t.setsToProbe(slot, vpn)
	if len(probe) == 0 {
		return // zero-width partition slot: nowhere to hold the entry
	}

	// Refresh or coalesce into an existing entry.
	for _, si := range probe {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if !e.valid || e.vpn != tag || e.asid != asid {
				continue
			}
			if !t.opt.Compression {
				e.ppn = ppn // same VPN: refresh (translation unchanged in practice)
				e.stamp = t.clock
				return
			}
			// Coalesce only when the VPN→PPN delta matches the stored run.
			if e.ppn+vm.PPN(vpn-tag) == ppn {
				if e.mask&bit == 0 {
					t.stats.Coalesced++
				}
				e.mask |= bit
				e.stamp = t.clock
				return
			}
		}
	}

	// Free way in any probed set? Own sets come first in probe order, so a
	// TB prefers its own partition; once the sharing flag is set the
	// neighbour's sets are part of the probed pool.
	for _, si := range probe {
		for w := range t.sets[si] {
			if !t.sets[si][w].valid {
				t.fill(&t.sets[si][w], asid, tag, vpn, ppn, bit)
				return
			}
		}
	}

	// The probed sets are oversubscribed. Under partitioning+sharing an
	// overflowing TB checks the adjacent TB's sets (paper Figure 9): if the
	// neighbour has an empty way — or, more generally, its LRU entry is
	// staler than our own victim, i.e. the neighbour underutilizes its
	// sets — the sharing flag is set and the two TBs' sets become one
	// replacement pool. That is the "balance the number of translations
	// across multiple sets" behaviour of Section IV-B; the empty-slot
	// condition the paper states is the special case of a never-used way.
	if t.opt.Policy == arch.IndexByTBShared {
		if t.maybeActivateSharing(slot) {
			probe = t.setsToProbe(slot, vpn)
			for _, si := range probe {
				for w := range t.sets[si] {
					if !t.sets[si][w].valid {
						t.fill(&t.sets[si][w], asid, tag, vpn, ppn, bit)
						t.stats.Spills++
						return
					}
				}
			}
		}
	}

	// Evict the LRU entry among the probed sets.
	vsi, vw := t.lruVictim(probe)
	t.stats.Evictions++
	if v := t.sets[vsi][vw]; v.valid && t.opt.OnEvict != nil {
		t.opt.OnEvict(v.asid, v.vpn, v.ppn)
	}
	t.fill(&t.sets[vsi][vw], asid, tag, vpn, ppn, bit)
}

// maybeActivateSharing decides whether an oversubscribed slot should start
// sharing a neighbour's sets, returning true when a new flag was set.
// Neighbours already shared with are skipped (their sets are in the probe
// pool already); a neighbour qualifies when its LRU entry is older than the
// slot's own LRU victim (an empty way is trivially oldest).
func (t *TLB) maybeActivateSharing(slot int) bool {
	if t.numSlots < 2 {
		return false
	}
	neighbours := []int{(slot + 1) % t.numSlots}
	if t.opt.Sharing == arch.ShareAllToAll {
		neighbours = neighbours[:0]
		for o := 1; o < t.numSlots; o++ {
			neighbours = append(neighbours, (slot+o)%t.numSlots)
		}
	}
	myLo, myHi := t.ownedSets(slot)
	ownStamp := t.oldestStamp(myLo, myHi)
	for _, nb := range neighbours {
		if t.shareWith[slot]&(1<<uint(nb)) != 0 {
			continue
		}
		lo, hi := t.ownedSets(nb)
		if lo == myLo && hi == myHi {
			continue // set folding: neighbour aliases our own sets
		}
		if t.oldestStamp(lo, hi) >= ownStamp {
			continue // neighbour is at least as busy: do not steal
		}
		// Counter ablation: require threshold overflow events before
		// sharing activates.
		if th := t.opt.ShareCounterThreshold; th > 0 {
			t.shareCount[slot]++
			if t.shareCount[slot] < th {
				return false
			}
		}
		t.shareWith[slot] |= 1 << uint(nb)
		t.stats.FlagSets++
		return true
	}
	return false
}

// oldestStamp returns the minimum LRU stamp in sets [lo,hi); empty ways
// report stamp 0.
func (t *TLB) oldestStamp(lo, hi int) uint64 {
	best := ^uint64(0)
	for si := lo; si < hi; si++ {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if !e.valid {
				return 0
			}
			if e.stamp < best {
				best = e.stamp
			}
		}
	}
	return best
}

func (t *TLB) fill(e *entry, asid vm.ASID, tag, vpn vm.VPN, ppn vm.PPN, bit uint64) {
	*e = entry{valid: true, asid: asid, vpn: tag, stamp: t.clock, filled: t.clock}
	if t.opt.Compression {
		// Store the PPN the group base would have if the run were
		// contiguous; coalescing later verifies the delta holds.
		e.ppn = ppn - vm.PPN(vpn-tag)
		e.mask = bit
	} else {
		e.ppn = ppn
	}
}

// lruVictim returns the victim way among the given sets under the
// configured replacement policy.
func (t *TLB) lruVictim(sets []int) (setIdx, wayIdx int) {
	if t.opt.Replacement == arch.ReplaceRandom {
		// Deterministic xorshift over the probe clock.
		x := t.clock
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		n := uint64(len(sets) * t.cfg.Assoc)
		pick := int(x % n)
		return sets[pick/t.cfg.Assoc], pick % t.cfg.Assoc
	}
	best := ^uint64(0)
	for _, si := range sets {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			key := e.stamp
			if t.opt.Replacement == arch.ReplaceFIFO {
				key = e.filled
			}
			if key <= best {
				best = key
				setIdx, wayIdx = si, w
			}
		}
	}
	return setIdx, wayIdx
}

// OnTBFinish is called when the TB occupying slot completes: its sharing
// flag is reset, as are the flags of TBs that were sharing into its sets.
// Contents are kept (no flush) for potential inter-TB reuse.
func (t *TLB) OnTBFinish(slot int) {
	if slot < 0 || slot >= t.numSlots {
		return
	}
	if t.shareWith[slot] != 0 {
		t.stats.FlagResets++
	}
	t.shareWith[slot] = 0
	t.shareCount[slot] = 0
	for o := 0; o < t.numSlots; o++ {
		if t.shareWith[o]&(1<<uint(slot)) != 0 {
			t.shareWith[o] &^= 1 << uint(slot)
			t.stats.FlagResets++
		}
	}
}

// SharingActive reports whether slot currently shares into any neighbour
// (test/diagnostic helper).
func (t *TLB) SharingActive(slot int) bool {
	return slot >= 0 && slot < t.numSlots && t.shareWith[slot] != 0
}

// Flush invalidates all entries (used between kernels in tests; the design
// itself never flushes on TB completion).
func (t *TLB) Flush() {
	for si := range t.sets {
		for w := range t.sets[si] {
			t.sets[si][w] = entry{}
		}
	}
}

// Occupancy returns the number of valid entries (compressed entries count
// once regardless of span).
func (t *TLB) Occupancy() int {
	n := 0
	for si := range t.sets {
		for w := range t.sets[si] {
			if t.sets[si][w].valid {
				n++
			}
		}
	}
	return n
}
