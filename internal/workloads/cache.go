package workloads

import (
	"container/list"
	"sync"
	"sync/atomic"

	"gputlb/internal/stats"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// This file is the process-wide trace cache: every (benchmark, Params) pair
// is built exactly once and the resulting kernel trace is shared, read-only,
// by every simulation cell that needs it. A sweep like the Figure 10/11
// evaluation simulates each workload under four configurations; without the
// cache it regenerates the identical trace four times. Kernel traces are
// immutable once built (the simulator only reads them), so the cached kernel
// is handed out as-is. Address spaces are mutated by simulation (demand
// paging), so each caller gets a fresh vm.AddressSpace fork of the builder's
// pristine allocation layout instead.
//
// The cache is bounded: it holds at most TraceCacheCap builds and evicts the
// least recently used one past that, so a long-lived daemon sweeping many
// (benchmark, scale, seed) points — the multi-tenant interference grid alone
// crosses every benchmark pair — cannot grow it without limit. Entries are
// built outside the lock (a per-entry sync.Once), so an eviction can race a
// slow first build; the evicted entry still finishes and serves its caller,
// the cache just forgets it.

// DefaultTraceCacheCap is the initial cache bound, sized to hold the full
// benchmark suite at a few (scale, seed) points at once.
const DefaultTraceCacheCap = 32

// cacheKey identifies one build. Params is a comparable struct of scalars,
// so the pair is directly usable as a map key.
type cacheKey struct {
	name   string
	params Params
}

// cacheEntry holds one built workload. once guards the build so concurrent
// sweep workers asking for the same key build it a single time; kernel and
// proto are written inside the once and read-only afterwards.
type cacheEntry struct {
	key    cacheKey
	once   sync.Once
	kernel *trace.Kernel
	proto  *vm.AddressSpace
}

// traceCache is the bounded LRU state: entries indexes the recency list,
// whose front is the most recently used build. evictions survives
// ClearTraceCache — it counts capacity evictions only, which is what the
// occupancy metrics report.
var (
	cacheMu      sync.Mutex
	cacheEntries = map[cacheKey]*list.Element{}
	cacheOrder   = list.New()
	cacheCap     = DefaultTraceCacheCap
	evictions    atomic.Int64
)

// Cached returns the kernel trace for (spec, p), building it on first use
// and sharing the immutable result across all callers, plus a fresh address
// space for this caller to simulate in. The kernel must be treated as
// read-only; the address space is the caller's own.
func Cached(spec Spec, p Params) (*trace.Kernel, *vm.AddressSpace) {
	key := cacheKey{spec.Name, p}
	cacheMu.Lock()
	el, ok := cacheEntries[key]
	if ok {
		cacheOrder.MoveToFront(el)
	} else {
		el = cacheOrder.PushFront(&cacheEntry{key: key})
		cacheEntries[key] = el
		for cacheCap > 0 && len(cacheEntries) > cacheCap {
			evictLockedLRU()
		}
	}
	e := el.Value.(*cacheEntry)
	cacheMu.Unlock()
	e.once.Do(func() {
		e.kernel, e.proto = spec.Build(p)
	})
	return e.kernel, e.proto.Fork()
}

// evictLockedLRU drops the least recently used entry. Caller holds cacheMu
// and guarantees the cache is non-empty.
func evictLockedLRU() {
	oldest := cacheOrder.Back()
	cacheOrder.Remove(oldest)
	delete(cacheEntries, oldest.Value.(*cacheEntry).key)
	evictions.Add(1)
}

// CachedByName is Cached keyed by benchmark name.
func CachedByName(name string, p Params) (*trace.Kernel, *vm.AddressSpace, bool) {
	spec, ok := ByName(name)
	if !ok {
		return nil, nil, false
	}
	k, as := Cached(spec, p)
	return k, as, true
}

// ClearTraceCache drops every cached build (without counting evictions).
// Benchmarks use it to charge first-build cost to each measurement.
func ClearTraceCache() {
	cacheMu.Lock()
	cacheEntries = map[cacheKey]*list.Element{}
	cacheOrder.Init()
	cacheMu.Unlock()
}

// TraceCacheLen reports how many builds are currently cached.
func TraceCacheLen() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(cacheEntries)
}

// TraceCacheCap reports the current cache bound; 0 means unbounded.
func TraceCacheCap() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return cacheCap
}

// SetTraceCacheCap rebounds the cache to at most n entries, evicting the
// least recently used builds immediately if it currently holds more. n <= 0
// removes the bound.
func SetTraceCacheCap(n int) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if n <= 0 {
		cacheCap = 0
		return
	}
	cacheCap = n
	for len(cacheEntries) > cacheCap {
		evictLockedLRU()
	}
}

// TraceCacheEvictions reports how many builds capacity pressure has evicted
// over the process lifetime.
func TraceCacheEvictions() int64 {
	return evictions.Load()
}

// RegisterCacheStats registers the cache's observability metrics on r:
// entry count, capacity, lifetime evictions, and an occupancy gauge
// (entries/capacity, 0 when unbounded). Long-lived daemons surface these
// through their metrics endpoint. Register at most once per registry.
func RegisterCacheStats(r *stats.Registry) {
	r.CounterFunc("entries", func() int64 { return int64(TraceCacheLen()) })
	r.CounterFunc("capacity", func() int64 { return int64(TraceCacheCap()) })
	r.CounterFunc("evictions", TraceCacheEvictions)
	r.GaugeFunc("occupancy", func() float64 {
		if c := TraceCacheCap(); c > 0 {
			return float64(TraceCacheLen()) / float64(c)
		}
		return 0
	})
}
