package workloads

import (
	"sync"

	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// This file is the process-wide trace cache: every (benchmark, Params) pair
// is built exactly once and the resulting kernel trace is shared, read-only,
// by every simulation cell that needs it. A sweep like the Figure 10/11
// evaluation simulates each workload under four configurations; without the
// cache it regenerates the identical trace four times. Kernel traces are
// immutable once built (the simulator only reads them), so the cached kernel
// is handed out as-is with no locking on the warm path. Address spaces are
// mutated by simulation (demand paging), so each caller gets a fresh
// vm.AddressSpace fork of the builder's pristine allocation layout instead.

// cacheKey identifies one build. Params is a comparable struct of scalars,
// so the pair is directly usable as a map key.
type cacheKey struct {
	name   string
	params Params
}

// cacheEntry holds one built workload. once guards the build so concurrent
// sweep workers asking for the same key build it a single time; kernel and
// proto are written inside the once and read-only afterwards.
type cacheEntry struct {
	once   sync.Once
	kernel *trace.Kernel
	proto  *vm.AddressSpace
}

// traceCache maps cacheKey -> *cacheEntry. sync.Map keeps the warm read
// path lock-free, which is what parallel sweeps hit on every cell.
var traceCache sync.Map

// Cached returns the kernel trace for (spec, p), building it on first use
// and sharing the immutable result across all callers, plus a fresh address
// space for this caller to simulate in. The kernel must be treated as
// read-only; the address space is the caller's own.
func Cached(spec Spec, p Params) (*trace.Kernel, *vm.AddressSpace) {
	key := cacheKey{spec.Name, p}
	v, ok := traceCache.Load(key)
	if !ok {
		v, _ = traceCache.LoadOrStore(key, &cacheEntry{})
	}
	e := v.(*cacheEntry)
	e.once.Do(func() {
		e.kernel, e.proto = spec.Build(p)
	})
	return e.kernel, e.proto.Fork()
}

// CachedByName is Cached keyed by benchmark name.
func CachedByName(name string, p Params) (*trace.Kernel, *vm.AddressSpace, bool) {
	spec, ok := ByName(name)
	if !ok {
		return nil, nil, false
	}
	k, as := Cached(spec, p)
	return k, as, true
}

// ClearTraceCache drops every cached build. Benchmarks use it to charge
// first-build cost to each measurement; long-lived processes sweeping many
// seeds can use it to bound memory.
func ClearTraceCache() {
	traceCache.Range(func(k, _ any) bool {
		traceCache.Delete(k)
		return true
	})
}

// TraceCacheLen reports how many builds are currently cached.
func TraceCacheLen() int {
	n := 0
	traceCache.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}
