package workloads

// Tests for the trace cache's LRU bound: eviction order, live resizing, the
// eviction counter, and the registered observability metrics.

import (
	"sync"
	"testing"

	"gputlb/internal/stats"
)

// resetCache starts a test from an empty cache at the given cap and
// restores the defaults afterwards.
func resetCache(t *testing.T, cap int) {
	t.Helper()
	ClearTraceCache()
	SetTraceCacheCap(cap)
	t.Cleanup(func() {
		ClearTraceCache()
		SetTraceCacheCap(DefaultTraceCacheCap)
	})
}

// fill builds the named benchmarks at distinct seeds so each is one cache
// entry, in order.
func fill(t *testing.T, name string, seeds ...int64) {
	t.Helper()
	spec := testSpec(t, name)
	for _, s := range seeds {
		p := DefaultParams()
		p.Scale = 0.05
		p.Seed = s
		Cached(spec, p)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	resetCache(t, 2)
	before := TraceCacheEvictions()
	spec := testSpec(t, "atax")
	p1 := DefaultParams()
	p1.Scale, p1.Seed = 0.05, 1
	p2, p3 := p1, p1
	p2.Seed, p3.Seed = 2, 3

	k1, _ := Cached(spec, p1)
	Cached(spec, p2)
	Cached(spec, p1) // touch p1: p2 is now the LRU entry
	Cached(spec, p3) // evicts p2
	if got := TraceCacheLen(); got != 2 {
		t.Errorf("cache holds %d entries, want 2", got)
	}
	if got := TraceCacheEvictions() - before; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// p1 survived the eviction: asking again shares the same kernel.
	if k, _ := Cached(spec, p1); k != k1 {
		t.Error("recently used entry was evicted")
	}
}

func TestCacheRebuildsEvictedEntry(t *testing.T) {
	resetCache(t, 1)
	spec := testSpec(t, "mvt")
	p := DefaultParams()
	p.Scale, p.Seed = 0.05, 1
	q := p
	q.Seed = 2

	k1, _ := Cached(spec, p)
	Cached(spec, q) // evicts p
	k2, _ := Cached(spec, p)
	if k1 == k2 {
		t.Error("evicted entry still shared; expected a fresh build")
	}
}

func TestSetTraceCacheCapShrinksLive(t *testing.T) {
	resetCache(t, 0) // unbounded
	fill(t, "atax", 1, 2, 3, 4, 5)
	if got := TraceCacheLen(); got != 5 {
		t.Fatalf("unbounded cache holds %d entries, want 5", got)
	}
	before := TraceCacheEvictions()
	SetTraceCacheCap(2)
	if got := TraceCacheLen(); got != 2 {
		t.Errorf("after shrink cache holds %d entries, want 2", got)
	}
	if got := TraceCacheEvictions() - before; got != 3 {
		t.Errorf("shrink evicted %d entries, want 3", got)
	}
	if TraceCacheCap() != 2 {
		t.Errorf("cap = %d, want 2", TraceCacheCap())
	}
}

func TestCacheBoundedUnderConcurrency(t *testing.T) {
	resetCache(t, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spec := testSpec(t, []string{"atax", "mvt"}[w%2])
			for i := 0; i < 10; i++ {
				p := DefaultParams()
				p.Scale = 0.05
				p.Seed = int64(i%5 + 1)
				k, as := Cached(spec, p)
				if k == nil || as == nil {
					t.Error("nil build")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := TraceCacheLen(); got > 3 {
		t.Errorf("cache exceeded its bound under concurrency: %d entries", got)
	}
}

func TestRegisterCacheStats(t *testing.T) {
	resetCache(t, 4)
	fill(t, "atax", 1, 2)
	r := stats.NewRegistry("test")
	RegisterCacheStats(r.Child("trace_cache"))
	vals := map[string]string{}
	for _, fv := range r.Snapshot().Flatten("") {
		vals[fv.Path] = fv.Value
	}
	if vals["test/trace_cache/entries"] != "2" {
		t.Errorf("entries = %q, want 2 (all: %v)", vals["test/trace_cache/entries"], vals)
	}
	if vals["test/trace_cache/capacity"] != "4" {
		t.Errorf("capacity = %q, want 4", vals["test/trace_cache/capacity"])
	}
	if vals["test/trace_cache/occupancy"] != "0.5" {
		t.Errorf("occupancy = %q, want 0.5", vals["test/trace_cache/occupancy"])
	}
	if _, ok := vals["test/trace_cache/evictions"]; !ok {
		t.Error("evictions metric missing")
	}
}
