// Package workloads models the ten GPU benchmarks of the paper's Table II as
// address-trace generators. Each builder reproduces the kernel's memory
// indexing structure — CSR neighbour walks for the Pannotia/Rodinia graph
// kernels, row/column sweeps for the PolyBench linear-algebra kernels, the
// diagonal wavefront of Needleman-Wunsch, and the plane stencil of 3D
// convolution — over a UVM address space, scaled so the working sets stress
// a 64-entry per-SM L1 TLB the same way the paper's multi-GB inputs do.
package workloads
