package workloads

// Tests for the process-wide trace cache: identity sharing of the kernel,
// fork semantics of the address space, key separation, and safety under
// concurrent first access.

import (
	"reflect"
	"sync"
	"testing"

	"gputlb/internal/vm"
)

func testSpec(t *testing.T, name string) Spec {
	t.Helper()
	spec, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return spec
}

func TestCachedSharesKernelAndForksAddressSpace(t *testing.T) {
	ClearTraceCache()
	t.Cleanup(ClearTraceCache)
	spec := testSpec(t, "atax")
	p := DefaultParams()
	p.Scale = 0.1

	k1, as1 := Cached(spec, p)
	k2, as2 := Cached(spec, p)
	if k1 != k2 {
		t.Error("Cached returned distinct kernels for the same key; the trace should be shared")
	}
	if as1 == as2 {
		t.Error("Cached returned the same address space twice; each caller must get its own fork")
	}
	if TraceCacheLen() != 1 {
		t.Errorf("cache holds %d entries after one key, want 1", TraceCacheLen())
	}

	// A fork must be indistinguishable from a fresh build: same region
	// layout, and same demand-paging behaviour from a clean page table.
	kFresh, asFresh := spec.Build(p)
	if !reflect.DeepEqual(k1, kFresh) {
		t.Error("cached kernel differs from a fresh build")
	}
	a := vm.Addr(k1.TBs[0].Warps[0].Insts[0].Addrs[0])
	p1, f1 := as1.Touch(a)
	pf, ff := asFresh.Touch(a)
	if p1 != pf || f1 != ff {
		t.Errorf("forked Touch = (%v,%v), fresh Touch = (%v,%v)", p1, f1, pf, ff)
	}
	// The sibling fork saw none of that mutation.
	p2, f2 := as2.Touch(a)
	if p2 != p1 || f2 != f1 {
		t.Errorf("sibling fork Touch = (%v,%v), want the same first-touch result (%v,%v)", p2, f2, p1, f1)
	}
}

func TestCachedKeySeparation(t *testing.T) {
	ClearTraceCache()
	t.Cleanup(ClearTraceCache)
	p := DefaultParams()
	p.Scale = 0.1
	q := p
	q.Seed = p.Seed + 1

	kp, _ := Cached(testSpec(t, "atax"), p)
	kq, _ := Cached(testSpec(t, "atax"), q)
	ko, _ := Cached(testSpec(t, "mvt"), p)
	if kp == kq {
		t.Error("different Params share one cache entry")
	}
	if kp == ko {
		t.Error("different benchmarks share one cache entry")
	}
	if TraceCacheLen() != 3 {
		t.Errorf("cache holds %d entries, want 3", TraceCacheLen())
	}
}

func TestCachedConcurrentFirstAccess(t *testing.T) {
	ClearTraceCache()
	t.Cleanup(ClearTraceCache)
	spec := testSpec(t, "mvt")
	p := DefaultParams()
	p.Scale = 0.1

	const workers = 8
	kernels := make([]interface{ MemInsts() int }, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, as := Cached(spec, p)
			kernels[i] = k
			if as == nil {
				t.Error("nil address space")
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if kernels[i] != kernels[0] {
			t.Fatalf("worker %d got a different kernel; the build ran more than once", i)
		}
	}
	if TraceCacheLen() != 1 {
		t.Errorf("cache holds %d entries after concurrent access to one key, want 1", TraceCacheLen())
	}
}

func TestCachedByName(t *testing.T) {
	ClearTraceCache()
	t.Cleanup(ClearTraceCache)
	p := DefaultParams()
	p.Scale = 0.1
	k, as, ok := CachedByName("atax", p)
	if !ok || k == nil || as == nil {
		t.Fatalf("CachedByName(atax) = (%v, %v, %v), want a build", k, as, ok)
	}
	if _, _, ok := CachedByName("no-such-bench", p); ok {
		t.Error("CachedByName accepted an unknown benchmark")
	}
}
