package workloads

import (
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/graph"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// The Pannotia/Rodinia graph kernels share one execution shape: each thread
// owns a node, reads its CSR adjacency range, and gathers per-neighbour
// state from node-indexed arrays. Because the 32 lanes of a warp chase
// different adjacency lists, one memory instruction can touch many distinct
// pages — the irregular access pattern behind the low L1 TLB hit rates the
// paper measures — while id-locality in the citation graph keeps most of a
// TB's footprint in nearby pages (high intra-TB reuse, Observation 1) and
// only the hub pages shared across TBs (little inter-TB reuse).

// gatherArray is one node-indexed array read per neighbour.
type gatherArray struct {
	name     string
	elemSize int
}

// graphShape parameterizes one CSR kernel.
type graphShape struct {
	name        string
	nodes       int
	degree      int
	locality    float64
	window      int
	maxSteps    int // cap on modelled SIMD neighbour iterations per warp
	compute     int
	perNeighbor []gatherArray
	frontier    bool // bfs: only the densest BFS level's nodes are active
}

func buildGraphKernel(p Params, sh graphShape) (*trace.Kernel, *vm.AddressSpace) {
	n := roundUp(scaled(sh.nodes, p.Scale, 2048), 256)
	g := graph.GenerateWithLocality(n, sh.degree, sh.locality, sh.window, p.Seed)
	return buildGraphKernelOn(p, sh, g)
}

// buildGraphKernelOn constructs the kernel over a caller-provided graph
// (padded so the node count is a whole number of 256-thread TBs).
func buildGraphKernelOn(p Params, sh graphShape, g *graph.CSR) (*trace.Kernel, *vm.AddressSpace) {
	// TBs cover whole 256-node chunks; the arrays span the full graph
	// because gathered neighbours may point past the last whole chunk.
	n := g.NumNodes / 256 * 256
	if n == 0 {
		panic("workloads: graph too small for one 256-thread TB")
	}

	as := newSpace(p)
	rowptr := mustAlloc(as, "rowptr", uint64(g.NumNodes+1)*4)
	colidx := mustAlloc(as, "colidx", uint64(g.NumEdges())*4)
	arrays := make([]vm.Region, len(sh.perNeighbor))
	for i, ga := range sh.perNeighbor {
		arrays[i] = mustAlloc(as, ga.name, uint64(g.NumNodes)*uint64(ga.elemSize))
	}
	out := mustAlloc(as, "out", uint64(g.NumNodes)*4)

	var active []bool
	if sh.frontier {
		active = densestLevel(g)
	}

	k := &trace.Kernel{Name: sh.name, ThreadsPerTB: 256}
	for base, tbID := 0, 0; base < n; base, tbID = base+256, tbID+1 {
		tb := trace.TBTrace{ID: tbID}
		for w := 0; w < 8; w++ {
			wbase := base + w*32
			var wt trace.WarpTrace
			// Read the adjacency bounds and the node's own state.
			wt.Insts = append(wt.Insts, warpRead(rowptr, wbase, 4))
			if len(arrays) > 0 {
				wt.Insts = append(wt.Insts, warpRead(arrays[0], wbase, sh.perNeighbor[0].elemSize))
			}
			// SIMD neighbour loop: the warp iterates to the largest active
			// lane degree (capped); lanes exhaust as their lists end.
			steps := 0
			for l := 0; l < arch.WarpSize; l++ {
				v := wbase + l
				if active != nil && !active[v] {
					continue
				}
				if d := g.Degree(v); d > steps {
					steps = d
				}
			}
			if steps > sh.maxSteps {
				steps = sh.maxSteps
			}
			for s := 0; s < steps; s++ {
				var colPos, nbr []int32
				for l := 0; l < arch.WarpSize; l++ {
					v := wbase + l
					if active != nil && !active[v] {
						continue
					}
					if s >= g.Degree(v) {
						continue
					}
					e := g.RowPtr[v] + int32(s)
					colPos = append(colPos, e)
					nbr = append(nbr, g.ColIdx[e])
				}
				if len(colPos) == 0 {
					break
				}
				wt.Insts = append(wt.Insts, warpGather(colidx, colPos, 4))
				for i, arr := range arrays {
					wt.Insts = append(wt.Insts, warpGather(arr, nbr, sh.perNeighbor[i].elemSize))
				}
				wt.Insts = append(wt.Insts, compute(sh.compute))
			}
			wt.Insts = append(wt.Insts, warpRead(out, wbase, 4))
			tb.Warps = append(tb.Warps, wt)
		}
		k.TBs = append(k.TBs, tb)
	}
	return k, as
}

// densestLevel marks the nodes of the most-populated BFS level — the
// mid-execution frontier where bfs spends its time.
func densestLevel(g *graph.CSR) []bool {
	levels := g.BFSLevels(0)
	counts := map[int32]int{}
	for _, l := range levels {
		counts[l]++
	}
	best, bestN := int32(0), 0
	for l, c := range counts {
		if l >= 0 && c > bestN {
			best, bestN = l, c
		}
	}
	active := make([]bool, len(levels))
	for v, l := range levels {
		active[v] = l == best
	}
	return active
}

// BuildBFS models Rodinia bfs on the citation graph: frontier nodes expand
// their adjacency lists and gather the level of each neighbour.
func BuildBFS(p Params) (*trace.Kernel, *vm.AddressSpace) {
	return buildGraphKernel(p, graphShape{
		name: "bfs", nodes: 147456, degree: 5, locality: 0.9, window: 4096,
		maxSteps: 24, compute: 6, frontier: true,
		perNeighbor: []gatherArray{{"mask", 4}, {"visited", 4}, {"cost", 4}},
	})
}

// BuildColor models Pannotia graph coloring: every node gathers its
// neighbours' colors to find the minimum available color.
func BuildColor(p Params) (*trace.Kernel, *vm.AddressSpace) {
	return buildGraphKernel(p, graphShape{
		name: "color", nodes: 262144, degree: 4, locality: 0.9, window: 8192,
		maxSteps: 16, compute: 8,
		perNeighbor: []gatherArray{{"colors", 4}, {"value", 4}},
	})
}

// BuildMIS models Pannotia maximal independent set: nodes gather neighbour
// status and priority values to decide membership.
func BuildMIS(p Params) (*trace.Kernel, *vm.AddressSpace) {
	return buildGraphKernel(p, graphShape{
		name: "mis", nodes: 98304, degree: 5, locality: 0.9, window: 4096,
		maxSteps: 20, compute: 16,
		perNeighbor: []gatherArray{{"status", 4}, {"prio", 8}},
	})
}

// BuildPageRank models Pannotia pagerank: every node gathers the rank and
// out-degree of each neighbour to accumulate its new rank.
func BuildPageRank(p Params) (*trace.Kernel, *vm.AddressSpace) {
	return buildGraphKernel(p, graphShape{
		name: "pagerank", nodes: 98304, degree: 6, locality: 0.88, window: 4096,
		maxSteps: 24, compute: 14,
		perNeighbor: []gatherArray{{"rank", 8}, {"outdeg", 4}},
	})
}

// graphShapeByName returns the kernel shape for one of the graph
// benchmarks, without the synthetic-graph sizing fields.
func graphShapeByName(name string) (graphShape, bool) {
	switch name {
	case "bfs":
		return graphShape{name: "bfs", maxSteps: 24, compute: 6, frontier: true,
			perNeighbor: []gatherArray{{"mask", 4}, {"visited", 4}, {"cost", 4}}}, true
	case "color":
		return graphShape{name: "color", maxSteps: 16, compute: 8,
			perNeighbor: []gatherArray{{"colors", 4}, {"value", 4}}}, true
	case "mis":
		return graphShape{name: "mis", maxSteps: 20, compute: 16,
			perNeighbor: []gatherArray{{"status", 4}, {"prio", 8}}}, true
	case "pagerank":
		return graphShape{name: "pagerank", maxSteps: 24, compute: 14,
			perNeighbor: []gatherArray{{"rank", 8}, {"outdeg", 4}}}, true
	}
	return graphShape{}, false
}

// BuildOnGraph constructs one of the graph benchmarks (bfs, color, mis,
// pagerank) over a caller-provided CSR graph — e.g. the real
// coPapersCiteseer citation graph loaded from its DIMACS file — instead of
// the synthetic citation graph.
func BuildOnGraph(name string, g *graph.CSR, p Params) (*trace.Kernel, *vm.AddressSpace, error) {
	sh, ok := graphShapeByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("workloads: %q is not a graph benchmark", name)
	}
	k, as := buildGraphKernelOn(p, sh, g)
	return k, as, nil
}
