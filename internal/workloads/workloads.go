package workloads

import (
	"fmt"
	"sort"

	"gputlb/internal/arch"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// Params controls workload construction.
type Params struct {
	// PageShift is the UVM base-page shift (12 for 4KB, 21 for 2MB).
	PageShift uint
	// Seed drives every random choice (graph structure, scatter).
	Seed int64
	// Scale multiplies problem sizes; 1.0 is the experiment scale used by
	// the figure harnesses, tests use smaller values.
	Scale float64
	// Scatter is the physical-frame allocator scatter (0 = contiguous
	// physical memory, which the TLB-compression comparator exploits).
	Scatter int
}

// DefaultParams returns the experiment-scale parameters.
func DefaultParams() Params {
	return Params{PageShift: 12, Seed: 1, Scale: 1.0, Scatter: 0}
}

// BuildFunc constructs a kernel trace and the UVM address space it runs in.
type BuildFunc func(p Params) (*trace.Kernel, *vm.AddressSpace)

// Spec describes one benchmark (one row of Table II).
type Spec struct {
	Name             string
	Suite            string
	Input            string
	PaperFootprintGB float64 // the footprint the paper reports
	Build            BuildFunc
}

// All returns the ten benchmarks in the paper's order.
func All() []Spec {
	return []Spec{
		{"bfs", "Rodinia", "citation", 107.48, BuildBFS},
		{"color", "Pannotia", "citation", 12.89, BuildColor},
		{"mis", "Pannotia", "citation", 8.44, BuildMIS},
		{"nw", "Rodinia", "suite", 0.72, BuildNW},
		{"pagerank", "Pannotia", "citation", 14.70, BuildPageRank},
		{"3dconv", "PolyBench", "suite", 21.32, Build3DConv},
		{"atax", "PolyBench", "suite", 4.51, BuildATAX},
		{"bicg", "PolyBench", "suite", 3.76, BuildBICG},
		{"gemm", "PolyBench", "suite", 18.28, BuildGEMM},
		{"mvt", "PolyBench", "suite", 4.38, BuildMVT},
	}
}

// Names returns the benchmark names in paper order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName finds a benchmark by name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// FootprintBytes sums the region sizes of a built address space — our scaled
// analogue of Table II's footprint column.
func FootprintBytes(as *vm.AddressSpace) uint64 {
	var total uint64
	for _, r := range as.Regions() {
		total += r.Bytes
	}
	return total
}

// scaled applies the scale factor with a floor.
func scaled(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		v = min
	}
	return v
}

// roundUp rounds n up to a multiple of m.
func roundUp(n, m int) int { return (n + m - 1) / m * m }

// newSpace builds the UVM address space for a benchmark.
func newSpace(p Params) *vm.AddressSpace {
	return vm.NewAddressSpace(p.PageShift, p.Seed, p.Scatter)
}

// elemAddr returns the address of element idx (elemSize bytes) in region r.
func elemAddr(r vm.Region, idx, elemSize int) vm.Addr {
	a := r.Base + vm.Addr(uint64(idx)*uint64(elemSize))
	if a >= r.End() {
		panic(fmt.Sprintf("workloads: element %d of %q out of range", idx, r.Name))
	}
	return a
}

// warpRead builds a coalesced warp access: the 32 lanes read consecutive
// elements of r starting at element base.
func warpRead(r vm.Region, base, elemSize int) trace.Inst {
	addrs := make([]vm.Addr, arch.WarpSize)
	for l := range addrs {
		addrs[l] = elemAddr(r, base+l, elemSize)
	}
	return trace.Inst{Addrs: addrs}
}

// warpGather builds a scattered warp access: lane l reads element idx[l].
// len(idx) may be below WarpSize (inactive lanes are simply absent).
func warpGather(r vm.Region, idx []int32, elemSize int) trace.Inst {
	addrs := make([]vm.Addr, len(idx))
	for l, i := range idx {
		addrs[l] = elemAddr(r, int(i), elemSize)
	}
	return trace.Inst{Addrs: addrs}
}

// compute models n cycles of ALU work.
func compute(n int) trace.Inst { return trace.Inst{Compute: n} }

// uniquePages counts the distinct pages a kernel touches — used by tests and
// the Table II report.
func uniquePages(k *trace.Kernel, pageShift uint) int {
	seen := make(map[vm.VPN]struct{})
	for _, tb := range k.TBs {
		for _, w := range tb.Warps {
			for _, in := range w.Insts {
				for _, a := range in.Addrs {
					seen[vm.VPN(a>>pageShift)] = struct{}{}
				}
			}
		}
	}
	return len(seen)
}

// UniquePages is the exported counterpart of uniquePages.
func UniquePages(k *trace.Kernel, pageShift uint) int { return uniquePages(k, pageShift) }

// SortedTBSizes returns the per-TB memory-instruction counts, descending —
// a quick imbalance indicator used in tests.
func SortedTBSizes(k *trace.Kernel) []int {
	sizes := make([]int, len(k.TBs))
	for i, tb := range k.TBs {
		n := 0
		for _, w := range tb.Warps {
			for _, in := range w.Insts {
				if in.IsMem() {
					n++
				}
			}
		}
		sizes[i] = n
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
