package workloads

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/graph"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

func testParams() Params {
	return Params{PageShift: 12, Seed: 1, Scale: 0.25, Scatter: 0}
}

func TestRegistryHasPaperBenchmarks(t *testing.T) {
	specs := All()
	if len(specs) != 10 {
		t.Fatalf("registry has %d benchmarks, want 10", len(specs))
	}
	want := []string{"bfs", "color", "mis", "nw", "pagerank", "3dconv", "atax", "bicg", "gemm", "mvt"}
	for i, name := range want {
		if specs[i].Name != name {
			t.Errorf("specs[%d] = %q, want %q (paper Table II order)", i, specs[i].Name, name)
		}
	}
	for _, s := range specs {
		if s.PaperFootprintGB <= 0 {
			t.Errorf("%s: missing paper footprint", s.Name)
		}
		if s.Suite == "" || s.Input == "" {
			t.Errorf("%s: missing suite/input metadata", s.Name)
		}
	}
	if _, ok := ByName("gemm"); !ok {
		t.Error("ByName(gemm) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != 10 {
		t.Error("Names() wrong length")
	}
}

// buildAll builds every benchmark once at test scale.
func buildAll(t *testing.T) map[string]*trace.Kernel {
	t.Helper()
	out := make(map[string]*trace.Kernel)
	for _, s := range All() {
		k, as := s.Build(testParams())
		if k == nil || as == nil {
			t.Fatalf("%s: Build returned nil", s.Name)
		}
		out[s.Name] = k
	}
	return out
}

func TestAllBenchmarksBuild(t *testing.T) {
	cfg := arch.Default()
	for name, k := range buildAll(t) {
		if len(k.TBs) < 4 {
			t.Errorf("%s: only %d TBs; need enough to exercise scheduling", name, len(k.TBs))
		}
		if k.MemInsts() == 0 {
			t.Errorf("%s: no memory instructions", name)
		}
		if k.ThreadsPerTB <= 0 || k.ThreadsPerTB > cfg.MaxThreads {
			t.Errorf("%s: ThreadsPerTB = %d", name, k.ThreadsPerTB)
		}
		n := k.ConcurrentTBsPerSM(cfg)
		if n < 1 || n > cfg.MaxTBsPerSM {
			t.Errorf("%s: %d concurrent TBs per SM", name, n)
		}
		for _, tb := range k.TBs {
			if len(tb.Warps) != k.WarpsPerTB() {
				t.Errorf("%s TB %d: %d warps, want %d", name, tb.ID, len(tb.Warps), k.WarpsPerTB())
			}
		}
	}
}

func TestTBIDsAreSequential(t *testing.T) {
	for name, k := range buildAll(t) {
		for i, tb := range k.TBs {
			if tb.ID != i {
				t.Errorf("%s: TBs[%d].ID = %d", name, i, tb.ID)
				break
			}
		}
	}
}

func TestAddressesStayInsideRegions(t *testing.T) {
	for _, s := range All() {
		k, as := s.Build(testParams())
		regions := as.Regions()
		inRegion := func(a vm.Addr) bool {
			for _, r := range regions {
				if r.Contains(a) {
					return true
				}
			}
			return false
		}
		checked := 0
		for _, tb := range k.TBs {
			for _, w := range tb.Warps {
				for _, in := range w.Insts {
					for _, a := range in.Addrs {
						if !inRegion(a) {
							t.Fatalf("%s: address %#x outside every region", s.Name, a)
						}
						checked++
					}
				}
			}
		}
		if checked == 0 {
			t.Errorf("%s: no addresses generated", s.Name)
		}
	}
}

func TestBuildersDeterministic(t *testing.T) {
	for _, s := range All() {
		k1, _ := s.Build(testParams())
		k2, _ := s.Build(testParams())
		if len(k1.TBs) != len(k2.TBs) {
			t.Fatalf("%s: TB counts differ across identical builds", s.Name)
		}
		for i := range k1.TBs {
			w1, w2 := k1.TBs[i].Warps, k2.TBs[i].Warps
			for wi := range w1 {
				if len(w1[wi].Insts) != len(w2[wi].Insts) {
					t.Fatalf("%s TB %d warp %d: inst counts differ", s.Name, i, wi)
				}
				for ii := range w1[wi].Insts {
					a1, a2 := w1[wi].Insts[ii].Addrs, w2[wi].Insts[ii].Addrs
					if len(a1) != len(a2) {
						t.Fatalf("%s: lane counts differ", s.Name)
					}
					for l := range a1 {
						if a1[l] != a2[l] {
							t.Fatalf("%s: addresses differ across identical builds", s.Name)
						}
					}
				}
			}
		}
	}
}

func TestWorkingSetsExceedL1TLBReach(t *testing.T) {
	// The premise of the paper: at experiment scale, every benchmark's page
	// working set is far beyond the 64-entry L1 TLB.
	for _, s := range All() {
		k, _ := s.Build(DefaultParams())
		if got := UniquePages(k, 12); got < 128 {
			t.Errorf("%s: only %d unique pages; working set must exceed TLB reach", s.Name, got)
		}
	}
}

func TestScaleGrowsFootprint(t *testing.T) {
	small := testParams()
	large := testParams()
	large.Scale = 1.0
	for _, s := range All() {
		_, asS := s.Build(small)
		_, asL := s.Build(large)
		if FootprintBytes(asL) <= FootprintBytes(asS) {
			t.Errorf("%s: footprint did not grow with scale (%d -> %d bytes)",
				s.Name, FootprintBytes(asS), FootprintBytes(asL))
		}
	}
}

func TestGraphKernelsAreIrregular(t *testing.T) {
	// Graph kernels must show imbalance across TBs (the paper's motivation
	// for TLB-aware scheduling): the largest TB should carry well more work
	// than the median.
	for _, name := range []string{"bfs", "color", "mis", "pagerank"} {
		s, _ := ByName(name)
		k, _ := s.Build(DefaultParams())
		sizes := SortedTBSizes(k)
		if len(sizes) < 3 {
			t.Fatalf("%s: too few TBs", name)
		}
		med := sizes[len(sizes)/2]
		if med == 0 || float64(sizes[0]) < 1.1*float64(med) {
			t.Errorf("%s: max TB work %d vs median %d; expected heavy-tail imbalance", name, sizes[0], med)
		}
	}
}

func TestRegularKernelsAreBalanced(t *testing.T) {
	// Dense kernels are near-uniform: gemm exactly, 3dconv up to the
	// boundary z-chunks (which lose one halo plane).
	for _, tc := range []struct {
		name   string
		spread float64
	}{{"gemm", 1.0}, {"3dconv", 1.25}} {
		s, _ := ByName(tc.name)
		k, _ := s.Build(testParams())
		sizes := SortedTBSizes(k)
		if float64(sizes[0]) > tc.spread*float64(sizes[len(sizes)-1]) {
			t.Errorf("%s: TB work ranges %d..%d; dense kernels should be near-uniform",
				tc.name, sizes[len(sizes)-1], sizes[0])
		}
	}
}

func TestNWIsComputeBound(t *testing.T) {
	s, _ := ByName("nw")
	k, _ := s.Build(testParams())
	var computeCycles, memInsts int
	for _, tb := range k.TBs {
		for _, w := range tb.Warps {
			for _, in := range w.Insts {
				if in.IsMem() {
					memInsts++
				} else {
					computeCycles += in.Compute
				}
			}
		}
	}
	if computeCycles < 20*memInsts {
		t.Errorf("nw: %d compute cycles vs %d mem insts; must be compute-bound", computeCycles, memInsts)
	}
}

func TestGemmHasInterTBSharing(t *testing.T) {
	// TBs in the same tile row share A pages; B pages are shared globally.
	s, _ := ByName("gemm")
	k, _ := s.Build(testParams())
	pages := func(tb trace.TBTrace) map[vm.VPN]bool {
		m := make(map[vm.VPN]bool)
		for _, vpn := range trace.TBPageTrace(tb, 12) {
			m[vpn] = true
		}
		return m
	}
	p0, p1 := pages(k.TBs[0]), pages(k.TBs[1])
	shared := 0
	for vpn := range p0 {
		if p1[vpn] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("gemm: adjacent TBs share no pages; paper Observation 2 requires inter-TB reuse")
	}
}

func TestHugePageParamsWork(t *testing.T) {
	p := testParams()
	p.PageShift = 21
	for _, s := range All() {
		k, as := s.Build(p)
		if as.PageShift() != 21 {
			t.Fatalf("%s: address space page shift %d", s.Name, as.PageShift())
		}
		if got := UniquePages(k, 21); got < 1 {
			t.Errorf("%s: no huge pages touched", s.Name)
		}
		if UniquePages(k, 21) >= UniquePages(k, 12) {
			t.Errorf("%s: huge pages did not reduce unique page count", s.Name)
		}
	}
}

func TestBuildOnGraph(t *testing.T) {
	g := graph.Generate(4096, 4, 7)
	p := testParams()
	for _, name := range []string{"bfs", "color", "mis", "pagerank"} {
		k, as, err := BuildOnGraph(name, g, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if as == nil || len(k.TBs) != 4096/256 {
			t.Errorf("%s: %d TBs, want %d", name, len(k.TBs), 4096/256)
		}
		if k.MemInsts() == 0 {
			t.Errorf("%s: empty kernel", name)
		}
	}
	if _, _, err := BuildOnGraph("gemm", g, p); err == nil {
		t.Error("BuildOnGraph accepted a non-graph benchmark")
	}
	// Node counts that are not TB multiples are truncated, not rejected.
	odd := graph.Generate(300, 3, 1)
	k, _, err := BuildOnGraph("color", odd, p)
	if err != nil || len(k.TBs) != 1 {
		t.Errorf("odd-size graph: %v, %d TBs", err, len(k.TBs))
	}
}

func TestMatvecKernelsHaveTwoPhases(t *testing.T) {
	// atax/bicg/mvt are two separate kernel launches in PolyBench: the
	// transposed sweep must be marked as a dependent phase.
	for _, name := range []string{"atax", "bicg", "mvt"} {
		s, _ := ByName(name)
		k, _ := s.Build(testParams())
		if len(k.PhaseStarts) != 1 {
			t.Errorf("%s: %d phase boundaries, want 1", name, len(k.PhaseStarts))
			continue
		}
		b := k.PhaseStarts[0]
		if b <= 0 || b >= len(k.TBs) {
			t.Errorf("%s: phase boundary %d out of range (TBs %d)", name, b, len(k.TBs))
		}
		if err := k.ValidatePhases(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Single-kernel benchmarks have no phase boundaries.
	for _, name := range []string{"gemm", "bfs", "3dconv"} {
		s, _ := ByName(name)
		k, _ := s.Build(testParams())
		if len(k.PhaseStarts) != 0 {
			t.Errorf("%s: unexpected phase boundaries %v", name, k.PhaseStarts)
		}
	}
}

func TestNWFollowsWavefrontOrder(t *testing.T) {
	// nw's TBs must be emitted in anti-diagonal order: the sum of block
	// coordinates (recoverable from the first score access) never
	// decreases.
	s, _ := ByName("nw")
	k, as := s.Build(testParams())
	var score vm.Region
	for _, r := range as.Regions() {
		if r.Name == "score" {
			score = r
		}
	}
	if score.Bytes == 0 {
		t.Fatal("score region missing")
	}
	n := 0
	for 4*n*n < int(score.Bytes) {
		n++
	}
	prevDiag := -1
	for i, tb := range k.TBs {
		var first vm.Addr
		found := false
		for _, in := range tb.Warps[0].Insts {
			if in.IsMem() && score.Contains(in.Addrs[0]) {
				first = in.Addrs[0]
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("TB %d never touches the score matrix", i)
		}
		elem := int(first-score.Base) / 4
		row, col := elem/n, elem%n
		diag := row/32 + col/32
		if diag < prevDiag {
			t.Fatalf("TB %d on diagonal %d after diagonal %d: wavefront order broken", i, diag, prevDiag)
		}
		prevDiag = diag
	}
}

func TestGraphKernelFrontierOnlyInBFS(t *testing.T) {
	// bfs models a frontier (some warps inactive); the other graph kernels
	// process every node. Inactive warps have exactly the 3 structural
	// instructions.
	countTiny := func(name string) int {
		s, _ := ByName(name)
		k, _ := s.Build(testParams())
		tiny := 0
		for _, tb := range k.TBs {
			for _, w := range tb.Warps {
				mem := 0
				for _, in := range w.Insts {
					if in.IsMem() {
						mem++
					}
				}
				if mem <= 3 {
					tiny++
				}
			}
		}
		return tiny
	}
	if got := countTiny("bfs"); got == 0 {
		t.Error("bfs has no inactive frontier warps")
	}
	if got := countTiny("pagerank"); got != 0 {
		t.Errorf("pagerank has %d inactive warps; it processes every node", got)
	}
}
