package workloads

import (
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// Build3DConv models the PolyBench 3D convolution: each TB owns a 16-row
// y-slab crossed with an 8-plane z-chunk and marches along z, reading the
// z-1, z and z+1 plane slabs and writing the output slab. A plane slab's
// pages are re-read at three consecutive z steps, giving short intra-TB
// reuse distances; different TBs own disjoint slabs and share only the halo
// planes between adjacent z-chunks, so inter-TB reuse is minimal (paper
// bin b1).
func Build3DConv(p Params) (*trace.Kernel, *vm.AddressSpace) {
	as := newSpace(p)
	nx, ny := 128, 128
	nz := roundUp(scaled(128, p.Scale, 16), 16)
	in := mustAlloc(as, "in", uint64(nx)*uint64(ny)*uint64(nz)*f32)
	out := mustAlloc(as, "out", uint64(nx)*uint64(ny)*uint64(nz)*f32)

	k := &trace.Kernel{Name: "3dconv", ThreadsPerTB: 256}
	plane := nx * ny
	tbID := 0
	for zc := 0; zc < nz; zc += 8 {
		for ys := 0; ys < ny; ys += 16 {
			tb := trace.TBTrace{ID: tbID}
			tbID++
			for w := 0; w < 8; w++ {
				var wt trace.WarpTrace
				y0, y1 := ys+2*w, ys+2*w+1
				zEnd := zc + 8
				if zEnd > nz-1 {
					zEnd = nz - 1
				}
				for z := zc + 1; z < zEnd; z++ {
					for _, dz := range []int{-1, 0, 1} {
						base0 := (z+dz)*plane + y0*nx
						base1 := (z+dz)*plane + y1*nx
						wt.Insts = append(wt.Insts, warpPair(in, base0, base1, f32))
					}
					wt.Insts = append(wt.Insts, compute(70),
						warpPair(out, z*plane+y0*nx, z*plane+y1*nx, f32))
				}
				tb.Warps = append(tb.Warps, wt)
			}
			k.TBs = append(k.TBs, tb)
		}
	}
	return k, as
}

// BuildNW models Rodinia's Needleman-Wunsch: 16x16 blocks of the score
// matrix processed in diagonal wavefront order. Rows of the scaled matrix
// span pages, so each block touches a fresh set of score and reference
// pages (the cold misses behind nw's very low hit rate), while the
// left-boundary column page is the block's small hot set. The per-cell
// dynamic-programming max makes the kernel compute-bound, which is why the
// paper's improved hit rate does not translate into speedup for nw.
func BuildNW(p Params) (*trace.Kernel, *vm.AddressSpace) {
	as := newSpace(p)
	n := roundUp(scaled(2048, p.Scale, 512), 512)
	score := mustAlloc(as, "score", uint64(n)*uint64(n)*f32)
	ref := mustAlloc(as, "ref", uint64(n)*uint64(n)*f32)

	const bs = 32 // block side
	k := &trace.Kernel{Name: "nw", ThreadsPerTB: 256}
	blocks := n / bs
	pagesPerRow := n * f32 >> p.PageShift
	if pagesPerRow < 1 {
		pagesPerRow = 1
	}
	// pal is the palindromic sweep the DP anti-diagonals induce over the
	// upper half of the block: the same eight score-row pages are revisited
	// back and forth, so the hits a TB can get scale with the TLB entries
	// it actually holds — exactly one TB partition's worth.
	pal := []int{0, 1, 2, 3, 4, 5, 6, 7, 6, 3}
	tbID := 0
	// Wavefront order: anti-diagonal d holds blocks (bi, d-bi); every
	// fourth diagonal is modelled (the DP dependency serializes diagonals
	// anyway). The lower half of the block streams cyclically — the cold
	// misses the paper attributes to nw.
	for d := 0; d < 2*blocks-1; d += 4 {
		for bi := 0; bi < blocks; bi++ {
			bj := d - bi
			if bj < 0 || bj >= blocks {
				continue
			}
			col := bj * bs
			if col+32 > n {
				col = n - 32
			}
			tb := trace.TBTrace{ID: tbID}
			tbID++
			for w := 0; w < 8; w++ {
				var wt trace.WarpTrace
				for s := 0; s < len(pal); s++ {
					hot := bi*bs + pal[(s+w)%len(pal)]*2
					// The reference block streams: each warp-step reads a
					// (near-)unique reference page, the cold misses that
					// dominate nw and put its intra-TB reuse intensity in
					// the paper's b2/b3 bins.
					idx := w*len(pal) + s // unique per (warp, step) in the TB
					coldRow := bi*bs + idx%40
					if coldRow >= n {
						coldRow = n - 1
					}
					coldCol := col
					if (idx/40)%2 == 1 {
						coldCol = (col + n/2) % n
					}
					if coldCol+32 > n {
						coldCol = n - 32
					}
					wt.Insts = append(wt.Insts,
						warpRead(score, hot*n+col, f32),
						warpRead(ref, coldRow*n+coldCol, f32),
						compute(140))
				}
				tb.Warps = append(tb.Warps, wt)
			}
			k.TBs = append(k.TBs, tb)
		}
	}
	return k, as
}
