package workloads

import (
	"fmt"

	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// The PolyBench linear-algebra kernels. atax, bicg and mvt share the same
// two-phase matrix-vector structure (a row-major sweep producing an
// intermediate vector, then a transposed column sweep), which is why the
// paper reports near-identical behaviour for them. Their L1 TLB locality
// comes from scan residency: a warp issues several consecutive accesses
// inside one page while it walks a row, so the translation hits as long as
// the page survives in the TLB until the scan leaves it. With many TBs per
// SM the combined active-page set exceeds the 64-entry L1 TLB and the scans
// interfere — the thrashing that TB-id partitioning isolates. gemm is the
// tiled matrix multiply whose small, heavily shared tile working set gives
// it a high baseline hit rate.

const f64 = 8 // element size of the double-precision PolyBench kernels
const f32 = 4

// matvecShape parameterizes one two-phase matrix-vector kernel.
type matvecShape struct {
	name      string
	rows      int // M
	cols      int // N (multiple of 512 so rows are whole 4KB pages)
	rowsPerTB int // phase-1 rows per TB (multiple of 8)
	rowBand   int // phase-2 rows per TB (partial sums per column band)
	rowStep   int // phase-2 row stride per modelled access (register blocking)
	hotPeriod int // phase-2 accesses between hot-vector touches
	compute   int // ALU cycles between memory instruction groups
}

// buildMatvec constructs the two-phase kernel over fresh UVM regions.
//
// Phase 1 (tmp = A·x): each TB owns a band of rows; every warp walks its
// rows page by page with four consecutive accesses per page (quarter-page
// strides), touching the matching page of the shared input vector x between
// matrix accesses. The warp-active pages of the TBs resident on an SM are
// what contend for the L1 TLB.
//
// Phase 2 (y = Aᵀ·tmp): each TB owns a column band crossed with a row band;
// advancing down the column jumps a full row of memory per step, so every
// access streams a new matrix page while the tmp vector is the periodic hot
// touch.
func buildMatvec(p Params, sh matvecShape) (*trace.Kernel, *vm.AddressSpace) {
	as := newSpace(p)
	M := roundUp(scaled(sh.rows, p.Scale, 128), 128)
	N := roundUp(scaled(sh.cols, p.Scale, 512), 512)
	A := mustAlloc(as, "A", uint64(M)*uint64(N)*f64)
	x := mustAlloc(as, "x", uint64(N)*f64)
	tmp := mustAlloc(as, "tmp", uint64(M)*f64)
	y := mustAlloc(as, "y", uint64(N)*f64)

	k := &trace.Kernel{Name: sh.name, ThreadsPerTB: 256}
	pagesPerRow := N * f64 >> p.PageShift
	if pagesPerRow < 1 {
		pagesPerRow = 1
	}
	// Scan granularity: one page, or the whole row when a (huge) page
	// exceeds the row.
	scanSpan := int(uint(1)<<p.PageShift) / f64
	if scanSpan > N {
		scanSpan = N
	}
	quarter := scanSpan / 4

	// Phase 1: M/rowsPerTB TBs, 8 warps each.
	rpt := sh.rowsPerTB
	tbID := 0
	for r0 := 0; r0 < M; r0 += rpt {
		tb := trace.TBTrace{ID: tbID}
		tbID++
		for w := 0; w < 8; w++ {
			var wt trace.WarpTrace
			for r := r0 + w*rpt/8; r < r0+(w+1)*rpt/8 && r < M; r++ {
				for c := 0; c < pagesPerRow; c++ {
					for q := 0; q < 4; q++ {
						base := r*N + c*scanSpan + q*quarter
						wt.Insts = append(wt.Insts, warpReadStride(A, base, f64, 4))
						if q%2 == 1 {
							wt.Insts = append(wt.Insts,
								warpReadStride(x, c*scanSpan+q*quarter, f64, 4))
						}
					}
					wt.Insts = append(wt.Insts, compute(sh.compute))
				}
			}
			// Store this warp's partial tmp results.
			st := r0
			if st+32 > M {
				st = M - 32
			}
			wt.Insts = append(wt.Insts, warpRead(tmp, st, f64))
			tb.Warps = append(tb.Warps, wt)
		}
		k.TBs = append(k.TBs, tb)
	}

	// Phase 2 is a separate kernel launch in PolyBench: it consumes tmp, so
	// it must not start until phase 1 drains.
	k.PhaseStarts = []int{tbID}
	// Phase 2: (N/256)x(M/rowBand) TBs, one column per thread within a row
	// band.
	for col0 := 0; col0 < N; col0 += 256 {
		for band := 0; band < M; band += sh.rowBand {
			bandEnd := band + sh.rowBand
			if bandEnd > M {
				bandEnd = M
			}
			tb := trace.TBTrace{ID: tbID}
			tbID++
			for w := 0; w < 8; w++ {
				var wt trace.WarpTrace
				cw := col0 + w*32
				for r, n := band, 0; r < bandEnd; r, n = r+sh.rowStep, n+1 {
					wt.Insts = append(wt.Insts, warpRead(A, r*N+cw, f64))
					if n%sh.hotPeriod == sh.hotPeriod-1 {
						tr := r
						if tr+32 > M {
							tr = M - 32
						}
						wt.Insts = append(wt.Insts, warpRead(tmp, tr, f64))
					}
					wt.Insts = append(wt.Insts, compute(sh.compute))
				}
				wt.Insts = append(wt.Insts, warpRead(y, cw, f64))
				tb.Warps = append(tb.Warps, wt)
			}
			k.TBs = append(k.TBs, tb)
		}
	}
	return k, as
}

// warpReadStride builds a warp access whose 32 lanes read elements
// base, base+stride, ... — a register-blocked sequential scan where each
// lane covers `stride` consecutive elements.
func warpReadStride(r vm.Region, base, elemSize, stride int) trace.Inst {
	addrs := make([]vm.Addr, 32)
	for l := range addrs {
		addrs[l] = elemAddr(r, base+l*stride, elemSize)
	}
	return trace.Inst{Addrs: addrs}
}

// BuildATAX models atax: y = Aᵀ(A·x).
func BuildATAX(p Params) (*trace.Kernel, *vm.AddressSpace) {
	return buildMatvec(p, matvecShape{
		name: "atax", rows: 2048, cols: 2048,
		rowsPerTB: 16, rowBand: 512, rowStep: 4, hotPeriod: 4, compute: 26,
	})
}

// BuildBICG models bicg: the two independent matrix-vector products
// (q = A·p, s = Aᵀ·r) of the BiCGStab solver sub-kernel.
func BuildBICG(p Params) (*trace.Kernel, *vm.AddressSpace) {
	return buildMatvec(p, matvecShape{
		name: "bicg", rows: 1792, cols: 2048,
		rowsPerTB: 16, rowBand: 448, rowStep: 4, hotPeriod: 5, compute: 30,
	})
}

// BuildMVT models mvt: x1 += A·y1 and x2 += Aᵀ·y2 over one matrix.
func BuildMVT(p Params) (*trace.Kernel, *vm.AddressSpace) {
	return buildMatvec(p, matvecShape{
		name: "mvt", rows: 2304, cols: 2048,
		rowsPerTB: 16, rowBand: 576, rowStep: 4, hotPeriod: 4, compute: 22,
	})
}

// BuildGEMM models the tiled matrix multiply C = A·B with 16x16-thread tile
// TBs. Rows are short enough that several pack into one page, so a TB's
// working set is a handful of pages reused across the whole K sweep, shared
// with neighbouring TBs along tile rows (A) and globally (B) — the intrinsic
// inter-TB reuse the paper's Observation 2 describes.
func BuildGEMM(p Params) (*trace.Kernel, *vm.AddressSpace) {
	as := newSpace(p)
	dim := roundUp(scaled(256, p.Scale, 64), 64) // M = N = K
	A := mustAlloc(as, "A", uint64(dim)*uint64(dim)*f32)
	B := mustAlloc(as, "B", uint64(dim)*uint64(dim)*f32)
	C := mustAlloc(as, "C", uint64(dim)*uint64(dim)*f32)

	// 512-thread TBs (16 warps) computing a 16x32 tile of C: one warp per
	// tile row. Four TBs run per SM, so each gets a quarter of the L1 TLB
	// under partitioning.
	k := &trace.Kernel{Name: "gemm", ThreadsPerTB: 512}
	tbID := 0
	for tr := 0; tr < dim; tr += 16 {
		for tc := 0; tc < dim; tc += 32 {
			tb := trace.TBTrace{ID: tbID}
			tbID++
			for w := 0; w < 16; w++ {
				var wt trace.WarpTrace
				r := tr + w
				for kk := 0; kk < dim; kk += 16 {
					ak := kk
					if ak+32 > dim {
						ak = dim - 32 // keep the 32-lane read inside row r
					}
					wt.Insts = append(wt.Insts,
						warpRead(A, r*dim+ak, f32),
						warpRead(B, (kk+w%16)*dim+tc, f32),
						compute(24))
				}
				wt.Insts = append(wt.Insts, warpRead(C, r*dim+tc, f32))
				tb.Warps = append(tb.Warps, wt)
			}
			k.TBs = append(k.TBs, tb)
		}
	}
	return k, as
}

// warpPair builds a 32-lane access covering two 16-element row segments
// (lanes 0-15 from base0, lanes 16-31 from base1) — the canonical 2x16 tile
// access of a 256-thread GEMM tile warp.
func warpPair(r vm.Region, base0, base1, elemSize int) trace.Inst {
	addrs := make([]vm.Addr, 32)
	for l := 0; l < 16; l++ {
		addrs[l] = elemAddr(r, base0+l, elemSize)
		addrs[16+l] = elemAddr(r, base1+l, elemSize)
	}
	return trace.Inst{Addrs: addrs}
}

func mustAlloc(as *vm.AddressSpace, name string, bytes uint64) vm.Region {
	r, err := as.Alloc(name, bytes)
	if err != nil {
		panic(fmt.Sprintf("workloads: alloc %s: %v", name, err))
	}
	return r
}
