// Package metrics provides the small statistics and rendering helpers the
// experiment harnesses share: geometric means, percentage formatting, and
// fixed-width text tables shaped like the paper's figures.
package metrics
