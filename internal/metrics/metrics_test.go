package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if got, err := Geomean([]float64{2, 8}); err != nil || math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, %v, want 4", got, err)
	}
	if got, err := Geomean([]float64{1, 1, 1}); err != nil || got != 1 {
		t.Errorf("Geomean(1,1,1) = %v, %v", got, err)
	}
	if got, err := Geomean(nil); err != nil || got != 0 {
		t.Errorf("Geomean(nil) = %v, %v, want 0", got, err)
	}
}

func TestGeomeanErrorOnNonPositive(t *testing.T) {
	for _, xs := range [][]float64{{1, 0}, {-2}, {3, 4, -1, 5}} {
		if got, err := Geomean(xs); err == nil {
			t.Errorf("Geomean(%v) = %v, want error", xs, got)
		} else if got != 0 {
			t.Errorf("Geomean(%v) returned %v alongside error", xs, got)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.125); got != " 12.5%" {
		t.Errorf("Pct(0.125) = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("bench", "hit", "time")
	tb.AddRow("bfs", "0.60", "1.00")
	tb.AddRow("gemm", "0.91") // short row padded
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width mismatch:\n%s", s)
	}
	if !strings.Contains(lines[2], "bfs") || !strings.Contains(lines[3], "gemm") {
		t.Errorf("rows missing:\n%s", s)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2) = %q", got)
	}
}

// Property: geomean lies between min and max, and is scale-equivariant.
func TestGeomeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		min, max := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			if xs[i] < min {
				min = xs[i]
			}
			if xs[i] > max {
				max = xs[i]
			}
		}
		g, err := Geomean(xs)
		if err != nil {
			return false
		}
		if g < min-1e-9 || g > max+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		gs, err := Geomean(scaled)
		if err != nil {
			return false
		}
		return math.Abs(gs-3*g) < 1e-9*(1+3*g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
