package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs (0 for empty input). Non-positive
// values are rejected with an error: normalized execution times are always
// positive, so a zero means a broken experiment, and the caller decides how
// to surface that.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("metrics: geomean of non-positive value %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%5.1f%%", 100*x) }

// Table is a simple fixed-width text table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders x in [0,1] as a text bar of the given width, for quick visual
// comparison of figure series in terminal output.
func Bar(x float64, width int) string {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	n := int(x*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
