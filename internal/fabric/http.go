package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"gputlb/internal/jobs"
	"gputlb/internal/stats"
)

// Handler returns the coordinator's HTTP API. The /jobs surface is the
// single-process daemon's, unchanged — clients (evaluate -daemon,
// characterize -daemon, curl) work against either — plus the fabric
// endpoints workers use:
//
//	POST /jobs                  submit a JobSpec; 202 {"id": ...}, 429
//	                            when the queue is full, 503 while draining
//	GET  /jobs                  all job statuses, oldest first
//	GET  /jobs/{id}             one job's status
//	GET  /jobs/{id}/result      the canonical result artifact (exact
//	                            journaled bytes); 409 until the job is done
//	POST /workers               worker registration; returns the worker id
//	POST /workers/{id}/heartbeat liveness refresh; 404 tells the worker to
//	                            re-register
//	GET  /workers               registered workers with lease/progress info
//	POST /results               worker result batches (at-least-once;
//	                            deduplicated), acked only after journaling
//	GET  /healthz               liveness probe
//	GET  /metrics               coordinator metrics: flat "path value"
//	                            text, or the stats snapshot JSON with
//	                            ?format=json
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", c.handleResult)
	mux.HandleFunc("POST /workers", c.handleRegister)
	mux.HandleFunc("POST /workers/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /workers", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Workers())
	})
	mux.HandleFunc("POST /results", c.handleResults)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeMetrics(w, r, c.MetricsSnapshot())
	})
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	id, err := c.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := c.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	out, err := c.Result(id)
	if errors.Is(err, jobs.ErrNotDone) {
		writeError(w, http.StatusConflict, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding registration: %w", err))
		return
	}
	resp, err := c.registerWorker(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !c.heartbeat(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown worker %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	var batch ResultBatch
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding result batch: %w", err))
		return
	}
	if err := c.ingestOutcomes(batch); err != nil {
		// Journal write failed: nothing was acknowledged durably; the
		// worker's batcher retries the whole batch.
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"acked": len(batch.Outcomes)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeMetrics renders a stats snapshot as flat "path value" text, or as
// the full snapshot JSON with ?format=json — the same wire format the
// single-process daemon serves.
func writeMetrics(w http.ResponseWriter, r *http.Request, snap *stats.Snapshot) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	for _, fv := range snap.Flatten("") {
		fmt.Fprintf(&b, "%s %s\n", fv.Path, fv.Value)
	}
	fmt.Fprint(w, b.String())
}
