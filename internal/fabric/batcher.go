package fabric

import (
	"errors"
	"sync"
	"time"
)

// Batcher coalesces items into flushes triggered by size or age,
// whichever comes first — the shape small cell results need on the wire:
// a full batch flushes immediately, a lone straggler waits at most
// MaxWait. Each Add returns a per-item channel that reports its batch's
// flush outcome, so callers can couple to delivery without every item
// paying its own round trip.
type Batcher[T any] struct {
	size    int
	maxWait time.Duration
	flush   func([]T) error

	mu      sync.Mutex
	items   []T
	waiters []chan error
	timer   *time.Timer
	closed  bool
	wg      sync.WaitGroup
}

// ErrBatcherClosed reports an Add after Close.
var ErrBatcherClosed = errors.New("fabric: batcher closed")

// NewBatcher creates a batcher flushing at size items or maxWait after
// the oldest buffered item, whichever comes first. size <= 0 means 32;
// maxWait <= 0 means 50ms. flush is called outside the batcher's lock
// and may block (e.g. on HTTP retries); its error is delivered to every
// item of the batch.
func NewBatcher[T any](size int, maxWait time.Duration, flush func([]T) error) *Batcher[T] {
	if size <= 0 {
		size = 32
	}
	if maxWait <= 0 {
		maxWait = 50 * time.Millisecond
	}
	return &Batcher[T]{size: size, maxWait: maxWait, flush: flush}
}

// Add buffers an item and returns the channel its batch outcome arrives
// on (buffered; the batcher never blocks delivering it).
func (b *Batcher[T]) Add(item T) <-chan error {
	done := make(chan error, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		done <- ErrBatcherClosed
		return done
	}
	b.items = append(b.items, item)
	b.waiters = append(b.waiters, done)
	if len(b.items) >= b.size {
		b.flushLocked()
	} else if b.timer == nil {
		b.timer = time.AfterFunc(b.maxWait, b.flushOnTimer)
	}
	b.mu.Unlock()
	return done
}

func (b *Batcher[T]) flushOnTimer() {
	b.mu.Lock()
	b.flushLocked()
	b.mu.Unlock()
}

// flushLocked hands the buffered batch to a flusher goroutine. Caller
// holds b.mu; the flush callback itself runs unlocked so a slow or
// retrying flush never blocks new Adds.
func (b *Batcher[T]) flushLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.items) == 0 {
		return
	}
	items, waiters := b.items, b.waiters
	b.items, b.waiters = nil, nil
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		err := b.flush(items)
		for _, w := range waiters {
			w <- err
		}
	}()
}

// Close flushes any buffered items and waits for in-flight flushes to
// finish. Subsequent Adds fail with ErrBatcherClosed.
func (b *Batcher[T]) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	b.flushLocked()
	b.mu.Unlock()
	b.wg.Wait()
}
