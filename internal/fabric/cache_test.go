package fabric

import (
	"fmt"
	"testing"

	"gputlb/internal/jobs"
	"gputlb/internal/stats"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(2)
	reg := stats.NewRegistry("test")
	c.Register(reg.Child("result_cache"))

	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", jobs.CellResult{Bench: "atax", Cycles: 1})
	c.Put("b", jobs.CellResult{Bench: "bfs", Cycles: 2})
	if res, ok := c.Get("a"); !ok || res.Cycles != 1 {
		t.Fatalf("Get(a) = %+v, %v", res, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", jobs.CellResult{Bench: "mvt", Cycles: 3})
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry survived past capacity")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry was evicted")
	}
	hits, misses, evictions := c.Stats()
	if hits != 2 || misses != 2 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want 2/2/1", hits, misses, evictions)
	}
	snap := reg.Snapshot()
	if v, ok := snap.CounterAt("result_cache/evictions"); !ok || v != 1 {
		t.Errorf("registry evictions = %d, %v", v, ok)
	}
	if v, ok := snap.GaugeAt("result_cache/entries"); !ok || v != 2 {
		t.Errorf("registry entries = %v, %v", v, ok)
	}
}

func TestCachePutIdempotent(t *testing.T) {
	c := NewCache(4)
	c.Put("k", jobs.CellResult{Cycles: 1})
	c.Put("k", jobs.CellResult{Cycles: 1})
	if c.Len() != 1 {
		t.Errorf("Len = %d after double put", c.Len())
	}
}

func TestCacheBounded(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), jobs.CellResult{Cycles: int64(i)})
	}
	if c.Len() != 8 {
		t.Errorf("Len = %d, want capacity 8", c.Len())
	}
	_, _, evictions := c.Stats()
	if evictions != 92 {
		t.Errorf("evictions = %d, want 92", evictions)
	}
}
