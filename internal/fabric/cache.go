package fabric

import (
	"container/list"
	"sync"
	"sync/atomic"

	"gputlb/internal/jobs"
	"gputlb/internal/stats"
)

// Cache is the coordinator's content-addressed result store: a bounded
// LRU from CellKey to the completed CellResult. Overlapping grids across
// jobs and users hit the cache instead of re-simulating; the canonical
// key (hash.go) guarantees a hit is the byte-identical result the cell
// would have produced.
//
// Only successful results are cached — a failed cell must re-run, not
// replay its failure.
type Cache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recently used; values are *cacheEntry
	m   map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key string
	res jobs.CellResult
}

// NewCache creates a cache bounded to capacity entries; capacity <= 0
// means 4096.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Cache{cap: capacity, lru: list.New(), m: map[string]*list.Element{}}
}

// Register exposes the cache's hit/miss/eviction counters and occupancy
// under r.
func (c *Cache) Register(r *stats.Registry) {
	r.CounterFunc("hits", c.hits.Load)
	r.CounterFunc("misses", c.misses.Load)
	r.CounterFunc("evictions", c.evictions.Load)
	r.GaugeFunc("entries", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.m))
	})
}

// Get returns the cached result for key, counting a hit or miss.
func (c *Cache) Get(key string) (jobs.CellResult, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return jobs.CellResult{}, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a completed cell result under key, evicting the least
// recently used entry when full. Idempotent: re-putting an existing key
// refreshes its recency and overwrites the value.
func (c *Cache) Put(key string, res jobs.CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	if len(c.m) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
