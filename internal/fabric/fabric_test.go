package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"gputlb/internal/jobs"
)

// The end-to-end suite: an in-process coordinator and N in-process
// workers wired through real HTTP servers, checked for byte-identity
// against the single-process manager on the same specs — under worker
// kill, flaky result delivery, stalled-worker stealing, and coordinator
// restart.

// fastOpts are coordinator timings scaled for tests: leases expire in
// hundreds of milliseconds instead of seconds.
func fastOpts(dir string) CoordinatorOptions {
	return CoordinatorOptions{
		Dir:          dir,
		BatchSize:    2,
		TickEvery:    10 * time.Millisecond,
		LeaseTimeout: 400 * time.Millisecond,
		StealAfter:   200 * time.Millisecond,
	}
}

// killableTransport simulates a network partition: once dead, every
// request from the worker (heartbeats, result flushes, registration)
// fails.
type killableTransport struct {
	dead atomic.Bool
}

func (k *killableTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if k.dead.Load() {
		return nil, errors.New("network partition (test)")
	}
	return http.DefaultTransport.RoundTrip(r)
}

type testWorker struct {
	w         *Worker
	srv       *httptest.Server
	transport *killableTransport
}

// kill severs the worker from the fabric: its server stops accepting
// dispatches and its outbound traffic (heartbeats, results) fails.
func (tw *testWorker) kill() {
	tw.transport.dead.Store(true)
	tw.srv.Close()
}

func (tw *testWorker) stop() {
	tw.transport.dead.Store(true) // unblock any flush retry loops fast
	tw.w.Close()
	tw.srv.Close()
}

// startWorker brings up one worker behind its own HTTP server, joined to
// coordinatorURL.
func startWorker(t *testing.T, coordinatorURL string) *testWorker {
	t.Helper()
	var handler atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	tr := &killableTransport{}
	w := NewWorker(WorkerOptions{
		CoordinatorURL: coordinatorURL,
		AdvertiseURL:   srv.URL,
		Parallelism:    2,
		FlushSize:      2,
		FlushWait:      10 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		RetryBackoff:   10 * time.Millisecond,
		HTTPClient:     &http.Client{Transport: tr},
	})
	handler.Store(w.Handler())
	if err := w.Start(); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return &testWorker{w: w, srv: srv, transport: tr}
}

// startCoordinator brings up a coordinator behind an HTTP server.
func startCoordinator(t *testing.T, opt CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(opt)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Drain(ctx)
		srv.Close()
	})
	return c, srv
}

// singleDaemonResult runs spec on the single-process manager and returns
// the canonical result bytes — the byte-identity reference.
func singleDaemonResult(t *testing.T, spec jobs.JobSpec) []byte {
	t.Helper()
	m, err := jobs.New(jobs.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Drain(ctx)
	}()
	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, ok := m.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == jobs.StateDone {
			break
		}
		if st.State == jobs.StateFailed {
			t.Fatalf("reference job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("reference job stuck in %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	out, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// submitAndWait submits spec through the coordinator's HTTP API (the
// same jobs.Client the evaluate -daemon path uses) and returns the
// result bytes.
func submitAndWait(t *testing.T, baseURL string, spec jobs.JobSpec) []byte {
	t.Helper()
	cl := &jobs.Client{BaseURL: baseURL}
	id, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := cl.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
	}
	out, err := cl.RawResult(id)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func testJobSpec() jobs.JobSpec {
	return jobs.JobSpec{
		Name:       "fabric-e2e",
		Benchmarks: []string{"atax", "bicg", "mvt"},
		Configs:    []string{"baseline", "sched"},
		Scale:      0.1,
	}
}

// TestFabricByteIdenticalToSingleDaemon is the core acceptance property:
// a coordinator with three workers produces the exact result bytes of a
// single-process daemon run of the same spec.
func TestFabricByteIdenticalToSingleDaemon(t *testing.T) {
	spec := testJobSpec()
	want := singleDaemonResult(t, spec)

	_, srv := startCoordinator(t, fastOpts(t.TempDir()))
	for i := 0; i < 3; i++ {
		tw := startWorker(t, srv.URL)
		defer tw.stop()
	}
	got := submitAndWait(t, srv.URL, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("distributed result differs from single-daemon result:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestFabricSmoke is the CI smoke (make fabric-smoke): coordinator + 2
// workers, one killed mid-job — dispatch failures, heartbeat expiry, and
// re-dispatch of unacked cells — and the survivor still delivers a
// byte-identical result file.
func TestFabricSmoke(t *testing.T) {
	spec := testJobSpec()
	want := singleDaemonResult(t, spec)

	c, srv := startCoordinator(t, fastOpts(t.TempDir()))
	w1 := startWorker(t, srv.URL)
	defer w1.stop()
	w2 := startWorker(t, srv.URL)
	defer w2.srv.Close() // w2.kill below severs it; just free the port listener state

	cl := &jobs.Client{BaseURL: srv.URL}
	id, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the second worker once the job is demonstrably mid-flight:
	// at least one cell done, not all.
	killDeadline := time.Now().Add(120 * time.Second)
	for {
		st, err := cl.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.CellsDone >= 1 && st.CellsDone < st.Cells {
			break
		}
		if st.State == jobs.StateDone {
			t.Skip("job finished before the kill point; scale too small to exercise mid-job death")
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("no progress: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	w2.kill()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := cl.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job ended %s after worker kill: %s", st.State, st.Error)
	}
	got, err := cl.RawResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("result after mid-job worker kill differs from single-daemon result")
	}
	// The survivor may finish (via stealing) before the killed worker's
	// lease timeout elapses; the expiry scan keeps running, so poll.
	expireDeadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := c.MetricsSnapshot().CounterAt("fabric/workers_expired"); v >= 1 {
			break
		}
		if time.Now().After(expireDeadline) {
			t.Fatal("killed worker never expired off the registry")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFabricCacheWarmRerun: resubmitting an identical job must complete
// entirely from the content-addressed cache — zero cells dispatched to
// workers — and still produce the byte-identical artifact.
func TestFabricCacheWarmRerun(t *testing.T) {
	spec := jobs.JobSpec{
		Name:       "cache-warm",
		Benchmarks: []string{"atax", "bicg"},
		Configs:    []string{"baseline", "sched"},
		Scale:      0.1,
	}
	c, srv := startCoordinator(t, fastOpts(t.TempDir()))
	tw := startWorker(t, srv.URL)
	defer tw.stop()

	first := submitAndWait(t, srv.URL, spec)
	snap := c.MetricsSnapshot()
	dispatchedCold, _ := snap.CounterAt("fabric/cells_dispatched")
	if hits, _ := snap.CounterAt("result_cache/hits"); hits != 0 {
		t.Errorf("cold run hit the cache %d times", hits)
	}

	second := submitAndWait(t, srv.URL, spec)
	if !bytes.Equal(first, second) {
		t.Error("cache-served result differs from the simulated one")
	}
	snap = c.MetricsSnapshot()
	if hits, _ := snap.CounterAt("result_cache/hits"); hits != 4 {
		t.Errorf("warm run cache hits = %d, want 4 (100%%)", hits)
	}
	if fromCache, _ := snap.CounterAt("fabric/cells_from_cache"); fromCache != 4 {
		t.Errorf("cells_from_cache = %d, want 4", fromCache)
	}
	if dispatchedWarm, _ := snap.CounterAt("fabric/cells_dispatched"); dispatchedWarm != dispatchedCold {
		t.Errorf("warm run dispatched %d new cells, want 0 (re-simulated)", dispatchedWarm-dispatchedCold)
	}
	// The two artifacts are separate jobs with separate journals; both
	// result files must also match a fresh single-daemon run.
	want := singleDaemonResult(t, spec)
	if !bytes.Equal(first, want) {
		t.Error("fabric result differs from single-daemon result")
	}
}

// TestFabricFlakyResultDelivery drops the coordinator's response to
// every 2nd result flush after processing it — the lost-ack case. The
// worker's batcher must retry (at-least-once), the coordinator must
// deduplicate the replays, the journal must record each cell exactly
// once, and the job must complete byte-identically.
func TestFabricFlakyResultDelivery(t *testing.T) {
	spec := jobs.JobSpec{
		Name:       "flaky",
		Benchmarks: []string{"atax", "bicg"},
		Configs:    []string{"baseline", "sched"},
		Scale:      0.1,
	}
	want := singleDaemonResult(t, spec)

	dir := t.TempDir()
	c, srv := startCoordinator(t, fastOpts(dir))

	// A dropping proxy between worker and coordinator: forwards every
	// request, but swallows the response of every 2nd /results POST.
	var resultPosts atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		req, err := http.NewRequest(r.Method, srv.URL+r.URL.Path, bytes.NewReader(body))
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if r.Method == http.MethodPost && r.URL.Path == "/results" && resultPosts.Add(1)%2 == 1 {
			// The coordinator processed the batch; its ack is "lost".
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(out)
	}))
	defer proxy.Close()

	tw := startWorker(t, proxy.URL)
	defer tw.stop()

	got := submitAndWait(t, srv.URL, spec)
	if !bytes.Equal(got, want) {
		t.Error("result under flaky delivery differs from single-daemon result")
	}
	// The replay of the lost-ack batch arrives on the worker's retry
	// backoff, possibly after the job already finished — poll for it.
	dupDeadline := time.Now().Add(10 * time.Second)
	for {
		if dups, _ := c.MetricsSnapshot().CounterAt("fabric/results_duplicate"); dups >= 1 {
			break
		}
		if time.Now().After(dupDeadline) {
			t.Fatal("no lost-ack replay was ever deduplicated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if retries, ok := tw.w.Registry().Snapshot().CounterAt("worker/flush_retries"); !ok || retries < 1 {
		t.Errorf("worker flush_retries = %d, want >= 1", retries)
	}
	assertJournalNoDuplicateCells(t, jobs.JournalPath(dir, "job-0001"))
}

// assertJournalNoDuplicateCells parses a journal's raw lines and fails
// if any cell index carries more than one durable outcome record.
func assertJournalNoDuplicateCells(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seen := map[int]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		var rec struct {
			Type  string `json:"type"`
			Index int    `json:"index"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		if rec.Type == "cell" || rec.Type == "fail" {
			seen[rec.Index]++
		}
	}
	for idx, n := range seen {
		if n > 1 {
			t.Errorf("cell %d journaled %d times, want exactly once", idx, n)
		}
	}
}

// TestFabricStealsFromStalledWorker registers a black-hole worker that
// accepts cell batches and heartbeats diligently but never returns a
// result. The real worker must steal its leases and finish the job.
func TestFabricStealsFromStalledWorker(t *testing.T) {
	spec := jobs.JobSpec{
		Name:       "steal",
		Benchmarks: []string{"atax", "bicg"},
		Configs:    []string{"baseline", "sched"},
		Scale:      0.1,
	}
	want := singleDaemonResult(t, spec)

	c, srv := startCoordinator(t, fastOpts(t.TempDir()))

	// Black hole: 202s every batch, runs nothing, heartbeats forever.
	hole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte("{}"))
	}))
	defer hole.Close()
	body, _ := json.Marshal(RegisterRequest{URL: hole.URL, Parallelism: 2})
	resp, err := http.Post(srv.URL+"/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr RegisterResponse
	json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	stopBeats := make(chan struct{})
	defer close(stopBeats)
	go func() {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopBeats:
				return
			case <-tick.C:
				resp, err := http.Post(srv.URL+"/workers/"+rr.ID+"/heartbeat", "application/json", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	tw := startWorker(t, srv.URL)
	defer tw.stop()

	got := submitAndWait(t, srv.URL, spec)
	if !bytes.Equal(got, want) {
		t.Error("result with a stalled worker differs from single-daemon result")
	}
	snap := c.MetricsSnapshot()
	if stolen, _ := snap.CounterAt("fabric/cells_stolen"); stolen < 1 {
		t.Errorf("cells_stolen = %d, want >= 1 (the black hole held leases)", stolen)
	}
}

// TestCoordinatorResume drains a coordinator mid-job and restarts a new
// one on the same journal directory: journaled cells must not re-run,
// and the completed result must be byte-identical.
func TestCoordinatorResume(t *testing.T) {
	spec := testJobSpec()
	want := singleDaemonResult(t, spec)

	dir := t.TempDir()
	c1, err := NewCoordinator(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	c1.Start()
	srv1 := httptest.NewServer(c1.Handler())
	w1 := startWorker(t, srv1.URL)

	cl := &jobs.Client{BaseURL: srv1.URL}
	id, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := cl.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.CellsDone >= 1 && st.CellsDone < st.Cells {
			break
		}
		if st.State == jobs.StateDone {
			t.Skip("job finished before the restart point")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Stop the worker before draining so no in-flight result can land
	// and finalize the job between the progress check and the drain.
	w1.stop()
	if st, _ := cl.Status(id); st.State == jobs.StateDone {
		t.Skip("job finished before the restart point")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	c1.Drain(ctx)
	cancel()
	srv1.Close()

	c2, srv2 := startCoordinator(t, fastOpts(dir))
	st, ok := c2.Job(id)
	if !ok || st.State != jobs.StateCheckpointed {
		t.Fatalf("restarted coordinator sees %s as %v/%s, want checkpointed", id, ok, st.State)
	}
	recoveredAtLeast := st.CellsDone
	w2 := startWorker(t, srv2.URL)
	defer w2.stop()

	cl2 := &jobs.Client{BaseURL: srv2.URL}
	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	fin, err := cl2.Wait(wctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != jobs.StateDone {
		t.Fatalf("resumed job ended %s: %s", fin.State, fin.Error)
	}
	got, err := cl2.RawResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed coordinator result differs from single-daemon result")
	}
	if rec, _ := c2.MetricsSnapshot().CounterAt("fabric/cells_recovered"); rec < int64(recoveredAtLeast) {
		t.Errorf("cells_recovered = %d, want >= %d (journaled before restart)", rec, recoveredAtLeast)
	}
}
