package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"gputlb/internal/jobs"
)

// The content-addressed cache keys a cell by WHAT it computes, not how
// the request spelled it. Two rules make the key sound:
//
//  1. Canonical field serialization. The key is built by writing the
//     cell's identity-bearing fields in a fixed order with explicit
//     labels and quoting into a SHA-256, never by hashing request JSON —
//     so JSON field order, whitespace, and omitted-vs-zero fields cannot
//     produce distinct keys for the same cell. Hash normalized specs:
//     Normalize's defaulting (scale 0 -> 1.0, seed 0 -> 1) is what makes
//     an omitted field and its explicit default collide, as they must.
//
//  2. An explicit serialization tag. The serial engine and the sharded
//     epoch-barrier engine are different legal serializations of the
//     model, and each l2-slice count K > 1 is a further distinct
//     serialization — same workload, (slightly) different cycle counts.
//     The tag folds exactly that and nothing more into the key: every
//     CellParallel >= 2 produces identical results, so the worker count
//     itself is deliberately NOT part of the key.

// SerializationTag names the result-distinguishing serialization of a
// cell: "serial" for the legacy engine, "sharded/l2xK" for the
// epoch-barrier engine with K address slices (K=1 is the monolithic
// barrier). Cells differing only in this tag must never share a cache
// entry.
func SerializationTag(c jobs.CellSpec) string {
	if c.CellParallel < 2 {
		return "serial"
	}
	k := c.L2Slices
	if k < 1 {
		k = 1
	}
	return "sharded/l2x" + strconv.Itoa(k)
}

// CellKey returns the canonical content hash of a cell spec — the cache
// key under which its result is stored. Identical for any two specs that
// provably compute the same result (JSON field order, worker counts) and
// distinct for any identity-bearing difference (workload, params, config,
// tenants, churn schedule, serialization tag). Hash normalized specs;
// see the package rules above.
func CellKey(c jobs.CellSpec) string {
	h := sha256.New()
	// Version prefix: bump when the hashed field set changes, so stale
	// persisted keys from older builds can never alias.
	fmt.Fprintf(h, "gputlb-cell/v2\n")
	fmt.Fprintf(h, "bench=%q\n", c.Bench)
	fmt.Fprintf(h, "config=%q\n", c.Config)
	fmt.Fprintf(h, "tenants=%d\n", len(c.Tenants))
	for _, t := range c.Tenants {
		fmt.Fprintf(h, "tenant=%q\n", t)
	}
	// -1 precision round-trips the float64 exactly.
	fmt.Fprintf(h, "scale=%s\n", strconv.FormatFloat(c.Scale, 'g', -1, 64))
	fmt.Fprintf(h, "seed=%d\n", c.Seed)
	fmt.Fprintf(h, "page_shift=%d\n", c.PageShift)
	fmt.Fprintf(h, "serialization=%q\n", SerializationTag(c))
	fmt.Fprintf(h, "arrivals=%d\n", len(c.Arrivals))
	for _, a := range c.Arrivals {
		fmt.Fprintf(h, "arrival=%q@%d\n", a.Bench, a.At)
	}
	fmt.Fprintf(h, "queue_cap=%d\n", c.QueueCap)
	fmt.Fprintf(h, "objective=%q\n", c.Objective)
	fmt.Fprintf(h, "mech=%q\n", c.Mech)
	fmt.Fprintf(h, "alloc=%q\n", c.Alloc)
	return hex.EncodeToString(h.Sum(nil))
}
