// Package fabric shards the sweep service across machines: a coordinator
// expands submitted job grids into cell batches and dispatches them over
// HTTP to registered worker daemons, each of which is the single-process
// cell runner from internal/jobs behind a /cells endpoint.
//
// The coordinator serves the exact /jobs API of the single-process
// manager — same routes, same status shapes, same byte-identical result
// artifacts — so evaluate -daemon and characterize -daemon point at a
// coordinator without knowing the difference. Underneath, it adds:
//
//   - Work distribution with stealing. Cells of the active job are leased
//     to workers in small batches, throttled by each worker's advertised
//     parallelism. When the pending queue drains and a worker sits idle
//     while another still holds unfinished leases, the idle worker is
//     leased the same cells; cells are pure functions of their spec, so
//     whichever copy lands first wins and the duplicate is dropped.
//   - Failure recovery. Workers heartbeat; a worker that misses its lease
//     timeout is dropped and its unfinished cells return to the pending
//     queue. A dispatch that fails outright requeues immediately. The
//     coordinator journals every completed cell in the same fsync'd JSONL
//     format as the single-process manager (with a worker attribution
//     field), so a restarted coordinator resumes mid-job.
//   - A content-addressed result cache. Every cell's canonical hash
//     (CellKey) keys a bounded LRU of completed results; overlapping
//     grids across jobs — and across users — are served from cache
//     instead of re-simulated. The key includes an explicit serialization
//     tag so serial and sharded/l2-sliced variants never alias.
//   - Batched result return. Workers flush completed cells back to the
//     coordinator through a size + max-wait batcher, so grids of small
//     cells do not pay one HTTP round trip per cell.
package fabric
