package fabric

import "gputlb/internal/jobs"

// The wire protocol between coordinator and workers. Three exchanges:
// a worker registers (and re-registers when the coordinator forgets it),
// the coordinator pushes cell batches to the worker's /cells endpoint,
// and the worker flushes completed cells back to /results in batches.

// RegisterRequest is a worker's join request (POST /workers).
type RegisterRequest struct {
	// URL is the worker's advertised base URL; the coordinator dispatches
	// cell batches to URL + "/cells".
	URL string `json:"url"`
	// Parallelism is how many cells the worker runs concurrently. The
	// coordinator keeps at most 2x this many cells leased to the worker.
	Parallelism int `json:"parallelism"`
}

// RegisterResponse assigns the worker its id (echoed in heartbeats and
// result batches).
type RegisterResponse struct {
	ID string `json:"id"`
}

// WorkerStatus is one registered worker in GET /workers.
type WorkerStatus struct {
	ID          string `json:"id"`
	URL         string `json:"url"`
	Parallelism int    `json:"parallelism"`
	// Leased is how many cells the worker currently holds unfinished.
	Leased int `json:"leased"`
	// CellsDone counts results this worker delivered first (duplicates
	// from stolen leases are not credited).
	CellsDone int64 `json:"cells_done"`
	// LastSeenMS is milliseconds since the worker's last heartbeat or
	// result batch.
	LastSeenMS int64 `json:"last_seen_ms"`
}

// AssignedCell is one cell of a dispatched batch: its owning job, its
// index in that job's cell list, and its spec.
type AssignedCell struct {
	Job   string        `json:"job"`
	Index int           `json:"index"`
	Spec  jobs.CellSpec `json:"spec"`
}

// CellBatch is what the coordinator POSTs to a worker's /cells endpoint.
// The worker acks with 202 and runs the cells on its bounded pool.
type CellBatch struct {
	Cells []AssignedCell `json:"cells"`
}

// CellOutcome is one finished cell in a result batch: either Result or
// Error is set. Attempts counts the worker-local tries.
type CellOutcome struct {
	Job      string           `json:"job"`
	Index    int              `json:"index"`
	Attempts int              `json:"attempts"`
	Result   *jobs.CellResult `json:"result,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// ResultBatch is what a worker POSTs to the coordinator's /results
// endpoint — the size + max-wait flusher's unit of delivery. A 200
// response acks every outcome in the batch; on any other response the
// worker retries the whole batch (the coordinator deduplicates replays
// by (job, index), so at-least-once delivery is safe).
type ResultBatch struct {
	Worker   string        `json:"worker"`
	Outcomes []CellOutcome `json:"outcomes"`
}
