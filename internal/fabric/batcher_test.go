package fabric

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// collectFlusher records flushed batches and optionally fails.
type collectFlusher struct {
	mu      sync.Mutex
	batches [][]int
	err     error
}

func (f *collectFlusher) flush(items []int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.batches = append(f.batches, append([]int(nil), items...))
	return f.err
}

func (f *collectFlusher) snapshot() [][]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([][]int(nil), f.batches...)
}

func TestBatcherSizeFlush(t *testing.T) {
	f := &collectFlusher{}
	b := NewBatcher(3, time.Hour, f.flush) // maxWait effectively off
	var waits []<-chan error
	for i := 0; i < 3; i++ {
		waits = append(waits, b.Add(i))
	}
	for i, w := range waits {
		select {
		case err := <-w:
			if err != nil {
				t.Fatalf("item %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("item %d: size-triggered flush never fired", i)
		}
	}
	got := f.snapshot()
	if len(got) != 1 || len(got[0]) != 3 {
		t.Errorf("batches = %v, want one batch of 3", got)
	}
	b.Close()
}

func TestBatcherMaxWaitFlush(t *testing.T) {
	f := &collectFlusher{}
	b := NewBatcher(1000, 20*time.Millisecond, f.flush)
	w := b.Add(42)
	start := time.Now()
	select {
	case err := <-w:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("max-wait flush never fired")
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("flushed after %v, before the max-wait window", elapsed)
	}
	b.Close()
}

func TestBatcherCloseFlushesRemainder(t *testing.T) {
	f := &collectFlusher{}
	b := NewBatcher(1000, time.Hour, f.flush)
	w := b.Add(1)
	b.Close()
	select {
	case err := <-w:
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("Close returned before delivering the flush outcome")
	}
	if got := f.snapshot(); len(got) != 1 {
		t.Errorf("batches = %v, want the remainder flushed on close", got)
	}
	if err := <-b.Add(2); !errors.Is(err, ErrBatcherClosed) {
		t.Errorf("Add after Close = %v, want ErrBatcherClosed", err)
	}
}

func TestBatcherErrorReachesEveryItem(t *testing.T) {
	boom := errors.New("boom")
	f := &collectFlusher{err: boom}
	b := NewBatcher(2, time.Hour, f.flush)
	w1, w2 := b.Add(1), b.Add(2)
	for i, w := range []<-chan error{w1, w2} {
		select {
		case err := <-w:
			if !errors.Is(err, boom) {
				t.Errorf("item %d: err = %v, want boom", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("item %d: no outcome", i)
		}
	}
	b.Close()
}

// TestBatcherManyConcurrentAdds exercises the lock discipline under the
// race detector: many producers, size- and time-triggered flushes
// interleaving.
func TestBatcherManyConcurrentAdds(t *testing.T) {
	f := &collectFlusher{}
	b := NewBatcher(8, time.Millisecond, f.flush)
	var wg sync.WaitGroup
	const n = 200
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-b.Add(i)
		}(i)
	}
	wg.Wait()
	b.Close()
	total := 0
	for _, batch := range f.snapshot() {
		total += len(batch)
	}
	if total != n {
		t.Errorf("flushed %d items, want %d", total, n)
	}
}
