package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gputlb/internal/jobs"
	"gputlb/internal/stats"
)

// CoordinatorOptions configures a fabric coordinator.
type CoordinatorOptions struct {
	// Dir is the journal directory; created if missing. Journals and
	// result files are format-identical to the single-process manager's,
	// and a restarted coordinator resumes unfinished jobs from them.
	Dir string
	// QueueCapacity bounds how many submitted jobs may wait (zero: 16);
	// further submissions fail with jobs.ErrQueueFull.
	QueueCapacity int
	// BatchSize is the number of cells per dispatch batch (zero: 4).
	// Smaller batches steal and rebalance at finer grain; larger ones
	// amortize dispatch round trips.
	BatchSize int
	// LeaseTimeout is how long a worker may go silent (no heartbeat, no
	// results) before it is dropped and its unfinished cells requeued
	// (zero: 10s).
	LeaseTimeout time.Duration
	// StealAfter is the lease age past which an idle worker is leased a
	// copy of another worker's still-unfinished cell (zero: 2s). First
	// result wins; the loser's replay is dropped by deduplication.
	StealAfter time.Duration
	// TickEvery is the dispatch/expiry scan period (zero: 100ms). Events
	// (submissions, results, joins) additionally kick the scheduler
	// immediately.
	TickEvery time.Duration
	// CacheCapacity bounds the content-addressed result cache in cells
	// (zero: 4096).
	CacheCapacity int
	// Registry, when non-nil, receives coordinator metrics under
	// "fabric" and "result_cache" children; nil creates a private one.
	Registry *stats.Registry
	// HTTPClient overrides http.DefaultClient for worker dispatches.
	HTTPClient *http.Client
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 16
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 10 * time.Second
	}
	if o.StealAfter <= 0 {
		o.StealAfter = 2 * time.Second
	}
	if o.TickEvery <= 0 {
		o.TickEvery = 100 * time.Millisecond
	}
	return o
}

// fabJob is the coordinator's record of one submitted grid. All fields
// are guarded by the coordinator's mutex.
type fabJob struct {
	id        string
	name      string
	spec      *jobs.JobSpec
	state     jobs.State
	completed map[int]jobs.CellResult
	failed    map[int]string
	retries   int
	errMsg    string
}

// workerState is one registered worker. Guarded by the coordinator's
// mutex.
type workerState struct {
	id          string
	url         string
	parallelism int
	lastSeen    time.Time
	leased      map[int]bool // active-job cell indexes leased to this worker
	done        int64
}

// activeRun is the dispatch state of the currently executing job.
type activeRun struct {
	jb      *fabJob
	journal *jobs.Journal
	// pending holds cell indexes awaiting a lease; entries may be stale
	// (already completed via another path) and are skipped at pop time.
	pending []int
	// leases maps a cell index to the workers currently holding it and
	// when each lease was granted.
	leases map[int]map[string]time.Time
}

// fabricMetrics are the coordinator's operational counters.
type fabricMetrics struct {
	jobsSubmitted     atomic.Int64
	jobsResumed       atomic.Int64
	jobsCompleted     atomic.Int64
	jobsFailed        atomic.Int64
	jobsShed          atomic.Int64
	cellsCompleted    atomic.Int64
	cellsRecovered    atomic.Int64
	cellsFailed       atomic.Int64
	cellsFromCache    atomic.Int64
	cellsDispatched   atomic.Int64
	cellsStolen       atomic.Int64
	batchesDispatched atomic.Int64
	dispatchErrors    atomic.Int64
	resultsReceived   atomic.Int64
	resultsDuplicate  atomic.Int64
	resultsLate       atomic.Int64
	workersJoined     atomic.Int64
	workersExpired    atomic.Int64
}

// Coordinator owns the distributed sweep: the job queue and journals,
// the worker registry, the cell scheduler with work-stealing, and the
// content-addressed result cache. It serves the single-process daemon's
// /jobs API unchanged — clients cannot tell a coordinator from a lone
// gputlbd — plus the fabric endpoints workers use.
type Coordinator struct {
	opt   CoordinatorOptions
	reg   *stats.Registry
	met   fabricMetrics
	cache *Cache
	httpc *http.Client

	mu      sync.Mutex
	jobsMap map[string]*fabJob
	order   []string
	queue   []*fabJob
	active  *activeRun
	workers map[string]*workerState
	jseq    int
	wseq    int
	drain   bool

	kick     chan struct{}
	stop     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

// NewCoordinator creates a coordinator over dir, loading any existing
// journals: terminal ones become done/failed records, unfinished ones
// are queued for resume ahead of new submissions. Call Start to begin
// scheduling.
func NewCoordinator(opt CoordinatorOptions) (*Coordinator, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, errors.New("fabric: CoordinatorOptions.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	reg := opt.Registry
	if reg == nil {
		reg = stats.NewRegistry("gputlbd")
	}
	httpc := opt.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	c := &Coordinator{
		opt:      opt,
		reg:      reg,
		cache:    NewCache(opt.CacheCapacity),
		httpc:    httpc,
		jobsMap:  map[string]*fabJob{},
		workers:  map[string]*workerState{},
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	c.cache.Register(reg.Child("result_cache"))
	f := reg.Child("fabric")
	f.CounterFunc("jobs_submitted", c.met.jobsSubmitted.Load)
	f.CounterFunc("jobs_resumed", c.met.jobsResumed.Load)
	f.CounterFunc("jobs_completed", c.met.jobsCompleted.Load)
	f.CounterFunc("jobs_failed", c.met.jobsFailed.Load)
	f.CounterFunc("jobs_shed", c.met.jobsShed.Load)
	f.CounterFunc("cells_completed", c.met.cellsCompleted.Load)
	f.CounterFunc("cells_recovered", c.met.cellsRecovered.Load)
	f.CounterFunc("cells_failed", c.met.cellsFailed.Load)
	f.CounterFunc("cells_from_cache", c.met.cellsFromCache.Load)
	f.CounterFunc("cells_dispatched", c.met.cellsDispatched.Load)
	f.CounterFunc("cells_stolen", c.met.cellsStolen.Load)
	f.CounterFunc("batches_dispatched", c.met.batchesDispatched.Load)
	f.CounterFunc("dispatch_errors", c.met.dispatchErrors.Load)
	f.CounterFunc("results_received", c.met.resultsReceived.Load)
	f.CounterFunc("results_duplicate", c.met.resultsDuplicate.Load)
	f.CounterFunc("results_late", c.met.resultsLate.Load)
	f.CounterFunc("workers_joined", c.met.workersJoined.Load)
	f.CounterFunc("workers_expired", c.met.workersExpired.Load)
	f.GaugeFunc("workers", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	f.GaugeFunc("queue_depth", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.queue))
	})

	states, err := jobs.ScanJournals(opt.Dir)
	if err != nil {
		return nil, err
	}
	for _, st := range states {
		jb := &fabJob{
			id:        st.ID,
			name:      st.Name,
			spec:      st.Spec,
			completed: st.Completed,
			failed:    st.Failed,
		}
		switch {
		case st.Terminal && st.EndFailed == 0:
			jb.state = jobs.StateDone
		case st.Terminal:
			jb.state = jobs.StateFailed
			jb.errMsg = fmt.Sprintf("%d cells failed permanently", st.EndFailed)
		default:
			jb.state = jobs.StateCheckpointed
			c.queue = append(c.queue, jb)
			c.met.jobsResumed.Add(1)
		}
		c.jobsMap[jb.id] = jb
		c.order = append(c.order, jb.id)
		if n := seqOfJob(jb.id); n > c.jseq {
			c.jseq = n
		}
	}
	return c, nil
}

// seqOfJob extracts the sequence number from a "job-NNNN" id (0 if
// foreign).
func seqOfJob(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// Registry returns the stats registry holding the coordinator's metrics.
func (c *Coordinator) Registry() *stats.Registry { return c.reg }

// Cache returns the coordinator's content-addressed result cache.
func (c *Coordinator) Cache() *Cache { return c.cache }

// Start launches the scheduler loop. Call Drain to stop.
func (c *Coordinator) Start() {
	go c.loop()
}

func (c *Coordinator) loop() {
	defer close(c.loopDone)
	t := time.NewTicker(c.opt.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		case <-t.C:
		}
		c.step()
	}
}

func (c *Coordinator) kickLoop() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Submit validates, journals, and enqueues a job, returning its id.
// Exactly the manager's submission contract: jobs.ErrQueueFull past the
// bounded queue, jobs.ErrDraining while shutting down.
func (c *Coordinator) Submit(spec jobs.JobSpec) (string, error) {
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.drain {
		return "", jobs.ErrDraining
	}
	if len(c.queue) >= c.opt.QueueCapacity {
		c.met.jobsShed.Add(1)
		return "", jobs.ErrQueueFull
	}
	id := fmt.Sprintf("job-%04d", c.jseq+1)
	j, err := jobs.CreateJournal(c.opt.Dir, id, spec.Name, &spec)
	if err != nil {
		return "", err
	}
	j.Close()
	c.jseq++
	jb := &fabJob{
		id:        id,
		name:      spec.Name,
		spec:      &spec,
		state:     jobs.StateQueued,
		completed: map[int]jobs.CellResult{},
		failed:    map[int]string{},
	}
	c.jobsMap[id] = jb
	c.order = append(c.order, id)
	c.queue = append(c.queue, jb)
	c.met.jobsSubmitted.Add(1)
	c.kickLoop()
	return id, nil
}

// step is one scheduler pass: expire silent workers, activate the next
// job if none is running, resolve cache hits, plan and fire dispatches,
// and finalize a fully resolved job.
func (c *Coordinator) step() {
	now := time.Now()
	var cacheHits []journalAppend
	c.mu.Lock()
	c.expireWorkersLocked(now)
	cacheHits = c.activateLocked()
	batches := c.planLocked(now)
	c.mu.Unlock()
	c.appendOutcomes(cacheHits)
	for _, b := range batches {
		go c.dispatch(b)
	}
	c.maybeFinalize()
}

// journalAppend is one deferred journal write (performed outside the
// coordinator lock; the journal serializes its own appends).
type journalAppend struct {
	journal  *jobs.Journal
	index    int
	attempts int
	worker   string
	result   *jobs.CellResult
	errMsg   string
	// cacheKey, when non-empty, feeds the result into the cache after a
	// successful append.
	cacheKey string
}

// activateLocked pops the next queued job when none is active, opening
// its journal and resolving every cell already answerable from the
// content-addressed cache. Returns the journal appends for those cache
// hits (written by the caller after unlocking).
func (c *Coordinator) activateLocked() []journalAppend {
	if c.active != nil || len(c.queue) == 0 {
		return nil
	}
	jb := c.queue[0]
	c.queue = c.queue[1:]
	j, err := jobs.OpenJournal(c.opt.Dir, jb.id)
	if err != nil {
		jb.state = jobs.StateFailed
		jb.errMsg = err.Error()
		c.met.jobsFailed.Add(1)
		return nil
	}
	c.met.cellsRecovered.Add(int64(len(jb.completed)))
	// A resumed job's earlier permanent failures get a fresh chance, as
	// under the single-process manager.
	clear(jb.failed)
	jb.state = jobs.StateRunning
	run := &activeRun{jb: jb, journal: j, leases: map[int]map[string]time.Time{}}
	var hits []journalAppend
	for i := range jb.spec.Cells {
		if _, done := jb.completed[i]; done {
			continue
		}
		if res, ok := c.cache.Get(CellKey(jb.spec.Cells[i])); ok {
			jb.completed[i] = res
			c.met.cellsFromCache.Add(1)
			c.met.cellsCompleted.Add(1)
			hits = append(hits, journalAppend{journal: j, index: i, attempts: 1, worker: "cache", result: &res})
			continue
		}
		run.pending = append(run.pending, i)
	}
	c.active = run
	return hits
}

// expireWorkersLocked drops workers silent past the lease timeout and
// returns their unfinished cells to the pending queue.
func (c *Coordinator) expireWorkersLocked(now time.Time) {
	for id, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= c.opt.LeaseTimeout {
			continue
		}
		delete(c.workers, id)
		c.met.workersExpired.Add(1)
		c.releaseLeasesLocked(ws)
	}
}

// releaseLeasesLocked removes every lease ws holds; cells left with no
// other lease and no result go back to pending.
func (c *Coordinator) releaseLeasesLocked(ws *workerState) {
	if c.active == nil {
		return
	}
	for idx := range ws.leased {
		if holders, ok := c.active.leases[idx]; ok {
			delete(holders, ws.id)
			if len(holders) == 0 {
				delete(c.active.leases, idx)
				if !c.cellResolvedLocked(idx) {
					c.active.pending = append(c.active.pending, idx)
				}
			}
		}
	}
	ws.leased = map[int]bool{}
}

func (c *Coordinator) cellResolvedLocked(idx int) bool {
	jb := c.active.jb
	if _, done := jb.completed[idx]; done {
		return true
	}
	_, failed := jb.failed[idx]
	return failed
}

// plannedBatch is one dispatch about to be fired at a worker.
type plannedBatch struct {
	workerID string
	url      string
	cells    []AssignedCell
}

// planLocked assigns pending cells to workers with lease room, then — if
// the pending queue is dry but the job unfinished — steals: idle room is
// given copies of cells whose existing leases have aged past StealAfter.
func (c *Coordinator) planLocked(now time.Time) []plannedBatch {
	if c.active == nil {
		return nil
	}
	jb := c.active.jb
	var batches []plannedBatch
	// Deterministic worker order keeps scheduling reproducible in tests.
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ws := c.workers[id]
		room := 2*ws.parallelism - len(ws.leased)
		for room > 0 {
			n := min(room, c.opt.BatchSize)
			cells := c.takePendingLocked(ws, n, now)
			if len(cells) == 0 {
				break
			}
			batches = append(batches, plannedBatch{workerID: id, url: ws.url, cells: cells})
			room -= len(cells)
		}
	}
	// Work-stealing pass: only once nothing is pending.
	if c.pendingAvailableLocked() {
		return batches
	}
	for _, id := range ids {
		ws := c.workers[id]
		room := 2*ws.parallelism - len(ws.leased)
		if room <= 0 {
			continue
		}
		var cells []AssignedCell
		stealable := make([]int, 0)
		for idx, holders := range c.active.leases {
			if ws.leased[idx] || c.cellResolvedLocked(idx) {
				continue
			}
			youngest := time.Time{}
			for _, at := range holders {
				if at.After(youngest) {
					youngest = at
				}
			}
			if now.Sub(youngest) > c.opt.StealAfter {
				stealable = append(stealable, idx)
			}
		}
		sort.Ints(stealable)
		for _, idx := range stealable {
			if len(cells) >= min(room, c.opt.BatchSize) {
				break
			}
			c.leaseLocked(ws, idx, now)
			c.met.cellsStolen.Add(1)
			cells = append(cells, AssignedCell{Job: jb.id, Index: idx, Spec: jb.spec.Cells[idx]})
		}
		if len(cells) > 0 {
			batches = append(batches, plannedBatch{workerID: id, url: ws.url, cells: cells})
		}
	}
	return batches
}

func (c *Coordinator) pendingAvailableLocked() bool {
	for _, idx := range c.active.pending {
		if !c.cellResolvedLocked(idx) && len(c.active.leases[idx]) == 0 {
			return true
		}
	}
	return false
}

// takePendingLocked pops up to n dispatchable cells off the pending
// queue, leasing each to ws.
func (c *Coordinator) takePendingLocked(ws *workerState, n int, now time.Time) []AssignedCell {
	jb := c.active.jb
	var cells []AssignedCell
	for len(cells) < n && len(c.active.pending) > 0 {
		idx := c.active.pending[0]
		c.active.pending = c.active.pending[1:]
		// Stale entries: resolved elsewhere or already leased again.
		if c.cellResolvedLocked(idx) || len(c.active.leases[idx]) > 0 {
			continue
		}
		c.leaseLocked(ws, idx, now)
		cells = append(cells, AssignedCell{Job: jb.id, Index: idx, Spec: jb.spec.Cells[idx]})
	}
	return cells
}

func (c *Coordinator) leaseLocked(ws *workerState, idx int, now time.Time) {
	holders := c.active.leases[idx]
	if holders == nil {
		holders = map[string]time.Time{}
		c.active.leases[idx] = holders
	}
	holders[ws.id] = now
	ws.leased[idx] = true
}

// dispatch fires one planned batch at its worker. A failed dispatch
// releases the batch's leases so the cells requeue immediately (the
// worker itself is only dropped when its heartbeats stop).
func (c *Coordinator) dispatch(b plannedBatch) {
	body, err := json.Marshal(CellBatch{Cells: b.cells})
	if err == nil {
		var resp *http.Response
		resp, err = c.httpc.Post(coordURL(b.url, "/cells"), "application/json", bytes.NewReader(body))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusAccepted {
				err = fmt.Errorf("fabric: worker %s: HTTP %d", b.workerID, code)
			}
		}
	}
	if err == nil {
		c.met.batchesDispatched.Add(1)
		c.met.cellsDispatched.Add(int64(len(b.cells)))
		return
	}
	c.met.dispatchErrors.Add(1)
	c.mu.Lock()
	if ws, ok := c.workers[b.workerID]; ok && c.active != nil && c.active.jb.id == b.cells[0].Job {
		for _, cell := range b.cells {
			if holders, ok := c.active.leases[cell.Index]; ok {
				delete(holders, b.workerID)
				if len(holders) == 0 {
					delete(c.active.leases, cell.Index)
					if !c.cellResolvedLocked(cell.Index) {
						c.active.pending = append(c.active.pending, cell.Index)
					}
				}
			}
			delete(ws.leased, cell.Index)
		}
	}
	c.mu.Unlock()
	c.kickLoop()
}

// ingestOutcomes applies a worker's result batch: deduplicates replays
// and stolen-copy losers, journals each first-arrival before it is
// acknowledged, and feeds the cache. Returns an error only when the
// journal write fails — the one case the worker must retry.
func (c *Coordinator) ingestOutcomes(batch ResultBatch) error {
	now := time.Now()
	var appends []journalAppend
	c.mu.Lock()
	if ws, ok := c.workers[batch.Worker]; ok {
		ws.lastSeen = now // results are as good as a heartbeat
	}
	for _, o := range batch.Outcomes {
		c.met.resultsReceived.Add(1)
		jb, ok := c.jobsMap[o.Job]
		if !ok {
			c.met.resultsLate.Add(1)
			continue
		}
		// A replay of a cell that already has a durable outcome is a
		// duplicate regardless of whether its job is still active — the
		// stolen-copy loser and the lost-ack resend both land here.
		_, done := jb.completed[o.Index]
		_, failedCell := jb.failed[o.Index]
		if done || failedCell {
			c.met.resultsDuplicate.Add(1)
			continue
		}
		if c.active == nil || c.active.jb != jb {
			c.met.resultsLate.Add(1)
			continue
		}
		jb.retries += o.Attempts - 1
		ja := journalAppend{journal: c.active.journal, index: o.Index, attempts: o.Attempts, worker: batch.Worker}
		if o.Result != nil {
			jb.completed[o.Index] = *o.Result
			c.met.cellsCompleted.Add(1)
			res := *o.Result
			ja.result = &res
			ja.cacheKey = CellKey(jb.spec.Cells[o.Index])
		} else {
			jb.failed[o.Index] = o.Error
			c.met.cellsFailed.Add(1)
			ja.errMsg = o.Error
		}
		if holders, ok := c.active.leases[o.Index]; ok {
			for wid := range holders {
				if ws, ok := c.workers[wid]; ok {
					delete(ws.leased, o.Index)
				}
			}
			delete(c.active.leases, o.Index)
		}
		if ws, ok := c.workers[batch.Worker]; ok && o.Result != nil {
			ws.done++
		}
		appends = append(appends, ja)
	}
	c.mu.Unlock()

	if err := c.appendOutcomes(appends); err != nil {
		return err
	}
	for _, ja := range appends {
		if ja.result != nil && ja.cacheKey != "" {
			c.cache.Put(ja.cacheKey, *ja.result)
		}
	}
	c.maybeFinalize()
	c.kickLoop()
	return nil
}

// appendOutcomes writes deferred journal records; on failure the
// corresponding in-memory marks are reverted so a retry can re-journal.
func (c *Coordinator) appendOutcomes(appends []journalAppend) error {
	for i, ja := range appends {
		var err error
		if ja.result != nil {
			err = ja.journal.AppendCell(ja.index, ja.attempts, ja.worker, *ja.result)
		} else {
			err = ja.journal.AppendFail(ja.index, ja.attempts, ja.worker, ja.errMsg)
		}
		if err != nil {
			c.mu.Lock()
			if c.active != nil && c.active.journal == ja.journal {
				for _, undo := range appends[i:] {
					delete(c.active.jb.completed, undo.index)
					delete(c.active.jb.failed, undo.index)
					c.active.pending = append(c.active.pending, undo.index)
				}
			}
			c.mu.Unlock()
			return err
		}
	}
	return nil
}

// maybeFinalize terminates the active job once every cell has a durable
// outcome: end record, result artifact (when fully successful), state
// transition, and scheduler kick for the next queued job.
func (c *Coordinator) maybeFinalize() {
	c.mu.Lock()
	a := c.active
	if a == nil {
		c.mu.Unlock()
		return
	}
	jb := a.jb
	if len(jb.completed)+len(jb.failed) < len(jb.spec.Cells) {
		c.mu.Unlock()
		return
	}
	c.active = nil
	for _, ws := range c.workers {
		ws.leased = map[int]bool{}
	}
	nfailed := len(jb.failed)
	c.mu.Unlock()

	fail := func(err error) {
		c.mu.Lock()
		jb.state = jobs.StateFailed
		jb.errMsg = err.Error()
		c.mu.Unlock()
		c.met.jobsFailed.Add(1)
	}
	if err := a.journal.AppendEnd(nfailed); err != nil {
		a.journal.Close()
		fail(err)
		return
	}
	a.journal.Close()
	if nfailed > 0 {
		fail(fmt.Errorf("%d cells failed permanently", nfailed))
		return
	}
	if err := c.writeResult(jb); err != nil {
		fail(err)
		return
	}
	c.mu.Lock()
	jb.state = jobs.StateDone
	c.mu.Unlock()
	c.met.jobsCompleted.Add(1)
	c.kickLoop()
}

// writeResult assembles the canonical result artifact — the same encoder
// and layout as the single-process manager, hence byte-identical — and
// writes it atomically next to the journal.
func (c *Coordinator) writeResult(jb *fabJob) error {
	c.mu.Lock()
	res := jobs.Result{Name: jb.name, Spec: *jb.spec, Cells: make([]jobs.CellResult, len(jb.spec.Cells))}
	for i := range jb.spec.Cells {
		res.Cells[i] = jb.completed[i]
	}
	c.mu.Unlock()
	out, err := jobs.EncodeResult(res)
	if err != nil {
		return err
	}
	tmp := jobs.ResultPath(c.opt.Dir, jb.id) + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, jobs.ResultPath(c.opt.Dir, jb.id))
}

// registerWorker admits (or re-admits) a worker, replacing any earlier
// registration advertising the same URL.
func (c *Coordinator) registerWorker(req RegisterRequest) (RegisterResponse, error) {
	if req.URL == "" {
		return RegisterResponse{}, errors.New("fabric: register needs a url")
	}
	par := req.Parallelism
	if par <= 0 {
		par = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, ws := range c.workers {
		if ws.url == req.URL {
			c.releaseLeasesLocked(ws)
			delete(c.workers, id)
		}
	}
	c.wseq++
	id := fmt.Sprintf("w-%04d", c.wseq)
	c.workers[id] = &workerState{
		id:          id,
		url:         req.URL,
		parallelism: par,
		lastSeen:    time.Now(),
		leased:      map[int]bool{},
	}
	c.met.workersJoined.Add(1)
	c.kickLoop()
	return RegisterResponse{ID: id}, nil
}

// heartbeat refreshes a worker's liveness; false if the worker is
// unknown (it must re-register).
func (c *Coordinator) heartbeat(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.workers[id]
	if !ok {
		return false
	}
	ws.lastSeen = time.Now()
	return true
}

// Workers lists the registered workers, sorted by id.
func (c *Coordinator) Workers() []WorkerStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, WorkerStatus{
			ID:          ws.id,
			URL:         ws.url,
			Parallelism: ws.parallelism,
			Leased:      len(ws.leased),
			CellsDone:   ws.done,
			LastSeenMS:  now.Sub(ws.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Job returns the status of one job.
func (c *Coordinator) Job(id string) (jobs.Status, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	jb, ok := c.jobsMap[id]
	if !ok {
		return jobs.Status{}, false
	}
	return c.statusLocked(jb), true
}

// Jobs returns every known job's status, oldest first.
func (c *Coordinator) Jobs() []jobs.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := append([]string(nil), c.order...)
	sort.Strings(ids)
	out := make([]jobs.Status, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.statusLocked(c.jobsMap[id]))
	}
	return out
}

func (c *Coordinator) statusLocked(jb *fabJob) jobs.Status {
	return jobs.Status{
		ID:          jb.id,
		Name:        jb.name,
		State:       jb.state,
		Cells:       len(jb.spec.Cells),
		CellsDone:   len(jb.completed),
		CellsFailed: len(jb.failed),
		Retries:     jb.retries,
		Error:       jb.errMsg,
	}
}

// Result returns the canonical result bytes of a done job — exactly the
// journaled artifact, byte-identical to a single-daemon run of the same
// spec. jobs.ErrNotDone if the job has not completed successfully.
func (c *Coordinator) Result(id string) ([]byte, error) {
	c.mu.Lock()
	jb, ok := c.jobsMap[id]
	var state jobs.State
	if ok {
		state = jb.state
	}
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: unknown job %q", id)
	}
	if state != jobs.StateDone {
		return nil, fmt.Errorf("%w: %s is %s", jobs.ErrNotDone, id, state)
	}
	return os.ReadFile(jobs.ResultPath(c.opt.Dir, id))
}

// MetricsSnapshot materializes the current metrics tree.
func (c *Coordinator) MetricsSnapshot() *stats.Snapshot { return c.reg.Snapshot() }

// Drain stops the coordinator gracefully: no new submissions, the
// scheduler halts, and the active job (if any) is left checkpointed —
// every acknowledged cell is already durable in its journal, so a
// coordinator restarted on the same directory resumes with only the
// unacked cells re-dispatched. Waits for the scheduler up to ctx's
// deadline.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.drain = true
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	select {
	case <-c.loopDone:
	case <-ctx.Done():
		return context.Cause(ctx)
	}
	c.mu.Lock()
	if c.active != nil {
		c.active.jb.state = jobs.StateCheckpointed
		c.active.journal.Close()
		c.active = nil
	}
	c.mu.Unlock()
	return nil
}
