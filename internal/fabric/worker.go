package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gputlb/internal/jobs"
	"gputlb/internal/stats"
)

// WorkerOptions configures a fabric worker daemon.
type WorkerOptions struct {
	// CoordinatorURL is the coordinator to join (the -join flag).
	CoordinatorURL string
	// AdvertiseURL is this worker's own base URL as the coordinator
	// reaches it; cell batches arrive at AdvertiseURL + "/cells".
	AdvertiseURL string
	// Parallelism bounds concurrently running cells (zero: GOMAXPROCS).
	Parallelism int
	// MaxAttempts bounds worker-local tries per cell (zero: 3);
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (zero: 100ms).
	MaxAttempts  int
	RetryBackoff time.Duration
	// FlushSize and FlushWait tune the result batcher: a flush fires at
	// FlushSize outcomes (zero: 32) or FlushWait after the oldest
	// buffered outcome (zero: 50ms), whichever comes first.
	FlushSize int
	FlushWait time.Duration
	// HeartbeatEvery is the heartbeat period (zero: 1s). Must be well
	// under the coordinator's lease timeout.
	HeartbeatEvery time.Duration
	// Registry, when non-nil, receives the worker's metrics under a
	// "worker" child; nil creates a private registry.
	Registry *stats.Registry
	// HTTPClient overrides http.DefaultClient for coordinator calls.
	HTTPClient *http.Client
	// InjectCellError, when non-nil, is consulted before each cell
	// attempt; a non-nil error fails the attempt. Fault-injection hook
	// for resilience tests — never set in normal operation.
	InjectCellError func(cell jobs.CellSpec, attempt int) error
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.FlushSize <= 0 {
		o.FlushSize = 32
	}
	if o.FlushWait <= 0 {
		o.FlushWait = 50 * time.Millisecond
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
	return o
}

// workerMetrics are the worker's operational counters.
type workerMetrics struct {
	cellsReceived atomic.Int64
	cellsRun      atomic.Int64
	cellsFailed   atomic.Int64
	cellsRetried  atomic.Int64
	flushes       atomic.Int64
	flushRetries  atomic.Int64
	registrations atomic.Int64
}

// Worker runs cells dispatched by a coordinator: it registers itself,
// heartbeats, accepts POST /cells batches onto a bounded local pool, and
// flushes completed cells back through the size + max-wait batcher. The
// cell execution path is jobs.RunCell — exactly the single-process
// daemon's runner — so a distributed sweep computes cell-for-cell what a
// single box would.
type Worker struct {
	opt WorkerOptions
	reg *stats.Registry
	met workerMetrics

	ctx    context.Context
	cancel context.CancelFunc

	mu sync.Mutex
	id string // current registration; "" before the first register

	runCh   chan AssignedCell
	batcher *Batcher[CellOutcome]
	wg      sync.WaitGroup
}

// NewWorker creates a worker; Start registers it and begins serving.
func NewWorker(opt WorkerOptions) *Worker {
	opt = opt.withDefaults()
	reg := opt.Registry
	if reg == nil {
		reg = stats.NewRegistry("gputlbd")
	}
	w := &Worker{
		opt:   opt,
		reg:   reg,
		runCh: make(chan AssignedCell, 4096),
	}
	w.ctx, w.cancel = context.WithCancel(context.Background())
	w.batcher = NewBatcher(opt.FlushSize, opt.FlushWait, w.flushOutcomes)
	wr := reg.Child("worker")
	wr.CounterFunc("cells_received", w.met.cellsReceived.Load)
	wr.CounterFunc("cells_run", w.met.cellsRun.Load)
	wr.CounterFunc("cells_failed", w.met.cellsFailed.Load)
	wr.CounterFunc("cells_retried", w.met.cellsRetried.Load)
	wr.CounterFunc("result_flushes", w.met.flushes.Load)
	wr.CounterFunc("flush_retries", w.met.flushRetries.Load)
	wr.CounterFunc("registrations", w.met.registrations.Load)
	wr.GaugeFunc("queue_depth", func() float64 { return float64(len(w.runCh)) })
	return w
}

// Registry returns the stats registry holding the worker's metrics.
func (w *Worker) Registry() *stats.Registry { return w.reg }

func (w *Worker) httpClient() *http.Client {
	if w.opt.HTTPClient != nil {
		return w.opt.HTTPClient
	}
	return http.DefaultClient
}

func coordURL(base, path string) string {
	return strings.TrimSuffix(base, "/") + path
}

// Start registers with the coordinator and launches the runner pool and
// the heartbeat loop. It fails only if the initial registration cannot
// be completed (the coordinator must be reachable at join time; later
// outages are ridden out by heartbeat-triggered re-registration).
func (w *Worker) Start() error {
	if err := w.register(); err != nil {
		return fmt.Errorf("fabric: joining %s: %w", w.opt.CoordinatorURL, err)
	}
	for i := 0; i < w.opt.Parallelism; i++ {
		w.wg.Add(1)
		go w.runner()
	}
	w.wg.Add(1)
	go w.heartbeatLoop()
	return nil
}

// Close stops accepting work, flushes buffered results, and waits for
// in-flight cells to finish.
func (w *Worker) Close() {
	w.cancel()
	w.wg.Wait()
	w.batcher.Close()
}

// ID returns the worker's current coordinator-assigned id.
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// register joins (or re-joins) the coordinator, storing the assigned id.
func (w *Worker) register() error {
	body, err := json.Marshal(RegisterRequest{URL: w.opt.AdvertiseURL, Parallelism: w.opt.Parallelism})
	if err != nil {
		return err
	}
	resp, err := w.httpClient().Post(coordURL(w.opt.CoordinatorURL, "/workers"), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("register: HTTP %d", resp.StatusCode)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return err
	}
	w.mu.Lock()
	w.id = rr.ID
	w.mu.Unlock()
	w.met.registrations.Add(1)
	return nil
}

// heartbeatLoop announces liveness; a 404 (coordinator restarted or
// expired us) triggers re-registration, after which dispatches resume.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opt.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
		}
		resp, err := w.httpClient().Post(coordURL(w.opt.CoordinatorURL, "/workers/"+w.ID()+"/heartbeat"), "application/json", nil)
		if err != nil {
			continue // transient; the next beat retries
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusNotFound {
			// The coordinator no longer knows us; rejoin under a new id.
			_ = w.register()
		}
	}
}

// runner executes cells from the local queue, applying worker-local
// retries, and hands outcomes to the batcher.
func (w *Worker) runner() {
	defer w.wg.Done()
	for {
		select {
		case <-w.ctx.Done():
			return
		case cell := <-w.runCh:
			out := w.runCell(cell)
			w.met.cellsRun.Add(1)
			if out.Error != "" {
				w.met.cellsFailed.Add(1)
			}
			w.batcher.Add(out)
		}
	}
}

// runCell tries one cell up to MaxAttempts times with exponential
// backoff. Cells are pure functions of their spec, so a retry after a
// transient failure (or a replay after a lost ack) recomputes the
// identical result.
func (w *Worker) runCell(cell AssignedCell) CellOutcome {
	backoff := w.opt.RetryBackoff
	for attempt := 1; ; attempt++ {
		res, err := w.runOnce(cell.Spec, attempt)
		if err == nil {
			return CellOutcome{Job: cell.Job, Index: cell.Index, Attempts: attempt, Result: &res}
		}
		if attempt >= w.opt.MaxAttempts || w.ctx.Err() != nil {
			return CellOutcome{Job: cell.Job, Index: cell.Index, Attempts: attempt, Error: err.Error()}
		}
		w.met.cellsRetried.Add(1)
		select {
		case <-time.After(backoff):
		case <-w.ctx.Done():
			return CellOutcome{Job: cell.Job, Index: cell.Index, Attempts: attempt, Error: err.Error()}
		}
		backoff *= 2
	}
}

func (w *Worker) runOnce(spec jobs.CellSpec, attempt int) (jobs.CellResult, error) {
	if hook := w.opt.InjectCellError; hook != nil {
		if err := hook(spec, attempt); err != nil {
			return jobs.CellResult{}, err
		}
	}
	return jobs.RunCell(spec)
}

// flushOutcomes delivers one result batch to the coordinator, retrying
// with doubling backoff until acked or the worker closes. At-least-once:
// a batch whose ack is lost is resent and deduplicated coordinator-side.
func (w *Worker) flushOutcomes(outcomes []CellOutcome) error {
	backoff := w.opt.RetryBackoff
	for {
		err := w.postResults(outcomes)
		if err == nil {
			w.met.flushes.Add(1)
			return nil
		}
		if w.ctx.Err() != nil {
			return err
		}
		w.met.flushRetries.Add(1)
		select {
		case <-time.After(backoff):
		case <-w.ctx.Done():
			return err
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

func (w *Worker) postResults(outcomes []CellOutcome) error {
	body, err := json.Marshal(ResultBatch{Worker: w.ID(), Outcomes: outcomes})
	if err != nil {
		return err
	}
	resp, err := w.httpClient().Post(coordURL(w.opt.CoordinatorURL, "/results"), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("results: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Handler returns the worker's HTTP API:
//
//	POST /cells    accept a CellBatch for execution; 202 on enqueue,
//	               429 when the local queue is full
//	GET  /healthz  liveness probe
//	GET  /metrics  worker metrics: flat "path value" text, or the full
//	               stats snapshot JSON with ?format=json
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cells", w.handleCells)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		writeMetrics(rw, r, w.reg.Snapshot())
	})
	return mux
}

func (w *Worker) handleCells(rw http.ResponseWriter, r *http.Request) {
	var batch CellBatch
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		writeError(rw, http.StatusBadRequest, fmt.Errorf("decoding cell batch: %w", err))
		return
	}
	if len(batch.Cells) > cap(w.runCh)-len(w.runCh) {
		writeError(rw, http.StatusTooManyRequests, fmt.Errorf("fabric: worker queue full (%d cells buffered)", len(w.runCh)))
		return
	}
	for _, cell := range batch.Cells {
		w.met.cellsReceived.Add(1)
		w.runCh <- cell
	}
	writeJSON(rw, http.StatusAccepted, map[string]int{"accepted": len(batch.Cells)})
}
