package fabric

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gputlb/internal/jobs"
)

// TestCellKeyFieldOrderInvariance is the canonicalization property: a
// cell spec arriving as JSON hashes identically no matter how the
// request ordered its fields. The key is computed from the decoded
// struct in a fixed field order, so this must hold by construction —
// the test guards against someone "simplifying" CellKey into a hash of
// marshaled JSON.
func TestCellKeyFieldOrderInvariance(t *testing.T) {
	fields := []string{
		`"bench":"atax"`,
		`"config":"baseline"`,
		`"scale":0.25`,
		`"seed":7`,
		`"page_shift":12`,
		`"cell_parallel":4`,
		`"l2_slices":2`,
	}
	rng := rand.New(rand.NewSource(1))
	var want string
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(fields))
		parts := make([]string, len(fields))
		for i, p := range perm {
			parts[i] = fields[p]
		}
		doc := "{" + strings.Join(parts, ",") + "}"
		var c jobs.CellSpec
		if err := json.Unmarshal([]byte(doc), &c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		key := CellKey(c)
		if trial == 0 {
			want = key
			continue
		}
		if key != want {
			t.Fatalf("trial %d: field order changed the key:\n%s\nvs %s\ndoc: %s", trial, key, want, doc)
		}
	}
}

// TestCellKeyTenantsAndArrivalsOrderInvariance extends the field-order
// property to multi-tenant churn cells, whose specs carry nested
// structures.
func TestCellKeyTenantsAndArrivalsOrderInvariance(t *testing.T) {
	a := `{"bench":"bfs+atax","config":"multi-shared-spatial","tenants":["bfs","atax"],"scale":0.2,"seed":1,"arrivals":[{"bench":"mvt","at":1000}],"queue_cap":2,"objective":"ws"}`
	b := `{"objective":"ws","queue_cap":2,"arrivals":[{"at":1000,"bench":"mvt"}],"seed":1,"scale":0.2,"tenants":["bfs","atax"],"config":"multi-shared-spatial","bench":"bfs+atax"}`
	var ca, cb jobs.CellSpec
	if err := json.Unmarshal([]byte(a), &ca); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &cb); err != nil {
		t.Fatal(err)
	}
	if CellKey(ca) != CellKey(cb) {
		t.Error("reordered multi-tenant JSON produced a different key")
	}
}

// TestCellKeySerializationTags pins the tag rules: every CellParallel >= 2
// is the same sharded serialization (worker count does not change
// results), l2_slices 0 and 1 are both the monolithic barrier, and the
// serial engine and every distinct slice count are all mutually distinct.
func TestCellKeySerializationTags(t *testing.T) {
	base := jobs.CellSpec{Bench: "atax", Config: "baseline", Scale: 1, Seed: 1}

	at := func(cp, l2 int) string {
		c := base
		c.CellParallel = cp
		c.L2Slices = l2
		return CellKey(c)
	}

	// Worker count is not identity within the sharded engine.
	if at(2, 4) != at(8, 4) {
		t.Error("cell_parallel 2 vs 8 should share a key (bit-identical serializations)")
	}
	if at(0, 0) != at(1, 0) {
		t.Error("cell_parallel 0 vs 1 are both the serial engine and should share a key")
	}
	// l2_slices 0 and 1 are both the monolithic sharded barrier.
	if at(4, 0) != at(4, 1) {
		t.Error("l2_slices 0 vs 1 should share a key under the sharded engine")
	}
	// Serial vs sharded vs each slice count: distinct serializations,
	// distinct keys.
	distinct := map[string]string{
		"serial":     at(0, 0),
		"sharded-l1": at(4, 1),
		"sharded-l2": at(4, 2),
		"sharded-l4": at(4, 4),
	}
	seen := map[string]string{}
	for name, key := range distinct {
		if prev, ok := seen[key]; ok {
			t.Errorf("%s and %s alias to the same key", name, prev)
		}
		seen[key] = name
	}

	if got, want := SerializationTag(base), "serial"; got != want {
		t.Errorf("tag = %q, want %q", got, want)
	}
	sharded := base
	sharded.CellParallel = 4
	sharded.L2Slices = 4
	if got, want := SerializationTag(sharded), "sharded/l2x4"; got != want {
		t.Errorf("tag = %q, want %q", got, want)
	}
}

// TestCellKeyIdentityFields flips each identity-bearing field in turn
// and requires the key to change — the "never alias" half of the cache
// contract.
func TestCellKeyIdentityFields(t *testing.T) {
	base := jobs.CellSpec{Bench: "atax", Config: "baseline", Scale: 1, Seed: 1}
	baseKey := CellKey(base)
	mutations := map[string]func(*jobs.CellSpec){
		"bench":      func(c *jobs.CellSpec) { c.Bench = "bfs" },
		"config":     func(c *jobs.CellSpec) { c.Config = "sched" },
		"scale":      func(c *jobs.CellSpec) { c.Scale = 0.5 },
		"seed":       func(c *jobs.CellSpec) { c.Seed = 2 },
		"page_shift": func(c *jobs.CellSpec) { c.PageShift = 21 },
		"tenants":    func(c *jobs.CellSpec) { c.Tenants = []string{"bfs", "atax"} },
		"arrivals":   func(c *jobs.CellSpec) { c.Arrivals = []jobs.ArrivalSpec{{Bench: "mvt", At: 100}} },
		"queue_cap":  func(c *jobs.CellSpec) { c.QueueCap = 3 },
		"objective":  func(c *jobs.CellSpec) { c.Objective = "fairness" },
		"mech":       func(c *jobs.CellSpec) { c.Mech = "subentry" },
		"alloc":      func(c *jobs.CellSpec) { c.Alloc = "contig" },
	}
	for name, mutate := range mutations {
		c := base
		mutate(&c)
		if CellKey(c) == baseKey {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
	// Tenant order is identity: tenant i receives ASID i.
	x := base
	x.Tenants = []string{"bfs", "atax"}
	y := base
	y.Tenants = []string{"atax", "bfs"}
	if CellKey(x) == CellKey(y) {
		t.Error("tenant order should be part of the key (ASID assignment)")
	}
}

// TestCellKeyNoFieldJoinAliasing guards the classic concatenation bug:
// field values must be delimited so ("ab","c") never hashes like
// ("a","bc").
func TestCellKeyNoFieldJoinAliasing(t *testing.T) {
	a := jobs.CellSpec{Bench: "ab", Config: "c", Scale: 1, Seed: 1}
	b := jobs.CellSpec{Bench: "a", Config: "bc", Scale: 1, Seed: 1}
	if CellKey(a) == CellKey(b) {
		t.Error("adjacent fields alias under concatenation")
	}
	x := jobs.CellSpec{Bench: "t", Config: "m", Scale: 1, Seed: 1, Tenants: []string{"ab", "c"}}
	y := jobs.CellSpec{Bench: "t", Config: "m", Scale: 1, Seed: 1, Tenants: []string{"a", "bc"}}
	if CellKey(x) == CellKey(y) {
		t.Error("tenant lists alias under concatenation")
	}
}

// TestCellKeyNormalizedDefaultsCollide: a spec that omits scale/seed and
// one that spells out the defaults are the same cell after Normalize,
// and must share a key — which is why the coordinator hashes only
// normalized specs.
func TestCellKeyNormalizedDefaultsCollide(t *testing.T) {
	implicit := jobs.JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}}
	explicit := jobs.JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}, Scale: 1.0, Seed: 1}
	if err := implicit.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := explicit.Normalize(); err != nil {
		t.Fatal(err)
	}
	if CellKey(implicit.Cells[0]) != CellKey(explicit.Cells[0]) {
		t.Error("normalized default and explicit default diverge")
	}
}

func ExampleSerializationTag() {
	serial := jobs.CellSpec{Bench: "atax", Config: "baseline"}
	sliced := jobs.CellSpec{Bench: "atax", Config: "baseline", CellParallel: 8, L2Slices: 4}
	fmt.Println(SerializationTag(serial))
	fmt.Println(SerializationTag(sliced))
	// Output:
	// serial
	// sharded/l2x4
}
