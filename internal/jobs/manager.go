package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gputlb/internal/parallel"
	"gputlb/internal/stats"
	"gputlb/internal/workloads"
)

// State is a job's position in its lifecycle.
type State string

// Job lifecycle states. A checkpointed job has a journal with some but
// not all cells — the at-rest state after a drain or kill — and becomes
// running again when a manager resumes it.
const (
	StateQueued       State = "queued"
	StateRunning      State = "running"
	StateCheckpointed State = "checkpointed"
	StateDone         State = "done"
	StateFailed       State = "failed"
)

// Status is a job's externally visible progress snapshot.
type Status struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	State       State  `json:"state"`
	Cells       int    `json:"cells"`
	CellsDone   int    `json:"cells_done"`
	CellsFailed int    `json:"cells_failed,omitempty"`
	Retries     int    `json:"retries,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Errors the submission path returns; the HTTP layer maps them to 429
// and 503 respectively.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrDraining  = errors.New("jobs: manager draining")
)

// ErrNotDone reports a result request for a job that has not completed.
var ErrNotDone = errors.New("jobs: job not done")

// Options configures a Manager.
type Options struct {
	// Dir is the journal directory; created if missing. Every job's
	// journal and result file live here, and a new manager opened on the
	// same directory resumes its unfinished jobs.
	Dir string
	// QueueCapacity bounds how many submitted jobs may wait; further
	// submissions fail with ErrQueueFull. Zero means 16.
	QueueCapacity int
	// Parallelism bounds concurrent cells within a job (zero means
	// GOMAXPROCS, as in the parallel package).
	Parallelism int
	// MaxAttempts bounds how often a failing cell is tried. Zero means 3.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt. Zero means 100ms.
	RetryBackoff time.Duration
	// CellTimeout, when positive, fails a cell attempt that runs longer.
	// The attempt's goroutine cannot be interrupted mid-simulation; it
	// finishes in the background and its result is discarded.
	CellTimeout time.Duration
	// Registry, when non-nil, receives the manager's metrics under a
	// "jobs" child node; nil creates a private registry. Either way
	// MetricsSnapshot serves the tree.
	Registry *stats.Registry
	// InjectCellError, when non-nil, is consulted before each cell
	// attempt; a non-nil error fails the attempt. A fault-injection hook
	// for resilience tests and drills — never set in normal operation.
	InjectCellError func(cell CellSpec, attempt int) error
}

func (o Options) withDefaults() Options {
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 16
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	return o
}

// metricsSet is the manager's operational counters. Plain atomics so
// worker goroutines update them freely; the stats registry reads them
// lazily at snapshot time.
type metricsSet struct {
	jobsSubmitted  atomic.Int64
	jobsResumed    atomic.Int64
	jobsCompleted  atomic.Int64
	jobsFailed     atomic.Int64
	jobsShed       atomic.Int64
	cellsCompleted atomic.Int64
	cellsRecovered atomic.Int64
	cellsRetried   atomic.Int64
	cellsFailed    atomic.Int64
}

func (ms *metricsSet) register(r *stats.Registry, queueDepth func() int64) {
	j := r.Child("jobs")
	j.CounterFunc("jobs_submitted", ms.jobsSubmitted.Load)
	j.CounterFunc("jobs_resumed", ms.jobsResumed.Load)
	j.CounterFunc("jobs_completed", ms.jobsCompleted.Load)
	j.CounterFunc("jobs_failed", ms.jobsFailed.Load)
	j.CounterFunc("jobs_shed", ms.jobsShed.Load)
	j.CounterFunc("cells_completed", ms.cellsCompleted.Load)
	j.CounterFunc("cells_recovered", ms.cellsRecovered.Load)
	j.CounterFunc("cells_retried", ms.cellsRetried.Load)
	j.CounterFunc("cells_failed", ms.cellsFailed.Load)
	j.CounterFunc("queue_depth", queueDepth)
}

// job is the manager's internal record of one submitted grid.
type job struct {
	mu        sync.Mutex
	id        string
	name      string
	spec      *JobSpec
	state     State
	completed map[int]CellResult
	failed    map[int]string
	retries   int
	err       string
}

func (jb *job) status() Status {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return Status{
		ID:          jb.id,
		Name:        jb.name,
		State:       jb.state,
		Cells:       len(jb.spec.Cells),
		CellsDone:   len(jb.completed),
		CellsFailed: len(jb.failed),
		Retries:     jb.retries,
		Error:       jb.err,
	}
}

func (jb *job) setState(s State) {
	jb.mu.Lock()
	jb.state = s
	jb.mu.Unlock()
}

// Manager owns the job queue, the journal directory, and the worker that
// drains them. Jobs run one at a time (cells within a job run on the
// bounded pool); completed cells are journaled immediately, so stopping
// the manager at any point loses at most the in-flight cells.
type Manager struct {
	opt     Options
	reg     *stats.Registry
	met     metricsSet
	queue   chan *job
	resumed []*job

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	seq      int
	draining bool

	cancelCells context.CancelFunc
	cellsCtx    context.Context
	workerDone  chan struct{}

	// sleep is time-based backoff, replaceable by tests.
	sleep func(ctx context.Context, d time.Duration) error
	// onCellDone, when non-nil, runs after a cell's journal append (test
	// hook for deterministic mid-job interruption).
	onCellDone func(jobID string, index int)
}

// New creates a manager over dir, loading any existing journals:
// terminal ones become done/failed job records, unfinished ones are
// queued for resume ahead of new submissions. Call Start to begin work.
func New(opt Options) (*Manager, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, errors.New("jobs: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	reg := opt.Registry
	if reg == nil {
		reg = stats.NewRegistry("gputlbd")
	}
	m := &Manager{
		opt:        opt,
		reg:        reg,
		queue:      make(chan *job, opt.QueueCapacity),
		jobs:       map[string]*job{},
		workerDone: make(chan struct{}),
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		},
	}
	m.cellsCtx, m.cancelCells = context.WithCancel(context.Background())
	m.met.register(reg, func() int64 { return int64(len(m.queue)) })
	workloads.RegisterCacheStats(reg.Child("trace_cache"))

	states, err := ScanJournals(opt.Dir)
	if err != nil {
		return nil, err
	}
	for _, st := range states {
		jb := &job{
			id:        st.ID,
			name:      st.Name,
			spec:      st.Spec,
			completed: st.Completed,
			failed:    st.Failed,
		}
		switch {
		case st.Terminal && st.EndFailed == 0:
			jb.state = StateDone
		case st.Terminal:
			jb.state = StateFailed
			jb.err = fmt.Sprintf("%d cells failed permanently", st.EndFailed)
		default:
			jb.state = StateCheckpointed
			m.resumed = append(m.resumed, jb)
			m.met.jobsResumed.Add(1)
		}
		m.jobs[jb.id] = jb
		m.order = append(m.order, jb.id)
		if n := seqOf(jb.id); n > m.seq {
			m.seq = n
		}
	}
	return m, nil
}

// seqOf extracts the sequence number from a "job-NNNN" id (0 if foreign).
func seqOf(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil {
		return 0
	}
	return n
}

// Registry returns the stats registry holding the manager's metrics.
func (m *Manager) Registry() *stats.Registry { return m.reg }

// MetricsSnapshot materializes the current metrics tree.
func (m *Manager) MetricsSnapshot() *stats.Snapshot { return m.reg.Snapshot() }

// Start launches the worker goroutine. Resumed jobs run before queued
// submissions. Call Drain to stop.
func (m *Manager) Start() {
	go func() {
		defer close(m.workerDone)
		for _, jb := range m.resumed {
			if m.cellsCtx.Err() != nil {
				return
			}
			m.runJob(jb)
		}
		for {
			select {
			case jb := <-m.queue:
				if m.cellsCtx.Err() != nil {
					return
				}
				m.runJob(jb)
			case <-m.cellsCtx.Done():
				return
			}
		}
	}()
}

// Submit validates, journals, and enqueues a job, returning its id. A
// full queue returns ErrQueueFull without journaling anything; a
// draining manager returns ErrDraining.
func (m *Manager) Submit(spec JobSpec) (string, error) {
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return "", ErrDraining
	}
	// Only submitters send on the queue, and every submitter holds m.mu,
	// so the capacity check makes the send below non-blocking.
	if len(m.queue) >= cap(m.queue) {
		m.met.jobsShed.Add(1)
		return "", ErrQueueFull
	}
	id := fmt.Sprintf("job-%04d", m.seq+1)
	j, err := CreateJournal(m.opt.Dir, id, spec.Name, &spec)
	if err != nil {
		return "", err
	}
	j.Close()
	m.seq++
	jb := &job{
		id:        id,
		name:      spec.Name,
		spec:      &spec,
		state:     StateQueued,
		completed: map[int]CellResult{},
		failed:    map[int]string{},
	}
	m.jobs[id] = jb
	m.order = append(m.order, id)
	m.queue <- jb
	m.met.jobsSubmitted.Add(1)
	return id, nil
}

// runJob executes every not-yet-journaled cell of jb, appending each
// outcome to the journal as it lands. If the manager is cancelled
// mid-job the job is left checkpointed; otherwise it terminates done or
// failed and, when fully successful, its result file is written.
func (m *Manager) runJob(jb *job) {
	// The header record was written at submit (or by the run this journal
	// is resuming); reopen for appends.
	j, err := OpenJournal(m.opt.Dir, jb.id)
	if err != nil {
		jb.mu.Lock()
		jb.state = StateFailed
		jb.err = err.Error()
		jb.mu.Unlock()
		m.met.jobsFailed.Add(1)
		return
	}
	defer j.Close()

	jb.setState(StateRunning)
	m.met.cellsRecovered.Add(int64(len(jb.completed)))

	var pending []int
	jb.mu.Lock()
	for i := range jb.spec.Cells {
		if _, ok := jb.completed[i]; !ok {
			pending = append(pending, i)
		}
	}
	// A resumed job's earlier permanent failures get a fresh chance.
	clear(jb.failed)
	jb.mu.Unlock()

	_, runErr := parallel.Map(m.cellsCtx, parallel.Options{Workers: m.opt.Parallelism}, len(pending),
		func(ctx context.Context, pi int) (struct{}, error) {
			idx := pending[pi]
			cell := jb.spec.Cells[idx]
			res, attempts, cerr := m.runCellWithRetry(ctx, cell)
			jb.mu.Lock()
			jb.retries += attempts - 1
			jb.mu.Unlock()
			if cerr != nil {
				if ctx.Err() != nil {
					// Cancelled, not failed: leave no durable record so a
					// resume re-runs the cell.
					return struct{}{}, cerr
				}
				m.met.cellsFailed.Add(1)
				jb.mu.Lock()
				jb.failed[idx] = cerr.Error()
				jb.mu.Unlock()
				if jerr := j.AppendFail(idx, attempts, "", cerr.Error()); jerr != nil {
					return struct{}{}, jerr
				}
				return struct{}{}, nil
			}
			if jerr := j.AppendCell(idx, attempts, "", res); jerr != nil {
				return struct{}{}, jerr
			}
			jb.mu.Lock()
			jb.completed[idx] = res
			jb.mu.Unlock()
			m.met.cellsCompleted.Add(1)
			if m.onCellDone != nil {
				m.onCellDone(jb.id, idx)
			}
			return struct{}{}, nil
		})

	if m.cellsCtx.Err() != nil {
		// Drained or killed mid-job: everything journaled so far is safe;
		// the rest re-runs on resume.
		jb.setState(StateCheckpointed)
		return
	}
	if runErr != nil {
		// Journal append failures are the only cell errors propagated out
		// of the pool; without a durable journal the job cannot terminate.
		jb.mu.Lock()
		jb.state = StateFailed
		jb.err = runErr.Error()
		jb.mu.Unlock()
		m.met.jobsFailed.Add(1)
		return
	}

	jb.mu.Lock()
	nfailed := len(jb.failed)
	jb.mu.Unlock()
	if err := j.AppendEnd(nfailed); err != nil {
		jb.mu.Lock()
		jb.state = StateFailed
		jb.err = err.Error()
		jb.mu.Unlock()
		m.met.jobsFailed.Add(1)
		return
	}
	if nfailed > 0 {
		jb.mu.Lock()
		jb.state = StateFailed
		jb.err = fmt.Sprintf("%d cells failed permanently", nfailed)
		jb.mu.Unlock()
		m.met.jobsFailed.Add(1)
		return
	}
	if err := m.writeResult(jb); err != nil {
		jb.mu.Lock()
		jb.state = StateFailed
		jb.err = err.Error()
		jb.mu.Unlock()
		m.met.jobsFailed.Add(1)
		return
	}
	jb.setState(StateDone)
	m.met.jobsCompleted.Add(1)
}

// runCellWithRetry tries a cell up to MaxAttempts times with exponential
// backoff, returning the attempt count alongside the outcome.
func (m *Manager) runCellWithRetry(ctx context.Context, cell CellSpec) (CellResult, int, error) {
	backoff := m.opt.RetryBackoff
	for attempt := 1; ; attempt++ {
		res, err := m.runCellOnce(ctx, cell, attempt)
		if err == nil {
			return res, attempt, nil
		}
		if ctx.Err() != nil || attempt >= m.opt.MaxAttempts {
			return CellResult{}, attempt, err
		}
		m.met.cellsRetried.Add(1)
		if serr := m.sleep(ctx, backoff); serr != nil {
			return CellResult{}, attempt, err
		}
		backoff *= 2
	}
}

// runCellOnce runs a single attempt, applying the fault-injection hook
// and the per-cell timeout. On timeout the simulation goroutine keeps
// running in the background; its eventual result is discarded.
func (m *Manager) runCellOnce(ctx context.Context, cell CellSpec, attempt int) (CellResult, error) {
	if err := context.Cause(ctx); err != nil {
		return CellResult{}, err
	}
	run := func() (CellResult, error) {
		if hook := m.opt.InjectCellError; hook != nil {
			if err := hook(cell, attempt); err != nil {
				return CellResult{}, err
			}
		}
		return RunCell(cell)
	}
	if m.opt.CellTimeout <= 0 {
		return run()
	}
	type outcome struct {
		res CellResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, e := run()
		ch <- outcome{r, e}
	}()
	t := time.NewTimer(m.opt.CellTimeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-t.C:
		return CellResult{}, fmt.Errorf("jobs: cell %s[%s] timed out after %v", cell.Bench, cell.Config, m.opt.CellTimeout)
	case <-ctx.Done():
		return CellResult{}, context.Cause(ctx)
	}
}

// writeResult assembles the canonical result from the job's completed
// cells (journal order is irrelevant; cell order is) and writes it
// atomically next to the journal.
func (m *Manager) writeResult(jb *job) error {
	jb.mu.Lock()
	res := Result{Name: jb.name, Spec: *jb.spec, Cells: make([]CellResult, len(jb.spec.Cells))}
	for i := range jb.spec.Cells {
		res.Cells[i] = jb.completed[i]
	}
	jb.mu.Unlock()
	out, err := EncodeResult(res)
	if err != nil {
		return err
	}
	tmp := ResultPath(m.opt.Dir, jb.id) + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, ResultPath(m.opt.Dir, jb.id))
}

// Job returns the status of one job.
func (m *Manager) Job(id string) (Status, bool) {
	m.mu.Lock()
	jb, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return jb.status(), true
}

// Jobs returns every known job's status, oldest first.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	sort.Strings(ids)
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		m.mu.Lock()
		jb := m.jobs[id]
		m.mu.Unlock()
		out = append(out, jb.status())
	}
	return out
}

// Result returns the canonical result bytes of a done job — exactly the
// journaled artifact, so byte-identity holds end to end. ErrNotDone if
// the job exists but has not completed successfully.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	jb, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("jobs: unknown job %q", id)
	}
	if st := jb.status(); st.State != StateDone {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotDone, id, st.State)
	}
	return os.ReadFile(ResultPath(m.opt.Dir, id))
}

// Drain stops the manager gracefully: no new submissions, no new cells
// scheduled, in-flight cells finish and journal, the current job is left
// checkpointed (or terminates if its cells all landed). Drain waits for
// the worker up to ctx's deadline.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		m.cancelCells()
	}
	select {
	case <-m.workerDone:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
