package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// evalSpec is a small Figure 10/11-shaped grid: 2 benchmarks × 4 configs
// at reduced scale.
func evalSpec() JobSpec {
	return JobSpec{
		Name:       "eval",
		Benchmarks: []string{"atax", "mvt"},
		Configs:    []string{"baseline", "sched", "sched+part", "sched+part+share"},
		Scale:      0.1,
	}
}

func waitState(t *testing.T, m *Manager, id string, want ...State) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := m.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := m.Job(id)
	t.Fatalf("job %s stuck in %s waiting for %v", id, st.State, want)
	return Status{}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func counterAt(t *testing.T, m *Manager, path string) int64 {
	t.Helper()
	v, ok := m.MetricsSnapshot().CounterAt(path)
	if !ok {
		t.Fatalf("metric %s not found", path)
	}
	return v
}

// TestKillAndResumeByteIdentical is the acceptance e2e: a manager
// interrupted mid-sweep leaves a journal; a fresh manager over the same
// directory resumes, re-runs only the unfinished cells, and produces a
// result byte-identical to an uninterrupted run's.
func TestKillAndResumeByteIdentical(t *testing.T) {
	const interruptAfter = 3

	// Reference: one uninterrupted run.
	ref, err := New(Options{Dir: t.TempDir(), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	refID, err := ref.Submit(evalSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, ref, refID, StateDone)
	want, err := ref.Result(refID)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, ref)

	// Interrupted run: cancel cell scheduling the moment the Nth cell's
	// journal append lands. Parallelism 1 makes the interruption point
	// deterministic: exactly interruptAfter cells are durable.
	dir := t.TempDir()
	m1, err := New(Options{Dir: dir, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var landed atomic.Int32
	m1.onCellDone = func(string, int) {
		if landed.Add(1) == interruptAfter {
			m1.cancelCells()
		}
	}
	m1.Start()
	id1, err := m1.Submit(evalSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, id1, StateCheckpointed)
	drain(t, m1)
	if got := landed.Load(); got != interruptAfter {
		t.Fatalf("interrupted run journaled %d cells, want %d", got, interruptAfter)
	}
	if _, err := m1.Result(id1); !errors.Is(err, ErrNotDone) {
		t.Fatalf("checkpointed job's result should be ErrNotDone, got %v", err)
	}

	// Resume: a fresh manager over the same journal directory.
	m2, err := New(Options{Dir: dir, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var rerun atomic.Int32
	m2.opt.InjectCellError = func(CellSpec, int) error {
		rerun.Add(1)
		return nil
	}
	st, ok := m2.Job(id1)
	if !ok || st.State != StateCheckpointed {
		t.Fatalf("job not loaded as checkpointed: %+v (ok=%v)", st, ok)
	}
	if st.CellsDone != interruptAfter {
		t.Fatalf("resumed job shows %d cells done, want %d", st.CellsDone, interruptAfter)
	}
	m2.Start()
	waitState(t, m2, id1, StateDone)
	got, err := m2.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, m2)

	total := len(mustNormalized(t, evalSpec()).Cells)
	if int(rerun.Load()) != total-interruptAfter {
		t.Errorf("resume re-ran %d cells, want only the %d unfinished", rerun.Load(), total-interruptAfter)
	}
	if rec := counterAt(t, m2, "jobs/cells_recovered"); rec != interruptAfter {
		t.Errorf("cells_recovered = %d, want %d", rec, interruptAfter)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from uninterrupted run (lens %d vs %d)", len(got), len(want))
	}
}

func mustNormalized(t *testing.T, s JobSpec) JobSpec {
	t.Helper()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRetryWithBackoff injects two failures into one cell and checks the
// cell ultimately succeeds, the backoff schedule is exponential, and the
// retries surface in the metrics tree.
func TestRetryWithBackoff(t *testing.T) {
	var attempts atomic.Int32
	m, err := New(Options{
		Dir:          t.TempDir(),
		Parallelism:  1,
		MaxAttempts:  3,
		RetryBackoff: 50 * time.Millisecond,
		InjectCellError: func(c CellSpec, attempt int) error {
			if c.Config == "sched" && attempt <= 2 {
				attempts.Add(1)
				return fmt.Errorf("injected failure %d", attempt)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var backoffs []time.Duration
	m.sleep = func(_ context.Context, d time.Duration) error {
		backoffs = append(backoffs, d)
		return nil
	}
	m.Start()
	id, err := m.Submit(JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline", "sched"}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, id, StateDone, StateFailed)
	drain(t, m)

	if st.State != StateDone {
		t.Fatalf("job = %s (%s), want done", st.State, st.Error)
	}
	if attempts.Load() != 2 {
		t.Errorf("injected %d failures, want 2", attempts.Load())
	}
	if st.Retries != 2 {
		t.Errorf("status retries = %d, want 2", st.Retries)
	}
	wantBackoffs := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(backoffs) != len(wantBackoffs) {
		t.Fatalf("backoffs = %v, want %v", backoffs, wantBackoffs)
	}
	for i := range wantBackoffs {
		if backoffs[i] != wantBackoffs[i] {
			t.Errorf("backoff %d = %v, want %v (exponential doubling)", i, backoffs[i], wantBackoffs[i])
		}
	}
	if got := counterAt(t, m, "jobs/cells_retried"); got != 2 {
		t.Errorf("cells_retried = %d, want 2", got)
	}
	if got := counterAt(t, m, "jobs/cells_failed"); got != 0 {
		t.Errorf("cells_failed = %d, want 0", got)
	}
}

// TestPermanentFailure exhausts a cell's attempts: the job fails, the
// cell's error is recorded, and the failure shows in metrics — but the
// other cells still complete and are journaled.
func TestPermanentFailure(t *testing.T) {
	m, err := New(Options{
		Dir:          t.TempDir(),
		Parallelism:  1,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		InjectCellError: func(c CellSpec, _ int) error {
			if c.Bench == "mvt" {
				return errors.New("injected permanent failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	id, err := m.Submit(JobSpec{Benchmarks: []string{"atax", "mvt"}, Configs: []string{"baseline"}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, id, StateDone, StateFailed)
	drain(t, m)

	if st.State != StateFailed {
		t.Fatalf("job = %s, want failed", st.State)
	}
	if st.CellsFailed != 1 || st.CellsDone != 1 {
		t.Errorf("cells done/failed = %d/%d, want 1/1", st.CellsDone, st.CellsFailed)
	}
	if got := counterAt(t, m, "jobs/cells_failed"); got != 1 {
		t.Errorf("cells_failed = %d, want 1", got)
	}
	if got := counterAt(t, m, "jobs/jobs_failed"); got != 1 {
		t.Errorf("jobs_failed = %d, want 1", got)
	}
	if _, err := m.Result(id); !errors.Is(err, ErrNotDone) {
		t.Errorf("failed job's result should be ErrNotDone, got %v", err)
	}
}

// TestQueueSheds verifies the bounded queue: submissions beyond capacity
// fail fast with ErrQueueFull instead of accumulating.
func TestQueueSheds(t *testing.T) {
	// No Start: nothing drains the queue.
	m, err := New(Options{Dir: t.TempDir(), QueueCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}, Scale: 0.1}
	if _, err := m.Submit(spec); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := m.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second submit = %v, want ErrQueueFull", err)
	}
	if got := counterAt(t, m, "jobs/jobs_shed"); got != 1 {
		t.Errorf("jobs_shed = %d, want 1", got)
	}
	if got := counterAt(t, m, "jobs/queue_depth"); got != 1 {
		t.Errorf("queue_depth = %d, want 1", got)
	}
}

// TestCellTimeout converts a wedged attempt into a retry.
func TestCellTimeout(t *testing.T) {
	m, err := New(Options{
		Dir:          t.TempDir(),
		Parallelism:  1,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		// The timeout also covers the real second attempt, so leave it
		// plenty of room for a race-detector-slowed simulation.
		CellTimeout: 2 * time.Second,
		InjectCellError: func(_ CellSpec, attempt int) error {
			if attempt == 1 {
				time.Sleep(10 * time.Second) // wedge the first attempt
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	id, err := m.Submit(JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, id, StateDone, StateFailed)
	drain(t, m)
	if st.State != StateDone {
		t.Fatalf("job = %s (%s), want done after timeout retry", st.State, st.Error)
	}
	if st.Retries != 1 {
		t.Errorf("retries = %d, want 1 (the timed-out attempt)", st.Retries)
	}
}

// TestDrainingRejectsSubmissions checks the graceful-shutdown contract.
func TestDrainingRejectsSubmissions(t *testing.T) {
	m, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	drain(t, m)
	if _, err := m.Submit(JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}, Scale: 0.1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
}
