package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Handler returns the daemon's HTTP API over the manager:
//
//	POST /jobs             submit a JobSpec; 202 {"id": ...}, 429 when the
//	                       queue is full, 503 while draining
//	GET  /jobs             all job statuses, oldest first
//	GET  /jobs/{id}        one job's status
//	GET  /jobs/{id}/result the canonical result artifact (exact journaled
//	                       bytes); 409 until the job is done
//	GET  /healthz          liveness probe
//	GET  /metrics          manager metrics: flat "path value" text, or the
//	                       full stats snapshot JSON with ?format=json
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", m.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	id, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	}
}

func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.Jobs())
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := m.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := m.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	out, err := m.Result(id)
	if errors.Is(err, ErrNotDone) {
		writeError(w, http.StatusConflict, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := m.MetricsSnapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	for _, fv := range snap.Flatten("") {
		fmt.Fprintf(&b, "%s %s\n", fv.Path, fv.Value)
	}
	fmt.Fprint(w, b.String())
}
