package jobs

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

func testSpec(t *testing.T) *JobSpec {
	t.Helper()
	s := &JobSpec{
		Benchmarks: []string{"atax"},
		Configs:    []string{"baseline", "sched"},
		Scale:      0.1,
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)
	j, err := CreateJournal(dir, "job-0001", "rt", spec)
	if err != nil {
		t.Fatal(err)
	}
	res := CellResult{Bench: "atax", Config: "baseline", Cycles: 123, L1TLBHitRate: 0.5}
	if err := j.AppendCell(0, 2, "", res); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendFail(1, 3, "", "boom"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := LoadJournal(JournalPath(dir, "job-0001"))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-0001" || st.Name != "rt" {
		t.Errorf("identity = %q/%q", st.ID, st.Name)
	}
	if len(st.Spec.Cells) != 2 {
		t.Errorf("spec cells = %d, want 2", len(st.Spec.Cells))
	}
	if got := st.Completed[0]; !reflect.DeepEqual(got, res) {
		t.Errorf("completed[0] = %+v, want %+v", got, res)
	}
	if st.Failed[1] != "boom" {
		t.Errorf("failed[1] = %q", st.Failed[1])
	}
	if st.Terminal {
		t.Error("journal without end record reported terminal")
	}

	// Reopen, finish, reload: now terminal.
	j2, err := OpenJournal(dir, "job-0001")
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendEnd(1); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	st, err = LoadJournal(JournalPath(dir, "job-0001"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Terminal || st.EndFailed != 1 {
		t.Errorf("terminal=%v endFailed=%d, want true/1", st.Terminal, st.EndFailed)
	}
}

// TestJournalTornFinalLine covers the kill-mid-append case: the last line
// of the journal is a partial JSON record and must be dropped, losing
// only the cell it would have recorded.
func TestJournalTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)
	j, err := CreateJournal(dir, "job-0001", "torn", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCell(0, 1, "", CellResult{Bench: "atax", Config: "baseline", Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := JournalPath(dir, "job-0001")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"cell","index":1,"resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("torn final line should load cleanly: %v", err)
	}
	if len(st.Completed) != 1 {
		t.Errorf("completed = %d cells, want 1 (torn record dropped)", len(st.Completed))
	}
	if _, ok := st.Completed[1]; ok {
		t.Error("torn cell record must not become durable")
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t)
	j, err := CreateJournal(dir, "job-0001", "corrupt", spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := JournalPath(dir, "job-0001")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte("not json at all\n")...)
	data = append(data, []byte(`{"type":"end"}`+"\n")...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("mid-file corruption should be an error naming the line, got %v", err)
	}
}
