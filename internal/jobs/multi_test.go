package jobs

import (
	"reflect"
	"strings"
	"testing"

	"gputlb/internal/experiments"
	"gputlb/internal/multi"
	"gputlb/internal/sched"
	"gputlb/internal/workloads"
)

func TestParseMultiConfig(t *testing.T) {
	mode, assign, ok := ParseMultiConfig("multi-dynamic-spatial")
	if !ok || mode != multi.TLBDynamicMode || assign != sched.AssignSpatial {
		t.Errorf("parsed %v/%v/%v", mode, assign, ok)
	}
	for _, bad := range []string{"baseline", "multi-", "multi-dynamic", "multi-x-spatial", "multi-dynamic-x"} {
		if _, _, ok := ParseMultiConfig(bad); ok {
			t.Errorf("%q accepted as a multi config", bad)
		}
	}
	// Every advertised name must parse.
	for _, name := range MultiConfigNames() {
		if _, _, ok := ParseMultiConfig(name); !ok {
			t.Errorf("MultiConfigNames entry %q does not parse", name)
		}
	}
	// 4 L2 TLB tenancy modes (shared, static, dynamic, controller) x 3 SM
	// assignment policies.
	if n := len(MultiConfigNames()); n != 12 {
		t.Errorf("MultiConfigNames = %d entries, want 12", n)
	}
}

func TestNormalizeMultiCells(t *testing.T) {
	s := JobSpec{Cells: []CellSpec{
		{Tenants: []string{"bfs", "atax"}, Config: "multi-shared-spatial", Scale: 0.1},
	}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	c := s.Cells[0]
	if c.Bench != "bfs+atax" || c.Seed != 1 {
		t.Errorf("normalized multi cell = %+v", c)
	}

	bad := []JobSpec{
		{Cells: []CellSpec{{Tenants: []string{"bfs"}, Config: "multi-shared-spatial"}}},
		{Cells: []CellSpec{{Tenants: []string{"bfs", "nope"}, Config: "multi-shared-spatial"}}},
		{Cells: []CellSpec{{Tenants: []string{"bfs", "atax"}, Config: "baseline"}}},
		{Cells: []CellSpec{{Bench: "bfs", Config: "multi-shared-spatial"}}},
	}
	for i, b := range bad {
		if err := b.Normalize(); err == nil {
			t.Errorf("bad multi spec %d accepted", i)
		}
	}
}

func TestRunCellMultiMatchesCoRun(t *testing.T) {
	// The daemon's multi cells must reproduce exactly what the in-process
	// interference grid computes for the same point.
	cell := CellSpec{
		Tenants: []string{"bfs", "atax"},
		Config:  "multi-dynamic-spatial",
		Scale:   0.1,
		Seed:    1,
	}
	got, err := RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.BaselineConfig()
	p := workloads.DefaultParams()
	p.Scale, p.Seed = 0.1, 1
	want, err := multi.CoRun(cell.Tenants, multi.Options{
		Base:     &cfg,
		Params:   p,
		SMPolicy: sched.AssignSpatial,
		TLBMode:  multi.TLBDynamicMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(want.Cycles) != got.Cycles || !reflect.DeepEqual(want.Tenants, got.Tenants) {
		t.Errorf("RunCell diverged from CoRun:\n cell:  %+v\n corun: %d %+v", got, want.Cycles, want.Tenants)
	}
	if len(got.Tenants) != 2 {
		t.Fatalf("cell result has %d tenants", len(got.Tenants))
	}

	if _, err := RunCell(CellSpec{Tenants: []string{"bfs", "atax"}, Config: "baseline", Scale: 0.1, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "multi config") {
		t.Errorf("tenants with a single-kernel config not rejected: %v", err)
	}
}

func TestNormalizeChurnCells(t *testing.T) {
	s := JobSpec{Cells: []CellSpec{{
		Tenants:   []string{"bfs", "atax"},
		Config:    "multi-controller-spatial",
		Scale:     0.1,
		Arrivals:  []ArrivalSpec{{Bench: "mis", At: 1000}, {Bench: "mvt", At: 2000}},
		QueueCap:  2,
		Objective: "maxmin",
	}}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	bad := []JobSpec{
		// Churn fields on a single-kernel cell.
		{Cells: []CellSpec{{Bench: "bfs", Config: "baseline", Arrivals: []ArrivalSpec{{Bench: "mis", At: 10}}}}},
		{Cells: []CellSpec{{Bench: "bfs", Config: "baseline", Objective: "ws"}}},
		// Unknown arrival benchmark, bad cycles, bad queue, bad objective.
		{Cells: []CellSpec{{Tenants: []string{"bfs", "atax"}, Config: "multi-shared-spatial", Arrivals: []ArrivalSpec{{Bench: "nope", At: 10}}}}},
		{Cells: []CellSpec{{Tenants: []string{"bfs", "atax"}, Config: "multi-shared-spatial", Arrivals: []ArrivalSpec{{Bench: "mis", At: 0}}}}},
		{Cells: []CellSpec{{Tenants: []string{"bfs", "atax"}, Config: "multi-shared-spatial", Arrivals: []ArrivalSpec{{Bench: "mis", At: 20}, {Bench: "mvt", At: 10}}}}},
		{Cells: []CellSpec{{Tenants: []string{"bfs", "atax"}, Config: "multi-shared-spatial", QueueCap: -1}}},
		{Cells: []CellSpec{{Tenants: []string{"bfs", "atax"}, Config: "multi-shared-spatial", QueueCap: 1}}},
		{Cells: []CellSpec{{Tenants: []string{"bfs", "atax"}, Config: "multi-controller-spatial", Objective: "nope"}}},
	}
	for i, b := range bad {
		if err := b.Normalize(); err == nil {
			t.Errorf("bad churn spec %d accepted", i)
		}
	}
}

func TestRunCellChurnMatchesCoRun(t *testing.T) {
	// Daemon parity for churn + controller cells: RunCell must reproduce
	// exactly what the in-process churn grid computes for the same point.
	cell := CellSpec{
		Tenants:  []string{"bfs", "atax"},
		Config:   "multi-controller-spatial",
		Scale:    0.1,
		Seed:     1,
		Arrivals: []ArrivalSpec{{Bench: "bfs", At: 3000}, {Bench: "atax", At: 6000}},
		QueueCap: 2,
	}
	got, err := RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.BaselineConfig()
	p := workloads.DefaultParams()
	p.Scale, p.Seed = 0.1, 1
	want, err := multi.CoRun(cell.Tenants, multi.Options{
		Base:     &cfg,
		Params:   p,
		SMPolicy: sched.AssignSpatial,
		TLBMode:  multi.TLBControllerMode,
		Churn: &multi.Churn{QueueCap: 2, Arrivals: []multi.Arrival{
			{Bench: "bfs", At: 3000}, {Bench: "atax", At: 6000},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(want.Cycles) != got.Cycles || !reflect.DeepEqual(want.Tenants, got.Tenants) {
		t.Errorf("churn RunCell diverged from CoRun:\n cell:  %+v\n corun: %d %+v", got, want.Cycles, want.Tenants)
	}
	if len(got.Tenants) != 4 {
		t.Fatalf("churn cell result has %d tenants", len(got.Tenants))
	}
}
