// Package jobs turns experiment sweeps into durable, resumable units of
// work — the engine behind the gputlbd daemon. A job is a grid of
// simulation cells (benchmark × named configuration, plus scale/seed
// parameters) submitted as JSON; the manager runs its cells on the
// bounded internal/parallel pool and journals every completed cell, so a
// killed process resumes with only the unfinished cells re-run.
//
// The layer's invariants:
//
//   - Durability: each completed cell is appended to a per-job JSONL
//     journal before it counts as done. A crash between appends loses at
//     most the cells that were still in flight; a torn final line
//     (process killed mid-write) is detected and dropped on load.
//   - Determinism: a cell is a pure function of its CellSpec, so a
//     resumed job's assembled result is byte-identical to an
//     uninterrupted run's. The result file is the canonical artifact and
//     is served verbatim over HTTP.
//   - Bounded resources: the submission queue has fixed capacity and
//     sheds load with ErrQueueFull (HTTP 429) instead of growing without
//     bound; cells run on a bounded worker pool.
//   - Fault tolerance: a failing cell is retried with exponential
//     backoff up to MaxAttempts; an optional per-cell timeout converts a
//     wedged cell into a retryable failure. Retries and failures are
//     surfaced through the stats registry behind /metrics.
//
// Job lifecycle: queued → running → done | failed, with checkpointed as
// the at-rest state of a job whose journal holds some but not all cells
// (a drained or killed run). Checkpointed jobs are re-enqueued when a new
// manager opens the same journal directory.
package jobs
