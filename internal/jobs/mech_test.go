package jobs

import (
	"strings"
	"testing"

	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// TestNormalizeMechCells: mech/alloc cell fields are validated by
// Normalize and survive it unchanged on both solo and multi cells.
func TestNormalizeMechCells(t *testing.T) {
	s := JobSpec{Cells: []CellSpec{
		{Bench: "bfs", Config: "baseline", Mech: "largereach", Alloc: "contig", Scale: 0.1},
		{Tenants: []string{"bfs", "atax"}, Config: "multi-shared-spatial", Mech: "subentry", Scale: 0.1},
	}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Cells[0].Mech != "largereach" || s.Cells[0].Alloc != "contig" || s.Cells[1].Mech != "subentry" {
		t.Errorf("normalize rewrote mech cells: %+v", s.Cells)
	}

	bad := []JobSpec{
		{Cells: []CellSpec{{Bench: "bfs", Config: "baseline", Mech: "quantum"}}},
		{Cells: []CellSpec{{Bench: "bfs", Config: "baseline", Alloc: "buddy"}}},
	}
	for i, b := range bad {
		if err := b.Normalize(); err == nil {
			t.Errorf("bad mech spec %d accepted", i)
		}
	}
}

// TestRunCellMechMatchesInProcess: a daemon mech cell reproduces exactly
// what an in-process simulator configured with the same mechanism computes
// — the parity the -fig mech daemon path depends on.
func TestRunCellMechMatchesInProcess(t *testing.T) {
	cell := CellSpec{Bench: "bfs", Config: "baseline", Mech: "largereach", Alloc: "contig", Scale: 0.1, Seed: 1}
	got, err := RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}

	spec, _ := workloads.ByName("bfs")
	p := workloads.DefaultParams()
	p.Scale, p.Seed = 0.1, 1
	k, as := workloads.Cached(spec, p)
	cfg := namedConfigs["baseline"].build()
	cfg.TLBMech = "largereach"
	cfg.AllocMode = "contig"
	s, err := sim.New(cfg, k, as)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Run()
	if got.Cycles != int64(want.Cycles) || got.L2TLBHitRate != want.L2TLB.HitRate() || got.Walks != want.Walks {
		t.Errorf("RunCell diverged from in-process run:\n cell: %+v\n want: cycles=%d l2=%f walks=%d",
			got, want.Cycles, want.L2TLB.HitRate(), want.Walks)
	}

	// The mechanism must actually be in effect: the same cell under base
	// produces a different trajectory.
	base, err := RunCell(CellSpec{Bench: "bfs", Config: "baseline", Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles == got.Cycles && base.L2TLBHitRate == got.L2TLBHitRate {
		t.Error("mech cell is indistinguishable from base — Mech/Alloc not applied")
	}

	// An invalid mechanism surfaces as a cell error, not a silent base run.
	if _, err := RunCell(CellSpec{Bench: "bfs", Config: "baseline", Mech: "quantum", Scale: 0.1, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "mech") {
		t.Errorf("unknown mechanism not rejected at run time: %v", err)
	}
}
