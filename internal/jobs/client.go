package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a gputlbd daemon. The zero value is unusable; set
// BaseURL (e.g. "http://localhost:8372").
type Client struct {
	// BaseURL is the daemon's root URL, with or without trailing slash.
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// apiError decodes the daemon's {"error": ...} body into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("daemon: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("daemon: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// Submit posts a job spec and returns the assigned job id.
func (c *Client) Submit(spec JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Post(c.url("/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", apiError(resp)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Status fetches one job's status.
func (c *Client) Status(id string) (Status, error) {
	resp, err := c.httpClient().Get(c.url("/jobs/" + id))
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, apiError(resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// Wait polls until the job reaches a terminal state (done or failed) or
// ctx expires, returning the final status. poll <= 0 means 250ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(id)
		if err != nil {
			return Status{}, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, context.Cause(ctx)
		}
	}
}

// RawResult fetches the canonical result artifact bytes of a done job.
func (c *Client) RawResult(id string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.url("/jobs/" + id + "/result"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Result fetches and decodes a done job's result.
func (c *Client) Result(id string) (*Result, error) {
	raw, err := c.RawResult(id)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
