package jobs

import (
	"reflect"
	"testing"
)

// TestRunCellParallelParity: a daemon cell run on the sharded engine must
// produce one well-defined result — identical at every worker count — for
// both single-kernel and multi-tenant cells, so checkpoint/resume stays
// sound when a job is resumed on a machine with a different core count.
func TestRunCellParallelParity(t *testing.T) {
	cells := []CellSpec{
		{Bench: "bfs", Config: "baseline", Scale: 0.1, Seed: 1},
		{Tenants: []string{"bfs", "atax"}, Config: "multi-dynamic-spatial", Scale: 0.1, Seed: 1},
	}
	for _, cell := range cells {
		base := cell
		base.CellParallel = 2
		want, err := RunCell(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{3, 8} {
			c := cell
			c.CellParallel = n
			got, err := RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s [%s]: cell result differs between cell-parallel 2 and %d:\n  2: %+v\n  %d: %+v",
					base.Bench, base.Config, n, want, n, got)
			}
		}
	}
}

// TestNormalizeCellParallel: the grid-level CellParallel fans out to every
// expanded cell and the grid field is cleared, keeping Normalize idempotent.
func TestNormalizeCellParallel(t *testing.T) {
	spec := JobSpec{Benchmarks: []string{"bfs"}, Configs: []string{"baseline"}, CellParallel: 4}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if spec.CellParallel != 0 {
		t.Errorf("grid CellParallel not cleared: %d", spec.CellParallel)
	}
	if len(spec.Cells) != 1 || spec.Cells[0].CellParallel != 4 {
		t.Errorf("cell did not inherit CellParallel: %+v", spec.Cells)
	}
}
