package jobs

import (
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/control"
	"gputlb/internal/experiments"
	"gputlb/internal/multi"
	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// CellResult is the durable outcome of one simulation cell — the subset of
// sim.Result the figure reconstructions need, in a stable JSON shape. The
// journal stores one of these per completed cell.
type CellResult struct {
	Bench        string  `json:"bench"`
	Config       string  `json:"config"`
	Cycles       int64   `json:"cycles"`
	L1TLBHitRate float64 `json:"l1_tlb_hit_rate"`
	L2TLBHitRate float64 `json:"l2_tlb_hit_rate"`
	Walks        int64   `json:"walks"`
	Faults       int64   `json:"faults"`
	InstsIssued  int64   `json:"insts_issued"`
	// Tenants holds the per-tenant breakdown of a multi-tenant co-run cell
	// (CellSpec.Tenants order); nil for single-kernel cells, keeping their
	// serialized form identical to the pre-tenancy journal format.
	Tenants []sim.TenantResult `json:"tenants,omitempty"`
}

// Result is a completed job: its normalized spec and one CellResult per
// cell, in cell order. Serialized with stable field order and no
// run-varying fields (timings, retry counts live in Status instead), so a
// resumed job's result is byte-identical to an uninterrupted run's.
type Result struct {
	Name  string       `json:"name"`
	Spec  JobSpec      `json:"spec"`
	Cells []CellResult `json:"cells"`
}

// applyMechAlloc layers the cell's translation-mechanism and frame-
// allocation overrides onto a named configuration; empty fields keep the
// config's own values.
func applyMechAlloc(cfg *arch.Config, c CellSpec) {
	if c.Mech != "" {
		cfg.TLBMech = c.Mech
	}
	if c.Alloc != "" {
		cfg.AllocMode = c.Alloc
	}
}

// RunCell executes one cell in-process: builds (or reuses the cached)
// kernel trace for the benchmark and simulates it under the named
// configuration. Cells with a Tenants list run as multi-tenant co-runs.
// Deterministic for a given spec at any concurrency.
func RunCell(c CellSpec) (CellResult, error) {
	if len(c.Tenants) > 0 {
		return runMultiCell(c)
	}
	spec, ok := workloads.ByName(c.Bench)
	if !ok {
		return CellResult{}, fmt.Errorf("jobs: unknown benchmark %q", c.Bench)
	}
	nc, ok := namedConfigs[c.Config]
	if !ok {
		return CellResult{}, fmt.Errorf("jobs: unknown config %q", c.Config)
	}
	p := workloads.DefaultParams()
	p.Scale = c.Scale
	p.Seed = c.Seed
	if nc.pageShift != 0 {
		p.PageShift = nc.pageShift
	}
	if c.PageShift != 0 {
		p.PageShift = c.PageShift
	}
	k, as := workloads.Cached(spec, p)
	cfg := nc.build()
	applyMechAlloc(&cfg, c)
	s, err := sim.New(cfg, k, as)
	if err != nil {
		return CellResult{}, fmt.Errorf("%s [%s]: %w", c.Bench, c.Config, err)
	}
	s.SetCellParallel(c.CellParallel)
	s.SetL2Slices(c.L2Slices)
	r := s.Run()
	return CellResult{
		Bench:        c.Bench,
		Config:       c.Config,
		Cycles:       int64(r.Cycles),
		L1TLBHitRate: r.L1TLBHitRate,
		L2TLBHitRate: r.L2TLB.HitRate(),
		Walks:        r.Walks,
		Faults:       r.Faults,
		InstsIssued:  r.InstsIssued,
	}, nil
}

// runMultiCell executes a multi-tenant co-run cell: the tenant benchmarks
// run concurrently under the "multi-<tlb>-<sm>" configuration on the
// experiments' baseline hardware — the exact cell the in-process MultiGrid
// runs, so daemon results reconstruct identical figure rows.
func runMultiCell(c CellSpec) (CellResult, error) {
	mode, assign, ok := ParseMultiConfig(c.Config)
	if !ok {
		return CellResult{}, fmt.Errorf("jobs: unknown multi config %q", c.Config)
	}
	cfg := experiments.BaselineConfig()
	applyMechAlloc(&cfg, c)
	p := workloads.DefaultParams()
	p.Scale = c.Scale
	p.Seed = c.Seed
	if c.PageShift != 0 {
		p.PageShift = c.PageShift
	}
	opt := multi.Options{
		Base:         &cfg,
		Params:       p,
		SMPolicy:     assign,
		TLBMode:      mode,
		CellParallel: c.CellParallel,
		L2Slices:     c.L2Slices,
	}
	if len(c.Arrivals) > 0 {
		churn := &multi.Churn{QueueCap: c.QueueCap}
		for _, a := range c.Arrivals {
			churn.Arrivals = append(churn.Arrivals, multi.Arrival{Bench: a.Bench, At: a.At})
		}
		opt.Churn = churn
	}
	if c.Objective != "" {
		obj, err := control.ParseObjective(c.Objective)
		if err != nil {
			return CellResult{}, fmt.Errorf("%s [%s]: %w", c.Bench, c.Config, err)
		}
		cc := control.DefaultConfig()
		cc.Objective = obj
		opt.Control = &cc
	}
	r, err := multi.CoRun(c.Tenants, opt)
	if err != nil {
		return CellResult{}, fmt.Errorf("%s [%s]: %w", c.Bench, c.Config, err)
	}
	return CellResult{
		Bench:        c.Bench,
		Config:       c.Config,
		Cycles:       int64(r.Cycles),
		L1TLBHitRate: r.L1TLBHitRate,
		L2TLBHitRate: r.L2TLB.HitRate(),
		Walks:        r.Walks,
		Faults:       r.Faults,
		InstsIssued:  r.InstsIssued,
		Tenants:      r.Tenants,
	}, nil
}
