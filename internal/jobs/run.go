package jobs

import (
	"fmt"

	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// CellResult is the durable outcome of one simulation cell — the subset of
// sim.Result the figure reconstructions need, in a stable JSON shape. The
// journal stores one of these per completed cell.
type CellResult struct {
	Bench        string  `json:"bench"`
	Config       string  `json:"config"`
	Cycles       int64   `json:"cycles"`
	L1TLBHitRate float64 `json:"l1_tlb_hit_rate"`
	L2TLBHitRate float64 `json:"l2_tlb_hit_rate"`
	Walks        int64   `json:"walks"`
	Faults       int64   `json:"faults"`
	InstsIssued  int64   `json:"insts_issued"`
}

// Result is a completed job: its normalized spec and one CellResult per
// cell, in cell order. Serialized with stable field order and no
// run-varying fields (timings, retry counts live in Status instead), so a
// resumed job's result is byte-identical to an uninterrupted run's.
type Result struct {
	Name  string       `json:"name"`
	Spec  JobSpec      `json:"spec"`
	Cells []CellResult `json:"cells"`
}

// RunCell executes one cell in-process: builds (or reuses the cached)
// kernel trace for the benchmark and simulates it under the named
// configuration. Deterministic for a given spec at any concurrency.
func RunCell(c CellSpec) (CellResult, error) {
	spec, ok := workloads.ByName(c.Bench)
	if !ok {
		return CellResult{}, fmt.Errorf("jobs: unknown benchmark %q", c.Bench)
	}
	nc, ok := namedConfigs[c.Config]
	if !ok {
		return CellResult{}, fmt.Errorf("jobs: unknown config %q", c.Config)
	}
	p := workloads.DefaultParams()
	p.Scale = c.Scale
	p.Seed = c.Seed
	if nc.pageShift != 0 {
		p.PageShift = nc.pageShift
	}
	if c.PageShift != 0 {
		p.PageShift = c.PageShift
	}
	k, as := workloads.Cached(spec, p)
	s, err := sim.New(nc.build(), k, as)
	if err != nil {
		return CellResult{}, fmt.Errorf("%s [%s]: %w", c.Bench, c.Config, err)
	}
	r := s.Run()
	return CellResult{
		Bench:        c.Bench,
		Config:       c.Config,
		Cycles:       int64(r.Cycles),
		L1TLBHitRate: r.L1TLBHitRate,
		L2TLBHitRate: r.L2TLB.HitRate(),
		Walks:        r.Walks,
		Faults:       r.Faults,
		InstsIssued:  r.InstsIssued,
	}, nil
}
