package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The journal is the durability substrate: one append-only JSONL file per
// job. The first record is the normalized spec; every completed cell
// appends a record before it counts as done; a terminal record marks the
// job done or failed. Loading tolerates a torn final line — the artifact
// of a process killed mid-append — by dropping it.

const (
	journalSuffix = ".journal"
	resultSuffix  = ".result.json"
)

// journalRecord is one line of a job journal.
type journalRecord struct {
	Type string `json:"type"` // "spec" | "cell" | "fail" | "end"
	// Spec-record fields.
	ID   string   `json:"id,omitempty"`
	Name string   `json:"name,omitempty"`
	Spec *JobSpec `json:"spec,omitempty"`
	// Cell- and fail-record fields.
	Index    int         `json:"index,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	Result   *CellResult `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
	// End-record field: number of permanently failed cells.
	Failed int `json:"failed,omitempty"`
}

// journal appends records to a job's JSONL file. Safe for concurrent
// appends; every append is flushed to the OS before returning so a
// completed cell survives a process kill.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func journalPath(dir, id string) string { return filepath.Join(dir, id+journalSuffix) }

func resultPath(dir, id string) string { return filepath.Join(dir, id+resultSuffix) }

// createJournal starts a new journal with its spec header record.
func createJournal(dir, id, name string, spec *JobSpec) (*journal, error) {
	f, err := os.OpenFile(journalPath(dir, id), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{f: f}
	if err := j.append(journalRecord{Type: "spec", ID: id, Name: name, Spec: spec}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// openJournal reopens an existing journal for appending (resume).
func openJournal(dir, id string) (*journal, error) {
	f, err := os.OpenFile(journalPath(dir, id), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

func (j *journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) appendCell(idx, attempts int, res CellResult) error {
	return j.append(journalRecord{Type: "cell", Index: idx, Attempts: attempts, Result: &res})
}

func (j *journal) appendFail(idx, attempts int, msg string) error {
	return j.append(journalRecord{Type: "fail", Index: idx, Attempts: attempts, Error: msg})
}

func (j *journal) appendEnd(failed int) error {
	return j.append(journalRecord{Type: "end", Failed: failed})
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// journalState is a loaded journal: the job identity plus every durable
// cell outcome. terminal reports whether an end record was seen (the job
// finished — done or failed — and must not be resumed).
type journalState struct {
	id        string
	name      string
	spec      *JobSpec
	completed map[int]CellResult
	failed    map[int]string
	terminal  bool
	endFailed int
}

// loadJournal parses a job journal. A final line that does not parse is
// dropped (torn write from a kill); a malformed line elsewhere is an
// error, as is a missing or invalid spec header.
func loadJournal(path string) (*journalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := &journalState{completed: map[int]CellResult{}, failed: map[int]string{}}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobs: reading %s: %w", path, err)
	}
	// A journal killed mid-append may end without a newline; the scanner
	// still yields that partial tail as a line, and it simply fails to
	// parse below.
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final line: the cell it recorded never became durable
			}
			return nil, fmt.Errorf("jobs: %s line %d: %w", path, i+1, err)
		}
		switch rec.Type {
		case "spec":
			if i != 0 {
				return nil, fmt.Errorf("jobs: %s line %d: unexpected spec record", path, i+1)
			}
			st.id, st.name, st.spec = rec.ID, rec.Name, rec.Spec
		case "cell":
			if rec.Result != nil {
				st.completed[rec.Index] = *rec.Result
			}
		case "fail":
			st.failed[rec.Index] = rec.Error
		case "end":
			st.terminal = true
			st.endFailed = rec.Failed
		default:
			return nil, fmt.Errorf("jobs: %s line %d: unknown record type %q", path, i+1, rec.Type)
		}
	}
	if st.spec == nil || st.id == "" {
		return nil, fmt.Errorf("jobs: %s: missing spec header", path)
	}
	return st, nil
}

// scanJournals loads every journal in dir, sorted by file name (and
// therefore by submission order, since IDs are zero-padded sequence
// numbers). Unreadable journals are returned as errors, not dropped.
func scanJournals(dir string) ([]*journalState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var states []*journalState
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), journalSuffix) {
			continue
		}
		st, err := loadJournal(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}
	return states, nil
}

// encodeResult renders the canonical result artifact. The encoding is the
// byte-identity contract: indented JSON of Result with a trailing newline.
func encodeResult(res Result) ([]byte, error) {
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
