package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// The journal is the durability substrate: one append-only JSONL file per
// job. The first record is the normalized spec; every completed cell
// appends a record before it counts as done; a terminal record marks the
// job done or failed. Loading tolerates a torn final line — the artifact
// of a process killed mid-append — by dropping it.
//
// The journal API is exported so the fabric coordinator (internal/fabric)
// journals distributed progress in the exact same format: a coordinator
// journal resumes under a single-process manager and vice versa.

const (
	journalSuffix = ".journal"
	resultSuffix  = ".result.json"
)

// journalRecord is one line of a job journal.
type journalRecord struct {
	Type string `json:"type"` // "spec" | "cell" | "fail" | "end"
	// Spec-record fields.
	ID   string   `json:"id,omitempty"`
	Name string   `json:"name,omitempty"`
	Spec *JobSpec `json:"spec,omitempty"`
	// Cell- and fail-record fields.
	Index    int         `json:"index,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	Result   *CellResult `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
	// Worker attributes a cell outcome to the fabric worker (or "cache")
	// that produced it; empty for single-process manager runs, keeping the
	// legacy journal format byte-stable.
	Worker string `json:"worker,omitempty"`
	// End-record field: number of permanently failed cells.
	Failed int `json:"failed,omitempty"`
}

// Journal appends records to a job's JSONL file. Safe for concurrent
// appends; every append is flushed to the OS before returning so a
// completed cell survives a process kill.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// JournalPath returns the journal file path of job id under dir.
func JournalPath(dir, id string) string { return filepath.Join(dir, id+journalSuffix) }

// ResultPath returns the result artifact path of job id under dir.
func ResultPath(dir, id string) string { return filepath.Join(dir, id+resultSuffix) }

// CreateJournal starts a new journal with its spec header record. The
// spec must already be normalized; the header is what makes a resume
// self-contained.
func CreateJournal(dir, id, name string, spec *JobSpec) (*Journal, error) {
	f, err := os.OpenFile(JournalPath(dir, id), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f}
	if err := j.append(journalRecord{Type: "spec", ID: id, Name: name, Spec: spec}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// OpenJournal reopens an existing journal for appending (resume).
func OpenJournal(dir, id string) (*Journal, error) {
	f, err := os.OpenFile(JournalPath(dir, id), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

func (j *Journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// AppendCell records a completed cell. worker attributes the outcome to a
// fabric worker id (or "cache" for a cache-served cell); pass "" from the
// single-process manager.
func (j *Journal) AppendCell(idx, attempts int, worker string, res CellResult) error {
	return j.append(journalRecord{Type: "cell", Index: idx, Attempts: attempts, Worker: worker, Result: &res})
}

// AppendFail records a permanently failed cell.
func (j *Journal) AppendFail(idx, attempts int, worker, msg string) error {
	return j.append(journalRecord{Type: "fail", Index: idx, Attempts: attempts, Worker: worker, Error: msg})
}

// AppendEnd records the terminal record: the job finished with the given
// number of permanently failed cells (zero means done).
func (j *Journal) AppendEnd(failed int) error {
	return j.append(journalRecord{Type: "end", Failed: failed})
}

// Close releases the journal's file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// JournalState is a loaded journal: the job identity plus every durable
// cell outcome.
type JournalState struct {
	// ID and Name identify the job; Spec is its normalized spec.
	ID   string
	Name string
	Spec *JobSpec
	// Completed maps cell index to the journaled result; Failed maps cell
	// index to the permanent failure message.
	Completed map[int]CellResult
	Failed    map[int]string
	// Terminal reports whether an end record was seen (the job finished —
	// done or failed — and must not be resumed); EndFailed is that
	// record's permanently-failed count.
	Terminal  bool
	EndFailed int
}

// LoadJournal parses a job journal. A final line that does not parse is
// dropped (torn write from a kill); a malformed line elsewhere is an
// error, as is a missing or invalid spec header.
func LoadJournal(path string) (*JournalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := &JournalState{Completed: map[int]CellResult{}, Failed: map[int]string{}}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobs: reading %s: %w", path, err)
	}
	// A journal killed mid-append may end without a newline; the scanner
	// still yields that partial tail as a line, and it simply fails to
	// parse below.
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				break // torn final line: the cell it recorded never became durable
			}
			return nil, fmt.Errorf("jobs: %s line %d: %w", path, i+1, err)
		}
		switch rec.Type {
		case "spec":
			if i != 0 {
				return nil, fmt.Errorf("jobs: %s line %d: unexpected spec record", path, i+1)
			}
			st.ID, st.Name, st.Spec = rec.ID, rec.Name, rec.Spec
		case "cell":
			if rec.Result != nil {
				st.Completed[rec.Index] = *rec.Result
			}
		case "fail":
			st.Failed[rec.Index] = rec.Error
		case "end":
			st.Terminal = true
			st.EndFailed = rec.Failed
		default:
			return nil, fmt.Errorf("jobs: %s line %d: unknown record type %q", path, i+1, rec.Type)
		}
	}
	if st.Spec == nil || st.ID == "" {
		return nil, fmt.Errorf("jobs: %s: missing spec header", path)
	}
	return st, nil
}

// ScanJournals loads every journal in dir, sorted by file name (and
// therefore by submission order, since IDs are zero-padded sequence
// numbers). Unreadable journals are returned as errors, not dropped.
func ScanJournals(dir string) ([]*JournalState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var states []*JournalState
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), journalSuffix) {
			continue
		}
		st, err := LoadJournal(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}
	return states, nil
}

// EncodeResult renders the canonical result artifact. The encoding is the
// byte-identity contract: indented JSON of Result with a trailing newline.
// Every execution path — in-process manager, resumed manager, fabric
// coordinator — funnels through this one encoder, which is what makes
// "byte-identical result file" a checkable property rather than a hope.
func EncodeResult(res Result) ([]byte, error) {
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
