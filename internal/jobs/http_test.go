package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opt Options, start bool) (*Manager, *Client) {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	m, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		m.Start()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			m.Drain(ctx)
		})
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
}

// TestHTTPEndToEnd drives the whole API through the client: submit, poll,
// fetch the result, and check it matches the manager's canonical bytes.
func TestHTTPEndToEnd(t *testing.T) {
	m, c := newTestServer(t, Options{Parallelism: 2}, true)

	id, err := c.Submit(JobSpec{Name: "http-e2e", Benchmarks: []string{"atax"}, Configs: []string{"baseline", "sched"}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job = %s (%s), want done", st.State, st.Error)
	}

	viaHTTP, err := c.RawResult(id)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaHTTP, canonical) {
		t.Error("HTTP result differs from the journaled artifact")
	}

	res, err := c.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "http-e2e" || len(res.Cells) != 2 {
		t.Errorf("decoded result = name %q, %d cells", res.Name, len(res.Cells))
	}
	for i, cell := range res.Cells {
		if cell.Cycles <= 0 || cell.L1TLBHitRate <= 0 {
			t.Errorf("cell %d has empty results: %+v", i, cell)
		}
	}

	// The listing includes the job.
	list, err := c.httpClient().Get(c.url("/jobs"))
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var all []Status
	if err := json.NewDecoder(list.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != id {
		t.Errorf("job listing = %+v", all)
	}
}

// TestHTTPQueueSheds429 checks the load-shedding contract over the wire.
func TestHTTPQueueSheds429(t *testing.T) {
	// Worker not started: the queue cannot drain.
	_, c := newTestServer(t, Options{QueueCapacity: 1}, false)
	spec := JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}, Scale: 0.1}
	if _, err := c.Submit(spec); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := c.Submit(spec)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("second submit = %v, want HTTP 429", err)
	}
}

// TestHTTPResultConflictAndNotFound covers the result endpoint's error
// paths: 409 while a job is unfinished, 404 for unknown jobs.
func TestHTTPResultConflictAndNotFound(t *testing.T) {
	_, c := newTestServer(t, Options{}, false) // never runs: stays queued
	id, err := c.Submit(JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RawResult(id); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("unfinished result = %v, want HTTP 409", err)
	}
	if _, err := c.Status("job-9999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown status = %v, want HTTP 404", err)
	}
	if _, err := c.RawResult("job-9999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown result = %v, want HTTP 404", err)
	}
}

func TestHTTPSubmitRejectsBadSpecs(t *testing.T) {
	_, c := newTestServer(t, Options{}, false)
	for _, body := range []string{
		`{`,         // malformed JSON
		`{"wat":1}`, // unknown field
		`{"benchmarks":["nope"],"configs":["baseline"]}`,     // unknown benchmark
		`{"benchmarks":["atax"],"configs":["not-a-config"]}`, // unknown config
		`{"benchmarks":["atax"]}`,                            // no configs or cells
	} {
		resp, err := c.httpClient().Post(c.url("/jobs"), "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestHTTPMetricsSurfaceRetries injects failures and checks they appear
// through /metrics in both text and JSON forms, alongside /healthz.
func TestHTTPMetricsSurfaceRetries(t *testing.T) {
	var injected int32
	opt := Options{
		Parallelism:  1,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
		InjectCellError: func(_ CellSpec, attempt int) error {
			if attempt == 1 && injected == 0 {
				injected++
				return errors.New("injected")
			}
			return nil
		},
	}
	_, c := newTestServer(t, opt, true)
	id, err := c.Submit(JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"baseline"}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if st, err := c.Wait(ctx, id, 20*time.Millisecond); err != nil || st.State != StateDone {
		t.Fatalf("wait: %v (state %s)", err, st.State)
	}

	get := func(path string) string {
		resp, err := c.httpClient().Get(c.url(path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = HTTP %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %q", got)
	}
	text := get("/metrics")
	for _, want := range []string{
		"jobs/cells_retried 1",
		"jobs/cells_completed 1",
		"jobs/jobs_completed 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q; got:\n%s", want, text)
		}
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Errorf("/metrics?format=json is not JSON: %v", err)
	}
}

// TestHTTPDaemonRestartServesResumedJob simulates a daemon restart over
// the full HTTP surface: submit against one server, interrupt it, bring
// up a second server on the same journal dir, and fetch the finished
// result there.
func TestHTTPDaemonRestartServesResumedJob(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Options{Dir: dir, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var landed int32
	m1.onCellDone = func(string, int) {
		landed++
		if landed == 1 {
			m1.cancelCells()
		}
	}
	m1.Start()
	srv1 := httptest.NewServer(m1.Handler())
	c1 := &Client{BaseURL: srv1.URL, HTTPClient: srv1.Client()}
	id, err := c1.Submit(JobSpec{Name: "restart", Benchmarks: []string{"atax"}, Configs: []string{"baseline", "sched"}, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, id, StateCheckpointed)
	drain(t, m1)
	srv1.Close()

	// "Restart" on the same journal directory.
	_, c2 := newTestServer(t, Options{Dir: dir, Parallelism: 1}, true)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c2.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("resumed job = %s (%s), want done", st.State, st.Error)
	}
	res, err := c2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "restart" || len(res.Cells) != 2 {
		t.Errorf("resumed result = %+v", res)
	}
}
