package jobs

import (
	"fmt"
	"sort"
	"strings"

	"gputlb/internal/arch"
	"gputlb/internal/control"
	"gputlb/internal/experiments"
	"gputlb/internal/multi"
	"gputlb/internal/sched"
	"gputlb/internal/tlbmech"
	"gputlb/internal/vm"
	"gputlb/internal/workloads"
)

// CellSpec identifies one simulation cell: a benchmark under a named
// configuration at a given workload scale and seed. A cell is a pure
// function of its spec — the property checkpoint/resume relies on.
type CellSpec struct {
	// Bench is a benchmark name from the Table II suite (workloads.All).
	// Multi-tenant cells may leave it empty; Normalize fills it with the
	// "+"-joined tenant list for display.
	Bench string `json:"bench"`
	// Config is a named configuration variant; see ConfigNames. Multi-tenant
	// cells use the "multi-<tlb>-<sm>" names (MultiConfigNames).
	Config string `json:"config"`
	// Tenants, when non-empty, makes this a multi-tenant co-run cell: the
	// listed benchmarks run concurrently (tenant i gets ASID i) under the
	// multi config named by Config. Requires at least two entries.
	Tenants []string `json:"tenants,omitempty"`
	// Scale multiplies problem sizes; 0 means 1.0 (experiment scale).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives workload generation; 0 means 1.
	Seed int64 `json:"seed,omitempty"`
	// PageShift overrides the page size implied by Config (12 = 4KB,
	// 21 = 2MB). 0 keeps the config's default.
	PageShift uint `json:"page_shift,omitempty"`
	// CellParallel selects the intra-cell engine: 0 or 1 runs the serial
	// engine; n >= 2 the sharded epoch-barrier engine with up to n worker
	// goroutines. Sharded cells are bit-identical at every n >= 2, so the
	// value is not part of the cell's identity beyond serial-vs-sharded.
	CellParallel int `json:"cell_parallel,omitempty"`
	// L2Slices requests K independent address slices for the sharded
	// engine's barrier (sim.SetL2Slices). 0 or 1 keeps the monolithic
	// barrier; effective only with CellParallel >= 2. K > 1 is a distinct
	// legal serialization of the model, so the value IS part of the cell's
	// identity (unlike the worker count).
	L2Slices int `json:"l2_slices,omitempty"`
	// Arrivals adds tenant churn to a multi-tenant cell: each listed
	// benchmark arrives mid-run at its cycle, entering a free slot or the
	// bounded admission queue. Requires a Tenants list.
	Arrivals []ArrivalSpec `json:"arrivals,omitempty"`
	// QueueCap bounds the admission queue of a churn cell; arrivals past a
	// full queue are shed. Only meaningful with Arrivals.
	QueueCap int `json:"queue_cap,omitempty"`
	// Objective overrides the partitioning controller's optimization
	// objective ("ws", "fairness", "maxmin") for "multi-controller-*"
	// cells; empty keeps the default. Ignored by other configs.
	Objective string `json:"objective,omitempty"`
	// Mech overrides the translation mechanism both TLB levels run ("base",
	// "subentry", "deadblock", "largereach"); empty keeps the named
	// config's mechanism. Part of the cell's identity.
	Mech string `json:"mech,omitempty"`
	// Alloc overrides the UVM frame-allocation policy ("firsttouch",
	// "contig"); empty keeps the named config's policy. Part of the cell's
	// identity.
	Alloc string `json:"alloc,omitempty"`
}

// ArrivalSpec is one churn arrival of a multi-tenant cell.
type ArrivalSpec struct {
	// Bench is the arriving benchmark (Table II suite).
	Bench string `json:"bench"`
	// At is the arrival cycle; must be positive, nondecreasing across the
	// cell's arrival list.
	At int64 `json:"at"`
}

// JobSpec is a submitted experiment grid. Either list Cells explicitly or
// give Benchmarks × Configs and let Normalize expand the cross product
// (benchmark-major, config-minor — the order the experiments package uses).
type JobSpec struct {
	// Name labels the job in statuses and results; optional.
	Name string `json:"name,omitempty"`
	// Benchmarks of the grid; nil or empty means the full suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Configs of the grid; required unless Cells is given.
	Configs []string `json:"configs,omitempty"`
	// Scale and Seed apply to every expanded grid cell.
	Scale float64 `json:"scale,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// CellParallel and L2Slices apply to every expanded grid cell (CellSpec
	// fields of the same names).
	CellParallel int `json:"cell_parallel,omitempty"`
	L2Slices     int `json:"l2_slices,omitempty"`
	// Cells, when non-empty, is the explicit cell list and the grid
	// fields above are ignored.
	Cells []CellSpec `json:"cells,omitempty"`
}

// namedConfig builds one architecture variant; pageShift, when non-zero,
// is the page-size shift the variant implies (2MB configs).
type namedConfig struct {
	build     func() arch.Config
	pageShift uint
}

// namedConfigs are the configuration variants a CellSpec can name — the
// same variants the experiments package sweeps for the paper's figures.
var namedConfigs = map[string]namedConfig{
	// The four Figure 10/11 bars.
	"baseline":         {experiments.BaselineConfig, 0},
	"sched":            {experiments.SchedConfig, 0},
	"sched+part":       {experiments.PartConfig, 0},
	"sched+part+share": {experiments.ShareConfig, 0},
	// Figure 2 capacities.
	"64-entry": {experiments.BaselineConfig, 0},
	"256-entry": {func() arch.Config {
		c := experiments.BaselineConfig()
		c.L1TLB.Entries = 256
		return c
	}, 0},
	// Figure 12 compression comparison.
	"compression": {func() arch.Config {
		c := experiments.BaselineConfig()
		c.TLBCompression = true
		return c
	}, 0},
	"ours+compression": {func() arch.Config {
		c := experiments.ShareConfig()
		c.TLBCompression = true
		return c
	}, 0},
	// Huge-page study.
	"baseline-4K": {experiments.BaselineConfig, 0},
	"baseline-2M": {func() arch.Config {
		c := experiments.BaselineConfig()
		c.PageSize = arch.PageSize2M
		return c
	}, 21},
	"ours-2M": {func() arch.Config {
		c := experiments.ShareConfig()
		c.PageSize = arch.PageSize2M
		return c
	}, 21},
}

// ConfigNames returns the recognized single-kernel configuration names,
// sorted. Multi-tenant cells use MultiConfigNames instead.
func ConfigNames() []string {
	out := make([]string, 0, len(namedConfigs))
	for n := range namedConfigs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseMultiConfig decodes a "multi-<tlb>-<sm>" config name into the L2 TLB
// tenancy mode and SM assignment of a co-run cell; ok is false when name is
// not a multi config.
func ParseMultiConfig(name string) (mode multi.TLBMode, assign sched.SMAssignment, ok bool) {
	rest, found := strings.CutPrefix(name, "multi-")
	if !found {
		return 0, 0, false
	}
	tlbName, smName, found := strings.Cut(rest, "-")
	if !found {
		return 0, 0, false
	}
	mode, err := multi.ParseTLBMode(tlbName)
	if err != nil {
		return 0, 0, false
	}
	assign, err = sched.ParseSMAssignment(smName)
	if err != nil {
		return 0, 0, false
	}
	return mode, assign, true
}

// MultiConfigNames returns the recognized multi-tenant configuration names
// ("multi-<tlb>-<sm>"), in grid order: TLB mode major, SM assignment minor.
func MultiConfigNames() []string {
	var out []string
	for _, mode := range experiments.MultiTLBModes {
		for _, assign := range experiments.MultiSMPolicies {
			out = append(out, fmt.Sprintf("multi-%s-%s", mode, assign))
		}
	}
	return out
}

// Normalize validates the spec and expands it to an explicit, fully
// defaulted cell list: grid fields become the benchmark-major cross
// product, empty Benchmarks becomes the full suite, and zero Scale/Seed
// become 1.0/1 on every cell. Normalize is idempotent; the normalized
// spec is what the journal records, making resume self-contained.
func (s *JobSpec) Normalize() error {
	if len(s.Cells) == 0 {
		benches := s.Benchmarks
		if len(benches) == 0 {
			for _, w := range workloads.All() {
				benches = append(benches, w.Name)
			}
		}
		if len(s.Configs) == 0 {
			return fmt.Errorf("jobs: spec needs configs (one of %v) or explicit cells", ConfigNames())
		}
		for _, b := range benches {
			for _, c := range s.Configs {
				s.Cells = append(s.Cells, CellSpec{Bench: b, Config: c, Scale: s.Scale, Seed: s.Seed, CellParallel: s.CellParallel, L2Slices: s.L2Slices})
			}
		}
		s.Benchmarks, s.Configs = nil, nil
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Scale == 0 {
			c.Scale = 1.0
		}
		if c.Seed == 0 {
			c.Seed = 1
		}
		if c.L2Slices < 0 {
			return fmt.Errorf("jobs: cell %d: negative l2_slices %d", i, c.L2Slices)
		}
		if c.L2Slices > 1 && c.CellParallel < 2 {
			return fmt.Errorf("jobs: cell %d: l2_slices %d requires cell_parallel >= 2 (the sliced barrier is a sharded-engine feature)", i, c.L2Slices)
		}
		if _, err := tlbmech.ParseSpec(c.Mech); err != nil {
			return fmt.Errorf("jobs: cell %d: %w", i, err)
		}
		if _, err := vm.ParseAllocMode(c.Alloc); err != nil {
			return fmt.Errorf("jobs: cell %d: %w", i, err)
		}
		if len(c.Tenants) > 0 {
			if len(c.Tenants) < 2 {
				return fmt.Errorf("jobs: cell %d: co-run needs at least 2 tenants, got %d", i, len(c.Tenants))
			}
			for _, t := range c.Tenants {
				if _, ok := workloads.ByName(t); !ok {
					return fmt.Errorf("jobs: cell %d: unknown tenant benchmark %q", i, t)
				}
			}
			if _, _, ok := ParseMultiConfig(c.Config); !ok {
				return fmt.Errorf("jobs: cell %d: unknown multi config %q (one of %v)", i, c.Config, MultiConfigNames())
			}
			if c.QueueCap < 0 {
				return fmt.Errorf("jobs: cell %d: negative queue capacity %d", i, c.QueueCap)
			}
			if c.QueueCap > 0 && len(c.Arrivals) == 0 {
				return fmt.Errorf("jobs: cell %d: queue capacity without arrivals", i)
			}
			var prev int64
			for j, a := range c.Arrivals {
				if _, ok := workloads.ByName(a.Bench); !ok {
					return fmt.Errorf("jobs: cell %d: unknown arrival benchmark %q", i, a.Bench)
				}
				if a.At <= 0 || a.At < prev {
					return fmt.Errorf("jobs: cell %d: arrival %d cycle %d not positive and nondecreasing", i, j, a.At)
				}
				prev = a.At
			}
			if c.Objective != "" {
				if _, err := control.ParseObjective(c.Objective); err != nil {
					return fmt.Errorf("jobs: cell %d: %w", i, err)
				}
			}
			if c.Bench == "" {
				c.Bench = strings.Join(c.Tenants, "+")
			}
			continue
		}
		if len(c.Arrivals) > 0 || c.QueueCap != 0 || c.Objective != "" {
			return fmt.Errorf("jobs: cell %d: churn fields require a tenants list", i)
		}
		if _, ok := workloads.ByName(c.Bench); !ok {
			return fmt.Errorf("jobs: cell %d: unknown benchmark %q", i, c.Bench)
		}
		if _, _, ok := ParseMultiConfig(c.Config); ok {
			return fmt.Errorf("jobs: cell %d: multi config %q requires a tenants list", i, c.Config)
		}
		if _, ok := namedConfigs[c.Config]; !ok {
			return fmt.Errorf("jobs: cell %d: unknown config %q (one of %v)", i, c.Config, ConfigNames())
		}
	}
	s.Scale, s.Seed, s.CellParallel, s.L2Slices = 0, 0, 0, 0
	return nil
}
