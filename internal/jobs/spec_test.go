package jobs

import (
	"reflect"
	"strings"
	"testing"
)

func TestNormalizeExpandsGrid(t *testing.T) {
	s := JobSpec{
		Benchmarks: []string{"atax", "mvt"},
		Configs:    []string{"baseline", "sched"},
		Scale:      0.1,
		Seed:       7,
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	want := []CellSpec{
		{Bench: "atax", Config: "baseline", Scale: 0.1, Seed: 7},
		{Bench: "atax", Config: "sched", Scale: 0.1, Seed: 7},
		{Bench: "mvt", Config: "baseline", Scale: 0.1, Seed: 7},
		{Bench: "mvt", Config: "sched", Scale: 0.1, Seed: 7},
	}
	if len(s.Cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(s.Cells), len(want))
	}
	for i, c := range s.Cells {
		if !reflect.DeepEqual(c, want[i]) {
			t.Errorf("cell %d = %+v, want %+v", i, c, want[i])
		}
	}
	if s.Benchmarks != nil || s.Configs != nil {
		t.Errorf("grid fields should be cleared after expansion")
	}
	// Idempotent: normalizing again must not change the cells.
	before := append([]CellSpec(nil), s.Cells...)
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if !reflect.DeepEqual(s.Cells[i], before[i]) {
			t.Fatalf("Normalize not idempotent at cell %d", i)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := JobSpec{Cells: []CellSpec{{Bench: "atax", Config: "baseline"}}}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := s.Cells[0]; got.Scale != 1.0 || got.Seed != 1 {
		t.Errorf("defaults not applied: %+v", got)
	}

	// Empty benchmark list expands to the full suite.
	full := JobSpec{Configs: []string{"baseline"}}
	if err := full.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(full.Cells) != 10 {
		t.Errorf("full-suite expansion produced %d cells, want 10", len(full.Cells))
	}
}

func TestNormalizeRejectsUnknownNames(t *testing.T) {
	bad := JobSpec{Benchmarks: []string{"nope"}, Configs: []string{"baseline"}}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("unknown benchmark not rejected: %v", err)
	}
	bad = JobSpec{Benchmarks: []string{"atax"}, Configs: []string{"warpdrive"}}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "unknown config") {
		t.Errorf("unknown config not rejected: %v", err)
	}
	bad = JobSpec{Benchmarks: []string{"atax"}}
	if err := bad.Normalize(); err == nil {
		t.Error("spec without configs or cells not rejected")
	}
}

func TestConfigNamesCoverEvaluationGrids(t *testing.T) {
	names := ConfigNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range []string{
		"baseline", "sched", "sched+part", "sched+part+share", // figures 10/11
		"64-entry", "256-entry", // figure 2
		"compression", "ours+compression", // figure 12
		"baseline-4K", "baseline-2M", "ours-2M", // huge-page study
	} {
		if !have[n] {
			t.Errorf("config %q missing from ConfigNames", n)
		}
	}
}
