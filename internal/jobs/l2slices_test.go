package jobs

import (
	"reflect"
	"strings"
	"testing"
)

// TestRunCellL2SlicesParity: a daemon cell run on the sharded engine with
// the address-sliced barrier must produce one well-defined result —
// identical at every worker count for a fixed slice count — for both
// single-kernel and multi-tenant cells, so checkpoint/resume stays sound
// when a job is resumed on a machine with a different core count.
func TestRunCellL2SlicesParity(t *testing.T) {
	cells := []CellSpec{
		{Bench: "bfs", Config: "baseline", Scale: 0.1, Seed: 1, L2Slices: 4},
		{Tenants: []string{"bfs", "atax"}, Config: "multi-dynamic-spatial", Scale: 0.1, Seed: 1, L2Slices: 4},
	}
	for _, cell := range cells {
		base := cell
		base.CellParallel = 2
		want, err := RunCell(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{3, 8} {
			c := cell
			c.CellParallel = n
			got, err := RunCell(c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s [%s] l2-slices 4: cell result differs between cell-parallel 2 and %d:\n  2: %+v\n  %d: %+v",
					base.Bench, base.Config, n, want, n, got)
			}
		}
	}
}

// TestNormalizeL2Slices: the grid-level L2Slices fans out to every expanded
// cell and the grid field is cleared, keeping Normalize idempotent.
func TestNormalizeL2Slices(t *testing.T) {
	spec := JobSpec{Benchmarks: []string{"bfs"}, Configs: []string{"baseline"}, CellParallel: 4, L2Slices: 4}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if spec.L2Slices != 0 {
		t.Errorf("grid L2Slices not cleared: %d", spec.L2Slices)
	}
	if len(spec.Cells) != 1 || spec.Cells[0].L2Slices != 4 {
		t.Errorf("cell did not inherit L2Slices: %+v", spec.Cells)
	}
}

// TestNormalizeL2SlicesRequiresSharded: slicing is a property of the
// sharded barrier, so a sliced cell on the serial engine is a spec error —
// the submitter must pick the engine explicitly rather than silently get
// monolithic numbers under a sliced label.
func TestNormalizeL2SlicesRequiresSharded(t *testing.T) {
	spec := JobSpec{Benchmarks: []string{"bfs"}, Configs: []string{"baseline"}, L2Slices: 4}
	err := spec.Normalize()
	if err == nil {
		t.Fatal("Normalize accepted l2_slices 4 with cell_parallel < 2")
	}
	if !strings.Contains(err.Error(), "l2_slices") {
		t.Errorf("error does not name l2_slices: %v", err)
	}
}
