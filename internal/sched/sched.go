package sched

import (
	"gputlb/internal/arch"
	"gputlb/internal/stats"
)

// SMStatus is one entry of the scheduler's view: free TB slots plus the
// <hits, total> pair the SM publishes to the scheduler's 16-entry table.
type SMStatus struct {
	FreeSlots int
	TLBHits   int64
	TLBTotal  int64
}

// missRate returns the SM's instantaneous L1 TLB miss rate.
func (s SMStatus) missRate() float64 {
	if s.TLBTotal == 0 {
		return 0
	}
	return 1 - float64(s.TLBHits)/float64(s.TLBTotal)
}

// Stats counts scheduling decisions. Policies own one and register it into
// the simulator's stats tree via RegisterStats.
type Stats struct {
	// Picks counts TB placements; Exhausted counts Pick calls that found no
	// SM with a free slot.
	Picks     int64
	Exhausted int64
	// Skips counts SMs passed over for thrashing; Fallbacks counts TLB-aware
	// picks that fell back to plain round-robin (both 0 under round-robin).
	Skips     int64
	Fallbacks int64
}

// RegisterStats registers the decision counters into r.
func (s *Stats) RegisterStats(r *stats.Registry) {
	r.CounterFunc("picks", func() int64 { return s.Picks })
	r.CounterFunc("exhausted", func() int64 { return s.Exhausted })
	r.CounterFunc("skips", func() int64 { return s.Skips })
	r.CounterFunc("fallbacks", func() int64 { return s.Fallbacks })
}

// Policy picks the SM that receives the next TB. Pick returns the SM index,
// or -1 when no SM has a free slot. cursor is the round-robin position after
// the previous dispatch (the policy owns advancing it).
type Policy interface {
	Name() string
	Pick(sms []SMStatus, cursor int) (sm int, nextCursor int)
	// Stats exposes the policy's decision counters.
	Stats() *Stats
}

// NewPolicy constructs the policy for a configuration.
func NewPolicy(p arch.TBSchedulerPolicy) Policy {
	if p == arch.ScheduleTLBAware {
		return &TLBAware{}
	}
	return &RoundRobin{}
}

// pickRoundRobin is the cursor-advancing round-robin scan shared by both
// policies: the first SM at or after cursor with a free slot.
func pickRoundRobin(sms []SMStatus, cursor int) (int, int) {
	n := len(sms)
	for i := 0; i < n; i++ {
		sm := (cursor + i) % n
		if sms[sm].FreeSlots > 0 {
			return sm, (sm + 1) % n
		}
	}
	return -1, cursor
}

// RoundRobin is the baseline GPU TB scheduler: SMs are visited cyclically
// and a TB lands on the first one with a free slot.
type RoundRobin struct{ stats Stats }

// Name implements Policy.
func (*RoundRobin) Name() string { return arch.ScheduleRoundRobin.String() }

// Stats implements Policy.
func (p *RoundRobin) Stats() *Stats { return &p.stats }

// Pick implements Policy.
func (p *RoundRobin) Pick(sms []SMStatus, cursor int) (int, int) {
	sm, next := pickRoundRobin(sms, cursor)
	if sm < 0 {
		p.stats.Exhausted++
	} else {
		p.stats.Picks++
	}
	return sm, next
}

// warmup is the minimum number of TLB accesses before an SM's miss rate is
// considered meaningful; cold SMs are always eligible.
const warmup = 64

// TLBAware is the thrashing-aware scheduler: among SMs with capacity it
// prefers, in round-robin order, the first whose miss rate is not above the
// mean across SMs; if every SM with capacity is thrashing worse than
// average, it falls back to plain round-robin. It never throttles: a TB is
// always placed if any SM has a free slot.
type TLBAware struct{ stats Stats }

// Name implements Policy.
func (*TLBAware) Name() string { return arch.ScheduleTLBAware.String() }

// Stats implements Policy.
func (p *TLBAware) Stats() *Stats { return &p.stats }

// Pick implements Policy.
func (p *TLBAware) Pick(sms []SMStatus, cursor int) (int, int) {
	n := len(sms)
	var sum float64
	samples := 0
	for _, s := range sms {
		if s.TLBTotal >= warmup {
			sum += s.missRate()
			samples++
		}
	}
	if samples > 0 {
		// An SM is skipped only when it misses clearly more than average —
		// the margin keeps uniform workloads on the round-robin path
		// instead of chasing measurement noise.
		const margin = 0.05
		threshold := sum/float64(samples) + margin
		for i := 0; i < n; i++ {
			sm := (cursor + i) % n
			s := sms[sm]
			if s.FreeSlots == 0 {
				continue
			}
			if s.TLBTotal < warmup || s.missRate() <= threshold {
				p.stats.Picks++
				return sm, (sm + 1) % n
			}
			p.stats.Skips++
		}
		// Every SM with capacity is thrashing worse than average.
		p.stats.Fallbacks++
	}
	sm, next := pickRoundRobin(sms, cursor)
	if sm < 0 {
		p.stats.Exhausted++
	} else {
		p.stats.Picks++
	}
	return sm, next
}
