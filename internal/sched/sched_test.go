package sched

import (
	"testing"
	"testing/quick"

	"gputlb/internal/arch"
)

func TestNewPolicy(t *testing.T) {
	if NewPolicy(arch.ScheduleRoundRobin).Name() != "round-robin" {
		t.Error("wrong policy for round-robin")
	}
	if NewPolicy(arch.ScheduleTLBAware).Name() != "tlb-aware" {
		t.Error("wrong policy for tlb-aware")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	sms := []SMStatus{{FreeSlots: 1}, {FreeSlots: 1}, {FreeSlots: 1}}
	var p RoundRobin
	cursor := 0
	var picks []int
	for i := 0; i < 6; i++ {
		var sm int
		sm, cursor = p.Pick(sms, cursor)
		picks = append(picks, sm)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v, want %v", picks, want)
		}
	}
}

func TestRoundRobinSkipsFullSMs(t *testing.T) {
	sms := []SMStatus{{FreeSlots: 0}, {FreeSlots: 0}, {FreeSlots: 2}}
	sm, next := (&RoundRobin{}).Pick(sms, 0)
	if sm != 2 {
		t.Errorf("picked %d, want 2 (only SM with capacity)", sm)
	}
	if next != 0 {
		t.Errorf("cursor = %d, want 0", next)
	}
}

func TestRoundRobinAllFull(t *testing.T) {
	sms := []SMStatus{{FreeSlots: 0}, {FreeSlots: 0}}
	sm, _ := (&RoundRobin{}).Pick(sms, 1)
	if sm != -1 {
		t.Errorf("picked %d with no capacity anywhere, want -1", sm)
	}
}

func TestTLBAwareAvoidsThrashingSM(t *testing.T) {
	// SM 0 thrashing (90% miss), SM 1 healthy (10% miss). Cursor at 0: the
	// aware policy must skip SM 0 even though round-robin would take it.
	sms := []SMStatus{
		{FreeSlots: 1, TLBHits: 10, TLBTotal: 100},
		{FreeSlots: 1, TLBHits: 90, TLBTotal: 100},
	}
	sm, _ := (&TLBAware{}).Pick(sms, 0)
	if sm != 1 {
		t.Errorf("picked %d, want 1 (low miss rate)", sm)
	}
	if rr, _ := (&RoundRobin{}).Pick(sms, 0); rr != 0 {
		t.Errorf("baseline sanity: round-robin picked %d, want 0", rr)
	}
}

func TestTLBAwareFallsBackWhenLowMissSMsFull(t *testing.T) {
	// The only SM with capacity has an above-average miss rate: the policy
	// must still place the TB there (never throttle).
	sms := []SMStatus{
		{FreeSlots: 0, TLBHits: 95, TLBTotal: 100},
		{FreeSlots: 1, TLBHits: 5, TLBTotal: 100},
	}
	sm, _ := (&TLBAware{}).Pick(sms, 0)
	if sm != 1 {
		t.Errorf("picked %d, want 1 (fallback must not throttle)", sm)
	}
}

func TestTLBAwareColdSMsEligible(t *testing.T) {
	// An SM below the warmup sample count is always eligible.
	sms := []SMStatus{
		{FreeSlots: 1, TLBHits: 1, TLBTotal: 10}, // cold
		{FreeSlots: 1, TLBHits: 50, TLBTotal: 100},
	}
	sm, _ := (&TLBAware{}).Pick(sms, 0)
	if sm != 0 {
		t.Errorf("picked %d, want 0 (cold SM eligible)", sm)
	}
}

func TestTLBAwareAllColdBehavesLikeRoundRobin(t *testing.T) {
	sms := make([]SMStatus, 4)
	for i := range sms {
		sms[i].FreeSlots = 1
	}
	aware := &TLBAware{}
	cursor := 0
	for want := 0; want < 4; want++ {
		var sm int
		sm, cursor = aware.Pick(sms, cursor)
		if sm != want {
			t.Fatalf("cold-start pick = %d, want %d (round-robin order)", sm, want)
		}
	}
}

// Property: both policies return -1 iff no SM has capacity, and otherwise a
// valid index of an SM with capacity.
func TestPolicyValidityProperty(t *testing.T) {
	policies := []Policy{&RoundRobin{}, &TLBAware{}}
	f := func(free []uint8, hits []uint8, cursorRaw uint8) bool {
		if len(free) == 0 {
			return true
		}
		if len(free) > 16 {
			free = free[:16]
		}
		sms := make([]SMStatus, len(free))
		anyFree := false
		for i := range sms {
			sms[i].FreeSlots = int(free[i]) % 3
			if sms[i].FreeSlots > 0 {
				anyFree = true
			}
			if i < len(hits) {
				sms[i].TLBTotal = 100
				sms[i].TLBHits = int64(hits[i]) % 101
			}
		}
		cursor := int(cursorRaw) % len(sms)
		for _, p := range policies {
			sm, next := p.Pick(sms, cursor)
			if anyFree {
				if sm < 0 || sm >= len(sms) || sms[sm].FreeSlots == 0 {
					return false
				}
				if next < 0 || next >= len(sms) {
					return false
				}
			} else if sm != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTLBAwarePrefersLeastThrashingAmongSeveral(t *testing.T) {
	// Three SMs with capacity at miss rates 80%, 40%, 60%; threshold is the
	// mean (60%) plus margin. From cursor 0, SM 0 is skipped (80% > 65%)
	// and SM 1 (40%) is taken.
	sms := []SMStatus{
		{FreeSlots: 1, TLBHits: 20, TLBTotal: 100},
		{FreeSlots: 1, TLBHits: 60, TLBTotal: 100},
		{FreeSlots: 1, TLBHits: 40, TLBTotal: 100},
	}
	sm, next := (&TLBAware{}).Pick(sms, 0)
	if sm != 1 {
		t.Errorf("picked SM %d, want 1", sm)
	}
	if next != 2 {
		t.Errorf("cursor advanced to %d, want 2", next)
	}
}

func TestTLBAwareMarginToleratesNoise(t *testing.T) {
	// Near-identical miss rates: the first free SM in round-robin order
	// must win (no noise-chasing).
	sms := []SMStatus{
		{FreeSlots: 1, TLBHits: 49, TLBTotal: 100},
		{FreeSlots: 1, TLBHits: 52, TLBTotal: 100},
	}
	if sm, _ := (&TLBAware{}).Pick(sms, 0); sm != 0 {
		t.Errorf("picked %d, want 0 (within the noise margin)", sm)
	}
}
