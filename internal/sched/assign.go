package sched

import "fmt"

// SMAssignment selects how a multi-tenant run divides the GPU's SMs among
// co-running tenants. It is orthogonal to the per-tenant TB scheduling
// policy, which picks among the SMs an assignment grants a tenant.
type SMAssignment int

const (
	// AssignSpatial gives each tenant a contiguous block of SMs: tenant i of
	// t gets SMs [i*n/t, (i+1)*n/t). Compute is fully isolated; only the
	// memory system (L2 TLB, walkers, NoC, DRAM) is shared.
	AssignSpatial SMAssignment = iota
	// AssignInterleaved stripes SMs across tenants: SM j goes to tenant
	// j mod t. The split is as even as spatial but neighbouring SMs serve
	// different tenants, which matters to NoC locality.
	AssignInterleaved
	// AssignShared gives every tenant every SM; tenants compete for TB
	// slots on each SM and their warps time-share the issue stages.
	AssignShared
)

// String implements fmt.Stringer.
func (a SMAssignment) String() string {
	switch a {
	case AssignSpatial:
		return "spatial"
	case AssignInterleaved:
		return "interleaved"
	case AssignShared:
		return "shared"
	default:
		return fmt.Sprintf("SMAssignment(%d)", int(a))
	}
}

// ParseSMAssignment maps an assignment name back to its value.
func ParseSMAssignment(name string) (SMAssignment, error) {
	switch name {
	case "spatial":
		return AssignSpatial, nil
	case "interleaved":
		return AssignInterleaved, nil
	case "shared":
		return AssignShared, nil
	}
	return 0, fmt.Errorf("sched: unknown SM assignment %q", name)
}

// AssignSMs partitions numSMs SMs among tenants under the given assignment,
// returning one sorted SM-id list per tenant. Spatial and interleaved
// assignments are disjoint and cover every SM (so no SM idles); shared
// returns the full range for every tenant. It panics when tenants < 1 or a
// disjoint assignment has more tenants than SMs.
func AssignSMs(a SMAssignment, numSMs, tenants int) [][]int {
	if tenants < 1 {
		panic("sched: AssignSMs with no tenants")
	}
	if a != AssignShared && tenants > numSMs {
		panic(fmt.Sprintf("sched: cannot split %d SMs among %d tenants", numSMs, tenants))
	}
	out := make([][]int, tenants)
	switch a {
	case AssignSpatial:
		for i := range out {
			lo, hi := i*numSMs/tenants, (i+1)*numSMs/tenants
			ids := make([]int, 0, hi-lo)
			for sm := lo; sm < hi; sm++ {
				ids = append(ids, sm)
			}
			out[i] = ids
		}
	case AssignInterleaved:
		for i := range out {
			out[i] = make([]int, 0, (numSMs+tenants-1-i)/tenants)
		}
		for sm := 0; sm < numSMs; sm++ {
			t := sm % tenants
			out[t] = append(out[t], sm)
		}
	default: // AssignShared
		all := make([]int, numSMs)
		for sm := range all {
			all[sm] = sm
		}
		for i := range out {
			ids := make([]int, numSMs)
			copy(ids, all)
			out[i] = ids
		}
	}
	return out
}
