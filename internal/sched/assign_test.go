package sched

import (
	"reflect"
	"testing"
)

func TestAssignSpatialBlocks(t *testing.T) {
	got := AssignSMs(AssignSpatial, 16, 2)
	want := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{8, 9, 10, 11, 12, 13, 14, 15},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spatial 16/2 = %v, want %v", got, want)
	}
	// Uneven split still covers every SM exactly once.
	got = AssignSMs(AssignSpatial, 16, 3)
	seen := map[int]int{}
	total := 0
	for _, ids := range got {
		total += len(ids)
		for _, sm := range ids {
			seen[sm]++
		}
	}
	if total != 16 || len(seen) != 16 {
		t.Errorf("spatial 16/3 not a partition: %v", got)
	}
}

func TestAssignInterleavedStripes(t *testing.T) {
	got := AssignSMs(AssignInterleaved, 8, 3)
	want := [][]int{{0, 3, 6}, {1, 4, 7}, {2, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("interleaved 8/3 = %v, want %v", got, want)
	}
}

func TestAssignSharedGivesEveryoneEverything(t *testing.T) {
	got := AssignSMs(AssignShared, 4, 3)
	want := []int{0, 1, 2, 3}
	for i, ids := range got {
		if !reflect.DeepEqual(ids, want) {
			t.Errorf("shared tenant %d = %v, want %v", i, ids, want)
		}
	}
	// The lists must be independent copies, not an aliased slice.
	got[0][0] = 99
	if got[1][0] == 99 {
		t.Error("shared assignment aliases one slice across tenants")
	}
}

func TestAssignSMsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero tenants", func() { AssignSMs(AssignSpatial, 16, 0) })
	mustPanic("more tenants than SMs", func() { AssignSMs(AssignSpatial, 2, 3) })
	// Shared has no disjointness constraint.
	if got := AssignSMs(AssignShared, 2, 3); len(got) != 3 {
		t.Errorf("shared 2/3 = %d tenants, want 3", len(got))
	}
}

func TestSMAssignmentStrings(t *testing.T) {
	for _, a := range []SMAssignment{AssignSpatial, AssignInterleaved, AssignShared} {
		back, err := ParseSMAssignment(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v -> %q -> %v, %v", a, a.String(), back, err)
		}
	}
	if _, err := ParseSMAssignment("diagonal"); err == nil {
		t.Error("unknown assignment name accepted")
	}
}
