// Package sched implements the thread-block schedulers: the baseline
// round-robin dispatcher and the thrashing-aware scheduler of paper
// Section IV-A, which consults a hardware table of per-SM
// <TLBhits, TLBtotal> counters and steers new TBs toward SMs with low
// instantaneous L1 TLB miss rates, falling back to round-robin when no
// low-miss-rate SM has capacity.
package sched
