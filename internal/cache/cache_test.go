package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gputlb/internal/arch"
)

func small() *Cache {
	return New(arch.CacheConfig{SizeBytes: 2048, LineBytes: 128, Assoc: 4, HitLatency: 28}) // 4 sets
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(10) {
		t.Error("cold access hit")
	}
	if !c.Access(10) {
		t.Error("warm access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", s.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 sets, 4 ways; lines ≡ 0 mod 4 share set 0
	for i := 0; i < 4; i++ {
		c.Access(LineAddr(4 * i))
	}
	c.Access(0)  // make line 0 MRU
	c.Access(16) // evicts LRU = line 4
	if c.Contains(4) {
		t.Error("LRU victim still present")
	}
	for _, want := range []LineAddr{0, 8, 12, 16} {
		if !c.Contains(want) {
			t.Errorf("line %d missing", want)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// 1536KB L2 shape: 1536 sets. Distinct lines must spread without panics.
	c := New(arch.CacheConfig{SizeBytes: 1536 << 10, LineBytes: 128, Assoc: 8, HitLatency: 120})
	for i := 0; i < 5000; i++ {
		c.Access(LineAddr(i))
	}
	if got := c.Occupancy(); got != 5000 {
		t.Errorf("occupancy = %d, want 5000 (capacity 12288)", got)
	}
	for i := 0; i < 5000; i++ {
		if !c.Access(LineAddr(i)) {
			t.Fatalf("line %d evicted below capacity", i)
		}
	}
}

func TestFlushAndReset(t *testing.T) {
	c := small()
	c.Access(1)
	c.Flush()
	if c.Occupancy() != 0 {
		t.Error("Flush left lines valid")
	}
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

// Property: the cache tracks a bounded-capacity set model — after any access
// sequence, every line reported by Contains was accessed at some point, and
// occupancy never exceeds capacity.
func TestCacheBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := small()
		touched := make(map[LineAddr]bool)
		for i := 0; i < 600; i++ {
			a := LineAddr(rng.Intn(64))
			c.Access(a)
			touched[a] = true
		}
		if c.Occupancy() > 16 {
			return false
		}
		for a := LineAddr(0); a < 64; a++ {
			if c.Contains(a) && !touched[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than one set's ways never misses after
// the cold pass, regardless of access order (true LRU has no pathologies
// within capacity).
func TestLRUWithinCapacityProperty(t *testing.T) {
	f := func(order []uint8) bool {
		c := small()
		lines := []LineAddr{0, 4, 8, 12} // all in set 0, exactly 4 ways
		for _, l := range lines {
			c.Access(l)
		}
		for _, o := range order {
			if !c.Access(lines[int(o)%len(lines)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
