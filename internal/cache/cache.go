package cache

import (
	"gputlb/internal/arch"
	"gputlb/internal/stats"
)

// LineAddr identifies a cache line (byte address >> line shift).
type LineAddr uint64

// Stats counts cache activity.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns Hits/Accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	valid bool
	tag   LineAddr
	stamp uint64
}

// Cache is one cache level. Not safe for concurrent use.
type Cache struct {
	cfg   arch.CacheConfig
	sets  [][]line
	clock uint64
	stats Stats
}

// New builds a cache from a validated config.
func New(cfg arch.CacheConfig) *Cache {
	c := &Cache{cfg: cfg}
	n := cfg.Sets()
	c.sets = make([][]line, n)
	backing := make([]line, n*cfg.Assoc)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return c
}

// Config returns the geometry.
func (c *Cache) Config() arch.CacheConfig { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// RegisterStats registers the cache's counters and rates into r; values are
// read lazily at snapshot time.
func (c *Cache) RegisterStats(r *stats.Registry) {
	r.CounterFunc("accesses", func() int64 { return c.stats.Accesses })
	r.CounterFunc("hits", func() int64 { return c.stats.Hits })
	r.CounterFunc("misses", func() int64 { return c.stats.Misses })
	r.CounterFunc("evictions", func() int64 { return c.stats.Evictions })
	r.GaugeFunc("hit_rate", func() float64 { return c.stats.HitRate() })
	r.GaugeFunc("occupancy", func() float64 { return float64(c.Occupancy()) })
}

// ResetStats zeroes counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setOf maps a line to its set. Set counts need not be powers of two (the
// 1536KB L2 has 1536 sets), so this uses modulo, not masking.
func (c *Cache) setOf(addr LineAddr) int { return int(addr % LineAddr(len(c.sets))) }

// Access looks up the line, allocating it on a miss (evicting LRU if the set
// is full). It reports whether the access hit.
func (c *Cache) Access(addr LineAddr) bool {
	c.clock++
	c.stats.Accesses++
	set := c.sets[c.setOf(addr)]
	victim := 0
	best := ^uint64(0)
	for w := range set {
		l := &set[w]
		if l.valid && l.tag == addr {
			l.stamp = c.clock
			c.stats.Hits++
			return true
		}
		if !l.valid {
			if best != 0 { // prefer any invalid way
				best = 0
				victim = w
			}
			continue
		}
		if l.stamp < best {
			best = l.stamp
			victim = w
		}
	}
	c.stats.Misses++
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = line{valid: true, tag: addr, stamp: c.clock}
	return false
}

// Contains reports presence without disturbing LRU or stats.
func (c *Cache) Contains(addr LineAddr) bool {
	for _, l := range c.sets[c.setOf(addr)] {
		if l.valid && l.tag == addr {
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.valid {
				n++
			}
		}
	}
	return n
}

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for si := range c.sets {
		for w := range c.sets[si] {
			c.sets[si][w] = line{}
		}
	}
}
