package cache

import (
	"gputlb/internal/arch"
	"gputlb/internal/stats"
)

// LineAddr identifies a cache line (byte address >> line shift).
type LineAddr uint64

// invalidTag marks an empty way. Real line addresses are byte addresses
// shifted right by the line size, so the all-ones pattern can never occur.
const invalidTag = ^LineAddr(0)

// Stats counts cache activity.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns Hits/Accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is one cache level. Not safe for concurrent use.
//
// Tags and LRU stamps live in flat parallel arrays rather than per-set
// structs: a probe scans the set's ways as one contiguous run of words, so
// the common hit path touches a single host cache line. The stamp array is
// only read when choosing a victim and written on hits.
type Cache struct {
	cfg    arch.CacheConfig
	assoc  int
	nsets  int
	tags   []LineAddr // nsets*assoc; invalidTag marks an empty way
	stamps []uint64   // nsets*assoc; LRU clock of the last touch
	clock  uint64
	stats  Stats
}

// New builds a cache from a validated config.
func New(cfg arch.CacheConfig) *Cache {
	n := cfg.Sets()
	c := &Cache{
		cfg:    cfg,
		assoc:  cfg.Assoc,
		nsets:  n,
		tags:   make([]LineAddr, n*cfg.Assoc),
		stamps: make([]uint64, n*cfg.Assoc),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the geometry.
func (c *Cache) Config() arch.CacheConfig { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// RegisterStats registers the cache's counters and rates into r; values are
// read lazily at snapshot time.
func (c *Cache) RegisterStats(r *stats.Registry) {
	r.CounterFunc("accesses", func() int64 { return c.stats.Accesses })
	r.CounterFunc("hits", func() int64 { return c.stats.Hits })
	r.CounterFunc("misses", func() int64 { return c.stats.Misses })
	r.CounterFunc("evictions", func() int64 { return c.stats.Evictions })
	r.GaugeFunc("hit_rate", func() float64 { return c.stats.HitRate() })
	r.GaugeFunc("occupancy", func() float64 { return float64(c.Occupancy()) })
}

// ResetStats zeroes counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// AddStats folds externally accumulated counters (an address slice's
// sub-cache) into this cache's stats so one registered stats node reports
// the combined activity.
func (c *Cache) AddStats(s Stats) {
	c.stats.Accesses += s.Accesses
	c.stats.Hits += s.Hits
	c.stats.Misses += s.Misses
	c.stats.Evictions += s.Evictions
}

// setOf maps a line to its set. Set counts need not be powers of two (the
// 1536KB L2 has 1536 sets), so this uses modulo, not masking.
func (c *Cache) setOf(addr LineAddr) int { return int(addr % LineAddr(c.nsets)) }

// Access looks up the line, allocating it on a miss (evicting LRU if the set
// is full). It reports whether the access hit.
func (c *Cache) Access(addr LineAddr) bool {
	c.clock++
	c.stats.Accesses++
	base := c.setOf(addr) * c.assoc
	tags := c.tags[base : base+c.assoc]
	for w := range tags {
		if tags[w] == addr {
			c.stamps[base+w] = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	// Victim: the first empty way if any, else the least recently used.
	victim := 0
	best := ^uint64(0)
	for w := range tags {
		if tags[w] == invalidTag {
			victim = w
			best = 0
			break
		}
		if s := c.stamps[base+w]; s < best {
			best = s
			victim = w
		}
	}
	if best != 0 {
		c.stats.Evictions++
	}
	c.tags[base+victim] = addr
	c.stamps[base+victim] = c.clock
	return false
}

// Contains reports presence without disturbing LRU or stats.
func (c *Cache) Contains(addr LineAddr) bool {
	base := c.setOf(addr) * c.assoc
	for _, tg := range c.tags[base : base+c.assoc] {
		if tg == addr {
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, tg := range c.tags {
		if tg != invalidTag {
			n++
		}
	}
	return n
}

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.stamps[i] = 0
	}
}
