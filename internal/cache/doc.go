// Package cache provides the set-associative data caches of the simulated
// GPU memory hierarchy (per-SM VIPT L1, shared sliced L2). Only the timing-
// relevant behaviour is modelled: presence, LRU replacement, and hit/miss
// statistics; data values are never stored.
package cache
