// Package parallel is the bounded worker-pool runner beneath every
// grid-shaped experiment sweep. A sweep is a list of independent cells —
// pure functions of their input index — executed concurrently by a fixed
// number of workers. Results are reassembled in input order, so a parallel
// run is bit-identical to a sequential one; a failed cell is captured with
// its index and context instead of aborting the remaining cells, and
// cancelling the context stops the scheduling of new cells promptly.
package parallel
