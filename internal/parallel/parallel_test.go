package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesInputOrder(t *testing.T) {
	n := 200
	out, err := Map(context.Background(), Options{Workers: 8}, n,
		func(_ context.Context, i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Duration(i%5) * time.Millisecond)
			}
			return i * i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), Options{Workers: workers}, 64,
		func(_ context.Context, i int) (struct{}, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

// TestMapRecordsInterleavings runs a cell function that records its
// invocation interleavings in shared state; under -race this verifies the
// pool's synchronization, and afterwards every cell must have run exactly
// once.
func TestMapRecordsInterleavings(t *testing.T) {
	n := 128
	var (
		mu     sync.Mutex
		events []int
	)
	_, err := Map(context.Background(), Options{Workers: runtime.GOMAXPROCS(0)}, n,
		func(_ context.Context, i int) (int, error) {
			mu.Lock()
			events = append(events, i)
			mu.Unlock()
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, e := range events {
		seen[e]++
	}
	if len(events) != n {
		t.Fatalf("recorded %d invocations, want %d", len(events), n)
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Errorf("cell %d ran %d times, want exactly once", i, seen[i])
		}
	}
}

func TestMapCapturesCellErrors(t *testing.T) {
	bad := map[int]bool{3: true, 11: true}
	out, err := Map(context.Background(), Options{Workers: 4}, 16,
		func(_ context.Context, i int) (int, error) {
			if bad[i] {
				return 0, fmt.Errorf("workload %d [configX]: boom", i)
			}
			return i + 1, nil
		})
	if err == nil {
		t.Fatal("expected aggregate error")
	}
	var es Errors
	if !errors.As(err, &es) {
		t.Fatalf("error %T does not expose Errors", err)
	}
	if len(es) != 2 || es[0].Index != 3 || es[1].Index != 11 {
		t.Fatalf("failures = %+v, want indices 3 and 11 in order", es)
	}
	for _, e := range es {
		if e.Err == nil || e.Error() == "" {
			t.Errorf("cell error missing context: %+v", e)
		}
	}
	// The sweep did not abort: every healthy cell still produced its result.
	for i, v := range out {
		if bad[i] {
			continue
		}
		if v != i+1 {
			t.Errorf("out[%d] = %d, want %d (healthy cells must complete)", i, v, i+1)
		}
	}
}

func TestMapCancellationStopsSchedulingPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	n := 10000
	_, err := Map(ctx, Options{
		Workers: 2,
		Progress: func(done, total int) {
			if done == 5 {
				cancel()
			}
		},
	}, n, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most the cells dispatched before the cancel plus one queued per
	// worker may run; with 2 workers and a cancel at 5 completions the
	// count must stay far below n.
	if s := started.Load(); s >= int64(n)/10 {
		t.Errorf("%d cells started after cancellation, want prompt stop", s)
	}
}

func TestMapProgressMonotonic(t *testing.T) {
	n := 50
	var calls []int
	_, err := Map(context.Background(), Options{
		Workers: 8,
		// Progress calls are serialized by the pool; appending without
		// extra locking is safe and -race enforces it.
		Progress: func(done, total int) {
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			calls = append(calls, done)
		},
	}, n, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("progress called %d times, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress[%d] = %d, want %d", i, d, i+1)
		}
	}
}

func TestMapZeroCells(t *testing.T) {
	out, err := Map(context.Background(), Options{}, 0,
		func(_ context.Context, i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("zero-cell sweep: out=%v err=%v", out, err)
	}
}

func TestMapNilContextAndDefaultWorkers(t *testing.T) {
	out, err := Map(nil, Options{}, 5, //lint:ignore SA1012 nil means Background by contract
		func(ctx context.Context, i int) (int, error) {
			if ctx == nil {
				return 0, errors.New("nil ctx passed to cell")
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
