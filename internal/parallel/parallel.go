package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Options configures a Map run.
type Options struct {
	// Workers bounds how many cells execute concurrently. Zero or
	// negative means runtime.GOMAXPROCS(0); one degenerates to a
	// sequential sweep.
	Workers int
	// Progress, when non-nil, is called after each cell finishes with
	// the number of completed cells and the total. Calls are serialized
	// and done increases by exactly one per call.
	Progress func(done, total int)
}

// CellError records one failed cell of a sweep.
type CellError struct {
	Index int   // position of the cell in the input grid
	Err   error // the cell's error, wrapped with its workload/config context
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

func (e *CellError) Unwrap() error { return e.Err }

// Errors aggregates every failed cell of a sweep, ordered by cell index.
type Errors []*CellError

func (es Errors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	return fmt.Sprintf("%d cells failed; first: %v", len(es), es[0])
}

// Unwrap exposes the individual cell failures to errors.Is and errors.As.
func (es Errors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// Map runs n independent cells through a bounded worker pool and returns
// their results in input order, regardless of completion order. Every cell
// runs exactly once unless ctx is cancelled first. A failed cell becomes a
// CellError and the other cells still run; the aggregate Errors lists every
// failure ordered by index. On cancellation no new cells are scheduled,
// in-flight cells drain, and the returned error includes ctx.Err(). When
// Map returns a non-nil error the result slice is only partially filled
// (failed or unscheduled cells hold zero values).
func Map[T any](ctx context.Context, opt Options, n int, cell func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	var (
		mu    sync.Mutex
		done  int
		fails Errors
		wg    sync.WaitGroup
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := cell(ctx, i)
				mu.Lock()
				if err != nil {
					fails = append(fails, &CellError{Index: i, Err: err})
				} else {
					results[i] = r
				}
				done++
				if opt.Progress != nil {
					opt.Progress(done, n)
				}
				mu.Unlock()
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	sort.Slice(fails, func(a, b int) bool { return fails[a].Index < fails[b].Index })
	var err error
	if len(fails) > 0 {
		err = fails
	}
	if cerr := context.Cause(ctx); cerr != nil {
		if err != nil {
			err = errors.Join(cerr, err)
		} else {
			err = cerr
		}
	}
	return results, err
}
