package control

import (
	"fmt"
	"math/bits"
	"sort"
)

// Objective selects what the controller's hill-climbing step optimizes.
type Objective int

const (
	// ObjWeightedSpeedup steers resources toward the slot with the highest
	// translation pressure (stall cycles beyond the L1 TLB per retired
	// instruction): relieving the most-stalled tenant buys the largest
	// marginal throughput, which is what weighted speedup sums.
	ObjWeightedSpeedup Objective = iota
	// ObjFairness steers resources toward the slot making the least
	// progress (fewest instructions retired in the window), equalizing
	// per-tenant slowdown.
	ObjFairness
	// ObjMaxMin moves resources from the resource-richest slot to the
	// slowest one, maximizing the minimum per-tenant progress.
	ObjMaxMin
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjWeightedSpeedup:
		return "ws"
	case ObjFairness:
		return "fairness"
	case ObjMaxMin:
		return "maxmin"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective maps an objective name back to its value.
func ParseObjective(name string) (Objective, error) {
	switch name {
	case "ws", "weighted-speedup":
		return ObjWeightedSpeedup, nil
	case "fairness":
		return ObjFairness, nil
	case "maxmin", "max-min":
		return ObjMaxMin, nil
	}
	return 0, fmt.Errorf("control: unknown objective %q", name)
}

// Reason tags what triggered a controller decision.
type Reason int

const (
	// ReasonEpoch is the periodic tick: full samples are barrier-stable, so
	// the hill-climbing step runs.
	ReasonEpoch Reason = iota
	// ReasonArrival is a tenant admission; only the rebalance step runs.
	ReasonArrival
	// ReasonDeparture is a tenant completion; only the rebalance step runs.
	ReasonDeparture
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonEpoch:
		return "epoch"
	case ReasonArrival:
		return "arrival"
	case ReasonDeparture:
		return "departure"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Config tunes the controller. The zero value of any field falls back to
// the DefaultConfig value at New time (Frozen and Objective excepted: their
// zero values are meaningful).
type Config struct {
	// Period is the periodic decision interval in cycles.
	Period int64
	// Objective selects the hill-climbing goal.
	Objective Objective
	// MinGain is the hysteresis threshold: a move needs the receiver's
	// score to exceed the donor's by this relative margin.
	MinGain float64
	// MaxSetMoves and MaxSMMoves bound how many set chunks / SMs one
	// periodic decision may move.
	MaxSetMoves int
	MaxSMMoves  int
	// SetChunk is the number of L2 TLB sets one set move transfers
	// (0 = L2Sets/(4*Slots), at least 1).
	SetChunk int
	// Cooldown is the number of periodic decisions to rest after a
	// climbing move before climbing again.
	Cooldown int
	// Frozen disables every decision: the initial assignment is final.
	// A frozen controller must reproduce the static partition exactly.
	Frozen bool
}

// DefaultConfig returns the stock controller tuning.
func DefaultConfig() Config {
	return Config{
		Period:      4096,
		Objective:   ObjWeightedSpeedup,
		MinGain:     0.10,
		MaxSetMoves: 1,
		MaxSMMoves:  1,
		Cooldown:    1,
	}
}

// withDefaults resolves zero fields against DefaultConfig.
func (c Config) withDefaults(m Machine) Config {
	d := DefaultConfig()
	if c.Period <= 0 {
		c.Period = d.Period
	}
	if c.MinGain <= 0 {
		c.MinGain = d.MinGain
	}
	if c.MaxSetMoves <= 0 {
		c.MaxSetMoves = d.MaxSetMoves
	}
	if c.MaxSMMoves <= 0 {
		c.MaxSMMoves = d.MaxSMMoves
	}
	if c.Cooldown <= 0 {
		c.Cooldown = d.Cooldown
	}
	if c.SetChunk <= 0 {
		c.SetChunk = m.L2Sets / (4 * m.Slots)
		if c.SetChunk < 1 {
			c.SetChunk = 1
		}
	}
	return c
}

// Machine describes the partitionable hardware: admission slots (the
// MIG-like instance count), SMs, and L2 TLB sets (0 when set ownership is
// not under controller management).
type Machine struct {
	Slots  int
	NumSMs int
	L2Sets int
}

// Sample is one slot's counter snapshot at a decision point. Counters are
// cumulative since the start of the run; the controller differences
// consecutive periodic samples itself. Churn-triggered decisions ignore
// every counter field (they are not barrier-stable mid-epoch).
type Sample struct {
	Slot    int
	Active  bool
	SMs     int
	Sets    int
	TBsLeft int

	Insts    int64
	PageReqs int64
	L1Hits   int64
	L2Hits   int64
	Walks    int64
	Faults   int64

	StallL1    int64
	StallL2    int64
	StallWalk  int64
	StallFault int64
}

// Assignment is one full machine partition: SetBounds[i] to SetBounds[i+1]
// is slot i's contiguous L2 TLB set range (nil when sets are unmanaged;
// otherwise length Slots+1, from 0 to L2Sets), and SMs[i] is slot i's SM id
// list (sorted ascending).
type Assignment struct {
	SetBounds []int
	SMs       [][]int
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := Assignment{}
	if a.SetBounds != nil {
		out.SetBounds = append([]int(nil), a.SetBounds...)
	}
	out.SMs = make([][]int, len(a.SMs))
	for i, sms := range a.SMs {
		out.SMs[i] = append([]int(nil), sms...)
	}
	return out
}

// Decision records one assignment change.
type Decision struct {
	Cycle      int64
	Reason     Reason
	SetMoves   int
	SMMoves    int
	Rebalanced bool
	After      Assignment
}

// Stats tallies controller activity for the stats registry.
type Stats struct {
	Decisions  int64
	SetMoves   int64
	SMMoves    int64
	Rebalances int64
}

// Controller is the closed-loop repartitioner. Not safe for concurrent
// use; the simulator drives it from the barrier/serial event loop only.
type Controller struct {
	cfg Config
	m   Machine
	cur Assignment

	// setManaged / smManaged record which resources the controller may
	// move: sets need a full SetBounds partition, SMs need pairwise
	// disjoint slot lists (a shared SM assignment has nothing to move).
	setManaged bool
	smManaged  bool
	smIDs      []int // sorted union of all managed SM ids

	prev       []Sample
	havePrev   bool
	cooldown   int
	activeMask uint64

	decisions []Decision
	stats     Stats
}

// New builds a controller for machine m starting from the given initial
// assignment (EqualSplit for the stock equal partition). The assignment is
// cloned; Validate reports what makes one acceptable.
func New(cfg Config, m Machine, initial Assignment) (*Controller, error) {
	if m.Slots < 1 {
		return nil, fmt.Errorf("control: machine needs at least 1 slot, got %d", m.Slots)
	}
	if err := Validate(m, initial); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:        cfg.withDefaults(m),
		m:          m,
		cur:        initial.Clone(),
		setManaged: m.L2Sets > 0 && len(initial.SetBounds) == m.Slots+1,
		smManaged:  disjointSMs(initial.SMs),
	}
	for i := range c.cur.SMs {
		sort.Ints(c.cur.SMs[i])
	}
	if c.smManaged {
		for _, sms := range c.cur.SMs {
			c.smIDs = append(c.smIDs, sms...)
		}
		sort.Ints(c.smIDs)
	}
	return c, nil
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Machine returns the machine description.
func (c *Controller) Machine() Machine { return c.m }

// Assignment returns a clone of the current assignment.
func (c *Controller) Assignment() Assignment { return c.cur.Clone() }

// Decisions returns every assignment change so far, in decision order.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Last returns the most recent decision, if any.
func (c *Controller) Last() (Decision, bool) {
	if len(c.decisions) == 0 {
		return Decision{}, false
	}
	return c.decisions[len(c.decisions)-1], true
}

// Stats returns the activity tallies.
func (c *Controller) Stats() Stats { return c.stats }

// Decide runs one decision at the given cycle and returns the (possibly
// updated) assignment plus whether it changed. samples must hold one entry
// per slot, in slot order. Periodic decisions (ReasonEpoch) difference the
// samples against the previous periodic tick and hill-climb; churn
// decisions read only the Active flags and rebalance. The returned
// assignment aliases controller state — clone before retaining.
func (c *Controller) Decide(cycle int64, reason Reason, samples []Sample) (Assignment, bool) {
	if len(samples) != c.m.Slots {
		panic(fmt.Sprintf("control: %d samples for %d slots", len(samples), c.m.Slots))
	}
	mask := activeMask(samples)
	dec := Decision{Cycle: cycle, Reason: reason}
	changed := false

	if reason != ReasonEpoch {
		// Churn: counters are not barrier-stable mid-epoch, so the decision
		// is a pure function of the active-slot set. The periodic sample
		// history is left untouched.
		if !c.cfg.Frozen && mask != c.activeMask {
			dec.Rebalanced = c.rebalance(mask)
			changed = dec.Rebalanced
		}
		c.activeMask = mask
		return c.finish(dec, changed)
	}

	var deltas []Sample
	if c.havePrev {
		deltas = make([]Sample, len(samples))
		for i := range samples {
			deltas[i] = diffSample(samples[i], c.prev[i])
		}
	}
	c.prev = append(c.prev[:0], samples...)
	c.havePrev = true

	if !c.cfg.Frozen && mask != c.activeMask {
		dec.Rebalanced = c.rebalance(mask)
		changed = dec.Rebalanced
	}
	c.activeMask = mask

	if !c.cfg.Frozen && deltas != nil && bits.OnesCount64(mask) >= 2 && !dec.Rebalanced {
		if c.cooldown > 0 {
			c.cooldown--
		} else {
			dec.SetMoves, dec.SMMoves = c.climb(samples, deltas)
			if dec.SetMoves+dec.SMMoves > 0 {
				changed = true
				c.cooldown = c.cfg.Cooldown
			}
		}
	}
	return c.finish(dec, changed)
}

// finish records a change and returns the Decide result.
func (c *Controller) finish(dec Decision, changed bool) (Assignment, bool) {
	if changed {
		dec.After = c.cur.Clone()
		c.decisions = append(c.decisions, dec)
		c.stats.Decisions++
		c.stats.SetMoves += int64(dec.SetMoves)
		c.stats.SMMoves += int64(dec.SMMoves)
		if dec.Rebalanced {
			c.stats.Rebalances++
		}
	}
	return c.cur, changed
}

// rebalance redistributes the whole machine equally over the active slots:
// the i-th active slot (in slot order) gets the i-th contiguous share of
// the set space and of the sorted SM id list; inactive slots get nothing.
// With a single active slot this degenerates to the full machine. Reports
// whether anything changed.
func (c *Controller) rebalance(mask uint64) bool {
	k := bits.OnesCount64(mask)
	if k == 0 {
		return false
	}
	changed := false
	if c.setManaged {
		b := c.cur.SetBounds
		j, acc := 0, 0
		for i := 0; i < c.m.Slots; i++ {
			w := 0
			if mask&(1<<uint(i)) != 0 {
				w = (j+1)*c.m.L2Sets/k - j*c.m.L2Sets/k
				j++
			}
			acc += w
			if b[i+1] != acc {
				b[i+1] = acc
				changed = true
			}
		}
	}
	if c.smManaged {
		n := len(c.smIDs)
		j := 0
		for i := 0; i < c.m.Slots; i++ {
			var want []int
			if mask&(1<<uint(i)) != 0 {
				want = c.smIDs[j*n/k : (j+1)*n/k]
				j++
			}
			if !intsEqual(c.cur.SMs[i], want) {
				c.cur.SMs[i] = append(c.cur.SMs[i][:0], want...)
				changed = true
			}
		}
	}
	return changed
}

// climb runs the hill-climbing step on the periodic counter deltas,
// returning how many set chunks and SMs moved. Receiver and donor are
// chosen by the objective; a move happens only when the hysteresis gate
// passes and the donor keeps at least one set / one SM.
func (c *Controller) climb(samples, deltas []Sample) (setMoves, smMoves int) {
	for c.setManaged && setMoves < c.cfg.MaxSetMoves {
		recv, donor := c.pickPair(samples, deltas, true)
		if recv < 0 {
			break
		}
		width := c.cur.SetBounds[donor+1] - c.cur.SetBounds[donor]
		chunk := c.cfg.SetChunk
		if chunk > width-1 {
			chunk = width - 1
		}
		if chunk < 1 {
			break
		}
		c.moveSets(donor, recv, chunk)
		setMoves++
	}
	for c.smManaged && smMoves < c.cfg.MaxSMMoves {
		recv, donor := c.pickPair(samples, deltas, false)
		if recv < 0 {
			break
		}
		c.moveSM(donor, recv)
		smMoves++
	}
	return setMoves, smMoves
}

// pickPair selects (receiver, donor) for one move of the given resource,
// or (-1, -1) when no move passes the objective's gate. Ties break toward
// the lowest slot index, so the choice is deterministic.
func (c *Controller) pickPair(samples, deltas []Sample, sets bool) (recv, donor int) {
	resource := func(i int) int {
		if sets {
			return c.cur.SetBounds[i+1] - c.cur.SetBounds[i]
		}
		return len(c.cur.SMs[i])
	}
	// A receiver must be active with work left; a donor must be active and
	// keep at least one unit after donating.
	canRecv := func(i int) bool { return samples[i].Active && samples[i].TBsLeft > 0 }
	canDonate := func(i int) bool { return samples[i].Active && resource(i) > 1 }
	if sets {
		canDonate = func(i int) bool { return samples[i].Active && resource(i) > c.cfg.SetChunk }
	}

	recv, donor = -1, -1
	switch c.cfg.Objective {
	case ObjWeightedSpeedup:
		// Receiver: highest translation pressure; donor: lowest.
		for i := range deltas {
			if canRecv(i) && (recv < 0 || pressure(deltas[i]) > pressure(deltas[recv])) {
				recv = i
			}
		}
		for i := range deltas {
			if i == recv || !canDonate(i) {
				continue
			}
			if donor < 0 || pressure(deltas[i]) < pressure(deltas[donor]) {
				donor = i
			}
		}
		if recv < 0 || donor < 0 {
			return -1, -1
		}
		if pressure(deltas[recv]) <= pressure(deltas[donor])*(1+c.cfg.MinGain) {
			return -1, -1
		}
	case ObjFairness:
		// Receiver: least progress; donor: most.
		for i := range deltas {
			if canRecv(i) && (recv < 0 || deltas[i].Insts < deltas[recv].Insts) {
				recv = i
			}
		}
		for i := range deltas {
			if i == recv || !canDonate(i) {
				continue
			}
			if donor < 0 || deltas[i].Insts > deltas[donor].Insts {
				donor = i
			}
		}
		if recv < 0 || donor < 0 {
			return -1, -1
		}
		if float64(deltas[donor].Insts) <= float64(deltas[recv].Insts)*(1+c.cfg.MinGain) {
			return -1, -1
		}
	case ObjMaxMin:
		// Receiver: least progress; donor: most resources (ahead of the
		// receiver in progress, and at least as rich — so a move raises the
		// minimum and stops once the receiver is the richest slot).
		for i := range deltas {
			if canRecv(i) && (recv < 0 || deltas[i].Insts < deltas[recv].Insts) {
				recv = i
			}
		}
		for i := range deltas {
			if i == recv || !canDonate(i) {
				continue
			}
			if donor < 0 || resource(i) > resource(donor) {
				donor = i
			}
		}
		if recv < 0 || donor < 0 {
			return -1, -1
		}
		if resource(donor) < resource(recv) ||
			float64(deltas[donor].Insts) <= float64(deltas[recv].Insts)*(1+c.cfg.MinGain) {
			return -1, -1
		}
	}
	return recv, donor
}

// pressure is the hill-climbing signal: translation stall cycles beyond the
// L1 TLB per retired instruction in the window.
func pressure(d Sample) float64 {
	insts := d.Insts
	if insts < 1 {
		insts = 1
	}
	return float64(d.StallL2+d.StallWalk+d.StallFault) / float64(insts)
}

// moveSets transfers chunk sets from donor to recv by shifting the bounds
// between them; slots in between keep their widths (their windows slide).
func (c *Controller) moveSets(donor, recv, chunk int) {
	b := c.cur.SetBounds
	if donor < recv {
		for k := donor + 1; k <= recv; k++ {
			b[k] -= chunk
		}
	} else {
		for k := recv + 1; k <= donor; k++ {
			b[k] += chunk
		}
	}
}

// moveSM transfers one SM id from donor to recv: the donor's edge SM
// nearest the receiver's range, keeping both lists sorted.
func (c *Controller) moveSM(donor, recv int) {
	d := c.cur.SMs[donor]
	var id int
	if donor < recv {
		id = d[len(d)-1]
		c.cur.SMs[donor] = d[:len(d)-1]
	} else {
		id = d[0]
		c.cur.SMs[donor] = append(d[:0], d[1:]...)
	}
	r := c.cur.SMs[recv]
	pos := sort.SearchInts(r, id)
	r = append(r, 0)
	copy(r[pos+1:], r[pos:])
	r[pos] = id
	c.cur.SMs[recv] = r
}

// EqualSplit builds the stock initial assignment: contiguous equal shares
// of the sets and SM ids per slot.
func EqualSplit(m Machine) Assignment {
	a := Assignment{SMs: make([][]int, m.Slots)}
	if m.L2Sets > 0 {
		a.SetBounds = make([]int, m.Slots+1)
		for i := 0; i <= m.Slots; i++ {
			a.SetBounds[i] = i * m.L2Sets / m.Slots
		}
	}
	for i := 0; i < m.Slots; i++ {
		lo, hi := i*m.NumSMs/m.Slots, (i+1)*m.NumSMs/m.Slots
		for sm := lo; sm < hi; sm++ {
			a.SMs[i] = append(a.SMs[i], sm)
		}
	}
	return a
}

// Validate checks that a is a well-formed partition of m: SetBounds (when
// present) is a monotone cover of [0, L2Sets]; SMs has one list per slot
// with every id in range; and when the lists are pairwise disjoint their
// union covers every SM exactly once.
func Validate(m Machine, a Assignment) error {
	if a.SetBounds != nil {
		if len(a.SetBounds) != m.Slots+1 {
			return fmt.Errorf("control: SetBounds has %d entries, want %d", len(a.SetBounds), m.Slots+1)
		}
		if a.SetBounds[0] != 0 || a.SetBounds[m.Slots] != m.L2Sets {
			return fmt.Errorf("control: SetBounds spans [%d,%d], want [0,%d]",
				a.SetBounds[0], a.SetBounds[m.Slots], m.L2Sets)
		}
		for i := 0; i < m.Slots; i++ {
			if a.SetBounds[i+1] < a.SetBounds[i] {
				return fmt.Errorf("control: SetBounds not monotone at slot %d", i)
			}
		}
	}
	if len(a.SMs) != m.Slots {
		return fmt.Errorf("control: SMs has %d slots, want %d", len(a.SMs), m.Slots)
	}
	seen := make(map[int]bool)
	dup := false
	total := 0
	for i, sms := range a.SMs {
		for _, id := range sms {
			if id < 0 || id >= m.NumSMs {
				return fmt.Errorf("control: slot %d SM %d outside [0,%d)", i, id, m.NumSMs)
			}
			if seen[id] {
				dup = true
			}
			seen[id] = true
			total++
		}
	}
	if !dup && total > 0 && len(seen) != m.NumSMs {
		return fmt.Errorf("control: disjoint SM lists cover %d of %d SMs", len(seen), m.NumSMs)
	}
	return nil
}

// activeMask packs the samples' Active flags into a bitmask by slot.
func activeMask(samples []Sample) uint64 {
	var mask uint64
	for _, s := range samples {
		if s.Active {
			mask |= 1 << uint(s.Slot)
		}
	}
	return mask
}

// diffSample subtracts the counter fields (identity fields come from cur).
func diffSample(cur, prev Sample) Sample {
	d := cur
	d.Insts -= prev.Insts
	d.PageReqs -= prev.PageReqs
	d.L1Hits -= prev.L1Hits
	d.L2Hits -= prev.L2Hits
	d.Walks -= prev.Walks
	d.Faults -= prev.Faults
	d.StallL1 -= prev.StallL1
	d.StallL2 -= prev.StallL2
	d.StallWalk -= prev.StallWalk
	d.StallFault -= prev.StallFault
	return d
}

// disjointSMs reports whether the slot SM lists are pairwise disjoint.
func disjointSMs(sms [][]int) bool {
	seen := make(map[int]bool)
	for _, list := range sms {
		for _, id := range list {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
	}
	return len(seen) > 0
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
