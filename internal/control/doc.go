// Package control implements the closed-loop online partitioning
// controller of the multi-tenant simulator: an epoch-driven feedback loop
// that samples per-tenant translation metrics at the simulator's epoch
// barrier and repartitions the machine — L2 TLB set ownership and SM
// assignment — to maximize a configurable objective (weighted speedup,
// fairness, or max-min progress).
//
// The package is deliberately a leaf: it knows nothing about the simulator,
// the TLB, or the scheduler. The simulator feeds it Samples (plain counter
// snapshots per machine slot) and applies the Assignment it returns. Two
// kinds of decisions exist, matching what is deterministic at each trigger:
//
//   - Periodic decisions (ReasonEpoch) fire at fixed cycle multiples, where
//     the sharded engine has every shard paused at the exact tick cycle, so
//     counter deltas are bit-identical across worker counts and epoch
//     lengths. Only these run the hill-climbing step.
//   - Churn decisions (ReasonArrival, ReasonDeparture) fire mid-epoch,
//     where counters are not barrier-stable; they therefore ignore the
//     sample counters entirely and perform only the rebalance step, which
//     is a pure function of the active-slot set: redistribute the whole
//     machine equally over the active slots.
//
// Hill-climbing moves one resource chunk per decision at most (MaxSetMoves
// and MaxSMMoves bound it), requires the receiver's pressure to exceed the
// donor's by MinGain (hysteresis), and then rests for Cooldown periodic
// decisions, so the partition cannot oscillate. A Frozen controller never
// changes the initial assignment — the degenerate case that must reproduce
// the static-partition numbers exactly.
package control
