package control

import (
	"testing"
)

// mach is the stock test machine: 4 slots, 16 SMs, 32 L2 TLB sets —
// arch.Default geometry at the maximum grid tenancy.
var mach = Machine{Slots: 4, NumSMs: 16, L2Sets: 32}

// sampleSet builds one slot-ordered sample vector from per-slot (active,
// insts, stall) triples, filling the identity fields from the assignment.
func sampleSet(c *Controller, active []bool, insts, stall []int64) []Sample {
	m := c.Machine()
	a := c.Assignment()
	out := make([]Sample, m.Slots)
	for i := range out {
		out[i] = Sample{Slot: i, Active: active[i], SMs: len(a.SMs[i]), TBsLeft: 1}
		if a.SetBounds != nil {
			out[i].Sets = a.SetBounds[i+1] - a.SetBounds[i]
		}
		if i < len(insts) {
			out[i].Insts = insts[i]
		}
		if i < len(stall) {
			out[i].StallWalk = stall[i]
		}
	}
	return out
}

func TestEqualSplitValidates(t *testing.T) {
	for slots := 1; slots <= 4; slots++ {
		m := Machine{Slots: slots, NumSMs: 16, L2Sets: 32}
		if err := Validate(m, EqualSplit(m)); err != nil {
			t.Fatalf("EqualSplit(%d slots): %v", slots, err)
		}
	}
}

// TestPartitionInvariant drives the controller through a long mixed
// sequence of periodic and churn decisions with skewed counters and checks
// after every decision that the assignment is still a partition: no set
// unowned or doubly-owned, no SM lost or duplicated.
func TestPartitionInvariant(t *testing.T) {
	c, err := New(Config{Period: 100, Cooldown: 1}, mach, EqualSplit(mach))
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, true, true, true}
	var insts, stall [4]int64
	// Deterministic pseudo-random walk over counter growth and churn.
	x := uint64(12345)
	next := func(n uint64) uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x % n
	}
	cycle := int64(0)
	for step := 0; step < 500; step++ {
		cycle += 100
		reason := ReasonEpoch
		switch next(10) {
		case 0:
			reason = ReasonArrival
			active[next(4)] = true
		case 1:
			reason = ReasonDeparture
			// Keep at least one slot active.
			idx := int(next(4))
			active[idx] = false
			any := false
			for _, a := range active {
				any = any || a
			}
			if !any {
				active[idx] = true
			}
		}
		for i := range insts {
			insts[i] += int64(next(1000))
			stall[i] += int64(next(100000))
		}
		a, _ := c.Decide(cycle, reason, sampleSet(c, active, insts[:], stall[:]))
		if err := Validate(mach, a); err != nil {
			t.Fatalf("step %d (%s): %v", step, reason, err)
		}
		// Every set covered exactly once by construction of bounds; check
		// the active slots hold the whole machine when SMs are disjoint.
		total := 0
		for _, sms := range a.SMs {
			total += len(sms)
		}
		if total != mach.NumSMs {
			t.Fatalf("step %d: %d SMs assigned, want %d", step, total, mach.NumSMs)
		}
	}
}

// TestHysteresisBoundsMoves checks that one periodic decision never moves
// more than MaxSetMoves chunks / MaxSMMoves SMs, and that after a climbing
// move the controller rests for Cooldown periods.
func TestHysteresisBoundsMoves(t *testing.T) {
	cfg := Config{Period: 100, MaxSetMoves: 1, MaxSMMoves: 1, Cooldown: 2, MinGain: 0.05}
	c, err := New(cfg, mach, EqualSplit(mach))
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, true, true, true}
	var insts, stall [4]int64
	grow := func() {
		for i := range insts {
			insts[i] += 1000
		}
		stall[0] += 10_000_000 // slot 0 under massive translation pressure
	}
	// Prime the history.
	grow()
	c.Decide(100, ReasonEpoch, sampleSet(c, active, insts[:], stall[:]))
	lastMove := -10
	for step := 2; step < 20; step++ {
		grow()
		before := c.Assignment()
		_, changed := c.Decide(int64(step*100), ReasonEpoch, sampleSet(c, active, insts[:], stall[:]))
		if !changed {
			continue
		}
		d, _ := c.Last()
		if d.SetMoves > cfg.MaxSetMoves || d.SMMoves > cfg.MaxSMMoves {
			t.Fatalf("step %d: %d set moves / %d SM moves exceed the bounds", step, d.SetMoves, d.SMMoves)
		}
		// Chunk accounting: bounds moved by at most SetChunk per move.
		after := c.Assignment()
		for i := 1; i < len(after.SetBounds)-1; i++ {
			delta := after.SetBounds[i] - before.SetBounds[i]
			if delta < 0 {
				delta = -delta
			}
			if delta > c.Config().SetChunk*d.SetMoves {
				t.Fatalf("step %d: bound %d moved %d sets, chunk is %d", step, i, delta, c.Config().SetChunk)
			}
		}
		if lastMove >= 0 && step-lastMove <= cfg.Cooldown {
			t.Fatalf("step %d: climbed during cooldown (previous move at step %d)", step, lastMove)
		}
		lastMove = step
	}
	if lastMove < 0 {
		t.Fatal("pressure skew never triggered a move")
	}
}

// TestSingleActiveDegenerates checks that when every other tenant departs,
// the surviving slot is rebalanced to the full machine.
func TestSingleActiveDegenerates(t *testing.T) {
	c, err := New(Config{}, mach, EqualSplit(mach))
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, false, false, false}
	a, changed := c.Decide(500, ReasonDeparture, sampleSet(c, active, nil, nil))
	if !changed {
		t.Fatal("departure to a single active slot did not rebalance")
	}
	if got := a.SetBounds[1] - a.SetBounds[0]; got != mach.L2Sets {
		t.Fatalf("surviving slot owns %d sets, want all %d", got, mach.L2Sets)
	}
	if got := len(a.SMs[0]); got != mach.NumSMs {
		t.Fatalf("surviving slot owns %d SMs, want all %d", got, mach.NumSMs)
	}
	for i := 1; i < mach.Slots; i++ {
		if len(a.SMs[i]) != 0 || a.SetBounds[i+1] != a.SetBounds[i] {
			t.Fatalf("inactive slot %d still owns resources", i)
		}
	}
}

// TestFrozenNeverChanges checks that a frozen controller ignores pressure
// skew and churn alike.
func TestFrozenNeverChanges(t *testing.T) {
	c, err := New(Config{Frozen: true}, mach, EqualSplit(mach))
	if err != nil {
		t.Fatal(err)
	}
	initial := c.Assignment()
	active := []bool{true, true, true, true}
	var insts, stall [4]int64
	for step := 1; step <= 10; step++ {
		for i := range insts {
			insts[i] += 500
		}
		stall[2] += 1_000_000
		reason := ReasonEpoch
		if step == 5 {
			reason = ReasonDeparture
			active[3] = false
		}
		if _, changed := c.Decide(int64(step*100), reason, sampleSet(c, active, insts[:], stall[:])); changed {
			t.Fatalf("frozen controller changed the assignment at step %d", step)
		}
	}
	after := c.Assignment()
	if !intsEqual(initial.SetBounds, after.SetBounds) {
		t.Fatal("frozen controller mutated SetBounds")
	}
	if len(c.Decisions()) != 0 {
		t.Fatalf("frozen controller recorded %d decisions", len(c.Decisions()))
	}
}

// TestObjectivesSteerDifferently checks the objectives pick the intended
// receivers: weighted speedup follows translation pressure, fairness and
// max-min follow (lack of) progress.
func TestObjectivesSteerDifferently(t *testing.T) {
	run := func(obj Objective) Assignment {
		c, err := New(Config{Objective: obj, Cooldown: 1}, mach, EqualSplit(mach))
		if err != nil {
			t.Fatal(err)
		}
		active := []bool{true, true, true, true}
		var insts, stall [4]int64
		for step := 1; step <= 6; step++ {
			// Slot 1: high pressure but high progress. Slot 3: slow, no
			// pressure. Others nominal.
			insts[0] += 1000
			insts[1] += 2000
			insts[2] += 1000
			insts[3] += 10
			stall[1] += 5_000_000
			c.Decide(int64(step*100), ReasonEpoch, sampleSet(c, active, insts[:], stall[:]))
		}
		return c.Assignment()
	}
	ws := run(ObjWeightedSpeedup)
	if got := ws.SetBounds[2] - ws.SetBounds[1]; got <= mach.L2Sets/mach.Slots {
		t.Fatalf("ws objective: pressured slot 1 holds %d sets, want more than the equal share %d",
			got, mach.L2Sets/mach.Slots)
	}
	fair := run(ObjFairness)
	if got := fair.SetBounds[4] - fair.SetBounds[3]; got <= mach.L2Sets/mach.Slots {
		t.Fatalf("fairness objective: slow slot 3 holds %d sets, want more than the equal share %d",
			got, mach.L2Sets/mach.Slots)
	}
	mm := run(ObjMaxMin)
	if got := len(mm.SMs[3]); got <= mach.NumSMs/mach.Slots {
		t.Fatalf("maxmin objective: slow slot 3 holds %d SMs, want more than the equal share %d",
			got, mach.NumSMs/mach.Slots)
	}
}

// TestParseRoundTrips checks the name round trips.
func TestParseRoundTrips(t *testing.T) {
	for _, o := range []Objective{ObjWeightedSpeedup, ObjFairness, ObjMaxMin} {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Fatalf("ParseObjective(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseObjective("nope"); err == nil {
		t.Fatal("ParseObjective accepted an unknown name")
	}
	for _, r := range []Reason{ReasonEpoch, ReasonArrival, ReasonDeparture} {
		if r.String() == "" {
			t.Fatalf("Reason %d has empty name", int(r))
		}
	}
}

// TestSharedSMsNotManaged checks that overlapping slot SM lists disable SM
// moves but leave set management working.
func TestSharedSMsNotManaged(t *testing.T) {
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	a := EqualSplit(mach)
	a.SMs = [][]int{all, all, all, all}
	c, err := New(Config{}, mach, a)
	if err != nil {
		t.Fatal(err)
	}
	active := []bool{true, false, false, false}
	got, _ := c.Decide(100, ReasonDeparture, sampleSet(c, active, nil, nil))
	for i, sms := range got.SMs {
		if len(sms) != len(all) {
			t.Fatalf("shared SM list of slot %d was rewritten to %d SMs", i, len(sms))
		}
	}
	if got.SetBounds[1]-got.SetBounds[0] != mach.L2Sets {
		t.Fatal("set rebalance should still run with shared SMs")
	}
}
