package dram

import (
	"gputlb/internal/cache"
	"gputlb/internal/engine"
	"gputlb/internal/noc"
	"gputlb/internal/stats"
)

// Config parameterizes the DRAM model.
type Config struct {
	Partitions    int
	BanksPerPart  int
	RowBytes      int // row-buffer size
	RowHitCycles  int // column access on an open row
	RowMissCycles int // precharge + activate + column
	LineBytes     int
}

// DRAM is the banked memory system. Bank occupancy uses an
// order-insensitive window meter (the simulator discovers accesses out of
// timestamp order). All mutable state — bank meters, open-row registers,
// and the row-buffer counters — is per partition, so concurrent callers
// are safe as long as no two of them ever touch the same partition (the
// sliced barrier's per-slice passes own disjoint partition sets). Not
// safe for unpartitioned concurrent use.
type DRAM struct {
	cfg     Config
	meters  [][]noc.Meter // [partition][bank]
	openRow [][]int64     // [partition][bank], -1 = closed
	hits    []int64       // [partition]
	misses  []int64       // [partition]
}

// New builds the memory system.
func New(cfg Config) *DRAM {
	if cfg.Partitions < 1 || cfg.BanksPerPart < 1 {
		panic("dram: need at least one partition and bank")
	}
	if cfg.RowBytes < cfg.LineBytes {
		panic("dram: row smaller than a line")
	}
	d := &DRAM{cfg: cfg}
	d.meters = make([][]noc.Meter, cfg.Partitions)
	d.openRow = make([][]int64, cfg.Partitions)
	d.hits = make([]int64, cfg.Partitions)
	d.misses = make([]int64, cfg.Partitions)
	for p := range d.meters {
		d.meters[p] = make([]noc.Meter, cfg.BanksPerPart)
		d.openRow[p] = make([]int64, cfg.BanksPerPart)
		for b := range d.openRow[p] {
			d.openRow[p][b] = -1
		}
	}
	return d
}

// Partitions returns the partition count.
func (d *DRAM) Partitions() int { return d.cfg.Partitions }

// Partition maps a line to its memory partition (address-interleaved).
func (d *DRAM) Partition(line cache.LineAddr) int {
	return int(line % cache.LineAddr(d.cfg.Partitions))
}

// Access services one line read at cycle at and returns its completion
// time. The line's bank is derived from the partition-local address; the
// row is the line's position within the bank.
func (d *DRAM) Access(line cache.LineAddr, at engine.Cycle) engine.Cycle {
	part := d.Partition(line)
	local := uint64(line) / uint64(d.cfg.Partitions)
	linesPerRow := uint64(d.cfg.RowBytes / d.cfg.LineBytes)
	bank := int(local / linesPerRow % uint64(d.cfg.BanksPerPart))
	row := int64(local / linesPerRow / uint64(d.cfg.BanksPerPart))

	lat := engine.Cycle(d.cfg.RowMissCycles)
	if d.openRow[part][bank] == row {
		lat = engine.Cycle(d.cfg.RowHitCycles)
		d.hits[part]++
	} else {
		d.openRow[part][bank] = row
		d.misses[part]++
	}
	start := d.meters[part][bank].Reserve(at, int(lat))
	return start + lat
}

// RowHits returns open-row hits summed over all partitions.
func (d *DRAM) RowHits() int64 {
	var n int64
	for _, v := range d.hits {
		n += v
	}
	return n
}

// RowMisses returns the number of row activations summed over all
// partitions.
func (d *DRAM) RowMisses() int64 {
	var n int64
	for _, v := range d.misses {
		n += v
	}
	return n
}

// RegisterStats registers the row-buffer counters into r; values are read
// lazily at snapshot time.
func (d *DRAM) RegisterStats(r *stats.Registry) {
	r.CounterFunc("row_hits", d.RowHits)
	r.CounterFunc("row_misses", d.RowMisses)
	r.GaugeFunc("row_hit_rate", func() float64 {
		if total := d.RowHits() + d.RowMisses(); total > 0 {
			return float64(d.RowHits()) / float64(total)
		}
		return 0
	})
}
