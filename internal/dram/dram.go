package dram

import (
	"gputlb/internal/cache"
	"gputlb/internal/engine"
	"gputlb/internal/noc"
	"gputlb/internal/stats"
)

// Config parameterizes the DRAM model.
type Config struct {
	Partitions    int
	BanksPerPart  int
	RowBytes      int // row-buffer size
	RowHitCycles  int // column access on an open row
	RowMissCycles int // precharge + activate + column
	LineBytes     int
}

// DRAM is the banked memory system. Bank occupancy uses an
// order-insensitive window meter (the simulator discovers accesses out of
// timestamp order). Not safe for concurrent use.
type DRAM struct {
	cfg     Config
	meters  [][]noc.Meter // [partition][bank]
	openRow [][]int64     // [partition][bank], -1 = closed
	hits    int64
	misses  int64
}

// New builds the memory system.
func New(cfg Config) *DRAM {
	if cfg.Partitions < 1 || cfg.BanksPerPart < 1 {
		panic("dram: need at least one partition and bank")
	}
	if cfg.RowBytes < cfg.LineBytes {
		panic("dram: row smaller than a line")
	}
	d := &DRAM{cfg: cfg}
	d.meters = make([][]noc.Meter, cfg.Partitions)
	d.openRow = make([][]int64, cfg.Partitions)
	for p := range d.meters {
		d.meters[p] = make([]noc.Meter, cfg.BanksPerPart)
		d.openRow[p] = make([]int64, cfg.BanksPerPart)
		for b := range d.openRow[p] {
			d.openRow[p][b] = -1
		}
	}
	return d
}

// Partition maps a line to its memory partition (address-interleaved).
func (d *DRAM) Partition(line cache.LineAddr) int {
	return int(line % cache.LineAddr(d.cfg.Partitions))
}

// Access services one line read at cycle at and returns its completion
// time. The line's bank is derived from the partition-local address; the
// row is the line's position within the bank.
func (d *DRAM) Access(line cache.LineAddr, at engine.Cycle) engine.Cycle {
	part := d.Partition(line)
	local := uint64(line) / uint64(d.cfg.Partitions)
	linesPerRow := uint64(d.cfg.RowBytes / d.cfg.LineBytes)
	bank := int(local / linesPerRow % uint64(d.cfg.BanksPerPart))
	row := int64(local / linesPerRow / uint64(d.cfg.BanksPerPart))

	lat := engine.Cycle(d.cfg.RowMissCycles)
	if d.openRow[part][bank] == row {
		lat = engine.Cycle(d.cfg.RowHitCycles)
		d.hits++
	} else {
		d.openRow[part][bank] = row
		d.misses++
	}
	start := d.meters[part][bank].Reserve(at, int(lat))
	return start + lat
}

// RowHits returns open-row hits; RowMisses returns activations.
func (d *DRAM) RowHits() int64 { return d.hits }

// RowMisses returns the number of row activations.
func (d *DRAM) RowMisses() int64 { return d.misses }

// RegisterStats registers the row-buffer counters into r; values are read
// lazily at snapshot time.
func (d *DRAM) RegisterStats(r *stats.Registry) {
	r.CounterFunc("row_hits", func() int64 { return d.hits })
	r.CounterFunc("row_misses", func() int64 { return d.misses })
	r.GaugeFunc("row_hit_rate", func() float64 {
		if total := d.hits + d.misses; total > 0 {
			return float64(d.hits) / float64(total)
		}
		return 0
	})
}
