package dram

import (
	"testing"
	"testing/quick"

	"gputlb/internal/cache"
	"gputlb/internal/engine"
)

func cfg() Config {
	return Config{Partitions: 4, BanksPerPart: 2, RowBytes: 1024, RowHitCycles: 60, RowMissCycles: 200, LineBytes: 128}
}

func TestRowHitVsMiss(t *testing.T) {
	d := New(cfg())
	first := d.Access(0, 0)
	if first != 200 {
		t.Errorf("cold access done at %d, want 200 (row miss)", first)
	}
	// Same row (lines 0..7 of partition 0 share a 1KB row).
	second := d.Access(4, first)
	if second != first+60 {
		t.Errorf("open-row access done at %d, want %d", second, first+60)
	}
	if d.RowHits() != 1 || d.RowMisses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", d.RowHits(), d.RowMisses())
	}
}

func TestBankConflictSerializes(t *testing.T) {
	d := New(cfg())
	a := d.Access(0, 0)
	b := d.Access(0, 0) // same bank, same time: queues behind
	if b <= a {
		t.Errorf("bank conflict not serialized: %d then %d", a, b)
	}
}

func TestPartitionsIndependent(t *testing.T) {
	d := New(cfg())
	a := d.Access(0, 0)
	b := d.Access(1, 0) // different partition
	if a != b {
		t.Errorf("independent partitions finished at %d and %d", a, b)
	}
}

func TestPartitionMapping(t *testing.T) {
	d := New(cfg())
	for line := cache.LineAddr(0); line < 16; line++ {
		if got := d.Partition(line); got != int(line%4) {
			t.Errorf("Partition(%d) = %d, want %d", line, got, line%4)
		}
	}
}

// Property: every access costs at least the row-hit latency, and hits plus
// misses account for every access.
func TestAccessProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		d := New(cfg())
		at := engine.Cycle(0)
		for _, l := range lines {
			line := cache.LineAddr(l)
			done := d.Access(line, at)
			if done < at+60 {
				return false
			}
			at += 3
		}
		return d.RowHits()+d.RowMisses() == int64(len(lines))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
