// Package dram models the GPU's memory partitions: each partition owns a
// set of DRAM banks with open-row buffers. An access that hits the bank's
// open row pays the column latency; one that misses pays precharge +
// activate + column. Banks serialize their own accesses, so hot partitions
// queue — the memory-side contention behind the L2 data cache of the
// paper's Figure 1.
package dram
