package stats

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// fillHistogram observes n samples drawn from an LCG stream so the property
// tests cover a spread of magnitudes deterministically.
func fillHistogram(h *Histogram, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		// Mix small, medium, and overflow-range magnitudes.
		switch rng.Intn(3) {
		case 0:
			h.Observe(rng.Int63n(4))
		case 1:
			h.Observe(rng.Int63n(1 << 10))
		default:
			h.Observe(rng.Int63n(1 << 40))
		}
	}
}

func histogramsEqual(a, b *Histogram) bool {
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Min() != b.Min() || a.Max() != b.Max() {
		return false
	}
	ab, bb := a.Buckets(), b.Buckets()
	if len(ab) != len(bb) {
		return false
	}
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(4)
	// Bucket 0 covers <= 1 (including clamped negatives); bucket b holds
	// values with floor(log2(v)) == b; the last bucket absorbs the rest.
	for _, v := range []int64{-5, 0, 1} {
		h.Observe(v)
	}
	h.Observe(2)       // bucket 1 (floor(log2) = 1)
	h.Observe(3)       // bucket 1
	h.Observe(4)       // bucket 2
	h.Observe(5)       // bucket 2
	h.Observe(1 << 62) // bucket 3: overflow clamps to the last bucket
	want := []int64{3, 2, 2, 1}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Min() != 0 || h.Max() != 1<<62 {
		t.Errorf("min/max = %d/%d, want 0/%d", h.Min(), h.Max(), int64(1)<<62)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(4)
	huge := int64(1) << 50
	for i := 0; i < 10; i++ {
		h.Observe(huge + int64(i))
	}
	if got := h.Buckets()[3]; got != 10 {
		t.Errorf("overflow bucket = %d, want 10", got)
	}
	// Quantiles of an all-overflow histogram must stay clamped into
	// [min, max], not report the bucket's nominal 2^3 upper bound.
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v < float64(huge) || v > float64(huge+9) {
			t.Errorf("Quantile(%v) = %v, outside [min, max]", q, v)
		}
	}
}

func TestHistogramMergeAssociativeCommutative(t *testing.T) {
	mk := func(seed int64) *Histogram {
		h := NewHistogram(16)
		fillHistogram(h, seed, 500)
		return h
	}
	merge := func(hs ...*Histogram) *Histogram {
		out := NewHistogram(16)
		for _, h := range hs {
			if err := out.Merge(h); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}

	a, b, c := mk(1), mk(2), mk(3)
	// (a+b)+c == a+(b+c)
	left := merge(merge(a, b), c)
	right := merge(a, merge(b, c))
	if !histogramsEqual(left, right) {
		t.Error("merge is not associative")
	}
	// a+b == b+a
	if !histogramsEqual(merge(a, b), merge(b, a)) {
		t.Error("merge is not commutative")
	}
	// Merging all samples one at a time equals observing them directly.
	direct := NewHistogram(16)
	fillHistogram(direct, 1, 500)
	fillHistogram(direct, 2, 500)
	fillHistogram(direct, 3, 500)
	if !histogramsEqual(direct, merge(a, b, c)) {
		t.Error("merge differs from direct observation")
	}
	// Merging an empty histogram is the identity.
	if !histogramsEqual(a, merge(a, NewHistogram(16))) {
		t.Error("merging an empty histogram changed the receiver's image")
	}
}

func TestHistogramMergeBucketMismatch(t *testing.T) {
	a, b := NewHistogram(8), NewHistogram(16)
	if err := a.Merge(b); err == nil {
		t.Error("merging histograms with different bucket counts should error")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		h := NewHistogram(16)
		fillHistogram(h, seed, 1000)
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("seed %d: Quantile(%v) = %v < Quantile(prev) = %v", seed, q, v, prev)
			}
			if v < float64(h.Min()) || v > float64(h.Max()) {
				t.Fatalf("seed %d: Quantile(%v) = %v outside [%d, %d]", seed, q, v, h.Min(), h.Max())
			}
			prev = v
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(8)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry("root")
		// Registration order differs from name order on purpose.
		r.Counter("zeta").Add(3)
		r.Counter("alpha").Inc()
		r.CounterFunc("mid", func() int64 { return 7 })
		r.GaugeFunc("rate", func() float64 { return 0.25 })
		h := r.Child("child").Histogram("lat", 8)
		h.Observe(5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of identical registries serialize differently")
	}
	snap := build().Snapshot()
	if names := []string{snap.Counters[0].Name, snap.Counters[1].Name, snap.Counters[2].Name}; names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Errorf("counters not sorted: %v", names)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering a duplicate metric name should panic")
		}
	}()
	r := NewRegistry("root")
	r.Counter("x")
	r.GaugeFunc("x", func() float64 { return 0 })
}

func TestNilCounterValue(t *testing.T) {
	var c *Counter
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry("sim")
	r.Counter("walks").Add(42)
	r.Child("sm00").Child("l1tlb").Counter("hits").Add(9)
	r.Child("sm00").Histogram("lat", 4).Observe(3)
	s := r.Snapshot()

	if v, ok := s.CounterAt("walks"); !ok || v != 42 {
		t.Errorf("CounterAt(walks) = %d, %v", v, ok)
	}
	if v, ok := s.CounterAt("sm00/l1tlb/hits"); !ok || v != 9 {
		t.Errorf("CounterAt(sm00/l1tlb/hits) = %d, %v", v, ok)
	}
	if _, ok := s.CounterAt("sm00/l1tlb/misses"); ok {
		t.Error("CounterAt on a missing metric reported ok")
	}
	if h, ok := s.HistogramAt("sm00/lat"); !ok || h.Count != 1 {
		t.Errorf("HistogramAt(sm00/lat) = %+v, %v", h, ok)
	}
	if _, ok := s.Find("sm00/nope"); ok {
		t.Error("Find on a missing child reported ok")
	}
}

func TestSnapshotFlattenAndCSV(t *testing.T) {
	r := NewRegistry("sim")
	r.Counter("walks").Add(2)
	r.Child("vm").Counter("pages").Add(5)
	h := r.Histogram("lat", 2)
	h.Observe(1)
	s := r.Snapshot()

	rows := s.Flatten("")
	want := map[string]string{
		"sim/walks":     "2",
		"sim/vm/pages":  "5",
		"sim/lat/count": "1",
	}
	seen := map[string]string{}
	for _, fv := range rows {
		seen[fv.Path] = fv.Value
	}
	for p, v := range want {
		if seen[p] != v {
			t.Errorf("Flatten: %s = %q, want %q", p, seen[p], v)
		}
	}

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "path,value\n") {
		t.Error("CSV missing header")
	}
	if !strings.Contains(buf.String(), "sim/vm/pages,5\n") {
		t.Error("CSV missing flattened row")
	}
}

func TestTracerChromeTraceJSON(t *testing.T) {
	tr := NewTracer(8)
	if !tr.Enabled() {
		t.Fatal("non-nil tracer should be enabled")
	}
	tr.Complete(1, 0, "TB 0", "tb", 0, 100, nil)
	tr.Instant(1, 0, "l1tlb_miss", "tlb", 50, map[string]int64{"vpn": 7})
	tr.CounterEvent(1, "walkers", 60, map[string]int64{"in_flight": 2})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)] = true
	}
	for _, ph := range []string{"X", "i", "C"} {
		if !phases[ph] {
			t.Errorf("missing phase %q in trace", ph)
		}
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant(0, 0, "e", "t", int64(i), nil)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tr.Dropped())
	}
	// The ring keeps the newest events in order.
	for i, ev := range evs {
		if want := int64(6 + i); ev.TS != want {
			t.Errorf("event %d has ts %d, want %d", i, ev.TS, want)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer should be disabled")
	}
	// All emitters must be no-ops on a nil tracer.
	tr.Instant(0, 0, "e", "t", 1, nil)
	tr.Complete(0, 0, "e", "t", 1, 2, nil)
	tr.CounterEvent(0, "c", 1, nil)
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events() = %v, want nil", got)
	}
}
