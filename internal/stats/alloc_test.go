package stats

// Allocation regression guards for the counter/histogram fast path: the
// simulator increments counters and observes latencies once or more per
// issued instruction, so these must stay plain field updates.

import "testing"

func TestCounterZeroAlloc(t *testing.T) {
	r := NewRegistry("root")
	c := r.Counter("events")
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			c.Inc()
			c.Add(3)
		}
	})
	if allocs != 0 {
		t.Errorf("Counter Inc/Add allocated %.1f times per run, want 0", allocs)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(0)
	allocs := testing.AllocsPerRun(100, func() {
		for v := int64(0); v < 1000; v++ {
			h.Observe(v * 37)
		}
	})
	if allocs != 0 {
		t.Errorf("Histogram.Observe allocated %.1f times per run, want 0", allocs)
	}
}
