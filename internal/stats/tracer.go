// Structured event tracing: an opt-in, ring-buffered record of simulator
// events (TB dispatch/retire, TLB miss/fill/evict, page-walk occupancy)
// exportable as Chrome trace_event JSON for chrome://tracing or Perfetto.
//
// Timestamps are simulated cycles reported as microseconds (1 cycle = 1us),
// so the trace viewer's time axis reads directly in cycles. The buffer
// keeps the most recent Capacity events; once it wraps, the oldest events
// are dropped (Dropped counts them) — tracing bounds memory, it never
// aborts a run. Unlike the Registry, a Tracer is safe for concurrent use:
// a parallel sweep attaches one tracer to every cell, distinguishing cells
// by the Chrome "pid" field.

package stats

import (
	"encoding/json"
	"io"
	"sync"
)

// Trace event phases (the Chrome trace_event "ph" field).
const (
	PhaseComplete = "X" // a named span with a duration
	PhaseInstant  = "i" // a point event
	PhaseCounter  = "C" // a sampled counter track
)

// Event is one Chrome trace_event record. TS and Dur are in simulated
// cycles (rendered as microseconds).
type Event struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat,omitempty"`
	Phase string           `json:"ph"`
	TS    int64            `json:"ts"`
	Dur   int64            `json:"dur,omitempty"`
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 1 << 16

// Tracer is a bounded ring buffer of trace events. The zero value is not
// usable; call NewTracer. A nil *Tracer is a valid no-op sink, so callers
// can emit unconditionally. All methods are safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
	cap   int
}

// NewTracer creates a tracer keeping the most recent capacity events
// (<= 0 means DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// Enabled reports whether events will be recorded; callers use it to skip
// building event arguments when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event (no-op on a nil tracer).
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % t.cap
}

// Complete records a named span [start, start+dur) on track (pid, tid).
func (t *Tracer) Complete(pid, tid int, name, cat string, start, dur int64, args map[string]int64) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: PhaseComplete, TS: start, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Instant records a point event at ts on track (pid, tid).
func (t *Tracer) Instant(pid, tid int, name, cat string, ts int64, args map[string]int64) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Cat: cat, Phase: PhaseInstant, TS: ts, PID: pid, TID: tid, Args: args})
}

// CounterEvent records sampled counter values at ts; the trace viewer draws
// one stacked area track per name.
func (t *Tracer) CounterEvent(pid int, name string, ts int64, values map[string]int64) {
	if t == nil {
		return
	}
	t.Emit(Event{Name: name, Phase: PhaseCounter, TS: ts, PID: pid, Args: values})
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Dropped returns how many events fell off the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.buf))
}

// chromeTrace is the JSON object format of the Chrome trace_event spec.
type chromeTrace struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// WriteChromeTrace writes the buffered events as Chrome trace_event JSON
// (the object form with a "traceEvents" array), loadable in
// chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"unit": "1 ts = 1 simulated cycle"},
	})
}
