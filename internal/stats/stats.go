package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
)

// Counter is a monotonically growing event count.
type Counter struct{ v int64 }

// Add increases the counter by d.
func (c *Counter) Add(d int64) { c.v += d }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Registry is one node of the stats tree. Create the root with NewRegistry
// and component nodes with Child. Metric names must be unique within a node
// across all metric kinds.
type Registry struct {
	name     string
	children map[string]*Registry
	counters map[string]*Counter
	funcs    map[string]func() int64
	gauges   map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry creates a root registry node.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		children: map[string]*Registry{},
		counters: map[string]*Counter{},
		funcs:    map[string]func() int64{},
		gauges:   map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// Name returns the node's name.
func (r *Registry) Name() string { return r.name }

// Child returns the named child node, creating it on first use.
func (r *Registry) Child(name string) *Registry {
	if c, ok := r.children[name]; ok {
		return c
	}
	c := NewRegistry(name)
	r.children[name] = c
	return c
}

func (r *Registry) checkFresh(name string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("stats: metric %q already registered in %q", name, r.name))
	}
	if _, ok := r.funcs[name]; ok {
		panic(fmt.Sprintf("stats: metric %q already registered in %q", name, r.name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("stats: metric %q already registered in %q", name, r.name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("stats: metric %q already registered in %q", name, r.name))
	}
}

// Counter registers and returns a new owned counter. Registering the same
// name twice is a bug and panics.
func (r *Registry) Counter(name string) *Counter {
	r.checkFresh(name)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// CounterFunc registers a counter whose value is read lazily at snapshot
// time — the bridge for components that keep their own counter fields.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.checkFresh(name)
	r.funcs[name] = fn
}

// GaugeFunc registers a float-valued metric read lazily at snapshot time
// (rates, occupancies).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.checkFresh(name)
	r.gauges[name] = fn
}

// Histogram registers and returns a power-of-two-bucketed distribution with
// the given bucket count (<= 0 means DefaultHistogramBuckets).
func (r *Registry) Histogram(name string, buckets int) *Histogram {
	r.checkFresh(name)
	h := NewHistogram(buckets)
	r.hists[name] = h
	return h
}

// AttachHistogram registers an existing histogram under name — the bridge
// for components that observe into a histogram they own before any
// registry exists (a mechanism's sub-TLB instances, merged at fold time).
func (r *Registry) AttachHistogram(name string, h *Histogram) {
	r.checkFresh(name)
	r.hists[name] = h
}

// ---------------------------------------------------------------- histogram

// DefaultHistogramBuckets is the bucket count used when none is given.
const DefaultHistogramBuckets = 16

// Histogram is a power-of-two-bucketed distribution of non-negative int64
// samples: bucket b counts values in (2^(b-1), 2^b], bucket 0 also covers
// values <= 1, and the last bucket absorbs every larger value (the overflow
// bucket). Alongside the buckets it tracks exact count, sum, min and max,
// so means are exact and quantiles are bucket-resolution estimates.
type Histogram struct {
	buckets  []int64
	count    int64
	sum      int64
	min, max int64
}

// NewHistogram creates a histogram with the given bucket count (<= 0 means
// DefaultHistogramBuckets).
func NewHistogram(buckets int) *Histogram {
	if buckets <= 0 {
		buckets = DefaultHistogramBuckets
	}
	return &Histogram{buckets: make([]int64, buckets)}
}

// bucketOf returns the bucket index for v, clamped into the overflow bucket.
// bits.Len64(v)-1 is the shift count of the old reduction loop (floor of
// log2) computed in one instruction — Observe sits on the simulator's
// per-instruction path.
func (h *Histogram) bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if max := len(h.buckets) - 1; b > max {
		return max
	}
	return b
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[h.bucketOf(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Quantile estimates the q-quantile (q in [0,1], clamped) at bucket
// resolution: the upper bound of the first bucket whose cumulative count
// reaches q*Count, clamped into [Min, Max]. The estimate is monotone in q.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	cum := int64(0)
	for b, n := range h.buckets {
		cum += n
		if cum > 0 && float64(cum) >= target {
			ub := int64(1) << uint(b)
			if ub < h.min {
				ub = h.min
			}
			if ub > h.max {
				ub = h.max
			}
			return float64(ub)
		}
	}
	return float64(h.max)
}

// Merge adds o's samples into h. The histograms must have the same bucket
// count; merging is exact, so it is associative and commutative.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.buckets) != len(o.buckets) {
		return fmt.Errorf("stats: merging histograms with %d and %d buckets", len(h.buckets), len(o.buckets))
	}
	if o.count == 0 {
		return nil
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for b, n := range o.buckets {
		h.buckets[b] += n
	}
	return nil
}

// ----------------------------------------------------------------- snapshot

// CounterValue is one counter's materialized value.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's materialized value.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one distribution's materialized summary.
type HistogramValue struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot is the materialized stats tree: plain data, deterministically
// ordered (all names sorted), safe to share and serialize.
type Snapshot struct {
	Name       string           `json:"name"`
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	Children   []*Snapshot      `json:"children,omitempty"`
}

// Snapshot materializes the subtree rooted at r.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Name: r.name}
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterValue{name, r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.funcs) {
		s.Counters = append(s.Counters, CounterValue{name, r.funcs[name]()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeValue{name, r.gauges[name]()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Min:     h.Min(),
			Max:     h.Max(),
			P50:     h.Quantile(0.50),
			P90:     h.Quantile(0.90),
			P99:     h.Quantile(0.99),
			Buckets: h.Buckets(),
		})
	}
	for _, name := range sortedKeys(r.children) {
		s.Children = append(s.Children, r.children[name].Snapshot())
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Find resolves a slash-separated path of child names beneath s ("" or "."
// returns s itself).
func (s *Snapshot) Find(path string) (*Snapshot, bool) {
	if path == "" || path == "." {
		return s, true
	}
	node := s
	for _, seg := range splitPath(path) {
		var next *Snapshot
		for _, c := range node.Children {
			if c.Name == seg {
				next = c
				break
			}
		}
		if next == nil {
			return nil, false
		}
		node = next
	}
	return node, true
}

// CounterAt returns the counter value at "child/.../name" beneath s.
func (s *Snapshot) CounterAt(path string) (int64, bool) {
	node, name, ok := s.resolveParent(path)
	if !ok {
		return 0, false
	}
	for _, c := range node.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// GaugeAt returns the gauge value at "child/.../name" beneath s.
func (s *Snapshot) GaugeAt(path string) (float64, bool) {
	node, name, ok := s.resolveParent(path)
	if !ok {
		return 0, false
	}
	for _, g := range node.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// HistogramAt returns the histogram summary at "child/.../name" beneath s.
func (s *Snapshot) HistogramAt(path string) (HistogramValue, bool) {
	node, name, ok := s.resolveParent(path)
	if !ok {
		return HistogramValue{}, false
	}
	for _, h := range node.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

func (s *Snapshot) resolveParent(path string) (*Snapshot, string, bool) {
	segs := splitPath(path)
	if len(segs) == 0 {
		return nil, "", false
	}
	node := s
	if len(segs) > 1 {
		var ok bool
		node, ok = s.Find(joinPath(segs[:len(segs)-1]))
		if !ok {
			return nil, "", false
		}
	}
	return node, segs[len(segs)-1], true
}

func splitPath(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if i > start {
				out = append(out, p[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func joinPath(segs []string) string {
	out := ""
	for i, s := range segs {
		if i > 0 {
			out += "/"
		}
		out += s
	}
	return out
}

// FlatValue is one row of a flattened snapshot: a slash-separated metric
// path and its rendered value.
type FlatValue struct {
	Path  string
	Value string
}

// Flatten renders the subtree as path/value rows in deterministic order.
// Histograms expand into count/sum/min/max/p50/p90/p99 plus one row per
// bucket. prefix, when non-empty, is prepended to every path.
func (s *Snapshot) Flatten(prefix string) []FlatValue {
	base := s.Name
	if prefix != "" {
		base = prefix + "/" + s.Name
	}
	var out []FlatValue
	for _, c := range s.Counters {
		out = append(out, FlatValue{base + "/" + c.Name, strconv.FormatInt(c.Value, 10)})
	}
	for _, g := range s.Gauges {
		out = append(out, FlatValue{base + "/" + g.Name, strconv.FormatFloat(g.Value, 'g', -1, 64)})
	}
	for _, h := range s.Histograms {
		hb := base + "/" + h.Name
		out = append(out,
			FlatValue{hb + "/count", strconv.FormatInt(h.Count, 10)},
			FlatValue{hb + "/sum", strconv.FormatInt(h.Sum, 10)},
			FlatValue{hb + "/min", strconv.FormatInt(h.Min, 10)},
			FlatValue{hb + "/max", strconv.FormatInt(h.Max, 10)},
			FlatValue{hb + "/p50", strconv.FormatFloat(h.P50, 'g', -1, 64)},
			FlatValue{hb + "/p90", strconv.FormatFloat(h.P90, 'g', -1, 64)},
			FlatValue{hb + "/p99", strconv.FormatFloat(h.P99, 'g', -1, 64)})
		for b, n := range h.Buckets {
			out = append(out, FlatValue{fmt.Sprintf("%s/bucket%02d", hb, b), strconv.FormatInt(n, 10)})
		}
	}
	for _, c := range s.Children {
		out = append(out, c.Flatten(base)...)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the flattened snapshot as "path,value" CSV rows.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "path,value\n"); err != nil {
		return err
	}
	for _, fv := range s.Flatten("") {
		if _, err := fmt.Fprintf(w, "%s,%s\n", fv.Path, fv.Value); err != nil {
			return err
		}
	}
	return nil
}
