// Package stats is the simulator's observability substrate: a hierarchical
// registry of named counters, distributions and gauges that every component
// of the timing model (sim, tlb, vm, cache, sched, noc, dram) registers
// into, plus a ring-buffered structured event trace exportable as Chrome
// trace_event JSON (see tracer.go).
//
// The registry is a tree. Each component owns one node (a child registry)
// and registers metrics under it; a Snapshot materializes the whole tree
// into concrete values in deterministic (sorted) order, so two identical
// simulations produce byte-identical JSON — the property the golden-stats
// regression suite keys off.
//
// Registries are not safe for concurrent use: the simulator drives each
// registry from a single goroutine, and parallel sweeps give every cell its
// own registry. Snapshots are plain data and safe to share once taken.
package stats
