package vm

// Tests for the contiguity-preserving frame allocator (AllocContig): frames
// are a pure function of the VPN, so contiguity, determinism, and fork
// independence all follow from position — no allocator state to race on.

import (
	"sync"
	"testing"
)

func contigSpace(t *testing.T) (*AddressSpace, Region) {
	t.Helper()
	as := NewAddressSpace(12, 7, 3) // seed and scatter must be irrelevant under contig
	if err := as.SetAllocMode(AllocContig); err != nil {
		t.Fatal(err)
	}
	r, err := as.Alloc("data", 1<<21) // 512 pages = one full subregion
	if err != nil {
		t.Fatal(err)
	}
	return as, r
}

// TestContigAdjacency: within an aligned ContigRunPages subregion,
// virtually adjacent pages get physically adjacent frames regardless of
// touch order.
func TestContigAdjacency(t *testing.T) {
	as, r := contigSpace(t)
	// Touch back to front so first-touch order opposes virtual order.
	for a := r.End() - 4096; ; a -= 4096 {
		as.Touch(a)
		if a == r.Base {
			break
		}
	}
	prev, ok := as.PageTable().Translate(as.VPNOf(r.Base))
	if !ok {
		t.Fatal("base page unmapped after touch")
	}
	for a := r.Base + 4096; a < r.End(); a += 4096 {
		vpn := as.VPNOf(a)
		ppn, ok := as.PageTable().Translate(vpn)
		if !ok {
			t.Fatalf("vpn %d unmapped", vpn)
		}
		if uint64(vpn)%ContigRunPages != 0 && ppn != prev+1 {
			t.Fatalf("vpn %d -> %d, previous page -> %d: contiguity broken inside a subregion", vpn, ppn, prev)
		}
		prev = ppn
	}
}

// TestContigDeterministicAcrossSeeds: contig frames depend only on the VPN —
// two spaces with different seeds and scatter map every page identically.
func TestContigDeterministicAcrossSeeds(t *testing.T) {
	a := NewAddressSpace(12, 1, 0)
	b := NewAddressSpace(12, 99, 7)
	for _, as := range []*AddressSpace{a, b} {
		if err := as.SetAllocMode(AllocContig); err != nil {
			t.Fatal(err)
		}
		if _, err := as.Alloc("data", 1<<21); err != nil {
			t.Fatal(err)
		}
	}
	for off := Addr(0); off < 1<<21; off += 4096 * 37 {
		pa, _ := a.Touch(off)
		pb, _ := b.Touch(off)
		if pa != pb {
			t.Fatalf("offset %#x: seed-1 frame %d != seed-99 frame %d", off, pa, pb)
		}
	}
}

// TestContigFrameBounded: every contig frame stays far below the sharded
// engine's placeholder threshold (2^47), so placeholder detection can never
// mistake a real contig frame for a pending translation.
func TestContigFrameBounded(t *testing.T) {
	const pendingThreshold = 1 << 47
	for _, vpn := range []VPN{0, 1, 511, 512, 1 << 20, 1<<36 - 1, 1 << 40} {
		p := contigFrame(vpn)
		if uint64(p) >= pendingThreshold {
			t.Errorf("contigFrame(%d) = %#x crosses the placeholder threshold", vpn, uint64(p))
		}
		if p == 0 {
			t.Errorf("contigFrame(%d) = 0, frame 0 is reserved", vpn)
		}
	}
}

// TestSetAllocModeAfterTouchFails: switching allocators mid-run would mix
// frame namespaces; the address space must refuse once pages are mapped.
func TestSetAllocModeAfterTouchFails(t *testing.T) {
	as := NewAddressSpace(12, 1, 0)
	if _, err := as.Alloc("data", 1<<20); err != nil {
		t.Fatal(err)
	}
	as.Touch(0)
	if err := as.SetAllocMode(AllocContig); err == nil {
		t.Fatal("SetAllocMode succeeded with pages already mapped")
	}
	if got := as.GetAllocMode(); got != AllocFirstTouch {
		t.Errorf("failed switch changed mode to %v", got)
	}
}

// TestContigForkConcurrentFaultsAreIndependent mirrors the first-touch fork
// race test: forks of a contig-mode space demand-fault concurrently and
// must all produce the identical (positional) mapping. Run under -race.
func TestContigForkConcurrentFaultsAreIndependent(t *testing.T) {
	proto, r := contigSpace(t)

	touch := func(as *AddressSpace) []PPN {
		ppns := make([]PPN, 0, 512)
		for a := r.Base; a < r.End(); a += 4096 {
			p, _ := as.Touch(a)
			ppns = append(ppns, p)
		}
		return ppns
	}
	want := touch(proto.Fork())

	const forks = 8
	got := make([][]PPN, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			as := proto.Fork()
			if as.GetAllocMode() != AllocContig {
				t.Errorf("fork %d lost AllocContig", i)
			}
			got[i] = touch(as)
		}(i)
	}
	wg.Wait()

	for i := 0; i < forks; i++ {
		for j, p := range got[i] {
			if p != want[j] {
				t.Fatalf("fork %d page %d mapped to PPN %d, want %d", i, j, p, want[j])
			}
		}
	}
}
