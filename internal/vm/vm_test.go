package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageTableMapWalk(t *testing.T) {
	pt := NewPageTable(12)
	if err := pt.Map(0x1234, 77); err != nil {
		t.Fatalf("Map: %v", err)
	}
	r := pt.Walk(0x1234)
	if !r.Found || r.PPN != 77 {
		t.Fatalf("Walk = %+v, want found PPN 77", r)
	}
	if r.Levels != Levels {
		t.Errorf("successful walk touched %d levels, want %d", r.Levels, Levels)
	}
	if pt.Mapped() != 1 {
		t.Errorf("Mapped = %d, want 1", pt.Mapped())
	}
}

func TestPageTableMissReportsPartialWalk(t *testing.T) {
	pt := NewPageTable(12)
	r := pt.Walk(0x1234)
	if r.Found {
		t.Fatal("walk of empty table found a translation")
	}
	if r.Levels != 1 {
		t.Errorf("empty-table walk touched %d levels, want 1 (absent at root)", r.Levels)
	}
	// Map a sibling sharing upper levels: a near-miss should walk deeper.
	if err := pt.Map(0x1235, 5); err != nil {
		t.Fatal(err)
	}
	r = pt.Walk(0x1234)
	if r.Found || r.Levels != Levels {
		t.Errorf("near-miss walk = %+v, want not-found at leaf level %d", r, Levels)
	}
}

func TestPageTableZeroPPN(t *testing.T) {
	pt := NewPageTable(12)
	if err := pt.Map(9, 0); err != nil {
		t.Fatal(err)
	}
	ppn, ok := pt.Translate(9)
	if !ok || ppn != 0 {
		t.Errorf("Translate(9) = %d,%v; PPN 0 must be representable", ppn, ok)
	}
}

func TestPageTableDoubleMapRejected(t *testing.T) {
	pt := NewPageTable(12)
	if err := pt.Map(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(1, 2); err == nil {
		t.Error("double map accepted")
	}
	ppn, _ := pt.Translate(1)
	if ppn != 1 {
		t.Errorf("translation clobbered to %d after rejected remap", ppn)
	}
}

func TestPageTableUnmap(t *testing.T) {
	pt := NewPageTable(12)
	if err := pt.Unmap(3); err == nil {
		t.Error("unmap of absent page accepted")
	}
	if err := pt.Map(3, 9); err != nil {
		t.Fatal(err)
	}
	if err := pt.Unmap(3); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if _, ok := pt.Translate(3); ok {
		t.Error("page still translates after unmap")
	}
	if pt.Mapped() != 0 {
		t.Errorf("Mapped = %d after unmap, want 0", pt.Mapped())
	}
	// Page can be remapped after unmap.
	if err := pt.Map(3, 11); err != nil {
		t.Fatalf("remap after unmap: %v", err)
	}
}

// Property: the page table behaves exactly like a map[VPN]PPN under random
// map/unmap/translate traffic.
func TestPageTableMatchesModel(t *testing.T) {
	pt := NewPageTable(12)
	model := make(map[VPN]PPN)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		vpn := VPN(rng.Intn(4096)) | VPN(rng.Intn(4))<<27 // exercise multiple subtrees
		switch rng.Intn(3) {
		case 0: // map
			ppn := PPN(rng.Intn(1 << 20))
			err := pt.Map(vpn, ppn)
			if _, exists := model[vpn]; exists {
				if err == nil {
					t.Fatalf("step %d: Map(%#x) accepted remap", i, vpn)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d: Map(%#x) = %v", i, vpn, err)
				}
				model[vpn] = ppn
			}
		case 1: // unmap
			err := pt.Unmap(vpn)
			if _, exists := model[vpn]; exists {
				if err != nil {
					t.Fatalf("step %d: Unmap(%#x) = %v", i, vpn, err)
				}
				delete(model, vpn)
			} else if err == nil {
				t.Fatalf("step %d: Unmap(%#x) of absent page accepted", i, vpn)
			}
		default: // translate
			ppn, ok := pt.Translate(vpn)
			wantPPN, wantOK := model[vpn]
			if ok != wantOK || (ok && ppn != wantPPN) {
				t.Fatalf("step %d: Translate(%#x) = %d,%v want %d,%v", i, vpn, ppn, ok, wantPPN, wantOK)
			}
		}
		if pt.Mapped() != len(model) {
			t.Fatalf("step %d: Mapped = %d, model has %d", i, pt.Mapped(), len(model))
		}
	}
}

func TestFrameAllocatorContiguous(t *testing.T) {
	a := NewFrameAllocator(1, 0)
	prev := a.Alloc()
	if prev != 1 {
		t.Errorf("first frame = %d, want 1 (frame 0 reserved)", prev)
	}
	for i := 0; i < 100; i++ {
		p := a.Alloc()
		if p != prev+1 {
			t.Fatalf("contiguous allocator gapped: %d after %d", p, prev)
		}
		prev = p
	}
}

func TestFrameAllocatorScatterUnique(t *testing.T) {
	a := NewFrameAllocator(1, 8)
	seen := make(map[PPN]bool)
	prev := PPN(0)
	for i := 0; i < 1000; i++ {
		p := a.Alloc()
		if seen[p] {
			t.Fatalf("frame %d allocated twice", p)
		}
		if p <= prev {
			t.Fatalf("frames not monotone: %d after %d", p, prev)
		}
		seen[p] = true
		prev = p
	}
}

func TestAddressSpaceAllocDisjoint(t *testing.T) {
	as := NewAddressSpace(12, 1, 0)
	r1, err := as.Alloc("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := as.Alloc("b", 5<<20)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := as.Alloc("c", 1)
	if err != nil {
		t.Fatal(err)
	}
	regions := []Region{r1, r2, r3}
	for i, r := range regions {
		if r.Base == 0 {
			t.Errorf("region %d based at VA 0", i)
		}
		if r.Base%regionAlign != 0 {
			t.Errorf("region %d base %#x not %d-aligned", i, r.Base, regionAlign)
		}
		for j, s := range regions {
			if i == j {
				continue
			}
			if r.Base < s.End() && s.Base < r.End() {
				t.Errorf("regions %d and %d overlap", i, j)
			}
		}
	}
	if _, err := as.Alloc("zero", 0); err == nil {
		t.Error("zero-byte Alloc accepted")
	}
	if got := len(as.Regions()); got != 3 {
		t.Errorf("Regions() has %d entries, want 3", got)
	}
}

func TestAddressSpaceDemandPaging(t *testing.T) {
	as := NewAddressSpace(12, 1, 0)
	r, _ := as.Alloc("x", 40*4096)
	ppn0, faulted := as.Touch(r.Base)
	if !faulted {
		t.Error("first touch did not fault")
	}
	ppnAgain, faulted := as.Touch(r.Base + 100)
	if faulted {
		t.Error("second touch of same page faulted")
	}
	if ppnAgain != ppn0 {
		t.Errorf("same page translated to %d then %d", ppn0, ppnAgain)
	}
	// The whole 16-page basic block was populated by the first fault.
	_, faulted = as.Touch(r.Base + 4096)
	if faulted {
		t.Error("page in an already-populated basic block faulted")
	}
	// The next basic block faults independently.
	_, faulted = as.Touch(r.Base + BasicBlockPages*4096)
	if !faulted {
		t.Error("first touch of the next basic block did not fault")
	}
	if as.Faults() != 2 {
		t.Errorf("Faults = %d, want 2", as.Faults())
	}
	if as.PageTable().Mapped() != 2*BasicBlockPages {
		t.Errorf("Mapped = %d, want %d", as.PageTable().Mapped(), 2*BasicBlockPages)
	}
}

func TestBasicBlockContiguity(t *testing.T) {
	// Pages of one basic block must get consecutive frames: the physical
	// contiguity TLB compression exploits.
	as := NewAddressSpace(12, 1, 0)
	r, _ := as.Alloc("x", BasicBlockPages*4096)
	base, _ := as.Touch(r.Base)
	for i := 1; i < BasicBlockPages; i++ {
		p, faulted := as.Touch(r.Base + Addr(i*4096))
		if faulted {
			t.Fatalf("page %d of populated block faulted", i)
		}
		if p != base+PPN(i) {
			t.Fatalf("page %d frame %d, want contiguous %d", i, p, base+PPN(i))
		}
	}
}

func TestAddressSpaceHugePages(t *testing.T) {
	as := NewAddressSpace(21, 1, 0)
	r, _ := as.Alloc("big", 10<<21)
	// Touches within the same 2MB page must not fault twice.
	_, f1 := as.Touch(r.Base)
	_, f2 := as.Touch(r.Base + 1<<20)
	_, f3 := as.Touch(r.Base + 1<<21)
	if !f1 || f2 || !f3 {
		t.Errorf("huge-page faulting = %v,%v,%v, want true,false,true", f1, f2, f3)
	}
	if as.VPNOf(r.Base) == as.VPNOf(r.Base+1<<21) {
		t.Error("distinct 2MB pages share a VPN")
	}
	if as.VPNOf(r.Base) != as.VPNOf(r.Base+1<<20) {
		t.Error("offsets within one 2MB page got different VPNs")
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "r", Base: 0x200000, Bytes: 4096}
	if !r.Contains(0x200000) || !r.Contains(0x200fff) {
		t.Error("Contains rejects interior bytes")
	}
	if r.Contains(0x1fffff) || r.Contains(0x201000) {
		t.Error("Contains accepts exterior bytes")
	}
	if r.End() != 0x201000 {
		t.Errorf("End = %#x, want 0x201000", r.End())
	}
}

// Property: Touch is idempotent in PPN and faults exactly once per basic
// block.
func TestTouchProperty(t *testing.T) {
	f := func(offsets []uint32) bool {
		as := NewAddressSpace(12, 3, 2)
		r, err := as.Alloc("p", 64<<20)
		if err != nil {
			return false
		}
		seen := make(map[VPN]PPN)
		blocks := make(map[VPN]bool)
		for _, off := range offsets {
			a := r.Base + Addr(off%(64<<20))
			ppn, faulted := as.Touch(a)
			vpn := as.VPNOf(a)
			block := vpn &^ (BasicBlockPages - 1)
			if prev, ok := seen[vpn]; ok && ppn != prev {
				return false // translation changed
			}
			seen[vpn] = ppn
			if faulted == blocks[block] {
				return false // must fault iff the block was unpopulated
			}
			blocks[block] = true
		}
		return as.Faults() == uint64(len(blocks))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
