// Package vm is the virtual-memory substrate beneath the GPU simulator: a
// four-level radix page table (x86-64 style), a physical frame allocator,
// and a UVM address space with demand paging. Under unified virtual memory
// the GPU touches pages that may not be mapped yet; the first access faults
// and the driver maps the page (first-touch policy), after which page-table
// walks resolve the translation.
package vm
