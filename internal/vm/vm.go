package vm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"gputlb/internal/stats"
)

// Addr is a virtual or physical byte address.
type Addr uint64

// VPN is a virtual page number (address >> page shift).
type VPN uint64

// PPN is a physical page number.
type PPN uint64

// ASID identifies a tenant's address space in multi-tenant runs. TLB and
// page-walk-cache entries, MSHRs, and in-flight walker state are tagged with
// it so co-running kernels contend for capacity without ever aliasing each
// other's translations. Single-tenant runs use ASID 0 throughout, which
// keeps their behaviour bit-identical to the pre-tenancy simulator.
type ASID uint8

// MaxTenants bounds how many address spaces can co-run in one simulation;
// it is the practical limit for ASID key-packing in the MSHR tables, far
// above the 2-4 concurrent kernels the experiments sweep.
const MaxTenants = 8

// Levels in the radix page table (PML4, PDP, PD, PT).
const Levels = 4

// bitsPerLevel is the radix width of each level (512-entry tables).
const bitsPerLevel = 9

// pageTableNode is one 512-entry radix node. Interior links are atomic
// pointers so concurrent walkers touching disjoint VPN ranges (the sliced
// barrier's per-slice passes) can lazily create interior nodes without
// locks: creation races are resolved by compare-and-swap, and the final
// radix structure is identical regardless of who wins. Leaf entries stay
// plain PPNs — every leaf element is only ever written by the one slice
// that owns its VPN, so element-granular writes never race.
type pageTableNode struct {
	children [1 << bitsPerLevel]atomic.Pointer[pageTableNode] // interior
	leaves   [1 << bitsPerLevel]PPN                           // leaf level, +1 encoded
}

// PageTable is a four-level radix page table keyed by VPN. Huge (2MB) pages
// are supported by constructing the table with pageShift 21: the VPN space
// shrinks and every walk still touches the full radix, matching a page table
// whose leaves sit one level higher. The zero value is not usable; call
// NewPageTable.
type PageTable struct {
	root      *pageTableNode
	pageShift uint
	mapped    atomic.Int64
}

// NewPageTable returns an empty table for the given page shift (12 for 4KB,
// 21 for 2MB base pages).
func NewPageTable(pageShift uint) *PageTable {
	return &PageTable{root: &pageTableNode{}, pageShift: pageShift}
}

// PageShift returns the base page shift used for VPN computation.
func (pt *PageTable) PageShift() uint { return pt.pageShift }

// Mapped returns the number of mapped pages.
func (pt *PageTable) Mapped() int { return int(pt.mapped.Load()) }

// indices splits a VPN into per-level radix indices, most significant first.
// For 2MB base pages only three levels index (the PT level is absorbed into
// the huge leaf); we still compute four and stop early.
func indices(vpn VPN) [Levels]int {
	var ix [Levels]int
	for l := Levels - 1; l >= 0; l-- {
		ix[l] = int(vpn & ((1 << bitsPerLevel) - 1))
		vpn >>= bitsPerLevel
	}
	return ix
}

// Map installs vpn -> ppn as a base-page leaf. Remapping an existing page is
// an error: UVM never remaps without an explicit unmap.
func (pt *PageTable) Map(vpn VPN, ppn PPN) error {
	ix := indices(vpn)
	n := pt.root
	for l := 0; l < Levels-1; l++ {
		child := n.children[ix[l]].Load()
		if child == nil {
			child = &pageTableNode{}
			if !n.children[ix[l]].CompareAndSwap(nil, child) {
				child = n.children[ix[l]].Load()
			}
		}
		n = child
	}
	if n.leaves[ix[Levels-1]] != 0 {
		return fmt.Errorf("vm: VPN %#x already mapped", uint64(vpn))
	}
	n.leaves[ix[Levels-1]] = ppn + 1
	pt.mapped.Add(1)
	return nil
}

// Unmap removes the mapping for vpn. Unmapping an absent page is an error.
func (pt *PageTable) Unmap(vpn VPN) error {
	ix := indices(vpn)
	n := pt.root
	for l := 0; l < Levels-1; l++ {
		n = n.children[ix[l]].Load()
		if n == nil {
			return fmt.Errorf("vm: VPN %#x not mapped", uint64(vpn))
		}
	}
	if n.leaves[ix[Levels-1]] == 0 {
		return fmt.Errorf("vm: VPN %#x not mapped", uint64(vpn))
	}
	n.leaves[ix[Levels-1]] = 0
	pt.mapped.Add(-1)
	return nil
}

// WalkResult describes a completed page-table walk.
type WalkResult struct {
	PPN    PPN
	Found  bool
	Levels int // radix levels touched (memory references the walker made)
}

// Walk resolves vpn, reporting how many levels the walker touched. A missing
// translation (page fault under UVM) still walks until the absent entry.
func (pt *PageTable) Walk(vpn VPN) WalkResult {
	ix := indices(vpn)
	n := pt.root
	for l := 0; l < Levels-1; l++ {
		child := n.children[ix[l]].Load()
		if child == nil {
			return WalkResult{Levels: l + 1}
		}
		n = child
	}
	if ppn := n.leaves[ix[Levels-1]]; ppn != 0 {
		return WalkResult{PPN: ppn - 1, Found: true, Levels: Levels}
	}
	return WalkResult{Levels: Levels}
}

// Translate is Walk without the bookkeeping, for functional use.
func (pt *PageTable) Translate(vpn VPN) (PPN, bool) {
	r := pt.Walk(vpn)
	return r.PPN, r.Found
}

// FrameAllocator hands out physical page numbers. It can allocate
// sequentially (contiguous physical memory, friendly to TLB compression) or
// with per-allocation scatter, mimicking a fragmented physical space.
type FrameAllocator struct {
	next    PPN
	base    PPN // first frame this allocator may hand out
	rng     *rand.Rand
	scatter int // 0 = contiguous; otherwise max random gap between frames
}

// NewFrameAllocator returns an allocator starting at frame 1 (frame 0 is
// reserved so a zero PPN never aliases a real frame). scatter > 0 adds a
// random gap of up to scatter frames between consecutive allocations.
func NewFrameAllocator(seed int64, scatter int) *FrameAllocator {
	return newFrameAllocatorAt(1, seed, scatter)
}

// newFrameAllocatorAt returns an allocator bump-allocating from the given
// base frame; per-slice allocators use disjoint bases so concurrent slices
// never hand out overlapping frames.
func newFrameAllocatorAt(base PPN, seed int64, scatter int) *FrameAllocator {
	return &FrameAllocator{next: base, base: base, rng: rand.New(rand.NewSource(seed)), scatter: scatter}
}

// Alloc returns the next free physical frame.
func (a *FrameAllocator) Alloc() PPN {
	return a.AllocN(1)
}

// AllocN reserves n consecutive physical frames and returns the first. The
// UVM driver uses this to back a whole basic block contiguously, which is
// the physical contiguity TLB-compression designs rely on.
func (a *FrameAllocator) AllocN(n int) PPN {
	p := a.next
	a.next += PPN(n)
	if a.scatter > 0 {
		a.next += PPN(a.rng.Intn(a.scatter + 1))
	}
	return p
}

// Allocated returns how many frame numbers have been consumed (including
// scatter gaps).
func (a *FrameAllocator) Allocated() uint64 { return uint64(a.next - a.base) }

// AllocMode selects how demand paging picks physical frames.
type AllocMode int

const (
	// AllocFirstTouch is the default UVM behaviour: frames are
	// bump-allocated in fault order (with optional scatter), so physical
	// layout follows the access pattern.
	AllocFirstTouch AllocMode = iota
	// AllocContig is a contiguity-preserving allocator: the frame for a
	// page is a pure function of its VPN that keeps every aligned
	// ContigRunPages-page virtual subregion physically contiguous,
	// regardless of fault order. It models an eager/reservation-based
	// allocator and is the supply side of the large-reach TLB mechanism.
	AllocContig
)

// ContigRunPages is the aligned virtual subregion size (in pages) that
// AllocContig keeps physically contiguous: 512 pages = 2MB at 4KB pages,
// the page-table-leaf granularity reservation allocators operate at.
const ContigRunPages = 512

// ParseAllocMode maps a CLI/experiment name to an AllocMode. The empty
// string means first-touch.
func ParseAllocMode(name string) (AllocMode, error) {
	switch name {
	case "", "firsttouch":
		return AllocFirstTouch, nil
	case "contig":
		return AllocContig, nil
	default:
		return 0, fmt.Errorf("vm: unknown alloc mode %q (want firsttouch or contig)", name)
	}
}

// String returns the mode's canonical CLI name.
func (m AllocMode) String() string {
	if m == AllocContig {
		return "contig"
	}
	return "firsttouch"
}

// contigFrameBits bounds the hashed subregion base so every contig frame
// stays far below the sharded engine's placeholder-PPN threshold (2^47).
const contigFrameBits = 36

// contigFrame returns AllocContig's frame for vpn: the 512-page subregion's
// base frame is a multiplicative hash of the subregion number (bijective
// over 36 bits, so distinct subregions never collide within any realistic
// footprint), and pages within the subregion get consecutive frames. Being
// a pure function of position, it is race-free under concurrent TouchSlice
// and yields identical PPNs in every engine and slicing configuration.
func contigFrame(vpn VPN) PPN {
	sub := uint64(vpn) / ContigRunPages
	base := (sub * 0x9E3779B97F4A7C15) & (1<<contigFrameBits - 1)
	return PPN(1 + base*ContigRunPages + uint64(vpn)%ContigRunPages)
}

// Region is a named virtual allocation (one data structure of a kernel).
type Region struct {
	Name  string
	Base  Addr
	Bytes uint64
}

// End returns one past the last byte.
func (r Region) End() Addr { return r.Base + Addr(r.Bytes) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// AddressSpace is a UVM virtual address space: a bump allocator for regions
// plus a demand-paged page table.
type AddressSpace struct {
	pt          *PageTable
	frames      *FrameAllocator
	sliceFrames []*FrameAllocator // per-slice allocators, set by ConfigureSlices
	pageShift   uint
	seed        int64
	scatter     int
	allocMode   AllocMode
	contigPages atomic.Uint64 // pages mapped by AllocContig
	nextVA      Addr
	regions     []Region
	faults      atomic.Uint64
}

// regionAlign separates consecutive regions so distinct data structures
// never share a page, matching distinct cudaMallocManaged allocations.
const regionAlign = 1 << 21 // 2MB, so regions stay huge-page aligned too

// NewAddressSpace creates a UVM space with the given base page shift.
// Frames are allocated with the given scatter (0 = contiguous physical
// memory; contiguity matters to the TLB-compression comparator).
func NewAddressSpace(pageShift uint, seed int64, scatter int) *AddressSpace {
	return &AddressSpace{
		pt:        NewPageTable(pageShift),
		frames:    NewFrameAllocator(seed, scatter),
		pageShift: pageShift,
		seed:      seed,
		scatter:   scatter,
		nextVA:    regionAlign, // keep VA 0 unmapped
	}
}

// Fork returns a pristine address space with the same construction
// parameters and region layout as as, but an empty page table and a fresh
// frame allocator: exactly the state a workload builder leaves behind, since
// builders only Alloc regions and never Touch pages. It lets one built
// kernel trace be simulated many times — each run demand-pages its own
// fork — without rebuilding the workload. Forking a space whose pages have
// already been touched does not carry the mappings over.
func (as *AddressSpace) Fork() *AddressSpace {
	f := NewAddressSpace(as.pageShift, as.seed, as.scatter)
	f.allocMode = as.allocMode
	f.nextVA = as.nextVA
	f.regions = append([]Region(nil), as.regions...)
	return f
}

// SetAllocMode switches the demand-paging frame policy. It must be called
// before any page is touched — mixing policies within one space would break
// the contiguity invariant largereach property tests rely on.
func (as *AddressSpace) SetAllocMode(m AllocMode) error {
	if as.pt.Mapped() != 0 {
		return fmt.Errorf("vm: cannot switch alloc mode with %d pages already mapped", as.pt.Mapped())
	}
	as.allocMode = m
	return nil
}

// GetAllocMode returns the demand-paging frame policy.
func (as *AddressSpace) GetAllocMode() AllocMode { return as.allocMode }

// PageShift returns the base page shift.
func (as *AddressSpace) PageShift() uint { return as.pageShift }

// PageTable exposes the underlying table (the walker needs it).
func (as *AddressSpace) PageTable() *PageTable { return as.pt }

// Faults returns the number of demand-paging faults taken so far.
func (as *AddressSpace) Faults() uint64 { return as.faults.Load() }

// Regions returns the allocated regions in allocation order.
func (as *AddressSpace) Regions() []Region { return as.regions }

// RegisterStats registers the address space's demand-paging counters into
// r; values are read lazily at snapshot time.
func (as *AddressSpace) RegisterStats(r *stats.Registry) {
	r.CounterFunc("faults", func() int64 { return int64(as.faults.Load()) })
	r.CounterFunc("mapped_pages", func() int64 { return int64(as.pt.Mapped()) })
	r.CounterFunc("frames_allocated", func() int64 {
		n := as.frames.Allocated() + as.contigPages.Load()
		for _, fa := range as.sliceFrames {
			n += fa.Allocated()
		}
		return int64(n)
	})
	r.CounterFunc("regions", func() int64 { return int64(len(as.regions)) })
}

// Alloc reserves bytes of virtual space under name. Nothing is mapped until
// first touch (UVM demand paging).
func (as *AddressSpace) Alloc(name string, bytes uint64) (Region, error) {
	if bytes == 0 {
		return Region{}, errors.New("vm: zero-byte allocation")
	}
	r := Region{Name: name, Base: as.nextVA, Bytes: bytes}
	span := (bytes + regionAlign - 1) / regionAlign * regionAlign
	as.nextVA += Addr(span)
	as.regions = append(as.regions, r)
	return r, nil
}

// VPNOf returns the virtual page number of a.
func (as *AddressSpace) VPNOf(a Addr) VPN { return VPN(a >> as.pageShift) }

// BasicBlockPages is the UVM driver's population granularity: a fault
// populates this many virtually-contiguous pages with physically-contiguous
// frames (the 64KB basic block of the NVIDIA driver, at 4KB pages). Huge
// (2MB) base pages are populated one page per fault.
const BasicBlockPages = 16

// blockPages returns the population granularity for the space's page size.
func (as *AddressSpace) blockPages() int {
	if as.pageShift >= 21 {
		return 1
	}
	return BasicBlockPages
}

// sliceFrameBits positions per-slice frame-allocator bases 2^40 frames
// apart: far enough that slice pools never collide over any simulated
// footprint, yet well below the simulator's placeholder-PPN threshold.
const sliceFrameBits = 40

// ConfigureSlices equips the space with k per-slice frame allocators at
// disjoint bases so TouchSlice can demand-page concurrently from each
// slice. Slice s allocates frames from 1 + s<<sliceFrameBits with a
// slice-salted scatter stream; the serial Touch allocator is untouched.
// Reconfiguring with the same k is a no-op; the method is not safe to call
// concurrently with TouchSlice.
func (as *AddressSpace) ConfigureSlices(k int) {
	if k < 1 || len(as.sliceFrames) == k {
		return
	}
	as.sliceFrames = make([]*FrameAllocator, k)
	for s := range as.sliceFrames {
		base := PPN(1) + PPN(s)<<sliceFrameBits
		as.sliceFrames[s] = newFrameAllocatorAt(base, as.seed+int64(s)+1, as.scatter)
	}
}

// Touch resolves the page containing a, mapping its whole basic block on
// first touch (UVM demand paging). It reports the PPN and whether this
// access faulted.
func (as *AddressSpace) Touch(a Addr) (PPN, bool) {
	return as.touchFrom(a, as.frames)
}

// TouchSlice is Touch using slice s's frame allocator. Callers must route
// every page of a basic block to the same slice (the block-aligned VPN
// slicing the simulator uses guarantees this), which makes concurrent
// TouchSlice calls for distinct slices race-free: they populate disjoint
// leaf entries from disjoint frame pools, and interior radix nodes are
// created with lock-free compare-and-swap.
func (as *AddressSpace) TouchSlice(a Addr, s int) (PPN, bool) {
	return as.touchFrom(a, as.sliceFrames[s])
}

func (as *AddressSpace) touchFrom(a Addr, frames *FrameAllocator) (PPN, bool) {
	vpn := as.VPNOf(a)
	if ppn, ok := as.pt.Translate(vpn); ok {
		return ppn, false
	}
	// Populate the aligned basic block: consecutive frames for consecutive
	// pages, skipping pages that are somehow already mapped. Under
	// AllocContig the frame is positional (contigFrame), which still yields
	// consecutive frames within the block — blocks are aligned, so a block
	// never straddles a ContigRunPages subregion boundary.
	n := VPN(as.blockPages())
	base := vpn &^ (n - 1)
	var frame PPN
	if as.allocMode != AllocContig {
		frame = frames.AllocN(int(n))
	}
	var out PPN
	for off := VPN(0); off < n; off++ {
		v := base + off
		if _, ok := as.pt.Translate(v); ok {
			continue
		}
		p := frame + PPN(off)
		if as.allocMode == AllocContig {
			p = contigFrame(v)
			as.contigPages.Add(1)
		}
		if err := as.pt.Map(v, p); err != nil {
			// Unreachable: Translate just reported the page absent.
			panic(err)
		}
		if v == vpn {
			out = p
		}
	}
	as.faults.Add(1)
	return out, true
}
