package vm

// Race test for Fork: parallel sweep cells each simulate their own fork of
// one built address space, demand-faulting concurrently. Forks must share
// no mutable state — in particular no frame-allocator state — so this test
// is expected to run under -race (the CI test-race target does) and to
// produce, on every fork, exactly the allocation sequence a lone fork sees.

import (
	"sync"
	"testing"
)

func TestForkConcurrentDemandFaultsAreIndependent(t *testing.T) {
	proto := NewAddressSpace(12, 7, 3)
	r, err := proto.Alloc("data", 1<<20) // 256 pages
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one fork touched sequentially.
	touch := func(as *AddressSpace) ([]PPN, uint64) {
		ppns := make([]PPN, 0, 256)
		for a := r.Base; a < r.End(); a += 4096 {
			p, _ := as.Touch(a)
			ppns = append(ppns, p)
		}
		return ppns, as.Faults()
	}
	wantPPNs, wantFaults := touch(proto.Fork())

	const forks = 8
	gotPPNs := make([][]PPN, forks)
	gotFaults := make([]uint64, forks)
	allocated := make([]uint64, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			as := proto.Fork()
			gotPPNs[i], gotFaults[i] = touch(as)
			allocated[i] = as.frames.Allocated()
		}(i)
	}
	wg.Wait()

	for i := 0; i < forks; i++ {
		if gotFaults[i] != wantFaults {
			t.Errorf("fork %d took %d faults, want %d", i, gotFaults[i], wantFaults)
		}
		if allocated[i] != allocated[0] {
			t.Errorf("fork %d allocated %d frames, fork 0 allocated %d — allocator state leaked across forks",
				i, allocated[i], allocated[0])
		}
		for j, p := range gotPPNs[i] {
			if p != wantPPNs[j] {
				t.Fatalf("fork %d page %d mapped to PPN %d, want %d — frame allocation not independent",
					i, j, p, wantPPNs[j])
			}
		}
	}
	// The proto itself stayed untouched throughout.
	if proto.Faults() != 0 || proto.frames.Allocated() != 0 {
		t.Errorf("proto mutated by forked runs: %d faults, %d frames", proto.Faults(), proto.frames.Allocated())
	}
}
