package trace

import (
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/vm"
)

// Inst is one warp instruction. If Addrs is non-nil it is a memory
// instruction with one address per active lane (at most arch.WarpSize);
// otherwise it models Compute cycles of ALU work.
type Inst struct {
	Compute int
	Addrs   []vm.Addr
}

// IsMem reports whether the instruction accesses memory.
func (in Inst) IsMem() bool { return in.Addrs != nil }

// WarpTrace is the instruction stream of one warp.
type WarpTrace struct {
	Insts []Inst
}

// TBTrace is one thread block: its grid-wide id and its warps.
type TBTrace struct {
	ID    int
	Warps []WarpTrace
}

// Kernel is a full launch: a name, the TB geometry, and per-TB traces.
type Kernel struct {
	Name         string
	ThreadsPerTB int
	// RegsPerThread and SharedMemPerTB drive the occupancy calculation that
	// fixes concurrent TBs per SM at launch (paper §IV-B point two).
	RegsPerThread  int
	SharedMemPerTB int
	TBs            []TBTrace
	// PhaseStarts lists TB indices that begin a new dependent phase (a
	// separate kernel launch in the real application, e.g. the transposed
	// sweep of atax). The dispatcher must not launch a TB of phase p until
	// every TB of earlier phases has completed.
	PhaseStarts []int
}

// ValidatePhases checks that PhaseStarts is strictly ascending and in range.
func (k *Kernel) ValidatePhases() error {
	prev := 0
	for _, b := range k.PhaseStarts {
		if b <= prev || b >= len(k.TBs) {
			return fmt.Errorf("trace: phase start %d out of order or range (TBs %d)", b, len(k.TBs))
		}
		prev = b
	}
	return nil
}

// WarpsPerTB returns the warp count per TB.
func (k *Kernel) WarpsPerTB() int { return (k.ThreadsPerTB + arch.WarpSize - 1) / arch.WarpSize }

// ConcurrentTBsPerSM computes how many TBs of this kernel fit on one SM, the
// compile-time occupancy bound: threads, registers, shared memory, warp
// slots, and the hardware TB-slot limit.
func (k *Kernel) ConcurrentTBsPerSM(cfg arch.Config) int {
	n := cfg.EffectiveMaxTBsPerSM()
	if byThreads := cfg.MaxThreads / k.ThreadsPerTB; byThreads < n {
		n = byThreads
	}
	if byWarps := cfg.MaxWarpsPerSM / k.WarpsPerTB(); byWarps < n {
		n = byWarps
	}
	if k.RegsPerThread > 0 {
		if byRegs := cfg.RegistersPerSM / (k.RegsPerThread * k.ThreadsPerTB); byRegs < n {
			n = byRegs
		}
	}
	if k.SharedMemPerTB > 0 {
		if bySmem := cfg.SharedMemPerSM / k.SharedMemPerTB; bySmem < n {
			n = bySmem
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// MemInsts counts memory instructions across the kernel.
func (k *Kernel) MemInsts() int {
	n := 0
	for _, tb := range k.TBs {
		for _, w := range tb.Warps {
			for _, in := range w.Insts {
				if in.IsMem() {
					n++
				}
			}
		}
	}
	return n
}

// CoalesceLines merges a warp's lane addresses into unique cache-line
// addresses, preserving first-occurrence order (the coalescing unit issues
// one request per distinct line).
func CoalesceLines(addrs []vm.Addr, lineBytes int) []vm.Addr {
	return CoalesceLinesInto(make([]vm.Addr, 0, 4), addrs, lineBytes)
}

// CoalesceLinesInto is CoalesceLines appending into dst (reset to length
// zero), the allocation-free emit path: a caller that passes a buffer with
// capacity arch.WarpSize never allocates. Returns the filled buffer.
func CoalesceLinesInto(dst []vm.Addr, addrs []vm.Addr, lineBytes int) []vm.Addr {
	dst = dst[:0]
	shift := uintLog2(lineBytes)
	for _, a := range addrs {
		line := a >> shift
		dup := false
		for _, s := range dst {
			if s == line {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, line)
		}
	}
	return dst
}

// CoalescePages merges lane addresses into unique virtual page numbers,
// preserving first-occurrence order — the translation requests one warp
// memory instruction sends to the L1 TLB.
func CoalescePages(addrs []vm.Addr, pageShift uint) []vm.VPN {
	return CoalescePagesInto(make([]vm.VPN, 0, 2), addrs, pageShift)
}

// CoalescePagesInto is CoalescePages appending into dst (reset to length
// zero), the allocation-free emit path used by the simulator's per-
// instruction loop. Returns the filled buffer.
func CoalescePagesInto(dst []vm.VPN, addrs []vm.Addr, pageShift uint) []vm.VPN {
	dst = dst[:0]
	for _, a := range addrs {
		p := vm.VPN(a >> pageShift)
		dup := false
		for _, s := range dst {
			if s == p {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, p)
		}
	}
	return dst
}

func uintLog2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TBPageTrace flattens one TB into its translation-request stream: warps are
// interleaved round-robin one instruction at a time (approximating fair
// intra-TB warp scheduling) and each memory instruction contributes its
// coalesced pages in order. This is the stream the paper's characterization
// (Eq. 1 and the reuse-distance CDFs) operates on.
func TBPageTrace(tb TBTrace, pageShift uint) []vm.VPN {
	var out []vm.VPN
	idx := make([]int, len(tb.Warps))
	for {
		progressed := false
		for w := range tb.Warps {
			insts := tb.Warps[w].Insts
			if idx[w] >= len(insts) {
				continue
			}
			in := insts[idx[w]]
			idx[w]++
			progressed = true
			if in.IsMem() {
				out = append(out, CoalescePages(in.Addrs, pageShift)...)
			}
		}
		if !progressed {
			return out
		}
	}
}
