package trace

// Allocation regression guards for the coalescer emit path. The simulator
// calls CoalesceLinesInto/CoalescePagesInto once per issued memory
// instruction with a reused buffer; these pin that steady state at zero
// heap allocations so a future change cannot silently reintroduce the
// per-instruction garbage the hot-path overhaul removed.

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/vm"
)

// warpAddrs builds a full warp of lane addresses spanning several lines and
// two pages, exercising the dedup scan.
func warpAddrs() []vm.Addr {
	addrs := make([]vm.Addr, arch.WarpSize)
	for i := range addrs {
		addrs[i] = vm.Addr(0x1000 + i*64 + (i%2)*4096)
	}
	return addrs
}

func TestCoalesceLinesIntoZeroAlloc(t *testing.T) {
	addrs := warpAddrs()
	buf := make([]vm.Addr, 0, arch.WarpSize)
	allocs := testing.AllocsPerRun(100, func() {
		buf = CoalesceLinesInto(buf, addrs, 128)
	})
	if allocs != 0 {
		t.Errorf("CoalesceLinesInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestCoalescePagesIntoZeroAlloc(t *testing.T) {
	addrs := warpAddrs()
	buf := make([]vm.VPN, 0, arch.WarpSize)
	allocs := testing.AllocsPerRun(100, func() {
		buf = CoalescePagesInto(buf, addrs, 12)
	})
	if allocs != 0 {
		t.Errorf("CoalescePagesInto allocated %.1f times per run, want 0", allocs)
	}
}
