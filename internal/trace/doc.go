// Package trace represents GPU kernels as per-warp instruction streams and
// implements the memory coalescing unit. A kernel is a grid of thread blocks
// (TBs); each TB holds warps of 32 threads; each warp executes a sequence of
// instructions that are either compute delays or memory accesses carrying one
// address per active lane. The coalescer merges a warp's 32 lane addresses
// into unique cache-line requests and unique page-translation requests —
// exactly the stream the L1 TLB sees (step 1 of the paper's Figure 1).
package trace
