package trace

import (
	"testing"
	"testing/quick"

	"gputlb/internal/arch"
	"gputlb/internal/vm"
)

func TestCoalesceLinesMergesWithinLine(t *testing.T) {
	// 32 consecutive 4-byte words span one 128B line.
	addrs := make([]vm.Addr, 32)
	for i := range addrs {
		addrs[i] = vm.Addr(0x1000 + 4*i)
	}
	lines := CoalesceLines(addrs, 128)
	if len(lines) != 1 {
		t.Errorf("coalesced %d lines, want 1", len(lines))
	}
	if lines[0] != 0x1000/128 {
		t.Errorf("line = %#x, want %#x", lines[0], 0x1000/128)
	}
}

func TestCoalesceLinesStrided(t *testing.T) {
	// Stride of one line per lane: 32 distinct lines, order preserved.
	addrs := make([]vm.Addr, 32)
	for i := range addrs {
		addrs[i] = vm.Addr(128 * i)
	}
	lines := CoalesceLines(addrs, 128)
	if len(lines) != 32 {
		t.Fatalf("coalesced %d lines, want 32", len(lines))
	}
	for i, l := range lines {
		if l != vm.Addr(i) {
			t.Fatalf("line order not preserved: lines[%d] = %d", i, l)
		}
	}
}

func TestCoalescePages(t *testing.T) {
	addrs := []vm.Addr{0, 100, 4096, 8191, 4096 * 3}
	pages := CoalescePages(addrs, 12)
	want := []vm.VPN{0, 1, 3}
	if len(pages) != len(want) {
		t.Fatalf("pages = %v, want %v", pages, want)
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("pages = %v, want %v", pages, want)
		}
	}
}

// Property: coalescing yields exactly the distinct set, first-occurrence
// ordered, never longer than the input.
func TestCoalesceProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > arch.WarpSize {
			raw = raw[:arch.WarpSize]
		}
		addrs := make([]vm.Addr, len(raw))
		for i, r := range raw {
			addrs[i] = vm.Addr(r)
		}
		pages := CoalescePages(addrs, 4) // 16-byte pages: plenty of dups
		seen := map[vm.VPN]bool{}
		for _, p := range pages {
			if seen[p] {
				return false // duplicate emitted
			}
			seen[p] = true
		}
		for _, a := range addrs {
			if !seen[vm.VPN(a>>4)] {
				return false // dropped a page
			}
		}
		return len(pages) <= len(addrs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentTBsPerSM(t *testing.T) {
	cfg := arch.Default()
	k := &Kernel{Name: "k", ThreadsPerTB: 128}
	// 2048/128 = 16 by threads, 64/4 = 16 by warps, 16 slots: min = 16.
	if got := k.ConcurrentTBsPerSM(cfg); got != 16 {
		t.Errorf("128-thread TBs: %d per SM, want 16", got)
	}
	k.ThreadsPerTB = 512
	if got := k.ConcurrentTBsPerSM(cfg); got != 4 {
		t.Errorf("512-thread TBs: %d per SM, want 4", got)
	}
	k.ThreadsPerTB = 128
	k.RegsPerThread = 64 // 16384 regs / (64*128) = 2
	if got := k.ConcurrentTBsPerSM(cfg); got != 2 {
		t.Errorf("register-bound: %d per SM, want 2", got)
	}
	k.RegsPerThread = 0
	k.SharedMemPerTB = 16 << 10 // 48KB/16KB = 3
	if got := k.ConcurrentTBsPerSM(cfg); got != 3 {
		t.Errorf("shared-memory-bound: %d per SM, want 3", got)
	}
	k.SharedMemPerTB = 0
	cfg.ThrottleTBsPerSM = 2
	if got := k.ConcurrentTBsPerSM(cfg); got != 2 {
		t.Errorf("throttled: %d per SM, want 2", got)
	}
	// Even an oversubscribed TB gets one slot.
	cfg = arch.Default()
	k.SharedMemPerTB = 100 << 10
	if got := k.ConcurrentTBsPerSM(cfg); got != 1 {
		t.Errorf("oversized TB: %d per SM, want 1", got)
	}
}

func TestWarpsPerTB(t *testing.T) {
	for _, tc := range []struct{ threads, want int }{
		{32, 1}, {33, 2}, {256, 8}, {1, 1},
	} {
		k := &Kernel{ThreadsPerTB: tc.threads}
		if got := k.WarpsPerTB(); got != tc.want {
			t.Errorf("WarpsPerTB(%d) = %d, want %d", tc.threads, got, tc.want)
		}
	}
}

func TestTBPageTraceInterleavesWarps(t *testing.T) {
	mem := func(page int) Inst {
		return Inst{Addrs: []vm.Addr{vm.Addr(page) << 12}}
	}
	tb := TBTrace{
		Warps: []WarpTrace{
			{Insts: []Inst{mem(1), mem(2)}},
			{Insts: []Inst{mem(10), {Compute: 5}, mem(11)}},
		},
	}
	got := TBPageTrace(tb, 12)
	want := []vm.VPN{1, 10, 2, 11} // round-robin: w0i0 w1i0 w0i1 w1i1(compute) -> w1i2
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

func TestMemInsts(t *testing.T) {
	k := &Kernel{
		TBs: []TBTrace{
			{Warps: []WarpTrace{{Insts: []Inst{
				{Compute: 3},
				{Addrs: []vm.Addr{1}},
				{Addrs: []vm.Addr{2}},
			}}}},
			{Warps: []WarpTrace{{Insts: []Inst{{Addrs: []vm.Addr{3}}}}}},
		},
	}
	if got := k.MemInsts(); got != 3 {
		t.Errorf("MemInsts = %d, want 3", got)
	}
}

func TestInstIsMem(t *testing.T) {
	if (Inst{Compute: 4}).IsMem() {
		t.Error("compute instruction reported as memory")
	}
	if !(Inst{Addrs: []vm.Addr{0}}).IsMem() {
		t.Error("memory instruction not reported as memory")
	}
}
