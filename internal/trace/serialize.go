package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gputlb/internal/vm"
)

// Binary trace format: a compact varint encoding so kernels can be exported,
// archived and re-run (or imported from external tracers). Memory
// instructions delta-encode lane addresses, which compresses the common
// coalesced case to about one byte per lane.
//
//	magic "GPUTLBT1"
//	name, threadsPerTB, regsPerThread, sharedMemPerTB
//	phaseStarts
//	TBs: id, warps: insts: kind (0=compute, 1=mem),
//	     compute cycles | lane count + first addr + deltas

const traceMagic = "GPUTLBT1"

// WriteKernel serializes k to w in the binary trace format.
func WriteKernel(w io.Writer, k *Kernel) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(k.Name)))
	bw.WriteString(k.Name)
	writeUvarint(bw, uint64(k.ThreadsPerTB))
	writeUvarint(bw, uint64(k.RegsPerThread))
	writeUvarint(bw, uint64(k.SharedMemPerTB))
	writeUvarint(bw, uint64(len(k.PhaseStarts)))
	for _, p := range k.PhaseStarts {
		writeUvarint(bw, uint64(p))
	}
	writeUvarint(bw, uint64(len(k.TBs)))
	for _, tb := range k.TBs {
		writeUvarint(bw, uint64(tb.ID))
		writeUvarint(bw, uint64(len(tb.Warps)))
		for _, wt := range tb.Warps {
			writeUvarint(bw, uint64(len(wt.Insts)))
			for _, in := range wt.Insts {
				if in.IsMem() {
					bw.WriteByte(1)
					writeUvarint(bw, uint64(len(in.Addrs)))
					var prev vm.Addr
					for i, a := range in.Addrs {
						if i == 0 {
							writeUvarint(bw, uint64(a))
						} else {
							writeVarint(bw, int64(a)-int64(prev))
						}
						prev = a
					}
				} else {
					bw.WriteByte(0)
					writeUvarint(bw, uint64(in.Compute))
				}
			}
		}
	}
	return bw.Flush()
}

// ReadKernel deserializes a kernel written by WriteKernel.
func ReadKernel(r io.Reader) (*Kernel, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	k := &Kernel{}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	k.Name = string(name)
	fields := []*int{&k.ThreadsPerTB, &k.RegsPerThread, &k.SharedMemPerTB}
	for _, f := range fields {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	nPhases, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nPhases; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		k.PhaseStarts = append(k.PhaseStarts, int(v))
	}
	nTBs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for t := uint64(0); t < nTBs; t++ {
		var tb TBTrace
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		tb.ID = int(id)
		nWarps, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for w := uint64(0); w < nWarps; w++ {
			var wt WarpTrace
			nInsts, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < nInsts; i++ {
				kind, err := br.ReadByte()
				if err != nil {
					return nil, err
				}
				switch kind {
				case 0:
					c, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					wt.Insts = append(wt.Insts, Inst{Compute: int(c)})
				case 1:
					lanes, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					if lanes == 0 || lanes > 64 {
						return nil, fmt.Errorf("trace: implausible lane count %d", lanes)
					}
					addrs := make([]vm.Addr, lanes)
					first, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					addrs[0] = vm.Addr(first)
					for l := uint64(1); l < lanes; l++ {
						d, err := binary.ReadVarint(br)
						if err != nil {
							return nil, err
						}
						addrs[l] = vm.Addr(int64(addrs[l-1]) + d)
					}
					wt.Insts = append(wt.Insts, Inst{Addrs: addrs})
				default:
					return nil, fmt.Errorf("trace: unknown instruction kind %d", kind)
				}
			}
			tb.Warps = append(tb.Warps, wt)
		}
		k.TBs = append(k.TBs, tb)
	}
	if err := k.ValidatePhases(); err != nil {
		return nil, err
	}
	return k, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
