package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gputlb/internal/vm"
)

// Binary trace format: a compact varint encoding so kernels can be exported,
// archived and re-run (or imported from external tracers). Memory
// instructions delta-encode lane addresses, which compresses the common
// coalesced case to about one byte per lane. Two on-disk versions exist,
// distinguished by the last magic byte:
//
//	magic "GPUTLBT2" (current; what WriteKernel emits)
//	name, threadsPerTB, regsPerThread, sharedMemPerTB
//	phaseStarts
//	TBs: id, warps: insts: kind (0=compute, 1=mem),
//	     compute cycles | lane count + first addr + byte deltas
//
//	magic "GPUTLBT1" (archived; read-only)
//	identical structure, but sharedMemPerTB and each mem instruction's
//	first lane address are stored scaled down to 128-byte cache-line
//	units, and a negative lane delta -n means "n lines forward, landing
//	on the line start" rather than a backward byte delta. The original
//	tracer divided by the line size without shifting back on read — the
//	scale bug the golden test pinned — so ReadKernel undoes the scaling
//	for v1 inputs while v2 stores every value byte-exact.

const (
	tracePrefix  = "GPUTLBT"
	traceMagic   = tracePrefix + "1" // archived line-unit format (read-only)
	traceMagicV2 = tracePrefix + "2" // current byte-exact format

	// v1LineShift is the log2 line size of the archived format's units.
	v1LineShift = 7
)

// WriteKernel serializes k to w in the binary trace format.
func WriteKernel(w io.Writer, k *Kernel) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagicV2); err != nil {
		return err
	}
	writeUvarint(bw, uint64(len(k.Name)))
	bw.WriteString(k.Name)
	writeUvarint(bw, uint64(k.ThreadsPerTB))
	writeUvarint(bw, uint64(k.RegsPerThread))
	writeUvarint(bw, uint64(k.SharedMemPerTB))
	writeUvarint(bw, uint64(len(k.PhaseStarts)))
	for _, p := range k.PhaseStarts {
		writeUvarint(bw, uint64(p))
	}
	writeUvarint(bw, uint64(len(k.TBs)))
	for _, tb := range k.TBs {
		writeUvarint(bw, uint64(tb.ID))
		writeUvarint(bw, uint64(len(tb.Warps)))
		for _, wt := range tb.Warps {
			writeUvarint(bw, uint64(len(wt.Insts)))
			for _, in := range wt.Insts {
				if in.IsMem() {
					bw.WriteByte(1)
					writeUvarint(bw, uint64(len(in.Addrs)))
					var prev vm.Addr
					for i, a := range in.Addrs {
						if i == 0 {
							writeUvarint(bw, uint64(a))
						} else {
							writeVarint(bw, int64(a)-int64(prev))
						}
						prev = a
					}
				} else {
					bw.WriteByte(0)
					writeUvarint(bw, uint64(in.Compute))
				}
			}
		}
	}
	return bw.Flush()
}

// ReadKernel deserializes a kernel written by WriteKernel. It accepts both
// the current v2 encoding and archived v1 traces, undoing the v1 format's
// 128-byte-line scaling so archived kernels decode to byte addresses.
func ReadKernel(r io.Reader) (*Kernel, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	var v1 bool
	switch string(magic) {
	case traceMagic:
		v1 = true
	case traceMagicV2:
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	k := &Kernel{}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	k.Name = string(name)
	fields := []*int{&k.ThreadsPerTB, &k.RegsPerThread, &k.SharedMemPerTB}
	for _, f := range fields {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	if v1 {
		// v1 stored shared memory in 128-byte allocation units.
		k.SharedMemPerTB <<= v1LineShift
	}
	nPhases, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nPhases; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		k.PhaseStarts = append(k.PhaseStarts, int(v))
	}
	nTBs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for t := uint64(0); t < nTBs; t++ {
		var tb TBTrace
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		tb.ID = int(id)
		nWarps, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for w := uint64(0); w < nWarps; w++ {
			var wt WarpTrace
			nInsts, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < nInsts; i++ {
				kind, err := br.ReadByte()
				if err != nil {
					return nil, err
				}
				switch kind {
				case 0:
					c, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					wt.Insts = append(wt.Insts, Inst{Compute: int(c)})
				case 1:
					lanes, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					if lanes == 0 || lanes > 64 {
						return nil, fmt.Errorf("trace: implausible lane count %d", lanes)
					}
					addrs := make([]vm.Addr, lanes)
					first, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					if v1 {
						// v1 stored the first lane as its line number.
						addrs[0] = vm.Addr(first) << v1LineShift
					} else {
						addrs[0] = vm.Addr(first)
					}
					for l := uint64(1); l < lanes; l++ {
						d, err := binary.ReadVarint(br)
						if err != nil {
							return nil, err
						}
						prev := addrs[l-1]
						if v1 && d < 0 {
							// v1 negative delta: jump |d| lines forward,
							// landing on the line start.
							addrs[l] = ((prev >> v1LineShift) + vm.Addr(-d)) << v1LineShift
						} else {
							addrs[l] = vm.Addr(int64(prev) + d)
						}
					}
					wt.Insts = append(wt.Insts, Inst{Addrs: addrs})
				default:
					return nil, fmt.Errorf("trace: unknown instruction kind %d", kind)
				}
			}
			tb.Warps = append(tb.Warps, wt)
		}
		k.TBs = append(k.TBs, tb)
	}
	if err := k.ValidatePhases(); err != nil {
		return nil, err
	}
	return k, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
