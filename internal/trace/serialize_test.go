package trace

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"gputlb/internal/vm"
)

func kernelsEqual(a, b *Kernel) bool {
	if a.Name != b.Name || a.ThreadsPerTB != b.ThreadsPerTB ||
		a.RegsPerThread != b.RegsPerThread || a.SharedMemPerTB != b.SharedMemPerTB ||
		len(a.TBs) != len(b.TBs) || len(a.PhaseStarts) != len(b.PhaseStarts) {
		return false
	}
	for i := range a.PhaseStarts {
		if a.PhaseStarts[i] != b.PhaseStarts[i] {
			return false
		}
	}
	for i := range a.TBs {
		ta, tb := a.TBs[i], b.TBs[i]
		if ta.ID != tb.ID || len(ta.Warps) != len(tb.Warps) {
			return false
		}
		for w := range ta.Warps {
			ia, ib := ta.Warps[w].Insts, tb.Warps[w].Insts
			if len(ia) != len(ib) {
				return false
			}
			for j := range ia {
				if ia[j].Compute != ib[j].Compute || len(ia[j].Addrs) != len(ib[j].Addrs) {
					return false
				}
				for l := range ia[j].Addrs {
					if ia[j].Addrs[l] != ib[j].Addrs[l] {
						return false
					}
				}
			}
		}
	}
	return true
}

func randomKernel(seed int64) *Kernel {
	rng := rand.New(rand.NewSource(seed))
	k := &Kernel{
		Name:           "rnd",
		ThreadsPerTB:   32 * (1 + rng.Intn(8)),
		RegsPerThread:  rng.Intn(64),
		SharedMemPerTB: rng.Intn(1 << 14),
	}
	nTBs := 2 + rng.Intn(6)
	for t := 0; t < nTBs; t++ {
		var tb TBTrace
		tb.ID = t
		for w := 0; w < 1+rng.Intn(3); w++ {
			var wt WarpTrace
			for i := 0; i < rng.Intn(20); i++ {
				if rng.Intn(2) == 0 {
					wt.Insts = append(wt.Insts, Inst{Compute: rng.Intn(500)})
				} else {
					addrs := make([]vm.Addr, 1+rng.Intn(32))
					for l := range addrs {
						addrs[l] = vm.Addr(rng.Int63n(1 << 40))
					}
					wt.Insts = append(wt.Insts, Inst{Addrs: addrs})
				}
			}
			tb.Warps = append(tb.Warps, wt)
		}
		k.TBs = append(k.TBs, tb)
	}
	if nTBs > 2 && rng.Intn(2) == 0 {
		k.PhaseStarts = []int{1 + rng.Intn(nTBs-1)}
	}
	return k
}

// Property: WriteKernel/ReadKernel round-trips arbitrary kernels exactly.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		k := randomKernel(seed)
		var buf bytes.Buffer
		if err := WriteKernel(&buf, k); err != nil {
			return false
		}
		got, err := ReadKernel(&buf)
		if err != nil {
			return false
		}
		return kernelsEqual(k, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSerializeCompact(t *testing.T) {
	// Coalesced lanes (consecutive addresses) must encode near one byte
	// per lane thanks to delta encoding.
	k := &Kernel{Name: "c", ThreadsPerTB: 32}
	var wt WarpTrace
	for i := 0; i < 100; i++ {
		addrs := make([]vm.Addr, 32)
		for l := range addrs {
			addrs[l] = vm.Addr(1<<30 + i*4096 + l*8)
		}
		wt.Insts = append(wt.Insts, Inst{Addrs: addrs})
	}
	k.TBs = []TBTrace{{Warps: []WarpTrace{wt}}}
	var buf bytes.Buffer
	if err := WriteKernel(&buf, k); err != nil {
		t.Fatal(err)
	}
	// 3200 lane addresses; raw encoding would be 25KB+.
	if buf.Len() > 8000 {
		t.Errorf("trace encodes to %d bytes; delta encoding should stay well under 8000", buf.Len())
	}
	got, err := ReadKernel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !kernelsEqual(k, got) {
		t.Error("round trip mismatch")
	}
}

func TestReadKernelRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad-magic": []byte("NOTATRACE"),
		"truncated": []byte(traceMagic + "\x05abc"),
	}
	for name, data := range cases {
		if _, err := ReadKernel(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadKernelRejectsBadPhases(t *testing.T) {
	k := randomKernel(1)
	k.PhaseStarts = []int{len(k.TBs) + 5}
	var buf bytes.Buffer
	if err := WriteKernel(&buf, k); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadKernel(&buf); err == nil || !strings.Contains(err.Error(), "phase") {
		t.Errorf("bad phase starts accepted: %v", err)
	}
}

// TestGoldenTraceFormat pins the archived v1 on-disk format: the checked-in
// golden file must keep decoding to exactly this kernel, so readers of
// archived traces never break silently. v1 stores shared memory and each
// mem instruction's first lane in 128-byte line units; positive lane deltas
// are byte offsets and negative deltas jump forward to a line start.
func TestGoldenTraceFormat(t *testing.T) {
	f, err := os.Open("testdata/golden.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	k, err := ReadKernel(f)
	if err != nil {
		t.Fatal(err)
	}
	want := &Kernel{Name: "golden", ThreadsPerTB: 64, RegsPerThread: 32, SharedMemPerTB: 1024}
	want.TBs = []TBTrace{
		{ID: 0, Warps: []WarpTrace{{Insts: []Inst{
			// Stored as line 0x20 (=0x1000), byte delta +8, then a
			// 32-line forward jump to line 0x40 (=0x2000).
			{Addrs: []vm.Addr{0x1000, 0x1008, 0x2000}},
			{Compute: 42},
			// A single uncoalesced lane, stored as its line number
			// 55007 (varint df ad 03) = byte address 0x6b6c80. The
			// stored 16-bit line number is all the file carries: the
			// archived format cannot express a wider address here, so
			// this is the exact value a v1 reader must recover.
			{Addrs: []vm.Addr{55007 << 7}},
		}}}},
		{ID: 1, Warps: []WarpTrace{{Insts: []Inst{{Compute: 7}}}}},
	}
	want.PhaseStarts = []int{1}
	if !kernelsEqual(want, k) {
		t.Errorf("golden trace decoded differently:\n%+v", k)
	}
}

// TestGoldenTraceReencode: archived v1 traces re-encode to the current v2
// format and survive the round trip unchanged.
func TestGoldenTraceReencode(t *testing.T) {
	data, err := os.ReadFile("testdata/golden.trace")
	if err != nil {
		t.Fatal(err)
	}
	k, err := ReadKernel(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteKernel(&buf, k); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(buf.Bytes(), data[:8]) {
		t.Error("re-encode kept the archived v1 magic; WriteKernel must emit v2")
	}
	k2, err := ReadKernel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !kernelsEqual(k, k2) {
		t.Errorf("v1 -> v2 re-encode changed the kernel:\n%+v\n%+v", k, k2)
	}
}

// Property: the v2 encoding is canonical — re-encoding a decoded kernel
// reproduces the original bytes, so Write(Read(x)) == x for written blobs.
func TestSerializeEncodingStable(t *testing.T) {
	f := func(seed int64) bool {
		k := randomKernel(seed)
		var b1 bytes.Buffer
		if err := WriteKernel(&b1, k); err != nil {
			return false
		}
		blob := append([]byte(nil), b1.Bytes()...)
		k2, err := ReadKernel(&b1)
		if err != nil {
			return false
		}
		var b2 bytes.Buffer
		if err := WriteKernel(&b2, k2); err != nil {
			return false
		}
		return bytes.Equal(blob, b2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
