package trace

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReadKernel feeds the decoder arbitrary bytes: it must never panic,
// and any input it accepts must round-trip stably through the current
// encoder — decode, re-encode, re-decode must yield an identical kernel.
func FuzzReadKernel(f *testing.F) {
	if golden, err := os.ReadFile("testdata/golden.trace"); err == nil {
		f.Add(golden)
	}
	var valid bytes.Buffer
	if err := WriteKernel(&valid, randomKernel(3)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(traceMagic))
	f.Add([]byte(traceMagicV2 + "\x00"))
	f.Add([]byte("NOTATRACE"))

	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := ReadKernel(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteKernel(&buf, k); err != nil {
			t.Fatalf("accepted kernel fails to re-encode: %v", err)
		}
		k2, err := ReadKernel(&buf)
		if err != nil {
			t.Fatalf("re-encoded kernel fails to decode: %v", err)
		}
		if !kernelsEqual(k, k2) {
			t.Fatalf("round trip unstable:\nfirst:  %+v\nsecond: %+v", k, k2)
		}
	})
}
