package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gputlb/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden stats snapshot")

// goldenBenchmarks covers one small benchmark per workload family of Table
// II: graph traversal (bfs), graph iteration (pagerank), linear algebra
// (atax), stencil (3dconv), and dynamic programming (nw).
var goldenBenchmarks = []string{"bfs", "pagerank", "atax", "3dconv", "nw"}

// goldenStatsJSON runs every golden benchmark under the baseline config at
// the given parallelism and returns the serialized stats dump.
func goldenStatsJSON(t *testing.T, parallelism int) []byte {
	return goldenStatsJSONCell(t, parallelism, 1)
}

// goldenStatsJSONCell additionally selects the intra-cell engine.
func goldenStatsJSONCell(t *testing.T, parallelism, cellParallel int) []byte {
	return goldenStatsJSONSliced(t, parallelism, cellParallel, 1)
}

// goldenStatsJSONSliced additionally selects the barrier's address-slice
// count (effective only on the sharded engine).
func goldenStatsJSONSliced(t *testing.T, parallelism, cellParallel, l2Slices int) []byte {
	t.Helper()
	dump := &StatsDump{}
	opt := Options{
		Params:       workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2},
		Benchmarks:   goldenBenchmarks,
		Parallelism:  parallelism,
		CellParallel: cellParallel,
		L2Slices:     l2Slices,
		StatsDump:    dump,
	}
	specs, err := opt.specs()
	if err != nil {
		t.Fatal(err)
	}
	var cells []simCell
	for _, s := range specs {
		cells = append(cells, simCell{s, "baseline", opt.Params, BaselineConfig()})
	}
	if _, err := opt.runCells(cells); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dump.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenStats locks the full stats tree of a deterministic baseline run
// per workload family against testdata/golden_stats.json. Any change to the
// timing model, the workload generators, or the stats registry that shifts a
// single counter shows up here. Refresh intentionally with:
//
//	go test ./internal/experiments -run TestGoldenStats -update
func TestGoldenStats(t *testing.T) {
	got := goldenStatsJSON(t, 1)
	golden := filepath.Join("testdata", "golden_stats.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stats dump diverged from %s (%d vs %d bytes); first difference at byte %d — "+
			"inspect the diff and rerun with -update if intentional",
			golden, len(got), len(want), firstDiff(got, want))
	}
}

// TestGoldenStatsParallelismInvariant: the golden dump must be byte-identical
// whether the cells ran sequentially or eight at a time.
func TestGoldenStatsParallelismInvariant(t *testing.T) {
	seq := goldenStatsJSON(t, 1)
	par := goldenStatsJSON(t, 8)
	if !bytes.Equal(seq, par) {
		t.Errorf("stats dump differs across parallelism (first difference at byte %d)", firstDiff(seq, par))
	}
}

// TestGoldenStatsCellParallelSharded: the sharded intra-cell engine is its
// own deterministic serialization — bit-identical across worker counts even
// though it (legitimately) differs from the serial goldens.
func TestGoldenStatsCellParallelSharded(t *testing.T) {
	two := goldenStatsJSONCell(t, 1, 2)
	eight := goldenStatsJSONCell(t, 4, 8)
	if !bytes.Equal(two, eight) {
		t.Errorf("sharded stats dump differs across cell-parallel worker counts (first difference at byte %d)", firstDiff(two, eight))
	}
}

// TestGoldenStatsSliced locks the address-sliced barrier's serialization
// (sharded engine, 4 slices) against testdata/golden_stats_sliced.json.
// K > 1 partitions the L2 TLB/cache sets, walker pools and DRAM channels
// per address slice, so its stats legitimately differ from the serial
// goldens — but they are a deterministic model of their own, bit-identical
// at every worker count, and this pin catches unintended shifts in that
// model. Refresh both pins with `make golden-update`.
func TestGoldenStatsSliced(t *testing.T) {
	got := goldenStatsJSONSliced(t, 1, 2, 4)
	golden := filepath.Join("testdata", "golden_stats_sliced.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sliced stats dump diverged from %s (%d vs %d bytes); first difference at byte %d — "+
			"inspect the diff and rerun with -update if intentional",
			golden, len(got), len(want), firstDiff(got, want))
	}
	eight := goldenStatsJSONSliced(t, 4, 8, 4)
	if !bytes.Equal(got, eight) {
		t.Errorf("sliced stats dump differs across cell-parallel worker counts (first difference at byte %d)", firstDiff(got, eight))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
