package experiments

import (
	"strings"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/workloads"
)

// smallOpt uses a reduced scale and a two-benchmark subset so the full
// experiment surface stays fast in unit tests.
func smallOpt() Options {
	return Options{
		Params:         workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2},
		Benchmarks:     []string{"atax", "gemm"},
		MaxTBsForPairs: 48,
	}
}

func TestConfigsDifferAsAdvertised(t *testing.T) {
	if BaselineConfig().TBScheduler != arch.ScheduleRoundRobin {
		t.Error("baseline scheduler wrong")
	}
	if SchedConfig().TBScheduler != arch.ScheduleTLBAware {
		t.Error("sched config scheduler wrong")
	}
	if PartConfig().TLBIndexPolicy != arch.IndexByTB || PartConfig().TBScheduler != arch.ScheduleTLBAware {
		t.Error("part config wrong")
	}
	if ShareConfig().TLBIndexPolicy != arch.IndexByTBShared {
		t.Error("share config wrong")
	}
	for _, c := range []arch.Config{BaselineConfig(), SchedConfig(), PartConfig(), ShareConfig()} {
		if err := c.Validate(); err != nil {
			t.Errorf("invalid experiment config: %v", err)
		}
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"nope"}
	if _, err := Fig2(opt); err == nil {
		t.Error("Fig2 accepted unknown benchmark")
	}
	if _, err := Eval(opt); err == nil {
		t.Error("Eval accepted unknown benchmark")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.ScaledFootprintMB <= 0 || r.TBs <= 0 || r.UniquePages <= 0 {
			t.Errorf("%s: empty metadata %+v", r.Name, r)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "atax") || !strings.Contains(out, "gemm") {
		t.Error("render missing benchmarks")
	}
}

func TestTable3MentionsConfig(t *testing.T) {
	s := Table3()
	for _, want := range []string{"16 SMs", "64 entries", "512 entries"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestFig2ShapeAndRender(t *testing.T) {
	rows, err := Fig2(smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Hit64 < 0 || r.Hit64 > 1 || r.Hit256 < 0 || r.Hit256 > 1 {
			t.Errorf("%s: hit rates out of range: %+v", r.Bench, r)
		}
		if r.Hit256 < r.Hit64-0.02 {
			t.Errorf("%s: 256-entry hit %f below 64-entry %f", r.Bench, r.Hit256, r.Hit64)
		}
	}
	if RenderFig2(rows) == "" {
		t.Error("empty render")
	}
}

func TestFig3And4Bins(t *testing.T) {
	for name, fn := range map[string]func(Options) ([]BinsRow, error){
		"fig3": Fig3, "fig4": Fig4, "warp": WarpReuse,
	} {
		rows, err := fn(smallOpt())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rows {
			sum := 0.0
			for _, b := range r.Bins {
				sum += b
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("%s %s: bins sum to %v", name, r.Bench, sum)
			}
		}
		if RenderBins(name, rows) == "" {
			t.Errorf("%s: empty render", name)
		}
	}
}

func TestFig5And6CDFs(t *testing.T) {
	opt := smallOpt()
	inter, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inter {
		// CDFs must be monotone and the interleaved distances must not be
		// shorter than the isolated ones at the L1 capacity point.
		c := inter[i].CDF
		prev := 0.0
		for l := 3; l <= 12; l++ {
			v := c.FractionWithin(l)
			if v < prev-1e-9 {
				t.Errorf("%s: interleaved CDF not monotone", inter[i].Bench)
			}
			prev = v
		}
		if inter[i].CDF.FractionWithin(6) > iso[i].CDF.FractionWithin(6)+1e-9 {
			t.Errorf("%s: interference shrank reuse distances (inter %.3f > iso %.3f at 2^6)",
				inter[i].Bench, inter[i].CDF.FractionWithin(6), iso[i].CDF.FractionWithin(6))
		}
	}
	if RenderCDF("t", inter) == "" || RenderCDF("t", iso) == "" {
		t.Error("empty render")
	}
}

func TestEvalAndRenders(t *testing.T) {
	rows, err := Eval(smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CyclesBase <= 0 || r.CyclesSched <= 0 || r.CyclesPart <= 0 || r.CyclesShare <= 0 {
			t.Errorf("%s: zero cycles %+v", r.Bench, r)
		}
		for _, norm := range []float64{r.NormSched(), r.NormPart(), r.NormShare()} {
			if norm < 0.2 || norm > 5 {
				t.Errorf("%s: implausible normalized time %v", r.Bench, norm)
			}
		}
	}
	if !strings.Contains(RenderFig11(rows), "geomean") {
		t.Error("Fig11 render missing geomean row")
	}
	if RenderFig10(rows) == "" {
		t.Error("empty Fig10 render")
	}
}

func TestFig12(t *testing.T) {
	rows, err := Fig12(smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: non-positive speedup", r.Bench)
		}
	}
	if !strings.Contains(RenderFig12(rows), "geomean") {
		t.Error("render missing geomean")
	}
}

func TestHugePages(t *testing.T) {
	rows, err := HugePages(smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Hit2M < r.Hit4K {
			t.Errorf("%s: 2MB hit %f below 4KB hit %f (huge pages must raise hit rates)",
				r.Bench, r.Hit2M, r.Hit4K)
		}
		if r.SpeedupOurs2M <= 0 {
			t.Errorf("%s: bad speedup", r.Bench)
		}
	}
	if RenderHugePages(rows) == "" {
		t.Error("empty render")
	}
}

func TestAblations(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"atax"}
	rows, err := AblationSharing(opt, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // counter>=8 and all-to-all
		t.Fatalf("sharing ablation rows = %d, want 2", len(rows))
	}
	rows, err = AblationThrottle(opt, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("throttle ablation rows = %d, want 1", len(rows))
	}
	if RenderAblation("t", rows) == "" {
		t.Error("empty render")
	}
}

func TestNewAblations(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"atax"}
	ws, err := AblationWarpSched(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 { // lrr + translation-aware
		t.Fatalf("warp-sched rows = %d, want 2", len(ws))
	}
	pwc, err := AblationPWC(opt, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pwc) != 2 { // baseline+pwc, proposal+pwc
		t.Fatalf("pwc rows = %d, want 2", len(pwc))
	}
	for _, r := range pwc {
		if r.NormTime > 1.05 {
			t.Errorf("%s %s: PWC slowed execution (%.3f)", r.Bench, r.Variant, r.NormTime)
		}
	}
	rep, err := AblationReplacement(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 2 { // fifo + random
		t.Fatalf("replacement rows = %d, want 2", len(rep))
	}
}

func TestSMBalance(t *testing.T) {
	opt := smallOpt()
	opt.Benchmarks = []string{"bfs"}
	rows, err := SMBalance(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.SpreadRR < 0 || r.SpreadRR > 1 || r.SpreadAware < 0 || r.SpreadAware > 1 {
		t.Errorf("spreads out of range: %+v", r)
	}
	if RenderSMBalance(rows) == "" {
		t.Error("empty render")
	}
}

func TestSeedSweep(t *testing.T) {
	opt := smallOpt()
	rows, err := SeedSweep(opt, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		for _, g := range []float64{r.GeoSched, r.GeoPart, r.GeoShare} {
			if g < 0.2 || g > 5 {
				t.Errorf("seed %d: implausible geomean %v", r.Seed, g)
			}
		}
	}
	if RenderSeedSweep(rows) == "" {
		t.Error("empty render")
	}
}
