package experiments

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestEvalDeterministicAcrossParallelism is the core correctness guarantee
// of the sweep engine: every simulation cell is a pure function of its
// (spec, params, config) inputs, so a parallel Eval must be bit-identical
// to a sequential one, and two same-seed sequential runs must agree.
func TestEvalDeterministicAcrossParallelism(t *testing.T) {
	opt := smallOpt()

	opt.Parallelism = 1
	seq1, err := Eval(opt)
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := Eval(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq1, seq2) {
		t.Fatalf("two same-seed sequential runs differ:\n%+v\n%+v", seq1, seq2)
	}

	opt.Parallelism = 8
	par, err := Eval(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq1, par) {
		t.Fatalf("parallel Eval differs from sequential:\nseq: %+v\npar: %+v", seq1, par)
	}
}

// TestEvalProgressCoversEveryCell: the progress callback reports every cell
// of the grid exactly once (2 benchmarks x 4 configs in smallOpt).
func TestEvalProgressCoversEveryCell(t *testing.T) {
	opt := smallOpt()
	opt.Parallelism = 4
	var calls atomic.Int64
	wantTotal := len(opt.Benchmarks) * 4
	opt.Progress = func(done, total int) {
		calls.Add(1)
		if total != wantTotal {
			t.Errorf("progress total = %d, want %d", total, wantTotal)
		}
	}
	if _, err := Eval(opt); err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != wantTotal {
		t.Errorf("progress called %d times, want %d", calls.Load(), wantTotal)
	}
}

// TestEvalHonorsCancelledContext: a pre-cancelled context aborts the sweep
// with the cancellation error instead of running the grid.
func TestEvalHonorsCancelledContext(t *testing.T) {
	opt := smallOpt()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt.Context = ctx
	if _, err := Eval(opt); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}
