package experiments

import (
	"reflect"
	"strings"
	"testing"

	"gputlb/internal/workloads"
)

func multiOpt(benches ...string) Options {
	return Options{
		Params:     workloads.Params{PageShift: 12, Seed: 1, Scale: 0.1},
		Benchmarks: benches,
	}
}

func TestMultiPairs(t *testing.T) {
	got := MultiPairs([]string{"a", "b", "c"})
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MultiPairs = %v, want %v", got, want)
	}
	if MultiPairs([]string{"a"}) != nil {
		t.Error("single benchmark produced pairs")
	}
}

func TestMultiGridShape(t *testing.T) {
	rows, err := MultiGrid(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	want := len(MultiTLBModes) * len(MultiSMPolicies)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	i := 0
	for _, mode := range MultiTLBModes {
		for _, pol := range MultiSMPolicies {
			r := rows[i]
			i++
			if r.Benches != [2]string{"bfs", "atax"} || r.TLBMode != mode.String() || r.SMPolicy != pol.String() {
				t.Errorf("row %d = %v/%s/%s", i-1, r.Benches, r.TLBMode, r.SMPolicy)
			}
			if len(r.Tenants) != 2 {
				t.Fatalf("row %d has %d tenants", i-1, len(r.Tenants))
			}
			if r.SoloIPC[0] <= 0 || r.SoloIPC[1] <= 0 {
				t.Errorf("row %d solo IPC %v", i-1, r.SoloIPC)
			}
			if r.WeightedSpeedup <= 0 || r.WeightedSpeedup > 2 {
				t.Errorf("row %d weighted speedup %f outside (0, 2]", i-1, r.WeightedSpeedup)
			}
		}
	}
}

func TestMultiGridDeterministic(t *testing.T) {
	opt := multiOpt("bfs", "atax")
	r1, err := MultiGrid(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := multiOpt("bfs", "atax")
	opt2.Parallelism = 1
	r2, err := MultiGrid(opt2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("MultiGrid rows differ across parallelism levels")
	}
	if out := RenderMulti(r1); out != RenderMulti(r2) {
		t.Error("rendered co-run tables differ")
	}
}

func TestMultiGridNeedsTwoBenchmarks(t *testing.T) {
	if _, err := MultiGrid(multiOpt("bfs")); err == nil {
		t.Error("single-benchmark grid accepted")
	}
	if _, err := MultiGrid(multiOpt("bfs", "nope")); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestDynamicPartitioningBeatsSharedSomewhere is the headline claim of the
// interference study: for at least one workload pair, tenant-aware dynamic
// partitioning of the L2 TLB yields a higher weighted speedup than leaving
// it fully shared. mis+pagerank is such a pair: both are walk-heavy graph
// kernels that thrash each other's L2 TLB sets when shared.
func TestDynamicPartitioningBeatsSharedSomewhere(t *testing.T) {
	opt := Options{
		Params:     workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2},
		Benchmarks: []string{"mis", "pagerank"},
	}
	rows, err := MultiGrid(opt)
	if err != nil {
		t.Fatal(err)
	}
	ws := map[string]float64{}
	for _, r := range rows {
		if r.SMPolicy == "spatial" {
			ws[r.TLBMode] = r.WeightedSpeedup
		}
	}
	if ws["dynamic"] <= ws["shared"] {
		t.Errorf("dynamic partitioning WS %.4f not above fully-shared %.4f for mis+pagerank",
			ws["dynamic"], ws["shared"])
	}
}

func TestRenderMulti(t *testing.T) {
	rows, err := MultiGrid(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderMulti(rows)
	for _, want := range []string{"bfs+atax", "dynamic", "spatial", "Geomean WS"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
