package experiments

import (
	"reflect"
	"strings"
	"testing"

	"gputlb/internal/workloads"
)

func TestChurnGridShape(t *testing.T) {
	rows, err := ChurnGrid(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(MultiTLBModes); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for i, mode := range MultiTLBModes {
		r := rows[i]
		if r.Benches != [2]string{"bfs", "atax"} || r.TLBMode != mode.String() {
			t.Errorf("row %d = %v/%s", i, r.Benches, r.TLBMode)
		}
		// Two initial tenants plus the two fixed arrivals.
		if len(r.Tenants) != 4 || len(r.SoloIPC) != 4 {
			t.Fatalf("row %d has %d tenants, %d solo refs", i, len(r.Tenants), len(r.SoloIPC))
		}
		for j, tn := range r.Tenants {
			if tn.Shed {
				continue
			}
			if tn.IPC() <= 0 || r.SoloIPC[j] <= 0 {
				t.Errorf("row %d tenant %d: IPC %f, solo %f", i, j, tn.IPC(), r.SoloIPC[j])
			}
		}
		if r.WeightedSpeedup <= 0 {
			t.Errorf("row %d weighted speedup %f", i, r.WeightedSpeedup)
		}
		// The arrivals re-run the pair's own benchmarks.
		if r.Tenants[2].Name != "bfs" || r.Tenants[3].Name != "atax" {
			t.Errorf("row %d arrivals = %s, %s", i, r.Tenants[2].Name, r.Tenants[3].Name)
		}
	}
}

func TestChurnGridDeterministic(t *testing.T) {
	r1, err := ChurnGrid(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	opt := multiOpt("bfs", "atax")
	opt.Parallelism = 1
	r2, err := ChurnGrid(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("ChurnGrid rows differ across parallelism levels")
	}
	if RenderChurn(r1) != RenderChurn(r2) {
		t.Error("rendered churn tables differ")
	}
}

func TestChurnGridObjective(t *testing.T) {
	opt := multiOpt("bfs", "atax")
	opt.Objective = "maxmin"
	if _, err := ChurnGrid(opt); err != nil {
		t.Fatal(err)
	}
	opt.Objective = "bogus"
	if _, err := ChurnGrid(opt); err == nil {
		t.Error("unknown objective accepted")
	}
	if _, err := ChurnGrid(multiOpt("bfs")); err == nil {
		t.Error("single-benchmark churn grid accepted")
	}
}

// TestControllerBeatsStaticTenancySomewhere is the headline claim of the
// churn study: under tenant churn, the online partitioning controller
// yields a higher weighted speedup than every static tenancy mode for at
// least one workload pair. mis+pagerank at scale 0.2 is such a pair: the
// two graph kernels interfere heavily in the L2 TLB (partitioning already
// pays off statically), and the controller additionally reclaims a
// departed tenant's SMs and TLB sets for the survivors — which no static
// mode can do.
func TestControllerBeatsStaticTenancySomewhere(t *testing.T) {
	opt := Options{
		Params:     workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2},
		Benchmarks: []string{"mis", "pagerank"},
	}
	rows, err := ChurnGrid(opt)
	if err != nil {
		t.Fatal(err)
	}
	ws := map[string]float64{}
	for _, r := range rows {
		ws[r.TLBMode] = r.WeightedSpeedup
	}
	for _, static := range []string{"shared", "static", "dynamic"} {
		if ws["controller"] <= ws[static] {
			t.Errorf("controller WS %.4f not above %s %.4f for mis+pagerank under churn",
				ws["controller"], static, ws[static])
		}
	}
}

func TestRenderChurn(t *testing.T) {
	rows, err := ChurnGrid(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderChurn(rows)
	for _, want := range []string{"bfs+atax", "controller", "Geomean WS", "Shed"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered churn table missing %q:\n%s", want, out)
		}
	}
}
