package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestMechNamesAndConfigs(t *testing.T) {
	names := MechNames()
	if len(names) == 0 || names[0] != "base" {
		t.Fatalf("MechNames() = %v, want base first", names)
	}
	for _, m := range names {
		cfg := MechConfig(m)
		if cfg.TLBMech != m {
			t.Errorf("MechConfig(%q).TLBMech = %q", m, cfg.TLBMech)
		}
		wantAlloc := ""
		if m == "largereach" {
			wantAlloc = "contig"
		}
		if cfg.AllocMode != wantAlloc {
			t.Errorf("MechConfig(%q).AllocMode = %q, want %q", m, cfg.AllocMode, wantAlloc)
		}
	}
}

func TestMechEvalShape(t *testing.T) {
	rows, err := MechEval(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	mechs := MechNames()
	if want := 2 * len(mechs); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for i, r := range rows {
		if r.Mech != mechs[i%len(mechs)] {
			t.Errorf("row %d mech = %q, want %q", i, r.Mech, mechs[i%len(mechs)])
		}
		if r.Cycles <= 0 || r.NormTime <= 0 {
			t.Errorf("row %d: cycles %d, norm %f", i, r.Cycles, r.NormTime)
		}
		// Each benchmark's base row is its own normalization reference.
		if r.Mech == "base" && r.NormTime != 1 {
			t.Errorf("row %d: base NormTime = %f, want 1", i, r.NormTime)
		}
	}
}

func TestMechEvalDeterministicAcrossParallelism(t *testing.T) {
	r1, err := MechEval(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	opt := multiOpt("bfs", "atax")
	opt.Parallelism = 1
	r2, err := MechEval(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("MechEval rows differ across parallelism levels")
	}
}

func TestMechMultiShape(t *testing.T) {
	rows, err := MechMulti(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	mechs := MechNames()
	if len(rows) != len(mechs) {
		t.Fatalf("rows = %d, want %d (one pair x mechanisms)", len(rows), len(mechs))
	}
	for i, r := range rows {
		if r.Benches != [2]string{"bfs", "atax"} || r.Mech != mechs[i] {
			t.Errorf("row %d = %v/%s", i, r.Benches, r.Mech)
		}
		if len(r.Tenants) != 2 || len(r.SoloIPC) != 2 {
			t.Fatalf("row %d has %d tenants, %d solo refs", i, len(r.Tenants), len(r.SoloIPC))
		}
		for j, tn := range r.Tenants {
			if tn.IPC() <= 0 || r.SoloIPC[j] <= 0 {
				t.Errorf("row %d tenant %d: IPC %f, solo %f", i, j, tn.IPC(), r.SoloIPC[j])
			}
		}
		if r.WeightedSpeedup <= 0 {
			t.Errorf("row %d weighted speedup %f", i, r.WeightedSpeedup)
		}
	}
}

// TestSubentryBeatsBaseOnCoRun pins the mechanism study's headline cell:
// under a shared L2 TLB, sub-entry sharing collapses the two tenants'
// duplicate tags into shared frames slots and lifts the bfs+atax co-run's
// weighted speedup above the base mechanism's.
func TestSubentryBeatsBaseOnCoRun(t *testing.T) {
	rows, err := MechMulti(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	ws := map[string]float64{}
	for _, r := range rows {
		ws[r.Mech] = r.WeightedSpeedup
	}
	if ws["subentry"] <= ws["base"] {
		t.Errorf("subentry WS %.4f not above base %.4f for bfs+atax on a shared L2 TLB",
			ws["subentry"], ws["base"])
	}
}

func TestRenderMech(t *testing.T) {
	rows, err := MechEval(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	tbl := RenderMechEval(rows)
	for _, want := range append([]string{"bfs", "atax", "geomean"}, MechNames()...) {
		if !strings.Contains(tbl, want) {
			t.Errorf("RenderMechEval output missing %q", want)
		}
	}
	mrows, err := MechMulti(multiOpt("bfs", "atax"))
	if err != nil {
		t.Fatal(err)
	}
	mtbl := RenderMechMulti(mrows)
	for _, want := range append([]string{"bfs+atax", "geomean"}, MechNames()...) {
		if !strings.Contains(mtbl, want) {
			t.Errorf("RenderMechMulti output missing %q", want)
		}
	}
}
