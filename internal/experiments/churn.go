package experiments

import (
	"context"
	"fmt"

	"gputlb/internal/control"
	"gputlb/internal/metrics"
	"gputlb/internal/multi"
	"gputlb/internal/parallel"
	"gputlb/internal/sim"
)

// ------------------------------------------------------- tenant churn grid

// Fixed churn pattern of the grid: each pair's own benchmarks re-arrive
// mid-run, so every cell sees two departures-then-admissions plus the final
// drain where only the controller can reclaim the freed resources. The
// cycles sit inside the co-run of every Table II pair at the grid's default
// scale; arrivals landing after a cell finishes simply never run, which
// keeps the pattern valid (if pointless) at any scale.
const (
	// ChurnQueueCap bounds each cell's admission queue.
	ChurnQueueCap = 2
	// ChurnFirstArrival and ChurnSecondArrival are the fixed arrival cycles.
	ChurnFirstArrival  = 3000
	ChurnSecondArrival = 6000
)

// ChurnRow is one churn cell: a workload pair under one L2 TLB tenancy mode
// with the grid's fixed mid-run arrival pattern, spatial SM split.
type ChurnRow struct {
	Benches [2]string
	TLBMode string
	// Tenants holds all tenant results — the two initial tenants, then the
	// arrivals in arrival order (shed arrivals included, zero-valued).
	Tenants []sim.TenantResult
	// SoloIPC is each tenant's solo IPC, aligned with Tenants.
	SoloIPC []float64
	// WeightedSpeedup is sum_i IPC_i^co-run / IPC_i^solo over the tenants
	// that ran, each scored over its own elapsed cycles.
	WeightedSpeedup float64
	// Shed counts arrivals dropped on admission-queue overflow.
	Shed int
}

// churnSpec is the grid's fixed arrival pattern for one pair.
func churnSpec(pair [2]string) *multi.Churn {
	return &multi.Churn{
		QueueCap: ChurnQueueCap,
		Arrivals: []multi.Arrival{
			{Bench: pair[0], At: ChurnFirstArrival},
			{Bench: pair[1], At: ChurnSecondArrival},
		},
	}
}

// controlConfig resolves the Objective override into a controller
// configuration (nil means control.DefaultConfig() downstream).
func (o Options) controlConfig() (*control.Config, error) {
	if o.Objective == "" {
		return nil, nil
	}
	obj, err := control.ParseObjective(o.Objective)
	if err != nil {
		return nil, err
	}
	cc := control.DefaultConfig()
	cc.Objective = obj
	return &cc, nil
}

// ChurnGrid runs the tenant-churn study: every benchmark pair under the full
// L2 TLB tenancy axis (shared, static, dynamic, controller) with the fixed
// mid-run arrival pattern, spatial SM split. The controller cells are where
// online repartitioning can pay off: departures free SMs and L2 TLB sets
// that the static modes leave idle. Deterministic at any parallelism level.
func ChurnGrid(opt Options) ([]ChurnRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	if len(specs) < 2 {
		return nil, fmt.Errorf("experiments: churn grid needs at least 2 benchmarks, got %d", len(specs))
	}
	ctlCfg, err := opt.controlConfig()
	if err != nil {
		return nil, err
	}
	benches := make([]string, len(specs))
	for i, s := range specs {
		benches[i] = s.Name
	}
	pairs := MultiPairs(benches)

	// Solo references: one baseline run per benchmark, shared by initial
	// tenants and arrivals of the same benchmark.
	cfg := BaselineConfig()
	var soloCells []simCell
	for _, s := range specs {
		soloCells = append(soloCells, simCell{s, "solo", opt.Params, cfg})
	}
	soloRes, err := opt.runCells(soloCells)
	if err != nil {
		return nil, err
	}
	soloIPC := make(map[string]float64, len(specs))
	for i, s := range specs {
		soloIPC[s.Name] = multi.SoloIPC(soloRes[i])
	}

	type churnCell struct {
		pair [2]string
		mode multi.TLBMode
	}
	var cells []churnCell
	for _, p := range pairs {
		for _, mode := range MultiTLBModes {
			cells = append(cells, churnCell{p, mode})
		}
	}
	mopt := multi.Options{
		Base:         &cfg,
		Params:       opt.Params,
		CellParallel: opt.CellParallel,
		L2Slices:     opt.L2Slices,
		Control:      ctlCfg,
	}
	results, err := parallel.Map(opt.ctx(), opt.pool(), len(cells),
		func(_ context.Context, i int) (sim.Result, error) {
			c := cells[i]
			o := mopt
			o.TLBMode = c.mode
			o.Churn = churnSpec(c.pair)
			r, rerr := multi.CoRun(c.pair[:], o)
			if rerr != nil {
				return sim.Result{}, fmt.Errorf("%s+%s churn [%s]: %w",
					c.pair[0], c.pair[1], c.mode, rerr)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	if opt.StatsDump != nil {
		dump := make([]StatsRow, len(cells))
		for i, c := range cells {
			dump[i] = StatsRow{
				Bench:  c.pair[0] + "+" + c.pair[1],
				Config: fmt.Sprintf("churn-%s", c.mode),
				Stats:  results[i].Stats,
			}
		}
		opt.StatsDump.add(dump...)
	}

	rows := make([]ChurnRow, len(cells))
	for i, c := range cells {
		tenants := results[i].Tenants
		solo := make([]float64, len(tenants))
		shed := 0
		for j, tn := range tenants {
			solo[j] = soloIPC[tn.Name]
			if tn.Shed {
				shed++
			}
		}
		rows[i] = ChurnRow{
			Benches:         c.pair,
			TLBMode:         c.mode.String(),
			Tenants:         tenants,
			SoloIPC:         solo,
			WeightedSpeedup: multi.WeightedSpeedup(tenants, solo),
			Shed:            shed,
		}
	}
	return rows, nil
}

// RenderChurn formats the churn grid: per-cell weighted speedup over every
// tenant that ran (initial pair plus mid-run arrivals), then the geomean by
// L2 TLB tenancy mode — the online controller against the static policies.
func RenderChurn(rows []ChurnRow) string {
	t := metrics.NewTable("Pair", "L2 TLB", "Tenants ran", "Shed", "WS")
	byMode := map[string][]float64{}
	for _, r := range rows {
		ran := 0
		for _, tn := range r.Tenants {
			if !tn.Shed {
				ran++
			}
		}
		t.AddRow(
			r.Benches[0]+"+"+r.Benches[1], r.TLBMode,
			fmt.Sprintf("%d", ran), fmt.Sprintf("%d", r.Shed),
			fmt.Sprintf("%.3f", r.WeightedSpeedup))
		byMode[r.TLBMode] = append(byMode[r.TLBMode], r.WeightedSpeedup)
	}
	s := "Tenant churn — weighted speedup per pair x L2 TLB tenancy mode (spatial SMs, arrivals at " +
		fmt.Sprintf("%d and %d", ChurnFirstArrival, ChurnSecondArrival) + ")\n" + t.String()
	g := metrics.NewTable("L2 TLB mode", "Geomean WS")
	for _, mode := range MultiTLBModes {
		if ws, ok := byMode[mode.String()]; ok {
			g.AddRow(mode.String(), fmtGeomean(ws))
		}
	}
	return s + "\nWeighted-speedup geomean by mode (online controller vs static tenancy)\n" + g.String()
}
