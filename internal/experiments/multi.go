package experiments

import (
	"context"
	"fmt"

	"gputlb/internal/metrics"
	"gputlb/internal/multi"
	"gputlb/internal/parallel"
	"gputlb/internal/sched"
	"gputlb/internal/sim"
)

// --------------------------------------------------- multi-tenant co-run grid

// MultiTLBModes is the L2 TLB tenancy axis of the co-run grid.
var MultiTLBModes = []multi.TLBMode{multi.TLBSharedMode, multi.TLBStaticMode, multi.TLBDynamicMode, multi.TLBControllerMode}

// MultiSMPolicies is the SM assignment axis of the co-run grid.
var MultiSMPolicies = []sched.SMAssignment{sched.AssignSpatial, sched.AssignInterleaved, sched.AssignShared}

// MultiPairs returns the unordered benchmark pairs of the co-run grid, in
// input order: (0,1), (0,2), ..., (1,2), ...
func MultiPairs(benches []string) [][2]string {
	var pairs [][2]string
	for i := 0; i < len(benches); i++ {
		for j := i + 1; j < len(benches); j++ {
			pairs = append(pairs, [2]string{benches[i], benches[j]})
		}
	}
	return pairs
}

// MultiRow is one co-run cell: a workload pair under one (L2 TLB mode, SM
// assignment) point, with the solo references the weighted speedup divides
// by.
type MultiRow struct {
	Benches  [2]string
	TLBMode  string
	SMPolicy string
	// Tenants holds the per-tenant co-run results, in Benches order.
	Tenants []sim.TenantResult
	// SoloIPC is each tenant's IPC running alone on the whole GPU under the
	// same base configuration.
	SoloIPC [2]float64
	// WeightedSpeedup is sum_i IPC_i^co-run / IPC_i^solo; 2.0 would mean
	// zero interference for a pair.
	WeightedSpeedup float64
}

// MultiGrid runs the interference study: every benchmark pair under the
// full {TLB mode} x {SM assignment} grid, plus one solo reference run per
// benchmark. Cells run through the same bounded pool as the single-kernel
// sweeps and results are bit-identical at any parallelism level.
func MultiGrid(opt Options) ([]MultiRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	if len(specs) < 2 {
		return nil, fmt.Errorf("experiments: co-run grid needs at least 2 benchmarks, got %d", len(specs))
	}
	benches := make([]string, len(specs))
	for i, s := range specs {
		benches[i] = s.Name
	}
	pairs := MultiPairs(benches)

	// Solo references first: one baseline run per benchmark.
	cfg := BaselineConfig()
	var soloCells []simCell
	for _, s := range specs {
		soloCells = append(soloCells, simCell{s, "solo", opt.Params, cfg})
	}
	soloRes, err := opt.runCells(soloCells)
	if err != nil {
		return nil, err
	}
	soloIPC := make(map[string]float64, len(specs))
	for i, s := range specs {
		soloIPC[s.Name] = multi.SoloIPC(soloRes[i])
	}

	// The co-run cells: pair-major, then TLB mode, then SM policy.
	type multiCell struct {
		pair   [2]string
		mode   multi.TLBMode
		policy sched.SMAssignment
	}
	var cells []multiCell
	for _, p := range pairs {
		for _, mode := range MultiTLBModes {
			for _, pol := range MultiSMPolicies {
				cells = append(cells, multiCell{p, mode, pol})
			}
		}
	}
	mopt := multi.Options{Base: &cfg, Params: opt.Params, CellParallel: opt.CellParallel, L2Slices: opt.L2Slices}
	results, err := parallel.Map(opt.ctx(), opt.pool(), len(cells),
		func(_ context.Context, i int) (sim.Result, error) {
			c := cells[i]
			o := mopt
			o.TLBMode = c.mode
			o.SMPolicy = c.policy
			r, rerr := multi.CoRun(c.pair[:], o)
			if rerr != nil {
				return sim.Result{}, fmt.Errorf("%s+%s [%s/%s]: %w",
					c.pair[0], c.pair[1], c.mode, c.policy, rerr)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	if opt.StatsDump != nil {
		rows := make([]StatsRow, len(cells))
		for i, c := range cells {
			rows[i] = StatsRow{
				Bench:  c.pair[0] + "+" + c.pair[1],
				Config: fmt.Sprintf("multi-%s-%s", c.mode, c.policy),
				Stats:  results[i].Stats,
			}
		}
		opt.StatsDump.add(rows...)
	}

	rows := make([]MultiRow, len(cells))
	for i, c := range cells {
		solo := [2]float64{soloIPC[c.pair[0]], soloIPC[c.pair[1]]}
		rows[i] = MultiRow{
			Benches:         c.pair,
			TLBMode:         c.mode.String(),
			SMPolicy:        c.policy.String(),
			Tenants:         results[i].Tenants,
			SoloIPC:         solo,
			WeightedSpeedup: multi.WeightedSpeedup(results[i].Tenants, solo[:]),
		}
	}
	return rows, nil
}

// stallFractions renders a tenant's translation-stall breakdown as
// "l1/l2/walk/fault" percentages of its total translation-stall cycles.
func stallFractions(t sim.TenantResult) string {
	total := t.StallTotal()
	if total == 0 {
		return "-"
	}
	pct := func(v int64) float64 { return float64(v) / float64(total) }
	return fmt.Sprintf("%.0f/%.0f/%.0f/%.0f%%",
		100*pct(t.StallL1), 100*pct(t.StallL2), 100*pct(t.StallWalk), 100*pct(t.StallFault))
}

// RenderMulti formats the co-run grid: per-tenant IPC against the solo
// reference, the weighted speedup, and each tenant's translation-stall
// breakdown (share of stall cycles resolved at L1/L2/walk/fault).
func RenderMulti(rows []MultiRow) string {
	t := metrics.NewTable("Pair", "L2 TLB", "SMs",
		"IPC A (solo)", "IPC B (solo)", "WS", "Stall A l1/l2/walk/fault", "Stall B")
	byMode := map[string][]float64{}
	for _, r := range rows {
		var a, b sim.TenantResult
		if len(r.Tenants) == 2 {
			a, b = r.Tenants[0], r.Tenants[1]
		}
		t.AddRow(
			r.Benches[0]+"+"+r.Benches[1], r.TLBMode, r.SMPolicy,
			fmt.Sprintf("%.3f (%.3f)", a.IPC(), r.SoloIPC[0]),
			fmt.Sprintf("%.3f (%.3f)", b.IPC(), r.SoloIPC[1]),
			fmt.Sprintf("%.3f", r.WeightedSpeedup),
			stallFractions(a), stallFractions(b))
		byMode[r.TLBMode] = append(byMode[r.TLBMode], r.WeightedSpeedup)
	}
	s := "Multi-tenant co-runs — weighted speedup (WS, 2.0 = no interference) per pair x L2 TLB mode x SM assignment\n" + t.String()
	g := metrics.NewTable("L2 TLB mode", "Geomean WS")
	for _, mode := range MultiTLBModes {
		if ws, ok := byMode[mode.String()]; ok {
			g.AddRow(mode.String(), fmtGeomean(ws))
		}
	}
	return s + "\nWeighted-speedup geomean by L2 TLB mode (tenant-aware partitioning vs fully shared)\n" + g.String()
}
