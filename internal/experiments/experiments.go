package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"gputlb/internal/arch"
	"gputlb/internal/chars"
	"gputlb/internal/metrics"
	"gputlb/internal/parallel"
	"gputlb/internal/sim"
	"gputlb/internal/stats"
	"gputlb/internal/workloads"
)

// Options selects the workloads and scale for an experiment run.
type Options struct {
	// Params configures workload construction. PageShift must match the
	// page size of the configs built for the runs.
	Params workloads.Params
	// Benchmarks restricts the run (nil = the full Table II suite).
	Benchmarks []string
	// MaxTBsForPairs caps the exhaustive TB-pair computation of Figure 3.
	MaxTBsForPairs int
	// Parallelism bounds how many simulation cells of a grid run
	// concurrently. Zero or negative means runtime.GOMAXPROCS(0); one
	// forces a sequential sweep. Every cell is a pure function of its
	// (spec, params, config) inputs, so results are bit-identical at any
	// parallelism level.
	Parallelism int
	// Progress, when non-nil, is called after each simulation cell of a
	// sweep finishes with (done, total). Calls are serialized.
	Progress func(done, total int)
	// Context cancels an in-flight sweep; nil means context.Background().
	Context context.Context
	// Tracer, when non-nil, receives structured events from every simulation
	// cell of a sweep; the trace's pid field is the cell index, so cells stay
	// distinguishable in one merged Chrome trace. Tracing never affects
	// simulation results.
	Tracer *stats.Tracer
	// StatsDump, when non-nil, collects every cell's full stats tree in
	// deterministic (cell-order) sequence for export.
	StatsDump *StatsDump
	// CellParallel selects the intra-cell engine: 0 or 1 keeps the serial
	// engine (byte-identical to the committed golden stats); n >= 2 runs
	// each cell on the sharded epoch-barrier engine with up to n worker
	// goroutines. Sharded results are bit-identical at every n >= 2 but
	// differ slightly from the serial engine's (a different — equally
	// deterministic — serialization of shared-resource requests).
	CellParallel int
	// L2Slices partitions the sharded engine's barrier into K independent
	// address slices (sim.SetL2Slices); 0 or 1 keeps the monolithic
	// barrier. Effective only with CellParallel >= 2, and — like the engine
	// choice — K > 1 is its own deterministic serialization: comparisons
	// must hold both CellParallel (serial vs sharded) and L2Slices fixed.
	L2Slices int
	// Objective overrides the partitioning controller's optimization
	// objective for controller-mode cells ("ws", "fairness", "maxmin");
	// empty keeps the default weighted-speedup objective. Ignored by cells
	// that never attach a controller.
	Objective string
}

// StatsRow is one simulated cell's identity plus its full stats tree.
type StatsRow struct {
	Bench  string          `json:"bench"`
	Config string          `json:"config"`
	Stats  *stats.Snapshot `json:"stats"`
}

// StatsDump accumulates the stats trees of every simulation cell an
// experiment runs, so the CLIs can export them wholesale. Rows arrive in
// cell order within each experiment, making dumps reproducible at any
// parallelism level. Safe for use across concurrent experiment calls.
type StatsDump struct {
	mu   sync.Mutex
	rows []StatsRow
}

func (d *StatsDump) add(rows ...StatsRow) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rows = append(d.rows, rows...)
}

// Rows returns the collected rows in collection order.
func (d *StatsDump) Rows() []StatsRow {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]StatsRow(nil), d.rows...)
}

// WriteJSON writes the collected rows as one indented JSON array.
func (d *StatsDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Rows())
}

// WriteCSV writes the rows flattened to "bench,config,path,value" lines.
func (d *StatsDump) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "bench,config,path,value\n"); err != nil {
		return err
	}
	for _, row := range d.Rows() {
		if row.Stats == nil {
			continue
		}
		for _, fv := range row.Stats.Flatten("") {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%s\n", row.Bench, row.Config, fv.Path, fv.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// DefaultOptions returns experiment-scale settings.
func DefaultOptions() Options {
	return Options{
		Params:         workloads.DefaultParams(),
		MaxTBsForPairs: 384,
	}
}

func (o Options) specs() ([]workloads.Spec, error) {
	if o.Benchmarks == nil {
		return workloads.All(), nil
	}
	var out []workloads.Spec
	for _, name := range o.Benchmarks {
		s, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// Configurations of the evaluation (paper Section V).

// BaselineConfig is Table III: round-robin scheduling, address-indexed TLBs.
func BaselineConfig() arch.Config { return arch.Default() }

// SchedConfig enables only the thrashing-aware TB scheduler.
func SchedConfig() arch.Config {
	c := arch.Default()
	c.TBScheduler = arch.ScheduleTLBAware
	return c
}

// PartConfig is scheduling plus TB-id TLB partitioning (no sharing) — the
// "partitioning only" bars of Figures 10/11.
func PartConfig() arch.Config {
	c := SchedConfig()
	c.TLBIndexPolicy = arch.IndexByTB
	return c
}

// ShareConfig is the full proposal: scheduling + partitioning + dynamic
// adjacent-set sharing.
func ShareConfig() arch.Config {
	c := SchedConfig()
	c.TLBIndexPolicy = arch.IndexByTBShared
	return c
}

// ------------------------------------------------------------- sweep engine

func (o Options) pool() parallel.Options {
	return parallel.Options{Workers: o.Parallelism, Progress: o.Progress}
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// simCell is one independent simulation of a grid-shaped experiment: a
// workload spec under one configuration variant.
type simCell struct {
	spec   workloads.Spec
	label  string // config variant, for error context
	params workloads.Params
	cfg    arch.Config
}

// runCells executes the cells through the bounded worker pool and returns
// their results in input order. A failed cell reports its workload and
// config variant; the other cells still run. The sweep's tracer (if any) is
// shared across cells with the cell index as trace pid, and a configured
// StatsDump receives every cell's stats tree in cell order.
func (o Options) runCells(cells []simCell) ([]sim.Result, error) {
	res, err := parallel.Map(o.ctx(), o.pool(), len(cells),
		func(_ context.Context, i int) (sim.Result, error) {
			c := cells[i]
			k, as := workloads.Cached(c.spec, c.params)
			s, serr := sim.New(c.cfg, k, as)
			if serr != nil {
				return sim.Result{}, fmt.Errorf("%s [%s]: %w", c.spec.Name, c.label, serr)
			}
			s.SetTracer(o.Tracer, i)
			s.SetCellParallel(o.CellParallel)
			s.SetL2Slices(o.L2Slices)
			return s.Run(), nil
		})
	if err != nil {
		return nil, err
	}
	if o.StatsDump != nil {
		rows := make([]StatsRow, len(cells))
		for i, c := range cells {
			rows[i] = StatsRow{Bench: c.spec.Name, Config: c.label, Stats: res[i].Stats}
		}
		o.StatsDump.add(rows...)
	}
	return res, nil
}

// mapSpecs runs fn once per spec through the pool, preserving spec order.
func mapSpecs[T any](o Options, specs []workloads.Spec, fn func(workloads.Spec) (T, error)) ([]T, error) {
	return parallel.Map(o.ctx(), o.pool(), len(specs),
		func(_ context.Context, i int) (T, error) {
			r, err := fn(specs[i])
			if err != nil {
				var zero T
				return zero, fmt.Errorf("%s: %w", specs[i].Name, err)
			}
			return r, nil
		})
}

// ---------------------------------------------------------------- Table II

// Table2Row is one benchmark of the suite with its paper-reported footprint
// and the scaled footprint of our reproduction.
type Table2Row struct {
	Name, Suite, Input string
	PaperFootprintGB   float64
	ScaledFootprintMB  float64
	TBs                int
	MemInsts           int
	UniquePages        int
}

// Table2 reproduces the benchmark table.
func Table2(opt Options) ([]Table2Row, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	return mapSpecs(opt, specs, func(s workloads.Spec) (Table2Row, error) {
		k, as := workloads.Cached(s, opt.Params)
		return Table2Row{
			Name: s.Name, Suite: s.Suite, Input: s.Input,
			PaperFootprintGB:  s.PaperFootprintGB,
			ScaledFootprintMB: float64(workloads.FootprintBytes(as)) / (1 << 20),
			TBs:               len(k.TBs),
			MemInsts:          k.MemInsts(),
			UniquePages:       workloads.UniquePages(k, opt.Params.PageShift),
		}, nil
	})
}

// RenderTable2 formats Table II.
func RenderTable2(rows []Table2Row) string {
	t := metrics.NewTable("Benchmark", "Suite", "Input", "Paper footprint", "Scaled footprint", "TBs", "MemInsts", "Pages")
	for _, r := range rows {
		t.AddRow(r.Name, r.Suite, r.Input,
			fmt.Sprintf("%.2fGB", r.PaperFootprintGB),
			fmt.Sprintf("%.1fMB", r.ScaledFootprintMB),
			fmt.Sprint(r.TBs), fmt.Sprint(r.MemInsts), fmt.Sprint(r.UniquePages))
	}
	return "Table II — benchmarks (paper footprints vs scaled reproduction)\n" + t.String()
}

// ----------------------------------------------------------------- Figure 2

// Fig2Row holds the motivation hit rates at two L1 TLB capacities.
type Fig2Row struct {
	Bench  string
	Hit64  float64
	Hit256 float64
}

// Fig2 runs the baseline with 64- and 256-entry L1 TLBs.
func Fig2(opt Options) ([]Fig2Row, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	big := BaselineConfig()
	big.L1TLB.Entries = 256
	var cells []simCell
	for _, s := range specs {
		cells = append(cells,
			simCell{s, "64-entry", opt.Params, BaselineConfig()},
			simCell{s, "256-entry", opt.Params, big})
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig2Row, len(specs))
	for i, s := range specs {
		rows[i] = Fig2Row{s.Name, res[2*i].L1TLBHitRate, res[2*i+1].L1TLBHitRate}
	}
	return rows, nil
}

// RenderFig2 formats Figure 2.
func RenderFig2(rows []Fig2Row) string {
	t := metrics.NewTable("Benchmark", "64-entry hit", "256-entry hit", "64-entry")
	for _, r := range rows {
		t.AddRow(r.Bench, metrics.Pct(r.Hit64), metrics.Pct(r.Hit256), metrics.Bar(r.Hit64, 30))
	}
	return "Figure 2 — baseline L1 TLB hit rates, 64 vs 256 entries\n" + t.String()
}

// ------------------------------------------------------------ Figures 3 & 4

// BinsRow is one benchmark's reuse-intensity distribution.
type BinsRow struct {
	Bench string
	Bins  chars.Bins
}

// Fig3 computes inter-TB reuse-intensity bins.
func Fig3(opt Options) ([]BinsRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	return mapSpecs(opt, specs, func(s workloads.Spec) (BinsRow, error) {
		k, _ := workloads.Cached(s, opt.Params)
		return BinsRow{s.Name, chars.InterTB(k, opt.Params.PageShift, opt.MaxTBsForPairs)}, nil
	})
}

// Fig4 computes intra-TB reuse-intensity bins.
func Fig4(opt Options) ([]BinsRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	return mapSpecs(opt, specs, func(s workloads.Spec) (BinsRow, error) {
		k, _ := workloads.Cached(s, opt.Params)
		return BinsRow{s.Name, chars.IntraTB(k, opt.Params.PageShift)}, nil
	})
}

// RenderBins formats a Figure 3/4-style bin table.
func RenderBins(title string, rows []BinsRow) string {
	t := metrics.NewTable("Benchmark", "b1 (<20%)", "b2", "b3", "b4", "b5 (>80%)")
	for _, r := range rows {
		t.AddRow(r.Bench,
			metrics.Pct(r.Bins[0]), metrics.Pct(r.Bins[1]), metrics.Pct(r.Bins[2]),
			metrics.Pct(r.Bins[3]), metrics.Pct(r.Bins[4]))
	}
	return title + "\n" + t.String()
}

// ------------------------------------------------------------ Figures 5 & 6

// CDFRow is one benchmark's reuse-distance CDF.
type CDFRow struct {
	Bench string
	CDF   chars.DistanceCDF
}

// Fig5 computes the intra-TB reuse-distance CDF under concurrent execution
// (TBs interleaved on their SMs).
func Fig5(opt Options) ([]CDFRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	cfg := BaselineConfig()
	return mapSpecs(opt, specs, func(s workloads.Spec) (CDFRow, error) {
		k, _ := workloads.Cached(s, opt.Params)
		slots := k.ConcurrentTBsPerSM(cfg)
		return CDFRow{s.Name,
			chars.InterleavedReuseDistance(k, opt.Params.PageShift, cfg.NumSMs, slots)}, nil
	})
}

// Fig6 computes the intra-TB reuse-distance CDF running one TB at a time.
func Fig6(opt Options) ([]CDFRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	return mapSpecs(opt, specs, func(s workloads.Spec) (CDFRow, error) {
		k, _ := workloads.Cached(s, opt.Params)
		return CDFRow{s.Name, chars.IsolatedReuseDistance(k, opt.Params.PageShift)}, nil
	})
}

// RenderCDF formats a Figure 5/6-style table: CDF values at powers of two,
// with the 2^6 column marking the 64-entry L1 TLB capacity.
func RenderCDF(title string, rows []CDFRow) string {
	t := metrics.NewTable("Benchmark", "<=2^3", "<=2^4", "<=2^5", "<=2^6 (L1 capacity)", "<=2^8", "<=2^10", "reuses")
	for _, r := range rows {
		t.AddRow(r.Bench,
			metrics.Pct(r.CDF.FractionWithin(3)), metrics.Pct(r.CDF.FractionWithin(4)),
			metrics.Pct(r.CDF.FractionWithin(5)), metrics.Pct(r.CDF.FractionWithin(6)),
			metrics.Pct(r.CDF.FractionWithin(8)), metrics.Pct(r.CDF.FractionWithin(10)),
			fmt.Sprint(r.CDF.Reuses))
	}
	return title + "\n" + t.String()
}

// --------------------------------------------------------- Figures 10 & 11

// EvalRow holds one benchmark's results under the four evaluation
// configurations.
type EvalRow struct {
	Bench string
	// Hit rates (Figure 10).
	HitBase, HitSched, HitPart, HitShare float64
	// Execution cycles (Figure 11 normalizes to CyclesBase).
	CyclesBase, CyclesSched, CyclesPart, CyclesShare int64
}

// NormSched returns sched time normalized to baseline.
func (r EvalRow) NormSched() float64 { return float64(r.CyclesSched) / float64(r.CyclesBase) }

// NormPart returns sched+partitioning time normalized to baseline.
func (r EvalRow) NormPart() float64 { return float64(r.CyclesPart) / float64(r.CyclesBase) }

// NormShare returns the full proposal's time normalized to baseline.
func (r EvalRow) NormShare() float64 { return float64(r.CyclesShare) / float64(r.CyclesBase) }

// Eval runs the four configurations of Figures 10 and 11.
func Eval(opt Options) ([]EvalRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	grid := []struct {
		label string
		cfg   arch.Config
	}{
		{"baseline", BaselineConfig()},
		{"sched", SchedConfig()},
		{"sched+part", PartConfig()},
		{"sched+part+share", ShareConfig()},
	}
	var cells []simCell
	for _, s := range specs {
		for _, g := range grid {
			cells = append(cells, simCell{s, g.label, opt.Params, g.cfg})
		}
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	rows := make([]EvalRow, len(specs))
	for i, s := range specs {
		b, sc, pa, sh := res[4*i], res[4*i+1], res[4*i+2], res[4*i+3]
		rows[i] = EvalRow{
			Bench:       s.Name,
			HitBase:     b.L1TLBHitRate,
			HitSched:    sc.L1TLBHitRate,
			HitPart:     pa.L1TLBHitRate,
			HitShare:    sh.L1TLBHitRate,
			CyclesBase:  int64(b.Cycles),
			CyclesSched: int64(sc.Cycles),
			CyclesPart:  int64(pa.Cycles),
			CyclesShare: int64(sh.Cycles),
		}
	}
	return rows, nil
}

// RenderFig10 formats the hit-rate figure.
func RenderFig10(rows []EvalRow) string {
	t := metrics.NewTable("Benchmark", "Baseline", "Sched", "Sched+Part", "Sched+Part+Share")
	for _, r := range rows {
		t.AddRow(r.Bench, metrics.Pct(r.HitBase), metrics.Pct(r.HitSched),
			metrics.Pct(r.HitPart), metrics.Pct(r.HitShare))
	}
	return "Figure 10 — L1 TLB hit rates (higher is better)\n" + t.String()
}

// RenderFig11 formats the normalized-execution-time figure, with the
// geomean row the paper quotes (sched -2.3%, part +14.3%, share -12.5%).
func RenderFig11(rows []EvalRow) string {
	t := metrics.NewTable("Benchmark", "Baseline", "Sched", "Sched+Part", "Sched+Part+Share")
	var sched, part, share []float64
	for _, r := range rows {
		sched = append(sched, r.NormSched())
		part = append(part, r.NormPart())
		share = append(share, r.NormShare())
		t.AddRow(r.Bench, "1.000",
			fmt.Sprintf("%.3f", r.NormSched()),
			fmt.Sprintf("%.3f", r.NormPart()),
			fmt.Sprintf("%.3f", r.NormShare()))
	}
	t.AddRow("geomean", "1.000", fmtGeomean(sched), fmtGeomean(part), fmtGeomean(share))
	return "Figure 11 — execution time normalized to baseline (lower is better)\n" + t.String()
}

// ----------------------------------------------------------------- Figure 12

// Fig12Row compares TLB compression alone against our approach combined
// with compression, both normalized to compression alone.
type Fig12Row struct {
	Bench string
	// Speedup of (ours + compression) over (compression only): > 1 means
	// our approach adds improvement on top of compression.
	Speedup float64
	// Hit rates for context.
	HitCompress, HitOursCompress float64
}

// Fig12 runs the comparison against the PACT'20 compression comparator.
func Fig12(opt Options) ([]Fig12Row, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	comp := BaselineConfig()
	comp.TLBCompression = true
	ours := ShareConfig()
	ours.TLBCompression = true
	var cells []simCell
	for _, s := range specs {
		cells = append(cells,
			simCell{s, "compression", opt.Params, comp},
			simCell{s, "ours+compression", opt.Params, ours})
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig12Row, len(specs))
	for i, s := range specs {
		base, combined := res[2*i], res[2*i+1]
		rows[i] = Fig12Row{
			Bench:           s.Name,
			Speedup:         float64(base.Cycles) / float64(combined.Cycles),
			HitCompress:     base.L1TLBHitRate,
			HitOursCompress: combined.L1TLBHitRate,
		}
	}
	return rows, nil
}

// RenderFig12 formats the compression comparison.
func RenderFig12(rows []Fig12Row) string {
	t := metrics.NewTable("Benchmark", "Speedup (ours+comp / comp)", "Hit comp", "Hit ours+comp")
	var sp []float64
	for _, r := range rows {
		sp = append(sp, r.Speedup)
		t.AddRow(r.Bench, fmt.Sprintf("%.3f", r.Speedup),
			metrics.Pct(r.HitCompress), metrics.Pct(r.HitOursCompress))
	}
	t.AddRow("geomean", fmtGeomean(sp))
	return "Figure 12 — our approach on top of TLB compression, normalized to compression alone\n" + t.String()
}

// ------------------------------------------------------- Huge-page study (§V)

// HugePageRow holds the 2MB-page study results.
type HugePageRow struct {
	Bench string
	// Baseline hit rates at the two page sizes.
	Hit4K, Hit2M float64
	// Speedup of the full proposal over baseline, both with 2MB pages.
	SpeedupOurs2M float64
}

// HugePages runs the paper's large-page study: 2MB pages raise hit rates by
// themselves; our approach still adds a (smaller) improvement on top.
func HugePages(opt Options) ([]HugePageRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	p2m := opt.Params
	p2m.PageShift = 21
	cfg2m := BaselineConfig()
	cfg2m.PageSize = arch.PageSize2M
	ours2m := ShareConfig()
	ours2m.PageSize = arch.PageSize2M
	var cells []simCell
	for _, s := range specs {
		cells = append(cells,
			simCell{s, "baseline-4K", opt.Params, BaselineConfig()},
			simCell{s, "baseline-2M", p2m, cfg2m},
			simCell{s, "ours-2M", p2m, ours2m})
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	rows := make([]HugePageRow, len(specs))
	for i, s := range specs {
		r4, r2, ro := res[3*i], res[3*i+1], res[3*i+2]
		rows[i] = HugePageRow{
			Bench:         s.Name,
			Hit4K:         r4.L1TLBHitRate,
			Hit2M:         r2.L1TLBHitRate,
			SpeedupOurs2M: float64(r2.Cycles) / float64(ro.Cycles),
		}
	}
	return rows, nil
}

// RenderHugePages formats the large-page study.
func RenderHugePages(rows []HugePageRow) string {
	t := metrics.NewTable("Benchmark", "Hit 4KB", "Hit 2MB", "Ours on 2MB (speedup)")
	var sp []float64
	for _, r := range rows {
		sp = append(sp, r.SpeedupOurs2M)
		t.AddRow(r.Bench, metrics.Pct(r.Hit4K), metrics.Pct(r.Hit2M), fmt.Sprintf("%.3f", r.SpeedupOurs2M))
	}
	t.AddRow("geomean", "", "", fmtGeomean(sp))
	return "Huge-page study (§V) — 2MB pages, baseline vs our approach on top\n" + t.String()
}

// ----------------------------------------------------------------- Ablations

// AblationRow is a generic (benchmark, variant) -> normalized time result.
type AblationRow struct {
	Bench    string
	Variant  string
	NormTime float64
	HitRate  float64
}

// AblationSharing compares the 1-bit sharing flag against counter
// thresholds and all-to-all sharing (paper §IV-B discussion and future
// work), normalized to the 1-bit adjacent design.
func AblationSharing(opt Options, thresholds []int) ([]AblationRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	// Per spec: the 1-bit reference, one cell per threshold, all-to-all.
	stride := len(thresholds) + 2
	var cells []simCell
	for _, s := range specs {
		cells = append(cells, simCell{s, "reference", opt.Params, ShareConfig()})
		for _, th := range thresholds {
			cfg := ShareConfig()
			cfg.ShareCounterThreshold = th
			cells = append(cells, simCell{s, fmt.Sprintf("counter>=%d", th), opt.Params, cfg})
		}
		cfg := ShareConfig()
		cfg.SharingMode = arch.ShareAllToAll
		cells = append(cells, simCell{s, "all-to-all", opt.Params, cfg})
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i, s := range specs {
		ref := res[i*stride]
		for j, th := range thresholds {
			r := res[i*stride+1+j]
			rows = append(rows, AblationRow{s.Name, fmt.Sprintf("counter>=%d", th),
				float64(r.Cycles) / float64(ref.Cycles), r.L1TLBHitRate})
		}
		r := res[(i+1)*stride-1]
		rows = append(rows, AblationRow{s.Name, "all-to-all",
			float64(r.Cycles) / float64(ref.Cycles), r.L1TLBHitRate})
	}
	return rows, nil
}

// AblationThrottle combines the proposal with TB throttling (paper §IV-A
// notes the approaches compose), normalized to the unthrottled proposal.
func AblationThrottle(opt Options, caps []int) ([]AblationRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	stride := len(caps) + 1
	var cells []simCell
	for _, s := range specs {
		cells = append(cells, simCell{s, "reference", opt.Params, ShareConfig()})
		for _, cap := range caps {
			cfg := ShareConfig()
			cfg.ThrottleTBsPerSM = cap
			cells = append(cells, simCell{s, fmt.Sprintf("throttle=%d", cap), opt.Params, cfg})
		}
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i, s := range specs {
		ref := res[i*stride]
		for j, cap := range caps {
			r := res[i*stride+1+j]
			rows = append(rows, AblationRow{s.Name, fmt.Sprintf("throttle=%d", cap),
				float64(r.Cycles) / float64(ref.Cycles), r.L1TLBHitRate})
		}
	}
	return rows, nil
}

// fmtGeomean renders a geomean for a summary row; cycle counts are always
// positive, so an error here means corrupted inputs — render it visibly
// rather than fabricating a number.
func fmtGeomean(xs []float64) string {
	g, err := metrics.Geomean(xs)
	if err != nil {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", g)
}

// RenderAblation formats an ablation table.
func RenderAblation(title string, rows []AblationRow) string {
	t := metrics.NewTable("Benchmark", "Variant", "Time vs reference", "Hit rate")
	for _, r := range rows {
		t.AddRow(r.Bench, r.Variant, fmt.Sprintf("%.3f", r.NormTime), metrics.Pct(r.HitRate))
	}
	return title + "\n" + t.String()
}

// WarpReuse computes warp-granularity intra-reuse bins (the paper's stated
// future work: translation reuse at warp granularity).
func WarpReuse(opt Options) ([]BinsRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	return mapSpecs(opt, specs, func(s workloads.Spec) (BinsRow, error) {
		k, _ := workloads.Cached(s, opt.Params)
		return BinsRow{s.Name, chars.IntraWarp(k, opt.Params.PageShift)}, nil
	})
}

// Table3 renders the baseline configuration.
func Table3() string {
	return "Table III — baseline configuration\n" + arch.Default().String() + "\n"
}

// AblationWarpSched compares warp scheduling policies under the full
// proposal (the paper's conclusion proposes translation reuse-aware warp
// scheduling as future work), normalized to GTO.
func AblationWarpSched(opt Options) ([]AblationRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	policies := []arch.WarpSchedulerPolicy{arch.WarpLRR, arch.WarpTransAware}
	stride := len(policies) + 1
	var cells []simCell
	for _, s := range specs {
		cells = append(cells, simCell{s, "reference", opt.Params, ShareConfig()})
		for _, pol := range policies {
			cfg := ShareConfig()
			cfg.WarpScheduler = pol
			cells = append(cells, simCell{s, pol.String(), opt.Params, cfg})
		}
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i, s := range specs {
		ref := res[i*stride]
		for j, pol := range policies {
			r := res[i*stride+1+j]
			rows = append(rows, AblationRow{s.Name, pol.String(),
				float64(r.Cycles) / float64(ref.Cycles), r.L1TLBHitRate})
		}
	}
	return rows, nil
}

// AblationPWC measures a shared page-walk cache on top of the baseline and
// the full proposal, normalized to the same configuration without a PWC.
func AblationPWC(opt Options, entries int) ([]AblationRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	bases := []struct {
		name string
		cfg  arch.Config
	}{{"baseline", BaselineConfig()}, {"proposal", ShareConfig()}}
	// Per spec: (ref, ref+pwc) for each base configuration.
	var cells []simCell
	for _, s := range specs {
		for _, base := range bases {
			cfg := base.cfg
			cfg.PWCEntries = entries
			cells = append(cells,
				simCell{s, base.name, opt.Params, base.cfg},
				simCell{s, base.name + "+pwc", opt.Params, cfg})
		}
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i, s := range specs {
		for j, base := range bases {
			ref, r := res[4*i+2*j], res[4*i+2*j+1]
			rows = append(rows, AblationRow{s.Name, base.name + "+pwc",
				float64(r.Cycles) / float64(ref.Cycles), r.L1TLBHitRate})
		}
	}
	return rows, nil
}

// AblationReplacement compares TLB replacement policies under the full
// proposal, normalized to LRU.
func AblationReplacement(opt Options) ([]AblationRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	policies := []arch.TLBReplacementPolicy{arch.ReplaceFIFO, arch.ReplaceRandom}
	stride := len(policies) + 1
	var cells []simCell
	for _, s := range specs {
		cells = append(cells, simCell{s, "reference", opt.Params, ShareConfig()})
		for _, pol := range policies {
			cfg := ShareConfig()
			cfg.TLBReplacement = pol
			cells = append(cells, simCell{s, pol.String(), opt.Params, cfg})
		}
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i, s := range specs {
		ref := res[i*stride]
		for j, pol := range policies {
			r := res[i*stride+1+j]
			rows = append(rows, AblationRow{s.Name, pol.String(),
				float64(r.Cycles) / float64(ref.Cycles), r.L1TLBHitRate})
		}
	}
	return rows, nil
}

// SMBalance quantifies the scheduler-facing imbalance of paper §IV-A: the
// spread of per-SM L1 TLB hit rates under round-robin vs TLB-aware
// scheduling.
type SMBalanceRow struct {
	Bench                 string
	SpreadRR, SpreadAware float64 // max-min per-SM hit rate
}

// SMBalance runs both schedulers and reports the per-SM hit-rate spread.
func SMBalance(opt Options) ([]SMBalanceRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	spread := func(r sim.Result) float64 {
		lo, hi := 1.0, 0.0
		for _, st := range r.L1TLBPerSM {
			if st.Accesses == 0 {
				continue
			}
			h := st.HitRate()
			if h < lo {
				lo = h
			}
			if h > hi {
				hi = h
			}
		}
		if hi < lo {
			return 0
		}
		return hi - lo
	}
	var cells []simCell
	for _, s := range specs {
		cells = append(cells,
			simCell{s, "round-robin", opt.Params, BaselineConfig()},
			simCell{s, "tlb-aware", opt.Params, SchedConfig()})
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	rows := make([]SMBalanceRow, len(specs))
	for i, s := range specs {
		rows[i] = SMBalanceRow{s.Name, spread(res[2*i]), spread(res[2*i+1])}
	}
	return rows, nil
}

// RenderSMBalance formats the per-SM balance study.
func RenderSMBalance(rows []SMBalanceRow) string {
	t := metrics.NewTable("Benchmark", "Per-SM hit spread (RR)", "Per-SM hit spread (TLB-aware)")
	for _, r := range rows {
		t.AddRow(r.Bench, metrics.Pct(r.SpreadRR), metrics.Pct(r.SpreadAware))
	}
	return "Scheduler balance (§IV-A motivation) — spread of per-SM L1 TLB hit rates\n" + t.String()
}

// SeedSweepRow holds one seed's Figure 11 geomeans; the sweep quantifies
// how robust the headline results are to the synthetic-workload seed.
type SeedSweepRow struct {
	Seed                        int64
	GeoSched, GeoPart, GeoShare float64
}

// SeedSweep reruns the Figure 10/11 evaluation for each seed.
func SeedSweep(opt Options, seeds []int64) ([]SeedSweepRow, error) {
	var rows []SeedSweepRow
	for _, seed := range seeds {
		o := opt
		o.Params.Seed = seed
		evals, err := Eval(o)
		if err != nil {
			return nil, err
		}
		var sched, part, share []float64
		for _, r := range evals {
			sched = append(sched, r.NormSched())
			part = append(part, r.NormPart())
			share = append(share, r.NormShare())
		}
		gs, err := metrics.Geomean(sched)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		gp, err := metrics.Geomean(part)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		gh, err := metrics.Geomean(share)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		rows = append(rows, SeedSweepRow{Seed: seed, GeoSched: gs, GeoPart: gp, GeoShare: gh})
	}
	return rows, nil
}

// RenderSeedSweep formats the robustness sweep.
func RenderSeedSweep(rows []SeedSweepRow) string {
	t := metrics.NewTable("Seed", "Geomean sched", "Geomean sched+part", "Geomean sched+part+share")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Seed),
			fmt.Sprintf("%.3f", r.GeoSched),
			fmt.Sprintf("%.3f", r.GeoPart),
			fmt.Sprintf("%.3f", r.GeoShare))
	}
	return "Seed robustness — Figure 11 geomeans across workload seeds\n" + t.String()
}
