package experiments

import (
	"bytes"
	"sync"
	"testing"

	"gputlb/internal/stats"
	"gputlb/internal/workloads"
)

// TestConcurrentSweepsIsolated runs several full parallel sweeps at once,
// each with its own stats dump but all sharing one tracer (the supported
// sharing mode). Every cell builds its own simulator and registry, so under
// `go test -race` this fails if any registry, counter, or histogram state
// leaks across cells or sweeps; without -race it still checks that the
// concurrent dumps are byte-identical to each other.
func TestConcurrentSweepsIsolated(t *testing.T) {
	const sweeps = 3
	tracer := stats.NewTracer(1 << 10)

	runSweep := func() ([]byte, error) {
		dump := &StatsDump{}
		opt := Options{
			Params:      workloads.Params{PageShift: 12, Seed: 1, Scale: 0.1},
			Benchmarks:  []string{"bfs", "atax"},
			Parallelism: 4,
			StatsDump:   dump,
			Tracer:      tracer,
		}
		specs, err := opt.specs()
		if err != nil {
			return nil, err
		}
		var cells []simCell
		for _, s := range specs {
			cells = append(cells, simCell{s, "baseline", opt.Params, BaselineConfig()})
		}
		if _, err := opt.runCells(cells); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := dump.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	outs := make([][]byte, sweeps)
	errs := make([]error, sweeps)
	var wg sync.WaitGroup
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = runSweep()
		}(i)
	}
	wg.Wait()

	for i := 0; i < sweeps; i++ {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], outs[0]) {
			t.Errorf("sweep %d produced a different stats dump than sweep 0 (first difference at byte %d)",
				i, firstDiff(outs[i], outs[0]))
		}
	}
}
