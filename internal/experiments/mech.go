package experiments

import (
	"context"
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/metrics"
	"gputlb/internal/multi"
	"gputlb/internal/parallel"
	"gputlb/internal/sim"
	"gputlb/internal/tlbmech"
)

// ------------------------------------------- translation-mechanism evaluation

// MechNames is the mechanism axis of the evaluation, in render order.
func MechNames() []string { return tlbmech.Known() }

// MechConfig returns the baseline configuration running the named
// translation mechanism. largereach is paired with the contiguity-preserving
// allocator it is designed for — reach beyond one page only exists when the
// allocator actually provides contiguous frames.
func MechConfig(name string) arch.Config {
	c := BaselineConfig()
	c.TLBMech = name
	if name == "largereach" {
		c.AllocMode = "contig"
	}
	return c
}

// MechRow is one solo cell of the mechanism evaluation.
type MechRow struct {
	Bench string
	Mech  string
	// NormTime is execution time normalized to mech=base on the same
	// benchmark (lower is better; 1.0 = baseline).
	NormTime float64
	L1Hit    float64
	L2Hit    float64
	Cycles   int64
}

// MechEval runs every benchmark solo under each translation mechanism and
// normalizes execution time to the base mechanism.
func MechEval(opt Options) ([]MechRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	mechs := MechNames()
	var cells []simCell
	for _, s := range specs {
		for _, m := range mechs {
			cells = append(cells, simCell{s, "mech-" + m, opt.Params, MechConfig(m)})
		}
	}
	res, err := opt.runCells(cells)
	if err != nil {
		return nil, err
	}
	rows := make([]MechRow, len(cells))
	for i, s := range specs {
		base := res[i*len(mechs)] // mechs[0] is "base"
		for j, m := range mechs {
			r := res[i*len(mechs)+j]
			norm := 0.0
			if base.Cycles > 0 {
				norm = float64(r.Cycles) / float64(base.Cycles)
			}
			rows[i*len(mechs)+j] = MechRow{
				Bench: s.Name, Mech: m, NormTime: norm,
				L1Hit: r.L1TLBHitRate, L2Hit: r.L2TLB.HitRate(),
				Cycles: int64(r.Cycles),
			}
		}
	}
	return rows, nil
}

// RenderMechEval formats the solo mechanism table plus the normalized-time
// geomean per mechanism.
func RenderMechEval(rows []MechRow) string {
	t := metrics.NewTable("Benchmark", "Mechanism", "Norm. time", "L1 hit", "L2 hit", "Cycles")
	byMech := map[string][]float64{}
	for _, r := range rows {
		t.AddRow(r.Bench, r.Mech, fmt.Sprintf("%.3f", r.NormTime),
			metrics.Pct(r.L1Hit), metrics.Pct(r.L2Hit), fmt.Sprint(r.Cycles))
		byMech[r.Mech] = append(byMech[r.Mech], r.NormTime)
	}
	s := "Translation mechanisms — solo execution time normalized to mech=base (lower is better)\n" + t.String()
	g := metrics.NewTable("Mechanism", "Geomean norm. time")
	for _, m := range MechNames() {
		if xs, ok := byMech[m]; ok {
			g.AddRow(m, fmtGeomean(xs))
		}
	}
	return s + "\nNormalized-time geomean by mechanism\n" + g.String()
}

// MechMultiRow is one co-run cell of the mechanism evaluation: a benchmark
// pair on a fully shared L2 TLB under one mechanism, with weighted speedup
// against same-mechanism solo references (so WS isolates the interference
// behaviour of the mechanism, not its solo speedup).
type MechMultiRow struct {
	Benches         [2]string
	Mech            string
	Tenants         []sim.TenantResult
	SoloIPC         [2]float64
	WeightedSpeedup float64
}

// MechMulti runs every benchmark pair under each mechanism on a fully
// shared L2 TLB — the capacity-contention regime sub-entry sharing targets.
func MechMulti(opt Options) ([]MechMultiRow, error) {
	specs, err := opt.specs()
	if err != nil {
		return nil, err
	}
	if len(specs) < 2 {
		return nil, fmt.Errorf("experiments: mechanism co-run grid needs at least 2 benchmarks, got %d", len(specs))
	}
	benches := make([]string, len(specs))
	for i, s := range specs {
		benches[i] = s.Name
	}
	pairs := MultiPairs(benches)
	mechs := MechNames()

	// Same-mechanism solo references.
	var soloCells []simCell
	for _, s := range specs {
		for _, m := range mechs {
			soloCells = append(soloCells, simCell{s, "mech-" + m + "-solo", opt.Params, MechConfig(m)})
		}
	}
	soloRes, err := opt.runCells(soloCells)
	if err != nil {
		return nil, err
	}
	soloIPC := map[string]float64{}
	for i, s := range specs {
		for j, m := range mechs {
			soloIPC[s.Name+"/"+m] = multi.SoloIPC(soloRes[i*len(mechs)+j])
		}
	}

	type mechCell struct {
		pair [2]string
		mech string
	}
	var cells []mechCell
	for _, p := range pairs {
		for _, m := range mechs {
			cells = append(cells, mechCell{p, m})
		}
	}
	results, err := parallel.Map(opt.ctx(), opt.pool(), len(cells),
		func(_ context.Context, i int) (sim.Result, error) {
			c := cells[i]
			cfg := MechConfig(c.mech)
			o := multi.Options{
				Base: &cfg, Params: opt.Params, TLBMode: multi.TLBSharedMode,
				CellParallel: opt.CellParallel, L2Slices: opt.L2Slices,
			}
			r, rerr := multi.CoRun(c.pair[:], o)
			if rerr != nil {
				return sim.Result{}, fmt.Errorf("%s+%s [mech-%s]: %w", c.pair[0], c.pair[1], c.mech, rerr)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	if opt.StatsDump != nil {
		dump := make([]StatsRow, len(cells))
		for i, c := range cells {
			dump[i] = StatsRow{
				Bench:  c.pair[0] + "+" + c.pair[1],
				Config: "mech-" + c.mech + "-multi",
				Stats:  results[i].Stats,
			}
		}
		opt.StatsDump.add(dump...)
	}

	rows := make([]MechMultiRow, len(cells))
	for i, c := range cells {
		solo := [2]float64{soloIPC[c.pair[0]+"/"+c.mech], soloIPC[c.pair[1]+"/"+c.mech]}
		rows[i] = MechMultiRow{
			Benches: c.pair, Mech: c.mech,
			Tenants:         results[i].Tenants,
			SoloIPC:         solo,
			WeightedSpeedup: multi.WeightedSpeedup(results[i].Tenants, solo[:]),
		}
	}
	return rows, nil
}

// RenderMechMulti formats the co-run mechanism table plus the weighted-
// speedup geomean per mechanism.
func RenderMechMulti(rows []MechMultiRow) string {
	t := metrics.NewTable("Pair", "Mechanism", "IPC A (solo)", "IPC B (solo)", "WS")
	byMech := map[string][]float64{}
	for _, r := range rows {
		var a, b sim.TenantResult
		if len(r.Tenants) == 2 {
			a, b = r.Tenants[0], r.Tenants[1]
		}
		t.AddRow(r.Benches[0]+"+"+r.Benches[1], r.Mech,
			fmt.Sprintf("%.3f (%.3f)", a.IPC(), r.SoloIPC[0]),
			fmt.Sprintf("%.3f (%.3f)", b.IPC(), r.SoloIPC[1]),
			fmt.Sprintf("%.3f", r.WeightedSpeedup))
		byMech[r.Mech] = append(byMech[r.Mech], r.WeightedSpeedup)
	}
	s := "Translation mechanisms — co-runs on a fully shared L2 TLB (WS vs same-mechanism solo, 2.0 = no interference)\n" + t.String()
	g := metrics.NewTable("Mechanism", "Geomean WS")
	for _, m := range MechNames() {
		if ws, ok := byMech[m]; ok {
			g.AddRow(m, fmtGeomean(ws))
		}
	}
	return s + "\nWeighted-speedup geomean by mechanism\n" + g.String()
}
