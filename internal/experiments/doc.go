// Package experiments reproduces every table and figure of the paper's
// evaluation: the benchmark table (Table II), the baseline configuration
// (Table III), the motivation hit rates (Figure 2), the reuse
// characterization (Figures 3-6), the main evaluation (Figures 10 and 11),
// the TLB-compression comparison (Figure 12), the huge-page study, and the
// ablations the paper defers to future work. Each experiment returns
// structured rows plus a text rendering shared by the CLI tools, the
// benchmark harness and EXPERIMENTS.md.
package experiments
