package noc

import (
	"testing"
	"testing/quick"

	"gputlb/internal/engine"
)

func TestTraverseLatencyUncontended(t *testing.T) {
	x := New(2, 2, 20, 1)
	if got := x.Traverse(0, 1, 100); got != 120 {
		t.Errorf("uncontended traverse = %d, want 120", got)
	}
	if x.Stalls() != 0 {
		t.Errorf("stalls = %d on an idle network", x.Stalls())
	}
}

func TestWindowCapacitySpills(t *testing.T) {
	// service 1 -> 64 slots per 64-cycle window; the 65th same-cycle
	// request must spill into the next window.
	x := New(1, 4, 10, 1)
	spilled := false
	for i := 0; i < 65; i++ {
		if got := x.Traverse(0, i%4, 0); got >= 64 {
			spilled = true
		}
	}
	if !spilled {
		t.Error("65 same-window requests never spilled past the window")
	}
	if x.Stalls() == 0 {
		t.Error("no stalls recorded under overload")
	}
}

func TestOrderInsensitive(t *testing.T) {
	// A far-future request must not delay an earlier one (the failure mode
	// of busy-until port models under out-of-order discovery).
	x := New(1, 1, 10, 1)
	x.Traverse(0, 0, 100000)
	early := x.Traverse(0, 0, 50)
	if early != 60 {
		t.Errorf("early request arrived at %d, want 60 (undisturbed)", early)
	}
}

func TestReturnPath(t *testing.T) {
	x := New(2, 2, 10, 1)
	arrive := x.Traverse(0, 1, 0)
	back := x.Return(1, 0, arrive)
	if back < arrive+10 {
		t.Errorf("reply at %d, want >= %d", back, arrive+10)
	}
	if x.Packets() != 2 {
		t.Errorf("Packets = %d, want 2", x.Packets())
	}
}

func TestFarFutureRequests(t *testing.T) {
	x := New(1, 1, 10, 1)
	// Jump far beyond the horizon repeatedly; must not panic and must
	// respect the base latency.
	for _, at := range []engine.Cycle{0, 1 << 20, 1 << 30, 100, 1 << 31} {
		if got := x.Traverse(0, 0, at); got < at+10 {
			t.Errorf("at=%d arrived %d, below latency bound", at, got)
		}
	}
}

// Property: arrival is never before at+latency.
func TestTraverseProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		x := New(2, 2, 15, 2) // capacity 32/window
		for _, r := range raw {
			at := engine.Cycle(r % 2048)
			if got := x.Traverse(0, 1, at); got < at+15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMeterUncontended(t *testing.T) {
	var m Meter
	if got := m.Reserve(100, 10); got != 100 {
		t.Errorf("uncontended Reserve = %d, want 100", got)
	}
}

func TestMeterSaturationSpills(t *testing.T) {
	var m Meter
	// A window holds 64 busy-cycles; the second 64-cycle job must start in
	// a later window.
	a := m.Reserve(0, 64)
	b := m.Reserve(0, 64)
	if a != 0 {
		t.Errorf("first job started at %d, want 0", a)
	}
	if b < 64 {
		t.Errorf("second job started at %d, want >= 64 (window full)", b)
	}
}

func TestMeterSpreadsLargeCosts(t *testing.T) {
	var m Meter
	m.Reserve(0, 500) // fills ~8 windows
	got := m.Reserve(0, 64)
	if got < 448 {
		t.Errorf("job behind a 500-cycle reservation started at %d, want >= 448", got)
	}
}

func TestMeterOrderInsensitive(t *testing.T) {
	var m Meter
	m.Reserve(1<<30, 64) // far future: must not disturb the present
	if got := m.Reserve(0, 10); got != 0 {
		t.Errorf("early job started at %d after a far-future reservation, want 0", got)
	}
}

// Property: Reserve never starts before `at` and a saturating stream makes
// forward progress (start times unbounded below a linear envelope).
func TestMeterProperty(t *testing.T) {
	f := func(costs []uint8) bool {
		var m Meter
		total := 0
		var last engine.Cycle
		for _, c := range costs {
			cost := 1 + int(c)%100
			got := m.Reserve(0, cost)
			if got < 0 {
				return false
			}
			total += cost
			last = got
		}
		// The final start cannot be later than the total booked work.
		return int(last) <= total+64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
