package noc

import (
	"gputlb/internal/engine"
)

// Sliced is the address-sliced crossbar used by the sliced barrier: each
// (SM, slice) pair owns a private request ring and a private reply ring,
// and each memory partition owns one request and one reply ring. Because
// a partition belongs to exactly one slice (partition p is owned by slice
// p mod K) and an SM-side ring is private to one slice, every ring is
// touched by at most one concurrent slice pass — Traverse and Return are
// race-free across slices without locks.
//
// Splitting each direction into its own ring is also a (slightly more
// generous) interconnect model than the monolithic Crossbar's shared
// per-endpoint port: requests no longer contend with replies for the same
// window slots. That difference is part of the K>1 model documented in
// DESIGN.md; K>1 results are compared against their own goldens, never
// against the monolithic ones.
type Sliced struct {
	slices   int
	latency  engine.Cycle
	capacity uint16

	smReq   []port  // [sm*slices + slice]
	smReply []port  // [sm*slices + slice]
	partReq []port  // [partition]
	partRep []port  // [partition]
	packets []int64 // per slice
	stalls  []int64 // per slice
}

// NewSliced builds a sliced crossbar with the same latency/service model as
// New, with per-slice SM-side rings for `slices` address slices.
func NewSliced(numSMs, numPartitions, slices int, latency, service int) *Sliced {
	if numSMs < 1 || numPartitions < 1 || slices < 1 {
		panic("noc: need at least one port on each side and one slice")
	}
	if service < 1 {
		service = 1
	}
	cap := (1 << windowBits) / service
	if cap < 1 {
		cap = 1
	}
	return &Sliced{
		slices:   slices,
		latency:  engine.Cycle(latency),
		capacity: uint16(cap),
		smReq:    make([]port, numSMs*slices),
		smReply:  make([]port, numSMs*slices),
		partReq:  make([]port, numPartitions),
		partRep:  make([]port, numPartitions),
		packets:  make([]int64, slices),
		stalls:   make([]int64, slices),
	}
}

// Traverse sends one request from SM sm through slice's request rings to
// partition part at cycle at and returns its arrival time. part must be
// owned by slice (part mod K == slice).
func (x *Sliced) Traverse(sm, slice, part int, at engine.Cycle) engine.Cycle {
	x.packets[slice]++
	start := x.smReq[sm*x.slices+slice].reserve(at, x.capacity)
	arrive := x.partReq[part].reserve(start+x.latency, x.capacity)
	if arrive > at+x.latency {
		x.stalls[slice]++
	}
	return arrive
}

// Return sends a reply from partition part back to SM sm through slice's
// reply rings.
func (x *Sliced) Return(part, sm, slice int, at engine.Cycle) engine.Cycle {
	x.packets[slice]++
	start := x.partRep[part].reserve(at, x.capacity)
	arrive := x.smReply[sm*x.slices+slice].reserve(start+x.latency, x.capacity)
	if arrive > at+x.latency {
		x.stalls[slice]++
	}
	return arrive
}

// Packets returns the total traversal count across all slices.
func (x *Sliced) Packets() int64 {
	var n int64
	for _, v := range x.packets {
		n += v
	}
	return n
}

// Stalls returns the total number of requests delayed past the bare
// latency across all slices.
func (x *Sliced) Stalls() int64 {
	var n int64
	for _, v := range x.stalls {
		n += v
	}
	return n
}

// AddCounts folds externally accumulated traffic (a sliced crossbar's
// totals) into the monolithic crossbar's counters so the registered stats
// tree reports combined traffic from one place.
func (x *Crossbar) AddCounts(packets, stalls int64) {
	x.packets += packets
	x.stalls += stalls
}
