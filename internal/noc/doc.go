// Package noc models the on-chip interconnection network between SMs and
// memory partitions (the crossbar of the paper's Figure 1). Each SM has an
// injection port and each partition an ejection port with a bounded number
// of request slots per time window; requests beyond a window's capacity
// spill into later windows. The window model is insensitive to the order
// in which the simulator discovers requests (issue order is not timestamp
// order), which keeps it deterministic under the sim's
// latency-composition style.
package noc
