package noc

import (
	"gputlb/internal/engine"
	"gputlb/internal/stats"
)

// windowBits sets the reservation window (2^6 = 64 cycles).
const windowBits = 6

// horizon is how many windows ahead a port tracks; requests beyond it are
// uncontended (in-flight latencies are far shorter than the horizon).
const horizon = 256

// port is one direction of one endpoint: a circular ring of per-window slot
// counts. Window w lives at counts[w%horizon] while w is inside
// [base, base+horizon); sliding the ring forward only zeroes the windows
// that enter the horizon instead of copying the whole ring.
type port struct {
	counts [horizon]uint16
	base   int64 // lowest window index still tracked
	full   int64 // every window in [base, full) is known to be at capacity
}

// slide advances the ring so that window w fits inside the horizon. It
// reports false for a far-future outlier that should be granted without
// accounting rather than dragging the ring (and every near-term request)
// forward.
func (p *port) slide(w int64) bool {
	shift := w - (p.base + horizon) + 1
	if shift >= horizon {
		return false
	}
	for i := int64(0); i < shift; i++ {
		p.counts[(p.base+i)&(horizon-1)] = 0
	}
	p.base += shift
	if p.full < p.base {
		p.full = p.base
	}
	return true
}

// reserve books one slot at or after cycle `at` and returns the granted
// start cycle. capacity is the number of slots per window.
func (p *port) reserve(at engine.Cycle, capacity uint16) engine.Cycle {
	w := int64(at) >> windowBits
	if w < p.base {
		// A window that has already slid out of the ring: grant without
		// accounting (rare, bounded distortion).
		return at
	}
	if w >= p.base+horizon && !p.slide(w) {
		return at
	}
	// Skip the known-full frontier, and keep extending it while the scan
	// stays contiguous with it — this turns a congested port's repeated
	// forward scans into amortized O(1).
	contig := w <= p.full
	if w < p.full {
		w = p.full
	}
	for w-p.base < horizon {
		if c := &p.counts[w&(horizon-1)]; *c < capacity {
			*c++
			if contig && *c >= capacity {
				p.full = w + 1
			}
			break
		}
		w++
		if contig {
			p.full = w
		}
		// Running off the tracked horizon grants without accounting.
	}
	start := engine.Cycle(w << windowBits)
	if at > start {
		start = at
	}
	return start
}

// Crossbar is an N-SM x M-partition interconnect. The zero value is not
// usable; call New.
type Crossbar struct {
	in       []port
	out      []port
	latency  engine.Cycle
	capacity uint16 // slots per 64-cycle window per port
	packets  int64
	stalls   int64
}

// New builds a crossbar with the given traversal latency and per-request
// port service time in cycles (a service of s cycles means 64/s requests
// per port per 64-cycle window).
func New(numSMs, numPartitions int, latency, service int) *Crossbar {
	if numSMs < 1 || numPartitions < 1 {
		panic("noc: need at least one port on each side")
	}
	if service < 1 {
		service = 1
	}
	cap := (1 << windowBits) / service
	if cap < 1 {
		cap = 1
	}
	return &Crossbar{
		in:       make([]port, numSMs),
		out:      make([]port, numPartitions),
		latency:  engine.Cycle(latency),
		capacity: uint16(cap),
	}
}

// Traverse sends one request from SM sm to partition part at cycle at and
// returns its arrival time.
func (x *Crossbar) Traverse(sm, part int, at engine.Cycle) engine.Cycle {
	x.packets++
	start := x.in[sm].reserve(at, x.capacity)
	arrive := x.out[part].reserve(start+x.latency, x.capacity)
	if arrive > at+x.latency {
		x.stalls++
	}
	return arrive
}

// Return sends a reply from partition part back to SM sm.
func (x *Crossbar) Return(part, sm int, at engine.Cycle) engine.Cycle {
	x.packets++
	start := x.out[part].reserve(at, x.capacity)
	arrive := x.in[sm].reserve(start+x.latency, x.capacity)
	if arrive > at+x.latency {
		x.stalls++
	}
	return arrive
}

// Packets returns the number of traversals.
func (x *Crossbar) Packets() int64 { return x.packets }

// Stalls returns the number of requests delayed past the bare latency (a
// congestion indicator).
func (x *Crossbar) Stalls() int64 { return x.stalls }

// RegisterStats registers the crossbar's traffic counters into r; values
// are read lazily at snapshot time.
func (x *Crossbar) RegisterStats(r *stats.Registry) {
	r.CounterFunc("packets", func() int64 { return x.packets })
	r.CounterFunc("stalls", func() int64 { return x.stalls })
	r.GaugeFunc("stall_rate", func() float64 {
		if x.packets == 0 {
			return 0
		}
		return float64(x.stalls) / float64(x.packets)
	})
}

// Meter is an order-insensitive capacity meter for a resource that serves
// a bounded number of busy-cycles per time window (a DRAM bank, a walker
// pool). Reserve books `cost` busy-cycles at or after `at`, spreading the
// cost over consecutive windows, and returns the granted start cycle.
type Meter struct {
	p port
}

// Reserve books cost busy-cycles starting at or after at.
func (m *Meter) Reserve(at engine.Cycle, cost int) engine.Cycle {
	const budget = 1 << windowBits
	w := int64(at) >> windowBits
	if w < m.p.base {
		return at
	}
	if w >= m.p.base+horizon && !m.p.slide(w) {
		return at
	}
	// Find the first window with slack, skipping the known-full frontier.
	contig := w <= m.p.full
	if w < m.p.full {
		w = m.p.full
	}
	for w-m.p.base < horizon && m.p.counts[w&(horizon-1)] >= budget {
		w++
		if contig {
			m.p.full = w
		}
	}
	start := engine.Cycle(w << windowBits)
	if at > start {
		start = at
	}
	// Spread the cost over consecutive windows.
	for c := cost; c > 0 && w-m.p.base < horizon; {
		idx := w & (horizon - 1)
		free := budget - int(m.p.counts[idx])
		if free > c {
			free = c
		}
		m.p.counts[idx] += uint16(free)
		c -= free
		w++
	}
	return start
}
