package noc

import (
	"gputlb/internal/engine"
	"gputlb/internal/stats"
)

// windowBits sets the reservation window (2^6 = 64 cycles).
const windowBits = 6

// horizon is how many windows ahead a port tracks; requests beyond it are
// uncontended (in-flight latencies are far shorter than the horizon).
const horizon = 256

// port is one direction of one endpoint: a ring of per-window slot counts.
type port struct {
	counts [horizon]uint16
	base   int64 // window index of counts[0]
}

// reserve books one slot at or after cycle `at` and returns the granted
// start cycle. capacity is the number of slots per window.
func (p *port) reserve(at engine.Cycle, capacity uint16) engine.Cycle {
	w := int64(at) >> windowBits
	if w < p.base {
		// A window that has already slid out of the ring: grant without
		// accounting (rare, bounded distortion).
		return at
	}
	if w >= p.base+horizon {
		shift := w - (p.base + horizon) + 1
		if shift >= horizon {
			// A far-future outlier: grant without accounting rather than
			// dragging the ring (and every near-term request) forward.
			return at
		}
		copy(p.counts[:], p.counts[shift:])
		for i := horizon - int(shift); i < horizon; i++ {
			p.counts[i] = 0
		}
		p.base += shift
	}
	for {
		idx := w - p.base
		if idx >= horizon {
			// Ran off the tracked horizon: grant without accounting.
			break
		}
		if p.counts[idx] < capacity {
			p.counts[idx]++
			break
		}
		w++
	}
	start := engine.Cycle(w << windowBits)
	if at > start {
		start = at
	}
	return start
}

// Crossbar is an N-SM x M-partition interconnect. The zero value is not
// usable; call New.
type Crossbar struct {
	in       []port
	out      []port
	latency  engine.Cycle
	capacity uint16 // slots per 64-cycle window per port
	packets  int64
	stalls   int64
}

// New builds a crossbar with the given traversal latency and per-request
// port service time in cycles (a service of s cycles means 64/s requests
// per port per 64-cycle window).
func New(numSMs, numPartitions int, latency, service int) *Crossbar {
	if numSMs < 1 || numPartitions < 1 {
		panic("noc: need at least one port on each side")
	}
	if service < 1 {
		service = 1
	}
	cap := (1 << windowBits) / service
	if cap < 1 {
		cap = 1
	}
	return &Crossbar{
		in:       make([]port, numSMs),
		out:      make([]port, numPartitions),
		latency:  engine.Cycle(latency),
		capacity: uint16(cap),
	}
}

// Traverse sends one request from SM sm to partition part at cycle at and
// returns its arrival time.
func (x *Crossbar) Traverse(sm, part int, at engine.Cycle) engine.Cycle {
	x.packets++
	start := x.in[sm].reserve(at, x.capacity)
	arrive := x.out[part].reserve(start+x.latency, x.capacity)
	if arrive > at+x.latency {
		x.stalls++
	}
	return arrive
}

// Return sends a reply from partition part back to SM sm.
func (x *Crossbar) Return(part, sm int, at engine.Cycle) engine.Cycle {
	x.packets++
	start := x.out[part].reserve(at, x.capacity)
	arrive := x.in[sm].reserve(start+x.latency, x.capacity)
	if arrive > at+x.latency {
		x.stalls++
	}
	return arrive
}

// Packets returns the number of traversals.
func (x *Crossbar) Packets() int64 { return x.packets }

// Stalls returns the number of requests delayed past the bare latency (a
// congestion indicator).
func (x *Crossbar) Stalls() int64 { return x.stalls }

// RegisterStats registers the crossbar's traffic counters into r; values
// are read lazily at snapshot time.
func (x *Crossbar) RegisterStats(r *stats.Registry) {
	r.CounterFunc("packets", func() int64 { return x.packets })
	r.CounterFunc("stalls", func() int64 { return x.stalls })
	r.GaugeFunc("stall_rate", func() float64 {
		if x.packets == 0 {
			return 0
		}
		return float64(x.stalls) / float64(x.packets)
	})
}

// Meter is an order-insensitive capacity meter for a resource that serves
// a bounded number of busy-cycles per time window (a DRAM bank, a walker
// pool). Reserve books `cost` busy-cycles at or after `at`, spreading the
// cost over consecutive windows, and returns the granted start cycle.
type Meter struct {
	p port
}

// Reserve books cost busy-cycles starting at or after at.
func (m *Meter) Reserve(at engine.Cycle, cost int) engine.Cycle {
	const budget = 1 << windowBits
	w := int64(at) >> windowBits
	if w < m.p.base {
		return at
	}
	if w >= m.p.base+horizon {
		shift := w - (m.p.base + horizon) + 1
		if shift >= horizon {
			return at
		}
		copy(m.p.counts[:], m.p.counts[shift:])
		for i := horizon - int(shift); i < horizon; i++ {
			m.p.counts[i] = 0
		}
		m.p.base += shift
	}
	// Find the first window with slack.
	for w-m.p.base < horizon && m.p.counts[w-m.p.base] >= budget {
		w++
	}
	start := engine.Cycle(w << windowBits)
	if at > start {
		start = at
	}
	// Spread the cost over consecutive windows.
	for c := cost; c > 0 && w-m.p.base < horizon; {
		idx := w - m.p.base
		free := budget - int(m.p.counts[idx])
		if free > c {
			free = c
		}
		m.p.counts[idx] += uint16(free)
		c -= free
		w++
	}
	return start
}
