package sim

import "gputlb/internal/engine"

// RunShardedWorkers runs the sharded engine with an explicit worker count,
// letting tests pin worker counts (including 1, which SetCellParallel
// reserves for the serial engine) independently of the public flag.
func (s *Simulator) RunShardedWorkers(workers int) Result {
	return s.runSharded(workers)
}

// SetApplyObserver installs a test observer of the barrier's canonical op
// order; it is called once per applied shared op with the op's (request
// cycle, shard index, per-shard sequence).
func (s *Simulator) SetApplyObserver(fn func(t engine.Cycle, shard int, seq int64)) {
	s.onApply = fn
}
