package sim

import (
	"reflect"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/control"
	"gputlb/internal/engine"
	"gputlb/internal/sched"
)

// churnResult runs a 2-slot co-run with two mid-run arrivals under a
// partitioned L2 TLB, optionally with a controller, at the given cell
// parallelism. Fresh kernels every call: address spaces are stateful.
func churnResult(t *testing.T, cp int, ctlCfg *control.Config, queueCap int) Result {
	t.Helper()
	cfg := arch.Default()
	assign := sched.AssignSMs(sched.AssignSpatial, cfg.NumSMs, 2)
	k0, as0 := tinyKernel(t, 8, 4)
	k1, as1 := tinyKernel(t, 6, 3)
	ka, asa := tinyKernel(t, 5, 3)
	kb, asb := tinyKernel(t, 4, 2)
	tenants := []Tenant{
		{Name: "a", Kernel: k0, AS: as0, SMs: assign[0]},
		{Name: "b", Kernel: k1, AS: as1, SMs: assign[1]},
	}
	mopt := MultiOptions{
		L2TLBPolicy: arch.IndexByTB,
		Churn: &ChurnSpec{QueueCap: queueCap, Arrivals: []ChurnArrival{
			{Tenant: Tenant{Name: "c", Kernel: ka, AS: asa}, At: 512},
			{Tenant: Tenant{Name: "d", Kernel: kb, AS: asb}, At: 1024},
		}},
	}
	s, err := NewMulti(cfg, tenants, mopt)
	if err != nil {
		t.Fatal(err)
	}
	if ctlCfg != nil {
		if _, err := s.AttachController(*ctlCfg); err != nil {
			t.Fatal(err)
		}
	}
	s.SetCellParallel(cp)
	r := s.Run()
	r.Stats = nil
	return r
}

func TestChurnArrivalsComplete(t *testing.T) {
	r := churnResult(t, 1, nil, 2)
	if len(r.Tenants) != 4 {
		t.Fatalf("got %d tenant results, want 4", len(r.Tenants))
	}
	for _, tr := range r.Tenants {
		if tr.Shed {
			t.Fatalf("tenant %s shed with queue capacity 2", tr.Name)
		}
		if tr.InstsIssued == 0 {
			t.Errorf("tenant %s issued no instructions", tr.Name)
		}
		if tr.IPC() <= 0 {
			t.Errorf("tenant %s IPC = %f", tr.Name, tr.IPC())
		}
	}
	// Arrivals start when admitted, after their arrival cycle.
	for _, tr := range r.Tenants[2:] {
		if tr.StartCycle == 0 {
			t.Errorf("arrival %s has no start cycle", tr.Name)
		}
		if tr.Cycles <= tr.StartCycle {
			t.Errorf("arrival %s finished at %d before starting at %d", tr.Name, tr.Cycles, tr.StartCycle)
		}
	}
}

func TestChurnControllerWorkerInvariant(t *testing.T) {
	// Controller + churn must be bit-identical across sharded worker counts
	// and epoch lengths: decisions key only on barrier-sampled state.
	cc := control.Config{Period: 256, Cooldown: 1}
	base := churnResult(t, 2, &cc, 1)
	for _, cp := range []int{4, 8} {
		if r := churnResult(t, cp, &cc, 1); !reflect.DeepEqual(base, r) {
			t.Errorf("cell-parallel %d diverged from 2", cp)
		}
	}
}

func TestChurnControllerEpochInvariant(t *testing.T) {
	cc := control.Config{Period: 256, Cooldown: 1}
	cfgRun := func(epoch engine.Cycle) Result {
		cfg := arch.Default()
		assign := sched.AssignSMs(sched.AssignSpatial, cfg.NumSMs, 2)
		k0, as0 := tinyKernel(t, 8, 4)
		k1, as1 := tinyKernel(t, 6, 3)
		ka, asa := tinyKernel(t, 5, 3)
		tenants := []Tenant{
			{Name: "a", Kernel: k0, AS: as0, SMs: assign[0]},
			{Name: "b", Kernel: k1, AS: as1, SMs: assign[1]},
		}
		mopt := MultiOptions{
			L2TLBPolicy: arch.IndexByTB,
			Churn: &ChurnSpec{QueueCap: 1, Arrivals: []ChurnArrival{
				{Tenant: Tenant{Name: "c", Kernel: ka, AS: asa}, At: 512},
			}},
		}
		s, err := NewMulti(cfg, tenants, mopt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AttachController(cc); err != nil {
			t.Fatal(err)
		}
		s.SetCellParallel(2)
		s.SetEpochLength(epoch)
		r := s.Run()
		r.Stats = nil
		return r
	}
	base := cfgRun(0)
	for _, e := range []engine.Cycle{1, 7, 13} {
		if r := cfgRun(e); !reflect.DeepEqual(base, r) {
			t.Errorf("epoch length %d diverged from default", e)
		}
	}
}

func TestChurnShedDeterministic(t *testing.T) {
	// Queue capacity 0 and an arrival while every slot is occupied: the
	// arrival is shed, its TBs leave the workload, and the run completes.
	run := func() Result {
		cfg := arch.Default()
		assign := sched.AssignSMs(sched.AssignSpatial, cfg.NumSMs, 2)
		k0, as0 := tinyKernel(t, 8, 4)
		k1, as1 := tinyKernel(t, 6, 3)
		ka, asa := tinyKernel(t, 5, 3)
		tenants := []Tenant{
			{Name: "a", Kernel: k0, AS: as0, SMs: assign[0]},
			{Name: "b", Kernel: k1, AS: as1, SMs: assign[1]},
		}
		mopt := MultiOptions{
			L2TLBPolicy: arch.IndexByTB,
			Churn:       &ChurnSpec{QueueCap: 0, Arrivals: []ChurnArrival{{Tenant: Tenant{Name: "c", Kernel: ka, AS: asa}, At: 1}}},
		}
		s, err := NewMulti(cfg, tenants, mopt)
		if err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		r.Stats = nil
		return r
	}
	r := run()
	if len(r.Tenants) != 3 {
		t.Fatalf("got %d tenant results, want 3", len(r.Tenants))
	}
	shed := r.Tenants[2]
	if !shed.Shed {
		t.Fatal("arrival at cycle 1 with zero queue capacity was not shed")
	}
	if shed.InstsIssued != 0 || shed.Cycles != 0 {
		t.Errorf("shed tenant ran: %+v", shed)
	}
	if r2 := run(); !reflect.DeepEqual(r, r2) {
		t.Error("identical shed runs diverged")
	}
}

func TestChurnDepartureDrainsCleanly(t *testing.T) {
	// A tenant departing while the controller immediately shrinks its slot
	// to zero width must drain its in-flight walks, MSHR entries, and
	// straggling L1 victim write-backs without corrupting the survivors.
	// The sharded engine is the sharp case: the departure is a barrier op
	// and same-cycle evict ops for the dead ASID apply after it.
	cc := control.Config{Period: 128, Cooldown: 0}
	for _, cp := range []int{1, 4} {
		cfg := arch.Default()
		assign := sched.AssignSMs(sched.AssignSpatial, cfg.NumSMs, 2)
		kBig, asBig := tinyKernel(t, 12, 6)
		kSmall, asSmall := tinyKernel(t, 2, 1) // departs early, mid-traffic
		tenants := []Tenant{
			{Name: "big", Kernel: kBig, AS: asBig, SMs: assign[0]},
			{Name: "small", Kernel: kSmall, AS: asSmall, SMs: assign[1]},
		}
		s, err := NewMulti(cfg, tenants, MultiOptions{L2TLBPolicy: arch.IndexByTB})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AttachController(cc); err != nil {
			t.Fatal(err)
		}
		s.SetCellParallel(cp)
		r := s.Run() // panics on deadlock or a corrupted partition
		if r.Tenants[0].InstsIssued == 0 || r.Tenants[1].InstsIssued == 0 {
			t.Fatalf("cell-parallel %d: a tenant issued nothing: %+v", cp, r.Tenants)
		}
		if d, ok := s.Controller().Last(); !ok || !d.Rebalanced {
			t.Errorf("cell-parallel %d: departure did not trigger a rebalance", cp)
		}
	}
}

func TestControllerFrozenMatchesStatic(t *testing.T) {
	// A frozen controller must reproduce the plain static partition
	// bit-identically: it never changes the assignment, and its periodic
	// tick touches no model state. Check both engines.
	for _, cp := range []int{1, 4} {
		run := func(frozen bool) Result {
			cfg := arch.Default()
			tenants := twoTenants(t, cfg)
			s, err := NewMulti(cfg, tenants, MultiOptions{L2TLBPolicy: arch.IndexByTB})
			if err != nil {
				t.Fatal(err)
			}
			if frozen {
				if _, err := s.AttachController(control.Config{Period: 256, Frozen: true}); err != nil {
					t.Fatal(err)
				}
			}
			s.SetCellParallel(cp)
			r := s.Run()
			r.Stats = nil
			return r
		}
		static, frozen := run(false), run(true)
		if !reflect.DeepEqual(static, frozen) {
			t.Errorf("cell-parallel %d: frozen controller diverged from the static partition:\n static: %+v\n frozen: %+v",
				cp, static.Tenants, frozen.Tenants)
		}
	}
}

func TestPartialRunIPCUsesOwnElapsed(t *testing.T) {
	// Regression for the weighted-speedup accounting fix: a tenant admitted
	// at cycle 600 and finishing at 1000 ran for 400 cycles, not 1000.
	tr := TenantResult{Cycles: 1000, StartCycle: 600, InstsIssued: 400}
	if got := tr.IPC(); got != 1.0 {
		t.Errorf("partial-run IPC = %f, want 1.0 (own elapsed cycles)", got)
	}
	if got := (TenantResult{Cycles: 500, InstsIssued: 250}).IPC(); got != 0.5 {
		t.Errorf("full-run IPC = %f, want 0.5", got)
	}
	if got := (TenantResult{Cycles: 100, StartCycle: 100}).IPC(); got != 0 {
		t.Errorf("zero-elapsed IPC = %f, want 0", got)
	}
}

func TestChurnValidation(t *testing.T) {
	cfg := arch.Default()
	k, as := tinyKernel(t, 2, 1)
	pair := twoTenants(t, cfg)
	bad := []struct {
		name string
		spec *ChurnSpec
	}{
		{"non-positive arrival cycle", &ChurnSpec{Arrivals: []ChurnArrival{{Tenant: Tenant{Kernel: k, AS: as}, At: 0}}}},
		{"unsorted arrivals", &ChurnSpec{Arrivals: []ChurnArrival{
			{Tenant: Tenant{Kernel: k, AS: as}, At: 100},
			{Tenant: Tenant{Kernel: k, AS: as}, At: 50},
		}}},
		{"missing kernel", &ChurnSpec{Arrivals: []ChurnArrival{{Tenant: Tenant{AS: as}, At: 10}}}},
		{"explicit SM list", &ChurnSpec{Arrivals: []ChurnArrival{{Tenant: Tenant{Kernel: k, AS: as, SMs: []int{0}}, At: 10}}}},
		{"negative queue capacity", &ChurnSpec{QueueCap: -1}},
	}
	for _, c := range bad {
		if _, err := NewMulti(cfg, pair, MultiOptions{Churn: c.spec}); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// Churn needs at least two initial tenants.
	single := []Tenant{{Name: "solo", Kernel: k, AS: as}}
	if _, err := NewMulti(cfg, single, MultiOptions{Churn: &ChurnSpec{}}); err == nil {
		t.Error("single-tenant churn accepted")
	}
	// A controller needs a multi-tenant run.
	s, err := NewMulti(cfg, single, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachController(control.DefaultConfig()); err == nil {
		t.Error("controller attached to a single-tenant run")
	}
}
