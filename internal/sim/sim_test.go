package sim

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/engine"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
	"gputlb/internal/workloads"
)

// tinyKernel builds a minimal hand-rolled kernel: nTBs TBs, one warp each,
// each warp touching its own pages then a shared page.
func tinyKernel(t *testing.T, nTBs, instsPerWarp int) (*trace.Kernel, *vm.AddressSpace) {
	t.Helper()
	as := vm.NewAddressSpace(12, 1, 0)
	priv, err := as.Alloc("priv", uint64(nTBs*instsPerWarp)*4096)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := as.Alloc("shared", 4096)
	if err != nil {
		t.Fatal(err)
	}
	k := &trace.Kernel{Name: "tiny", ThreadsPerTB: 32}
	for tb := 0; tb < nTBs; tb++ {
		var wt trace.WarpTrace
		for i := 0; i < instsPerWarp; i++ {
			base := priv.Base + vm.Addr((tb*instsPerWarp+i)*4096)
			addrs := make([]vm.Addr, 32)
			for l := range addrs {
				addrs[l] = base + vm.Addr(l*8)
			}
			wt.Insts = append(wt.Insts, trace.Inst{Addrs: addrs})
			wt.Insts = append(wt.Insts, trace.Inst{Compute: 4})
		}
		sh := make([]vm.Addr, 32)
		for l := range sh {
			sh[l] = shared.Base + vm.Addr(l*8)
		}
		wt.Insts = append(wt.Insts, trace.Inst{Addrs: sh})
		k.TBs = append(k.TBs, trace.TBTrace{ID: tb, Warps: []trace.WarpTrace{wt}})
	}
	return k, as
}

func TestRunCompletesAndCounts(t *testing.T) {
	k, as := tinyKernel(t, 8, 4)
	r, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Error("zero execution time")
	}
	// 8 TBs x (4 mem + 4 compute + 1 shared mem) instructions.
	if want := int64(8 * 9); r.InstsIssued != want {
		t.Errorf("InstsIssued = %d, want %d", r.InstsIssued, want)
	}
	// Every mem inst touches exactly 1 page: 8*5 translation requests.
	if want := int64(8 * 5); r.PageRequests != want {
		t.Errorf("PageRequests = %d, want %d", r.PageRequests, want)
	}
	if r.L1TLBAccesses() != r.PageRequests {
		t.Errorf("L1 TLB accesses %d != page requests %d", r.L1TLBAccesses(), r.PageRequests)
	}
	// UVM faults once per 16-page basic block: 32 private pages = 2 blocks,
	// plus the shared page's block.
	if r.Faults != 3 {
		t.Errorf("Faults = %d, want 3", r.Faults)
	}
	if r.Walks < r.Faults {
		t.Errorf("Walks = %d below fault count %d", r.Walks, r.Faults)
	}
}

func TestDeterministic(t *testing.T) {
	for _, pol := range []arch.TBSchedulerPolicy{arch.ScheduleRoundRobin, arch.ScheduleTLBAware} {
		cfg := arch.Default()
		cfg.TBScheduler = pol
		k, as := tinyKernel(t, 20, 6)
		r1, err := Run(cfg, k, as)
		if err != nil {
			t.Fatal(err)
		}
		k2, as2 := tinyKernel(t, 20, 6)
		r2, err := Run(cfg, k2, as2)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles || r1.L1TLBHitRate != r2.L1TLBHitRate {
			t.Errorf("policy %v: identical runs diverged: %d/%f vs %d/%f",
				pol, r1.Cycles, r1.L1TLBHitRate, r2.Cycles, r2.L1TLBHitRate)
		}
	}
}

func TestRoundRobinSpreadsTBs(t *testing.T) {
	k, as := tinyKernel(t, 32, 2)
	r, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range r.TBsPerSM {
		if n != 2 {
			t.Errorf("SM %d ran %d TBs, want 2 (32 TBs round-robin over 16 SMs)", i, n)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	k, as := tinyKernel(t, 2, 1)
	bad := arch.Default()
	bad.NumSMs = 0
	if _, err := New(bad, k, as); err == nil {
		t.Error("New accepted invalid config")
	}
	cfg := arch.Default()
	cfg.PageSize = arch.PageSize2M
	if _, err := New(cfg, k, as); err == nil {
		t.Error("New accepted page-size mismatch between config and address space")
	}
	if _, err := New(arch.Default(), &trace.Kernel{Name: "empty", ThreadsPerTB: 32}, as); err == nil {
		t.Error("New accepted empty kernel")
	}
}

func TestSharedPageWalkedOnce(t *testing.T) {
	// All 8 TBs land on different SMs and touch the same shared page last;
	// the L2 TLB plus in-flight merging must keep walks well below one per
	// access.
	k, as := tinyKernel(t, 8, 1)
	r, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	// Pages: 8 private + 1 shared = 9; every page walked exactly once if the
	// L2 TLB holds them (it does: 9 << 512 entries).
	if r.Walks != 9 {
		t.Errorf("Walks = %d, want 9 (one per distinct page)", r.Walks)
	}
}

func TestExecutionRespectsComputeBound(t *testing.T) {
	// A kernel of pure compute must take at least its serial compute time
	// on one warp and roughly that (all warps run in parallel across SMs).
	as := vm.NewAddressSpace(12, 1, 0)
	if _, err := as.Alloc("dummy", 4096); err != nil {
		t.Fatal(err)
	}
	k := &trace.Kernel{Name: "compute", ThreadsPerTB: 32}
	const n = 50
	for tb := 0; tb < 16; tb++ {
		var wt trace.WarpTrace
		for i := 0; i < n; i++ {
			wt.Insts = append(wt.Insts, trace.Inst{Compute: 10})
		}
		k.TBs = append(k.TBs, trace.TBTrace{ID: tb, Warps: []trace.WarpTrace{wt}})
	}
	r, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles < n*10 {
		t.Errorf("Cycles = %d, below serial compute %d", r.Cycles, n*10)
	}
	if r.Cycles > 3*n*10 {
		t.Errorf("Cycles = %d, 16 independent TBs on 16 SMs should run near-parallel (~%d)", r.Cycles, n*10)
	}
}

func TestHitRateImprovesWithLargerTLB(t *testing.T) {
	// The Figure 2 premise: growing L1 TLB from 64 to 256 entries should
	// not reduce — and for thrashing workloads should raise — hit rates.
	s, _ := workloads.ByName("atax")
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.5}
	k, as := s.Build(p)
	small, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.Default()
	cfg.L1TLB.Entries = 256
	k2, as2 := s.Build(p)
	big, err := Run(cfg, k2, as2)
	if err != nil {
		t.Fatal(err)
	}
	if big.L1TLBHitRate < small.L1TLBHitRate {
		t.Errorf("256-entry hit rate %.3f below 64-entry %.3f", big.L1TLBHitRate, small.L1TLBHitRate)
	}
	if big.L1TLBHitRate < small.L1TLBHitRate+0.05 {
		t.Errorf("atax thrashes at 64 entries; expected a clear gain at 256 (got %.3f -> %.3f)",
			small.L1TLBHitRate, big.L1TLBHitRate)
	}
}

func TestAllWorkloadsRunUnderAllPolicies(t *testing.T) {
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2}
	policies := []struct {
		name string
		mod  func(*arch.Config)
	}{
		{"baseline", func(c *arch.Config) {}},
		{"sched", func(c *arch.Config) { c.TBScheduler = arch.ScheduleTLBAware }},
		{"part", func(c *arch.Config) { c.TLBIndexPolicy = arch.IndexByTB }},
		{"share", func(c *arch.Config) { c.TLBIndexPolicy = arch.IndexByTBShared }},
		{"compress", func(c *arch.Config) { c.TLBCompression = true }},
	}
	for _, s := range workloads.All() {
		for _, pol := range policies {
			cfg := arch.Default()
			pol.mod(&cfg)
			k, as := s.Build(p)
			r, err := Run(cfg, k, as)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name, pol.name, err)
			}
			if r.Cycles <= 0 || r.L1TLBAccesses() == 0 {
				t.Errorf("%s/%s: empty result %+v", s.Name, pol.name, r.Cycles)
			}
			if r.L1TLBHitRate < 0 || r.L1TLBHitRate > 1 {
				t.Errorf("%s/%s: hit rate %f out of range", s.Name, pol.name, r.L1TLBHitRate)
			}
		}
	}
}

func TestHugePagesRaiseHitRate(t *testing.T) {
	s, _ := workloads.ByName("mvt")
	p4k := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.5}
	k4, as4 := s.Build(p4k)
	r4, err := Run(arch.Default(), k4, as4)
	if err != nil {
		t.Fatal(err)
	}
	p2m := p4k
	p2m.PageShift = 21
	cfg := arch.Default()
	cfg.PageSize = arch.PageSize2M
	k2, as2 := s.Build(p2m)
	r2, err := Run(cfg, k2, as2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.L1TLBHitRate <= r4.L1TLBHitRate {
		t.Errorf("2MB pages hit rate %.3f not above 4KB %.3f (paper §V: huge pages significantly improve hit rates)",
			r2.L1TLBHitRate, r4.L1TLBHitRate)
	}
}

func TestWalkerContentionSerializesWalks(t *testing.T) {
	// With 1 walker, many cold pages must serialize: execution takes far
	// longer than with 8 walkers.
	k, as := tinyKernel(t, 16, 8)
	cfg := arch.Default()
	cfg.NumWalkers = 1
	rSlow, err := Run(cfg, k, as)
	if err != nil {
		t.Fatal(err)
	}
	k2, as2 := tinyKernel(t, 16, 8)
	rFast, err := Run(arch.Default(), k2, as2)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Cycles <= rFast.Cycles {
		t.Errorf("1 walker (%d cycles) not slower than 8 walkers (%d cycles)", rSlow.Cycles, rFast.Cycles)
	}
}

func TestWarpSchedulerPolicies(t *testing.T) {
	// All three warp schedulers must complete the same kernel, be
	// deterministic, and issue the same instruction count.
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.25}
	s, _ := workloads.ByName("atax")
	results := map[arch.WarpSchedulerPolicy]Result{}
	for _, pol := range []arch.WarpSchedulerPolicy{arch.WarpGTO, arch.WarpLRR, arch.WarpTransAware} {
		cfg := arch.Default()
		cfg.WarpScheduler = pol
		k, as := s.Build(p)
		r1, err := Run(cfg, k, as)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		k2, as2 := s.Build(p)
		r2, err := Run(cfg, k2, as2)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles {
			t.Errorf("%v: nondeterministic (%d vs %d cycles)", pol, r1.Cycles, r2.Cycles)
		}
		results[pol] = r1
	}
	if results[arch.WarpGTO].InstsIssued != results[arch.WarpLRR].InstsIssued ||
		results[arch.WarpGTO].InstsIssued != results[arch.WarpTransAware].InstsIssued {
		t.Error("policies issued different instruction counts")
	}
	// The translation-aware scheduler exists to protect TLB locality: it
	// must not degrade the hit rate materially vs GTO.
	if results[arch.WarpTransAware].L1TLBHitRate < results[arch.WarpGTO].L1TLBHitRate-0.05 {
		t.Errorf("translation-aware hit %.3f well below GTO %.3f",
			results[arch.WarpTransAware].L1TLBHitRate, results[arch.WarpGTO].L1TLBHitRate)
	}
}

func TestWarpSchedulerStrings(t *testing.T) {
	if arch.WarpGTO.String() != "gto" || arch.WarpLRR.String() != "lrr" ||
		arch.WarpTransAware.String() != "translation-aware" {
		t.Error("warp scheduler strings wrong")
	}
}

func TestPhaseBarrierSerializesPhases(t *testing.T) {
	// Two phases of 4 TBs each: phase 2 must not start before phase 1
	// retires, so with one warp per TB the execution time is at least the
	// sum of the two phases' critical paths.
	as := vm.NewAddressSpace(12, 1, 0)
	if _, err := as.Alloc("d", 1<<20); err != nil {
		t.Fatal(err)
	}
	mk := func(n int) *trace.Kernel {
		k := &trace.Kernel{Name: "phased", ThreadsPerTB: 32}
		for tb := 0; tb < n; tb++ {
			var wt trace.WarpTrace
			for i := 0; i < 10; i++ {
				wt.Insts = append(wt.Insts, trace.Inst{Compute: 100})
			}
			k.TBs = append(k.TBs, trace.TBTrace{ID: tb, Warps: []trace.WarpTrace{wt}})
		}
		return k
	}
	flat := mk(8)
	rFlat, err := Run(arch.Default(), flat, as)
	if err != nil {
		t.Fatal(err)
	}
	as2 := vm.NewAddressSpace(12, 1, 0)
	if _, err := as2.Alloc("d", 1<<20); err != nil {
		t.Fatal(err)
	}
	phased := mk(8)
	phased.PhaseStarts = []int{4}
	rPhased, err := Run(arch.Default(), phased, as2)
	if err != nil {
		t.Fatal(err)
	}
	// Flat: all 8 TBs run in parallel (~1000 cycles). Phased: two
	// dependent waves (~2000 cycles).
	if rPhased.Cycles < rFlat.Cycles+900 {
		t.Errorf("phase barrier did not serialize: flat %d, phased %d cycles", rFlat.Cycles, rPhased.Cycles)
	}
}

func TestPhaseValidation(t *testing.T) {
	as := vm.NewAddressSpace(12, 1, 0)
	if _, err := as.Alloc("d", 4096); err != nil {
		t.Fatal(err)
	}
	k := &trace.Kernel{Name: "bad", ThreadsPerTB: 32, PhaseStarts: []int{5}}
	k.TBs = append(k.TBs, trace.TBTrace{ID: 0, Warps: []trace.WarpTrace{{Insts: []trace.Inst{{Compute: 1}}}}})
	if _, err := New(arch.Default(), k, as); err == nil {
		t.Error("out-of-range phase start accepted")
	}
}

func TestPageWalkCacheShortensWalks(t *testing.T) {
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.3}
	s, _ := workloads.ByName("bicg")
	k, as := s.Build(p)
	base, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	if base.PWCHits != 0 {
		t.Errorf("PWCHits = %d with PWC disabled", base.PWCHits)
	}
	cfg := arch.Default()
	cfg.PWCEntries = 64
	k2, as2 := s.Build(p)
	pwc, err := Run(cfg, k2, as2)
	if err != nil {
		t.Fatal(err)
	}
	if pwc.PWCHits == 0 {
		t.Error("PWC never hit on a walk-heavy workload")
	}
	if pwc.Cycles >= base.Cycles {
		t.Errorf("PWC did not speed up a walk-bound run (%d vs %d cycles)", pwc.Cycles, base.Cycles)
	}
}

func TestReplacementPoliciesRun(t *testing.T) {
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2}
	s, _ := workloads.ByName("atax")
	hits := map[arch.TLBReplacementPolicy]float64{}
	for _, pol := range []arch.TLBReplacementPolicy{arch.ReplaceLRU, arch.ReplaceFIFO, arch.ReplaceRandom} {
		cfg := arch.Default()
		cfg.TLBReplacement = pol
		k, as := s.Build(p)
		r, err := Run(cfg, k, as)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		hits[pol] = r.L1TLBHitRate
	}
	// LRU should be at least as good as random on a scan-residency kernel.
	if hits[arch.ReplaceLRU] < hits[arch.ReplaceRandom]-0.05 {
		t.Errorf("LRU hit %.3f well below random %.3f", hits[arch.ReplaceLRU], hits[arch.ReplaceRandom])
	}
}

func TestSampling(t *testing.T) {
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2}
	s, _ := workloads.ByName("gemm")
	cfg := arch.Default()
	cfg.SampleInterval = 500
	k, as := s.Build(p)
	r, err := Run(cfg, k, as)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) < 2 {
		t.Fatalf("only %d samples over %d cycles at interval 500", len(r.Samples), r.Cycles)
	}
	prev := engine.Cycle(0)
	for _, smp := range r.Samples {
		if smp.Cycle <= prev {
			t.Fatal("samples not strictly ordered")
		}
		if smp.L1HitRate < 0 || smp.L1HitRate > 1 {
			t.Fatalf("sample hit rate %v out of range", smp.L1HitRate)
		}
		prev = smp.Cycle
	}
	// Windowed walks must sum to at most the total.
	var walks int64
	for _, smp := range r.Samples {
		walks += smp.Walks
	}
	if walks > r.Walks {
		t.Errorf("sampled walks %d exceed total %d", walks, r.Walks)
	}
	// Sampling must not change results.
	cfg.SampleInterval = 0
	k2, as2 := s.Build(p)
	r2, err := Run(cfg, k2, as2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles != r.Cycles {
		t.Errorf("sampling changed execution time: %d vs %d", r.Cycles, r2.Cycles)
	}
}

func TestTLBAwareSteeringEndToEnd(t *testing.T) {
	// Build a kernel whose early TBs poison some SMs' TLBs (heavy
	// thrashers) and verify the aware scheduler distributes later TBs at
	// least as well as round-robin (no SM starves).
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.5}
	s, _ := workloads.ByName("bfs")
	cfg := arch.Default()
	cfg.TBScheduler = arch.ScheduleTLBAware
	k, as := s.Build(p)
	r, err := Run(cfg, k, as)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range r.TBsPerSM {
		if n == 0 {
			t.Error("an SM ran zero TBs under the aware scheduler")
		}
		total += n
	}
	if total != len(k.TBs) {
		t.Errorf("TBs run = %d, want %d", total, len(k.TBs))
	}
}

func TestDispatchPeriodBoundsPlacementDelay(t *testing.T) {
	// A longer dispatch period must not deadlock and only modestly change
	// execution time on a balanced kernel.
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2}
	s, _ := workloads.ByName("gemm")
	base := arch.Default()
	k1, as1 := s.Build(p)
	r1, err := Run(base, k1, as1)
	if err != nil {
		t.Fatal(err)
	}
	slow := arch.Default()
	slow.TBDispatchPeriod = 1024
	k2, as2 := s.Build(p)
	r2, err := Run(slow, k2, as2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles < r1.Cycles {
		t.Logf("longer period ran faster (%d vs %d) — acceptable, just informative", r2.Cycles, r1.Cycles)
	}
	if float64(r2.Cycles) > 3*float64(r1.Cycles) {
		t.Errorf("1024-cycle dispatch period ballooned execution: %d vs %d", r2.Cycles, r1.Cycles)
	}
}

func TestNoCAndDRAMStatsExposed(t *testing.T) {
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.3}
	s, _ := workloads.ByName("pagerank")
	k, as := s.Build(p)
	r, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAMRowHits+r.DRAMRowMisses == 0 {
		t.Error("no DRAM traffic recorded on a memory-heavy workload")
	}
}

func TestTranslationLatencyHistogram(t *testing.T) {
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2}
	s, _ := workloads.ByName("atax")
	k, as := s.Build(p)
	r, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range r.TranslationLatency {
		total += c
	}
	if total != r.PageRequests {
		t.Errorf("histogram holds %d translations, want %d", total, r.PageRequests)
	}
	// Hits are 1-cycle-ish: bucket 0/1 must be populated; walks push some
	// mass above 2^8.
	if r.TranslationLatency[0]+r.TranslationLatency[1] == 0 {
		t.Error("no fast translations recorded despite L1 hits")
	}
	var slow int64
	for _, c := range r.TranslationLatency[8:] {
		slow += c
	}
	if slow == 0 {
		t.Error("no slow translations recorded despite 500-cycle walks")
	}
}
