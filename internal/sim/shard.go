package sim

// Sharded (intra-cell parallel) execution engine.
//
// The serial engine (Run with cell parallelism 1) interleaves every SM's
// events on one queue in (cycle, insertion) order. The sharded engine gives
// each SM its own event queue and lets all of them run ahead independently
// up to a deterministic epoch barrier; everything an SM does against shared
// hardware — the L2 TLB, the page-walk cache, the walker pool, the
// crossbar, the L2 cache and DRAM — is buffered as a per-shard op and
// applied serially at the barrier in a canonical order that depends only on
// (request cycle, SM index, per-shard sequence). Worker goroutines only
// decide *which* shard a core advances, never the order anything is applied
// in, so the results are bit-identical at every worker count.
//
// The epoch length is bounded by the model's lookahead: an SM can only
// observe shared state through a round trip over the interconnect, which
// costs at least 2*InterconnectLatency cycles, so running a shard up to
// 2*InterconnectLatency cycles ahead can never let it see a shared reply
// "from the future". Epochs are additionally cut at TB-dispatch period
// boundaries and at pending global events (dispatch, sampling), which keeps
// the global event stream on exact cycles with every shard paused — and
// makes the simulated outcome independent of the epoch length itself.
//
// The sharded engine is deliberately a *different* serialization of the
// same hardware model than the serial engine: shared-resource requests are
// ordered by (cycle, SM index) instead of by global insertion order, so its
// stats differ slightly from the serial engine's golden values. Each engine
// is deterministic in itself; cell parallelism 1 keeps the serial engine
// byte-for-byte identical to the committed goldens.

import (
	"fmt"
	"time"

	"gputlb/internal/cache"
	"gputlb/internal/engine"
	"gputlb/internal/stats"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// pendPage is one coalesced page of a deferred memory instruction: either
// resolved locally (L1 TLB hit or in-flight merge) or pending the shared
// translation tail at the next barrier.
type pendPage struct {
	vpn     vm.VPN
	ppn     vm.PPN
	done    engine.Cycle
	hit     bool         // resolved by an L1 TLB hit (VIPT: data access overlaps)
	pending bool         // needs translateMiss at the barrier
	fill    bool         // sliced barrier: slice pass resolved it, SM pass must fill the L1
	t1      engine.Cycle // cycle the L1 lookup resolved (pending pages)
}

// pendLine is one data line that missed the SM's L1 cache: its shared tail
// (crossbar, L2 slice, DRAM) runs at the next barrier from cycle start.
type pendLine struct {
	phys  cache.LineAddr
	start engine.Cycle
	done  engine.Cycle // sliced barrier: completion resolved by the owning slice pass
}

// pendingInst is one memory instruction whose completion depends on shared
// resources; the issuing shard parks the warp and the barrier finishes the
// instruction. It moves through up to two stages: stage 0 resolves pending
// translations at a barrier and resumes the data-line loop as a shard event
// at the resolved cycle; stage 1 runs the L1-missing lines' shared tails at
// a barrier. Instances are pooled per shard.
type pendingInst struct {
	ws        *warpState
	t         engine.Cycle // op cycle (issue, or the stage-1 resume cycle)
	stage     int
	retire    bool // the warp's last instruction: retire instead of wake
	in        trace.Inst
	pages     []pendPage
	lines     []pendLine
	localDone engine.Cycle // completion floor from locally-resolved work
	insIdx    uint64       // production index reserved for the stage-0 resume
}

// op kinds for the per-epoch shared-op log.
const (
	opMem      = iota // advance a deferred memory instruction one stage
	opTBFinish        // account a completed thread block
	opEvict           // write an L1 TLB victim back to the L2 TLB
)

// Same-cycle tie-break classes for shard-queue events. A shard queue pops
// same-cycle events by (logical production cycle, class, production index)
// rather than raw insertion order: a barrier inserts events for ops from
// many cycles at once, so insertion order alone would depend on where the
// epoch boundaries fall. The class order mirrors the finest (one-cycle
// epoch) serialization: at a given cycle, global events run first, then the
// shard's own events, then that cycle's barrier ops.
const (
	schedClsGlobal  uint64 = iota // global-queue event (dispatch, sampling)
	schedClsPhase                 // produced by a phase-1 shard event
	schedClsBarrier               // produced applying a buffered op
)

// shardPri packs the epoch-invariant same-cycle key for SchedulePri:
// (logical production cycle, class, production index within that cycle).
// The index orders phase-class events by production position even when one
// of them is inserted later, by a barrier, on behalf of that position (a
// stage-0 resume carries the index its issue reserved).
func shardPri(lt engine.Cycle, cls uint64, idx uint64) uint64 {
	if idx > 0xFFFF {
		idx = 0xFFFF
	}
	return uint64(lt)<<19 | cls<<16 | idx
}

// sharedOp is one buffered shared-resource interaction. Per-shard logs are
// naturally sorted by (t, seq); the barrier merges them across shards.
type sharedOp struct {
	t    engine.Cycle
	seq  int64
	kind int
	pi   *pendingInst // opMem
	ws   *warpState   // opTBFinish
	asid vm.ASID      // opEvict: the victim entry
	vpn  vm.VPN
	ppn  vm.PPN
}

// shardTraceEv is one buffered phase-1 trace event (tracing only; the hot
// path never builds these when the tracer is off).
type shardTraceEv struct {
	complete bool // TB-complete event; otherwise an l1tlb_miss instant
	tid      int
	tb       int
	vpn      int64
	ts, dur  int64
}

// shardTenant accumulates the per-tenant counters a shard touches during
// phase 1; folded into the tenant at the end of the run.
type shardTenant struct {
	insts     int64
	pageReqs  int64
	l1Hits    int64
	stallL1   int64
	stallWalk int64
	lastDone  engine.Cycle
}

// shardCtx is one SM's private execution context: its event queue, clock,
// shared-op log, and every counter phase 1 is allowed to touch.
type shardCtx struct {
	sm    *smState
	queue engine.Queue
	clock engine.Cycle
	seq   int64
	ops   []sharedOp

	// phaseIns counts shard-queue insertions produced at the current clock
	// cycle; it is the production index in shardPri keys and resets when the
	// clock advances. nextIns reserves the next index.
	phaseIns uint64

	piFree []*pendingInst

	// Folded into the simulator's counters after the run (sums and maxes
	// are commutative, so the fold is worker-count independent).
	insts    int64
	lineReqs int64
	pageReqs int64
	transLat *stats.Histogram
	lastDone engine.Cycle
	tenants  []shardTenant

	localEvents int64
	smPassOps   int64 // ops this shard's sliced-barrier SM pass advanced
	traceBuf    []shardTraceEv
}

// nextIns reserves the next production index at the shard's current cycle.
func (sh *shardCtx) nextIns() uint64 {
	i := sh.phaseIns
	sh.phaseIns++
	return i
}

// getPI takes a pooled pendingInst (or grows the pool).
func (sh *shardCtx) getPI() *pendingInst {
	if n := len(sh.piFree); n > 0 {
		pi := sh.piFree[n-1]
		sh.piFree = sh.piFree[:n-1]
		return pi
	}
	return &pendingInst{pages: make([]pendPage, 0, 48), lines: make([]pendLine, 0, 48)}
}

// putPI returns a pendingInst to the pool.
func (sh *shardCtx) putPI(pi *pendingInst) {
	pi.ws = nil
	pi.in = trace.Inst{}
	pi.pages = pi.pages[:0]
	pi.lines = pi.lines[:0]
	pi.stage = 0
	pi.localDone = 0
	pi.insIdx = 0
	sh.piFree = append(sh.piFree, pi)
}

// SetCellParallel selects the intra-cell engine: 1 (or less) keeps the
// serial engine, byte-identical to the golden stats; n >= 2 runs the
// sharded epoch-barrier engine with up to n worker goroutines. The sharded
// engine's results are bit-identical across all n >= 2 (and across
// GOMAXPROCS); they differ from the serial engine only in how same-epoch
// shared-resource requests are ordered. Call before Run.
func (s *Simulator) SetCellParallel(n int) {
	if n < 1 {
		n = 1
	}
	s.cellParallel = n
}

// SetEpochLength overrides the sharded engine's epoch length in cycles
// (0 restores the default). Lengths above 2*InterconnectLatency are capped
// there: that bound is the model's lookahead, and respecting it is what
// makes the simulated outcome invariant under the epoch length. Call
// before Run.
func (s *Simulator) SetEpochLength(c engine.Cycle) {
	s.epochOverride = c
}

// epochLength returns the effective epoch length.
func (s *Simulator) epochLength() engine.Cycle {
	max := engine.Cycle(2 * s.cfg.InterconnectLatency)
	if max < 1 {
		max = 1
	}
	e := s.epochOverride
	if e <= 0 || e > max {
		e = max
	}
	return e
}

// ShardProfile reports the sharded run's phase breakdown: epochs executed,
// events processed inside shards (the parallel section), shared ops applied
// at barriers (the serial section), and the wall-clock seconds spent in
// each. The counts are deterministic; the times are not, and none of this
// is in the stats registry so snapshots stay comparable across runs.
type ShardProfile struct {
	Epochs         int64
	LocalEvents    int64
	BarrierOps     int64
	GlobalEvents   int64
	Phase1Seconds  float64
	BarrierSeconds float64

	// Sliced barrier (SetL2Slices > 1): ops applied inside the concurrent
	// per-slice passes (per slice in SliceOps), ops advanced by the
	// concurrent per-SM pass, and the serial tail's cross-slice ops. The
	// monolithic barrier leaves these zero and counts under BarrierOps.
	SlicedOps        int64
	SMPassOps        int64
	SerialOps        int64
	SliceOps         []int64
	SlicePassSeconds float64
	SMPassSeconds    float64
}

// Profile returns the last sharded run's ShardProfile (zero value for
// serial runs).
func (s *Simulator) Profile() ShardProfile {
	p := s.profile
	for _, sh := range s.shards {
		p.LocalEvents += sh.localEvents
		p.SMPassOps += sh.smPassOps
	}
	if len(s.slices) > 0 {
		p.SliceOps = make([]int64, len(s.slices))
		for i, sc := range s.slices {
			p.SliceOps[i] = sc.ops
			p.SlicedOps += sc.ops
		}
	}
	return p
}

// runSharded executes the sharded engine with up to `workers` worker
// goroutines and returns the run's results.
func (s *Simulator) runSharded(workers int) Result {
	s.sharded = true
	s.shards = make([]*shardCtx, len(s.sms))
	for i, sm := range s.sms {
		sm := sm
		sh := &shardCtx{
			sm:       sm,
			transLat: stats.NewHistogram(len(Result{}.TranslationLatency)),
			tenants:  make([]shardTenant, len(s.tenants)),
		}
		sm.shard = sh
		sm.tickFn = func() { s.shardTick(sm) }
		s.shards[i] = sh
	}
	s.applyCursors = make([]int, len(s.shards))
	if s.l2Slices > 1 {
		s.buildSlices(workers)
	}

	runner := engine.NewEpochRunner(len(s.shards), workers, s.shardStep)
	defer runner.Close()
	if s.slicePool != nil {
		defer s.slicePool.Close()
	}

	s.scheduleArrivals()
	s.dispatch()
	if s.cfg.SampleInterval > 0 {
		s.queue.Schedule(engine.Cycle(s.cfg.SampleInterval), s.sampleFn)
	}
	if s.ctl != nil {
		s.queue.Schedule(s.ctlPeriod, s.ctlFn)
	}

	epoch := s.epochLength()
	period := engine.Cycle(s.cfg.TBDispatchPeriod)
	for {
		// Earliest pending work across every shard and the global queue.
		var earliest engine.Cycle
		pending := false
		for _, sh := range s.shards {
			if sh.queue.Len() > 0 && (!pending || sh.queue.NextCycle() < earliest) {
				earliest = sh.queue.NextCycle()
				pending = true
			}
		}
		if s.queue.Len() > 0 && (!pending || s.queue.NextCycle() < earliest) {
			earliest = s.queue.NextCycle()
			pending = true
		}
		if !pending {
			break
		}
		// The epoch ends at the lookahead bound, but never crosses a TB
		// dispatch boundary (barrier ops may arm a dispatch at the next
		// period multiple, which must still be in this epoch's future) and
		// never passes a pending global event.
		limit := earliest + epoch
		if b := (earliest/period + 1) * period; b < limit {
			limit = b
		}
		if s.queue.Len() > 0 && s.queue.NextCycle() < limit {
			limit = s.queue.NextCycle()
		}
		t0 := time.Now()
		runner.RunEpoch(limit)
		t1 := time.Now()
		if s.sliceActive {
			s.applyEpochSliced(limit)
		} else {
			s.applyEpoch(limit)
		}
		t2 := time.Now()
		s.profile.Epochs++
		s.profile.Phase1Seconds += t1.Sub(t0).Seconds()
		s.profile.BarrierSeconds += t2.Sub(t1).Seconds()
	}
	if s.tbsDone != s.totalTBs {
		panic(fmt.Sprintf("sim: deadlock — %d of %d TBs finished", s.tbsDone, s.totalTBs))
	}
	s.foldShards()
	s.foldSlices()
	return s.result()
}

// shardStep advances one shard through every event strictly before limit.
// Runs on a worker goroutine; must only touch the shard's own state.
func (s *Simulator) shardStep(i int, limit engine.Cycle) {
	sh := s.shards[i]
	for sh.queue.Len() > 0 && sh.queue.NextCycle() < limit {
		ev := sh.queue.Pop()
		if ev.At != sh.clock {
			sh.clock = ev.At
			sh.phaseIns = 0
		}
		sh.localEvents++
		ev.Fn()
	}
}

// applyEpoch is the barrier: it flushes the shards' buffered trace events,
// then applies shared ops and pending global events merged in time order —
// global events first at equal cycles, ops tie-broken by (SM index, shard
// sequence). This order is a pure function of the ops' (cycle, SM index,
// sequence) triples and the global queue, so it is identical at every
// worker count and every epoch length.
func (s *Simulator) applyEpoch(limit engine.Cycle) {
	s.flushShardTraces()
	cur := s.applyCursors
	h := s.applyHeap[:0]
	for k, sh := range s.shards {
		cur[k] = 0
		if len(sh.ops) > 0 {
			h = mergePush(h, mergeEntry{t: sh.ops[0].t, shard: int32(k)})
		}
	}
	for {
		gPending := s.queue.Len() > 0 && s.queue.NextCycle() <= limit
		if len(h) == 0 && !gPending {
			break
		}
		if gPending && (len(h) == 0 || s.queue.NextCycle() <= h[0].t) {
			ev := s.queue.Pop()
			s.clock = ev.At
			s.profile.GlobalEvents++
			ev.Fn()
			continue
		}
		best := int(h[0].shard)
		sh := s.shards[best]
		op := &sh.ops[cur[best]]
		cur[best]++
		if cur[best] < len(sh.ops) {
			h = mergeFix(h, sh.ops[cur[best]].t)
		} else {
			h = mergePop(h)
		}
		s.applyOp(best, op, limit)
	}
	s.applyHeap = h[:0]
	for _, sh := range s.shards {
		sh.ops = sh.ops[:0]
	}
}

// flushShardTraces drains the shards' buffered phase-1 trace events into
// the tracer, in shard order. Shared by both barriers.
func (s *Simulator) flushShardTraces() {
	if !s.tracer.Enabled() {
		return
	}
	for _, sh := range s.shards {
		for i := range sh.traceBuf {
			ev := &sh.traceBuf[i]
			if ev.complete {
				s.tracer.Complete(s.tracePID, ev.tid, fmt.Sprintf("TB %d", ev.tb), "tb",
					ev.ts, ev.dur, nil)
			} else {
				s.tracer.Instant(s.tracePID, ev.tid, "l1tlb_miss", "tlb",
					ev.ts, map[string]int64{"vpn": ev.vpn})
			}
		}
		sh.traceBuf = sh.traceBuf[:0]
	}
}

// mergeEntry is one shard's head op inside the barrier's k-way merge heap,
// ordered by (t, shard index) — exactly the canonical apply order, since ops
// within one shard are already in (t, seq) order.
type mergeEntry struct {
	t     engine.Cycle
	shard int32
}

func mergeLess(a, b mergeEntry) bool {
	return a.t < b.t || (a.t == b.t && a.shard < b.shard)
}

// mergePush appends e and sifts it up.
func mergePush(h []mergeEntry, e mergeEntry) []mergeEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !mergeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// mergeDown sifts the root down.
func mergeDown(h []mergeEntry) {
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		if r := l + 1; r < len(h) && mergeLess(h[r], h[l]) {
			l = r
		}
		if !mergeLess(h[l], h[i]) {
			return
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
}

// mergeFix replaces the root's key with the shard's next op time.
func mergeFix(h []mergeEntry, t engine.Cycle) []mergeEntry {
	h[0].t = t
	mergeDown(h)
	return h
}

// mergePop removes the root (the shard ran out of ops).
func mergePop(h []mergeEntry) []mergeEntry {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	mergeDown(h)
	return h
}

// applyOp applies one buffered shared-resource op with the simulator clock
// rolled back to the op's request cycle, so the shared tails run the exact
// code the serial engine runs inline.
func (s *Simulator) applyOp(shard int, op *sharedOp, limit engine.Cycle) {
	s.profile.BarrierOps++
	if s.onApply != nil {
		s.onApply(op.t, shard, op.seq)
	}
	s.clock = op.t
	switch op.kind {
	case opMem:
		s.applyMem(op.pi)
	case opTBFinish:
		tn := op.ws.tn
		tn.tbsDone++
		s.tbsDone++
		if tn.tbsDone == len(tn.kernel.TBs) {
			if s.l2Partitioned {
				s.l2tlb.OnTBFinish(tn.slot)
			}
			s.depart(tn)
		}
		s.scheduleDispatch()
	case opEvict:
		ppn := op.ppn
		if ppn >= pendingThreshold {
			// The victim was a placeholder. If its translation has since
			// resolved (the filling op precedes this one whenever the fill
			// completed), write back the real PPN; otherwise the fill is
			// still in flight and the write-back is dropped — the entry
			// held no translation to preserve.
			real, ok := s.tenants[op.asid].as.PageTable().Translate(op.vpn)
			if !ok {
				return
			}
			ppn = real
		}
		sl := s.tenants[op.asid].slot
		if !s.l2tlb.ContainsA(op.asid, sl, op.vpn) {
			s.l2tlb.InsertA(op.asid, sl, op.vpn, ppn)
		}
		if s.tracer.Enabled() {
			s.tracer.Instant(s.tracePID, s.shards[shard].sm.id, "l1tlb_evict", "tlb",
				int64(s.clock), map[string]int64{"vpn": int64(op.vpn)})
		}
	}
}

// applyMem advances a deferred memory instruction one stage at the barrier.
// Stage 0 resolves the pending translations (the only shared-TLB work) and
// schedules the warp's resume event — the data-line loop — on its shard at
// the cycle the last translation lands. Stage 1 runs the shared tails of
// the data lines that missed the L1 cache and wakes or retires the warp.
// Every cycle produced here sits at least one interconnect round trip past
// the op's request cycle, so it can never land before the current epoch's
// limit — which is what keeps the outcome independent of the epoch length.
func (s *Simulator) applyMem(pi *pendingInst) {
	ws := pi.ws
	sm, slot, tn := ws.sm, ws.slot, ws.tn
	sh := sm.shard

	if pi.stage == 0 {
		resumeAt := pi.t + 1
		for i := range pi.pages {
			pp := &pi.pages[i]
			if pp.pending {
				pp.ppn, pp.done = s.translateMiss(tn, sm, slot, pp.vpn, pp.t1)
				pp.pending = false
				s.transLatency.Observe(int64(pp.done - pi.t))
			}
			if pp.done > resumeAt {
				resumeAt = pp.done
			}
		}
		// Phase class, pinned to the issue cycle: a stage-0 instruction whose
		// merges happened to resolve locally schedules this same resume from
		// phase 1, and the two must tie-break identically.
		sh.queue.SchedulePri(resumeAt, shardPri(pi.t, schedClsPhase, pi.insIdx), ws.resume)
		return
	}

	instDone := pi.localDone
	for i := range pi.lines {
		done := s.dataMiss(sm, pi.lines[i].phys, pi.lines[i].start)
		if done > instDone {
			instDone = done
		}
	}
	retire := pi.retire
	opT := pi.t
	ws.pi = nil
	sh.putPI(pi)
	if retire {
		if instDone > s.lastDone {
			s.lastDone = instDone
		}
		if instDone > tn.lastDone {
			tn.lastDone = instDone
		}
		sh.queue.SchedulePri(instDone, shardPri(opT, schedClsBarrier, 0), ws.retire)
		return
	}
	sh.queue.SchedulePri(instDone, shardPri(opT, schedClsBarrier, 0), ws.wake)
}

// foldShards folds every shard's private counters into the simulator's.
// Sums and maxes commute, so the result is independent of how shards were
// scheduled onto workers.
func (s *Simulator) foldShards() {
	for _, sh := range s.shards {
		s.instsIssued.Add(sh.insts)
		s.lineRequests.Add(sh.lineReqs)
		s.pageRequests.Add(sh.pageReqs)
		if err := s.transLatency.Merge(sh.transLat); err != nil {
			panic("sim: shard histogram shape mismatch: " + err.Error())
		}
		if sh.lastDone > s.lastDone {
			s.lastDone = sh.lastDone
		}
		for ti := range s.tenants {
			tn, st := s.tenants[ti], &sh.tenants[ti]
			tn.insts += st.insts
			tn.pageReqs += st.pageReqs
			tn.l1Hits += st.l1Hits
			tn.stallL1 += st.stallL1
			tn.stallWalk += st.stallWalk
			if st.lastDone > tn.lastDone {
				tn.lastDone = st.lastDone
			}
		}
	}
}

// shardArmTick schedules an issue tick on the SM's own queue (phase-1
// counterpart of armTick).
func (s *Simulator) shardArmTick(sm *smState, at engine.Cycle) {
	if sm.tickPending {
		return
	}
	if at < sm.nextIssueAt {
		at = sm.nextIssueAt
	}
	if at <= sm.shard.clock {
		at = sm.shard.clock + 1
	}
	sm.tickPending = true
	sm.shard.queue.SchedulePri(at, shardPri(sm.shard.clock, schedClsPhase, sm.shard.nextIns()), sm.tickFn)
}

// shardTick is one SM issue cycle on the sharded engine: identical policy
// to tick, but clocked by the shard.
func (s *Simulator) shardTick(sm *smState) {
	sh := sm.shard
	sm.tickPending = false
	sm.nextIssueAt = sh.clock + 1
	for n := 0; n < s.cfg.IssueWidth && len(sm.ready) > 0; n++ {
		ws := s.pickWarp(sm)
		s.shardIssue(ws)
	}
	if len(sm.ready) > 0 {
		s.shardArmTick(sm, sh.clock+1)
	}
}

// shardIssue executes one instruction of ws at the shard's current cycle.
// Instructions that stay inside the SM complete locally; one that needs
// shared hardware parks the warp behind a buffered op for the barrier.
func (s *Simulator) shardIssue(ws *warpState) {
	sh := ws.sm.shard
	in := ws.insts[ws.pc]
	ws.pc++
	sh.insts++
	sh.tenants[ws.tn.asid].insts++

	var done engine.Cycle
	if in.IsMem() {
		var deferred bool
		done, deferred = s.shardExecuteMem(ws, in)
		if deferred {
			return // the barrier wakes or retires the warp
		}
	} else {
		c := in.Compute
		if c < 1 {
			c = 1
		}
		done = sh.clock + engine.Cycle(c)
	}

	if ws.pc >= len(ws.insts) {
		if done > sh.lastDone {
			sh.lastDone = done
		}
		if done > sh.tenants[ws.tn.asid].lastDone {
			sh.tenants[ws.tn.asid].lastDone = done
		}
		sh.queue.SchedulePri(done, shardPri(sh.clock, schedClsPhase, sh.nextIns()), ws.retire)
		return
	}
	sh.queue.SchedulePri(done, shardPri(sh.clock, schedClsPhase, sh.nextIns()), ws.wake)
}

// shardExecuteMem runs one coalesced memory instruction as far as the SM's
// private hardware allows, without touching any shared structure. When every
// page resolves locally, the data lines are probed against the SM's L1 cache
// in shard event order: all hits completes the instruction locally; any miss
// buffers a stage-1 op carrying the missed lines' shared tails. When any
// page is pending, no line is probed — the instruction becomes a stage-0 op
// and its line loop resumes as a shard event once the barrier resolves the
// translations. Deferral returns (0, true).
func (s *Simulator) shardExecuteMem(ws *warpState, in trace.Inst) (engine.Cycle, bool) {
	sm, slot, tn := ws.sm, ws.slot, ws.tn
	sh := sm.shard
	st := &sh.tenants[tn.asid]

	pages := trace.CoalescePagesInto(sm.pageBuf, in.Addrs, s.pageShift)
	sm.pageBuf = pages
	sh.pageReqs += int64(len(pages))
	st.pageReqs += int64(len(pages))

	pend := sm.pendBuf[:0]
	anyPending := false
	allHit := true
	for _, vpn := range pages {
		pp := s.shardTranslate(tn, sm, slot, vpn)
		if pp.pending {
			anyPending = true
		} else {
			sh.transLat.Observe(int64(pp.done - sh.clock))
		}
		if !pp.hit {
			allHit = false
		}
		pend = append(pend, pp)
	}
	sm.pendBuf = pend

	// Any page that was not a clean L1 TLB hit parks the instruction: its
	// data-line loop replays at the cycle the last translation lands
	// (shardResume). Whether the non-hit resolved locally (an in-flight
	// merge whose fill is already visible) or needs the barrier (a
	// placeholder merge or a fresh miss) depends on where the epoch
	// boundaries fall, so the two cases must drive the *same* replay — the
	// only difference is who schedules the resume event, and the priority
	// key pins both to the issue cycle.
	if !allHit {
		pi := sh.getPI()
		pi.ws = ws
		pi.t = sh.clock
		pi.stage = 0
		pi.retire = ws.pc >= len(ws.insts)
		pi.in = in
		pi.insIdx = sh.nextIns()
		pi.pages = append(pi.pages, pend...)
		ws.pi = pi
		if anyPending {
			sh.ops = append(sh.ops, sharedOp{t: sh.clock, seq: sh.seq, kind: opMem, pi: pi})
			sh.seq++
			return 0, true
		}
		resumeAt := sh.clock + 1
		for i := range pi.pages {
			if pi.pages[i].done > resumeAt {
				resumeAt = pi.pages[i].done
			}
		}
		sh.queue.SchedulePri(resumeAt, shardPri(sh.clock, schedClsPhase, pi.insIdx), ws.resume)
		return 0, true
	}

	lines := trace.CoalesceLinesInto(sm.lineBuf, in.Addrs, s.cfg.L1Cache.LineBytes)
	sm.lineBuf = lines
	sh.lineReqs += int64(len(lines))
	linesPerPage := s.pageShift - s.lineShift
	instDone := sh.clock + 1
	for _, pp := range pend {
		if pp.done > instDone {
			instDone = pp.done
		}
	}
	var pi *pendingInst
	for _, line := range lines {
		vpn := vm.VPN(line >> linesPerPage)
		var pd pendPage
		for i := range pend {
			if pend[i].vpn == vpn {
				pd = pend[i]
				break
			}
		}
		phys := cache.LineAddr(uint64(pd.ppn)<<linesPerPage | uint64(line)&(1<<linesPerPage-1))
		// VIPT: every page hit the L1 TLB, so every line's data access
		// starts at issue.
		start := sh.clock
		if sm.l1cache.Access(phys) {
			done := start + engine.Cycle(s.cfg.L1Cache.HitLatency)
			if done > instDone {
				instDone = done
			}
			continue
		}
		if pi == nil {
			pi = sh.getPI()
		}
		pi.lines = append(pi.lines, pendLine{phys: phys, start: start})
	}
	if pi == nil {
		return instDone, false
	}
	pi.ws = ws
	pi.t = sh.clock
	pi.stage = 1
	pi.retire = ws.pc >= len(ws.insts)
	pi.localDone = instDone
	ws.pi = pi
	sh.ops = append(sh.ops, sharedOp{t: sh.clock, seq: sh.seq, kind: opMem, pi: pi})
	sh.seq++
	return 0, true
}

// shardResume is the deferred data-line loop of a stage-0 instruction,
// running as a shard event at the cycle its last translation resolved. The
// memory stage replays after the fill: every data access starts here, at
// the shard's current cycle. Lines hitting the L1 cache complete locally;
// misses promote the instruction to a stage-1 op.
func (s *Simulator) shardResume(ws *warpState) {
	sm := ws.sm
	sh := sm.shard
	pi := ws.pi

	lines := trace.CoalesceLinesInto(sm.lineBuf, pi.in.Addrs, s.cfg.L1Cache.LineBytes)
	sm.lineBuf = lines
	sh.lineReqs += int64(len(lines))
	linesPerPage := s.pageShift - s.lineShift
	instDone := sh.clock + 1
	for _, line := range lines {
		vpn := vm.VPN(line >> linesPerPage)
		var pd pendPage
		for i := range pi.pages {
			if pi.pages[i].vpn == vpn {
				pd = pi.pages[i]
				break
			}
		}
		phys := cache.LineAddr(uint64(pd.ppn)<<linesPerPage | uint64(line)&(1<<linesPerPage-1))
		if sm.l1cache.Access(phys) {
			done := sh.clock + engine.Cycle(s.cfg.L1Cache.HitLatency)
			if done > instDone {
				instDone = done
			}
			continue
		}
		pi.lines = append(pi.lines, pendLine{phys: phys, start: sh.clock})
	}
	if len(pi.lines) == 0 {
		retire := pi.retire
		ws.pi = nil
		sh.putPI(pi)
		if retire {
			if instDone > sh.lastDone {
				sh.lastDone = instDone
			}
			st := &sh.tenants[ws.tn.asid]
			if instDone > st.lastDone {
				st.lastDone = instDone
			}
			sh.queue.SchedulePri(instDone, shardPri(sh.clock, schedClsPhase, sh.nextIns()), ws.retire)
			return
		}
		sh.queue.SchedulePri(instDone, shardPri(sh.clock, schedClsPhase, sh.nextIns()), ws.wake)
		return
	}
	pi.t = sh.clock
	pi.stage = 1
	pi.localDone = instDone
	sh.ops = append(sh.ops, sharedOp{t: sh.clock, seq: sh.seq, kind: opMem, pi: pi})
	sh.seq++
}

// shardTranslate is the SM-local prefix of a translation: the L1 TLB
// lookup, the scheduler's residency counters, and the in-flight merge
// window. Anything past the L1 — the L2 TLB, walkers, interconnect — is
// left pending for the barrier.
//
// A miss installs a placeholder entry (sentinel PPN) in the L1 TLB at miss
// time; the barrier's fill later rewrites its payload without touching its
// age. This makes every later lookup's hit/miss answer — and therefore the
// whole simulation — independent of which epoch the fill lands in: the
// entry's presence is decided here, in shard event order. A lookup that
// hits a placeholder merges with the in-flight miss at the barrier (the
// filling op precedes it in canonical order), as does a miss whose
// placeholder was evicted within the epoch (the pendingMiss set).
func (s *Simulator) shardTranslate(tn *tenantState, sm *smState, slot int, vpn vm.VPN) pendPage {
	sh := sm.shard
	st := &sh.tenants[tn.asid]
	asid := tn.asid
	ppn, hit, probed := sm.l1tlb.LookupA(asid, slot, vpn)
	cost := probed * s.cfg.L1TLB.LookupLatency
	if s.cfg.TLBCompression {
		cost += s.cfg.CompressionLatency
	}
	sm.schedTotal++
	if hit {
		sm.schedHits++
	}
	if sm.schedTotal >= 4096 {
		sm.schedTotal >>= 1
		sm.schedHits >>= 1
	}
	t1 := sh.clock + engine.Cycle(cost)
	key := tenantKey(asid, vpn)
	// The sliced barrier banks the MSHRs per (SM, slice): the owning slice
	// pass writes only its bank, so phase-1 reads stay race-free.
	inflight, pendingMiss := sm.inflight, sm.pendingMiss
	if s.sliceActive {
		bk := &sm.slMSHR[s.vpnSlice(vpn)]
		inflight, pendingMiss = bk.inflight, bk.pendingMiss
	}
	if hit && ppn < pendingThreshold {
		// The entry holds a real translation — but the fill only becomes
		// visible when its walk returns to the SM, and the barrier may have
		// rewritten the placeholder long before that cycle. The in-flight
		// table (barrier-written, epoch-invariant) carries the return
		// cycle: while it is in the future, this is a merge, not a hit.
		if inf, ok := inflight.get(key); ok && inf.done > sh.clock {
			if s.tracer.Enabled() {
				sh.traceBuf = append(sh.traceBuf, shardTraceEv{
					tid: sm.id, vpn: int64(vpn), ts: int64(sh.clock),
				})
			}
			if t1 > inf.done {
				st.stallWalk += int64(t1 - sh.clock)
				return pendPage{vpn: vpn, ppn: inf.ppn, done: t1}
			}
			st.stallWalk += int64(inf.done - sh.clock)
			return pendPage{vpn: vpn, ppn: inf.ppn, done: inf.done}
		}
		st.l1Hits++
		st.stallL1 += int64(t1 - sh.clock)
		return pendPage{vpn: vpn, ppn: ppn, done: t1, hit: true}
	}
	if s.tracer.Enabled() {
		sh.traceBuf = append(sh.traceBuf, shardTraceEv{
			tid: sm.id, vpn: int64(vpn), ts: int64(sh.clock),
		})
	}
	if hit {
		// Placeholder: this SM's own miss is already on its way to the
		// barrier; merge with it there.
		return pendPage{vpn: vpn, pending: true, t1: t1}
	}
	// Merge with an in-flight miss to the same page from this SM (MSHR).
	// The table is only written at barriers, so phase-1 reads are safe.
	if inf, ok := inflight.get(key); ok && inf.done > sh.clock {
		if t1 > inf.done {
			st.stallWalk += int64(t1 - sh.clock)
			return pendPage{vpn: vpn, ppn: inf.ppn, done: t1}
		}
		st.stallWalk += int64(inf.done - sh.clock)
		return pendPage{vpn: vpn, ppn: inf.ppn, done: inf.done}
	}
	if _, ok := pendingMiss[key]; ok {
		// The placeholder for an earlier same-epoch miss was evicted;
		// still merge at the barrier rather than walking twice.
		return pendPage{vpn: vpn, pending: true, t1: t1}
	}
	sm.l1tlb.InsertA(asid, slot, vpn, pendingBase) // victim write-back buffers an opEvict
	pendingMiss[key] = struct{}{}
	return pendPage{vpn: vpn, pending: true, t1: t1}
}

// shardRetireWarp accounts a finished warp inside its shard; the shared
// part of a completed TB (global TB counters, L2 TLB partition release,
// dispatch) becomes a buffered op for the barrier.
func (s *Simulator) shardRetireWarp(ws *warpState) {
	sm := ws.sm
	sh := sm.shard
	sl := &sm.slots[ws.slot]
	sl.remainingWarps--
	if sm.last == ws {
		sm.last = nil
	}
	if sl.remainingWarps > 0 {
		return
	}
	sl.active = false
	if s.tracer.Enabled() {
		sh.traceBuf = append(sh.traceBuf, shardTraceEv{
			complete: true, tid: sm.id, tb: sl.tbIndex,
			ts: int64(sl.dispatchedAt), dur: int64(sh.clock - sl.dispatchedAt),
		})
	}
	sm.l1tlb.OnTBFinish(ws.slot)
	sh.ops = append(sh.ops, sharedOp{t: sh.clock, seq: sh.seq, kind: opTBFinish, ws: ws})
	sh.seq++
}
