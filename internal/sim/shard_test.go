package sim

// Tests for the sharded epoch-barrier engine: worker-count and epoch-length
// invariance, the canonical barrier order, and the model-level conservation
// properties shared with the serial engine.

import (
	"bytes"
	"runtime"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/engine"
)

// shardedSim builds a simulator over a fresh tinyKernel workload.
func shardedSim(t *testing.T, cfg arch.Config, nTBs, insts int) *Simulator {
	t.Helper()
	k, as := tinyKernel(t, nTBs, insts)
	s, err := New(cfg, k, as)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// snapshotJSON runs the simulator and returns its full registry snapshot as
// canonical JSON bytes.
func snapshotJSON(t *testing.T, s *Simulator) []byte {
	t.Helper()
	r := s.Run()
	var buf bytes.Buffer
	if err := r.Stats.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestShardedCompletesAndConserves(t *testing.T) {
	s := shardedSim(t, arch.Default(), 8, 4)
	s.SetCellParallel(4)
	r := s.Run()
	if r.Cycles <= 0 {
		t.Error("zero execution time")
	}
	// Model-level counts are timing-independent and must match the serial
	// engine's exactly: instructions, coalesced requests, first-touch
	// faults.
	if want := int64(8 * 9); r.InstsIssued != want {
		t.Errorf("InstsIssued = %d, want %d", r.InstsIssued, want)
	}
	if want := int64(8 * 5); r.PageRequests != want {
		t.Errorf("PageRequests = %d, want %d", r.PageRequests, want)
	}
	if r.Faults != 3 {
		t.Errorf("Faults = %d, want 3", r.Faults)
	}
	if r.L1TLBAccesses() != r.PageRequests {
		t.Errorf("L1 TLB accesses %d != page requests %d", r.L1TLBAccesses(), r.PageRequests)
	}
	p := s.Profile()
	if p.Epochs == 0 || p.BarrierOps == 0 || p.LocalEvents == 0 {
		t.Errorf("empty profile: %+v", p)
	}
}

// TestShardedWorkerCountInvariance is the core determinism property: the
// sharded engine's full registry snapshot is byte-identical at every worker
// count, because workers only choose which goroutine advances a shard.
func TestShardedWorkerCountInvariance(t *testing.T) {
	for _, cfg := range []struct {
		name string
		mut  func(*arch.Config)
	}{
		{"default", func(*arch.Config) {}},
		{"tlbAwareSched", func(c *arch.Config) { c.TBScheduler = arch.ScheduleTLBAware }},
		{"transAwareWarps", func(c *arch.Config) { c.WarpScheduler = arch.WarpTransAware }},
		{"sampling", func(c *arch.Config) { c.SampleInterval = 500 }},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			c := arch.Default()
			cfg.mut(&c)
			run := func(workers int) []byte {
				s := shardedSim(t, c, 20, 6)
				s.SetCellParallel(2) // engine selection; worker count set below
				r := s.RunShardedWorkers(workers)
				var buf bytes.Buffer
				if err := r.Stats.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			want := run(1)
			for _, w := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
				if got := run(w); !bytes.Equal(got, want) {
					t.Errorf("%s: snapshot diverged at %d workers", cfg.name, w)
				}
			}
		})
	}
}

// TestShardedEpochLengthInvariance: the barrier applies ops in an order
// that is a pure function of (cycle, SM index, sequence), and epochs never
// cross dispatch boundaries or global events, so the simulated outcome
// cannot depend on the epoch length.
func TestShardedEpochLengthInvariance(t *testing.T) {
	run := func(epoch engine.Cycle) []byte {
		s := shardedSim(t, arch.Default(), 20, 6)
		s.SetCellParallel(3)
		s.SetEpochLength(epoch)
		return snapshotJSON(t, s)
	}
	want := run(0) // default: 2*InterconnectLatency
	for _, e := range []engine.Cycle{1, 5, 17, 40, 1000 /* capped to default */} {
		if got := run(e); !bytes.Equal(got, want) {
			t.Errorf("snapshot diverged at epoch length %d", e)
		}
	}
}

// TestShardedCanonicalApplyOrder: the observed barrier op stream is
// strictly increasing in (cycle, SM index, per-shard sequence) and is
// identical across worker counts.
func TestShardedCanonicalApplyOrder(t *testing.T) {
	type applied struct {
		t     engine.Cycle
		shard int
		seq   int64
	}
	run := func(workers int) []applied {
		s := shardedSim(t, arch.Default(), 16, 5)
		s.SetCellParallel(2)
		var got []applied
		s.SetApplyObserver(func(t engine.Cycle, shard int, seq int64) {
			got = append(got, applied{t, shard, seq})
		})
		s.RunShardedWorkers(workers)
		return got
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("no ops observed")
	}
	for i := 1; i < len(want); i++ {
		a, b := want[i-1], want[i]
		inOrder := a.t < b.t || (a.t == b.t && a.shard < b.shard) ||
			(a.t == b.t && a.shard == b.shard && a.seq < b.seq)
		if !inOrder {
			t.Fatalf("op %d out of canonical order: %+v then %+v", i, a, b)
		}
	}
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d ops, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: op %d = %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

// TestShardedMatchesSerialInvariants: quantities fixed by the workload —
// not by timing — agree between the two engines, and per-component counter
// sums balance within each.
func TestShardedMatchesSerialInvariants(t *testing.T) {
	serial := shardedSim(t, arch.Default(), 20, 6)
	rs := serial.Run()
	sharded := shardedSim(t, arch.Default(), 20, 6)
	sharded.SetCellParallel(4)
	rp := sharded.Run()

	if rs.InstsIssued != rp.InstsIssued {
		t.Errorf("InstsIssued: serial %d, sharded %d", rs.InstsIssued, rp.InstsIssued)
	}
	if rs.PageRequests != rp.PageRequests {
		t.Errorf("PageRequests: serial %d, sharded %d", rs.PageRequests, rp.PageRequests)
	}
	if rs.LineRequests != rp.LineRequests {
		t.Errorf("LineRequests: serial %d, sharded %d", rs.LineRequests, rp.LineRequests)
	}
	if rs.Faults != rp.Faults {
		t.Errorf("Faults: serial %d, sharded %d", rs.Faults, rp.Faults)
	}
	for _, r := range []struct {
		name string
		r    Result
	}{{"serial", rs}, {"sharded", rp}} {
		if got := r.r.L1TLBAccesses(); got != r.r.PageRequests {
			t.Errorf("%s: L1 TLB accesses %d != page requests %d", r.name, got, r.r.PageRequests)
		}
		var hist int64
		for _, b := range r.r.TranslationLatency {
			hist += b
		}
		if hist != r.r.PageRequests {
			t.Errorf("%s: translation histogram count %d != page requests %d", r.name, hist, r.r.PageRequests)
		}
		tbs := 0
		for _, n := range r.r.TBsPerSM {
			tbs += n
		}
		if tbs != 20 {
			t.Errorf("%s: TBs run %d, want 20", r.name, tbs)
		}
	}
}

// TestShardedPhases: a phase-barrier kernel completes under the sharded
// engine with phases still serialized (no TB of phase 1 starts before
// phase 0 drains).
func TestShardedPhases(t *testing.T) {
	k, as := tinyKernel(t, 12, 3)
	k.PhaseStarts = []int{6}
	s, err := New(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCellParallel(4)
	r := s.Run()
	if want := int64(12 * 7); r.InstsIssued != want {
		t.Errorf("InstsIssued = %d, want %d", r.InstsIssued, want)
	}
}
