package sim

import (
	"math/bits"

	"gputlb/internal/engine"
	"gputlb/internal/vm"
)

// inflightTable tracks in-flight translation completions per VPN: the SM's
// translation-merge window (MSHR coverage) and the shared walk-merge window
// in front of the walkers. It replaces a Go map on the per-instruction hot
// path with a slice-backed open-addressed table: lookups are a fibonacci
// hash plus a short linear probe with no per-entry allocation and no map
// iteration churn.
//
// Semantics match the map it replaced exactly. Entries are never explicitly
// deleted; an entry whose done cycle has passed is semantically dead (every
// caller checks done > now before merging), so the table reclaims dead
// entries when it fills instead of growing without bound. Because simulated
// time is monotone in the event loop, dropping an entry with done <= now can
// never change a later lookup's outcome.
type inflightTable struct {
	entries []inflightEntry
	mask    uint64
	shift   uint
	live    int
}

type inflightEntry struct {
	valid bool
	vpn   vm.VPN
	ppn   vm.PPN
	done  engine.Cycle
}

// newInflightTable sizes the table from a capacity hint (the number of
// simultaneously-merging translations the config allows, e.g. the SM's
// translation MSHR count): the next power of two at least 4x the hint, with
// a floor of 64, so the steady state stays well under the resize threshold.
func newInflightTable(hint int) *inflightTable {
	capacity := 64
	for capacity < 4*hint {
		capacity <<= 1
	}
	t := &inflightTable{}
	t.init(capacity)
	return t
}

func (t *inflightTable) init(capacity int) {
	t.entries = make([]inflightEntry, capacity)
	t.mask = uint64(capacity - 1)
	t.shift = uint(64 - bits.TrailingZeros(uint(capacity)))
	t.live = 0
}

// slotOf is the fibonacci-hash home slot for vpn.
func (t *inflightTable) slotOf(vpn vm.VPN) uint64 {
	return (uint64(vpn) * 0x9E3779B97F4A7C15) >> t.shift
}

// get returns the tracked completion for vpn. Callers must still check
// done against the current cycle, exactly as with the map.
func (t *inflightTable) get(vpn vm.VPN) (inflight, bool) {
	for i := t.slotOf(vpn); ; i = (i + 1) & t.mask {
		e := &t.entries[i]
		if !e.valid {
			return inflight{}, false
		}
		if e.vpn == vpn {
			return inflight{ppn: e.ppn, done: e.done}, true
		}
	}
}

// put inserts or overwrites vpn's entry. now is the current cycle, used only
// to decide which entries are reclaimable if the table must make room.
func (t *inflightTable) put(vpn vm.VPN, ppn vm.PPN, done, now engine.Cycle) {
	for i := t.slotOf(vpn); ; i = (i + 1) & t.mask {
		e := &t.entries[i]
		if e.valid && e.vpn != vpn {
			continue
		}
		if !e.valid {
			t.live++
		}
		*e = inflightEntry{valid: true, vpn: vpn, ppn: ppn, done: done}
		break
	}
	// Past 3/4 load, rebuild keeping only entries still in flight; double
	// the capacity only if the live set itself is the problem.
	if 4*t.live > 3*len(t.entries) {
		t.compact(now)
	}
}

func (t *inflightTable) compact(now engine.Cycle) {
	old := t.entries
	alive := 0
	for i := range old {
		if old[i].valid && old[i].done > now {
			alive++
		}
	}
	capacity := len(old)
	for 4*alive > 2*capacity { // rebuild at <=1/2 load so puts stay cheap
		capacity <<= 1
	}
	t.init(capacity)
	for i := range old {
		e := &old[i]
		if !e.valid || e.done <= now {
			continue
		}
		for j := t.slotOf(e.vpn); ; j = (j + 1) & t.mask {
			if !t.entries[j].valid {
				t.entries[j] = *e
				t.live++
				break
			}
		}
	}
}
