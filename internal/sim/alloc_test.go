package sim

// Allocation regression guards for the per-issue scheduler path: the warp
// pick policies run once per SM tick and must not allocate once the
// simulator's scratch buffers are warm.

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/engine"
	"gputlb/internal/vm"
)

// allocFixture is pickFixture plus the scratch buffers New() normally
// provides, since pickTransAware leans on them for its ordering and
// residency probes.
func allocFixture(t *testing.T) (*Simulator, *smState) {
	t.Helper()
	s, sm := pickFixture(t)
	sm.pickBuf = make([]vm.VPN, 0, arch.WarpSize)
	sm.orderBuf = make([]int, 0, arch.WarpSize)
	return s, sm
}

func TestPickPoliciesZeroAlloc(t *testing.T) {
	s, sm := allocFixture(t)
	for i := 0; i < 12; i++ {
		if i%3 == 0 {
			sm.ready = append(sm.ready, memWarp(sm, int64(i), vm.VPN(100+i)))
		} else {
			sm.ready = append(sm.ready, computeWarp(sm, int64(i)))
		}
	}
	sm.l1tlb.Insert(0, 103, 1)
	sm.last = sm.ready[4]

	for _, tt := range []struct {
		name string
		pick func(*smState) int
	}{
		{"GTO", s.pickGTO},
		{"LRR", s.pickLRR},
		{"TransAware", s.pickTransAware},
	} {
		// Warm once so lazily-grown scratch reaches steady state.
		tt.pick(sm)
		allocs := testing.AllocsPerRun(100, func() { tt.pick(sm) })
		if allocs != 0 {
			t.Errorf("pick%s allocated %.1f times per run, want 0", tt.name, allocs)
		}
	}
}

func TestInflightTableZeroAlloc(t *testing.T) {
	tab := newInflightTable(arch.Default().TranslationMSHRs)
	clock := engine.Cycle(0)
	allocs := testing.AllocsPerRun(100, func() {
		clock += 100
		for i := 0; i < 32; i++ {
			vpn := vm.VPN(i * 5)
			tab.put(vpn, vm.PPN(i), clock+10, clock)
			tab.get(vpn)
			tab.get(vpn + 1)
		}
	})
	if allocs != 0 {
		t.Errorf("inflightTable put/get allocated %.1f times per run, want 0", allocs)
	}
}

func TestSchedulePriZeroAllocSteadyState(t *testing.T) {
	var q engine.Queue
	for i := 0; i < 64; i++ {
		q.Schedule(engine.Cycle(i), func() {})
	}
	for q.Len() > 0 {
		q.Pop()
	}
	fn := func() {}
	at := engine.Cycle(1000)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.SchedulePri(at+engine.Cycle(i), shardPri(at, schedClsPhase, uint64(i)), fn)
		}
		for q.Len() > 0 {
			q.Pop()
		}
		at += 100
	})
	if allocs != 0 {
		t.Errorf("Queue SchedulePri/Pop allocated %.1f times per run, want 0", allocs)
	}
}

func TestPendingInstPoolZeroAlloc(t *testing.T) {
	sh := &shardCtx{}
	// Warm the pool to steady state: every later get is a reuse.
	warm := make([]*pendingInst, 8)
	for i := range warm {
		warm[i] = sh.getPI()
	}
	for _, pi := range warm {
		sh.putPI(pi)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			pi := sh.getPI()
			pi.pages = append(pi.pages, pendPage{vpn: vm.VPN(i)})
			pi.lines = append(pi.lines, pendLine{start: engine.Cycle(i)})
			sh.putPI(pi)
		}
	})
	if allocs != 0 {
		t.Errorf("pendingInst pool allocated %.1f times per run, want 0", allocs)
	}
}

func TestEngineScheduleZeroAllocSteadyState(t *testing.T) {
	var q engine.Queue
	// Pre-grow the heap so steady-state schedule/pop cycles reuse capacity.
	for i := 0; i < 64; i++ {
		q.Schedule(engine.Cycle(i), func() {})
	}
	for q.Len() > 0 {
		q.Pop()
	}
	fn := func() {}
	at := engine.Cycle(1000)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Schedule(at+engine.Cycle(i), fn)
		}
		for q.Len() > 0 {
			q.Pop()
		}
		at += 100
	})
	if allocs != 0 {
		t.Errorf("Queue Schedule/Pop allocated %.1f times per run, want 0", allocs)
	}
}
