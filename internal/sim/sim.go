package sim

import (
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/cache"
	"gputlb/internal/control"
	"gputlb/internal/dram"
	"gputlb/internal/engine"
	"gputlb/internal/noc"
	"gputlb/internal/sched"
	"gputlb/internal/stats"
	"gputlb/internal/tlb"
	"gputlb/internal/tlbmech"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// Sample is one windowed statistics snapshot (Config.SampleInterval > 0).
type Sample struct {
	Cycle engine.Cycle
	// L1HitRate is the hit rate over the window ending at Cycle.
	L1HitRate float64
	// Walks counts page-table walks in the window.
	Walks int64
}

// Result aggregates one simulation run.
type Result struct {
	// Cycles is the end-to-end execution time (completion of the last warp).
	Cycles engine.Cycle
	// L1TLBHitRate is the mean of the per-SM L1 TLB hit rates over SMs that
	// saw traffic — the paper's Figure 2/10 metric.
	L1TLBHitRate float64
	// L1TLBPerSM holds each SM's L1 TLB counters.
	L1TLBPerSM []tlb.Stats
	// L2TLB holds the shared L2 TLB counters.
	L2TLB tlb.Stats
	// Walks is the number of page-table walks; Faults the UVM first-touch
	// faults among them; PWCHits the walks shortened by the page-walk
	// cache (0 unless Config.PWCEntries > 0).
	Walks   int64
	Faults  int64
	PWCHits int64
	// L1Cache aggregates all SMs' data-cache counters; L2Cache the shared
	// cache's.
	L1Cache cache.Stats
	L2Cache cache.Stats
	// InstsIssued counts warp instructions; LineRequests coalesced line
	// accesses; PageRequests coalesced translation requests.
	InstsIssued  int64
	LineRequests int64
	PageRequests int64
	// TBsPerSM records how many TBs each SM executed (scheduling balance).
	TBsPerSM []int
	// Samples holds the windowed time series when Config.SampleInterval > 0.
	Samples []Sample
	// TranslationLatency is a histogram of cycles from translation request
	// to completion, in power-of-two buckets: bucket i counts latencies in
	// (2^i, 2^(i+1)]; bucket 0 also covers latency <= 1. Hits land in the
	// low buckets, L2 TLB hits around 2^6, walks around 2^9-2^10, UVM
	// faults above.
	TranslationLatency [16]int64
	// NoCStalls counts interconnect port waits; DRAMRowHits and
	// DRAMRowMisses describe the memory partitions' row-buffer behaviour.
	NoCStalls     int64
	DRAMRowHits   int64
	DRAMRowMisses int64
	// Tenants holds per-tenant results, in ASID order, for multi-tenant runs
	// (NewMulti with two or more tenants). Single-tenant runs leave it nil so
	// their serialized results stay identical to the pre-tenancy format.
	Tenants []TenantResult `json:"tenants,omitempty"`
	// Stats is the full hierarchical stats tree the run's components
	// registered into — every field above is a view over it. Excluded from
	// JSON results; dump it explicitly (e.g. the CLIs' -stats-out flag).
	Stats *stats.Snapshot `json:"-"`
}

// L1TLBHits and L1TLBAccesses sum the per-SM counters.
func (r Result) L1TLBHits() int64 {
	var n int64
	for _, s := range r.L1TLBPerSM {
		n += s.Hits
	}
	return n
}

// L1TLBAccesses sums per-SM accesses.
func (r Result) L1TLBAccesses() int64 {
	var n int64
	for _, s := range r.L1TLBPerSM {
		n += s.Accesses
	}
	return n
}

type inflight struct {
	ppn  vm.PPN
	done engine.Cycle
}

// pageDone is one coalesced page's resolved translation within a memory
// instruction; executeMem fills a reused buffer of these per issue.
type pageDone struct {
	vpn  vm.VPN
	ppn  vm.PPN
	done engine.Cycle
	hit  bool
}

type warpState struct {
	sm   *smState
	slot int
	// tn is the owning tenant; asid caches tn.asid for the scheduler's
	// residency probes (the zero value is correct for tenant 0, which keeps
	// bare test fixtures valid).
	tn    *tenantState
	asid  vm.ASID
	seq   int64 // dispatch order: GTO "oldest" priority
	insts []trace.Inst
	pc    int
	// wake and retire are this warp's event callbacks, built once at
	// dispatch: a warp issues thousands of instructions and scheduling a
	// fresh closure for each was a top allocation site. At most one is
	// pending at a time (a warp is either waiting to wake or retiring), so
	// reuse is safe.
	wake   func()
	retire func()
	// resume re-enters a deferred memory instruction's data-line loop once
	// the barrier has resolved its translations (sharded engine only); pi is
	// the warp's single in-flight deferred instruction.
	resume func()
	pi     *pendingInst
}

type slotState struct {
	active         bool
	tbIndex        int
	remainingWarps int
	dispatchedAt   engine.Cycle
}

type smState struct {
	id          int
	l1tlb       *tlb.TLB
	l1cache     *cache.Cache
	slots       []slotState
	ready       []*warpState // wakeable warps, unordered; GTO picks from here
	last        *warpState   // greedy: last issued warp keeps priority
	tickPending bool
	tickFn      func() // prebuilt issue-tick callback (one pending at a time)
	nextIssueAt engine.Cycle
	rrCursor    int64 // loose round-robin rotation point
	inflight    *inflightTable
	// missHandlers are the SM's translation-miss MSHRs: an L1 TLB miss
	// occupies one until the translation returns, so miss floods back up
	// into the SM instead of being hidden by warp parallelism.
	missHandlers []engine.Cycle
	// Hot-path scratch, owned by the SM so the sharded engine's phase-1
	// workers never share a buffer: one coalesced memory instruction
	// produces at most WarpSize pages/lines, so these are sized once and
	// reused for every instruction the SM issues.
	pageBuf  []vm.VPN
	lineBuf  []vm.Addr
	transBuf []pageDone
	pickBuf  []vm.VPN // trans-aware warp scheduler's residency probes
	orderBuf []int
	// Decaying <hits,total> counters backing the scheduler's hardware table.
	schedHits, schedTotal int64
	tbsRun                int
	// shard is the SM's private execution context on the sharded engine
	// (nil on the serial engine); pendBuf is its per-instruction page
	// scratch, alongside the buffers above. pendingMiss tracks pages this SM
	// deferred to the next barrier (keyed like the inflight table), so a
	// re-miss whose placeholder was evicted within the epoch still merges
	// instead of double-walking.
	shard       *shardCtx
	pendBuf     []pendPage
	pendingMiss map[vm.VPN]struct{}
	// slMSHR banks the translation MSHRs per address slice (sliced barrier
	// only): phase 1 reads the bank owning the VPN, and only that slice's
	// barrier pass ever writes it.
	slMSHR []sliceMSHR
}

// Simulator runs one or more kernels to completion under one configuration.
// Single-kernel runs (New) are the one-tenant special case of the
// multi-tenant core (NewMulti) and behave bit-identically to the
// pre-tenancy simulator.
type Simulator struct {
	cfg arch.Config
	// tenants holds the co-running kernels in ASID order; single-kernel runs
	// have exactly one, spanning every SM.
	tenants []*tenantState
	// l2Partitioned records whether the shared L2 TLB is partitioned per
	// ASID (multi-tenant IndexByTB/IndexByTBShared); a finished tenant then
	// releases its partition's sharing state like a finished TB does.
	l2Partitioned bool

	// Machine slots: the initial tenants define numSlots slots, each owning
	// an SM list and (when l2Partitioned) an L2 TLB set range. slotOwner[i]
	// is the tenant currently executing in slot i (nil after a departure
	// with no queued arrival); slotSMs[i] its SM list, which the online
	// controller may resize. l2Bounds mirrors the L2 TLB's explicit set
	// partition when a controller manages it (nil otherwise: equal split).
	numSlots  int
	slotSMs   [][]int
	slotOwner []*tenantState
	l2Bounds  []int

	// Churn: admitQ holds arrived tenants waiting for a free slot (bounded
	// by queueCap); churn marks that arrivals exist at all.
	churn    bool
	admitQ   []*tenantState
	queueCap int

	// Online partitioning controller (AttachController). ctlFn is the
	// prebuilt periodic-tick callback; the tick is a global-queue event, so
	// the sharded engine's epochs truncate at it and the counters it samples
	// are identical at every worker count and epoch length.
	ctl        *control.Controller
	ctlPeriod  engine.Cycle
	ctlFn      func()
	ctlSamples []control.Sample

	queue engine.Queue
	clock engine.Cycle

	sms        []*smState
	l2tlb      *tlb.TLB
	l2cache    *cache.Cache
	xbar       *noc.Crossbar
	mem        *dram.DRAM
	l2Inflight *inflightTable
	// walkerMeter models the shared walker pool's throughput (NumWalkers
	// concurrent walks of WalkLatency cycles each); l2tlbMeters model the
	// shared L2 TLB's banked lookup ports (the L2 TLB is distributed
	// across memory partitions). Both are order-insensitive window meters:
	// L1 miss floods queue up, which is what makes L1 thrashing expensive
	// end to end.
	walkerMeter noc.Meter
	l2tlbMeters []noc.Meter

	samples         []Sample
	lastSampleHits  int64
	lastSampleAcc   int64
	lastSampleWalks int64

	tbsDone         int
	totalTBs        int
	lastDone        engine.Cycle
	warpSeq         int64
	dispatchPending bool
	dispatchFn      func() // prebuilt periodic-dispatch callback
	sampleFn        func() // prebuilt sampling callback

	pwc *tlb.TLB

	// Sharded-engine state (SetCellParallel >= 2): sharded selects the
	// engine inside shared helpers, shards holds the per-SM contexts,
	// applyCursors is the barrier's reused merge scratch, profile the
	// phase breakdown, and onApply an optional test observer of the
	// canonical barrier order.
	cellParallel  int
	epochOverride engine.Cycle
	sharded       bool
	shards        []*shardCtx
	applyCursors  []int
	applyHeap     []mergeEntry
	profile       ShardProfile
	onApply       func(t engine.Cycle, shard int, seq int64)

	// Sliced-barrier state (SetL2Slices > 1 with SetCellParallel >= 2):
	// l2Slices is the requested count, kSlices the effective power-of-two
	// count after geometry clamping, sliceActive gates the sliced barrier,
	// slices the per-slice contexts, xslice the direction-split crossbar,
	// slicePool the barrier's worker pool. l2opt keeps the L2 TLB options
	// for sub-TLB construction; the remaining fields are reused barrier
	// scratch (fence refs, TB-count projection, segment bounds, scaled
	// partition bounds).
	l2Slices    int
	kSlices     int
	sliceActive bool
	sliceShift  uint
	sliceBits   uint
	slices      []*sliceCtx
	xslice      *noc.Sliced
	slicePool   *engine.Pool
	l2opt       tlb.Options
	finRefs     []finRef
	projTB      []int
	segStart    []int
	segEnd      []int
	subBounds   []int

	// stats is the run's metric tree; every component registers into it at
	// New time and the sim-owned counters below live in its "sim" root.
	stats        *stats.Registry
	walks        *stats.Counter
	faults       *stats.Counter
	pwcHits      *stats.Counter
	instsIssued  *stats.Counter
	lineRequests *stats.Counter
	pageRequests *stats.Counter
	transLatency *stats.Histogram

	// tracer, when non-nil, receives structured events (TB lifetimes, TLB
	// misses/fills/evictions, page-walk occupancy). tracePID distinguishes
	// concurrent runs sharing one tracer; walkEnds tracks in-flight walk
	// completion times for the occupancy counter track.
	tracer   *stats.Tracer
	tracePID int
	walkEnds []engine.Cycle

	lineShift uint
	pageShift uint
}

// New builds a single-kernel simulator: the one-tenant special case of
// NewMulti. The kernel and address space must come from the same workload
// build; cfg must be valid.
func New(cfg arch.Config, kernel *trace.Kernel, as *vm.AddressSpace) (*Simulator, error) {
	return NewMulti(cfg, []Tenant{{Name: kernel.Name, Kernel: kernel, AS: as}}, MultiOptions{})
}

// NewMulti builds a simulator running the given tenants concurrently on one
// GPU. Tenant i gets ASID i; each tenant needs an explicit SM assignment
// when there is more than one (sched.AssignSMs builds the stock policies).
// With a single tenant the options are ignored and the run is bit-identical
// to New.
func NewMulti(cfg arch.Config, tenants []Tenant, mopt MultiOptions) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := validateTenants(cfg, tenants); err != nil {
		return nil, err
	}
	if err := validateChurn(cfg, len(tenants), mopt.Churn); err != nil {
		return nil, err
	}
	mechSpec, err := tlbmech.ParseSpec(cfg.TLBMech)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.TLBCompression && mechSpec.Kind != "base" {
		return nil, fmt.Errorf("sim: TLBCompression is a base-mechanism feature, incompatible with mech %q", mechSpec.Kind)
	}
	allocMode, err := vm.ParseAllocMode(cfg.AllocMode)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Simulator{
		cfg:         cfg,
		l2cache:     cache.New(cfg.L2Cache),
		l2tlbMeters: make([]noc.Meter, cfg.L2TLBPorts),
		l2Inflight:  newInflightTable(cfg.NumSMs * cfg.TranslationMSHRs),
		lineShift:   uintLog2(cfg.L1Cache.LineBytes),
		pageShift:   cfg.PageShift(),
	}
	slots := 0
	for i, t := range tenants {
		sms := t.SMs
		if sms == nil {
			sms = make([]int, cfg.NumSMs)
			for j := range sms {
				sms[j] = j
			}
		}
		tn := &tenantState{
			asid:      vm.ASID(i),
			name:      t.Name,
			kernel:    t.Kernel,
			as:        t.AS,
			sms:       sms,
			slot:      i,
			active:    true,
			policy:    sched.NewPolicy(cfg.TBScheduler),
			statusBuf: make([]sched.SMStatus, len(sms)),
		}
		s.tenants = append(s.tenants, tn)
		s.totalTBs += len(t.Kernel.TBs)
		if n := t.Kernel.ConcurrentTBsPerSM(cfg); n > slots {
			slots = n
		}
	}
	s.numSlots = len(tenants)
	s.slotSMs = make([][]int, s.numSlots)
	s.slotOwner = make([]*tenantState, s.numSlots)
	for i, tn := range s.tenants {
		s.slotSMs[i] = tn.sms
		s.slotOwner[i] = tn
	}
	if mopt.Churn != nil {
		s.churn = true
		s.queueCap = mopt.Churn.QueueCap
		for _, a := range mopt.Churn.Arrivals {
			tn := &tenantState{
				asid:      vm.ASID(len(s.tenants)),
				name:      a.Tenant.Name,
				kernel:    a.Tenant.Kernel,
				as:        a.Tenant.AS,
				slot:      -1,
				isArrival: true,
				arriveAt:  a.At,
				policy:    sched.NewPolicy(cfg.TBScheduler),
			}
			s.tenants = append(s.tenants, tn)
			s.totalTBs += len(a.Tenant.Kernel.TBs)
			if n := a.Tenant.Kernel.ConcurrentTBsPerSM(cfg); n > slots {
				slots = n
			}
		}
	}
	if allocMode != vm.AllocFirstTouch {
		// Every tenant space (including churn arrivals) demand-pages under
		// the selected policy; spaces must be pristine at this point.
		for _, tn := range s.tenants {
			if err := tn.as.SetAllocMode(allocMode); err != nil {
				return nil, fmt.Errorf("sim: tenant %q: %w", tn.name, err)
			}
		}
	}
	s.dispatchFn = func() {
		s.dispatchPending = false
		s.dispatch()
	}
	s.sampleFn = s.sample
	s.xbar = noc.New(cfg.NumSMs, cfg.MemPartitions, cfg.InterconnectLatency, cfg.NoCServiceCycles)
	s.mem = dram.New(dram.Config{
		Partitions:    cfg.MemPartitions,
		BanksPerPart:  cfg.DRAMBanksPerPart,
		RowBytes:      cfg.DRAMRowBytes,
		RowHitCycles:  cfg.DRAMRowHitLatency,
		RowMissCycles: cfg.DRAMLatency,
		LineBytes:     cfg.L1Cache.LineBytes,
	})
	// The shared L2 TLB is fully shared by default; multi-tenant runs may
	// instead partition its sets per ASID (the paper's TB-id partitioning
	// with the tenant in the TB's role), optionally with the dynamic
	// adjacent-set sharing rule.
	l2opt := tlb.Options{
		Policy:      arch.IndexByAddress,
		Compression: cfg.TLBCompression,
		Replacement: cfg.TLBReplacement,
		Mech:        mechSpec,
	}
	if len(tenants) > 1 && mopt.L2TLBPolicy != arch.IndexByAddress {
		l2opt.Policy = mopt.L2TLBPolicy
		l2opt.Sharing = cfg.SharingMode
		l2opt.ShareCounterThreshold = cfg.ShareCounterThreshold
		s.l2Partitioned = true
	}
	s.l2tlb = tlb.New(cfg.L2TLB, l2opt)
	s.l2opt = l2opt // sub-TLB construction for the sliced barrier
	if s.l2Partitioned {
		s.l2tlb.ConfigureSlots(s.numSlots)
	}
	if cfg.PWCEntries > 0 {
		// Fully-associative page-walk cache of last-level PT pointers.
		s.pwc = tlb.New(arch.TLBConfig{Entries: cfg.PWCEntries, Assoc: cfg.PWCEntries, LookupLatency: 1},
			tlb.Options{Policy: arch.IndexByAddress})
	}
	// The PWC above deliberately stays on the base mechanism: it caches
	// per-tenant page-table pointers (reach-1, tenant-private by
	// construction), where sub-entry sharing and run coalescing have no
	// analogue.
	l1opt := tlb.Options{
		Policy:                cfg.TLBIndexPolicy,
		Sharing:               cfg.SharingMode,
		ShareCounterThreshold: cfg.ShareCounterThreshold,
		Compression:           cfg.TLBCompression,
		Replacement:           cfg.TLBReplacement,
		Mech:                  mechSpec,
	}
	for i := 0; i < cfg.NumSMs; i++ {
		smID := i
		opt := l1opt
		// L1 victims refresh the shared L2 TLB so translations held by an SM
		// do not age out of the L2 while they are hot in an L1. The victim's
		// ASID rides along so the write-back lands in its tenant's partition.
		opt.OnEvict = func(asid vm.ASID, vpn vm.VPN, ppn vm.PPN) {
			if s.sharded {
				// Phase-1 eviction (placeholder inserts are the only L1
				// insertions the sharded engine performs, and fills are
				// payload-only updates): buffer the write-back as a shared
				// op for the barrier instead of touching the L2 TLB here.
				sh := s.sms[smID].shard
				sh.ops = append(sh.ops, sharedOp{
					t: sh.clock, seq: sh.seq, kind: opEvict,
					asid: asid, vpn: vpn, ppn: ppn,
				})
				sh.seq++
				return
			}
			sl := s.tenants[asid].slot
			if !s.l2tlb.ContainsA(asid, sl, vpn) {
				s.l2tlb.InsertA(asid, sl, vpn, ppn)
			}
			if s.tracer.Enabled() {
				s.tracer.Instant(s.tracePID, smID, "l1tlb_evict", "tlb",
					int64(s.clock), map[string]int64{"vpn": int64(vpn)})
			}
		}
		sm := &smState{
			id:           i,
			l1tlb:        tlb.New(cfg.L1TLB, opt),
			l1cache:      cache.New(cfg.L1Cache),
			slots:        make([]slotState, slots),
			inflight:     newInflightTable(cfg.TranslationMSHRs),
			missHandlers: make([]engine.Cycle, cfg.TranslationMSHRs),
			pageBuf:      make([]vm.VPN, 0, arch.WarpSize),
			lineBuf:      make([]vm.Addr, 0, arch.WarpSize),
			transBuf:     make([]pageDone, arch.WarpSize),
			pickBuf:      make([]vm.VPN, 0, arch.WarpSize),
			pendBuf:      make([]pendPage, 0, arch.WarpSize),
			pendingMiss:  make(map[vm.VPN]struct{}, 16),
		}
		sm.tickFn = func() { s.tick(sm) }
		sm.l1tlb.ConfigureSlots(slots)
		s.sms = append(s.sms, sm)
	}
	s.buildRegistry()
	return s, nil
}

// buildRegistry assembles the run's stats tree: sim-owned counters at the
// root and one child node per hardware component. Every value is read
// lazily, so snapshots taken after Run reflect the finished run.
func (s *Simulator) buildRegistry() {
	root := stats.NewRegistry("sim")
	s.stats = root
	s.walks = root.Counter("walks")
	s.faults = root.Counter("uvm_faults")
	s.pwcHits = root.Counter("pwc_hits")
	s.instsIssued = root.Counter("insts_issued")
	s.lineRequests = root.Counter("line_requests")
	s.pageRequests = root.Counter("page_requests")
	s.transLatency = root.Histogram("translation_latency", len(Result{}.TranslationLatency))
	root.CounterFunc("tbs_done", func() int64 { return int64(s.tbsDone) })
	root.CounterFunc("cycles", func() int64 { return int64(s.lastDone) })

	for _, sm := range s.sms {
		smReg := root.Child(fmt.Sprintf("sm%02d", sm.id))
		sm.l1tlb.RegisterStats(smReg.Child("l1tlb"))
		sm.l1cache.RegisterStats(smReg.Child("l1cache"))
		tbs := sm
		smReg.CounterFunc("tbs_run", func() int64 { return int64(tbs.tbsRun) })
	}
	s.l2tlb.RegisterStats(root.Child("l2tlb"))
	s.l2cache.RegisterStats(root.Child("l2cache"))
	if s.pwc != nil {
		s.pwc.RegisterStats(root.Child("pwc"))
	}
	s.xbar.RegisterStats(root.Child("noc"))
	s.mem.RegisterStats(root.Child("dram"))
	if len(s.tenants) == 1 {
		// Single-tenant layout: identical node names to the pre-tenancy
		// registry, so golden stats snapshots stay byte-for-byte stable.
		s.tenants[0].as.RegisterStats(root.Child("vm"))
		s.tenants[0].policy.Stats().RegisterStats(root.Child("sched"))
		return
	}
	for _, tn := range s.tenants {
		tn := tn
		tr := root.Child(fmt.Sprintf("tenant%02d", tn.asid))
		tr.CounterFunc("cycles", func() int64 { return int64(tn.lastDone) })
		tr.CounterFunc("tbs_done", func() int64 { return int64(tn.tbsDone) })
		tr.CounterFunc("insts_issued", func() int64 { return tn.insts })
		tr.CounterFunc("page_requests", func() int64 { return tn.pageReqs })
		tr.CounterFunc("l1_tlb_hits", func() int64 { return tn.l1Hits })
		tr.CounterFunc("l2_tlb_hits", func() int64 { return tn.l2Hits })
		tr.CounterFunc("walks", func() int64 { return tn.walks })
		tr.CounterFunc("uvm_faults", func() int64 { return tn.faults })
		tr.CounterFunc("stall_l1", func() int64 { return tn.stallL1 })
		tr.CounterFunc("stall_l2", func() int64 { return tn.stallL2 })
		tr.CounterFunc("stall_walk", func() int64 { return tn.stallWalk })
		tr.CounterFunc("stall_fault", func() int64 { return tn.stallFault })
		tn.as.RegisterStats(tr.Child("vm"))
		tn.policy.Stats().RegisterStats(tr.Child("sched"))
	}
}

// Registry returns the run's stats tree for querying or late registration.
func (s *Simulator) Registry() *stats.Registry { return s.stats }

// SetTracer attaches an event tracer (nil disables tracing). pid tags this
// run's events, letting a parallel sweep share one tracer across cells.
// Call before Run.
func (s *Simulator) SetTracer(t *stats.Tracer, pid int) {
	s.tracer = t
	s.tracePID = pid
}

func uintLog2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Run simulates every tenant's kernel to completion and returns the results.
// With SetCellParallel(n >= 2) the sharded epoch-barrier engine runs the
// SMs on up to n workers; otherwise the serial engine runs them on one
// queue exactly as before.
func (s *Simulator) Run() Result {
	if s.cellParallel >= 2 {
		return s.runSharded(s.cellParallel)
	}
	s.scheduleArrivals()
	s.dispatch()
	if s.cfg.SampleInterval > 0 {
		s.queue.Schedule(engine.Cycle(s.cfg.SampleInterval), s.sampleFn)
	}
	if s.ctl != nil {
		s.queue.Schedule(s.ctlPeriod, s.ctlFn)
	}
	for s.queue.Len() > 0 {
		ev := s.queue.Pop()
		s.clock = ev.At
		ev.Fn()
	}
	if s.tbsDone != s.totalTBs {
		panic(fmt.Sprintf("sim: deadlock — %d of %d TBs finished", s.tbsDone, s.totalTBs))
	}
	return s.result()
}

// sample records one windowed statistics snapshot and re-arms itself while
// the simulation has pending work.
func (s *Simulator) sample() {
	var hits, acc int64
	for _, sm := range s.sms {
		st := sm.l1tlb.Stats()
		hits += st.Hits
		acc += st.Accesses
	}
	dAcc := acc - s.lastSampleAcc
	var rate float64
	if dAcc > 0 {
		rate = float64(hits-s.lastSampleHits) / float64(dAcc)
	}
	s.samples = append(s.samples, Sample{
		Cycle:     s.clock,
		L1HitRate: rate,
		Walks:     s.walks.Value() - s.lastSampleWalks,
	})
	s.lastSampleHits, s.lastSampleAcc, s.lastSampleWalks = hits, acc, s.walks.Value()
	pending := s.queue.Len() > 0
	for _, sh := range s.shards {
		if pending {
			break
		}
		pending = sh.queue.Len() > 0
	}
	if pending { // only while other work remains
		s.queue.Schedule(s.clock+engine.Cycle(s.cfg.SampleInterval), s.sampleFn)
	}
}

func (s *Simulator) result() Result {
	r := Result{
		Cycles:        s.lastDone,
		Walks:         s.walks.Value(),
		Faults:        s.faults.Value(),
		PWCHits:       s.pwcHits.Value(),
		InstsIssued:   s.instsIssued.Value(),
		LineRequests:  s.lineRequests.Value(),
		PageRequests:  s.pageRequests.Value(),
		L2TLB:         s.l2tlb.Stats(),
		L2Cache:       s.l2cache.Stats(),
		Samples:       s.samples,
		NoCStalls:     s.xbar.Stalls(),
		DRAMRowHits:   s.mem.RowHits(),
		DRAMRowMisses: s.mem.RowMisses(),
	}
	copy(r.TranslationLatency[:], s.transLatency.Buckets())
	var rateSum float64
	active := 0
	for _, sm := range s.sms {
		st := sm.l1tlb.Stats()
		r.L1TLBPerSM = append(r.L1TLBPerSM, st)
		if st.Accesses > 0 {
			rateSum += st.HitRate()
			active++
		}
		cs := sm.l1cache.Stats()
		r.L1Cache.Accesses += cs.Accesses
		r.L1Cache.Hits += cs.Hits
		r.L1Cache.Misses += cs.Misses
		r.L1Cache.Evictions += cs.Evictions
		r.TBsPerSM = append(r.TBsPerSM, sm.tbsRun)
	}
	if active > 0 {
		r.L1TLBHitRate = rateSum / float64(active)
	}
	if len(s.tenants) > 1 {
		for _, tn := range s.tenants {
			r.Tenants = append(r.Tenants, tn.result())
		}
	}
	r.Stats = s.stats.Snapshot()
	return r
}

// dispatch places pending TBs onto SMs, rotating over the tenants so no
// tenant starves, until every tenant is blocked: grid exhausted, no free
// slot on its SMs, or a phase barrier. With one tenant this reduces exactly
// to the pre-tenancy loop (place one TB per iteration until blocked).
func (s *Simulator) dispatch() {
	for {
		placed := false
		for _, tn := range s.tenants {
			if !tn.active {
				continue
			}
			if s.placeNext(tn) {
				placed = true
			}
		}
		if !placed {
			return
		}
	}
}

// placeNext tries to place tenant tn's next pending TB onto one of its SMs,
// reporting whether a TB was placed.
func (s *Simulator) placeNext(tn *tenantState) bool {
	if tn.nextTB >= len(tn.kernel.TBs) {
		return false
	}
	if b := tn.phaseBarrier(); tn.nextTB >= b && tn.tbsDone < b {
		return false // wait for the earlier phase to drain
	}
	statuses := tn.statusBuf
	for i, smID := range tn.sms {
		sm := s.sms[smID]
		free := 0
		for _, sl := range sm.slots {
			if !sl.active {
				free++
			}
		}
		statuses[i] = sched.SMStatus{FreeSlots: free, TLBHits: sm.schedHits, TLBTotal: sm.schedTotal}
	}
	smIdx, cur := tn.policy.Pick(statuses, tn.cursor)
	if smIdx < 0 {
		return false
	}
	tn.cursor = cur
	s.place(tn, s.sms[tn.sms[smIdx]], tn.nextTB)
	tn.nextTB++
	return true
}

// place assigns tenant tn's TB tbIndex to a free hardware slot of sm and
// wakes its warps.
func (s *Simulator) place(tn *tenantState, sm *smState, tbIndex int) {
	slot := -1
	for i := range sm.slots {
		if !sm.slots[i].active {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic("sim: place on SM without free slot")
	}
	tb := &tn.kernel.TBs[tbIndex]
	sm.slots[slot] = slotState{active: true, tbIndex: tbIndex, remainingWarps: len(tb.Warps), dispatchedAt: s.clock}
	sm.tbsRun++
	for w := range tb.Warps {
		ws := &warpState{sm: sm, slot: slot, tn: tn, asid: tn.asid, seq: s.warpSeq, insts: tb.Warps[w].Insts}
		if s.sharded {
			ws.wake = func() {
				ws.sm.ready = append(ws.sm.ready, ws)
				s.shardArmTick(ws.sm, ws.sm.shard.clock)
			}
			ws.retire = func() { s.shardRetireWarp(ws) }
			ws.resume = func() { s.shardResume(ws) }
		} else {
			ws.wake = func() {
				ws.sm.ready = append(ws.sm.ready, ws)
				s.armTick(ws.sm, s.clock)
			}
			ws.retire = func() { s.retireWarp(ws) }
		}
		s.warpSeq++
		if len(ws.insts) == 0 {
			s.retireWarp(ws)
			continue
		}
		sm.ready = append(sm.ready, ws)
	}
	s.armTick(sm, s.clock+1)
}

// armTick schedules an issue tick for sm at cycle at (if none pending).
// Called with the global clock current: serial-engine events, or the
// sharded engine's barrier (dispatch placing new TBs), where the tick
// lands on the SM's own queue.
func (s *Simulator) armTick(sm *smState, at engine.Cycle) {
	if sm.tickPending {
		return
	}
	if at < sm.nextIssueAt {
		at = sm.nextIssueAt
	}
	if at <= s.clock {
		at = s.clock + 1
	}
	sm.tickPending = true
	if s.sharded {
		sm.shard.queue.SchedulePri(at, shardPri(s.clock, schedClsGlobal, 0), sm.tickFn)
		return
	}
	s.queue.Schedule(at, sm.tickFn)
}

// tick is one SM issue cycle: up to IssueWidth warps issue, greedy-then-
// oldest order.
func (s *Simulator) tick(sm *smState) {
	sm.tickPending = false
	sm.nextIssueAt = s.clock + 1
	for n := 0; n < s.cfg.IssueWidth && len(sm.ready) > 0; n++ {
		ws := s.pickWarp(sm)
		s.issue(ws)
	}
	if len(sm.ready) > 0 {
		s.armTick(sm, s.clock+1)
	}
}

// pickWarp removes and returns the next warp to issue under the configured
// warp scheduling policy.
func (s *Simulator) pickWarp(sm *smState) *warpState {
	var best int
	switch s.cfg.WarpScheduler {
	case arch.WarpLRR:
		best = s.pickLRR(sm)
	case arch.WarpTransAware:
		best = s.pickTransAware(sm)
	default:
		best = s.pickGTO(sm)
	}
	ws := sm.ready[best]
	sm.ready[best] = sm.ready[len(sm.ready)-1]
	sm.ready = sm.ready[:len(sm.ready)-1]
	sm.last = ws
	if ws.seq > sm.rrCursor {
		sm.rrCursor = ws.seq
	}
	return ws
}

// pickGTO returns the index of the greedy-then-oldest choice: the
// last-issued warp if ready, else the lowest-seq (oldest) ready warp.
func (s *Simulator) pickGTO(sm *smState) int {
	best := -1
	for i, ws := range sm.ready {
		if ws == sm.last {
			return i
		}
		if best < 0 || ws.seq < sm.ready[best].seq {
			best = i
		}
	}
	return best
}

// pickLRR returns the index of the loose round-robin choice: the ready warp
// with the smallest seq above the rotation cursor, wrapping to the oldest.
func (s *Simulator) pickLRR(sm *smState) int {
	above, oldest := -1, -1
	for i, ws := range sm.ready {
		if ws.seq > sm.rrCursor && (above < 0 || ws.seq < sm.ready[above].seq) {
			above = i
		}
		if oldest < 0 || ws.seq < sm.ready[oldest].seq {
			oldest = i
		}
	}
	if above >= 0 {
		return above
	}
	return oldest
}

// pickTransAware returns the index of the translation reuse-aware choice
// (the paper's future-work warp scheduler): in greedy-then-oldest order,
// prefer a warp whose next instruction needs no new translation — compute,
// or a memory access whose coalesced pages are all L1 TLB resident. Falls
// back to plain GTO when no ready warp qualifies. Probing is bounded to
// keep the scheduler implementable.
func (s *Simulator) pickTransAware(sm *smState) int {
	const maxProbe = 8
	gto := s.pickGTO(sm)
	order := sm.orderBuf[:0]
	if sm.last != nil {
		for i, ws := range sm.ready {
			if ws == sm.last {
				order = append(order, i)
				break
			}
		}
	}
	for i := range sm.ready {
		if len(order) > 0 && i == order[0] && sm.ready[i] == sm.last {
			continue
		}
		order = append(order, i)
	}
	sm.orderBuf = order // keep any growth so later picks stay allocation-free
	probed := 0
	bestIdx, bestSeq := -1, int64(-1)
	for _, i := range order {
		if probed >= maxProbe {
			break
		}
		ws := sm.ready[i]
		in := ws.insts[ws.pc]
		resident := true
		if in.IsMem() {
			probed++
			sm.pickBuf = trace.CoalescePagesInto(sm.pickBuf, in.Addrs, s.pageShift)
			for _, vpn := range sm.pickBuf {
				if !sm.l1tlb.ContainsA(ws.asid, ws.slot, vpn) {
					resident = false
					break
				}
			}
		}
		if resident {
			if ws == sm.last {
				return i // greedy hit: issue immediately
			}
			if bestIdx < 0 || ws.seq < bestSeq {
				bestIdx, bestSeq = i, ws.seq
			}
		}
	}
	if bestIdx >= 0 {
		return bestIdx
	}
	return gto
}

// issue executes one instruction of ws at the current cycle.
func (s *Simulator) issue(ws *warpState) {
	in := ws.insts[ws.pc]
	ws.pc++
	s.instsIssued.Inc()
	ws.tn.insts++

	var done engine.Cycle
	if in.IsMem() {
		done = s.executeMem(ws, in)
	} else {
		c := in.Compute
		if c < 1 {
			c = 1
		}
		done = s.clock + engine.Cycle(c)
	}

	if ws.pc >= len(ws.insts) {
		if done > s.lastDone {
			s.lastDone = done
		}
		if done > ws.tn.lastDone {
			ws.tn.lastDone = done
		}
		s.queue.Schedule(done, ws.retire)
		return
	}
	s.queue.Schedule(done, ws.wake)
}

// retireWarp accounts a finished warp; the last warp of a TB frees the slot,
// resets the TLB sharing flags for that TB id, and triggers dispatch. A
// tenant's last TB additionally releases its L2 TLB partition's sharing
// state (multi-tenant partitioned runs only).
func (s *Simulator) retireWarp(ws *warpState) {
	sm := ws.sm
	sl := &sm.slots[ws.slot]
	sl.remainingWarps--
	if sm.last == ws {
		sm.last = nil
	}
	if sl.remainingWarps > 0 {
		return
	}
	sl.active = false
	if s.tracer.Enabled() {
		s.tracer.Complete(s.tracePID, sm.id, fmt.Sprintf("TB %d", sl.tbIndex), "tb",
			int64(sl.dispatchedAt), int64(s.clock-sl.dispatchedAt), nil)
	}
	sm.l1tlb.OnTBFinish(ws.slot)
	tn := ws.tn
	tn.tbsDone++
	s.tbsDone++
	if tn.tbsDone == len(tn.kernel.TBs) {
		if s.l2Partitioned {
			s.l2tlb.OnTBFinish(tn.slot)
		}
		s.depart(tn)
	}
	s.scheduleDispatch()
}

// scheduleDispatch arms the TB scheduler's next periodic run. Freed slots
// accumulate until it fires, so the scheduler sees several candidate SMs at
// once — the situation where the TLB-aware policy differs from round-robin.
func (s *Simulator) scheduleDispatch() {
	if s.dispatchPending {
		return
	}
	pending := false
	for _, tn := range s.tenants {
		if tn.active && tn.nextTB < len(tn.kernel.TBs) {
			pending = true
			break
		}
	}
	if !pending {
		return
	}
	s.dispatchPending = true
	period := engine.Cycle(s.cfg.TBDispatchPeriod)
	at := (s.clock/period + 1) * period
	s.queue.Schedule(at, s.dispatchFn)
}

// executeMem runs one coalesced memory instruction and returns its
// completion cycle: translations for every distinct page, then the data
// accesses of every distinct line, each starting when its page's
// translation completes. The warp blocks until the slowest request.
func (s *Simulator) executeMem(ws *warpState, in trace.Inst) engine.Cycle {
	sm, slot, tn := ws.sm, ws.slot, ws.tn
	pages := trace.CoalescePagesInto(sm.pageBuf, in.Addrs, s.pageShift)
	sm.pageBuf = pages
	s.pageRequests.Add(int64(len(pages)))
	tn.pageReqs += int64(len(pages))

	trans := sm.transBuf[:len(pages)]
	instDone := s.clock + 1
	for i, vpn := range pages {
		ppn, done, hit := s.translate(tn, sm, slot, vpn)
		trans[i] = pageDone{vpn, ppn, done, hit}
		s.recordTranslationLatency(done - s.clock)
		if done > instDone {
			instDone = done
		}
	}

	lines := trace.CoalesceLinesInto(sm.lineBuf, in.Addrs, s.cfg.L1Cache.LineBytes)
	sm.lineBuf = lines
	s.lineRequests.Add(int64(len(lines)))
	linesPerPage := s.pageShift - s.lineShift
	for _, line := range lines {
		vpn := vm.VPN(line >> linesPerPage)
		var pd pageDone
		for _, t := range trans {
			if t.vpn == vpn {
				pd = t
				break
			}
		}
		phys := cache.LineAddr(uint64(pd.ppn)<<linesPerPage | uint64(line)&(1<<linesPerPage-1))
		// VIPT: on an L1 TLB hit the cache is indexed in parallel with the
		// lookup, so the data access starts immediately; a miss must wait
		// for the physical tag.
		start := s.clock
		if !pd.hit {
			start = pd.done
		}
		done := s.dataAccess(sm, phys, start)
		if pd.done > done {
			done = pd.done
		}
		if done > instDone {
			instDone = done
		}
	}
	return instDone
}

// recordTranslationLatency buckets one translation's request-to-completion
// latency into the power-of-two histogram.
func (s *Simulator) recordTranslationLatency(lat engine.Cycle) {
	s.transLatency.Observe(int64(lat))
}

// dataAccess models the data path for one line from cycle start: L1 cache,
// then on a miss the shared tail (crossbar, L2 slice, DRAM).
func (s *Simulator) dataAccess(sm *smState, phys cache.LineAddr, start engine.Cycle) engine.Cycle {
	if sm.l1cache.Access(phys) {
		return start + engine.Cycle(s.cfg.L1Cache.HitLatency)
	}
	return s.dataMiss(sm, phys, start)
}

// dataMiss is the shared-resource tail of a data access that missed the L1
// cache: the crossbar to the line's memory partition, the L2 cache slice,
// on an L2 miss the partition's DRAM banks, then the reply traversal. The
// sharded engine applies it at epoch barriers; the serial engine calls it
// inline from dataAccess.
func (s *Simulator) dataMiss(sm *smState, phys cache.LineAddr, start engine.Cycle) engine.Cycle {
	t := start + engine.Cycle(s.cfg.L1Cache.HitLatency)
	part := s.mem.Partition(phys)
	arrive := s.xbar.Traverse(sm.id, part, t)
	t = arrive + engine.Cycle(s.cfg.L2Cache.HitLatency)
	if !s.l2cache.Access(phys) {
		t = s.mem.Access(phys, t)
	}
	return s.xbar.Return(part, sm.id, t)
}

// translate resolves tenant tn's VPN through L1 TLB -> L2 TLB -> page-table
// walkers, returning the PPN, the cycle the translation is available to the
// SM, and whether it hit in the L1 TLB (a VIPT hit overlaps the cache
// access). Every structure along the path is ASID-aware: TLB and PWC
// entries are tagged, and the MSHR/in-flight tables key on the
// ASID-qualified VPN so same-VPN misses from different tenants never merge.
// The per-tenant stall counters classify the request by where it resolved.
func (s *Simulator) translate(tn *tenantState, sm *smState, slot int, vpn vm.VPN) (vm.PPN, engine.Cycle, bool) {
	asid := tn.asid
	ppn, hit, probed := sm.l1tlb.LookupA(asid, slot, vpn)
	cost := probed * s.cfg.L1TLB.LookupLatency
	if s.cfg.TLBCompression {
		cost += s.cfg.CompressionLatency
	}
	sm.schedTotal++
	if hit {
		sm.schedHits++
	}
	if sm.schedTotal >= 4096 { // keep the table "instantaneous": decay
		sm.schedTotal >>= 1
		sm.schedHits >>= 1
	}
	t1 := s.clock + engine.Cycle(cost)
	if hit {
		tn.l1Hits++
		tn.stallL1 += int64(t1 - s.clock)
		return ppn, t1, true
	}
	if s.tracer.Enabled() {
		s.tracer.Instant(s.tracePID, sm.id, "l1tlb_miss", "tlb",
			int64(s.clock), map[string]int64{"vpn": int64(vpn)})
	}
	ppn, done := s.translateMiss(tn, sm, slot, vpn, t1)
	return ppn, done, false
}

// pendingBase is the sentinel PPN the sharded engine installs in an L1 TLB
// entry at miss time; the barrier later rewrites it with the real
// translation. Detection is a range check (pendingThreshold) rather than
// equality because compressed entries return base+offset PPNs, shifting the
// sentinel by up to the compression span in either direction. Real PPNs are
// allocated densely from zero and can never reach the threshold.
const (
	pendingBase      vm.PPN = 1 << 48
	pendingThreshold vm.PPN = 1 << 47
)

// fillL1 installs a resolved translation into an SM's L1 TLB. The serial
// engine inserts directly (fill time sets the entry's replacement age); the
// sharded engine instead rewrites the placeholder installed at miss time —
// payload only, so the entry ages from the miss — and retires the page from
// the SM's pending-miss set. A placeholder evicted within the epoch makes
// the update a no-op: the fill is dropped, exactly as if the entry had been
// evicted right after filling.
func (s *Simulator) fillL1(sm *smState, slot int, asid vm.ASID, vpn vm.VPN, ppn vm.PPN) {
	if !s.sharded {
		sm.l1tlb.InsertA(asid, slot, vpn, ppn)
		return
	}
	sm.l1tlb.UpdateA(asid, slot, vpn, ppn)
	delete(sm.pendingMiss, tenantKey(asid, vpn))
}

// translateMiss is the shared-resource tail of a translation that missed
// the SM's L1 TLB: MSHR merge/occupancy, the crossbar to the L2 TLB bank,
// the walker pool, and the reply. t1 is the cycle the L1 lookup resolved.
// The request's issue cycle is s.clock — the serial engine calls this
// inline from translate; the sharded engine applies it at an epoch barrier
// with s.clock rolled back to the buffered request's cycle, so both paths
// run the identical model.
func (s *Simulator) translateMiss(tn *tenantState, sm *smState, slot int, vpn vm.VPN, t1 engine.Cycle) (vm.PPN, engine.Cycle) {
	asid := tn.asid
	key := tenantKey(asid, vpn)

	// Merge with an in-flight miss to the same page from this SM (MSHR).
	if inf, ok := sm.inflight.get(key); ok && inf.done > s.clock {
		if t1 > inf.done {
			tn.stallWalk += int64(t1 - s.clock)
			return inf.ppn, t1
		}
		tn.stallWalk += int64(inf.done - s.clock)
		return inf.ppn, inf.done
	}

	// A new miss needs a free translation MSHR; when all are occupied the
	// request waits for the earliest one.
	h := 0
	for i := 1; i < len(sm.missHandlers); i++ {
		if sm.missHandlers[i] < sm.missHandlers[h] {
			h = i
		}
	}
	if sm.missHandlers[h] > t1 {
		t1 = sm.missHandlers[h]
	}

	tlbPart := int(uint64(vpn) % uint64(s.cfg.MemPartitions))
	t2 := s.xbar.Traverse(sm.id, tlbPart, t1)
	ppn2, hit2, probed2 := s.l2tlb.LookupA(asid, tn.slot, vpn)
	// The L2 TLB bank for this VPN serves one probe at a time: queue
	// behind earlier probes, then occupy the port for the lookup.
	bank := int(vpn) % len(s.l2tlbMeters)
	l2cost := probed2 * s.cfg.L2TLB.LookupLatency
	start := s.l2tlbMeters[bank].Reserve(t2, l2cost)
	t3 := start + engine.Cycle(l2cost)
	if hit2 {
		done := s.xbar.Return(tlbPart, sm.id, t3)
		s.fillL1(sm, slot, asid, vpn, ppn2)
		s.traceFill(sm.id, vpn, done, "l2tlb")
		sm.inflight.put(key, ppn2, done, s.clock)
		sm.missHandlers[h] = done
		tn.l2Hits++
		tn.stallL2 += int64(done - s.clock)
		return ppn2, done
	}

	// Merge with a walk in flight from another SM of the same tenant.
	if inf, ok := s.l2Inflight.get(key); ok && inf.done > s.clock {
		wait := inf.done
		if t3 > wait {
			wait = t3
		}
		done := s.xbar.Return(tlbPart, sm.id, wait)
		s.fillL1(sm, slot, asid, vpn, inf.ppn)
		sm.inflight.put(key, inf.ppn, done, s.clock)
		sm.missHandlers[h] = done
		tn.stallWalk += int64(done - s.clock)
		return inf.ppn, done
	}

	// Page-table walk (first touch demand-pages under UVM). A page-walk
	// cache hit on the 2MB region's last-level pointer skips the upper
	// levels, leaving only the leaf reference.
	wppn, faulted := tn.as.Touch(vm.Addr(vpn) << s.pageShift)
	lat := engine.Cycle(s.cfg.WalkLatency)
	if s.pwc != nil {
		region := vm.VPN(vpn >> 9)
		if _, hit, _ := s.pwc.LookupA(asid, 0, region); hit {
			lat = engine.Cycle(s.cfg.WalkLatency / vm.Levels)
			s.pwcHits.Inc()
		} else {
			s.pwc.InsertA(asid, 0, region, 0)
		}
	}
	if faulted {
		lat += engine.Cycle(s.cfg.PageFaultLatency)
	}
	// The walk occupies one of NumWalkers servers: the pool's aggregate
	// throughput is modelled by metering 1/NumWalkers of the latency.
	poolCost := int(lat) / s.cfg.NumWalkers
	if poolCost < 1 {
		poolCost = 1
	}
	wstart := s.walkerMeter.Reserve(t3, poolCost)
	wdone := wstart + lat
	s.walks.Inc()
	tn.walks++
	if faulted {
		s.faults.Inc()
		tn.faults++
	}
	s.traceWalk(sm.id, vpn, wstart, wdone, faulted)

	s.l2tlb.InsertA(asid, tn.slot, vpn, wppn)
	s.fillL1(sm, slot, asid, vpn, wppn)
	s.traceFill(sm.id, vpn, wdone, "walk")
	s.l2Inflight.put(key, wppn, wdone, s.clock)
	done := s.xbar.Return(tlbPart, sm.id, wdone)
	sm.inflight.put(key, wppn, done, s.clock)
	sm.missHandlers[h] = done
	if faulted {
		tn.stallFault += int64(done - s.clock)
	} else {
		tn.stallWalk += int64(done - s.clock)
	}
	return wppn, done
}

// traceFill emits an instant event for a translation filling into an SM's L1
// TLB, tagged with where it came from ("l2tlb" or "walk"). No-op when
// tracing is off.
func (s *Simulator) traceFill(smID int, vpn vm.VPN, at engine.Cycle, src string) {
	if !s.tracer.Enabled() {
		return
	}
	s.tracer.Instant(s.tracePID, smID, "l1tlb_fill_"+src, "tlb",
		int64(at), map[string]int64{"vpn": int64(vpn)})
}

// traceWalk emits one page-table walk as a complete event on the walker
// track plus a counter sample of in-flight walks (walker occupancy). The
// walkEnds bookkeeping only feeds the trace, so tracing cannot perturb the
// simulated timing. No-op when tracing is off.
func (s *Simulator) traceWalk(smID int, vpn vm.VPN, start, done engine.Cycle, faulted bool) {
	if !s.tracer.Enabled() {
		return
	}
	// Drop walks that completed before this one started; the survivors plus
	// this walk are the pool's occupancy at `start`.
	live := s.walkEnds[:0]
	for _, end := range s.walkEnds {
		if end > start {
			live = append(live, end)
		}
	}
	s.walkEnds = append(live, done)
	f := int64(0)
	if faulted {
		f = 1
	}
	s.tracer.Complete(s.tracePID, walkerTID, "walk", "walker",
		int64(start), int64(done-start),
		map[string]int64{"vpn": int64(vpn), "sm": int64(smID), "fault": f})
	s.tracer.CounterEvent(s.tracePID, "walkers", int64(start),
		map[string]int64{"in_flight": int64(len(s.walkEnds))})
}

// walkerTID is the trace track for the shared walker pool, placed well
// above any SM id.
const walkerTID = 1 << 20

// Run is the package-level convenience: build and run in one call.
func Run(cfg arch.Config, kernel *trace.Kernel, as *vm.AddressSpace) (Result, error) {
	s, err := New(cfg, kernel, as)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// RunMulti is the multi-tenant convenience: build and run in one call.
func RunMulti(cfg arch.Config, tenants []Tenant, opt MultiOptions) (Result, error) {
	s, err := NewMulti(cfg, tenants, opt)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}
