package sim

// Tenant churn (mid-run arrivals and departures with a bounded admission
// queue) and the online partitioning controller that repartitions the
// machine — L2 TLB set ownership and per-slot SM lists — in response.
//
// Determinism contract with the sharded engine: every churn trigger is
// either a global-queue event (arrivals, which truncate epochs so every
// shard is paused at the exact arrival cycle) or a barrier op (departures,
// applied in the canonical op order). Churn-triggered controller decisions
// ignore the sampled counters entirely (see internal/control); only the
// periodic tick — itself a global-queue event, hence epoch-truncating —
// reads counters, at cycles where they are identical for every worker
// count and epoch length.

import (
	"fmt"

	"gputlb/internal/control"
	"gputlb/internal/engine"
	"gputlb/internal/sched"
)

// ctlTID is the trace track for controller decisions and tenant lifecycle
// events, next to the walker pool's.
const ctlTID = walkerTID + 1

// AttachController attaches an online partitioning controller: every
// cfg.Period cycles it samples per-slot translation metrics and may move L2
// TLB sets and SMs between slots; tenant arrivals and departures trigger an
// immediate counter-free rebalance. Requires a multi-tenant simulator; set
// moves additionally require a partitioned L2 TLB (IndexByTB or
// IndexByTBShared) with at least as many sets as slots. Call after NewMulti
// and before Run.
func (s *Simulator) AttachController(cfg control.Config) (*control.Controller, error) {
	if len(s.tenants) == 1 {
		return nil, fmt.Errorf("sim: controller requires a multi-tenant run")
	}
	if s.ctl != nil {
		return nil, fmt.Errorf("sim: controller already attached")
	}
	l2Sets := 0
	if s.l2Partitioned {
		if n := s.l2tlb.Config().Sets(); s.numSlots <= n {
			l2Sets = n
		}
	}
	m := control.Machine{Slots: s.numSlots, NumSMs: s.cfg.NumSMs, L2Sets: l2Sets}
	initial := control.Assignment{SMs: make([][]int, s.numSlots)}
	for i, sms := range s.slotSMs {
		initial.SMs[i] = append([]int(nil), sms...)
	}
	if l2Sets > 0 {
		initial.SetBounds = make([]int, s.numSlots+1)
		for i := range initial.SetBounds {
			initial.SetBounds[i] = i * l2Sets / s.numSlots // the TLB's equal split
		}
	}
	ctl, err := control.New(cfg, m, initial)
	if err != nil {
		return nil, err
	}
	s.ctl = ctl
	s.ctlPeriod = engine.Cycle(ctl.Config().Period)
	s.ctlFn = s.ctlTick
	if l2Sets > 0 {
		s.l2Bounds = initial.SetBounds // adopted: applyAssignment keeps it current
	}
	reg := s.stats.Child("control")
	reg.CounterFunc("decisions", func() int64 { return ctl.Stats().Decisions })
	reg.CounterFunc("set_moves", func() int64 { return ctl.Stats().SetMoves })
	reg.CounterFunc("sm_moves", func() int64 { return ctl.Stats().SMMoves })
	reg.CounterFunc("rebalances", func() int64 { return ctl.Stats().Rebalances })
	return ctl, nil
}

// Controller returns the attached controller (nil without one).
func (s *Simulator) Controller() *control.Controller { return s.ctl }

// ctlTick is the controller's periodic decision point, a global-queue event
// at multiples of the period. It re-arms while thread blocks remain — not
// while the queue is non-empty, which would let the tick and the sampling
// callback keep each other alive forever after the last warp retires.
func (s *Simulator) ctlTick() {
	s.runControl(control.ReasonEpoch)
	if s.tbsDone < s.totalTBs {
		s.queue.Schedule(s.clock+s.ctlPeriod, s.ctlFn)
	}
}

// runControl builds the per-slot sample vector, asks the controller for a
// decision, and applies any assignment change. Counters are only sampled
// for periodic decisions — churn decisions are defined to be counter-free,
// which is what keeps them deterministic mid-epoch.
func (s *Simulator) runControl(reason control.Reason) {
	if s.ctl == nil {
		return
	}
	samples := s.ctlSamples[:0]
	for sl := 0; sl < s.numSlots; sl++ {
		smp := control.Sample{Slot: sl, SMs: len(s.slotSMs[sl])}
		if s.l2Bounds != nil {
			smp.Sets = s.l2Bounds[sl+1] - s.l2Bounds[sl]
		}
		if tn := s.slotOwner[sl]; tn != nil {
			smp.Active = true
			smp.TBsLeft = len(tn.kernel.TBs) - tn.tbsDone
			if reason == control.ReasonEpoch {
				s.sampleTenant(tn, &smp)
			}
		}
		samples = append(samples, smp)
	}
	s.ctlSamples = samples
	a, changed := s.ctl.Decide(int64(s.clock), reason, samples)
	if !changed {
		return
	}
	s.applyAssignment(a)
	if s.tracer.Enabled() {
		d, _ := s.ctl.Last()
		reb := int64(0)
		if d.Rebalanced {
			reb = 1
		}
		s.tracer.Instant(s.tracePID, ctlTID, "ctl_"+reason.String(), "control",
			int64(s.clock), map[string]int64{
				"set_moves": int64(d.SetMoves), "sm_moves": int64(d.SMMoves), "rebalanced": reb,
			})
		vals := make(map[string]int64, 2*s.numSlots)
		for sl := range s.slotSMs {
			vals[fmt.Sprintf("slot%d_sms", sl)] = int64(len(s.slotSMs[sl]))
			if s.l2Bounds != nil {
				vals[fmt.Sprintf("slot%d_sets", sl)] = int64(s.l2Bounds[sl+1] - s.l2Bounds[sl])
			}
		}
		s.tracer.CounterEvent(s.tracePID, "controller", int64(s.clock), vals)
	}
}

// sampleTenant fills a sample's counters from the tenant's own counters
// plus the shard accumulators (phase-1 counters live in the shards until
// the end-of-run fold). Only called at periodic ticks, where every shard is
// paused at the tick cycle, so the sums are barrier-stable.
func (s *Simulator) sampleTenant(tn *tenantState, smp *control.Sample) {
	smp.Insts = tn.insts
	smp.PageReqs = tn.pageReqs
	smp.L1Hits = tn.l1Hits
	smp.L2Hits = tn.l2Hits
	smp.Walks = tn.walks
	smp.Faults = tn.faults
	smp.StallL1 = tn.stallL1
	smp.StallL2 = tn.stallL2
	smp.StallWalk = tn.stallWalk
	smp.StallFault = tn.stallFault
	for _, sh := range s.shards {
		st := &sh.tenants[tn.asid]
		smp.Insts += st.insts
		smp.PageReqs += st.pageReqs
		smp.L1Hits += st.l1Hits
		smp.StallL1 += st.stallL1
		smp.StallWalk += st.stallWalk
	}
}

// applyAssignment installs a controller decision: the L2 TLB's explicit set
// partition and the per-slot SM lists, refreshing each owning tenant's
// dispatch state. Already-placed TBs keep running where they are — the new
// assignment steers future dispatch, like a real TB scheduler would.
func (s *Simulator) applyAssignment(a control.Assignment) {
	if s.l2Bounds != nil && a.SetBounds != nil {
		copy(s.l2Bounds, a.SetBounds)
		s.l2tlb.SetPartition(s.l2Bounds)
		if s.sliceActive {
			s.applySliceBounds()
		}
	}
	for sl := range s.slotSMs {
		if intsEqual(s.slotSMs[sl], a.SMs[sl]) {
			continue
		}
		s.slotSMs[sl] = append([]int(nil), a.SMs[sl]...)
		if tn := s.slotOwner[sl]; tn != nil {
			tn.sms = s.slotSMs[sl]
			if len(tn.statusBuf) != len(tn.sms) {
				tn.statusBuf = make([]sched.SMStatus, len(tn.sms))
			}
			tn.cursor = 0
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scheduleArrivals schedules every churn arrival as a global-queue event at
// its arrival cycle. Called once at the start of Run.
func (s *Simulator) scheduleArrivals() {
	for _, tn := range s.tenants {
		if !tn.isArrival {
			continue
		}
		tn := tn
		s.queue.Schedule(tn.arriveAt, func() { s.arrive(tn) })
	}
}

// arrive handles a tenant's arrival: admit into a free slot, wait in the
// admission queue, or shed when the queue is full. Sheds are final — the
// tenant's TBs leave the run's workload.
func (s *Simulator) arrive(tn *tenantState) {
	for sl := 0; sl < s.numSlots; sl++ {
		if s.slotOwner[sl] == nil {
			s.admit(tn, sl)
			return
		}
	}
	if len(s.admitQ) < s.queueCap {
		s.admitQ = append(s.admitQ, tn)
		if s.tracer.Enabled() {
			s.tracer.Instant(s.tracePID, ctlTID, "tenant_queued", "churn",
				int64(s.clock), map[string]int64{"asid": int64(tn.asid)})
		}
		return
	}
	tn.shed = true
	s.totalTBs -= len(tn.kernel.TBs)
	if s.tracer.Enabled() {
		s.tracer.Instant(s.tracePID, ctlTID, "tenant_shed", "churn",
			int64(s.clock), map[string]int64{"asid": int64(tn.asid)})
	}
}

// admit places an arrived tenant into a free slot, triggers the
// controller's arrival rebalance, and arms dispatch. The tenant inherits
// the slot's (possibly controller-resized) SM list.
func (s *Simulator) admit(tn *tenantState, sl int) {
	s.slotOwner[sl] = tn
	tn.slot = sl
	tn.active = true
	tn.startCycle = s.clock
	s.runControl(control.ReasonArrival)
	tn.sms = s.slotSMs[sl]
	if len(tn.statusBuf) != len(tn.sms) {
		tn.statusBuf = make([]sched.SMStatus, len(tn.sms))
	}
	if s.tracer.Enabled() {
		s.tracer.Instant(s.tracePID, ctlTID, "tenant_admit", "churn",
			int64(s.clock), map[string]int64{"asid": int64(tn.asid), "slot": int64(sl)})
	}
	s.scheduleDispatch()
}

// depart retires a tenant whose last TB finished: its slot frees, the head
// of the admission queue (if any) is admitted into it in the same cycle,
// and otherwise the controller reclaims the slot's resources for the
// survivors. In-flight state for the dead ASID needs no cleanup: TLB and
// MSHR entries are ASID-tagged, so they simply age out.
func (s *Simulator) depart(tn *tenantState) {
	if len(s.tenants) == 1 || !tn.active {
		return
	}
	tn.active = false
	sl := tn.slot
	s.slotOwner[sl] = nil
	if s.tracer.Enabled() {
		s.tracer.Instant(s.tracePID, ctlTID, "tenant_depart", "churn",
			int64(s.clock), map[string]int64{"asid": int64(tn.asid), "slot": int64(sl)})
	}
	if len(s.admitQ) > 0 {
		next := s.admitQ[0]
		copy(s.admitQ, s.admitQ[1:])
		s.admitQ = s.admitQ[:len(s.admitQ)-1]
		s.admit(next, sl)
		return
	}
	s.runControl(control.ReasonDeparture)
}
