// Package sim is the cycle-level GPU timing simulator: SMs running warps
// under a greedy-then-oldest dual-issue scheduler, a TB dispatcher
// (round-robin or TLB-thrashing-aware), per-SM L1 TLBs and VIPT L1 caches,
// a shared L2 TLB and L2 cache behind an interconnect, and a pool of shared
// page-table walkers over a UVM address space with demand paging — the
// translation datapath of the paper's Figure 1 with the capacities and
// latencies of Table III.
package sim
