package sim

import (
	"reflect"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/sched"
	"gputlb/internal/vm"
	"gputlb/internal/workloads"
)

// twoTenants builds two independent tiny-kernel tenants under a spatial SM
// split of the default configuration.
func twoTenants(t *testing.T, cfg arch.Config) []Tenant {
	t.Helper()
	k0, as0 := tinyKernel(t, 8, 4)
	k1, as1 := tinyKernel(t, 6, 3)
	assign := sched.AssignSMs(sched.AssignSpatial, cfg.NumSMs, 2)
	return []Tenant{
		{Name: "a", Kernel: k0, AS: as0, SMs: assign[0]},
		{Name: "b", Kernel: k1, AS: as1, SMs: assign[1]},
	}
}

func TestRunMultiSingleTenantMatchesRun(t *testing.T) {
	// One tenant through NewMulti must be bit-identical to New — the
	// property the golden-stats guard also checks end to end.
	k, as := tinyKernel(t, 12, 5)
	solo, err := Run(arch.Default(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	k2, as2 := tinyKernel(t, 12, 5)
	multi, err := RunMulti(arch.Default(), []Tenant{{Name: "tiny", Kernel: k2, AS: as2}}, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Tenants != nil {
		t.Errorf("single-tenant run populated Tenants: %+v", multi.Tenants)
	}
	solo.Stats, multi.Stats = nil, nil
	if !reflect.DeepEqual(solo, multi) {
		t.Errorf("single-tenant NewMulti diverged from New:\n new:   %+v\n multi: %+v", solo, multi)
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	for _, pol := range []arch.TLBIndexPolicy{arch.IndexByAddress, arch.IndexByTB, arch.IndexByTBShared} {
		cfg := arch.Default()
		r1, err := RunMulti(cfg, twoTenants(t, cfg), MultiOptions{L2TLBPolicy: pol})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunMulti(cfg, twoTenants(t, cfg), MultiOptions{L2TLBPolicy: pol})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles || !reflect.DeepEqual(r1.Tenants, r2.Tenants) {
			t.Errorf("policy %v: identical co-runs diverged:\n %+v\n %+v", pol, r1.Tenants, r2.Tenants)
		}
	}
}

func TestRunMultiTenantAccounting(t *testing.T) {
	cfg := arch.Default()
	tenants := twoTenants(t, cfg)
	r, err := RunMulti(cfg, tenants, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tenants) != 2 {
		t.Fatalf("Tenants = %d entries, want 2", len(r.Tenants))
	}
	// Instruction and page-request counts are trace properties: each
	// tenant's count must equal its solo run's regardless of interference,
	// and the totals must add up.
	var insts, reqs int64
	for i, tr := range r.Tenants {
		if tr.ASID != vm.ASID(i) || tr.Name != tenants[i].Name {
			t.Errorf("tenant %d identity = %d/%q", i, tr.ASID, tr.Name)
		}
		k, as := tinyKernel(t, []int{8, 6}[i], []int{4, 3}[i])
		solo, err := Run(cfg, k, as)
		if err != nil {
			t.Fatal(err)
		}
		if tr.InstsIssued != solo.InstsIssued || tr.PageRequests != solo.PageRequests {
			t.Errorf("tenant %d issued %d insts / %d reqs, solo %d / %d",
				i, tr.InstsIssued, tr.PageRequests, solo.InstsIssued, solo.PageRequests)
		}
		if tr.Cycles <= 0 || int64(r.Cycles) < tr.Cycles {
			t.Errorf("tenant %d cycles %d outside (0, %d]", i, tr.Cycles, r.Cycles)
		}
		if tr.L1TLBHits+tr.L2TLBHits+tr.Walks != tr.PageRequests {
			// Every translation resolves at exactly one level, but merged
			// requests (MSHR / in-flight walks) resolve without their own
			// hit or walk — so the sum can only fall short, never exceed.
			if tr.L1TLBHits+tr.L2TLBHits+tr.Walks > tr.PageRequests {
				t.Errorf("tenant %d hit/walk counts exceed page requests: %+v", i, tr)
			}
		}
		if tr.StallTotal() <= 0 {
			t.Errorf("tenant %d recorded no translation stall cycles", i)
		}
		insts += tr.InstsIssued
		reqs += tr.PageRequests
	}
	if insts != r.InstsIssued || reqs != r.PageRequests {
		t.Errorf("tenant sums %d insts / %d reqs != totals %d / %d",
			insts, reqs, r.InstsIssued, r.PageRequests)
	}
}

func TestRunMultiSharedSMs(t *testing.T) {
	// Every tenant on every SM: both kernels must still retire fully.
	cfg := arch.Default()
	tenants := twoTenants(t, cfg)
	assign := sched.AssignSMs(sched.AssignShared, cfg.NumSMs, 2)
	tenants[0].SMs, tenants[1].SMs = assign[0], assign[1]
	r, err := RunMulti(cfg, tenants, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tenants) != 2 || r.Tenants[0].InstsIssued == 0 || r.Tenants[1].InstsIssued == 0 {
		t.Errorf("shared-SM co-run incomplete: %+v", r.Tenants)
	}
}

func TestRunMultiRealWorkloads(t *testing.T) {
	// A real benchmark pair under each L2 TLB tenancy mode completes and
	// stays internally consistent.
	p := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.1}
	cfg := arch.Default()
	assign := sched.AssignSMs(sched.AssignSpatial, cfg.NumSMs, 2)
	for _, pol := range []arch.TLBIndexPolicy{arch.IndexByAddress, arch.IndexByTB, arch.IndexByTBShared} {
		var tenants []Tenant
		for i, name := range []string{"bfs", "atax"} {
			s, _ := workloads.ByName(name)
			k, as := s.Build(p)
			tenants = append(tenants, Tenant{Name: name, Kernel: k, AS: as, SMs: assign[i]})
		}
		r, err := RunMulti(cfg, tenants, MultiOptions{L2TLBPolicy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for _, tr := range r.Tenants {
			if tr.IPC() <= 0 {
				t.Errorf("%v: tenant %s IPC = %f", pol, tr.Name, tr.IPC())
			}
			if hr := tr.L1TLBHitRate(); hr < 0 || hr > 1 {
				t.Errorf("%v: tenant %s hit rate %f out of range", pol, tr.Name, hr)
			}
		}
	}
}

func TestNewMultiValidation(t *testing.T) {
	cfg := arch.Default()
	k, as := tinyKernel(t, 2, 1)
	if _, err := NewMulti(cfg, nil, MultiOptions{}); err == nil {
		t.Error("empty tenant list accepted")
	}
	many := make([]Tenant, vm.MaxTenants+1)
	for i := range many {
		many[i] = Tenant{Name: "x", Kernel: k, AS: as, SMs: []int{0}}
	}
	if _, err := NewMulti(cfg, many, MultiOptions{}); err == nil {
		t.Errorf("%d tenants accepted beyond the ASID limit", len(many))
	}
	k2, as2 := tinyKernel(t, 2, 1)
	pair := []Tenant{
		{Name: "a", Kernel: k, AS: as, SMs: []int{0}},
		{Name: "b", Kernel: k2, AS: as2},
	}
	if _, err := NewMulti(cfg, pair, MultiOptions{}); err == nil {
		t.Error("multi-tenant run without an SM assignment accepted")
	}
	pair[1].SMs = []int{cfg.NumSMs}
	if _, err := NewMulti(cfg, pair, MultiOptions{}); err == nil {
		t.Error("out-of-range SM id accepted")
	}
}
