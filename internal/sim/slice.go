package sim

// Address-sliced barrier (SetL2Slices with SetCellParallel >= 2).
//
// The sharded engine's barrier serializes every shared-resource op on one
// core, which caps the parallel fraction. The sliced barrier partitions the
// shared hardware into K independent address slices — L2 TLB sets, L2 cache
// sets, page-walk resources, and DRAM channels — where a slice is a pure
// function of the address: slice(vpn) for translations, partition mod K for
// data lines. The barrier then becomes K per-slice passes running
// concurrently on the worker pool, a parallel per-SM pass that applies L1
// fills and wakes warps, and a short serial tail for the few cross-slice
// ops (TB completions, dispatch, controller ticks, sampling).
//
// Determinism: each slice pass replays exactly the ops touching its slice,
// in the same canonical (cycle, SM index, sequence) order the monolithic
// barrier uses, against structures only that slice ever touches. The
// per-slice state evolution is therefore a pure function of the canonical
// op stream — independent of worker count and of where epoch boundaries
// fall. Tenant-completing TB finishes are "fences": they repartition the
// sub-TLBs (controller rebalance on departure), so the epoch's op stream is
// segmented at each fence and the fence applies serially between segments,
// at its exact canonical position.
//
// The sliced barrier is a further legal serialization of the same hardware
// model: per-slice sub-TLBs/sub-caches index Entries/K structures by
// compacted VPN, translation traffic targets the slice's own memory
// partitions, and request/reply NoC rings are split per direction
// (noc.Sliced). K > 1 results are compared against their own goldens;
// K = 1 leaves the monolithic barrier byte-for-byte untouched.

import (
	"fmt"
	"sort"
	"time"

	"gputlb/internal/arch"
	"gputlb/internal/cache"
	"gputlb/internal/engine"
	"gputlb/internal/noc"
	"gputlb/internal/stats"
	"gputlb/internal/tlb"
	"gputlb/internal/vm"
)

// sliceMSHR is one SM's translation-MSHR bank for one address slice: the
// monolithic MSHR pool splits into K banks so slice passes can write their
// own bank's merge window without sharing. Phase 1 (shard events) reads the
// bank owning the VPN; only the owning slice pass writes it.
type sliceMSHR struct {
	inflight    *inflightTable
	handlers    []engine.Cycle
	pendingMiss map[vm.VPN]struct{}
}

// sliceTenant accumulates the per-tenant counters one slice pass touches;
// folded into the tenant at the end of every epoch (before global events
// sample them), so the controller sees barrier-stable sums.
type sliceTenant struct {
	l2Hits     int64
	walks      int64
	faults     int64
	stallL2    int64
	stallWalk  int64
	stallFault int64
}

// Buffered slice-pass trace event kinds.
const (
	sliceTrWalk = iota
	sliceTrFill
	sliceTrEvict
)

// sliceTraceEv is one buffered trace event produced inside a slice pass
// (the tracer is not concurrency-safe and is insertion-ordered; buffering
// per slice and flushing in slice order keeps traces identical at every
// worker count).
type sliceTraceEv struct {
	kind  int
	sm    int
	vpn   int64
	ts    int64
	dur   int64
	fault int64
	inUse int64
	src   string
}

// sliceCtx is one address slice's private shared-hardware context: the
// structures a slice pass may touch, its epoch-delta counters, and its
// merge/trace scratch. Nothing here is ever accessed by another slice.
type sliceCtx struct {
	idx     int
	l2tlb   *tlb.TLB
	l2cache *cache.Cache
	pwc     *tlb.TLB

	l2Inflight  *inflightTable
	walkerMeter noc.Meter
	l2tlbMeters []noc.Meter
	walkers     int
	parts       []int // memory partitions owned by this slice (p mod K == idx)

	// Epoch-delta counters, folded into the simulator's registered counters
	// at the end of every epoch and zeroed.
	walks   int64
	faults  int64
	pwcHits int64
	tenants []sliceTenant

	transLat *stats.Histogram
	ops      int64

	// tbfin shadows each tenant's cumulative TB-finish count: every slice
	// pass sees every opTBFinish at its canonical position, so the slice's
	// sub-TLB releases a finished tenant's partition sharing state exactly
	// where the monolithic barrier would.
	tbfin []int

	// k-way merge scratch (one cursor per shard) and trace buffers.
	cur      []int
	heap     []mergeEntry
	traceBuf []sliceTraceEv
	walkEnds []engine.Cycle
	walkTID  int
	ctrName  string
}

// finRef locates one opTBFinish in a shard's op log, in canonical
// (t, shard, idx) order; fence marks a tenant-completing finish.
type finRef struct {
	t     engine.Cycle
	shard int32
	idx   int32
	fence bool
}

// SetL2Slices requests K independent address slices for the sharded
// engine's barrier (the -l2-slices flag). Effective only with
// SetCellParallel(n >= 2); the count is clamped to the largest power of two
// the geometry supports (L2 TLB sets, L2 cache sets, and memory partitions
// must all split). 1 (or less) keeps the monolithic barrier, byte-identical
// to SetL2Slices never having been called. Call before Run.
func (s *Simulator) SetL2Slices(k int) {
	if k < 1 {
		k = 1
	}
	s.l2Slices = k
}

// L2Slices returns the effective slice count (1 while the sliced barrier is
// inactive; only meaningful after Run for sharded runs).
func (s *Simulator) L2Slices() int {
	if s.sliceActive {
		return s.kSlices
	}
	return 1
}

// sliceGeometryOK reports whether the configuration splits into k slices:
// every partitioned structure must divide evenly and the sub-TLB must keep
// a power-of-two set count.
func (s *Simulator) sliceGeometryOK(k int) bool {
	if s.cfg.MemPartitions < k {
		return false
	}
	e := s.cfg.L2TLB.Entries
	if e%k != 0 || (e/k)%s.cfg.L2TLB.Assoc != 0 {
		return false
	}
	sets := (e / k) / s.cfg.L2TLB.Assoc
	if sets < 1 || sets&(sets-1) != 0 {
		return false
	}
	cs := s.cfg.L2Cache
	if cs.SizeBytes%k != 0 || (cs.SizeBytes/k)%(cs.LineBytes*cs.Assoc) != 0 {
		return false
	}
	if (cs.SizeBytes/k)/(cs.LineBytes*cs.Assoc) < 1 {
		return false
	}
	return true
}

// buildSlices constructs the per-slice contexts, the sliced crossbar, the
// per-SM MSHR banks, and the slice worker pool. Called from runSharded when
// SetL2Slices requested more than one slice; a request the geometry cannot
// honour degrades (power of two by power of two) toward the monolithic
// barrier.
func (s *Simulator) buildSlices(workers int) {
	k := 1
	for k*2 <= s.l2Slices {
		k *= 2
	}
	for k > 1 && !s.sliceGeometryOK(k) {
		k /= 2
	}
	if k <= 1 {
		return
	}
	s.kSlices = k
	s.sliceBits = uintLog2(k)
	// Slice by UVM population block (16 pages for 4KB pages) so a block's
	// pages land in one slice and demand-paging order stays canonical; 2MB
	// pages populate singly and slice on the page itself.
	s.sliceShift = 0
	if s.cfg.PageSize == arch.PageSize4K {
		s.sliceShift = uintLog2(vm.BasicBlockPages)
	}

	tc := s.cfg.L2TLB
	tc.Entries /= k
	cc := s.cfg.L2Cache
	cc.SizeBytes /= k
	mshrs := s.cfg.TranslationMSHRs / k
	if mshrs < 1 {
		mshrs = 1
	}
	walkers := s.cfg.NumWalkers / k
	if walkers < 1 {
		walkers = 1
	}
	ports := s.cfg.L2TLBPorts / k
	if ports < 1 {
		ports = 1
	}

	s.slices = make([]*sliceCtx, k)
	for i := 0; i < k; i++ {
		sc := &sliceCtx{
			idx:         i,
			l2tlb:       tlb.New(tc, s.l2opt),
			l2cache:     cache.New(cc),
			l2Inflight:  newInflightTable(s.cfg.NumSMs * mshrs),
			l2tlbMeters: make([]noc.Meter, ports),
			walkers:     walkers,
			transLat:    stats.NewHistogram(len(Result{}.TranslationLatency)),
			tenants:     make([]sliceTenant, len(s.tenants)),
			tbfin:       make([]int, len(s.tenants)),
			cur:         make([]int, len(s.shards)),
			walkTID:     walkerTID + 2 + i,
			ctrName:     fmt.Sprintf("walkers/s%d", i),
		}
		if s.l2Partitioned {
			sc.l2tlb.ConfigureSlots(s.numSlots)
		}
		if s.cfg.PWCEntries > 0 {
			n := s.cfg.PWCEntries / k
			if n < 1 {
				n = 1
			}
			sc.pwc = tlb.New(arch.TLBConfig{Entries: n, Assoc: n, LookupLatency: 1},
				tlb.Options{Policy: arch.IndexByAddress})
		}
		for p := i; p < s.cfg.MemPartitions; p += k {
			sc.parts = append(sc.parts, p)
		}
		s.slices[i] = sc
	}
	s.sliceActive = true
	if s.l2Bounds != nil {
		s.applySliceBounds()
	}
	s.xslice = noc.NewSliced(s.cfg.NumSMs, s.cfg.MemPartitions, k,
		s.cfg.InterconnectLatency, s.cfg.NoCServiceCycles)
	s.slicePool = engine.NewPool(workers)
	for _, tn := range s.tenants {
		tn.as.ConfigureSlices(k)
	}
	for _, sm := range s.sms {
		sm.slMSHR = make([]sliceMSHR, k)
		for b := range sm.slMSHR {
			sm.slMSHR[b] = sliceMSHR{
				inflight:    newInflightTable(mshrs),
				handlers:    make([]engine.Cycle, mshrs),
				pendingMiss: make(map[vm.VPN]struct{}, 8),
			}
		}
	}
	s.segStart = make([]int, len(s.shards))
	s.segEnd = make([]int, len(s.shards))
}

// vpnSlice maps a VPN to its owning slice: a pure address function, keyed
// above the UVM block bits so one population block stays in one slice.
func (s *Simulator) vpnSlice(vpn vm.VPN) int {
	return int((uint64(vpn) >> s.sliceShift) & uint64(s.kSlices-1))
}

// vpnCompact removes the slice-index bits from a VPN, bijectively within
// the slice, preserving the block-internal low bits: sub-structures of
// 1/K capacity index the compacted space densely.
func (s *Simulator) vpnCompact(vpn vm.VPN) vm.VPN {
	low := uint64(vpn) & (1<<s.sliceShift - 1)
	return vm.VPN((uint64(vpn)>>(s.sliceShift+s.sliceBits))<<s.sliceShift | low)
}

// lineSlice maps a data line to its owning slice: the line's memory
// partition mod K, so a slice owns whole DRAM channels.
func (s *Simulator) lineSlice(phys cache.LineAddr) int {
	return s.mem.Partition(phys) % s.kSlices
}

// applySliceBounds installs the current explicit L2 TLB set partition onto
// every sub-TLB, scaled by 1/K (integer division keeps bounds monotone; a
// slot squeezed to zero sub-sets simply holds no entries in that slice).
func (s *Simulator) applySliceBounds() {
	if s.subBounds == nil {
		s.subBounds = make([]int, len(s.l2Bounds))
	}
	for i, v := range s.l2Bounds {
		s.subBounds[i] = v / s.kSlices
	}
	for _, sc := range s.slices {
		sc.l2tlb.SetPartition(s.subBounds)
	}
}

// applyEpochSliced is the sliced barrier: the epoch's canonical op stream is
// segmented at tenant-completion fences; each segment runs the K slice
// passes concurrently, then the per-SM pass concurrently, then the serial
// TB-finish tail. Global events pop last — every op precedes every pending
// global event in time (ops sit strictly before the limit, globals at or
// past it), so this matches the monolithic barrier's interleaving.
func (s *Simulator) applyEpochSliced(limit engine.Cycle) {
	s.flushShardTraces()

	fin := s.finRefs[:0]
	total := 0
	for k, sh := range s.shards {
		total += len(sh.ops)
		for i := range sh.ops {
			if sh.ops[i].kind == opTBFinish {
				fin = append(fin, finRef{t: sh.ops[i].t, shard: int32(k), idx: int32(i)})
			}
		}
	}
	if len(fin) > 1 {
		sort.Slice(fin, func(a, b int) bool {
			if fin[a].t != fin[b].t {
				return fin[a].t < fin[b].t
			}
			if fin[a].shard != fin[b].shard {
				return fin[a].shard < fin[b].shard
			}
			return fin[a].idx < fin[b].idx
		})
	}
	if len(fin) > 0 {
		// Project the per-tenant completion counts to find the fences.
		proj := s.projTB
		if len(proj) != len(s.tenants) {
			proj = make([]int, len(s.tenants))
			s.projTB = proj
		}
		for i := range proj {
			proj[i] = s.tenants[i].tbsDone
		}
		for i := range fin {
			op := &s.shards[fin[i].shard].ops[fin[i].idx]
			a := int(op.ws.asid)
			proj[a]++
			if proj[a] == len(op.ws.tn.kernel.TBs) {
				fin[i].fence = true
			}
		}
	}

	segStart, segEnd := s.segStart, s.segEnd
	for i := range segStart {
		segStart[i] = 0
	}
	if total > 0 {
		finLo := 0
		for i := range fin {
			if !fin[i].fence {
				continue
			}
			s.sliceSegEnds(segStart, segEnd, fin[i])
			s.runSliceSegment(segStart, segEnd, fin, finLo, i+1)
			copy(segStart, segEnd)
			finLo = i + 1
		}
		for k, sh := range s.shards {
			segEnd[k] = len(sh.ops)
		}
		s.runSliceSegment(segStart, segEnd, fin, finLo, len(fin))
	}
	s.foldSliceEpoch()
	for s.queue.Len() > 0 && s.queue.NextCycle() <= limit {
		ev := s.queue.Pop()
		s.clock = ev.At
		s.profile.GlobalEvents++
		ev.Fn()
	}
	for _, sh := range s.shards {
		sh.ops = sh.ops[:0]
	}
	s.finRefs = fin[:0]
}

// sliceSegEnds computes, per shard, the end of the segment closed by fence
// f: the first op canonically after (f.t, f.shard, f.idx).
func (s *Simulator) sliceSegEnds(segStart, segEnd []int, f finRef) {
	for k, sh := range s.shards {
		if int32(k) == f.shard {
			segEnd[k] = int(f.idx) + 1
			continue
		}
		j := segStart[k]
		for j < len(sh.ops) {
			t := sh.ops[j].t
			if t > f.t || (t == f.t && int32(k) > f.shard) {
				break
			}
			j++
		}
		segEnd[k] = j
	}
}

// runSliceSegment runs one fence-delimited segment of the canonical op
// stream: Phase A (K slice passes, concurrent), the slice trace flush,
// Phase B (per-SM fill/wake pass, concurrent), then the serial TB-finish
// tail in canonical order — the fence, if any, is the tail's last op and
// may repartition the sub-TLBs for the next segment.
func (s *Simulator) runSliceSegment(segStart, segEnd []int, fin []finRef, finLo, finHi int) {
	work := false
	for k := range segStart {
		if segStart[k] < segEnd[k] {
			work = true
			break
		}
	}
	if work {
		t0 := time.Now()
		s.slicePool.Run(s.kSlices, func(i int) { s.slicePass(s.slices[i], segStart, segEnd) })
		t1 := time.Now()
		s.profile.SlicePassSeconds += t1.Sub(t0).Seconds()
		s.flushSliceTraces()
		t2 := time.Now()
		s.slicePool.Run(len(s.shards), func(i int) { s.smPass(i, segStart[i], segEnd[i]) })
		s.profile.SMPassSeconds += time.Since(t2).Seconds()
	}
	for fi := finLo; fi < finHi; fi++ {
		op := &s.shards[fin[fi].shard].ops[fin[fi].idx]
		s.profile.SerialOps++
		s.clock = op.t
		tn := op.ws.tn
		tn.tbsDone++
		s.tbsDone++
		if tn.tbsDone == len(tn.kernel.TBs) {
			// The sub-TLBs released the tenant's partition sharing state at
			// this op's canonical position inside the slice passes (tbfin
			// shadow); only the departure itself is serial.
			s.depart(tn)
		}
		s.scheduleDispatch()
	}
}

// slicePass replays one slice's view of the segment: a k-way merge over the
// shards' op ranges in canonical (t, shard, seq) order, acting only on the
// ops (or op parts) this slice owns. Runs on a worker; touches nothing
// outside its sliceCtx, its MSHR banks, its DRAM partitions, and its NoC
// rings.
func (s *Simulator) slicePass(sc *sliceCtx, segStart, segEnd []int) {
	cur := sc.cur
	h := sc.heap[:0]
	for k, sh := range s.shards {
		cur[k] = segStart[k]
		if segStart[k] < segEnd[k] {
			h = mergePush(h, mergeEntry{t: sh.ops[segStart[k]].t, shard: int32(k)})
		}
	}
	for len(h) > 0 {
		best := int(h[0].shard)
		sh := s.shards[best]
		op := &sh.ops[cur[best]]
		cur[best]++
		if cur[best] < segEnd[best] {
			h = mergeFix(h, sh.ops[cur[best]].t)
		} else {
			h = mergePop(h)
		}
		s.sliceApplyOp(sc, best, op)
	}
	sc.heap = h[:0]
}

// sliceApplyOp applies the slice-owned part of one op. Ownership is decided
// from read-only fields (vpn, phys) so concurrent passes never read a field
// another slice writes.
func (s *Simulator) sliceApplyOp(sc *sliceCtx, shard int, op *sharedOp) {
	switch op.kind {
	case opMem:
		pi := op.pi
		if pi.stage == 0 {
			acted := false
			for i := range pi.pages {
				pp := &pi.pages[i]
				if s.vpnSlice(pp.vpn) != sc.idx {
					continue
				}
				if !pp.pending {
					continue
				}
				var fill bool
				pp.ppn, pp.done, fill = s.translateMissSliced(sc, pi.ws.tn, pi.ws.sm, pi.ws.slot, pp.vpn, pp.t1, op.t)
				pp.fill = fill
				pp.pending = false
				sc.transLat.Observe(int64(pp.done - pi.t))
				acted = true
			}
			if acted {
				sc.ops++
			}
			return
		}
		acted := false
		for i := range pi.lines {
			pl := &pi.lines[i]
			if s.lineSlice(pl.phys) != sc.idx {
				continue
			}
			pl.done = s.dataMissSliced(sc, pi.ws.sm, pl.phys, pl.start)
			acted = true
		}
		if acted {
			sc.ops++
		}
	case opTBFinish:
		tn := op.ws.tn
		a := int(op.ws.asid)
		sc.tbfin[a]++
		if sc.tbfin[a] == len(tn.kernel.TBs) && s.l2Partitioned {
			sc.l2tlb.OnTBFinish(tn.slot)
		}
	case opEvict:
		if s.vpnSlice(op.vpn) != sc.idx {
			return
		}
		sc.ops++
		ppn := op.ppn
		if ppn >= pendingThreshold {
			// Placeholder victim: write back the real PPN if the fill already
			// resolved (its op precedes this one in this slice's canonical
			// order), else drop the write-back — the entry held nothing.
			real, ok := s.tenants[op.asid].as.PageTable().Translate(op.vpn)
			if !ok {
				return
			}
			ppn = real
		}
		sl := s.tenants[op.asid].slot
		cvpn := s.vpnCompact(op.vpn)
		if !sc.l2tlb.ContainsA(op.asid, sl, cvpn) {
			sc.l2tlb.InsertA(op.asid, sl, cvpn, ppn)
		}
		if s.tracer.Enabled() {
			sc.traceBuf = append(sc.traceBuf, sliceTraceEv{
				kind: sliceTrEvict, sm: s.shards[shard].sm.id, vpn: int64(op.vpn), ts: int64(op.t),
			})
		}
	}
}

// translateMissSliced is translateMiss against one slice's sub-structures:
// the SM's per-slice MSHR bank, the sliced crossbar, the sub-TLB (compacted
// VPN), the slice's walker share, and its walk-merge window. `now` is the
// op's request cycle (the monolithic path reads s.clock, which a concurrent
// pass must not). The returned fill flag tells Phase B whether to rewrite
// the SM's L1 placeholder (false only on the MSHR-bank merge, which never
// fills — exactly as the monolithic path).
func (s *Simulator) translateMissSliced(sc *sliceCtx, tn *tenantState, sm *smState, slot int, vpn vm.VPN, t1, now engine.Cycle) (vm.PPN, engine.Cycle, bool) {
	asid := tn.asid
	key := tenantKey(asid, vpn)
	bk := &sm.slMSHR[sc.idx]
	ta := &sc.tenants[asid]

	// Merge with an in-flight miss to the same page from this SM (MSHR bank).
	if inf, ok := bk.inflight.get(key); ok && inf.done > now {
		if t1 > inf.done {
			ta.stallWalk += int64(t1 - now)
			return inf.ppn, t1, false
		}
		ta.stallWalk += int64(inf.done - now)
		return inf.ppn, inf.done, false
	}

	// A new miss needs a free MSHR in this slice's bank; when all are
	// occupied the request waits for the earliest one.
	h := 0
	for i := 1; i < len(bk.handlers); i++ {
		if bk.handlers[i] < bk.handlers[h] {
			h = i
		}
	}
	if bk.handlers[h] > t1 {
		t1 = bk.handlers[h]
	}

	cvpn := s.vpnCompact(vpn)
	tlbPart := sc.parts[int(uint64(cvpn))%len(sc.parts)]
	t2 := s.xslice.Traverse(sm.id, sc.idx, tlbPart, t1)
	ppn2, hit2, probed2 := sc.l2tlb.LookupA(asid, tn.slot, cvpn)
	bank := int(uint64(cvpn)) % len(sc.l2tlbMeters)
	l2cost := probed2 * s.cfg.L2TLB.LookupLatency
	start := sc.l2tlbMeters[bank].Reserve(t2, l2cost)
	t3 := start + engine.Cycle(l2cost)
	if hit2 {
		done := s.xslice.Return(tlbPart, sm.id, sc.idx, t3)
		delete(bk.pendingMiss, key)
		s.sliceTraceFill(sc, sm.id, vpn, done, "l2tlb")
		bk.inflight.put(key, ppn2, done, now)
		bk.handlers[h] = done
		ta.l2Hits++
		ta.stallL2 += int64(done - now)
		return ppn2, done, true
	}

	// Merge with a walk in flight from another SM of the same tenant.
	if inf, ok := sc.l2Inflight.get(key); ok && inf.done > now {
		wait := inf.done
		if t3 > wait {
			wait = t3
		}
		done := s.xslice.Return(tlbPart, sm.id, sc.idx, wait)
		delete(bk.pendingMiss, key)
		bk.inflight.put(key, inf.ppn, done, now)
		bk.handlers[h] = done
		ta.stallWalk += int64(done - now)
		return inf.ppn, done, true
	}

	// Page-table walk through the slice's walker share; first touch
	// demand-pages from the slice's own frame allocator.
	wppn, faulted := tn.as.TouchSlice(vm.Addr(vpn)<<s.pageShift, sc.idx)
	lat := engine.Cycle(s.cfg.WalkLatency)
	if sc.pwc != nil {
		region := vm.VPN(vpn >> 9)
		if _, hit, _ := sc.pwc.LookupA(asid, 0, region); hit {
			lat = engine.Cycle(s.cfg.WalkLatency / vm.Levels)
			sc.pwcHits++
		} else {
			sc.pwc.InsertA(asid, 0, region, 0)
		}
	}
	if faulted {
		lat += engine.Cycle(s.cfg.PageFaultLatency)
	}
	poolCost := int(lat) / sc.walkers
	if poolCost < 1 {
		poolCost = 1
	}
	wstart := sc.walkerMeter.Reserve(t3, poolCost)
	wdone := wstart + lat
	sc.walks++
	ta.walks++
	if faulted {
		sc.faults++
		ta.faults++
	}
	s.sliceTraceWalk(sc, sm.id, vpn, wstart, wdone, faulted)

	sc.l2tlb.InsertA(asid, tn.slot, cvpn, wppn)
	delete(bk.pendingMiss, key)
	s.sliceTraceFill(sc, sm.id, vpn, wdone, "walk")
	sc.l2Inflight.put(key, wppn, wdone, now)
	done := s.xslice.Return(tlbPart, sm.id, sc.idx, wdone)
	bk.inflight.put(key, wppn, done, now)
	bk.handlers[h] = done
	if faulted {
		ta.stallFault += int64(done - now)
	} else {
		ta.stallWalk += int64(done - now)
	}
	return wppn, done, true
}

// dataMissSliced is dataMiss against one slice's resources: the sliced
// crossbar rings, the slice's sub-L2-cache, and its own DRAM partitions
// (the line's partition belongs to this slice by construction).
func (s *Simulator) dataMissSliced(sc *sliceCtx, sm *smState, phys cache.LineAddr, start engine.Cycle) engine.Cycle {
	t := start + engine.Cycle(s.cfg.L1Cache.HitLatency)
	part := s.mem.Partition(phys)
	arrive := s.xslice.Traverse(sm.id, sc.idx, part, t)
	t = arrive + engine.Cycle(s.cfg.L2Cache.HitLatency)
	if !sc.l2cache.Access(phys) {
		t = s.mem.Access(phys, t)
	}
	return s.xslice.Return(part, sm.id, sc.idx, t)
}

// smPass is Phase B for one shard: with every pending page and line of the
// segment resolved by the slice passes, apply the L1 fills and advance each
// deferred instruction exactly as applyMem would — but concurrently, since
// everything touched (the SM's L1 TLB, its queue, its shard counters) is
// shard-private.
func (s *Simulator) smPass(shard int, segStart, segEnd int) {
	sh := s.shards[shard]
	for i := segStart; i < segEnd; i++ {
		op := &sh.ops[i]
		if op.kind != opMem {
			continue
		}
		sh.smPassOps++
		pi := op.pi
		ws := pi.ws
		sm := ws.sm
		if pi.stage == 0 {
			resumeAt := pi.t + 1
			for j := range pi.pages {
				pp := &pi.pages[j]
				if pp.fill {
					sm.l1tlb.UpdateA(ws.asid, ws.slot, pp.vpn, pp.ppn)
					pp.fill = false
				}
				if pp.done > resumeAt {
					resumeAt = pp.done
				}
			}
			sh.queue.SchedulePri(resumeAt, shardPri(pi.t, schedClsPhase, pi.insIdx), ws.resume)
			continue
		}
		instDone := pi.localDone
		for j := range pi.lines {
			if d := pi.lines[j].done; d > instDone {
				instDone = d
			}
		}
		retire := pi.retire
		opT := pi.t
		ws.pi = nil
		sh.putPI(pi)
		if retire {
			if instDone > sh.lastDone {
				sh.lastDone = instDone
			}
			st := &sh.tenants[ws.asid]
			if instDone > st.lastDone {
				st.lastDone = instDone
			}
			sh.queue.SchedulePri(instDone, shardPri(opT, schedClsBarrier, 0), ws.retire)
			continue
		}
		sh.queue.SchedulePri(instDone, shardPri(opT, schedClsBarrier, 0), ws.wake)
	}
}

// sliceTraceFill buffers an L1-fill instant event (slice-pass counterpart
// of traceFill).
func (s *Simulator) sliceTraceFill(sc *sliceCtx, smID int, vpn vm.VPN, at engine.Cycle, src string) {
	if !s.tracer.Enabled() {
		return
	}
	sc.traceBuf = append(sc.traceBuf, sliceTraceEv{
		kind: sliceTrFill, sm: smID, vpn: int64(vpn), ts: int64(at), src: src,
	})
}

// sliceTraceWalk buffers one walk's complete event plus the slice walker
// pool's occupancy sample (slice-pass counterpart of traceWalk).
func (s *Simulator) sliceTraceWalk(sc *sliceCtx, smID int, vpn vm.VPN, start, done engine.Cycle, faulted bool) {
	if !s.tracer.Enabled() {
		return
	}
	live := sc.walkEnds[:0]
	for _, end := range sc.walkEnds {
		if end > start {
			live = append(live, end)
		}
	}
	sc.walkEnds = append(live, done)
	f := int64(0)
	if faulted {
		f = 1
	}
	sc.traceBuf = append(sc.traceBuf, sliceTraceEv{
		kind: sliceTrWalk, sm: smID, vpn: int64(vpn),
		ts: int64(start), dur: int64(done - start), fault: f,
		inUse: int64(len(sc.walkEnds)),
	})
}

// flushSliceTraces drains every slice's trace buffer into the tracer in
// slice order — a fixed order, so traces are identical at every worker
// count.
func (s *Simulator) flushSliceTraces() {
	if !s.tracer.Enabled() {
		return
	}
	for _, sc := range s.slices {
		for i := range sc.traceBuf {
			ev := &sc.traceBuf[i]
			switch ev.kind {
			case sliceTrWalk:
				s.tracer.Complete(s.tracePID, sc.walkTID, "walk", "walker",
					ev.ts, ev.dur,
					map[string]int64{"vpn": ev.vpn, "sm": int64(ev.sm), "fault": ev.fault})
				s.tracer.CounterEvent(s.tracePID, sc.ctrName, ev.ts,
					map[string]int64{"in_flight": ev.inUse})
			case sliceTrFill:
				s.tracer.Instant(s.tracePID, ev.sm, "l1tlb_fill_"+ev.src, "tlb",
					ev.ts, map[string]int64{"vpn": ev.vpn})
			case sliceTrEvict:
				s.tracer.Instant(s.tracePID, ev.sm, "l1tlb_evict", "tlb",
					ev.ts, map[string]int64{"vpn": ev.vpn})
			}
		}
		sc.traceBuf = sc.traceBuf[:0]
	}
}

// foldSliceEpoch folds every slice's epoch-delta counters into the
// simulator's registered counters and tenant totals, then zeroes them.
// Runs at the end of every epoch, before global events pop: the sampling
// callback and the controller tick read these counters, and they must see
// barrier-stable sums identical at every worker count and epoch length.
func (s *Simulator) foldSliceEpoch() {
	for _, sc := range s.slices {
		if sc.walks != 0 {
			s.walks.Add(sc.walks)
			sc.walks = 0
		}
		if sc.faults != 0 {
			s.faults.Add(sc.faults)
			sc.faults = 0
		}
		if sc.pwcHits != 0 {
			s.pwcHits.Add(sc.pwcHits)
			sc.pwcHits = 0
		}
		for ti := range sc.tenants {
			ta := &sc.tenants[ti]
			if *ta == (sliceTenant{}) {
				continue
			}
			tn := s.tenants[ti]
			tn.l2Hits += ta.l2Hits
			tn.walks += ta.walks
			tn.faults += ta.faults
			tn.stallL2 += ta.stallL2
			tn.stallWalk += ta.stallWalk
			tn.stallFault += ta.stallFault
			*ta = sliceTenant{}
		}
	}
}

// foldSlices folds the slices' structural stats into the registered
// monolithic components at the end of a run, so the stats tree and Result
// report combined activity from the usual nodes.
func (s *Simulator) foldSlices() {
	if !s.sliceActive {
		return
	}
	for _, sc := range s.slices {
		s.l2tlb.AddStats(sc.l2tlb.Stats())
		s.l2tlb.FoldMech(sc.l2tlb)
		s.l2cache.AddStats(sc.l2cache.Stats())
		if s.pwc != nil && sc.pwc != nil {
			s.pwc.AddStats(sc.pwc.Stats())
		}
		if err := s.transLatency.Merge(sc.transLat); err != nil {
			panic("sim: slice histogram shape mismatch: " + err.Error())
		}
	}
	s.xbar.AddCounts(s.xslice.Packets(), s.xslice.Stalls())
}
