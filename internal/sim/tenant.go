package sim

import (
	"errors"
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/engine"
	"gputlb/internal/sched"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// Tenant is one co-running kernel of a multi-tenant simulation. Its ASID is
// its index in the tenant slice passed to NewMulti.
type Tenant struct {
	// Name labels the tenant in results (usually the benchmark name).
	Name string
	// Kernel and AS are the tenant's trace and private UVM address space;
	// the pair must come from the same workload build.
	Kernel *trace.Kernel
	AS     *vm.AddressSpace
	// SMs lists the SM ids this tenant may dispatch TBs to (see
	// sched.AssignSMs for the stock policies); nil means every SM.
	SMs []int
}

// MultiOptions tunes the shared translation hardware of a multi-tenant run.
// The zero value leaves every structure fully shared.
type MultiOptions struct {
	// L2TLBPolicy selects how the shared L2 TLB treats tenants:
	// IndexByAddress (default) leaves it fully shared — ASID-tagged entries
	// in one common replacement pool; IndexByTB statically partitions its
	// sets per ASID; IndexByTBShared adds the paper's dynamic adjacent-set
	// sharing rule on top of the static partition, with the tenant in the
	// role the TB id plays in the single-kernel design.
	L2TLBPolicy arch.TLBIndexPolicy
	// Churn, when non-nil, adds tenants that arrive mid-run: the initial
	// tenants define the machine's slots, and arriving kernels are admitted
	// into slots freed by departures, queue while none is free, or are shed
	// when the queue is full — a MIG-like service under traffic.
	Churn *ChurnSpec
}

// ChurnArrival is one kernel arriving mid-run.
type ChurnArrival struct {
	// Tenant describes the arriving kernel. Its SMs field must be nil: an
	// admitted arrival inherits the SM list of the slot it lands in.
	Tenant Tenant
	// At is the arrival cycle (> 0). Arrivals must be sorted by At.
	At engine.Cycle
}

// ChurnSpec describes mid-run tenant traffic for NewMulti.
type ChurnSpec struct {
	// QueueCap bounds the admission queue: an arrival finding every slot
	// occupied waits here, and overflows beyond the cap are shed (dropped
	// deterministically, reported with Shed set in their TenantResult).
	QueueCap int
	// Arrivals lists the arriving kernels in arrival-cycle order.
	Arrivals []ChurnArrival
}

// TenantResult summarizes one tenant of a multi-tenant run. Stall counters
// sum the request-to-completion cycles of the tenant's translation
// requests, split by where the translation resolved — the per-tenant
// translation-stall breakdown of the interference experiments.
type TenantResult struct {
	ASID         vm.ASID `json:"asid"`
	Name         string  `json:"name"`
	Cycles       int64   `json:"cycles"` // completion of the tenant's last warp
	InstsIssued  int64   `json:"insts_issued"`
	PageRequests int64   `json:"page_requests"`
	L1TLBHits    int64   `json:"l1_tlb_hits"`
	L2TLBHits    int64   `json:"l2_tlb_hits"`
	Walks        int64   `json:"walks"`
	Faults       int64   `json:"faults"`
	StallL1      int64   `json:"stall_l1"`
	StallL2      int64   `json:"stall_l2"`
	StallWalk    int64   `json:"stall_walk"`
	StallFault   int64   `json:"stall_fault"`
	// StartCycle is the cycle the tenant began executing: 0 for the initial
	// tenants, the admission cycle for churn arrivals. WaitCycles is the
	// time an arrival spent in the admission queue. Shed marks an arrival
	// dropped on queue overflow (all its other counters are zero).
	StartCycle int64 `json:"start_cycle,omitempty"`
	WaitCycles int64 `json:"wait_cycles,omitempty"`
	Shed       bool  `json:"shed,omitempty"`
}

// IPC returns the tenant's instructions per cycle over its own elapsed
// runtime — from its start (admission, for churn arrivals) to the
// completion of its last warp, not the whole cell's runtime. Weighted
// speedup over a churn run depends on this: a tenant admitted late would
// otherwise be charged for cycles it never ran.
func (t TenantResult) IPC() float64 {
	elapsed := t.Cycles - t.StartCycle
	if elapsed <= 0 {
		return 0
	}
	return float64(t.InstsIssued) / float64(elapsed)
}

// L1TLBHitRate returns the tenant's private L1 TLB hit rate.
func (t TenantResult) L1TLBHitRate() float64 {
	if t.PageRequests == 0 {
		return 0
	}
	return float64(t.L1TLBHits) / float64(t.PageRequests)
}

// StallTotal sums the translation-stall breakdown.
func (t TenantResult) StallTotal() int64 {
	return t.StallL1 + t.StallL2 + t.StallWalk + t.StallFault
}

// tenantState is the simulator's per-tenant bookkeeping: the dispatch
// cursor over the tenant's kernel, its private address space, and the
// counters behind TenantResult. Single-tenant runs have exactly one, with
// ASID 0, spanning every SM — the pre-tenancy behaviour.
type tenantState struct {
	asid   vm.ASID
	name   string
	kernel *trace.Kernel
	as     *vm.AddressSpace
	sms    []int
	policy sched.Policy

	// slot is the machine slot the tenant occupies (its L2 TLB partition
	// index and SM-list index); without churn it equals the ASID. active
	// marks it as currently executing: initial tenants from cycle 0, churn
	// arrivals from admission to departure. Arrival tenants carry their
	// arrival cycle and, once admitted, their start cycle; shed marks an
	// arrival dropped on admission-queue overflow.
	slot       int
	active     bool
	isArrival  bool
	arriveAt   engine.Cycle
	startCycle engine.Cycle
	shed       bool

	nextTB   int
	cursor   int
	tbsDone  int
	lastDone engine.Cycle

	insts    int64
	pageReqs int64
	l1Hits   int64
	l2Hits   int64
	walks    int64
	faults   int64

	stallL1, stallL2, stallWalk, stallFault int64

	// statusBuf backs the TB scheduler's per-SM status vector, sized to the
	// tenant's SM list so dispatch stays allocation-free.
	statusBuf []sched.SMStatus
}

// result materializes the tenant's counters.
func (tn *tenantState) result() TenantResult {
	var wait int64
	if tn.isArrival && !tn.shed {
		wait = int64(tn.startCycle - tn.arriveAt)
	}
	return TenantResult{
		ASID:         tn.asid,
		Name:         tn.name,
		StartCycle:   int64(tn.startCycle),
		WaitCycles:   wait,
		Shed:         tn.shed,
		Cycles:       int64(tn.lastDone),
		InstsIssued:  tn.insts,
		PageRequests: tn.pageReqs,
		L1TLBHits:    tn.l1Hits,
		L2TLBHits:    tn.l2Hits,
		Walks:        tn.walks,
		Faults:       tn.faults,
		StallL1:      tn.stallL1,
		StallL2:      tn.stallL2,
		StallWalk:    tn.stallWalk,
		StallFault:   tn.stallFault,
	}
}

// phaseBarrier returns the tenant's first phase boundary not yet fully
// retired, or its grid size when none remains.
func (tn *tenantState) phaseBarrier() int {
	for _, b := range tn.kernel.PhaseStarts {
		if tn.tbsDone < b {
			return b
		}
	}
	return len(tn.kernel.TBs)
}

// asidKeyShift packs a tenant's ASID into unused high bits of the VPN keys
// of the MSHR/in-flight walk tables, so concurrent same-VPN misses from
// different tenants never merge. Trace VPNs sit far below 2^56 and
// vm.MaxTenants bounds the ASID, so the packed key never collides.
const asidKeyShift = 56

// tenantKey tags a VPN with its tenant for the in-flight tables.
func tenantKey(asid vm.ASID, vpn vm.VPN) vm.VPN {
	return vpn | vm.VPN(asid)<<asidKeyShift
}

// validateTenants checks a NewMulti tenant list against the configuration.
func validateTenants(cfg arch.Config, tenants []Tenant) error {
	if len(tenants) == 0 {
		return errors.New("sim: at least one tenant required")
	}
	if len(tenants) > vm.MaxTenants {
		return fmt.Errorf("sim: %d tenants exceeds the ASID limit of %d", len(tenants), vm.MaxTenants)
	}
	for i, tn := range tenants {
		if tn.Kernel == nil || tn.AS == nil {
			return fmt.Errorf("sim: tenant %d missing kernel or address space", i)
		}
		if tn.AS.PageShift() != cfg.PageShift() {
			return fmt.Errorf("sim: address space page shift %d does not match config %d",
				tn.AS.PageShift(), cfg.PageShift())
		}
		if len(tn.Kernel.TBs) == 0 {
			return fmt.Errorf("sim: kernel %q has no thread blocks", tn.Kernel.Name)
		}
		if err := tn.Kernel.ValidatePhases(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		for _, sm := range tn.SMs {
			if sm < 0 || sm >= cfg.NumSMs {
				return fmt.Errorf("sim: tenant %d assigned to SM %d outside [0,%d)", i, sm, cfg.NumSMs)
			}
		}
	}
	switch {
	case len(tenants) > 1:
		for i, tn := range tenants {
			if len(tn.SMs) == 0 {
				return fmt.Errorf("sim: tenant %d has no SMs assigned", i)
			}
		}
	}
	return nil
}

// validateChurn checks a churn spec against the configuration and the
// initial tenant count.
func validateChurn(cfg arch.Config, nInitial int, spec *ChurnSpec) error {
	if spec == nil {
		return nil
	}
	if nInitial < 2 {
		return errors.New("sim: churn requires at least two initial tenants (they define the slots)")
	}
	if spec.QueueCap < 0 {
		return fmt.Errorf("sim: negative admission queue capacity %d", spec.QueueCap)
	}
	if total := nInitial + len(spec.Arrivals); total > vm.MaxTenants {
		return fmt.Errorf("sim: %d tenants (initial + arrivals) exceeds the ASID limit of %d",
			total, vm.MaxTenants)
	}
	var last engine.Cycle
	for i, a := range spec.Arrivals {
		if a.At <= 0 {
			return fmt.Errorf("sim: arrival %d at cycle %d, must be positive", i, a.At)
		}
		if a.At < last {
			return fmt.Errorf("sim: arrival %d at cycle %d out of order (previous %d)", i, a.At, last)
		}
		last = a.At
		t := a.Tenant
		if t.Kernel == nil || t.AS == nil {
			return fmt.Errorf("sim: arrival %d missing kernel or address space", i)
		}
		if t.AS.PageShift() != cfg.PageShift() {
			return fmt.Errorf("sim: arrival %d address space page shift %d does not match config %d",
				i, t.AS.PageShift(), cfg.PageShift())
		}
		if len(t.Kernel.TBs) == 0 {
			return fmt.Errorf("sim: arrival kernel %q has no thread blocks", t.Kernel.Name)
		}
		if err := t.Kernel.ValidatePhases(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if t.SMs != nil {
			return fmt.Errorf("sim: arrival %d has an explicit SM list; arrivals inherit their slot's", i)
		}
	}
	return nil
}
