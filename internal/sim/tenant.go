package sim

import (
	"errors"
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/engine"
	"gputlb/internal/sched"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// Tenant is one co-running kernel of a multi-tenant simulation. Its ASID is
// its index in the tenant slice passed to NewMulti.
type Tenant struct {
	// Name labels the tenant in results (usually the benchmark name).
	Name string
	// Kernel and AS are the tenant's trace and private UVM address space;
	// the pair must come from the same workload build.
	Kernel *trace.Kernel
	AS     *vm.AddressSpace
	// SMs lists the SM ids this tenant may dispatch TBs to (see
	// sched.AssignSMs for the stock policies); nil means every SM.
	SMs []int
}

// MultiOptions tunes the shared translation hardware of a multi-tenant run.
// The zero value leaves every structure fully shared.
type MultiOptions struct {
	// L2TLBPolicy selects how the shared L2 TLB treats tenants:
	// IndexByAddress (default) leaves it fully shared — ASID-tagged entries
	// in one common replacement pool; IndexByTB statically partitions its
	// sets per ASID; IndexByTBShared adds the paper's dynamic adjacent-set
	// sharing rule on top of the static partition, with the tenant in the
	// role the TB id plays in the single-kernel design.
	L2TLBPolicy arch.TLBIndexPolicy
}

// TenantResult summarizes one tenant of a multi-tenant run. Stall counters
// sum the request-to-completion cycles of the tenant's translation
// requests, split by where the translation resolved — the per-tenant
// translation-stall breakdown of the interference experiments.
type TenantResult struct {
	ASID         vm.ASID `json:"asid"`
	Name         string  `json:"name"`
	Cycles       int64   `json:"cycles"` // completion of the tenant's last warp
	InstsIssued  int64   `json:"insts_issued"`
	PageRequests int64   `json:"page_requests"`
	L1TLBHits    int64   `json:"l1_tlb_hits"`
	L2TLBHits    int64   `json:"l2_tlb_hits"`
	Walks        int64   `json:"walks"`
	Faults       int64   `json:"faults"`
	StallL1      int64   `json:"stall_l1"`
	StallL2      int64   `json:"stall_l2"`
	StallWalk    int64   `json:"stall_walk"`
	StallFault   int64   `json:"stall_fault"`
}

// IPC returns the tenant's instructions per cycle over its own runtime.
func (t TenantResult) IPC() float64 {
	if t.Cycles == 0 {
		return 0
	}
	return float64(t.InstsIssued) / float64(t.Cycles)
}

// L1TLBHitRate returns the tenant's private L1 TLB hit rate.
func (t TenantResult) L1TLBHitRate() float64 {
	if t.PageRequests == 0 {
		return 0
	}
	return float64(t.L1TLBHits) / float64(t.PageRequests)
}

// StallTotal sums the translation-stall breakdown.
func (t TenantResult) StallTotal() int64 {
	return t.StallL1 + t.StallL2 + t.StallWalk + t.StallFault
}

// tenantState is the simulator's per-tenant bookkeeping: the dispatch
// cursor over the tenant's kernel, its private address space, and the
// counters behind TenantResult. Single-tenant runs have exactly one, with
// ASID 0, spanning every SM — the pre-tenancy behaviour.
type tenantState struct {
	asid   vm.ASID
	name   string
	kernel *trace.Kernel
	as     *vm.AddressSpace
	sms    []int
	policy sched.Policy

	nextTB   int
	cursor   int
	tbsDone  int
	lastDone engine.Cycle

	insts    int64
	pageReqs int64
	l1Hits   int64
	l2Hits   int64
	walks    int64
	faults   int64

	stallL1, stallL2, stallWalk, stallFault int64

	// statusBuf backs the TB scheduler's per-SM status vector, sized to the
	// tenant's SM list so dispatch stays allocation-free.
	statusBuf []sched.SMStatus
}

// result materializes the tenant's counters.
func (tn *tenantState) result() TenantResult {
	return TenantResult{
		ASID:         tn.asid,
		Name:         tn.name,
		Cycles:       int64(tn.lastDone),
		InstsIssued:  tn.insts,
		PageRequests: tn.pageReqs,
		L1TLBHits:    tn.l1Hits,
		L2TLBHits:    tn.l2Hits,
		Walks:        tn.walks,
		Faults:       tn.faults,
		StallL1:      tn.stallL1,
		StallL2:      tn.stallL2,
		StallWalk:    tn.stallWalk,
		StallFault:   tn.stallFault,
	}
}

// phaseBarrier returns the tenant's first phase boundary not yet fully
// retired, or its grid size when none remains.
func (tn *tenantState) phaseBarrier() int {
	for _, b := range tn.kernel.PhaseStarts {
		if tn.tbsDone < b {
			return b
		}
	}
	return len(tn.kernel.TBs)
}

// asidKeyShift packs a tenant's ASID into unused high bits of the VPN keys
// of the MSHR/in-flight walk tables, so concurrent same-VPN misses from
// different tenants never merge. Trace VPNs sit far below 2^56 and
// vm.MaxTenants bounds the ASID, so the packed key never collides.
const asidKeyShift = 56

// tenantKey tags a VPN with its tenant for the in-flight tables.
func tenantKey(asid vm.ASID, vpn vm.VPN) vm.VPN {
	return vpn | vm.VPN(asid)<<asidKeyShift
}

// validateTenants checks a NewMulti tenant list against the configuration.
func validateTenants(cfg arch.Config, tenants []Tenant) error {
	if len(tenants) == 0 {
		return errors.New("sim: at least one tenant required")
	}
	if len(tenants) > vm.MaxTenants {
		return fmt.Errorf("sim: %d tenants exceeds the ASID limit of %d", len(tenants), vm.MaxTenants)
	}
	for i, tn := range tenants {
		if tn.Kernel == nil || tn.AS == nil {
			return fmt.Errorf("sim: tenant %d missing kernel or address space", i)
		}
		if tn.AS.PageShift() != cfg.PageShift() {
			return fmt.Errorf("sim: address space page shift %d does not match config %d",
				tn.AS.PageShift(), cfg.PageShift())
		}
		if len(tn.Kernel.TBs) == 0 {
			return fmt.Errorf("sim: kernel %q has no thread blocks", tn.Kernel.Name)
		}
		if err := tn.Kernel.ValidatePhases(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		for _, sm := range tn.SMs {
			if sm < 0 || sm >= cfg.NumSMs {
				return fmt.Errorf("sim: tenant %d assigned to SM %d outside [0,%d)", i, sm, cfg.NumSMs)
			}
		}
	}
	switch {
	case len(tenants) > 1:
		for i, tn := range tenants {
			if len(tn.SMs) == 0 {
				return fmt.Errorf("sim: tenant %d has no SMs assigned", i)
			}
		}
	}
	return nil
}
