package sim

// White-box tests for the warp pick policies: greedy-then-oldest, loose
// round-robin, and the translation reuse-aware scheduler. Each policy is
// driven directly on a hand-built SM state so tie-breaking, empty-SM, and
// all-stalled behaviour are pinned down without running a full simulation.

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/tlb"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
)

// pickFixture builds a simulator shell and one SM sufficient for the pick
// functions: a real L1 TLB (for residency probes) and the 4KB page shift.
func pickFixture(t *testing.T) (*Simulator, *smState) {
	t.Helper()
	cfg := arch.Default()
	sm := &smState{
		id:       0,
		l1tlb:    tlb.New(cfg.L1TLB, tlb.Options{Policy: arch.IndexByAddress}),
		inflight: newInflightTable(arch.Default().TranslationMSHRs),
	}
	sm.l1tlb.ConfigureSlots(4)
	return &Simulator{cfg: cfg, pageShift: 12}, sm
}

// computeWarp returns a ready warp whose next instruction is pure compute.
func computeWarp(sm *smState, seq int64) *warpState {
	return &warpState{sm: sm, seq: seq, insts: []trace.Inst{{Compute: 1}}}
}

// memWarp returns a ready warp whose next instruction loads one page.
func memWarp(sm *smState, seq int64, vpn vm.VPN) *warpState {
	return &warpState{sm: sm, seq: seq, insts: []trace.Inst{{Addrs: []vm.Addr{vm.Addr(vpn) << 12}}}}
}

func seqOf(sm *smState, idx int) int64 {
	if idx < 0 {
		return -1
	}
	return sm.ready[idx].seq
}

func TestPickGTO(t *testing.T) {
	tests := []struct {
		name    string
		seqs    []int64
		last    int // index into seqs made the greedy warp, -1 for none
		wantSeq int64
	}{
		{"empty SM", nil, -1, -1},
		{"single warp", []int64{7}, -1, 7},
		{"oldest wins", []int64{5, 2, 9}, -1, 2},
		{"greedy beats oldest", []int64{5, 2, 9}, 2, 9},
		{"greedy is also oldest", []int64{5, 2, 9}, 1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, sm := pickFixture(t)
			for _, q := range tt.seqs {
				sm.ready = append(sm.ready, computeWarp(sm, q))
			}
			if tt.last >= 0 {
				sm.last = sm.ready[tt.last]
			}
			if got := seqOf(sm, s.pickGTO(sm)); got != tt.wantSeq {
				t.Errorf("pickGTO chose seq %d, want %d", got, tt.wantSeq)
			}
		})
	}
}

func TestPickLRR(t *testing.T) {
	tests := []struct {
		name    string
		seqs    []int64
		cursor  int64
		wantSeq int64
	}{
		{"empty SM", nil, 0, -1},
		{"smallest above cursor", []int64{3, 1, 2}, 1, 2},
		{"cursor at zero picks above it", []int64{3, 1, 2}, 0, 1},
		{"highest above cursor only", []int64{3, 1, 2}, 2, 3},
		{"wraps to oldest when none above", []int64{3, 1, 2}, 5, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, sm := pickFixture(t)
			for _, q := range tt.seqs {
				sm.ready = append(sm.ready, computeWarp(sm, q))
			}
			sm.rrCursor = tt.cursor
			if got := seqOf(sm, s.pickLRR(sm)); got != tt.wantSeq {
				t.Errorf("pickLRR chose seq %d, want %d", got, tt.wantSeq)
			}
		})
	}
}

func TestPickTransAwarePrefersResident(t *testing.T) {
	s, sm := pickFixture(t)
	// Older warp needs a fresh translation; younger compute warp does not.
	sm.ready = []*warpState{memWarp(sm, 1, 100), computeWarp(sm, 2)}
	if got := seqOf(sm, s.pickTransAware(sm)); got != 2 {
		t.Errorf("chose seq %d, want the translation-free warp (2)", got)
	}
	// Once the page is TLB-resident, the older mem warp wins again.
	sm.l1tlb.Insert(0, 100, 1)
	if got := seqOf(sm, s.pickTransAware(sm)); got != 1 {
		t.Errorf("chose seq %d, want the resident mem warp (1)", got)
	}
}

func TestPickTransAwareGreedyShortCircuit(t *testing.T) {
	s, sm := pickFixture(t)
	sm.ready = []*warpState{computeWarp(sm, 1), computeWarp(sm, 5)}
	sm.last = sm.ready[1]
	// Both are translation-free; the greedy (last-issued) warp wins over the
	// older one, mirroring GTO.
	if got := seqOf(sm, s.pickTransAware(sm)); got != 5 {
		t.Errorf("chose seq %d, want the greedy warp (5)", got)
	}
}

func TestPickTransAwareAllStalledFallsBackToGTO(t *testing.T) {
	s, sm := pickFixture(t)
	// Every ready warp needs a new translation: no warp qualifies, so the
	// policy must degrade to plain greedy-then-oldest.
	sm.ready = []*warpState{memWarp(sm, 4, 100), memWarp(sm, 2, 101), memWarp(sm, 3, 102)}
	if got := seqOf(sm, s.pickTransAware(sm)); got != 2 {
		t.Errorf("chose seq %d, want GTO's oldest (2)", got)
	}
	if got := seqOf(sm, s.pickTransAware(sm)); got != 2 {
		t.Errorf("pick is not stable: chose seq %d on repeat", got)
	}
}

func TestPickTransAwareEmptySM(t *testing.T) {
	s, sm := pickFixture(t)
	if got := s.pickTransAware(sm); got != -1 {
		t.Errorf("pickTransAware on empty SM = %d, want -1", got)
	}
}

func TestPickTransAwareProbeBound(t *testing.T) {
	s, sm := pickFixture(t)
	// Nine non-resident mem warps ahead of a resident one: the bounded probe
	// budget (8) runs out before the resident warp is examined, so the
	// scheduler falls back to GTO's oldest instead of scanning the whole pool.
	for i := 0; i < 9; i++ {
		sm.ready = append(sm.ready, memWarp(sm, int64(i+10), vm.VPN(200+i)))
	}
	sm.l1tlb.Insert(0, 300, 1)
	sm.ready = append(sm.ready, memWarp(sm, 1, 300)) // oldest AND resident, but beyond probes
	if got := seqOf(sm, s.pickTransAware(sm)); got != 1 {
		// GTO's oldest is seq 1 here too, so the fallback still lands on it.
		t.Errorf("chose seq %d, want GTO fallback (1)", got)
	}
	// With the resident warp inside the probe window it is chosen directly.
	sm.ready = []*warpState{memWarp(sm, 9, 400), memWarp(sm, 3, 300)}
	if got := seqOf(sm, s.pickTransAware(sm)); got != 3 {
		t.Errorf("chose seq %d, want the resident warp (3)", got)
	}
}
