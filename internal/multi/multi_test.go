package multi

import (
	"reflect"
	"testing"

	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

func testOpt(mode TLBMode) Options {
	return Options{
		Params:  workloads.Params{PageShift: 12, Seed: 1, Scale: 0.1},
		TLBMode: mode,
	}
}

func TestTLBModeStrings(t *testing.T) {
	for _, m := range []TLBMode{TLBSharedMode, TLBStaticMode, TLBDynamicMode} {
		back, err := ParseTLBMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v -> %q -> %v, %v", m, m.String(), back, err)
		}
	}
	if _, err := ParseTLBMode("exclusive"); err == nil {
		t.Error("unknown TLB mode accepted")
	}
}

func TestCoRunDeterministic(t *testing.T) {
	r1, err := CoRun([]string{"bfs", "atax"}, testOpt(TLBDynamicMode))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CoRun([]string{"bfs", "atax"}, testOpt(TLBDynamicMode))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || !reflect.DeepEqual(r1.Tenants, r2.Tenants) {
		t.Errorf("identical co-runs diverged:\n %+v\n %+v", r1.Tenants, r2.Tenants)
	}
}

func TestCoRunTenantOrderAndNames(t *testing.T) {
	benches := []string{"mis", "pagerank", "gemm"}
	r, err := CoRun(benches, testOpt(TLBSharedMode))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tenants) != len(benches) {
		t.Fatalf("Tenants = %d, want %d", len(r.Tenants), len(benches))
	}
	for i, tr := range r.Tenants {
		if int(tr.ASID) != i || tr.Name != benches[i] {
			t.Errorf("tenant %d = ASID %d %q, want ASID %d %q", i, tr.ASID, tr.Name, i, benches[i])
		}
	}
}

func TestCoRunErrors(t *testing.T) {
	if _, err := CoRun([]string{"bfs"}, testOpt(TLBSharedMode)); err == nil {
		t.Error("single-benchmark co-run accepted")
	}
	if _, err := CoRun([]string{"bfs", "nope"}, testOpt(TLBSharedMode)); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSoloMatchesSingleKernelRun(t *testing.T) {
	// Solo is the weighted-speedup denominator: it must be the plain
	// single-kernel simulation of the same build.
	opt := testOpt(TLBSharedMode)
	r, err := Solo("atax", opt)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := workloads.ByName("atax")
	k, as := s.Build(opt.params())
	want, err := sim.Run(opt.config(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != want.Cycles || r.InstsIssued != want.InstsIssued {
		t.Errorf("Solo diverged from sim.Run: %d/%d vs %d/%d cycles/insts",
			r.Cycles, r.InstsIssued, want.Cycles, want.InstsIssued)
	}
	if got := SoloIPC(r); got != float64(r.InstsIssued)/float64(r.Cycles) {
		t.Errorf("SoloIPC = %f", got)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	tenants := []sim.TenantResult{
		{Cycles: 100, InstsIssued: 50}, // IPC 0.5
		{Cycles: 200, InstsIssued: 50}, // IPC 0.25
	}
	got := WeightedSpeedup(tenants, []float64{1.0, 0.5})
	if want := 0.5 + 0.5; got != want {
		t.Errorf("WeightedSpeedup = %f, want %f", got, want)
	}
	// Zero or missing solo IPCs contribute nothing rather than dividing by
	// zero.
	if got := WeightedSpeedup(tenants, []float64{0, 0.5}); got != 0.5 {
		t.Errorf("WeightedSpeedup with zero solo = %f, want 0.5", got)
	}
	if got := WeightedSpeedup(tenants, []float64{1.0}); got != 0.5 {
		t.Errorf("WeightedSpeedup with short solo slice = %f, want 0.5", got)
	}
}

func TestCoRunInstructionCountsMatchSolo(t *testing.T) {
	// Interference changes timing, never the work: each tenant retires
	// exactly its solo instruction count.
	opt := testOpt(TLBStaticMode)
	r, err := CoRun([]string{"bfs", "atax"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"bfs", "atax"} {
		solo, err := Solo(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Tenants[i].InstsIssued != solo.InstsIssued {
			t.Errorf("%s co-run issued %d insts, solo %d", name, r.Tenants[i].InstsIssued, solo.InstsIssued)
		}
	}
}
