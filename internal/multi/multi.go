package multi

import (
	"fmt"

	"gputlb/internal/arch"
	"gputlb/internal/control"
	"gputlb/internal/engine"
	"gputlb/internal/sched"
	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// TLBMode selects how the shared L2 TLB treats co-running tenants.
type TLBMode int

const (
	// TLBSharedMode leaves the L2 TLB fully shared: ASID-tagged entries in
	// one common replacement pool, tenants free to thrash each other.
	TLBSharedMode TLBMode = iota
	// TLBStaticMode statically partitions the L2 TLB's sets per ASID
	// (the paper's TB-id partitioning with the tenant in the TB's role).
	TLBStaticMode
	// TLBDynamicMode is the static partition plus the paper's dynamic
	// adjacent-set sharing rule: a tenant whose partition stops yielding
	// hits spills into its neighbour's sets until the neighbour pushes back.
	TLBDynamicMode
	// TLBControllerMode starts from the static partition and attaches the
	// online partitioning controller (internal/control): set ownership and
	// SM assignment are repartitioned at runtime from per-tenant translation
	// metrics, and rebalanced on tenant arrivals and departures.
	TLBControllerMode
)

// String implements fmt.Stringer.
func (m TLBMode) String() string {
	switch m {
	case TLBSharedMode:
		return "shared"
	case TLBStaticMode:
		return "static"
	case TLBDynamicMode:
		return "dynamic"
	case TLBControllerMode:
		return "controller"
	default:
		return fmt.Sprintf("TLBMode(%d)", int(m))
	}
}

// ParseTLBMode maps a mode name back to its value.
func ParseTLBMode(name string) (TLBMode, error) {
	switch name {
	case "shared":
		return TLBSharedMode, nil
	case "static":
		return TLBStaticMode, nil
	case "dynamic":
		return TLBDynamicMode, nil
	case "controller":
		return TLBControllerMode, nil
	}
	return 0, fmt.Errorf("multi: unknown TLB mode %q", name)
}

// l2Policy translates the mode into the TLB's index policy.
func (m TLBMode) l2Policy() arch.TLBIndexPolicy {
	switch m {
	case TLBStaticMode, TLBControllerMode:
		return arch.IndexByTB
	case TLBDynamicMode:
		return arch.IndexByTBShared
	default:
		return arch.IndexByAddress
	}
}

// Options configures one co-run cell.
type Options struct {
	// Base is the hardware configuration; the zero value means
	// arch.Default(). Solo reference runs use the same configuration with
	// the whole GPU, so co-run vs solo isolates the interference.
	Base *arch.Config
	// Params configures workload construction; its PageShift must match
	// Base. The zero value means workloads.DefaultParams().
	Params workloads.Params
	// SMPolicy divides the SMs among tenants (default spatial split).
	SMPolicy sched.SMAssignment
	// TLBMode selects the shared L2 TLB's tenancy policy (default shared).
	TLBMode TLBMode
	// CellParallel selects the intra-cell engine: 0 or 1 keeps the serial
	// engine; n >= 2 runs the sharded epoch-barrier engine with up to n
	// worker goroutines (bit-identical across all n >= 2).
	CellParallel int
	// L2Slices partitions the sharded engine's barrier into K independent
	// address slices (sim.SetL2Slices); 0 or 1 keeps the monolithic
	// barrier. Effective only with CellParallel >= 2.
	L2Slices int
	// Control overrides the controller configuration under
	// TLBControllerMode (nil means control.DefaultConfig()); ignored for
	// the other modes.
	Control *control.Config
	// Churn, when non-nil, adds benchmarks arriving mid-run through a
	// bounded admission queue.
	Churn *Churn
}

// Arrival is one benchmark arriving mid-run.
type Arrival struct {
	Bench string
	At    int64
}

// Churn describes mid-run tenant traffic for CoRun.
type Churn struct {
	// QueueCap bounds the admission queue; overflow arrivals are shed.
	QueueCap int
	// Arrivals lists the arriving benchmarks in arrival-cycle order.
	Arrivals []Arrival
}

// config resolves the base configuration.
func (o Options) config() arch.Config {
	if o.Base != nil {
		return *o.Base
	}
	return arch.Default()
}

// params resolves the workload parameters.
func (o Options) params() workloads.Params {
	if o.Params == (workloads.Params{}) {
		return workloads.DefaultParams()
	}
	return o.Params
}

// Tenants builds the sim.Tenant list for the named benchmarks under the
// options' SM assignment: tenant i is benches[i] with ASID i.
func Tenants(benches []string, opt Options) ([]sim.Tenant, error) {
	if len(benches) < 2 {
		return nil, fmt.Errorf("multi: need at least 2 tenants, got %d", len(benches))
	}
	cfg := opt.config()
	assign := sched.AssignSMs(opt.SMPolicy, cfg.NumSMs, len(benches))
	tenants := make([]sim.Tenant, len(benches))
	for i, name := range benches {
		k, as, ok := workloads.CachedByName(name, opt.params())
		if !ok {
			return nil, fmt.Errorf("multi: unknown benchmark %q", name)
		}
		tenants[i] = sim.Tenant{Name: name, Kernel: k, AS: as, SMs: assign[i]}
	}
	return tenants, nil
}

// CoRun simulates the named benchmarks concurrently on one GPU and returns
// the combined result; Result.Tenants holds the per-tenant breakdown in
// benches order. Deterministic: the same benches, options, and seed always
// produce bit-identical results.
func CoRun(benches []string, opt Options) (sim.Result, error) {
	tenants, err := Tenants(benches, opt)
	if err != nil {
		return sim.Result{}, err
	}
	mopt := sim.MultiOptions{L2TLBPolicy: opt.TLBMode.l2Policy()}
	if opt.Churn != nil {
		spec := &sim.ChurnSpec{QueueCap: opt.Churn.QueueCap}
		for _, a := range opt.Churn.Arrivals {
			k, as, ok := workloads.CachedByName(a.Bench, opt.params())
			if !ok {
				return sim.Result{}, fmt.Errorf("multi: unknown benchmark %q", a.Bench)
			}
			spec.Arrivals = append(spec.Arrivals, sim.ChurnArrival{
				Tenant: sim.Tenant{Name: a.Bench, Kernel: k, AS: as},
				At:     engine.Cycle(a.At),
			})
		}
		mopt.Churn = spec
	}
	s, err := sim.NewMulti(opt.config(), tenants, mopt)
	if err != nil {
		return sim.Result{}, err
	}
	if opt.TLBMode == TLBControllerMode {
		cc := control.DefaultConfig()
		if opt.Control != nil {
			cc = *opt.Control
		}
		if _, err := s.AttachController(cc); err != nil {
			return sim.Result{}, err
		}
	}
	s.SetCellParallel(opt.CellParallel)
	s.SetL2Slices(opt.L2Slices)
	return s.Run(), nil
}

// Solo simulates one benchmark alone on the whole GPU under the options'
// base configuration — the reference run weighted speedup divides by.
func Solo(bench string, opt Options) (sim.Result, error) {
	k, as, ok := workloads.CachedByName(bench, opt.params())
	if !ok {
		return sim.Result{}, fmt.Errorf("multi: unknown benchmark %q", bench)
	}
	s, err := sim.New(opt.config(), k, as)
	if err != nil {
		return sim.Result{}, err
	}
	s.SetCellParallel(opt.CellParallel)
	s.SetL2Slices(opt.L2Slices)
	return s.Run(), nil
}

// WeightedSpeedup is the standard multi-programming throughput metric:
// the sum over tenants of IPC_co-run / IPC_solo. soloIPC[i] must be tenant
// i's solo IPC under the same base configuration. A value of n (the tenant
// count) would mean zero interference; higher values mean co-running beats
// time-slicing the GPU. Shed tenants (churn admission-queue overflow) never
// ran and are skipped; tenants that ran for only part of the cell are
// scored over their own elapsed cycles (TenantResult.IPC).
func WeightedSpeedup(tenants []sim.TenantResult, soloIPC []float64) float64 {
	var ws float64
	for i, tn := range tenants {
		if tn.Shed {
			continue
		}
		if i < len(soloIPC) && soloIPC[i] > 0 {
			ws += tn.IPC() / soloIPC[i]
		}
	}
	return ws
}

// SoloIPC extracts the IPC of a solo reference run.
func SoloIPC(r sim.Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.InstsIssued) / float64(r.Cycles)
}
