// Package multi runs several kernels concurrently on one simulated GPU —
// the multi-tenant layer over the single-kernel simulator core.
//
// Each tenant is one benchmark workload with its own private UVM address
// space; an ASID (the tenant's index) rides with every translation through
// the L1 TLBs, the shared L2 TLB, the page-walk cache, and the in-flight
// walker state, so tenants contend for translation capacity without ever
// aliasing each other's pages. Two policy axes shape the contention:
//
//   - SM assignment (sched.SMAssignment): spatial split, interleaved
//     stripes, or fully shared SMs.
//   - L2 TLB mode (TLBMode): fully shared, statically partitioned per
//     ASID, or partitioned with the paper's dynamic adjacent-set sharing
//     rule — the TB-id partitioning machinery with the tenant in the TB's
//     role.
//
// CoRun builds the tenants and runs one co-run cell; Solo runs one tenant
// alone on the whole GPU under the same base configuration, which is the
// reference for WeightedSpeedup. The co-run experiment grid over workload
// pairs lives in internal/experiments (MultiGrid) and is surfaced by
// `evaluate -fig multi` and the gputlbd job runner.
package multi
