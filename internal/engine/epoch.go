package engine

import (
	"sync/atomic"
)

// ShardFunc advances one shard's event stream up to (but excluding) the
// epoch limit. The runner guarantees each shard index is passed to exactly
// one call per epoch, and that every call of an epoch returns before
// RunEpoch does — so a ShardFunc may freely mutate shard-owned state
// without locks as long as it never touches another shard's.
type ShardFunc func(shard int, limit Cycle)

// EpochRunner executes a fixed set of shards epoch by epoch across a worker
// pool. Shards are claimed dynamically (an atomic cursor), so the mapping
// of shards to workers varies run to run — which is exactly why a ShardFunc
// must depend only on its own shard's state: outcomes are then a pure
// function of (shard, limit) and the results are bit-identical at any
// worker count, including one.
//
// With one worker (or one shard) the runner degenerates to a plain loop on
// the calling goroutine: no goroutines, no synchronization, no allocation.
// With more, workers are started once and reused for every epoch; a
// RunEpoch costs two channel operations per worker and allocates nothing.
type EpochRunner struct {
	shards  int
	workers int
	fn      ShardFunc

	next  atomic.Int64 // shard-claim cursor for the current epoch
	start []chan Cycle // per-worker epoch kick, carries the limit
	done  chan struct{}
	open  bool
}

// NewEpochRunner builds a runner over `shards` shards with up to `workers`
// concurrent workers (capped at the shard count; values below 2 mean the
// caller's goroutine runs every shard serially). fn is invoked once per
// shard per epoch.
func NewEpochRunner(shards, workers int, fn ShardFunc) *EpochRunner {
	if shards < 1 {
		panic("engine: EpochRunner needs at least one shard")
	}
	if workers > shards {
		workers = shards
	}
	r := &EpochRunner{shards: shards, workers: workers, fn: fn}
	if workers < 2 {
		return r
	}
	r.start = make([]chan Cycle, workers)
	r.done = make(chan struct{}, workers)
	for w := range r.start {
		r.start[w] = make(chan Cycle)
		go r.worker(r.start[w])
	}
	r.open = true
	return r
}

// worker is one pool goroutine: it waits for an epoch kick, claims shards
// until the cursor runs out, and signals completion. The channel receive
// and send establish the happens-before edges that make the coordinator's
// reads of shard state race-free.
func (r *EpochRunner) worker(kick chan Cycle) {
	for limit := range kick {
		for {
			i := r.next.Add(1) - 1
			if i >= int64(r.shards) {
				break
			}
			r.fn(int(i), limit)
		}
		r.done <- struct{}{}
	}
}

// RunEpoch runs every shard once up to limit and returns when all have
// finished. Calls are serial: the caller is the barrier.
func (r *EpochRunner) RunEpoch(limit Cycle) {
	if r.start == nil {
		for i := 0; i < r.shards; i++ {
			r.fn(i, limit)
		}
		return
	}
	r.next.Store(0)
	for _, kick := range r.start {
		kick <- limit
	}
	for range r.start {
		<-r.done
	}
}

// Close stops the worker goroutines. The runner must not be used after
// Close; calling Close twice is safe.
func (r *EpochRunner) Close() {
	if !r.open {
		return
	}
	r.open = false
	for _, kick := range r.start {
		close(kick)
	}
}
