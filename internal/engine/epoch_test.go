package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestEpochRunnerCoversEveryShard: every shard index is visited exactly once
// per epoch, at every worker count.
func TestEpochRunnerCoversEveryShard(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const shards = 16
		var visits [shards]atomic.Int64
		r := NewEpochRunner(shards, workers, func(i int, limit Cycle) {
			visits[i].Add(1)
			if limit != 40 {
				t.Errorf("workers=%d: shard %d got limit %d, want 40", workers, i, limit)
			}
		})
		const epochs = 50
		for e := 0; e < epochs; e++ {
			r.RunEpoch(40)
		}
		r.Close()
		for i := range visits {
			if got := visits[i].Load(); got != epochs {
				t.Errorf("workers=%d: shard %d visited %d times over %d epochs", workers, i, got, epochs)
			}
		}
	}
}

// TestEpochRunnerShardIsolation: per-shard state mutated inside ShardFunc is
// identical regardless of worker count — the determinism contract the
// simulator builds on. Each shard folds the epoch limits it saw into a
// little hash; any cross-shard interference or missed epoch changes it.
func TestEpochRunnerShardIsolation(t *testing.T) {
	const shards = 11
	run := func(workers int) [shards]uint64 {
		var state [shards]uint64
		r := NewEpochRunner(shards, workers, func(i int, limit Cycle) {
			state[i] = state[i]*1099511628211 + uint64(limit) + uint64(i)
		})
		defer r.Close()
		for e := 1; e <= 200; e++ {
			r.RunEpoch(Cycle(e * 7))
		}
		return state
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
		if got := run(workers); got != want {
			t.Errorf("shard state diverged at %d workers", workers)
		}
	}
}

// TestEpochRunnerSerialPathNoGoroutines: worker counts below 2 must not
// spawn goroutines or allocate per epoch.
func TestEpochRunnerSerialPathNoAlloc(t *testing.T) {
	n := 0
	r := NewEpochRunner(4, 1, func(int, Cycle) { n++ })
	defer r.Close()
	allocs := testing.AllocsPerRun(100, func() { r.RunEpoch(1) })
	if allocs != 0 {
		t.Errorf("serial RunEpoch allocated %.1f times, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("shard fn never ran")
	}
}

// TestEpochRunnerParallelPathNoAlloc: the pooled path reuses its channels;
// steady-state epochs allocate nothing.
func TestEpochRunnerParallelPathNoAlloc(t *testing.T) {
	r := NewEpochRunner(8, 4, func(int, Cycle) {})
	defer r.Close()
	r.RunEpoch(1) // warm the pool
	allocs := testing.AllocsPerRun(100, func() { r.RunEpoch(2) })
	// Channel ops don't allocate; tolerate scheduler noise of a fraction of
	// an alloc per run.
	if allocs > 0.5 {
		t.Errorf("pooled RunEpoch allocated %.2f times per epoch, want ~0", allocs)
	}
}

// TestEpochRunnerWorkerCap: more workers than shards must still cover every
// shard exactly once (the pool is capped at the shard count).
func TestEpochRunnerWorkerCap(t *testing.T) {
	var visits [3]atomic.Int64
	r := NewEpochRunner(3, 16, func(i int, _ Cycle) { visits[i].Add(1) })
	r.RunEpoch(10)
	r.Close()
	for i := range visits {
		if got := visits[i].Load(); got != 1 {
			t.Errorf("shard %d visited %d times, want 1", i, got)
		}
	}
}

// TestEpochRunnerCloseIdempotent: Close twice is safe, including on the
// serial path.
func TestEpochRunnerCloseIdempotent(t *testing.T) {
	r := NewEpochRunner(2, 4, func(int, Cycle) {})
	r.RunEpoch(1)
	r.Close()
	r.Close()
	s := NewEpochRunner(2, 1, func(int, Cycle) {})
	s.Close()
	s.Close()
}
