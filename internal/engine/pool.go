package engine

import (
	"sync/atomic"
)

// Pool is a persistent worker pool for barrier-phase fan-out: Run(n, fn)
// invokes fn(i) for every i in [0, n) across the workers and returns when
// all calls have finished. Unlike EpochRunner, the task count and function
// vary call to call, which is what the sliced barrier needs — one call
// fans out over the address slices, the next over the SMs.
//
// Work items are claimed through an atomic cursor, so the item-to-worker
// mapping varies run to run; fn must therefore only mutate state owned by
// its item index. With fewer than two workers (or fewer than two items)
// Run degenerates to a plain loop on the calling goroutine. The channel
// handshake around each Run establishes the happens-before edges that make
// the caller's subsequent reads of item state race-free.
type Pool struct {
	workers int
	fn      func(int)
	n       int64
	next    atomic.Int64
	start   []chan struct{}
	done    chan struct{}
	open    bool
}

// NewPool builds a pool with up to `workers` concurrent workers. Values
// below 2 mean every Run executes serially on the caller's goroutine.
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers < 2 {
		return p
	}
	p.start = make([]chan struct{}, workers)
	p.done = make(chan struct{}, workers)
	for w := range p.start {
		p.start[w] = make(chan struct{})
		go p.worker(p.start[w])
	}
	p.open = true
	return p
}

func (p *Pool) worker(kick chan struct{}) {
	for range kick {
		for {
			i := p.next.Add(1) - 1
			if i >= p.n {
				break
			}
			p.fn(int(i))
		}
		p.done <- struct{}{}
	}
}

// Run invokes fn(i) for every i in [0, n) and returns when all calls have
// finished. Calls are serial: the caller is the barrier. fn and n are
// published to the workers through the kick channels, so Run must not be
// called concurrently with itself.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p.start == nil || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.fn = fn
	p.n = int64(n)
	p.next.Store(0)
	kicks := p.start
	if n < len(kicks) {
		kicks = kicks[:n]
	}
	for _, kick := range kicks {
		kick <- struct{}{}
	}
	for range kicks {
		<-p.done
	}
	p.fn = nil
}

// Close stops the worker goroutines. The pool must not be used after
// Close; calling Close twice is safe.
func (p *Pool) Close() {
	if !p.open {
		return
	}
	p.open = false
	for _, kick := range p.start {
		close(kick)
	}
}
