package engine

// Cycle is a point in simulated time, in GPU core clock cycles.
type Cycle int64

// Event is a callback scheduled to run at a specific cycle.
type Event struct {
	At Cycle
	Fn func()

	pri uint64 // tie-break: explicit priority among same-cycle events
	seq int64  // tie-break: FIFO among same-cycle, same-priority events
}

// before is the heap order: earliest cycle first, then priority, then
// insertion order. Schedule leaves every event at priority zero, so plain
// queues order purely by (cycle, insertion) — SchedulePri callers opt into
// the middle key.
func (e Event) before(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.pri != o.pri {
		return e.pri < o.pri
	}
	return e.seq < o.seq
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue struct {
	h       []Event
	nextSeq int64
}

// Schedule enqueues fn to run at cycle at. Scheduling in the past (before the
// last popped cycle) is the caller's bug; the queue does not detect it, the
// simulator's Run loop does.
func (q *Queue) Schedule(at Cycle, fn func()) {
	q.h = append(q.h, Event{At: at, Fn: fn, seq: q.nextSeq})
	q.nextSeq++
	q.up(len(q.h) - 1)
}

// SchedulePri enqueues fn to run at cycle at with an explicit same-cycle
// priority: events at equal cycles run in ascending pri, insertion order
// within equal pri. The sharded engine uses this to order same-cycle events
// by when they were *logically* produced rather than by which epoch barrier
// happened to insert them.
func (q *Queue) SchedulePri(at Cycle, pri uint64, fn func()) {
	q.h = append(q.h, Event{At: at, Fn: fn, pri: pri, seq: q.nextSeq})
	q.nextSeq++
	q.up(len(q.h) - 1)
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event. It panics if the
// queue is empty; check Len first.
func (q *Queue) NextCycle() Cycle {
	if len(q.h) == 0 {
		panic("engine: NextCycle on empty queue")
	}
	return q.h[0].At
}

// Pop removes and returns the earliest event.
func (q *Queue) Pop() Event {
	if len(q.h) == 0 {
		panic("engine: Pop on empty queue")
	}
	ev := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = Event{} // release the Fn reference
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
	return ev
}

// RunUntil fires every event with At <= limit, in order.
func (q *Queue) RunUntil(limit Cycle) {
	for len(q.h) > 0 && q.h[0].At <= limit {
		q.Pop().Fn()
	}
}

// up restores the heap property from child i toward the root.
func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// down restores the heap property from parent i toward the leaves.
func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && q.h[r].before(q.h[l]) {
			least = r
		}
		if !q.h[least].before(q.h[i]) {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
