// Package engine provides the discrete-event core shared by the timing
// simulator: a cycle clock and a deterministic min-heap event queue. Events
// scheduled for the same cycle fire in insertion order so simulations are
// bit-reproducible.
package engine

import "container/heap"

// Cycle is a point in simulated time, in GPU core clock cycles.
type Cycle int64

// Event is a callback scheduled to run at a specific cycle.
type Event struct {
	At Cycle
	Fn func()

	seq   int64 // tie-break: FIFO among same-cycle events
	index int   // heap bookkeeping
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue struct {
	h       eventHeap
	nextSeq int64
}

// Schedule enqueues fn to run at cycle at. Scheduling in the past (before the
// last popped cycle) is the caller's bug; the queue does not detect it, the
// simulator's Run loop does.
func (q *Queue) Schedule(at Cycle, fn func()) {
	ev := &Event{At: at, Fn: fn, seq: q.nextSeq}
	q.nextSeq++
	heap.Push(&q.h, ev)
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event. It panics if the
// queue is empty; check Len first.
func (q *Queue) NextCycle() Cycle {
	if len(q.h) == 0 {
		panic("engine: NextCycle on empty queue")
	}
	return q.h[0].At
}

// Pop removes and returns the earliest event.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		panic("engine: Pop on empty queue")
	}
	return heap.Pop(&q.h).(*Event)
}

// RunUntil fires every event with At <= limit, in order.
func (q *Queue) RunUntil(limit Cycle) {
	for len(q.h) > 0 && q.h[0].At <= limit {
		q.Pop().Fn()
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
