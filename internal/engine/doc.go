// Package engine provides the discrete-event core shared by the timing
// simulator: a cycle clock and a deterministic min-heap event queue. Events
// scheduled for the same cycle fire in insertion order so simulations are
// bit-reproducible.
//
// The queue stores events by value in a hand-rolled binary heap: scheduling
// an event allocates nothing beyond amortized slice growth, which matters
// because the simulator schedules one or more events per issued warp
// instruction. (container/heap would box every event through an interface
// and allocate it on the heap.)
package engine
