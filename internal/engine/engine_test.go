package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdersByCycle(t *testing.T) {
	var q Queue
	var got []Cycle
	for _, at := range []Cycle{50, 10, 30, 20, 40} {
		at := at
		q.Schedule(at, func() { got = append(got, at) })
	}
	q.RunUntil(100)
	want := []Cycle{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestQueueSameCycleFIFO(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(7, func() { got = append(got, i) })
	}
	q.RunUntil(7)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle order %v, want FIFO", got)
		}
	}
}

func TestQueueRunUntilLimit(t *testing.T) {
	var q Queue
	fired := 0
	q.Schedule(5, func() { fired++ })
	q.Schedule(10, func() { fired++ })
	q.Schedule(11, func() { fired++ })
	q.RunUntil(10)
	if fired != 2 {
		t.Errorf("fired %d events by cycle 10, want 2", fired)
	}
	if q.Len() != 1 {
		t.Errorf("pending = %d, want 1", q.Len())
	}
	if q.NextCycle() != 11 {
		t.Errorf("NextCycle = %d, want 11", q.NextCycle())
	}
}

func TestQueueEventsMaySchedule(t *testing.T) {
	var q Queue
	var got []Cycle
	q.Schedule(1, func() {
		got = append(got, 1)
		q.Schedule(2, func() { got = append(got, 2) })
	})
	q.RunUntil(5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("chained scheduling produced %v, want [1 2]", got)
	}
}

func TestQueuePanicsOnEmpty(t *testing.T) {
	var q Queue
	for name, fn := range map[string]func(){
		"NextCycle": func() { q.NextCycle() },
		"Pop":       func() { q.Pop() },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty queue did not panic", name)
				}
			}()
			fn()
		})
	}
}

// Property: popping a randomly scheduled set of events yields a
// non-decreasing cycle sequence identical to the sorted input.
func TestQueueHeapProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var q Queue
		want := make([]Cycle, len(raw))
		for i, r := range raw {
			want[i] = Cycle(r)
			q.Schedule(Cycle(r), func() {})
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; q.Len() > 0; i++ {
			ev := q.Pop()
			if ev.At != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueueDeterministicUnderMixedLoad(t *testing.T) {
	run := func() []int {
		var q Queue
		rng := rand.New(rand.NewSource(42))
		var order []int
		for i := 0; i < 500; i++ {
			i := i
			q.Schedule(Cycle(rng.Intn(50)), func() { order = append(order, i) })
		}
		q.RunUntil(50)
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two identical runs diverged: event queue is nondeterministic")
		}
	}
}

func TestQueueInterleavedScheduleAndPop(t *testing.T) {
	var q Queue
	q.Schedule(5, func() {})
	ev := q.Pop()
	if ev.At != 5 {
		t.Fatalf("popped %d", ev.At)
	}
	q.Schedule(2, func() {})
	q.Schedule(9, func() {})
	if q.NextCycle() != 2 {
		t.Errorf("NextCycle = %d, want 2", q.NextCycle())
	}
	q.Pop()
	if q.Len() != 1 || q.NextCycle() != 9 {
		t.Errorf("queue state wrong: len=%d next=%d", q.Len(), q.NextCycle())
	}
}
