// Package cliutil is the output plumbing shared by the command-line tools
// (characterize, evaluate, report, gputlbsim, traceconv): one OutputFlags
// struct registers the -stats-out, -trace-out, -cpuprofile and -memprofile
// flags with identical names and semantics everywhere, constructs the
// matching collectors (nil when a flag is unset, so unexporting runs pay no
// collection cost), and exports whatever was requested.
//
// The package exists so a flag added here appears — spelled and behaving
// the same — in every tool at once; the cliutil tests assert that
// cross-tool identity. Tools that never simulate (traceconv) register only
// the pprof pair via RegisterProfiles.
package cliutil
