package cliutil

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"gputlb/internal/stats"
)

// flagNames returns the sorted names registered on fs.
func flagNames(fs *flag.FlagSet) []string {
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	sort.Strings(names)
	return names
}

// newFlagSet builds a FlagSet the way a CLI's main() does.
func newFlagSet(name string) (*flag.FlagSet, *OutputFlags) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var out OutputFlags
	if name == "traceconv" {
		out.RegisterProfiles(fs)
	} else {
		out.Register(fs)
	}
	return fs, &out
}

// TestFlagWiringIdenticalAcrossCLIs proves the five CLIs register the
// shared output flags with identical names, defaults, and usage strings,
// and that parsing fans the values out to the same fields. traceconv is
// the deliberate exception: it never simulates, so it registers only the
// pprof pair.
func TestFlagWiringIdenticalAcrossCLIs(t *testing.T) {
	full := []string{"cpuprofile", "memprofile", "stats-out", "trace-out"}
	profilesOnly := []string{"cpuprofile", "memprofile"}
	clis := map[string][]string{
		"characterize": full,
		"evaluate":     full,
		"report":       full,
		"gputlbsim":    full,
		"traceconv":    profilesOnly,
	}

	// Usage strings and defaults must match across every CLI that
	// registers a given flag.
	canonical := map[string]*flag.Flag{}
	for name, want := range clis {
		fs, _ := newFlagSet(name)
		if got := flagNames(fs); len(got) != len(want) {
			t.Fatalf("%s registers %v, want %v", name, got, want)
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s registers %v, want %v", name, got, want)
				}
			}
		}
		fs.VisitAll(func(f *flag.Flag) {
			if c, ok := canonical[f.Name]; ok {
				if f.Usage != c.Usage || f.DefValue != c.DefValue {
					t.Errorf("-%s differs between CLIs: usage %q vs %q, default %q vs %q",
						f.Name, f.Usage, c.Usage, f.DefValue, c.DefValue)
				}
			} else {
				canonical[f.Name] = f
			}
		})
	}

	// Parsing the same arguments fans out to the same struct fields in
	// every full CLI.
	args := []string{
		"-stats-out", "s.json", "-trace-out", "t.json",
		"-cpuprofile", "c.pprof", "-memprofile", "m.pprof",
	}
	for _, name := range []string{"characterize", "evaluate", "report", "gputlbsim"} {
		fs, out := newFlagSet(name)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := OutputFlags{StatsOut: "s.json", TraceOut: "t.json", CPUProfile: "c.pprof", MemProfile: "m.pprof"}
		if *out != want {
			t.Errorf("%s parsed %+v, want %+v", name, *out, want)
		}
	}

	// traceconv accepts the profile pair and rejects the simulation-output
	// flags it does not have.
	fs, out := newFlagSet("traceconv")
	if err := fs.Parse([]string{"-cpuprofile", "c.pprof", "-memprofile", "m.pprof"}); err != nil {
		t.Fatalf("traceconv: %v", err)
	}
	if out.CPUProfile != "c.pprof" || out.MemProfile != "m.pprof" {
		t.Errorf("traceconv parsed %+v", *out)
	}
	fs2, _ := newFlagSet("traceconv")
	if err := fs2.Parse([]string{"-stats-out", "s.json"}); err == nil {
		t.Error("traceconv accepted -stats-out; it has no stats to export")
	}
}

// TestOutputFlagsConstructors checks the nil-when-unrequested contract:
// experiment Options receive nil collectors unless the matching flag was
// given, so unexporting runs pay no collection cost.
func TestOutputFlagsConstructors(t *testing.T) {
	var off OutputFlags
	if d := off.NewStatsDump(); d != nil {
		t.Errorf("NewStatsDump without -stats-out = %v, want nil", d)
	}
	if tr := off.NewTracer(); tr != nil {
		t.Errorf("NewTracer without -trace-out = %v, want nil", tr)
	}

	on := OutputFlags{StatsOut: "s.json", TraceOut: "t.json"}
	if on.NewStatsDump() == nil {
		t.Error("NewStatsDump with -stats-out = nil")
	}
	if on.NewTracer() == nil {
		t.Error("NewTracer with -trace-out = nil")
	}
}

// TestOutputFlagsExport runs the full flag → collector → file path and
// checks every requested artifact lands on disk.
func TestOutputFlagsExport(t *testing.T) {
	dir := t.TempDir()
	out := OutputFlags{
		StatsOut: filepath.Join(dir, "stats.json"),
		TraceOut: filepath.Join(dir, "trace.json"),
	}
	d := out.NewStatsDump()
	tr := out.NewTracer()
	tr.Complete(0, 0, "cell", "sweep", 0, 10, nil)
	if err := out.Export(d, tr); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{out.StatsOut, out.TraceOut} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("requested output missing: %v", err)
		}
	}

	// CSV is selected by extension.
	out.StatsOut = filepath.Join(dir, "stats.csv")
	if err := out.Export(d, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out.StatsOut); err != nil {
		t.Errorf("CSV stats output missing: %v", err)
	}

	// No flags set: Export is a no-op even with nil collectors.
	var off OutputFlags
	if err := off.Export(nil, nil); err != nil {
		t.Errorf("no-op export: %v", err)
	}
}

// TestOutputFlagsProfiles drives Start/stop and checks both pprof files
// appear.
func TestOutputFlagsProfiles(t *testing.T) {
	dir := t.TempDir()
	out := OutputFlags{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	stop, err := out.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{out.CPUProfile, out.MemProfile} {
		if fi, err := os.Stat(p); err != nil {
			t.Errorf("profile missing: %v", err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestExportSnapshot covers gputlbsim's single-run stats path.
func TestExportSnapshot(t *testing.T) {
	r := stats.NewRegistry("run")
	c := r.Counter("cycles")
	c.Add(42)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := ExportSnapshot(path, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("snapshot export is empty")
	}
	if err := ExportSnapshot(path, nil); err == nil {
		t.Error("nil snapshot should fail loudly, not write an empty file")
	}
}
