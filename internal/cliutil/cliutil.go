// Package cliutil holds the output plumbing shared by the command-line
// tools: pprof profile capture and stats/trace file export. It keeps the
// four CLIs' flag handling identical without each reimplementing it.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"gputlb/internal/experiments"
	"gputlb/internal/stats"
)

// StartProfiles begins a CPU profile when cpuPath is non-empty and returns a
// stop function that finishes it and, when memPath is non-empty, writes a
// heap profile. stop is always safe to call (including when both paths are
// empty) and must run before process exit for the profiles to be complete.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ExportStatsDump writes a sweep's collected stats to path: CSV when the
// file name ends in .csv, indented JSON otherwise.
func ExportStatsDump(path string, d *experiments.StatsDump) error {
	if strings.HasSuffix(path, ".csv") {
		return writeFile(path, d.WriteCSV)
	}
	return writeFile(path, d.WriteJSON)
}

// ExportSnapshot writes a single run's stats tree to path: CSV when the
// file name ends in .csv, indented JSON otherwise.
func ExportSnapshot(path string, s *stats.Snapshot) error {
	if s == nil {
		return fmt.Errorf("cliutil: no stats snapshot to export")
	}
	if strings.HasSuffix(path, ".csv") {
		return writeFile(path, s.WriteCSV)
	}
	return writeFile(path, s.WriteJSON)
}

// ExportTrace writes the tracer's buffered events as Chrome trace_event
// JSON for chrome://tracing or Perfetto.
func ExportTrace(path string, t *stats.Tracer) error {
	return writeFile(path, t.WriteChromeTrace)
}
