package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"gputlb/internal/experiments"
	"gputlb/internal/stats"
)

// OutputFlags is the output plumbing every CLI shares: stats/trace export
// destinations and pprof profile capture. Each tool registers the same
// flag names with the same semantics through Register, so `-stats-out`,
// `-trace-out`, `-cpuprofile`, and `-memprofile` behave identically
// across characterize, evaluate, report, gputlbsim, and traceconv.
type OutputFlags struct {
	// StatsOut, when non-empty, receives the run's stats (.csv for CSV,
	// else indented JSON).
	StatsOut string
	// TraceOut, when non-empty, receives a Chrome trace_event JSON of the
	// run (open in chrome://tracing or Perfetto).
	TraceOut string
	// CPUProfile and MemProfile, when non-empty, receive pprof profiles.
	CPUProfile string
	MemProfile string
}

// Register registers all four output flags on fs.
func (f *OutputFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.StatsOut, "stats-out",
		"", "write every simulated cell's full stats tree to this file (.csv for CSV, else JSON)")
	fs.StringVar(&f.TraceOut, "trace-out",
		"", "write a Chrome trace_event JSON of all simulated cells (open in chrome://tracing or Perfetto)")
	f.RegisterProfiles(fs)
}

// RegisterProfiles registers only the pprof flags — for tools that never
// simulate (traceconv) and so have no stats or event trace to export.
func (f *OutputFlags) RegisterProfiles(fs *flag.FlagSet) {
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
}

// Start begins profile capture per the parsed flags; the returned stop
// must run before process exit (see StartProfiles).
func (f *OutputFlags) Start() (stop func() error, err error) {
	return StartProfiles(f.CPUProfile, f.MemProfile)
}

// NewStatsDump returns a fresh dump when -stats-out was given, else nil —
// the value experiment Options.StatsDump expects either way.
func (f *OutputFlags) NewStatsDump() *experiments.StatsDump {
	if f.StatsOut == "" {
		return nil
	}
	return &experiments.StatsDump{}
}

// NewTracer returns an unbounded tracer when -trace-out was given, else
// nil — the value experiment Options.Tracer expects either way.
func (f *OutputFlags) NewTracer() *stats.Tracer {
	if f.TraceOut == "" {
		return nil
	}
	return stats.NewTracer(0)
}

// Export writes whatever the flags requested from the collected outputs:
// the dump to -stats-out and the tracer to -trace-out. Nil arguments for
// unrequested outputs are fine.
func (f *OutputFlags) Export(d *experiments.StatsDump, tr *stats.Tracer) error {
	if f.StatsOut != "" {
		if err := ExportStatsDump(f.StatsOut, d); err != nil {
			return err
		}
	}
	if f.TraceOut != "" {
		if err := ExportTrace(f.TraceOut, tr); err != nil {
			return err
		}
	}
	return nil
}

// StartProfiles begins a CPU profile when cpuPath is non-empty and returns a
// stop function that finishes it and, when memPath is non-empty, writes a
// heap profile. stop is always safe to call (including when both paths are
// empty) and must run before process exit for the profiles to be complete.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ExportStatsDump writes a sweep's collected stats to path: CSV when the
// file name ends in .csv, indented JSON otherwise.
func ExportStatsDump(path string, d *experiments.StatsDump) error {
	if strings.HasSuffix(path, ".csv") {
		return writeFile(path, d.WriteCSV)
	}
	return writeFile(path, d.WriteJSON)
}

// ExportSnapshot writes a single run's stats tree to path: CSV when the
// file name ends in .csv, indented JSON otherwise.
func ExportSnapshot(path string, s *stats.Snapshot) error {
	if s == nil {
		return fmt.Errorf("cliutil: no stats snapshot to export")
	}
	if strings.HasSuffix(path, ".csv") {
		return writeFile(path, s.WriteCSV)
	}
	return writeFile(path, s.WriteJSON)
}

// ExportTrace writes the tracer's buffered events as Chrome trace_event
// JSON for chrome://tracing or Perfetto.
func ExportTrace(path string, t *stats.Tracer) error {
	return writeFile(path, t.WriteChromeTrace)
}
