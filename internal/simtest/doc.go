// Package simtest is a reusable determinism harness for the simulator's
// execution engines.
//
// The sharded epoch-barrier engine's central promise is that its results
// are a pure function of the simulated configuration: the worker count, the
// epoch length, and GOMAXPROCS only decide how the work is scheduled onto
// the host, never what the simulation computes. simtest turns that promise
// into a mechanical check. A Build function constructs a fresh simulator
// for one trial; the harness runs it across a matrix of cell-parallelism
// values or epoch lengths and diffs the full stats-registry snapshots — and
// optionally the complete trace event streams — byte for byte.
//
// The harness is deliberately engine-agnostic: any code that can hand back
// a *sim.Simulator (solo kernels, multi-tenant co-runs, custom configs) can
// be matrixed. Package-level tests cover the stock configurations: the solo
// scheduler/sampling variants, and every multi-tenant L2 TLB mode crossed
// with every SM assignment policy.
package simtest
