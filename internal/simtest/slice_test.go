package simtest

import (
	"fmt"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/engine"
	"gputlb/internal/multi"
	"gputlb/internal/sched"
)

// TestSoloSliceMatrix: for every slice count the default geometry supports,
// a solo run's stats snapshot — and trace stream — is byte-identical across
// worker counts, and its stats are byte-identical across epoch lengths.
// Each K is its own legal serialization: cells compare within a K, never
// across two.
func TestSoloSliceMatrix(t *testing.T) {
	for _, k := range SliceMatrix() {
		t.Run(fmt.Sprintf("slices=%d", k), func(t *testing.T) {
			CheckSliceInvariance(t, soloBuild(t, "bfs", func(*arch.Config) {}), k, nil, nil, true)
		})
	}
}

// TestMultiTenantSliceMatrix: sliced-barrier invariance for a two-tenant
// co-run under the dynamically partitioned L2 TLB — the mode where the
// sub-TLBs carry scaled set partitions and per-slot sharing state.
func TestMultiTenantSliceMatrix(t *testing.T) {
	for _, k := range SliceMatrix() {
		t.Run(fmt.Sprintf("slices=%d", k), func(t *testing.T) {
			CheckSliceInvariance(t, multiBuild(t, multi.TLBDynamicMode, sched.AssignSpatial),
				k, []int{2, 8}, []engine.Cycle{0, 7}, true)
		})
	}
}

// TestControllerSliceMatrix: controller cells — with and without tenant
// churn — stay byte-identical across workers and epoch lengths under the
// sliced barrier. Churn exercises the fence path: tenant completions
// repartition the sub-TLBs mid-epoch, at their exact canonical positions.
func TestControllerSliceMatrix(t *testing.T) {
	for _, churn := range []bool{false, true} {
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("churn=%v/slices=%d", churn, k), func(t *testing.T) {
				CheckSliceInvariance(t, ctlBuild(t, churn), k, []int{2, 8}, []engine.Cycle{0, 1, 40}, true)
			})
		}
	}
}

// TestSlicedModelInvariants: quantities fixed by the workload — not by
// request ordering — agree between the serial engine and the sliced barrier
// at every slice count: the slices change timing, never model structure.
func TestSlicedModelInvariants(t *testing.T) {
	b := soloBuild(t, "bfs", func(*arch.Config) {})
	serial := runResult(t, b, 1, 0)
	for _, k := range []int{2, 4, 8} {
		r, _, _, err := RunSliced(b, 4, k, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if r.InstsIssued != serial.InstsIssued {
			t.Errorf("slices=%d: InstsIssued %d != serial %d", k, r.InstsIssued, serial.InstsIssued)
		}
		if r.PageRequests != serial.PageRequests {
			t.Errorf("slices=%d: PageRequests %d != serial %d", k, r.PageRequests, serial.PageRequests)
		}
		if r.LineRequests != serial.LineRequests {
			t.Errorf("slices=%d: LineRequests %d != serial %d", k, r.LineRequests, serial.LineRequests)
		}
		if r.Faults != serial.Faults {
			t.Errorf("slices=%d: Faults %d != serial %d", k, r.Faults, serial.Faults)
		}
		var tbs, serialTBs int
		for _, n := range r.TBsPerSM {
			tbs += n
		}
		for _, n := range serial.TBsPerSM {
			serialTBs += n
		}
		if tbs != serialTBs {
			t.Errorf("slices=%d: TBs %d != serial %d", k, tbs, serialTBs)
		}
	}
}

// TestSliceCountOneIsMonolithic: SetL2Slices(1) — and any request the
// geometry clamps to 1 — runs the monolithic barrier, byte-identical to
// never having called SetL2Slices.
func TestSliceCountOneIsMonolithic(t *testing.T) {
	b := soloBuild(t, "bfs", func(*arch.Config) {})
	_, want, _, err := Run(b, 2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	_, got, _, err := RunSliced(b, 2, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("slices=1 diverged from the monolithic barrier")
	}
}
