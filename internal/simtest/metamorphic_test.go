package simtest

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/engine"
	"gputlb/internal/sim"
)

// runResult is a matrix-cell convenience returning just the Result.
func runResult(t *testing.T, b Build, cellParallel int, epoch engine.Cycle) sim.Result {
	t.Helper()
	r, _, _, err := Run(b, cellParallel, epoch, false)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// histQuantile returns the upper bound of the power-of-two bucket holding
// the q-quantile of the translation-latency histogram.
func histQuantile(h [16]int64, q float64) int64 {
	var total int64
	for _, n := range h {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var seen int64
	for i, n := range h {
		seen += n
		if seen > target {
			return 1 << uint(i+1)
		}
	}
	return 1 << 16
}

// TestModelInvariantsAcrossEngines: quantities fixed by the workload — not
// by request ordering — agree between the serial engine and the sharded
// engine at every worker count and epoch length. Retired instructions,
// coalesced page/line requests, first-touch faults, and TB placement totals
// are all metamorphic invariants of the engine split.
func TestModelInvariantsAcrossEngines(t *testing.T) {
	b := soloBuild(t, "bfs", func(*arch.Config) {})
	serial := runResult(t, b, 1, 0)

	cells := []struct {
		workers int
		epoch   engine.Cycle
	}{{2, 0}, {3, 0}, {8, 0}, {2, 1}, {4, 7}, {8, 40}}
	for _, c := range cells {
		r := runResult(t, b, c.workers, c.epoch)
		if r.InstsIssued != serial.InstsIssued {
			t.Errorf("workers=%d epoch=%d: InstsIssued %d != serial %d", c.workers, c.epoch, r.InstsIssued, serial.InstsIssued)
		}
		if r.PageRequests != serial.PageRequests {
			t.Errorf("workers=%d epoch=%d: PageRequests %d != serial %d", c.workers, c.epoch, r.PageRequests, serial.PageRequests)
		}
		if r.LineRequests != serial.LineRequests {
			t.Errorf("workers=%d epoch=%d: LineRequests %d != serial %d", c.workers, c.epoch, r.LineRequests, serial.LineRequests)
		}
		if r.Faults != serial.Faults {
			t.Errorf("workers=%d epoch=%d: Faults %d != serial %d", c.workers, c.epoch, r.Faults, serial.Faults)
		}
		var tbs, serialTBs int
		for _, n := range r.TBsPerSM {
			tbs += n
		}
		for _, n := range serial.TBsPerSM {
			serialTBs += n
		}
		if tbs != serialTBs {
			t.Errorf("workers=%d epoch=%d: TBs %d != serial %d", c.workers, c.epoch, tbs, serialTBs)
		}
	}
}

// TestCounterSumsBalance: within any single run, per-component counters
// must balance — every page request is an L1 TLB access, every translation
// lands in exactly one histogram bucket, and L1 TLB misses bound walks from
// above.
func TestCounterSumsBalance(t *testing.T) {
	b := soloBuild(t, "bfs", func(*arch.Config) {})
	for _, workers := range []int{1, 2, 8} {
		r := runResult(t, b, workers, 0)
		if got := r.L1TLBAccesses(); got != r.PageRequests {
			t.Errorf("workers=%d: L1 TLB accesses %d != page requests %d", workers, got, r.PageRequests)
		}
		var hist int64
		for _, n := range r.TranslationLatency {
			hist += n
		}
		if hist != r.PageRequests {
			t.Errorf("workers=%d: histogram count %d != page requests %d", workers, hist, r.PageRequests)
		}
		misses := r.PageRequests - r.L1TLBHits()
		if r.Walks > misses {
			t.Errorf("workers=%d: walks %d exceed L1 TLB misses %d", workers, r.Walks, misses)
		}
		if r.Walks < r.Faults {
			t.Errorf("workers=%d: walks %d below faults %d", workers, r.Walks, r.Faults)
		}
	}
}

// TestHistogramQuantilesInvariant: the translation-latency distribution's
// quantiles are identical at every worker count and epoch length — a
// coarser, more interpretable restatement of byte-identity that would
// survive a registry format change.
func TestHistogramQuantilesInvariant(t *testing.T) {
	b := soloBuild(t, "bfs", func(*arch.Config) {})
	want := runResult(t, b, 2, 0)
	for _, c := range []struct {
		workers int
		epoch   engine.Cycle
	}{{3, 0}, {8, 0}, {2, 5}, {8, 17}} {
		r := runResult(t, b, c.workers, c.epoch)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if got, w := histQuantile(r.TranslationLatency, q), histQuantile(want.TranslationLatency, q); got != w {
				t.Errorf("workers=%d epoch=%d: p%.0f = %d, want %d", c.workers, c.epoch, q*100, got, w)
			}
		}
	}
}
