package simtest

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"gputlb/internal/engine"
	"gputlb/internal/sim"
	"gputlb/internal/stats"
)

// Build constructs a fresh simulator for one determinism trial. The harness
// calls it once per matrix cell: a Simulator runs exactly once, so reuse
// would alias state across cells.
type Build func() (*sim.Simulator, error)

// traceCapacity bounds the harness tracer's ring. Trials that overflow it
// still compare deterministically (the ring keeps the newest events), but
// the matrices below stay far under it.
const traceCapacity = 1 << 18

// Run executes one trial: a freshly built simulator at the given cell
// parallelism and epoch-length override (0 keeps the default), returning
// the run's Result, its full stats registry as canonical JSON, and — when
// withTrace is set — the complete trace event stream as Chrome trace JSON.
func Run(b Build, cellParallel int, epoch engine.Cycle, withTrace bool) (sim.Result, []byte, []byte, error) {
	return RunSliced(b, cellParallel, 1, epoch, withTrace)
}

// RunSliced is Run with an explicit L2 slice count for the sharded engine's
// sliced barrier (1 keeps the monolithic barrier and is identical to Run).
func RunSliced(b Build, cellParallel, slices int, epoch engine.Cycle, withTrace bool) (sim.Result, []byte, []byte, error) {
	s, err := b()
	if err != nil {
		return sim.Result{}, nil, nil, err
	}
	s.SetCellParallel(cellParallel)
	s.SetL2Slices(slices)
	if epoch > 0 {
		s.SetEpochLength(epoch)
	}
	var tr *stats.Tracer
	if withTrace {
		tr = stats.NewTracer(traceCapacity)
		s.SetTracer(tr, 0)
	}
	r := s.Run()
	var statsBuf bytes.Buffer
	if err := r.Stats.WriteJSON(&statsBuf); err != nil {
		return sim.Result{}, nil, nil, err
	}
	var traceBuf bytes.Buffer
	if withTrace {
		if tr.Dropped() > 0 {
			return sim.Result{}, nil, nil, fmt.Errorf("simtest: tracer dropped %d events; raise traceCapacity", tr.Dropped())
		}
		if err := tr.WriteChromeTrace(&traceBuf); err != nil {
			return sim.Result{}, nil, nil, err
		}
	}
	return r, statsBuf.Bytes(), traceBuf.Bytes(), nil
}

// WorkerMatrix returns the stock cell-parallelism matrix for the sharded
// engine: {2, 3, 8, GOMAXPROCS}, deduplicated, every value >= 2 so all
// cells run the same engine. (Cell parallelism 1 selects the serial engine,
// whose byte-identity is pinned against the committed golden stats
// instead.)
func WorkerMatrix() []int {
	ws := []int{2, 3, 8}
	if p := runtime.GOMAXPROCS(0); p >= 2 {
		seen := false
		for _, w := range ws {
			if w == p {
				seen = true
			}
		}
		if !seen {
			ws = append(ws, p)
		}
	}
	return ws
}

// CheckWorkerInvariance runs b across the given cell-parallelism values
// (WorkerMatrix() when nil) and fails t unless every run's stats snapshot —
// and, with withTrace, its full trace stream — is byte-identical to the
// first's. This is the sharded engine's core determinism property: workers
// only choose which goroutine advances a shard.
func CheckWorkerInvariance(t testing.TB, b Build, workers []int, withTrace bool) {
	t.Helper()
	if workers == nil {
		workers = WorkerMatrix()
	}
	if len(workers) < 2 {
		t.Fatalf("simtest: worker matrix %v has fewer than 2 cells", workers)
	}
	_, wantStats, wantTrace, err := Run(b, workers[0], 0, withTrace)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers[1:] {
		_, gotStats, gotTrace, err := Run(b, w, 0, withTrace)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotStats, wantStats) {
			t.Errorf("stats snapshot diverged: cellParallel=%d vs cellParallel=%d (%d vs %d bytes)",
				w, workers[0], len(gotStats), len(wantStats))
		}
		if withTrace && !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("trace stream diverged: cellParallel=%d vs cellParallel=%d (%d vs %d bytes)",
				w, workers[0], len(gotTrace), len(wantTrace))
		}
	}
}

// CheckEpochInvariance runs b at fixed cell parallelism across the given
// epoch-length overrides (0 means the engine default) and fails t unless
// every stats snapshot is byte-identical: the barrier's canonical order and
// the lookahead bound make the outcome independent of where the epoch
// boundaries fall.
func CheckEpochInvariance(t testing.TB, b Build, cellParallel int, epochs []engine.Cycle) {
	t.Helper()
	if len(epochs) == 0 {
		epochs = []engine.Cycle{0, 1, 7, 40}
	}
	_, want, _, err := Run(b, cellParallel, epochs[0], false)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range epochs[1:] {
		_, got, _, err := Run(b, cellParallel, e, false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("stats snapshot diverged: epoch=%d vs epoch=%d", e, epochs[0])
		}
	}
}

// SliceMatrix returns the stock L2 slice-count matrix for the sliced
// barrier: 1 (monolithic) plus every power of two the default geometry
// supports.
func SliceMatrix() []int { return []int{1, 2, 4, 8} }

// CheckSliceInvariance runs b at a fixed slice count across every
// (cellParallel, epoch) combination and fails t unless all stats snapshots
// — and, with withTrace, the trace streams — are byte-identical to the
// first's. This is the sliced barrier's determinism property: for a fixed
// K, the result is a pure function of the canonical op stream, independent
// of worker count and epoch length. (Epoch overrides are skipped for the
// trace comparison cells: traces are compared across workers only.)
func CheckSliceInvariance(t testing.TB, b Build, slices int, workers []int, epochs []engine.Cycle, withTrace bool) {
	t.Helper()
	if workers == nil {
		workers = WorkerMatrix()
	}
	if len(epochs) == 0 {
		epochs = []engine.Cycle{0, 1, 7, 40}
	}
	_, wantStats, wantTrace, err := RunSliced(b, workers[0], slices, 0, withTrace)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers[1:] {
		_, gotStats, gotTrace, err := RunSliced(b, w, slices, 0, withTrace)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotStats, wantStats) {
			t.Errorf("slices=%d: stats snapshot diverged: cellParallel=%d vs cellParallel=%d",
				slices, w, workers[0])
		}
		if withTrace && !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("slices=%d: trace stream diverged: cellParallel=%d vs cellParallel=%d",
				slices, w, workers[0])
		}
	}
	for _, e := range epochs {
		if e == 0 {
			continue
		}
		_, gotStats, _, err := RunSliced(b, workers[0], slices, e, false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotStats, wantStats) {
			t.Errorf("slices=%d: stats snapshot diverged: epoch=%d vs default", slices, e)
		}
	}
}

// CheckSerialUnchanged runs b twice at cell parallelism 1 (the serial
// engine) and fails t unless the two snapshots agree — the degenerate
// matrix cell guarding that the serial path stays deterministic with the
// sharded machinery compiled in.
func CheckSerialUnchanged(t testing.TB, b Build) {
	t.Helper()
	_, a, _, err := Run(b, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	_, c, _, err := Run(b, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Error("two serial (cellParallel=1) runs diverged")
	}
}
