package simtest

import (
	"fmt"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/control"
	"gputlb/internal/engine"
	"gputlb/internal/multi"
	"gputlb/internal/sched"
	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// testParams keeps the matrix workloads small enough to run the full cross
// product in seconds while still exercising every engine path (TLB misses,
// walks, faults, dispatch waves).
func testParams() workloads.Params {
	return workloads.Params{PageShift: 12, Seed: 1, Scale: 0.1}
}

// soloBuild returns a Build for one benchmark under a config mutation.
func soloBuild(t *testing.T, bench string, mut func(*arch.Config)) Build {
	t.Helper()
	return func() (*sim.Simulator, error) {
		k, as, ok := workloads.CachedByName(bench, testParams())
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		cfg := arch.Default()
		mut(&cfg)
		return sim.New(cfg, k, as)
	}
}

// soloVariants are the solo configurations of the determinism matrix: the
// baseline plus each scheduler/sampling feature that changes the engine's
// event mix.
var soloVariants = []struct {
	name string
	mut  func(*arch.Config)
}{
	{"default", func(*arch.Config) {}},
	{"tlbAwareSched", func(c *arch.Config) { c.TBScheduler = arch.ScheduleTLBAware }},
	{"transAwareWarps", func(c *arch.Config) { c.WarpScheduler = arch.WarpTransAware }},
	{"sampling", func(c *arch.Config) { c.SampleInterval = 1000 }},
}

// TestSoloWorkerMatrix: every solo variant's stats snapshot and full trace
// stream are byte-identical across the worker-count matrix.
func TestSoloWorkerMatrix(t *testing.T) {
	for _, v := range soloVariants {
		t.Run(v.name, func(t *testing.T) {
			CheckWorkerInvariance(t, soloBuild(t, "bfs", v.mut), nil, true)
		})
	}
}

// TestSoloSerialDeterminism: the serial engine stays deterministic with the
// sharded machinery compiled in (its byte-identity to the committed golden
// stats is pinned separately by the experiments golden test).
func TestSoloSerialDeterminism(t *testing.T) {
	CheckSerialUnchanged(t, soloBuild(t, "bfs", func(*arch.Config) {}))
}

// TestSoloEpochMatrix: epoch length is invisible in the results, from
// degenerate one-cycle epochs up to the lookahead cap.
func TestSoloEpochMatrix(t *testing.T) {
	CheckEpochInvariance(t, soloBuild(t, "bfs", func(*arch.Config) {}), 3, nil)
}

// multiBuild returns a Build for a two-tenant co-run under the given L2 TLB
// mode and SM assignment policy.
func multiBuild(t *testing.T, mode multi.TLBMode, assign sched.SMAssignment) Build {
	t.Helper()
	return func() (*sim.Simulator, error) {
		opt := multi.Options{Params: testParams(), SMPolicy: assign, TLBMode: mode}
		tenants, err := multi.Tenants([]string{"bfs", "atax"}, opt)
		if err != nil {
			return nil, err
		}
		var policy arch.TLBIndexPolicy
		switch mode {
		case multi.TLBStaticMode:
			policy = arch.IndexByTB
		case multi.TLBDynamicMode:
			policy = arch.IndexByTBShared
		default:
			policy = arch.IndexByAddress
		}
		return sim.NewMulti(arch.Default(), tenants, sim.MultiOptions{L2TLBPolicy: policy})
	}
}

// TestMultiTenantMatrix crosses every L2 TLB tenancy mode with every SM
// assignment policy and checks worker-count invariance (with trace-stream
// diffs) for each cell.
func TestMultiTenantMatrix(t *testing.T) {
	modes := []multi.TLBMode{multi.TLBSharedMode, multi.TLBStaticMode, multi.TLBDynamicMode}
	assigns := []sched.SMAssignment{sched.AssignSpatial, sched.AssignInterleaved, sched.AssignShared}
	for _, mode := range modes {
		for _, assign := range assigns {
			t.Run(fmt.Sprintf("%s_%s", mode, assign), func(t *testing.T) {
				CheckWorkerInvariance(t, multiBuild(t, mode, assign), []int{2, 8}, true)
			})
		}
	}
}

// TestMultiTenantEpochMatrix: one multi-tenant cell per TLB mode across the
// epoch-length matrix.
func TestMultiTenantEpochMatrix(t *testing.T) {
	for _, mode := range []multi.TLBMode{multi.TLBSharedMode, multi.TLBDynamicMode} {
		t.Run(mode.String(), func(t *testing.T) {
			CheckEpochInvariance(t, multiBuild(t, mode, sched.AssignSpatial), 4, nil)
		})
	}
}

// ctlBuild returns a Build for a two-tenant co-run with the online
// partitioning controller attached — and, with churn, two mid-run arrivals
// through a bounded admission queue. The short period and zero cooldown
// force many decisions, so any counter drift across workers or epoch
// boundaries would change an early decision and cascade into the results.
func ctlBuild(t *testing.T, churn bool) Build {
	t.Helper()
	return func() (*sim.Simulator, error) {
		opt := multi.Options{Params: testParams(), SMPolicy: sched.AssignSpatial}
		tenants, err := multi.Tenants([]string{"bfs", "atax"}, opt)
		if err != nil {
			return nil, err
		}
		mopt := sim.MultiOptions{L2TLBPolicy: arch.IndexByTB}
		if churn {
			spec := &sim.ChurnSpec{QueueCap: 1}
			for _, a := range []struct {
				bench string
				at    int64
			}{{"mis", 3000}, {"mvt", 6000}} {
				k, as, ok := workloads.CachedByName(a.bench, testParams())
				if !ok {
					return nil, fmt.Errorf("unknown benchmark %q", a.bench)
				}
				spec.Arrivals = append(spec.Arrivals, sim.ChurnArrival{
					Tenant: sim.Tenant{Name: a.bench, Kernel: k, AS: as},
					At:     engine.Cycle(a.at),
				})
			}
			mopt.Churn = spec
		}
		s, err := sim.NewMulti(arch.Default(), tenants, mopt)
		if err != nil {
			return nil, err
		}
		if _, err := s.AttachController(control.Config{Period: 512, Cooldown: 0}); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// TestControllerWorkerMatrix: controller cells — with and without tenant
// churn — are byte-identical in stats and trace stream across worker counts.
func TestControllerWorkerMatrix(t *testing.T) {
	for _, churn := range []bool{false, true} {
		t.Run(fmt.Sprintf("churn=%v", churn), func(t *testing.T) {
			CheckWorkerInvariance(t, ctlBuild(t, churn), []int{2, 4, 8}, true)
		})
	}
}

// TestControllerEpochMatrix: controller decisions key only on
// barrier-sampled state, so epoch length stays invisible even with churn.
func TestControllerEpochMatrix(t *testing.T) {
	for _, churn := range []bool{false, true} {
		t.Run(fmt.Sprintf("churn=%v", churn), func(t *testing.T) {
			CheckEpochInvariance(t, ctlBuild(t, churn), 4, nil)
		})
	}
}

// TestControllerSerialDeterminism: the serial engine runs controller + churn
// cells deterministically too.
func TestControllerSerialDeterminism(t *testing.T) {
	CheckSerialUnchanged(t, ctlBuild(t, true))
}
