package simtest

import (
	"fmt"
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/multi"
	"gputlb/internal/sched"
	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// testParams keeps the matrix workloads small enough to run the full cross
// product in seconds while still exercising every engine path (TLB misses,
// walks, faults, dispatch waves).
func testParams() workloads.Params {
	return workloads.Params{PageShift: 12, Seed: 1, Scale: 0.1}
}

// soloBuild returns a Build for one benchmark under a config mutation.
func soloBuild(t *testing.T, bench string, mut func(*arch.Config)) Build {
	t.Helper()
	return func() (*sim.Simulator, error) {
		k, as, ok := workloads.CachedByName(bench, testParams())
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		cfg := arch.Default()
		mut(&cfg)
		return sim.New(cfg, k, as)
	}
}

// soloVariants are the solo configurations of the determinism matrix: the
// baseline plus each scheduler/sampling feature that changes the engine's
// event mix.
var soloVariants = []struct {
	name string
	mut  func(*arch.Config)
}{
	{"default", func(*arch.Config) {}},
	{"tlbAwareSched", func(c *arch.Config) { c.TBScheduler = arch.ScheduleTLBAware }},
	{"transAwareWarps", func(c *arch.Config) { c.WarpScheduler = arch.WarpTransAware }},
	{"sampling", func(c *arch.Config) { c.SampleInterval = 1000 }},
}

// TestSoloWorkerMatrix: every solo variant's stats snapshot and full trace
// stream are byte-identical across the worker-count matrix.
func TestSoloWorkerMatrix(t *testing.T) {
	for _, v := range soloVariants {
		t.Run(v.name, func(t *testing.T) {
			CheckWorkerInvariance(t, soloBuild(t, "bfs", v.mut), nil, true)
		})
	}
}

// TestSoloSerialDeterminism: the serial engine stays deterministic with the
// sharded machinery compiled in (its byte-identity to the committed golden
// stats is pinned separately by the experiments golden test).
func TestSoloSerialDeterminism(t *testing.T) {
	CheckSerialUnchanged(t, soloBuild(t, "bfs", func(*arch.Config) {}))
}

// TestSoloEpochMatrix: epoch length is invisible in the results, from
// degenerate one-cycle epochs up to the lookahead cap.
func TestSoloEpochMatrix(t *testing.T) {
	CheckEpochInvariance(t, soloBuild(t, "bfs", func(*arch.Config) {}), 3, nil)
}

// multiBuild returns a Build for a two-tenant co-run under the given L2 TLB
// mode and SM assignment policy.
func multiBuild(t *testing.T, mode multi.TLBMode, assign sched.SMAssignment) Build {
	t.Helper()
	return func() (*sim.Simulator, error) {
		opt := multi.Options{Params: testParams(), SMPolicy: assign, TLBMode: mode}
		tenants, err := multi.Tenants([]string{"bfs", "atax"}, opt)
		if err != nil {
			return nil, err
		}
		var policy arch.TLBIndexPolicy
		switch mode {
		case multi.TLBStaticMode:
			policy = arch.IndexByTB
		case multi.TLBDynamicMode:
			policy = arch.IndexByTBShared
		default:
			policy = arch.IndexByAddress
		}
		return sim.NewMulti(arch.Default(), tenants, sim.MultiOptions{L2TLBPolicy: policy})
	}
}

// TestMultiTenantMatrix crosses every L2 TLB tenancy mode with every SM
// assignment policy and checks worker-count invariance (with trace-stream
// diffs) for each cell.
func TestMultiTenantMatrix(t *testing.T) {
	modes := []multi.TLBMode{multi.TLBSharedMode, multi.TLBStaticMode, multi.TLBDynamicMode}
	assigns := []sched.SMAssignment{sched.AssignSpatial, sched.AssignInterleaved, sched.AssignShared}
	for _, mode := range modes {
		for _, assign := range assigns {
			t.Run(fmt.Sprintf("%s_%s", mode, assign), func(t *testing.T) {
				CheckWorkerInvariance(t, multiBuild(t, mode, assign), []int{2, 8}, true)
			})
		}
	}
}

// TestMultiTenantEpochMatrix: one multi-tenant cell per TLB mode across the
// epoch-length matrix.
func TestMultiTenantEpochMatrix(t *testing.T) {
	for _, mode := range []multi.TLBMode{multi.TLBSharedMode, multi.TLBDynamicMode} {
		t.Run(mode.String(), func(t *testing.T) {
			CheckEpochInvariance(t, multiBuild(t, mode, sched.AssignSpatial), 4, nil)
		})
	}
}
