package simtest

import (
	"testing"

	"gputlb/internal/arch"
	"gputlb/internal/multi"
	"gputlb/internal/sched"
	"gputlb/internal/sim"
)

// mechConfigs are the non-base translation mechanisms with the frame
// allocator each is evaluated under; base's determinism is pinned by the
// golden stats and every other matrix cell.
var mechConfigs = []struct {
	mech  string
	alloc string
}{
	{"subentry", ""},
	{"deadblock", ""},
	{"largereach", "contig"},
}

func mechMut(mech, alloc string) func(*arch.Config) {
	return func(c *arch.Config) {
		c.TLBMech = mech
		c.AllocMode = alloc
	}
}

// TestMechWorkerMatrix: each mechanism's stats snapshot and trace stream are
// byte-identical across the worker-count matrix — mechanism side tables
// (sub-slots, predictor counters, run bounds) are driven only by the
// deterministic op order, never by which goroutine advances a shard.
func TestMechWorkerMatrix(t *testing.T) {
	for _, mc := range mechConfigs {
		t.Run(mc.mech, func(t *testing.T) {
			CheckWorkerInvariance(t, soloBuild(t, "bfs", mechMut(mc.mech, mc.alloc)), []int{2, 8}, true)
		})
	}
}

// TestMechSliceMatrix: each mechanism under the sliced barrier is a pure
// function of the canonical op stream for fixed K — slice sub-TLB
// mechanisms fold deterministically at run end.
func TestMechSliceMatrix(t *testing.T) {
	for _, mc := range mechConfigs {
		t.Run(mc.mech, func(t *testing.T) {
			CheckSliceInvariance(t, soloBuild(t, "bfs", mechMut(mc.mech, mc.alloc)), 2, []int{2, 8}, nil, false)
		})
	}
}

// TestMechSerialDeterminism: the serial engine runs every mechanism
// deterministically too.
func TestMechSerialDeterminism(t *testing.T) {
	for _, mc := range mechConfigs {
		t.Run(mc.mech, func(t *testing.T) {
			CheckSerialUnchanged(t, soloBuild(t, "bfs", mechMut(mc.mech, mc.alloc)))
		})
	}
}

// mechMultiBuild returns a Build for a two-tenant co-run on a fully shared
// L2 TLB under the given mechanism — the regime where sub-entry sharing
// actually shares tags across ASIDs.
func mechMultiBuild(t *testing.T, mech, alloc string) Build {
	t.Helper()
	return func() (*sim.Simulator, error) {
		opt := multi.Options{Params: testParams(), SMPolicy: sched.AssignSpatial}
		tenants, err := multi.Tenants([]string{"bfs", "atax"}, opt)
		if err != nil {
			return nil, err
		}
		cfg := arch.Default()
		cfg.TLBMech = mech
		cfg.AllocMode = alloc
		return sim.NewMulti(cfg, tenants, sim.MultiOptions{})
	}
}

// TestMechMultiTenantMatrix: the multi-tenant cells of the mechanism study
// are worker-invariant — cross-ASID sub-entry state stays deterministic
// when tenants race on different shards.
func TestMechMultiTenantMatrix(t *testing.T) {
	for _, mc := range mechConfigs {
		t.Run(mc.mech, func(t *testing.T) {
			CheckWorkerInvariance(t, mechMultiBuild(t, mc.mech, mc.alloc), []int{2, 8}, true)
		})
	}
}
