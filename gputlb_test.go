package gputlb_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"gputlb"
)

func smallParams() gputlb.Params {
	p := gputlb.DefaultParams()
	p.Scale = 0.2
	return p
}

func TestPublicAPIQuickstart(t *testing.T) {
	// The README quickstart must work end to end.
	res, err := gputlb.Simulate("atax", smallParams(), gputlb.ShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.L1TLBHitRate <= 0 {
		t.Fatalf("empty result: %+v", res.Cycles)
	}
}

func TestPublicAPIBuildAndRun(t *testing.T) {
	k, as, err := gputlb.Build("gemm", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gputlb.Run(gputlb.DefaultConfig(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1TLBAccesses() == 0 {
		t.Error("no TLB traffic")
	}
	if _, _, err := gputlb.Build("nope", smallParams()); err == nil {
		t.Error("Build accepted unknown benchmark")
	}
}

func TestPublicAPIWorkloadRegistry(t *testing.T) {
	if len(gputlb.Workloads()) != 10 || len(gputlb.WorkloadNames()) != 10 {
		t.Error("registry should expose the ten Table II benchmarks")
	}
	if _, ok := gputlb.WorkloadByName("bfs"); !ok {
		t.Error("bfs missing")
	}
}

func TestPublicAPICharacterization(t *testing.T) {
	k, _, err := gputlb.Build("bfs", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	intra := gputlb.IntraTBReuse(k, 12)
	inter := gputlb.InterTBReuse(k, 12, 32)
	warp := gputlb.IntraWarpReuse(k, 12)
	for name, bins := range map[string]gputlb.ReuseBins{"intra": intra, "inter": inter, "warp": warp} {
		sum := 0.0
		for _, b := range bins {
			sum += b
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s bins sum to %v", name, sum)
		}
	}
	iso := gputlb.IsolatedReuseDistance(k, 12)
	inter5 := gputlb.InterleavedReuseDistance(k, 12, 16, 8)
	if iso.Reuses == 0 || inter5.Reuses == 0 {
		t.Error("no reuses measured")
	}
}

func TestPublicAPIConfigs(t *testing.T) {
	for name, cfg := range map[string]gputlb.Config{
		"default":  gputlb.DefaultConfig(),
		"baseline": gputlb.BaselineConfig(),
		"sched":    gputlb.SchedConfig(),
		"part":     gputlb.PartConfig(),
		"share":    gputlb.ShareConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", name, err)
		}
	}
	if gputlb.ShareConfig().TLBIndexPolicy != gputlb.IndexByTBShared {
		t.Error("ShareConfig policy wrong")
	}
}

func TestProposalImprovesThrashingWorkload(t *testing.T) {
	// End-to-end sanity of the headline claim on a translation-bound
	// benchmark: the full proposal must beat the baseline.
	p := gputlb.DefaultParams()
	p.Scale = 0.5
	base, err := gputlb.Simulate("mvt", p, gputlb.BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ours, err := gputlb.Simulate("mvt", p, gputlb.ShareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ours.Cycles >= base.Cycles {
		t.Errorf("proposal (%d cycles) not faster than baseline (%d) on mvt", ours.Cycles, base.Cycles)
	}
	if ours.L1TLBHitRate <= base.L1TLBHitRate {
		t.Errorf("proposal hit rate %.3f not above baseline %.3f", ours.L1TLBHitRate, base.L1TLBHitRate)
	}
}

func TestEndToEndDeterminismGolden(t *testing.T) {
	// A regression tripwire: two full small-scale evaluation runs must be
	// bit-identical. (Absolute values are intentionally not pinned — the
	// timing model evolves — but nondeterminism is always a bug.)
	opt := gputlb.DefaultExperimentOptions()
	opt.Params.Scale = 0.2
	opt.Benchmarks = []string{"atax", "bfs", "gemm"}
	run := func() []gputlb.EvalRow {
		rows, err := gputlb.Eval(opt)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged on %s: %+v vs %+v", a[i].Bench, a[i], b[i])
		}
	}
}

func TestTraceRoundTripThroughPublicAPI(t *testing.T) {
	k, _, err := gputlb.Build("nw", smallParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gputlb.WriteKernelTrace(&buf, k); err != nil {
		t.Fatal(err)
	}
	loaded, err := gputlb.ReadKernelTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the trace on a bare address space must match running the
	// original kernel on a bare address space (the trace carries the full
	// behaviour).
	r1, err := gputlb.Run(gputlb.DefaultConfig(), k, gputlb.NewAddressSpace(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := gputlb.Run(gputlb.DefaultConfig(), loaded, gputlb.NewAddressSpace(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.L1TLBHitRate != r2.L1TLBHitRate {
		t.Errorf("trace replay diverged: %d/%f vs %d/%f",
			r1.Cycles, r1.L1TLBHitRate, r2.Cycles, r2.L1TLBHitRate)
	}
}

func TestGraphWorkloadOnExternalGraph(t *testing.T) {
	// DIMACS round trip into a workload build into a simulation.
	g := gputlb.GenerateGraph(8192, 4, 3)
	var buf bytes.Buffer
	if err := gputlb.WriteDIMACSGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := gputlb.ReadDIMACSGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	k, as, err := gputlb.BuildOnGraph("pagerank", loaded, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gputlb.Run(gputlb.ShareConfig(), k, as)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.L1TLBAccesses() == 0 {
		t.Error("empty result from external-graph workload")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := gputlb.ShareConfig()
	cfg.PWCEntries = 32
	cfg.WarpScheduler = gputlb.WarpTransAware
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back gputlb.Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Errorf("config JSON round trip changed the config:\n%+v\n%+v", cfg, back)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped config invalid: %v", err)
	}
}
