# gputlb — build and test entry points.
#
#   make            vet + build + test (the tier-1 gate)
#   make ci         everything CI runs: vet, build, race-detector suite,
#                   and the decoder fuzz seed corpus
#   make test-race  full suite under the race detector
#   make bench      regenerate every figure at experiment scale
#   make fuzz       a short decoder fuzz run
#   make golden     refresh the golden stats snapshot after an intentional
#                   timing-model change (inspect the diff before committing)

GO ?= go

.PHONY: all build vet test test-race bench fuzz fuzz-seeds golden ci

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fuzz:
	$(GO) test -fuzz FuzzReadKernel -fuzztime 10s ./internal/trace/

# fuzz-seeds replays only the checked-in seed corpus (no mutation budget),
# which is deterministic and fast enough for every CI run.
fuzz-seeds:
	$(GO) test -run FuzzReadKernel ./internal/trace/

golden:
	$(GO) test ./internal/experiments -run TestGoldenStats -update

ci: vet build test-race fuzz-seeds
