# gputlb — build and test entry points.
#
#   make            vet + build + test (the tier-1 gate)
#   make test-race  full suite under the race detector
#   make bench      regenerate every figure at experiment scale
#   make fuzz       a short decoder fuzz run

GO ?= go

.PHONY: all build vet test test-race bench fuzz

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fuzz:
	$(GO) test -fuzz FuzzReadKernel -fuzztime 10s ./internal/trace/
