# gputlb — build and test entry points.
#
#   make            vet + build + test (the tier-1 gate)
#   make ci         everything CI runs: vet, build, race-detector suite,
#                   and the decoder fuzz seed corpus
#   make test-race  full suite under the race detector
#   make bench      regenerate every figure at experiment scale
#   make bench-json refresh BENCH_sim.json (wall-clock + allocs/op) on this
#                   machine; commit the result alongside perf-sensitive changes.
#                   Measures the in-process simulator path only — the gputlbd
#                   service layer sits above it and does not affect these numbers
#   make perf-smoke cheap allocation-regression gate against the committed
#                   BENCH_sim.json (no wall-clock comparison, CI-safe)
#   make multi-smoke run a small multi-tenant co-run grid end to end — the
#                   quick check that ASID plumbing, tenant partitioning and
#                   the interference reporting still hold together
#   make controller-smoke run the tenant-churn grid (controller included)
#                   end to end on the sharded engine under the race detector
#   make mech-smoke run the translation-mechanism study (sub-entry sharing,
#                   dead-entry prediction, contiguity-aware large-reach) end
#                   to end on the sharded + sliced engine under the race
#                   detector
#   make fabric-smoke run the distributed-sweep drill under the race
#                   detector: a coordinator with two in-process workers,
#                   one killed mid-job, asserting the result file is
#                   byte-identical to a single-daemon run
#   make fuzz       a short decoder fuzz run
#   make golden     refresh the golden stats snapshots (serial and sliced)
#                   after an intentional timing-model change (inspect the
#                   diff before committing)
#   make golden-update regenerate every golden pin in one command: the
#                   serial and sliced golden stats snapshots plus the
#                   BENCH_sim.json perf ledger
#   make docs-lint  fail on undocumented exported identifiers, internal
#                   packages missing a doc.go package comment, and HTTP
#                   routes missing from OPERATIONS.md

GO ?= go

.PHONY: all build vet test test-race bench bench-json perf-smoke multi-smoke controller-smoke mech-smoke fabric-smoke fuzz fuzz-seeds golden golden-update docs-lint ci

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Both suite targets shuffle test order so inter-test state leaks surface
# in CI instead of in a refactor six months later.
test:
	$(GO) test -shuffle=on ./...

test-race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-json:
	$(GO) run ./cmd/perfgate -o BENCH_sim.json

# perf-smoke skips the Eval-sweep wall-clock measurement (machine-dependent)
# and gates allocs per simulated instruction (fails on >2x vs the committed
# numbers), a coarse per-instruction time band (fails on >3x the committed
# ns/inst — wide enough for machine noise, tight enough to catch a hot-path
# blowup), and the sharded engine's shard-vs-barrier work split (fails if the
# parallel fraction or its Amdahl projection drop below the pinned floors).
perf-smoke:
	$(GO) run ./cmd/perfgate -check -skip-sweep -o BENCH_sim.json

# multi-smoke exercises the multi-tenant path end to end at a small scale:
# one benchmark pair across the full {TLB mode} x {SM assignment} grid, on
# the sharded intra-cell engine with the address-sliced barrier under the
# race detector — the quick check that the epoch-barrier protocol and the
# concurrent per-slice passes stay race-clean on the full tenancy grid.
multi-smoke:
	$(GO) run -race ./cmd/evaluate -fig multi -bench bfs,atax -scale 0.1 -cell-parallel 8 -l2-slices 4

# controller-smoke exercises the closed-loop partitioning controller under
# tenant churn end to end: every L2 TLB tenancy mode — the online controller
# included — with mid-run arrivals through the bounded admission queue, on
# the sharded intra-cell engine with the address-sliced barrier under the
# race detector.
controller-smoke:
	$(GO) run -race ./cmd/evaluate -fig churn -bench bfs,atax -scale 0.1 -cell-parallel 8 -l2-slices 4

# mech-smoke exercises the pluggable translation mechanisms end to end: every
# mechanism (base, subentry, deadblock, largereach + the contig allocator)
# solo and on a shared-L2 co-run, through the evaluate CLI, on the sharded
# intra-cell engine with the address-sliced barrier under the race detector.
mech-smoke:
	$(GO) run -race ./cmd/evaluate -fig mech -bench bfs,atax -scale 0.1 -cell-parallel 4 -l2-slices 2

# fabric-smoke is the distributed-sweep drill: coordinator + two
# in-process workers over real HTTP, one worker killed mid-job (dispatch
# failures, heartbeat expiry, re-dispatch of unacked cells), and the
# survivor still delivers a result file byte-identical to a
# single-daemon run — all under the race detector.
fabric-smoke:
	$(GO) test -race -count=1 -run TestFabricSmoke ./internal/fabric/

fuzz:
	$(GO) test -fuzz FuzzReadKernel -fuzztime 10s ./internal/trace/

# fuzz-seeds replays only the checked-in seed corpus (no mutation budget),
# which is deterministic and fast enough for every CI run.
fuzz-seeds:
	$(GO) test -run FuzzReadKernel ./internal/trace/

# golden refreshes both stats snapshots: -run TestGoldenStats matches the
# serial pin (TestGoldenStats) and the address-sliced pin
# (TestGoldenStatsSliced) in one run.
golden:
	$(GO) test ./internal/experiments -run TestGoldenStats -update

# golden-update regenerates every golden pin in one command: the serial and
# sliced golden stats snapshots, then the BENCH_sim.json perf ledger's
# "current" section on this machine.
golden-update: golden bench-json

# docs-lint layers cmd/doclint's conventions (documented exports in the
# public package, doc.go in every internal package, package comments on
# commands) on top of go vet.
docs-lint: vet
	$(GO) run ./cmd/doclint .

ci: vet build test-race fuzz-seeds docs-lint mech-smoke
