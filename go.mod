module gputlb

go 1.22
