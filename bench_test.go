package gputlb_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at experiment scale. Each benchmark reports the headline
// numbers of its figure as custom metrics, and `go test -bench . -v` also
// logs the full rendered table. The normalized-time geomeans of Figure 11
// are the paper's headline results (paper: sched -2.3%, partitioning-only
// +14.3%, full proposal -12.5%).

import (
	"runtime"
	"testing"

	"gputlb"
	"gputlb/internal/metrics"
	"gputlb/internal/tlb"
	"gputlb/internal/vm"
)

func benchOptions() gputlb.ExperimentOptions {
	return gputlb.DefaultExperimentOptions()
}

// benchGeomean unwraps metrics.Geomean for b.ReportMetric; normalized times
// are always positive, so an error means the run itself is broken.
func benchGeomean(b *testing.B, xs []float64) float64 {
	b.Helper()
	g, err := metrics.Geomean(xs)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable2Workloads regenerates Table II (benchmark construction).
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderTable2(rows))
			var pages float64
			for _, r := range rows {
				pages += float64(r.UniquePages)
			}
			b.ReportMetric(pages/float64(len(rows)), "avg-pages/bench")
		}
	}
}

// BenchmarkFig2HitRates regenerates Figure 2 (64- vs 256-entry L1 TLBs).
func BenchmarkFig2HitRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.Fig2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderFig2(rows))
			var h64, h256 []float64
			for _, r := range rows {
				h64 = append(h64, r.Hit64)
				h256 = append(h256, r.Hit256)
			}
			b.ReportMetric(metrics.Mean(h64), "mean-hit-64")
			b.ReportMetric(metrics.Mean(h256), "mean-hit-256")
		}
	}
}

// BenchmarkFig3InterTB regenerates Figure 3 (inter-TB reuse bins).
func BenchmarkFig3InterTB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.Fig3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderBins("Figure 3 — inter-TB translation reuse", rows))
			var b1 []float64
			for _, r := range rows {
				b1 = append(b1, r.Bins[0])
			}
			b.ReportMetric(metrics.Mean(b1), "mean-pairs-in-b1")
		}
	}
}

// BenchmarkFig4IntraTB regenerates Figure 4 (intra-TB reuse bins).
func BenchmarkFig4IntraTB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.Fig4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderBins("Figure 4 — intra-TB translation reuse", rows))
			var hi []float64
			for _, r := range rows {
				hi = append(hi, r.Bins[3]+r.Bins[4])
			}
			b.ReportMetric(metrics.Mean(hi), "mean-TBs-in-b4b5")
		}
	}
}

// BenchmarkFig5ReuseDistance regenerates Figure 5 (distances under
// concurrent execution).
func BenchmarkFig5ReuseDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.Fig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderCDF("Figure 5 — intra-TB reuse distance, concurrent TBs", rows))
			var within []float64
			for _, r := range rows {
				within = append(within, r.CDF.FractionWithin(6))
			}
			b.ReportMetric(metrics.Mean(within), "mean-within-L1-reach")
		}
	}
}

// BenchmarkFig6IsolatedDistance regenerates Figure 6 (interference removed).
func BenchmarkFig6IsolatedDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderCDF("Figure 6 — intra-TB reuse distance, one TB at a time", rows))
			var within []float64
			for _, r := range rows {
				within = append(within, r.CDF.FractionWithin(6))
			}
			b.ReportMetric(metrics.Mean(within), "mean-within-L1-reach")
		}
	}
}

// BenchmarkEvalSequential and BenchmarkEvalParallel run the same Figure
// 10/11 grid with the worker pool pinned to one worker vs GOMAXPROCS; their
// ratio is the sweep engine's speedup on a multi-workload grid.
func BenchmarkEvalSequential(b *testing.B) {
	opt := benchOptions()
	opt.Parallelism = 1
	for i := 0; i < b.N; i++ {
		if _, err := gputlb.Eval(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalParallel(b *testing.B) {
	opt := benchOptions()
	opt.Parallelism = 0 // runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := gputlb.Eval(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPerInst measures the simulate hot path alone: ns and heap
// allocations per issued warp instruction, with kernel construction outside
// the timed region. The same quantity gates CI through cmd/perfgate and
// BENCH_sim.json; this benchmark is the `go test -bench` view of it.
func BenchmarkSimPerInst(b *testing.B) {
	p := gputlb.DefaultParams()
	p.Scale = 0.2
	k, proto, err := gputlb.Build("bfs", p)
	if err != nil {
		b.Fatal(err)
	}
	cfg := gputlb.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		r, err := gputlb.Run(cfg, k, proto.Fork())
		if err != nil {
			b.Fatal(err)
		}
		insts += r.InstsIssued
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
	}
}

// BenchmarkSimPerInstParallel is BenchmarkSimPerInst on the sharded
// epoch-barrier engine with GOMAXPROCS workers (at least two, so the
// sharded engine is exercised even on a single-core machine); the ns/inst
// ratio between the two is the intra-cell speedup cmd/perfgate projects
// and gates.
func BenchmarkSimPerInstParallel(b *testing.B) {
	p := gputlb.DefaultParams()
	p.Scale = 0.2
	k, proto, err := gputlb.Build("bfs", p)
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	cfg := gputlb.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var insts int64
	for i := 0; i < b.N; i++ {
		s, err := gputlb.NewSimulator(cfg, k, proto.Fork())
		if err != nil {
			b.Fatal(err)
		}
		s.SetCellParallel(workers)
		r := s.Run()
		insts += r.InstsIssued
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
	}
}

// benchEval runs the four-configuration evaluation shared by Figures 10/11.
func benchEval(b *testing.B) []gputlb.EvalRow {
	b.Helper()
	rows, err := gputlb.Eval(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkFig10HitRates regenerates Figure 10 (hit rates under the four
// configurations).
func BenchmarkFig10HitRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchEval(b)
		if i == 0 {
			b.Log("\n" + gputlb.RenderFig10(rows))
			var base, share []float64
			for _, r := range rows {
				base = append(base, r.HitBase)
				share = append(share, r.HitShare)
			}
			b.ReportMetric(metrics.Mean(base), "mean-hit-baseline")
			b.ReportMetric(metrics.Mean(share), "mean-hit-share")
		}
	}
}

// BenchmarkFig11ExecTime regenerates Figure 11 (normalized execution time;
// the geomean of the last column is the paper's 12.5% headline).
func BenchmarkFig11ExecTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := benchEval(b)
		if i == 0 {
			b.Log("\n" + gputlb.RenderFig11(rows))
			var sched, part, share []float64
			for _, r := range rows {
				sched = append(sched, r.NormSched())
				part = append(part, r.NormPart())
				share = append(share, r.NormShare())
			}
			b.ReportMetric(benchGeomean(b, sched), "geomean-sched")
			b.ReportMetric(benchGeomean(b, part), "geomean-sched+part")
			b.ReportMetric(benchGeomean(b, share), "geomean-sched+part+share")
		}
	}
}

// BenchmarkFig12Compression regenerates Figure 12 (our approach on top of
// the PACT'20 TLB compression; paper: +10.4%).
func BenchmarkFig12Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.Fig12(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderFig12(rows))
			var sp []float64
			for _, r := range rows {
				sp = append(sp, r.Speedup)
			}
			b.ReportMetric(benchGeomean(b, sp), "geomean-speedup-over-compression")
		}
	}
}

// BenchmarkHugePageStudy regenerates the §V large-page study (paper: our
// approach still adds ~2.13% with 2MB pages).
func BenchmarkHugePageStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.HugePages(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderHugePages(rows))
			var sp []float64
			for _, r := range rows {
				sp = append(sp, r.SpeedupOurs2M)
			}
			b.ReportMetric(benchGeomean(b, sp), "geomean-speedup-on-2MB")
		}
	}
}

// BenchmarkAblationSharing explores the sharing design space the paper
// defers to future work (counter thresholds, all-to-all sharing).
func BenchmarkAblationSharing(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"atax", "bfs", "gemm", "mvt"}
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.AblationSharing(opt, []int{4, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderAblation("Ablation — sharing activation variants", rows))
		}
	}
}

// BenchmarkAblationThrottle combines the proposal with TB throttling.
func BenchmarkAblationThrottle(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"atax", "bfs", "gemm", "mvt"}
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.AblationThrottle(opt, []int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderAblation("Ablation — TB throttling", rows))
		}
	}
}

// BenchmarkWarpReuse runs the warp-granularity characterization (the
// paper's stated future work).
func BenchmarkWarpReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.WarpReuse(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderBins("Warp-granularity intra-warp reuse", rows))
		}
	}
}

// BenchmarkAblationWarpSched compares warp schedulers under the proposal,
// including the paper's future-work translation-aware scheduler.
func BenchmarkAblationWarpSched(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"atax", "bfs", "gemm", "mvt"}
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.AblationWarpSched(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderAblation("Ablation — warp schedulers (vs GTO)", rows))
		}
	}
}

// BenchmarkAblationPWC measures a page-walk cache on top of baseline and
// proposal.
func BenchmarkAblationPWC(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"atax", "bfs", "nw", "mvt"}
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.AblationPWC(opt, 64)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderAblation("Ablation — 64-entry page-walk cache", rows))
		}
	}
}

// BenchmarkAblationReplacement compares TLB replacement policies.
func BenchmarkAblationReplacement(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"atax", "bfs", "gemm", "mvt"}
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.AblationReplacement(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderAblation("Ablation — TLB replacement policies (vs LRU)", rows))
		}
	}
}

// BenchmarkBarrierMergeSliced is BenchmarkSimPerInstParallel with the
// address-sliced barrier at its default 4 slices: the epoch barrier runs as
// four concurrent per-slice merge passes instead of one monolithic merge.
// The ns/inst ratio against BenchmarkSimPerInstParallel is the slicing win;
// the allocs/inst guard pins the slice passes' steady state — the per-slice
// merge heaps, trace buffers and MSHR banks are all reused across epochs,
// so per-instruction allocations must stay at the sharded engine's floor.
func BenchmarkBarrierMergeSliced(b *testing.B) {
	p := gputlb.DefaultParams()
	p.Scale = 0.2
	k, proto, err := gputlb.Build("bfs", p)
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	cfg := gputlb.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var insts int64
	var allocs0, allocs1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&allocs0)
	for i := 0; i < b.N; i++ {
		s, err := gputlb.NewSimulator(cfg, k, proto.Fork())
		if err != nil {
			b.Fatal(err)
		}
		s.SetCellParallel(workers)
		s.SetL2Slices(4)
		r := s.Run()
		insts += r.InstsIssued
	}
	runtime.ReadMemStats(&allocs1)
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
		// Zero-alloc guard for the barrier's steady state: the whole run —
		// simulator construction included — must stay under one allocation
		// per simulated instruction, which is impossible if any slice pass
		// allocates per op or per epoch.
		perInst := float64(allocs1.Mallocs-allocs0.Mallocs) / float64(insts)
		b.ReportMetric(perInst, "allocs/inst")
		if perInst > 1 {
			b.Fatalf("sliced barrier allocates %.2f allocs/inst (want < 1): a slice pass is allocating in steady state", perInst)
		}
	}
}

// BenchmarkL2SlicedProbe measures the probe path of one L2 TLB address
// slice: a sub-TLB with 1/K of the sets (K=4), exactly what each per-slice
// barrier pass probes. The AllocsPerRun guard pins the lookup/insert fast
// path at zero heap allocations — a regression here multiplies across every
// translation of every epoch.
func BenchmarkL2SlicedProbe(b *testing.B) {
	const slices = 4
	cfg := gputlb.DefaultConfig().L2TLB
	cfg.Entries /= slices
	t := tlb.New(cfg, tlb.Options{})
	sets := cfg.Entries / cfg.Assoc
	// Working set of 4x the slice capacity so probes mix hits and misses.
	span := vm.VPN(4 * cfg.Entries)
	var sink vm.PPN
	if got := testing.AllocsPerRun(100, func() {
		for vpn := vm.VPN(0); vpn < vm.VPN(2*sets); vpn++ {
			if ppn, hit, _ := t.Lookup(0, vpn); hit {
				sink = ppn
			} else {
				t.Insert(0, vpn, vm.PPN(vpn)+1)
			}
		}
	}); got != 0 {
		b.Fatalf("sliced L2 TLB probe allocates (%v allocs/run, want 0)", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vpn := vm.VPN(i) % span
		if ppn, hit, _ := t.Lookup(0, vpn); hit {
			sink = ppn
		} else {
			t.Insert(0, vpn, vm.PPN(vpn)+1)
		}
	}
	_ = sink
}

// BenchmarkSMBalance quantifies the per-SM hit-rate spread that motivates
// the TLB-aware scheduler (paper Figure 7's intuition).
func BenchmarkSMBalance(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"bfs", "color", "mis", "pagerank"}
	for i := 0; i < b.N; i++ {
		rows, err := gputlb.SMBalance(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + gputlb.RenderSMBalance(rows))
			var spread []float64
			for _, r := range rows {
				spread = append(spread, r.SpreadRR)
			}
			b.ReportMetric(metrics.Mean(spread), "mean-per-SM-hit-spread-RR")
		}
	}
}
