package gputlb_test

import (
	"fmt"

	"gputlb"
)

// ExampleSimulate runs one benchmark under the paper's full proposal.
func ExampleSimulate() {
	p := gputlb.DefaultParams()
	p.Scale = 0.2 // small for the example; experiments use 1.0
	res, err := gputlb.Simulate("gemm", p, gputlb.ShareConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cycles > 0, res.L1TLBAccesses() > 0)
	// Output: true true
}

// ExampleIntraTBReuse reproduces one bar of the paper's Figure 4
// characterization for a single benchmark.
func ExampleIntraTBReuse() {
	p := gputlb.DefaultParams()
	p.Scale = 0.2
	k, _, err := gputlb.Build("bfs", p)
	if err != nil {
		panic(err)
	}
	bins := gputlb.IntraTBReuse(k, 12)
	fmt.Printf("most TBs reuse >80%% of their translations: %v\n", bins[4] > 0.5)
	// Output: most TBs reuse >80% of their translations: true
}

// ExampleEval regenerates the Figure 10/11 evaluation for a benchmark
// subset.
func ExampleEval() {
	opt := gputlb.DefaultExperimentOptions()
	opt.Params.Scale = 0.2
	opt.Benchmarks = []string{"mvt"}
	rows, err := gputlb.Eval(opt)
	if err != nil {
		panic(err)
	}
	r := rows[0]
	fmt.Println(r.Bench, r.CyclesBase > 0 && r.NormShare() > 0)
	// Output: mvt true
}
