// Package gputlb is a cycle-level GPU address-translation simulator and
// benchmark suite reproducing "Orchestrated Scheduling and Partitioning for
// Improved Address Translation in GPUs" (Li, Wang, Tang — DAC 2023).
//
// The library models a UVM-based CPU-GPU system — per-SM L1 TLBs, a shared
// L2 TLB, page-table walkers over a demand-paged address space, caches, and
// a GPU with warp and thread-block scheduling — and implements the paper's
// proposal: a TLB-thrashing-aware thread-block scheduler, TB-id-based L1
// TLB partitioning, and dynamic adjacent-set sharing.
//
// Quick start:
//
//	cfg := gputlb.ShareConfig() // the full proposal
//	res, err := gputlb.Simulate("bfs", gputlb.DefaultParams(), cfg)
//	if err != nil { ... }
//	fmt.Printf("hit rate %.2f in %d cycles\n", res.L1TLBHitRate, res.Cycles)
//
// The experiments API regenerates every table and figure of the paper; see
// Fig2 through Fig12, HugePages, and the ablations.
package gputlb

import (
	"fmt"
	"io"

	"gputlb/internal/arch"
	"gputlb/internal/chars"
	"gputlb/internal/experiments"
	"gputlb/internal/graph"
	"gputlb/internal/multi"
	"gputlb/internal/sched"
	"gputlb/internal/sim"
	"gputlb/internal/stats"
	"gputlb/internal/trace"
	"gputlb/internal/vm"
	"gputlb/internal/workloads"
)

// Config is the full machine description (Table III defaults).
type Config = arch.Config

// Architectural enums and constants.
const (
	IndexByAddress  = arch.IndexByAddress
	IndexByTB       = arch.IndexByTB
	IndexByTBShared = arch.IndexByTBShared

	ScheduleRoundRobin = arch.ScheduleRoundRobin
	ScheduleTLBAware   = arch.ScheduleTLBAware

	ShareAdjacent = arch.ShareAdjacent
	ShareAllToAll = arch.ShareAllToAll

	PageSize4K = arch.PageSize4K
	PageSize2M = arch.PageSize2M
	WarpSize   = arch.WarpSize
)

// DefaultConfig returns the paper's Table III baseline configuration.
func DefaultConfig() Config { return arch.Default() }

// BaselineConfig is the baseline of the evaluation (alias of DefaultConfig).
func BaselineConfig() Config { return experiments.BaselineConfig() }

// SchedConfig enables only the thrashing-aware TB scheduler (§IV-A).
func SchedConfig() Config { return experiments.SchedConfig() }

// PartConfig adds TB-id TLB partitioning without sharing (§IV-B).
func PartConfig() Config { return experiments.PartConfig() }

// ShareConfig is the full proposal: scheduling + partitioning + dynamic
// adjacent-set sharing.
func ShareConfig() Config { return experiments.ShareConfig() }

// Params controls workload construction (scale, seed, page size).
type Params = workloads.Params

// DefaultParams returns experiment-scale workload parameters.
func DefaultParams() Params { return workloads.DefaultParams() }

// Workload is one benchmark of the paper's Table II.
type Workload = workloads.Spec

// Kernel is a GPU kernel launch as an address trace.
type Kernel = trace.Kernel

// AddressSpace is a UVM virtual address space with demand paging.
type AddressSpace = vm.AddressSpace

// Result aggregates one simulation run.
type Result = sim.Result

// Workloads returns the ten benchmarks in the paper's order.
func Workloads() []Workload { return workloads.All() }

// WorkloadNames returns the benchmark names in the paper's order.
func WorkloadNames() []string { return workloads.Names() }

// WorkloadByName finds a benchmark by its Table II name.
func WorkloadByName(name string) (Workload, bool) { return workloads.ByName(name) }

// Build constructs a benchmark's kernel trace and UVM address space.
func Build(name string, p Params) (*Kernel, *AddressSpace, error) {
	s, ok := workloads.ByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("gputlb: unknown benchmark %q", name)
	}
	k, as := s.Build(p)
	return k, as, nil
}

// Run simulates a kernel to completion under cfg.
func Run(cfg Config, k *Kernel, as *AddressSpace) (Result, error) {
	return sim.Run(cfg, k, as)
}

// Observability: every simulation registers its components into a
// hierarchical stats tree (Result.Stats), and a Simulator accepts an
// optional event tracer exportable as Chrome trace_event JSON.

// Simulator is one configured simulation run; use it instead of Run when
// you need to attach a tracer or query the stats registry directly.
type Simulator = sim.Simulator

// StatsRegistry is the live metric tree a simulation registers into.
type StatsRegistry = stats.Registry

// StatsSnapshot is a materialized, serializable stats tree.
type StatsSnapshot = stats.Snapshot

// Tracer is a ring-buffered structured event sink shared by one or more
// simulations; nil is a valid no-op tracer.
type Tracer = stats.Tracer

// TraceEvent is one Chrome trace_event record.
type TraceEvent = stats.Event

// StatsDump collects the stats trees of every cell an experiment sweep
// runs; see ExperimentOptions.StatsDump.
type StatsDump = experiments.StatsDump

// StatsRow is one StatsDump entry: (bench, config, stats tree).
type StatsRow = experiments.StatsRow

// DefaultTraceCapacity is the tracer ring size used for capacity <= 0.
const DefaultTraceCapacity = stats.DefaultTraceCapacity

// NewSimulator builds a simulator for one run; call SetTracer before Run to
// capture events, and Registry to inspect metrics.
func NewSimulator(cfg Config, k *Kernel, as *AddressSpace) (*Simulator, error) {
	return sim.New(cfg, k, as)
}

// NewTracer creates an event tracer keeping the most recent capacity events
// (<= 0 means DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer { return stats.NewTracer(capacity) }

// Simulate builds benchmark name with p and runs it under cfg.
func Simulate(name string, p Params, cfg Config) (Result, error) {
	k, as, err := Build(name, p)
	if err != nil {
		return Result{}, err
	}
	return sim.Run(cfg, k, as)
}

// Characterization (paper Section III).

// ReuseBins is a 20%-binned reuse-intensity distribution (b1..b5).
type ReuseBins = chars.Bins

// DistanceCDF is a power-of-two-bucketed reuse-distance CDF.
type DistanceCDF = chars.DistanceCDF

// IntraTBReuse computes Figure 4's per-TB reuse intensity bins.
func IntraTBReuse(k *Kernel, pageShift uint) ReuseBins { return chars.IntraTB(k, pageShift) }

// InterTBReuse computes Figure 3's TB-pair reuse intensity bins (maxTBs
// bounds the pair count; 0 = exhaustive).
func InterTBReuse(k *Kernel, pageShift uint, maxTBs int) ReuseBins {
	return chars.InterTB(k, pageShift, maxTBs)
}

// IntraWarpReuse computes warp-granularity reuse bins (the paper's stated
// future work).
func IntraWarpReuse(k *Kernel, pageShift uint) ReuseBins { return chars.IntraWarp(k, pageShift) }

// IsolatedReuseDistance computes Figure 6's CDF (one TB at a time).
func IsolatedReuseDistance(k *Kernel, pageShift uint) DistanceCDF {
	return chars.IsolatedReuseDistance(k, pageShift)
}

// InterleavedReuseDistance computes Figure 5's CDF (TBs interleaved on
// their SMs, exposing inter-TB interference).
func InterleavedReuseDistance(k *Kernel, pageShift uint, numSMs, slotsPerSM int) DistanceCDF {
	return chars.InterleavedReuseDistance(k, pageShift, numSMs, slotsPerSM)
}

// Experiments: every table and figure of the evaluation.

// ExperimentOptions selects workloads and scale for experiment runs.
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions returns experiment-scale settings.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Experiment row types.
type (
	Table2Row   = experiments.Table2Row
	Fig2Row     = experiments.Fig2Row
	BinsRow     = experiments.BinsRow
	CDFRow      = experiments.CDFRow
	EvalRow     = experiments.EvalRow
	Fig12Row    = experiments.Fig12Row
	HugePageRow = experiments.HugePageRow
	AblationRow = experiments.AblationRow
)

// Table and figure entry points; each has a matching Render helper.
var (
	Table2    = experiments.Table2
	Table3    = experiments.Table3
	Fig2      = experiments.Fig2
	Fig3      = experiments.Fig3
	Fig4      = experiments.Fig4
	Fig5      = experiments.Fig5
	Fig6      = experiments.Fig6
	Eval      = experiments.Eval
	Fig12     = experiments.Fig12
	HugePages = experiments.HugePages

	AblationSharing     = experiments.AblationSharing
	AblationThrottle    = experiments.AblationThrottle
	AblationWarpSched   = experiments.AblationWarpSched
	AblationPWC         = experiments.AblationPWC
	AblationReplacement = experiments.AblationReplacement
	SMBalance           = experiments.SMBalance
	SeedSweep           = experiments.SeedSweep
	WarpReuse           = experiments.WarpReuse

	RenderTable2    = experiments.RenderTable2
	RenderFig2      = experiments.RenderFig2
	RenderBins      = experiments.RenderBins
	RenderCDF       = experiments.RenderCDF
	RenderFig10     = experiments.RenderFig10
	RenderFig11     = experiments.RenderFig11
	RenderFig12     = experiments.RenderFig12
	RenderHugePages = experiments.RenderHugePages
	RenderAblation  = experiments.RenderAblation
	RenderSMBalance = experiments.RenderSMBalance
	RenderSeedSweep = experiments.RenderSeedSweep
)

// Multi-tenant co-runs: several kernels concurrently on one GPU, each in
// its own ASID-tagged address space, with tenant-aware L2 TLB partitioning.

// Tenant is one co-running kernel of a multi-tenant simulation.
type Tenant = sim.Tenant

// TenantResult is one tenant's share of a multi-tenant Result.
type TenantResult = sim.TenantResult

// MultiSimOptions tunes the shared translation hardware of a multi-tenant
// run (sim-level; CoRunOptions is the workload-level wrapper).
type MultiSimOptions = sim.MultiOptions

// CoRunOptions configures a benchmark-level co-run cell: base config,
// workload params, SM assignment, and the L2 TLB tenancy mode.
type CoRunOptions = multi.Options

// TLBMode selects the shared L2 TLB's tenancy policy for a co-run.
type TLBMode = multi.TLBMode

// L2 TLB tenancy modes for co-runs.
const (
	TLBSharedMode  = multi.TLBSharedMode
	TLBStaticMode  = multi.TLBStaticMode
	TLBDynamicMode = multi.TLBDynamicMode
)

// SMAssignment divides the GPU's SMs among co-running tenants.
type SMAssignment = sched.SMAssignment

// SM assignment policies for co-runs.
const (
	AssignSpatial     = sched.AssignSpatial
	AssignInterleaved = sched.AssignInterleaved
	AssignShared      = sched.AssignShared
)

// AssignSMs partitions numSMs among tenants under an assignment policy.
func AssignSMs(a SMAssignment, numSMs, tenants int) [][]int {
	return sched.AssignSMs(a, numSMs, tenants)
}

// RunMulti simulates tenants concurrently on one GPU under cfg; the
// result's Tenants field holds the per-tenant breakdown in ASID order.
func RunMulti(cfg Config, tenants []Tenant, opt MultiSimOptions) (Result, error) {
	return sim.RunMulti(cfg, tenants, opt)
}

// NewMultiSimulator builds (without running) a multi-tenant simulator, for
// attaching a tracer or querying the registry.
func NewMultiSimulator(cfg Config, tenants []Tenant, opt MultiSimOptions) (*Simulator, error) {
	return sim.NewMulti(cfg, tenants, opt)
}

// CoRun builds the named benchmarks and runs them concurrently on one GPU.
func CoRun(benches []string, opt CoRunOptions) (Result, error) {
	return multi.CoRun(benches, opt)
}

// WeightedSpeedup is sum_i IPC_i^co-run / IPC_i^solo, the standard
// multi-programming throughput metric.
func WeightedSpeedup(tenants []TenantResult, soloIPC []float64) float64 {
	return multi.WeightedSpeedup(tenants, soloIPC)
}

// MultiRow is one co-run cell of the interference grid.
type MultiRow = experiments.MultiRow

// MultiGrid and RenderMulti run and format the interference study: every
// benchmark pair under the {TLB mode} x {SM assignment} grid. MultiPairs
// enumerates the grid's unordered benchmark pairs.
var (
	MultiGrid   = experiments.MultiGrid
	RenderMulti = experiments.RenderMulti
	MultiPairs  = experiments.MultiPairs
)

// ChurnRow is one cell of the tenant-churn study: a workload pair under one
// L2 TLB tenancy mode with the grid's fixed mid-run arrival pattern.
type ChurnRow = experiments.ChurnRow

// ChurnGrid and RenderChurn run and format the tenant-churn study: every
// benchmark pair under the full L2 TLB tenancy axis — including the online
// partitioning controller — with mid-run arrivals through a bounded
// admission queue.
var (
	ChurnGrid   = experiments.ChurnGrid
	RenderChurn = experiments.RenderChurn
)

// MechRow and MechMultiRow are the solo and co-run cells of the
// translation-mechanism evaluation.
type (
	MechRow      = experiments.MechRow
	MechMultiRow = experiments.MechMultiRow
)

// MechEval/MechMulti run the translation-mechanism study (every benchmark
// solo and every pair co-run under each mechanism); RenderMechEval and
// RenderMechMulti format the tables with per-mechanism geomeans. MechNames
// lists the mechanism axis and MechConfig builds the baseline configuration
// running one mechanism.
var (
	MechEval        = experiments.MechEval
	MechMulti       = experiments.MechMulti
	RenderMechEval  = experiments.RenderMechEval
	RenderMechMulti = experiments.RenderMechMulti
	MechNames       = experiments.MechNames
	MechConfig      = experiments.MechConfig
)

// SeedSweepRow is the per-seed robustness row.
type SeedSweepRow = experiments.SeedSweepRow

// SMBalanceRow is the per-SM hit-rate spread study row.
type SMBalanceRow = experiments.SMBalanceRow

// Warp scheduler and replacement policy constants.
const (
	WarpGTO        = arch.WarpGTO
	WarpLRR        = arch.WarpLRR
	WarpTransAware = arch.WarpTransAware

	ReplaceLRU    = arch.ReplaceLRU
	ReplaceFIFO   = arch.ReplaceFIFO
	ReplaceRandom = arch.ReplaceRandom
)

// WriteKernelTrace serializes a kernel to the compact binary trace format.
func WriteKernelTrace(w io.Writer, k *Kernel) error { return trace.WriteKernel(w, k) }

// ReadKernelTrace deserializes a kernel written by WriteKernelTrace (or an
// external tracer emitting the same format).
func ReadKernelTrace(r io.Reader) (*Kernel, error) { return trace.ReadKernel(r) }

// NewAddressSpace creates a bare UVM address space for running imported
// traces (pageShift 12 for 4KB pages, 21 for 2MB).
func NewAddressSpace(pageShift uint, seed int64) *AddressSpace {
	return vm.NewAddressSpace(pageShift, seed, 0)
}

// Graph is a CSR graph usable as input for the graph benchmarks.
type Graph = graph.CSR

// ReadDIMACSGraph parses a DIMACS-10 graph file (the format of the paper's
// coPapersCiteseer input).
func ReadDIMACSGraph(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// WriteDIMACSGraph exports a graph in DIMACS-10 format.
func WriteDIMACSGraph(w io.Writer, g *Graph) error { return graph.WriteDIMACS(w, g) }

// GenerateGraph builds the synthetic power-law citation graph the suite
// uses in place of coPapersCiteseer.
func GenerateGraph(numNodes, edgesPerNode int, seed int64) *Graph {
	return graph.Generate(numNodes, edgesPerNode, seed)
}

// BuildOnGraph constructs one of the graph benchmarks (bfs, color, mis,
// pagerank) over a caller-provided graph — e.g. the real citation graph
// loaded with ReadDIMACSGraph.
func BuildOnGraph(name string, g *Graph, p Params) (*Kernel, *AddressSpace, error) {
	return workloads.BuildOnGraph(name, g, p)
}
