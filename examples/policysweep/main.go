// Policy sweep: the full Figure 10/11 evaluation over all ten Table II
// benchmarks — baseline, TLB-aware scheduling, scheduling+partitioning, and
// the complete proposal — printed as the paper's two figures, plus the
// sharing-mode ablation on a benchmark subset.
package main

import (
	"fmt"
	"log"

	"gputlb"
)

func main() {
	log.SetFlags(0)

	opt := gputlb.DefaultExperimentOptions()
	rows, err := gputlb.Eval(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gputlb.RenderFig10(rows))
	fmt.Println(gputlb.RenderFig11(rows))

	// Sharing design space on the benchmarks that stress it most.
	opt.Benchmarks = []string{"atax", "bfs", "gemm"}
	ab, err := gputlb.AblationSharing(opt, []int{4, 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gputlb.RenderAblation(
		"Sharing ablation — counter thresholds and all-to-all vs the 1-bit adjacent flag\n"+
			"(times normalized to the 1-bit adjacent design)", ab))
}
