// Design-space exploration: sweep the per-SM L1 TLB capacity against the
// baseline and the paper's full proposal. The interesting question for an
// architect: how many extra TLB entries is the proposal worth? (The paper's
// answer: scheduling + partitioning + sharing captures much of what a
// hardware capacity bump would, without the area and latency cost.)
package main

import (
	"fmt"
	"log"

	"gputlb"
)

func main() {
	log.SetFlags(0)

	params := gputlb.DefaultParams()
	benches := []string{"mvt", "bfs", "nw"}
	sizes := []int{32, 64, 128, 256}

	for _, bench := range benches {
		fmt.Printf("%s: execution cycles by L1 TLB capacity\n", bench)
		fmt.Printf("  %-10s %12s %12s %10s\n", "entries", "baseline", "proposal", "speedup")
		for _, entries := range sizes {
			var cycles [2]int64
			for i, mk := range []func() gputlb.Config{gputlb.BaselineConfig, gputlb.ShareConfig} {
				cfg := mk()
				cfg.L1TLB.Entries = entries
				r, err := gputlb.Simulate(bench, params, cfg)
				if err != nil {
					log.Fatal(err)
				}
				cycles[i] = int64(r.Cycles)
			}
			fmt.Printf("  %-10d %12d %12d %9.2fx\n",
				entries, cycles[0], cycles[1], float64(cycles[0])/float64(cycles[1]))
		}
		fmt.Println()
	}
}
