// Quickstart: run one benchmark under the baseline and under the paper's
// full proposal (TLB-aware scheduling + TB-id partitioning + dynamic set
// sharing) and compare L1 TLB hit rates and execution time.
package main

import (
	"fmt"
	"log"

	"gputlb"
)

func main() {
	log.SetFlags(0)

	params := gputlb.DefaultParams() // experiment scale, seed 1, 4KB pages

	baseline, err := gputlb.Simulate("mvt", params, gputlb.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	proposal, err := gputlb.Simulate("mvt", params, gputlb.ShareConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mvt (matrix-vector product and transpose, PolyBench)")
	fmt.Printf("  baseline:  L1 TLB hit %5.1f%%, %9d cycles\n",
		100*baseline.L1TLBHitRate, baseline.Cycles)
	fmt.Printf("  proposal:  L1 TLB hit %5.1f%%, %9d cycles\n",
		100*proposal.L1TLBHitRate, proposal.Cycles)
	fmt.Printf("  speedup:   %.2fx\n", float64(baseline.Cycles)/float64(proposal.Cycles))
}
