// Graph analytics under UVM: the paper's motivating scenario. Runs the four
// irregular graph benchmarks (bfs, color, mis, pagerank — the Rodinia and
// Pannotia kernels on a synthetic citation graph), characterizes their
// translation reuse the way the paper's Section III does, and shows how
// thread-block scheduling and TLB management interact with their L1 TLB
// behaviour.
package main

import (
	"fmt"
	"log"

	"gputlb"
)

func main() {
	log.SetFlags(0)

	params := gputlb.DefaultParams()
	graphs := []string{"bfs", "color", "mis", "pagerank"}

	fmt.Println("Translation reuse characterization (paper Section III):")
	fmt.Printf("%-10s %28s %28s\n", "", "intra-TB reuse in b4+b5", "TB pairs with <20% overlap")
	for _, name := range graphs {
		k, _, err := gputlb.Build(name, params)
		if err != nil {
			log.Fatal(err)
		}
		intra := gputlb.IntraTBReuse(k, 12)
		inter := gputlb.InterTBReuse(k, 12, 256)
		fmt.Printf("%-10s %27.1f%% %27.1f%%\n",
			name, 100*(intra[3]+intra[4]), 100*inter[0])
	}
	fmt.Println()

	fmt.Println("Reuse distances (fraction of intra-TB reuses within the 64-entry L1 reach):")
	fmt.Printf("%-10s %16s %18s\n", "", "one TB at a time", "concurrent TBs")
	for _, name := range graphs {
		k, _, err := gputlb.Build(name, params)
		if err != nil {
			log.Fatal(err)
		}
		iso := gputlb.IsolatedReuseDistance(k, 12)
		cfg := gputlb.DefaultConfig()
		inter := gputlb.InterleavedReuseDistance(k, 12, cfg.NumSMs, k.ConcurrentTBsPerSM(cfg))
		fmt.Printf("%-10s %15.1f%% %17.1f%%\n",
			name, 100*iso.FractionWithin(6), 100*inter.FractionWithin(6))
	}
	fmt.Println()

	fmt.Println("End-to-end under the three designs:")
	fmt.Printf("%-10s %20s %20s %20s\n", "", "baseline hit/cycles", "partitioned", "partitioned+shared")
	for _, name := range graphs {
		var cells []string
		for _, cfg := range []gputlb.Config{
			gputlb.BaselineConfig(), gputlb.PartConfig(), gputlb.ShareConfig(),
		} {
			r, err := gputlb.Simulate(name, params, cfg)
			if err != nil {
				log.Fatal(err)
			}
			cells = append(cells, fmt.Sprintf("%5.1f%% / %9d", 100*r.L1TLBHitRate, r.Cycles))
		}
		fmt.Printf("%-10s %20s %20s %20s\n", name, cells[0], cells[1], cells[2])
	}
}
