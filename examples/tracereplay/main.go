// Trace replay: export a benchmark's kernel to the compact binary trace
// format, read it back, and replay it under a custom machine configuration
// (here: a double-size L1 TLB with a page-walk cache) — the workflow for
// archiving runs or bringing externally captured traces into the simulator.
package main

import (
	"bytes"
	"fmt"
	"log"

	"gputlb"
)

func main() {
	log.SetFlags(0)

	params := gputlb.DefaultParams()
	params.Scale = 0.5
	k, _, err := gputlb.Build("bicg", params)
	if err != nil {
		log.Fatal(err)
	}

	// Export and re-import (stand-in for writing a .trace file).
	var buf bytes.Buffer
	if err := gputlb.WriteKernelTrace(&buf, k); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %q: %d TBs, %d mem insts -> %d bytes (%.1f bits/lane-address)\n",
		k.Name, len(k.TBs), k.MemInsts(), buf.Len(),
		8*float64(buf.Len())/float64(k.MemInsts()*32))

	loaded, err := gputlb.ReadKernelTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Replay under a customized machine.
	cfg := gputlb.ShareConfig()
	cfg.L1TLB.Entries = 128
	cfg.PWCEntries = 64
	res, err := gputlb.Run(cfg, loaded, gputlb.NewAddressSpace(12, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed under 128-entry L1 + PWC: hit %.1f%%, %d cycles, %d walks (%d PWC-shortened)\n",
		100*res.L1TLBHitRate, res.Cycles, res.Walks, res.PWCHits)
}
