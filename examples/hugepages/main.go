// Huge pages: the paper's Section V large-page study. 2MB pages multiply
// the TLB reach and lift hit rates on their own; the proposal can still be
// layered on top, where its remaining benefit is small — exactly the
// paper's observation that the techniques compose but the saving shrinks.
package main

import (
	"fmt"
	"log"

	"gputlb"
)

func main() {
	log.SetFlags(0)

	rows, err := gputlb.HugePages(gputlb.DefaultExperimentOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gputlb.RenderHugePages(rows))

	// Dig into one benchmark: show how 2MB pages change the translation
	// traffic itself.
	p4 := gputlb.DefaultParams()
	r4, err := gputlb.Simulate("gemm", p4, gputlb.BaselineConfig())
	if err != nil {
		log.Fatal(err)
	}
	p2 := p4
	p2.PageShift = 21
	cfg := gputlb.BaselineConfig()
	cfg.PageSize = gputlb.PageSize2M
	r2, err := gputlb.Simulate("gemm", p2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gemm translation traffic:")
	fmt.Printf("  4KB pages: %7d translation requests, %5d walks, %4d UVM faults\n",
		r4.PageRequests, r4.Walks, r4.Faults)
	fmt.Printf("  2MB pages: %7d translation requests, %5d walks, %4d UVM faults\n",
		r2.PageRequests, r2.Walks, r2.Faults)
}
