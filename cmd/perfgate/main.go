// Command perfgate measures the simulator's hot-path performance and
// maintains BENCH_sim.json, the repository's machine-readable perf ledger.
// It records two kinds of numbers:
//
//   - the full evaluate sweep (Figures 10/11: 10 benchmarks x 4 configs)
//     as wall-clock seconds and cells/sec, at sweep parallelism 1 and 8;
//   - the per-instruction simulation path (the golden-suite benchmarks under
//     the baseline config) as ns and heap allocations per issued warp
//     instruction.
//
// Modes:
//
//	perfgate -baseline     # pin the pre-optimization numbers (run once)
//	perfgate               # refresh the "current" section after a change
//	perfgate -check        # CI perf smoke: re-measure the per-instruction
//	                       # path only and fail on a >2x allocs/op regression
//	                       # against the committed "current" numbers
//
// Wall-clock numbers are machine-dependent; the committed file records the
// trajectory on one reference machine, and the CI gate keys only off
// allocs/op, which is deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"gputlb/internal/arch"
	"gputlb/internal/experiments"
	"gputlb/internal/sim"
	"gputlb/internal/workloads"
)

// perInstBenchmarks is the per-instruction measurement set: one benchmark
// per workload family, matching the golden-stats suite.
var perInstBenchmarks = []string{"bfs", "pagerank", "atax", "3dconv", "nw"}

// Sweep is one evaluate-sweep measurement.
type Sweep struct {
	Seconds     float64 `json:"seconds"`
	Cells       int     `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// PerInst is the per-instruction hot-path measurement.
type PerInst struct {
	Insts         int64   `json:"insts"`
	NsPerInst     float64 `json:"ns_per_inst"`
	AllocsPerInst float64 `json:"allocs_per_inst"`
	BytesPerInst  float64 `json:"bytes_per_inst"`
}

// Measurement is one full perfgate run.
type Measurement struct {
	Recorded      string  `json:"recorded"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	EvalParallel1 Sweep   `json:"eval_sweep_parallel1"`
	EvalParallel8 Sweep   `json:"eval_sweep_parallel8"`
	PerInst       PerInst `json:"per_inst"`
}

// File is the BENCH_sim.json layout: the pinned pre-optimization baseline
// and the latest measurement, so the speedup is auditable from one file.
type File struct {
	Schema   int          `json:"schema"`
	Note     string       `json:"note"`
	Baseline *Measurement `json:"baseline,omitempty"`
	Current  *Measurement `json:"current,omitempty"`
}

const fileNote = "simulator perf ledger: refresh with `make bench-json`; " +
	"`perfgate -check` gates CI on allocs/op"

func main() {
	log.SetFlags(0)
	log.SetPrefix("perfgate: ")

	var (
		out       = flag.String("o", "BENCH_sim.json", "perf ledger file")
		baseline  = flag.Bool("baseline", false, "record this run as the pinned baseline")
		check     = flag.Bool("check", false, "re-measure allocs/op only and fail on >2x regression vs the committed current numbers")
		skipSweep = flag.Bool("skip-sweep", false, "skip the wall-clock sweep (per-instruction numbers only)")
		label     = flag.String("label", time.Now().UTC().Format("2006-01-02"), "label stored in the measurement's recorded field")
	)
	flag.Parse()

	if *check {
		if err := runCheck(*out); err != nil {
			log.Fatal(err)
		}
		return
	}

	f, err := readFile(*out)
	if err != nil {
		log.Fatal(err)
	}
	m := measure(*label, *skipSweep)
	if *baseline {
		f.Baseline = &m
	} else {
		f.Current = &m
	}
	if err := writeFile(*out, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-inst: %.1f ns/inst, %.4f allocs/inst, %.1f B/inst over %d insts\n",
		m.PerInst.NsPerInst, m.PerInst.AllocsPerInst, m.PerInst.BytesPerInst, m.PerInst.Insts)
	if !*skipSweep {
		fmt.Printf("eval sweep: %.2fs at parallelism 1 (%.2f cells/sec), %.2fs at parallelism 8\n",
			m.EvalParallel1.Seconds, m.EvalParallel1.CellsPerSec, m.EvalParallel8.Seconds)
	}
	if f.Baseline != nil && f.Current != nil && f.Baseline.EvalParallel1.Seconds > 0 && f.Current.EvalParallel1.Seconds > 0 {
		fmt.Printf("speedup vs baseline: %.2fx wall-clock (parallelism 1), %.1fx allocs/inst\n",
			f.Baseline.EvalParallel1.Seconds/f.Current.EvalParallel1.Seconds,
			ratio(f.Baseline.PerInst.AllocsPerInst, f.Current.PerInst.AllocsPerInst))
	}
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// runCheck is the CI perf smoke: a quick per-instruction re-measurement
// gated against the committed current allocs/op. Wall clocks are skipped
// (machine-dependent); allocation counts are deterministic.
func runCheck(path string) error {
	f, err := readFile(path)
	if err != nil {
		return err
	}
	if f.Current == nil {
		return fmt.Errorf("%s has no current measurement to gate against (run `make bench-json`)", path)
	}
	committed := f.Current.PerInst.AllocsPerInst
	got := measurePerInst()
	// 2x the committed value, with a small absolute floor so a near-zero
	// committed value does not turn measurement noise into a CI failure.
	limit := 2*committed + 0.25
	fmt.Printf("allocs/inst: measured %.4f, committed %.4f, limit %.4f\n",
		got.AllocsPerInst, committed, limit)
	if got.AllocsPerInst > limit {
		return fmt.Errorf("allocs/op regression: %.4f allocs/inst exceeds %.4f (2x committed %.4f); "+
			"fix the allocation or refresh BENCH_sim.json with `make bench-json` if intentional",
			got.AllocsPerInst, limit, committed)
	}
	fmt.Println("perf gate OK")
	return nil
}

func measure(label string, skipSweep bool) Measurement {
	m := Measurement{
		Recorded:   label,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		PerInst:    measurePerInst(),
	}
	if !skipSweep {
		m.EvalParallel1 = measureEval(1)
		m.EvalParallel8 = measureEval(8)
	}
	return m
}

// measureEval times the full Figure 10/11 evaluate sweep at the given
// parallelism. The trace cache is cleared first so every measurement pays
// the same first-build cost the real CLI run pays.
func measureEval(parallelism int) Sweep {
	workloads.ClearTraceCache()
	opt := experiments.DefaultOptions()
	opt.Parallelism = parallelism
	start := time.Now()
	rows, err := experiments.Eval(opt)
	if err != nil {
		log.Fatal(err)
	}
	secs := time.Since(start).Seconds()
	cells := 4 * len(rows)
	return Sweep{Seconds: secs, Cells: cells, CellsPerSec: float64(cells) / secs}
}

// measurePerInst runs the golden-suite benchmarks under the baseline config
// and reports time and heap allocations per issued warp instruction. Kernel
// construction happens outside the measured window: this is the simulate
// hot path, not the workload generators.
func measurePerInst() PerInst {
	type cell struct {
		s *sim.Simulator
	}
	params := workloads.Params{PageShift: 12, Seed: 1, Scale: 0.2}
	cfg := arch.Default()
	var cells []cell
	for _, name := range perInstBenchmarks {
		spec, ok := workloads.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %q", name)
		}
		k, as := workloads.Cached(spec, params)
		s, err := sim.New(cfg, k, as)
		if err != nil {
			log.Fatal(err)
		}
		cells = append(cells, cell{s})
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var insts int64
	for _, c := range cells {
		r := c.s.Run()
		insts += r.InstsIssued
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	mallocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	return PerInst{
		Insts:         insts,
		NsPerInst:     float64(elapsed.Nanoseconds()) / float64(insts),
		AllocsPerInst: float64(mallocs) / float64(insts),
		BytesPerInst:  float64(bytes) / float64(insts),
	}
}

func readFile(path string) (File, error) {
	f := File{Schema: 1, Note: fileNote}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("parsing %s: %w", path, err)
	}
	f.Schema = 1
	f.Note = fileNote
	return f, nil
}

func writeFile(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
